/**
 * @file
 * Unit tests for the MatrixMarket reader/writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/status.hh"
#include "matrix/mm_io.hh"

namespace copernicus {
namespace {

TEST(MmIoTest, ReadGeneralReal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "3 4 2\n"
        "1 1 2.5\n"
        "3 4 -1\n");
    const auto m = readMatrixMarket(in);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_FLOAT_EQ(m.at(0, 0), 2.5f);
    EXPECT_FLOAT_EQ(m.at(2, 3), -1.0f);
}

TEST(MmIoTest, ReadPatternAssignsOnes)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n");
    const auto m = readMatrixMarket(in);
    EXPECT_FLOAT_EQ(m.at(0, 1), 1.0f);
    EXPECT_FLOAT_EQ(m.at(1, 0), 1.0f);
}

TEST(MmIoTest, ReadSymmetricExpands)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 4\n"
        "3 3 5\n");
    const auto m = readMatrixMarket(in);
    EXPECT_EQ(m.nnz(), 3u); // off-diagonal mirrored, diagonal not
    EXPECT_FLOAT_EQ(m.at(1, 0), 4.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 4.0f);
    EXPECT_FLOAT_EQ(m.at(2, 2), 5.0f);
}

TEST(MmIoTest, ReadSkewSymmetricNegatesMirror)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 1\n"
        "2 1 3\n");
    const auto m = readMatrixMarket(in);
    EXPECT_FLOAT_EQ(m.at(1, 0), 3.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), -3.0f);
}

TEST(MmIoTest, ReadIntegerField)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 1\n"
        "1 1 7\n");
    const auto m = readMatrixMarket(in);
    EXPECT_FLOAT_EQ(m.at(0, 0), 7.0f);
}

TEST(MmIoTest, RejectsMissingBanner)
{
    std::istringstream in("3 3 0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, RejectsArrayLayout)
{
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, RejectsComplexField)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate complex general\n"
        "1 1 1\n1 1 1 0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, RejectsTruncatedEntries)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 2\n"
        "1 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, RejectsOutOfRangeIndices)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, RejectsZeroBasedIndices)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "0 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, WriteThenReadRoundTrips)
{
    TripletMatrix m(4, 5);
    m.add(0, 0, 1.5f);
    m.add(3, 4, -2.25f);
    m.add(1, 2, 0.125f);
    m.finalize();

    std::ostringstream out;
    writeMatrixMarket(out, m);
    std::istringstream in(out.str());
    const auto back = readMatrixMarket(in);
    EXPECT_TRUE(m == back);
}

TEST(MmIoTest, CaseInsensitiveHeaderTokens)
{
    std::istringstream in(
        "%%MatrixMarket MATRIX Coordinate REAL General\n"
        "1 1 1\n"
        "1 1 9\n");
    const auto m = readMatrixMarket(in);
    EXPECT_FLOAT_EQ(m.at(0, 0), 9.0f);
}

TEST(MmIoTest, FileRoundTrip)
{
    TripletMatrix m(3, 3);
    m.add(1, 1, 4.0f);
    m.finalize();
    const std::string path = testing::TempDir() + "/copernicus_mm.mtx";
    writeMatrixMarketFile(path, m);
    const auto back = readMatrixMarketFile(path);
    EXPECT_TRUE(m == back);
}

TEST(MmIoTest, MissingFileIsFatal)
{
    EXPECT_THROW(readMatrixMarketFile("/nonexistent/file.mtx"),
                 FatalError);
}

} // namespace
} // namespace copernicus
