/**
 * @file
 * Unit tests for the MatrixMarket reader/writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/status.hh"
#include "matrix/mm_io.hh"

namespace copernicus {
namespace {

TEST(MmIoTest, ReadGeneralReal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "3 4 2\n"
        "1 1 2.5\n"
        "3 4 -1\n");
    const auto m = readMatrixMarket(in);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_FLOAT_EQ(m.at(0, 0), 2.5f);
    EXPECT_FLOAT_EQ(m.at(2, 3), -1.0f);
}

TEST(MmIoTest, ReadPatternAssignsOnes)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n");
    const auto m = readMatrixMarket(in);
    EXPECT_FLOAT_EQ(m.at(0, 1), 1.0f);
    EXPECT_FLOAT_EQ(m.at(1, 0), 1.0f);
}

TEST(MmIoTest, ReadSymmetricExpands)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 4\n"
        "3 3 5\n");
    const auto m = readMatrixMarket(in);
    EXPECT_EQ(m.nnz(), 3u); // off-diagonal mirrored, diagonal not
    EXPECT_FLOAT_EQ(m.at(1, 0), 4.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 4.0f);
    EXPECT_FLOAT_EQ(m.at(2, 2), 5.0f);
}

TEST(MmIoTest, ReadSkewSymmetricNegatesMirror)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 1\n"
        "2 1 3\n");
    const auto m = readMatrixMarket(in);
    EXPECT_FLOAT_EQ(m.at(1, 0), 3.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), -3.0f);
}

TEST(MmIoTest, ReadIntegerField)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 1\n"
        "1 1 7\n");
    const auto m = readMatrixMarket(in);
    EXPECT_FLOAT_EQ(m.at(0, 0), 7.0f);
}

TEST(MmIoTest, RejectsMissingBanner)
{
    std::istringstream in("3 3 0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, RejectsArrayLayout)
{
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, RejectsComplexField)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate complex general\n"
        "1 1 1\n1 1 1 0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, RejectsTruncatedEntries)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 2\n"
        "1 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, RejectsOutOfRangeIndices)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, RejectsZeroBasedIndices)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "0 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, WriteThenReadRoundTrips)
{
    TripletMatrix m(4, 5);
    m.add(0, 0, 1.5f);
    m.add(3, 4, -2.25f);
    m.add(1, 2, 0.125f);
    m.finalize();

    std::ostringstream out;
    writeMatrixMarket(out, m);
    std::istringstream in(out.str());
    const auto back = readMatrixMarket(in);
    EXPECT_TRUE(m == back);
}

TEST(MmIoTest, CaseInsensitiveHeaderTokens)
{
    std::istringstream in(
        "%%MatrixMarket MATRIX Coordinate REAL General\n"
        "1 1 1\n"
        "1 1 9\n");
    const auto m = readMatrixMarket(in);
    EXPECT_FLOAT_EQ(m.at(0, 0), 9.0f);
}

TEST(MmIoTest, FileRoundTrip)
{
    TripletMatrix m(3, 3);
    m.add(1, 1, 4.0f);
    m.finalize();
    const std::string path = testing::TempDir() + "/copernicus_mm.mtx";
    writeMatrixMarketFile(path, m);
    const auto back = readMatrixMarketFile(path);
    EXPECT_TRUE(m == back);
}

TEST(MmIoTest, MissingFileIsFatal)
{
    EXPECT_THROW(readMatrixMarketFile("/nonexistent/file.mtx"),
                 FatalError);
}

TEST(MmIoTest, PatternSymmetricExpands)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "3 3 2\n"
        "2 1\n"
        "3 3\n");
    const auto m = readMatrixMarket(in);
    EXPECT_EQ(m.nnz(), 3u);
    EXPECT_FLOAT_EQ(m.at(1, 0), 1.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 1.0f);
    EXPECT_FLOAT_EQ(m.at(2, 2), 1.0f);
}

TEST(MmIoTest, RejectsPatternSkewSymmetric)
{
    // A skew mirror carries a negated value; a pattern file has no
    // value to negate, so the combination must be refused up front.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern skew-symmetric\n"
        "2 2 1\n"
        "2 1\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, RejectsSkewDiagonalEntry)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 1\n"
        "2 2 3\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, ToleratesCrlfBlankAndCommentLines)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\r\n"
        "\r\n"
        "% a comment between banner and size\r\n"
        "   \t \r\n"
        "2 2 2\r\n"
        "% a comment between entries\r\n"
        "1 1 2.5\r\n"
        "\r\n"
        "2 2 -1\r\n");
    const auto m = readMatrixMarket(in);
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_FLOAT_EQ(m.at(0, 0), 2.5f);
    EXPECT_FLOAT_EQ(m.at(1, 1), -1.0f);
}

TEST(MmIoTest, RejectsHeaderBeyondIndexSpace)
{
    // 5e9 rows parses as a u64 but cannot live in a 32-bit Index;
    // silently truncating would mis-address every entry.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "5000000000 3 1\n"
        "1 1 1.0\n");
    try {
        readMatrixMarket(in);
        FAIL() << "oversized header accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what())
                      .find("exceeds the 32-bit index space"),
                  std::string::npos)
            << err.what();
    }
}

TEST(MmIoTest, RejectsU64OverflowingDimension)
{
    // Larger than 2^64: from_chars reports overflow, which must not
    // wrap around into a plausible small dimension.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "99999999999999999999999999 3 1\n"
        "1 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, RejectsOverflowingEntryCount)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 99999999999999999999999999\n"
        "1 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(MmIoTest, AcceptsLargeButRepresentableHeader)
{
    // 100M-row header (SuiteSparse scale): within the 32-bit index
    // space, so the 1-based entries near the far corner must land.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "100000000 100000000 2\n"
        "1 1 1.5\n"
        "100000000 100000000 -2.5\n");
    const auto m = readMatrixMarket(in);
    EXPECT_EQ(m.rows(), 100000000u);
    EXPECT_EQ(m.cols(), 100000000u);
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.5f);
    EXPECT_FLOAT_EQ(m.at(99999999, 99999999), -2.5f);
}

TEST(MmIoTest, MappedPathMatchesStreamPath)
{
    // Same messy input through the istream parser and the mmap-backed
    // file parser: one shared grammar, identical matrices.
    const std::string text =
        "%%MatrixMarket matrix coordinate real symmetric\r\n"
        "% mixed line endings and noise\r\n"
        "\r\n"
        "3 3 3\n"
        "2 1 4\r\n"
        "\n"
        "3 3 5\n"
        "3 1 -1\r\n";
    std::istringstream in(text);
    const auto fromStream = readMatrixMarket(in);

    const std::string path =
        testing::TempDir() + "/copernicus_mm_parity.mtx";
    {
        std::ofstream out(path, std::ios::binary);
        out << text;
    }
    const auto fromMap = readMatrixMarketFile(path);
    EXPECT_TRUE(fromStream == fromMap);
    std::remove(path.c_str());
}

} // namespace
} // namespace copernicus
