/**
 * @file
 * Cross-format equivalence fuzzing: every format must agree with every
 * other about what matrix a tile holds — same decoded tile, same SpMV
 * result, same non-zero payload — across many randomized structures.
 * Also pins the codecs' documented size restrictions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/status.hh"
#include "formats/registry.hh"
#include "formats/sellcs_format.hh"
#include "kernels/spmv.hh"

namespace copernicus {
namespace {

/** Structured fuzz tiles: pattern varies with the seed. */
Tile
fuzzTile(Index p, std::uint64_t seed)
{
    Rng rng(seed);
    Tile t(p);
    const int pattern = static_cast<int>(rng.below(5));
    switch (pattern) {
      case 0: // uniform random at a random density
      {
        const double density = rng.range(0.01, 0.9);
        for (Index r = 0; r < p; ++r)
            for (Index c = 0; c < p; ++c)
                if (rng.chance(density))
                    t(r, c) = static_cast<Value>(rng.range(-2.0, 2.0));
        break;
      }
      case 1: // band of random half-width
      {
        const Index half = 1 + static_cast<Index>(rng.below(p / 2));
        for (Index r = 0; r < p; ++r)
            for (Index c = (r > half ? r - half : 0);
                 c < std::min(p, r + half + 1); ++c)
                t(r, c) = static_cast<Value>(rng.range(0.5, 1.5));
        break;
      }
      case 2: // a few dense rows
      {
        const Index rows = 1 + static_cast<Index>(rng.below(3));
        for (Index k = 0; k < rows; ++k) {
            const Index r = static_cast<Index>(rng.below(p));
            for (Index c = 0; c < p; ++c)
                t(r, c) = static_cast<Value>(rng.range(0.5, 1.5));
        }
        break;
      }
      case 3: // a few dense columns
      {
        const Index cols = 1 + static_cast<Index>(rng.below(3));
        for (Index k = 0; k < cols; ++k) {
            const Index c = static_cast<Index>(rng.below(p));
            for (Index r = 0; r < p; ++r)
                t(r, c) = static_cast<Value>(rng.range(0.5, 1.5));
        }
        break;
      }
      default: // sparse scatter
        for (Index k = 0; k < p; ++k) {
            t(static_cast<Index>(rng.below(p)),
              static_cast<Index>(rng.below(p))) =
                static_cast<Value>(rng.range(-1.0, 1.0));
        }
    }
    return t;
}

TEST(CrossFormatTest, AllFormatsDecodeToTheSameTile)
{
    for (Index p : {8u, 16u, 32u}) {
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            const Tile tile = fuzzTile(p, seed * 131 + p);
            for (FormatKind kind : allFormats()) {
                const FormatCodec &codec = defaultCodec(kind);
                const Tile decoded = codec.decode(*codec.encode(tile));
                ASSERT_TRUE(decoded == tile)
                    << formatName(kind) << " p=" << p << " seed="
                    << seed;
            }
        }
    }
}

TEST(CrossFormatTest, AllFormatsComputeTheSameSpmv)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const Index p = 16;
        const Tile tile = fuzzTile(p, seed * 257);
        Rng rng(seed);
        std::vector<Value> x(p);
        for (auto &v : x)
            v = static_cast<Value>(rng.range(-1.0, 1.0));
        const auto reference = spmvDense(tile, x);
        for (FormatKind kind : allFormats()) {
            const auto encoded = defaultCodec(kind).encode(tile);
            const auto y = spmvEncoded(*encoded, x);
            for (Index i = 0; i < p; ++i) {
                ASSERT_NEAR(y[i], reference[i],
                            1e-3 * (std::fabs(reference[i]) + 1))
                    << formatName(kind) << " seed=" << seed << " row="
                    << i;
            }
        }
    }
}

TEST(CrossFormatTest, AllFormatsAgreeOnNnz)
{
    const Tile tile = fuzzTile(16, 999);
    const Index nnz = tile.nnz();
    for (FormatKind kind : allFormats()) {
        const auto encoded = defaultCodec(kind).encode(tile);
        EXPECT_EQ(encoded->nnz(), nnz) << formatName(kind);
        EXPECT_EQ(encoded->usefulBytes(), Bytes(nnz) * valueBytes)
            << formatName(kind);
    }
}

TEST(CrossFormatTest, DenseIsTheByteCeilingForSparseTiles)
{
    // At low density every sparse format must undercut dense bytes.
    Rng rng(7);
    Tile t(32);
    for (int k = 0; k < 8; ++k)
        t(static_cast<Index>(rng.below(32)),
          static_cast<Index>(rng.below(32))) = 1.0f;
    const Bytes dense =
        defaultCodec(FormatKind::Dense).encode(t)->totalBytes();
    for (FormatKind kind : sparseFormats()) {
        EXPECT_LT(defaultCodec(kind).encode(t)->totalBytes(), dense)
            << formatName(kind);
    }
}

TEST(CrossFormatTest, DocumentedSizeRestrictions)
{
    // Codecs with divisibility requirements reject odd tile sizes
    // loudly instead of mis-encoding.
    Tile t12(12);
    t12(0, 0) = 1.0f;
    // 12 % 4 == 0: BCSR and SELL accept.
    EXPECT_NO_THROW(defaultCodec(FormatKind::BCSR).encode(t12));
    EXPECT_NO_THROW(defaultCodec(FormatKind::SELL).encode(t12));
    // SELL-C-sigma's window of 8 does not divide 12.
    EXPECT_THROW(defaultCodec(FormatKind::SELLCS).encode(t12),
                 FatalError);

    Tile t6(6);
    t6(0, 0) = 1.0f;
    EXPECT_THROW(defaultCodec(FormatKind::BCSR).encode(t6),
                 FatalError);
    // Formats without divisibility requirements accept any size.
    for (FormatKind kind :
         {FormatKind::Dense, FormatKind::CSR, FormatKind::CSC,
          FormatKind::COO, FormatKind::DOK, FormatKind::LIL,
          FormatKind::ELL, FormatKind::DIA, FormatKind::JDS,
          FormatKind::ELLCOO, FormatKind::BITMAP}) {
        const auto encoded = defaultCodec(kind).encode(t6);
        EXPECT_TRUE(defaultCodec(kind).decode(*encoded) == t6)
            << formatName(kind);
    }
}

} // namespace
} // namespace copernicus
