/**
 * @file
 * Kernel tests: compressed-domain SpMV against the dense reference for
 * every format, dot-engine reduction, SpMM, and partitioned SpMV
 * against whole-matrix CSR.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "kernels/dot_engine.hh"
#include "kernels/spgemm.hh"
#include "kernels/spmm.hh"
#include "kernels/spmv.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

Tile
randomTile(Index p, double density, std::uint64_t seed)
{
    Rng rng(seed);
    Tile t(p);
    for (Index r = 0; r < p; ++r)
        for (Index c = 0; c < p; ++c)
            if (rng.chance(density))
                t(r, c) = static_cast<Value>(rng.range(0.5, 1.5));
    return t;
}

std::vector<Value>
randomVector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Value> x(n);
    for (auto &v : x)
        v = static_cast<Value>(rng.range(-1.0, 1.0));
    return x;
}

TEST(DotEngineTest, TreeSumEmptyIsZero)
{
    EXPECT_FLOAT_EQ(treeSum({}), 0.0f);
}

TEST(DotEngineTest, TreeSumSingle)
{
    const std::vector<Value> v = {3.5f};
    EXPECT_FLOAT_EQ(treeSum(v), 3.5f);
}

TEST(DotEngineTest, TreeSumMatchesSequentialForExactValues)
{
    std::vector<Value> v(16);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<Value>(i + 1);
    EXPECT_FLOAT_EQ(treeSum(v), 136.0f);
}

TEST(DotEngineTest, TreeSumOddLength)
{
    const std::vector<Value> v = {1, 2, 3, 4, 5};
    EXPECT_FLOAT_EQ(treeSum(v), 15.0f);
}

TEST(DotEngineTest, TreeDotMatchesManual)
{
    const std::vector<Value> a = {1, 2, 3, 4};
    const std::vector<Value> b = {5, 6, 7, 8};
    EXPECT_FLOAT_EQ(treeDot(a, b), 5 + 12 + 21 + 32);
}

TEST(DotEngineTest, TreeDotLengthMismatchIsFatal)
{
    const std::vector<Value> a = {1, 2};
    const std::vector<Value> b = {1};
    EXPECT_THROW(treeDot(a, b), FatalError);
}

TEST(SpmvDenseTest, IdentityTile)
{
    Tile t(8);
    for (Index i = 0; i < 8; ++i)
        t(i, i) = 1.0f;
    const auto x = randomVector(8, 1);
    const auto y = spmvDense(t, x);
    for (Index i = 0; i < 8; ++i)
        EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(SpmvDenseTest, WrongOperandLengthIsFatal)
{
    Tile t(8);
    const std::vector<Value> x(7, 1.0f);
    EXPECT_THROW(spmvDense(t, x), FatalError);
}

/** spmvEncoded must agree with the dense reference for every format. */
class SpmvFormatTest : public testing::TestWithParam<FormatKind>
{
};

TEST_P(SpmvFormatTest, MatchesDenseReference)
{
    const FormatCodec &codec = defaultCodec(GetParam());
    for (Index p : {8u, 16u, 32u}) {
        for (double density : {0.05, 0.3, 1.0}) {
            const Tile tile = randomTile(p, density, 31 * p + 7);
            const auto x = randomVector(p, p);
            const auto expected = spmvDense(tile, x);
            const auto encoded = codec.encode(tile);
            const auto actual = spmvEncoded(*encoded, x);
            ASSERT_EQ(actual.size(), expected.size());
            for (Index i = 0; i < p; ++i) {
                EXPECT_NEAR(actual[i], expected[i],
                            1e-4 * (std::fabs(expected[i]) + 1))
                    << formatName(GetParam()) << " p=" << p
                    << " density=" << density << " row=" << i;
            }
        }
    }
}

TEST_P(SpmvFormatTest, EmptyTileGivesZeroVector)
{
    const FormatCodec &codec = defaultCodec(GetParam());
    Tile t(16);
    const auto x = randomVector(16, 2);
    const auto encoded = codec.encode(t);
    for (Value v : spmvEncoded(*encoded, x))
        EXPECT_FLOAT_EQ(v, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, SpmvFormatTest,
                         testing::ValuesIn(allFormats()),
                         [](const testing::TestParamInfo<FormatKind> &i) {
                             return std::string(formatName(i.param));
                         });

TEST(SpmvPartitionedTest, MatchesCsrOnRandomMatrix)
{
    Rng rng(77);
    const auto m = randomMatrix(50, 0.1, rng);
    const CsrMatrix csr(m);
    const auto x = randomVector(50, 3);
    const auto expected = csr.multiply(x);

    for (FormatKind kind : paperFormats()) {
        const auto parts = partition(m, 16);
        const auto y = spmvPartitioned(parts, kind, x);
        // Output is padded to the grid; compare the real prefix.
        ASSERT_GE(y.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_NEAR(y[i], expected[i],
                        1e-3 * (std::fabs(expected[i]) + 1))
                << formatName(kind) << " row " << i;
        }
        for (std::size_t i = expected.size(); i < y.size(); ++i)
            EXPECT_FLOAT_EQ(y[i], 0.0f);
    }
}

TEST(SpmvPartitionedTest, OperandTooLongIsFatal)
{
    TripletMatrix m(8, 8);
    m.add(0, 0, 1.0f);
    m.finalize();
    const auto parts = partition(m, 8);
    const std::vector<Value> x(9, 1.0f);
    EXPECT_THROW(spmvPartitioned(parts, FormatKind::CSR, x), FatalError);
}

TEST(SpmvPartitionedTest, ShortOperandIsZeroExtended)
{
    TripletMatrix m(10, 10);
    m.add(0, 9, 2.0f);
    m.finalize();
    const auto parts = partition(m, 8);
    // Operand of length 10 < padded width 16.
    std::vector<Value> x(10, 1.0f);
    const auto y = spmvPartitioned(parts, FormatKind::COO, x);
    EXPECT_FLOAT_EQ(y[0], 2.0f);
}

TEST(SpmmTest, MatchesManualProduct)
{
    TripletMatrix m(2, 3);
    m.add(0, 0, 1.0f);
    m.add(0, 2, 2.0f);
    m.add(1, 1, 3.0f);
    m.finalize();
    const CsrMatrix a(m);
    DenseMatrix b(3, 2);
    b(0, 0) = 1;
    b(1, 0) = 2;
    b(2, 0) = 3;
    b(0, 1) = 4;
    b(1, 1) = 5;
    b(2, 1) = 6;
    const auto c = spmm(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 1 * 1 + 2 * 3);
    EXPECT_FLOAT_EQ(c(0, 1), 1 * 4 + 2 * 6);
    EXPECT_FLOAT_EQ(c(1, 0), 3 * 2);
    EXPECT_FLOAT_EQ(c(1, 1), 3 * 5);
}

TEST(SpmmTest, DimensionMismatchIsFatal)
{
    TripletMatrix m(2, 3);
    m.finalize();
    const CsrMatrix a(m);
    DenseMatrix b(2, 2);
    EXPECT_THROW(spmm(a, b), FatalError);
}

TEST(SpmmTest, EquivalentToColumnwiseSpmv)
{
    Rng rng(9);
    const auto m = randomMatrix(20, 0.2, rng);
    const CsrMatrix a(m);
    DenseMatrix b(20, 3);
    for (Index r = 0; r < 20; ++r)
        for (Index c = 0; c < 3; ++c)
            b(r, c) = static_cast<Value>(rng.range(-1.0, 1.0));
    const auto product = spmm(a, b);
    for (Index c = 0; c < 3; ++c) {
        std::vector<Value> col(20);
        for (Index r = 0; r < 20; ++r)
            col[r] = b(r, c);
        const auto y = a.multiply(col);
        for (Index r = 0; r < 20; ++r)
            EXPECT_NEAR(product(r, c), y[r], 1e-4);
    }
}

TEST(SpgemmTest, SmallHandProduct)
{
    TripletMatrix a(2, 2), b(2, 2);
    a.add(0, 0, 2.0f);
    a.add(0, 1, 1.0f);
    a.add(1, 1, 3.0f);
    b.add(0, 1, 4.0f);
    b.add(1, 0, 5.0f);
    a.finalize();
    b.finalize();
    const auto c = spgemm(a, b);
    // [2 1; 0 3] * [0 4; 5 0] = [5 8; 15 0]
    EXPECT_FLOAT_EQ(c.at(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 8.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 15.0f);
    EXPECT_EQ(c.nnz(), 3u);
}

TEST(SpgemmTest, IdentityIsNeutral)
{
    Rng rng(41);
    const auto a = randomMatrix(24, 0.2, rng);
    TripletMatrix eye(24, 24);
    for (Index i = 0; i < 24; ++i)
        eye.add(i, i, 1.0f);
    eye.finalize();
    EXPECT_TRUE(spgemm(a, eye) == a);
    EXPECT_TRUE(spgemm(eye, a) == a);
}

TEST(SpgemmTest, MatchesDenseProduct)
{
    Rng rng(42);
    const auto a = randomMatrix(20, 0.3, rng);
    const auto b = randomMatrix(20, 0.3, rng);
    const auto c = spgemm(a, b);

    const auto ad = a.toDense();
    const auto bd = b.toDense();
    for (Index i = 0; i < 20; ++i) {
        for (Index j = 0; j < 20; ++j) {
            Value expect = 0;
            for (Index k = 0; k < 20; ++k)
                expect += ad(i, k) * bd(k, j);
            EXPECT_NEAR(c.at(i, j), expect, 1e-3);
        }
    }
}

TEST(SpgemmTest, RectangularShapes)
{
    TripletMatrix a(2, 3), b(3, 4);
    a.add(0, 2, 1.0f);
    b.add(2, 3, 7.0f);
    a.finalize();
    b.finalize();
    const auto c = spgemm(a, b);
    EXPECT_EQ(c.rows(), 2u);
    EXPECT_EQ(c.cols(), 4u);
    EXPECT_FLOAT_EQ(c.at(0, 3), 7.0f);
    EXPECT_EQ(c.nnz(), 1u);
}

TEST(SpgemmTest, InnerDimensionMismatchIsFatal)
{
    TripletMatrix a(2, 3), b(4, 2);
    a.finalize();
    b.finalize();
    EXPECT_THROW(spgemm(a, b), FatalError);
}

TEST(SpgemmTest, SquareOfAdjacencyCountsPaths)
{
    // A^2 of a path graph counts 2-hop paths.
    TripletMatrix path(4, 4);
    for (Index i = 0; i + 1 < 4; ++i)
        path.add(i, i + 1, 1.0f);
    path.finalize();
    const auto sq = spgemm(path, path);
    EXPECT_FLOAT_EQ(sq.at(0, 2), 1.0f);
    EXPECT_FLOAT_EQ(sq.at(1, 3), 1.0f);
    EXPECT_EQ(sq.nnz(), 2u);
}

} // namespace
} // namespace copernicus
