/**
 * @file
 * Tests for the linear-algebra graph kernels (BFS, SSSP).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/status.hh"
#include "solvers/graph.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

/** Directed path 0 -> 1 -> 2 -> 3 with unit weights. */
TripletMatrix
pathGraph(Index n = 4)
{
    TripletMatrix g(n, n);
    for (Index i = 0; i + 1 < n; ++i)
        g.add(i, i + 1, 1.0f);
    g.finalize();
    return g;
}

TEST(BfsTest, PathLevels)
{
    const auto result = bfs(pathGraph(), 0);
    EXPECT_EQ(result.level, (std::vector<std::uint32_t>{0, 1, 2, 3}));
    EXPECT_EQ(result.reached, 4u);
}

TEST(BfsTest, UnreachableVerticesMarked)
{
    const auto result = bfs(pathGraph(), 2);
    EXPECT_EQ(result.level[0], bfsUnreached);
    EXPECT_EQ(result.level[1], bfsUnreached);
    EXPECT_EQ(result.level[2], 0u);
    EXPECT_EQ(result.level[3], 1u);
    EXPECT_EQ(result.reached, 2u);
}

TEST(BfsTest, DirectionalityRespected)
{
    // Edge 0 -> 1 only: BFS from 1 must not reach 0.
    TripletMatrix g(2, 2);
    g.add(0, 1, 1.0f);
    g.finalize();
    const auto result = bfs(g, 1);
    EXPECT_EQ(result.level[0], bfsUnreached);
}

TEST(BfsTest, CycleCovered)
{
    TripletMatrix ring(5, 5);
    for (Index i = 0; i < 5; ++i)
        ring.add(i, (i + 1) % 5, 1.0f);
    ring.finalize();
    const auto result = bfs(ring, 3);
    EXPECT_EQ(result.reached, 5u);
    EXPECT_EQ(result.level[3], 0u);
    EXPECT_EQ(result.level[2], 4u);
}

TEST(BfsTest, RoundsEqualEccentricity)
{
    const auto result = bfs(pathGraph(6), 0);
    // 5 frontier expansions: the last one discovers nothing.
    EXPECT_EQ(result.rounds, 6u);
}

TEST(BfsTest, InvalidInputsAreFatal)
{
    TripletMatrix rect(2, 3);
    rect.finalize();
    EXPECT_THROW(bfs(rect, 0), FatalError);
    EXPECT_THROW(bfs(pathGraph(), 4), FatalError);
}

TEST(BfsTest, AgreesWithLevelsOnRandomGraph)
{
    // Cross-check: every edge must connect levels differing by <= 1
    // (in the forward direction), the BFS tree property.
    Rng rng(31);
    const auto g = rmatGraph(256, 1024, rng);
    const auto result = bfs(g, 0);
    for (const auto &t : g.triplets()) {
        if (result.level[t.row] == bfsUnreached)
            continue;
        ASSERT_NE(result.level[t.col], bfsUnreached);
        EXPECT_LE(result.level[t.col], result.level[t.row] + 1);
    }
}

TEST(SsspTest, PathDistances)
{
    TripletMatrix g(4, 4);
    g.add(0, 1, 2.0f);
    g.add(1, 2, 3.0f);
    g.add(2, 3, 4.0f);
    g.finalize();
    const auto result = sssp(g, 0);
    ASSERT_TRUE(result.valid);
    EXPECT_DOUBLE_EQ(result.distance[0], 0.0);
    EXPECT_DOUBLE_EQ(result.distance[1], 2.0);
    EXPECT_DOUBLE_EQ(result.distance[2], 5.0);
    EXPECT_DOUBLE_EQ(result.distance[3], 9.0);
}

TEST(SsspTest, PicksShorterOfTwoRoutes)
{
    TripletMatrix g(3, 3);
    g.add(0, 2, 10.0f); // direct
    g.add(0, 1, 1.0f);  // detour, cheaper
    g.add(1, 2, 2.0f);
    g.finalize();
    const auto result = sssp(g, 0);
    EXPECT_DOUBLE_EQ(result.distance[2], 3.0);
}

TEST(SsspTest, UnreachableIsInfinite)
{
    const auto result = sssp(pathGraph(), 2);
    EXPECT_EQ(result.distance[0], ssspUnreached());
    EXPECT_DOUBLE_EQ(result.distance[3], 1.0);
}

TEST(SsspTest, NegativeEdgeHandled)
{
    TripletMatrix g(3, 3);
    g.add(0, 1, 5.0f);
    g.add(1, 2, -3.0f);
    g.finalize();
    const auto result = sssp(g, 0);
    ASSERT_TRUE(result.valid);
    EXPECT_DOUBLE_EQ(result.distance[2], 2.0);
}

TEST(SsspTest, NegativeCycleDetected)
{
    TripletMatrix g(3, 3);
    g.add(0, 1, 1.0f);
    g.add(1, 2, -2.0f);
    g.add(2, 1, 1.0f); // cycle 1 -> 2 -> 1 of weight -1
    g.finalize();
    const auto result = sssp(g, 0);
    EXPECT_FALSE(result.valid);
}

TEST(SsspTest, MatchesBfsOnUnitWeights)
{
    Rng rng(32);
    const auto g = rmatGraph(128, 512, rng);
    const auto levels = bfs(g, 0);
    const auto dist = sssp(g, 0);
    ASSERT_TRUE(dist.valid);
    for (Index v = 0; v < 128; ++v) {
        if (levels.level[v] == bfsUnreached) {
            EXPECT_EQ(dist.distance[v], ssspUnreached());
        } else {
            EXPECT_DOUBLE_EQ(dist.distance[v],
                             static_cast<double>(levels.level[v]));
        }
    }
}

TEST(SsspTest, InvalidInputsAreFatal)
{
    TripletMatrix rect(2, 3);
    rect.finalize();
    EXPECT_THROW(sssp(rect, 0), FatalError);
    EXPECT_THROW(sssp(pathGraph(), 9), FatalError);
}

} // namespace
} // namespace copernicus
