/**
 * @file
 * FPGA resource/power model tests: Table-2 calibration points come back
 * verbatim, structural extrapolation stays sane, and the power
 * breakdown honors the calibrated totals.
 */

#include <gtest/gtest.h>

#include "common/status.hh"
#include "fpga/power_model.hh"
#include "fpga/resource_model.hh"

namespace copernicus {
namespace {

TEST(ResourceModelTest, CalibrationMatchesTable2Spots)
{
    // Spot-check rows of Table 2.
    const auto dense16 = paperCalibration(FormatKind::Dense, 16);
    ASSERT_TRUE(dense16.has_value());
    EXPECT_DOUBLE_EQ(dense16->bram18k, 16);
    EXPECT_DOUBLE_EQ(dense16->ffK, 1.9);
    EXPECT_DOUBLE_EQ(dense16->lutK, 0.7);

    const auto dia32 = paperCalibration(FormatKind::DIA, 32);
    ASSERT_TRUE(dia32.has_value());
    EXPECT_DOUBLE_EQ(dia32->bram18k, 11);
    EXPECT_DOUBLE_EQ(dia32->ffK, 9.2);

    const auto ell8 = paperCalibration(FormatKind::ELL, 8);
    ASSERT_TRUE(ell8.has_value());
    EXPECT_DOUBLE_EQ(ell8->bram18k, 1);
}

TEST(ResourceModelTest, NoCalibrationForExtensionsOrOddSizes)
{
    EXPECT_FALSE(paperCalibration(FormatKind::DOK, 16).has_value());
    EXPECT_FALSE(paperCalibration(FormatKind::CSR, 12).has_value());
}

TEST(ResourceModelTest, EstimateReturnsCalibrationWhenAvailable)
{
    const auto est = estimateResources(FormatKind::CSR, 16);
    EXPECT_TRUE(est.calibrated);
    EXPECT_DOUBLE_EQ(est.bram18k, 2);
    EXPECT_DOUBLE_EQ(est.ffK, 0.8);
}

TEST(ResourceModelTest, BcsrMatchesDenseBramUsage)
{
    // Section 6.4: "BCSR utilizes the same blocks as the dense
    // implementation does."
    for (Index p : {8u, 16u, 32u}) {
        EXPECT_DOUBLE_EQ(estimateResources(FormatKind::BCSR, p).bram18k,
                         estimateResources(FormatKind::Dense, p).bram18k);
    }
}

TEST(ResourceModelTest, CsrCscUseFewestBrams)
{
    // Section 6.4: CSR and CSC utilized the lowest BRAM counts.
    for (Index p : {8u, 16u}) {
        const double csr = estimateResources(FormatKind::CSR, p).bram18k;
        const double csc = estimateResources(FormatKind::CSC, p).bram18k;
        for (FormatKind kind :
             {FormatKind::Dense, FormatKind::BCSR, FormatKind::LIL,
              FormatKind::DIA, FormatKind::COO}) {
            const double other = estimateResources(kind, p).bram18k;
            EXPECT_LE(std::min(csr, csc), other)
                << formatName(kind) << " p=" << p;
        }
    }
}

TEST(ResourceModelTest, ExtensionEstimatesArePositive)
{
    for (FormatKind kind : extensionFormats()) {
        for (Index p : {8u, 16u, 32u}) {
            const auto est = estimateResources(kind, p);
            EXPECT_FALSE(est.calibrated);
            EXPECT_GT(est.bram18k, 0.0) << formatName(kind);
            EXPECT_GT(est.ffK, 0.0) << formatName(kind);
            EXPECT_GT(est.lutK, 0.0) << formatName(kind);
        }
    }
}

TEST(ResourceModelTest, UncalibratedPartitionSizeInterpolates)
{
    const auto est = estimateResources(FormatKind::Dense, 64);
    EXPECT_FALSE(est.calibrated);
    // Dense BRAM scales with p: extrapolating past 32 must exceed it.
    EXPECT_GT(est.bram18k, 32.0);
}

TEST(ResourceModelTest, ZeroPartitionIsFatal)
{
    EXPECT_THROW(estimateResources(FormatKind::CSR, 0), FatalError);
}

TEST(ResourceModelTest, UtilizationPercentages)
{
    const ResourceEstimate est{14.0, 10.64, 5.32, true};
    const auto util = utilization(est);
    EXPECT_DOUBLE_EQ(util.bramPct, 10.0);
    EXPECT_DOUBLE_EQ(util.ffPct, 10.0);
    EXPECT_DOUBLE_EQ(util.lutPct, 10.0);
}

TEST(ResourceModelTest, AllPaperPointsFitTheDevice)
{
    const DeviceCapacity device;
    for (FormatKind kind : paperFormats()) {
        for (Index p : {8u, 16u, 32u}) {
            const auto est = estimateResources(kind, p);
            EXPECT_LT(est.bram18k, device.bram18k);
            EXPECT_LT(est.ffK, device.ffK);
            EXPECT_LT(est.lutK, device.lutK);
        }
    }
}

TEST(ResourceModelTest, EllFfPeaksAtMidPartition)
{
    // Section 6.4: smaller ELL partitions buffer in flip-flops rather
    // than BRAM, so FF usage *drops* at p=32 (Table 2: 2.0/3.2/0.9).
    const double ff8 = estimateResources(FormatKind::ELL, 8).ffK;
    const double ff16 = estimateResources(FormatKind::ELL, 16).ffK;
    const double ff32 = estimateResources(FormatKind::ELL, 32).ffK;
    EXPECT_GT(ff16, ff8);
    EXPECT_LT(ff32, ff8);
}

TEST(ResourceModelTest, LilAndDiaFfGrowSteeplyWithPartition)
{
    // Table 2's FF columns: LIL 2.9/5.8/9.1 and DIA 2.2/5.0/9.2 —
    // the wide parallel merge structures scale with p.
    for (FormatKind kind : {FormatKind::LIL, FormatKind::DIA}) {
        const double ff8 = estimateResources(kind, 8).ffK;
        const double ff32 = estimateResources(kind, 32).ffK;
        EXPECT_GT(ff32, 3.0 * ff8) << formatName(kind);
    }
}

TEST(PowerModelTest, CalibratedTotalsMatchTable2)
{
    EXPECT_DOUBLE_EQ(*paperDynamicPower(FormatKind::Dense, 16), 0.08);
    EXPECT_DOUBLE_EQ(*paperDynamicPower(FormatKind::DIA, 16), 0.12);
    EXPECT_DOUBLE_EQ(*paperDynamicPower(FormatKind::CSC, 8), 0.01);
    EXPECT_FALSE(paperDynamicPower(FormatKind::DOK, 16).has_value());
}

TEST(PowerModelTest, BreakdownSumsToCalibratedTotal)
{
    for (FormatKind kind : paperFormats()) {
        for (Index p : {8u, 16u, 32u}) {
            const auto power = estimatePower(kind, p);
            EXPECT_NEAR(power.dynamicW(), *paperDynamicPower(kind, p),
                        1e-9)
                << formatName(kind) << " p=" << p;
            EXPECT_GT(power.logicW, 0.0);
            EXPECT_GT(power.bramW, 0.0);
            EXPECT_GT(power.signalsW, 0.0);
        }
    }
}

TEST(PowerModelTest, StaticPowerGroups)
{
    // Section 6.4's two static-power groups.
    for (FormatKind kind : {FormatKind::Dense, FormatKind::CSR,
                            FormatKind::BCSR, FormatKind::LIL,
                            FormatKind::ELL}) {
        EXPECT_DOUBLE_EQ(paperStaticPower(kind), 0.121);
    }
    for (FormatKind kind :
         {FormatKind::CSC, FormatKind::COO, FormatKind::DIA}) {
        EXPECT_DOUBLE_EQ(paperStaticPower(kind), 0.103);
    }
}

TEST(PowerModelTest, EstimateIncludesStatic)
{
    const auto power = estimatePower(FormatKind::COO, 16);
    EXPECT_DOUBLE_EQ(power.staticW, 0.103);
    EXPECT_DOUBLE_EQ(power.totalW(), power.dynamicW() + power.staticW);
}

TEST(PowerModelTest, ExtensionPowerIsAnchoredAndPositive)
{
    for (FormatKind kind : extensionFormats()) {
        const auto power = estimatePower(kind, 16);
        EXPECT_GT(power.dynamicW(), 0.0) << formatName(kind);
        EXPECT_LT(power.dynamicW(), 1.0) << formatName(kind);
    }
}

TEST(PowerModelTest, SignalsDominateTheBreakdown)
{
    // Section 6.4: overall dynamic power "more generally follows the
    // same trend as the power consumption of signals".
    int signal_heavy = 0, total = 0;
    for (FormatKind kind : paperFormats()) {
        for (Index p : {8u, 16u, 32u}) {
            const auto power = estimatePower(kind, p);
            signal_heavy += power.signalsW >= power.bramW &&
                            power.signalsW >= power.logicW;
            ++total;
        }
    }
    EXPECT_GT(signal_heavy * 2, total);
}

} // namespace
} // namespace copernicus
