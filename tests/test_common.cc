/**
 * @file
 * Unit tests for src/common: math helpers, RNG, status, logging.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/math.hh"
#include "common/rng.hh"
#include "common/status.hh"

namespace copernicus {
namespace {

TEST(MathTest, CeilDivExactAndInexact)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(ceilDiv(8, 4), 2u);
    EXPECT_EQ(ceilDiv(9, 4), 3u);
}

TEST(MathTest, CeilDivLargeValues)
{
    EXPECT_EQ(ceilDiv(1ULL << 40, 3), ((1ULL << 40) + 2) / 3);
}

TEST(MathTest, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1024));
    EXPECT_FALSE(isPow2(1023));
}

TEST(MathTest, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(8), 3u);
    EXPECT_EQ(log2Ceil(9), 4u);
    EXPECT_EQ(log2Ceil(16), 4u);
    EXPECT_EQ(log2Ceil(17), 5u);
    EXPECT_EQ(log2Ceil(32), 5u);
}

TEST(MathTest, RoundUp)
{
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(roundUp(1, 8), 8u);
    EXPECT_EQ(roundUp(8, 8), 8u);
    EXPECT_EQ(roundUp(9, 8), 16u);
}

TEST(StatusTest, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
    try {
        fatal("bad config");
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad config");
    }
}

TEST(StatusTest, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("broken invariant"), PanicError);
}

TEST(StatusTest, FatalErrorsAreCopernicusErrors)
{
    EXPECT_THROW(fatal("x"), Error);
    EXPECT_THROW(panic("x"), Error);
}

TEST(StatusTest, ConditionalHelpersFireOnlyWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "no"));
    EXPECT_NO_THROW(panicIf(false, "no"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.below(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    // All ten residues should appear in 2000 draws.
    EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, BelowOneIsAlwaysZero)
{
    Rng rng(11);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(RngTest, RangeBounds)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.range(2.0, 5.0);
        ASSERT_GE(v, 2.0);
        ASSERT_LT(v, 5.0);
    }
}

TEST(RngTest, SplitMix64AdvancesState)
{
    std::uint64_t state = 0;
    const auto a = splitMix64(state);
    const auto b = splitMix64(state);
    EXPECT_NE(a, b);
    EXPECT_NE(state, 0u);
}

TEST(LoggingTest, LevelRoundTrip)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(saved);
}

TEST(LoggingTest, EmittersDoNotThrow)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn); // silence output during the test run
    EXPECT_NO_THROW(debug("debug message"));
    EXPECT_NO_THROW(inform("info message"));
    EXPECT_NO_THROW(warn("warn message"));
    setLogLevel(saved);
}

/**
 * Hammer the logger from many threads and prove whole-line emission:
 * the serve daemon logs from acceptor, connection and pool-worker
 * threads at once, and a torn line would corrupt every artifact that
 * greps stderr. Redirects fd 2 to a file for the duration, then checks
 * every captured line is exactly one complete message.
 */
TEST(LoggingTest, ConcurrentEmittersNeverTearLines)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Info);

    const std::string path = "/tmp/copernicus_log_hammer_" +
                             std::to_string(::getpid()) + ".txt";
    std::fflush(stderr);
    const int savedFd = ::dup(2);
    ASSERT_GE(savedFd, 0);
    const int fileFd =
        ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
    ASSERT_GE(fileFd, 0);
    ASSERT_GE(::dup2(fileFd, 2), 0);
    ::close(fileFd);

    constexpr int threadCount = 8;
    constexpr int perThread = 200;
    // The payload ends in a sentinel so a line truncated or spliced by
    // a racing writer can't still look complete.
    const std::string payload(24, 'x');
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < threadCount; ++t) {
            threads.emplace_back([t, &payload] {
                for (int i = 0; i < perThread; ++i)
                    inform("hammer t" + std::to_string(t) + " m" +
                           std::to_string(i) + " " + payload + "END");
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }
    std::fflush(stderr);
    ASSERT_GE(::dup2(savedFd, 2), 0);
    ::close(savedFd);
    setLogLevel(saved);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    const std::string expectedTail = payload + "END";
    int hammerLines = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("hammer") == std::string::npos)
            continue; // unrelated message from another component
        ++hammerLines;
        // One complete message per line: the prefix at the start, the
        // sentinel at the very end, and no second message spliced in.
        EXPECT_EQ(line.rfind("info: hammer t", 0), 0u) << line;
        ASSERT_GE(line.size(), expectedTail.size());
        EXPECT_EQ(line.substr(line.size() - expectedTail.size()),
                  expectedTail)
            << line;
        EXPECT_EQ(line.find("info:"), line.rfind("info:")) << line;
    }
    EXPECT_EQ(hammerLines, threadCount * perThread);
    ::unlink(path.c_str());
}

} // namespace
} // namespace copernicus
