/**
 * @file
 * Mutation tests for the encoded-tile grammar validator: corrupt every
 * format's encoding in a format-specific way (swapped row pointers,
 * unsorted COO tuples, dirty ELL padding, misaligned BCSR blocks,
 * out-of-range DIA offsets, broken permutations, ...) and assert the
 * validator reports the exact format and offending invariant id. Also
 * covers the EncodeCache verified-hit path: a cached encoding that
 * fails validation is bypassed with a fresh encode, never trusted.
 *
 * The seeded-defect suite at the bottom does the same for the deep
 * analyzer passes: inject a narrowing cast, an over-subscribed
 * pipelined BRAM chain, a dropped lock annotation, and an
 * undocumented endpoint, and assert each is caught under its expected
 * COP rule id. The rendered diagnostics are pinned against
 * tests/golden/seeded_lint_defects.txt (regenerate with
 * COPERNICUS_REGEN_GOLDEN=1).
 */

#include <algorithm>
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>

#include "analysis/capacity_pass.hh"
#include "analysis/overflow_pass.hh"
#include "analysis/protocol_pass.hh"
#include "analysis/thread_safety_pass.hh"
#include "formats/bcsr_format.hh"
#include "formats/bitmap_format.hh"
#include "formats/coo_format.hh"
#include "formats/csc_format.hh"
#include "formats/csr_format.hh"
#include "formats/dia_format.hh"
#include "formats/dok_format.hh"
#include "formats/ell_format.hh"
#include "formats/ellcoo_format.hh"
#include "formats/encode_cache.hh"
#include "formats/jds_format.hh"
#include "formats/lil_format.hh"
#include "formats/registry.hh"
#include "formats/sell_format.hh"
#include "formats/sellcs_format.hh"
#include "formats/validate.hh"

namespace copernicus {
namespace {

/**
 * p=8 band tile plus two strays, dense enough that every format stores
 * something non-trivial (multi-entry rows/columns, two ELL+COO
 * overflow tuples, four stored diagonals).
 */
Tile
mutationTile()
{
    Tile t(8);
    for (Index r = 0; r < 8; ++r) {
        t(r, r) = Value(1) + Value(r);
        if (r + 1 < 8)
            t(r, r + 1) = 2;
    }
    t(5, 1) = 7;
    t(3, 0) = 5;
    return t;
}

/** Encode mutationTile() as @p kind and hand back the concrete type. */
template <typename Encoded>
std::unique_ptr<EncodedTile>
encodeTile(FormatKind kind)
{
    auto encoded = defaultCodec(kind).encode(mutationTile());
    EXPECT_NE(dynamic_cast<Encoded *>(encoded.get()), nullptr);
    return encoded;
}

/** The pristine encoding must validate; the reference for mutations. */
void
expectClean(const EncodedTile &encoded)
{
    const GrammarReport report = validateEncodedTile(encoded);
    EXPECT_TRUE(report.ok()) << report.toString();
}

/** Assert @p invariant is reported against @p kind, format-qualified. */
void
expectViolation(const EncodedTile &encoded, FormatKind kind,
                const std::string &invariant)
{
    const GrammarReport report = validateEncodedTile(encoded);
    ASSERT_FALSE(report.ok())
        << invariant << " expected but the tile validated clean";
    const bool found = std::any_of(
        report.violations.begin(), report.violations.end(),
        [&](const GrammarViolation &v) {
            return v.format == kind && v.invariant == invariant;
        });
    EXPECT_TRUE(found) << "expected " << invariant << ", got:\n"
                       << report.toString();
    // Every diagnostic names the mutated format, nothing else.
    for (const GrammarViolation &v : report.violations)
        EXPECT_EQ(v.format, kind) << v.toString();
}

TEST(GrammarMutationTest, AllFormatsEncodeClean)
{
    for (FormatKind kind : allFormats())
        expectClean(*defaultCodec(kind).encode(mutationTile()));
}

TEST(GrammarMutationTest, CsrSwappedRowPointers)
{
    auto encoded = encodeTile<CsrEncoded>(FormatKind::CSR);
    auto &csr = static_cast<CsrEncoded &>(*encoded);
    std::swap(csr.offsets[0], csr.offsets[1]);
    expectViolation(*encoded, FormatKind::CSR, "csr.offsets.monotone");
}

TEST(GrammarMutationTest, CsrUnsortedColumns)
{
    auto encoded = encodeTile<CsrEncoded>(FormatKind::CSR);
    auto &csr = static_cast<CsrEncoded &>(*encoded);
    std::swap(csr.colInx[0], csr.colInx[1]);
    expectViolation(*encoded, FormatKind::CSR, "csr.col.sorted");
}

TEST(GrammarMutationTest, CscUnsortedRowsWithinColumn)
{
    auto encoded = encodeTile<CscEncoded>(FormatKind::CSC);
    auto &csc = static_cast<CscEncoded &>(*encoded);
    std::swap(csc.rowInx[0], csc.rowInx[1]);
    expectViolation(*encoded, FormatKind::CSC, "csc.row.sorted");
}

TEST(GrammarMutationTest, CooUnsortedTuples)
{
    auto encoded = encodeTile<CooEncoded>(FormatKind::COO);
    auto &coo = static_cast<CooEncoded &>(*encoded);
    std::swap(coo.rowInx[0], coo.rowInx[1]);
    std::swap(coo.colInx[0], coo.colInx[1]);
    std::swap(coo.values[0], coo.values[1]);
    expectViolation(*encoded, FormatKind::COO, "coo.order");
}

TEST(GrammarMutationTest, BcsrMisalignedBlock)
{
    auto encoded = encodeTile<BcsrEncoded>(FormatKind::BCSR);
    auto &bcsr = static_cast<BcsrEncoded &>(*encoded);
    bcsr.colInx[0] += 1;
    expectViolation(*encoded, FormatKind::BCSR,
                    "bcsr.block.alignment");
}

TEST(GrammarMutationTest, EllDirtyPadding)
{
    auto encoded = encodeTile<EllEncoded>(FormatKind::ELL);
    auto &ell = static_cast<EllEncoded &>(*encoded);
    // Row 0 holds 2 entries against width >= 6: slot 3 is padding.
    ASSERT_EQ(ell.colAt(0, 3), EllEncoded::padMarker);
    ell.valueAt(0, 3) = 9;
    expectViolation(*encoded, FormatKind::ELL, "ell.padding");
}

TEST(GrammarMutationTest, EllNotLeftPushed)
{
    auto encoded = encodeTile<EllEncoded>(FormatKind::ELL);
    auto &ell = static_cast<EllEncoded &>(*encoded);
    ell.valueAt(0, 0) = 0;
    ell.colAt(0, 0) = EllEncoded::padMarker;
    expectViolation(*encoded, FormatKind::ELL, "ell.padding");
}

TEST(GrammarMutationTest, SellTruncatedSlice)
{
    auto encoded = encodeTile<SellEncoded>(FormatKind::SELL);
    auto &sell = static_cast<SellEncoded &>(*encoded);
    sell.slices[0].width += 1;
    expectViolation(*encoded, FormatKind::SELL, "sell.shape");
}

TEST(GrammarMutationTest, SellCsBrokenPermutation)
{
    auto encoded = encodeTile<SellCsEncoded>(FormatKind::SELLCS);
    auto &scs = static_cast<SellCsEncoded &>(*encoded);
    scs.perm[0] = scs.perm[1];
    expectViolation(*encoded, FormatKind::SELLCS, "sellcs.perm");
}

TEST(GrammarMutationTest, DiaOffsetOutOfRange)
{
    auto encoded = encodeTile<DiaEncoded>(FormatKind::DIA);
    auto &dia = static_cast<DiaEncoded &>(*encoded);
    dia.diagonals.back().number = 9; // valid range is [-7, 7]
    expectViolation(*encoded, FormatKind::DIA, "dia.offset.range");
}

TEST(GrammarMutationTest, DiaUnsortedDiagonals)
{
    auto encoded = encodeTile<DiaEncoded>(FormatKind::DIA);
    auto &dia = static_cast<DiaEncoded &>(*encoded);
    ASSERT_GE(dia.diagonals.size(), 2u);
    std::swap(dia.diagonals[0], dia.diagonals[1]);
    expectViolation(*encoded, FormatKind::DIA, "dia.order");
}

TEST(GrammarMutationTest, JdsBrokenPermutation)
{
    auto encoded = encodeTile<JdsEncoded>(FormatKind::JDS);
    auto &jds = static_cast<JdsEncoded &>(*encoded);
    jds.perm()[0] = jds.perm()[1];
    expectViolation(*encoded, FormatKind::JDS, "jds.perm");
}

TEST(GrammarMutationTest, JdsNonMonotonePointers)
{
    auto encoded = encodeTile<JdsEncoded>(FormatKind::JDS);
    auto &jds = static_cast<JdsEncoded &>(*encoded);
    const std::span<Index> jdPtr = jds.jdPtr();
    ASSERT_GE(jdPtr.size(), 3u);
    std::swap(jdPtr[1], jdPtr[2]);
    expectViolation(*encoded, FormatKind::JDS, "jds.jdptr.monotone");
}

TEST(GrammarMutationTest, LilUnsortedColumnList)
{
    auto encoded = encodeTile<LilEncoded>(FormatKind::LIL);
    auto &lil = static_cast<LilEncoded &>(*encoded);
    // Column 1 holds rows 0, 1, 5; swapping the first two levels
    // breaks the ascending row order the merge network relies on.
    ASSERT_EQ(lil.rowAt(0, 1), 0u);
    ASSERT_EQ(lil.rowAt(1, 1), 1u);
    std::swap(lil.rowAt(0, 1), lil.rowAt(1, 1));
    std::swap(lil.valueAt(0, 1), lil.valueAt(1, 1));
    expectViolation(*encoded, FormatKind::LIL, "lil.rows.sorted");
}

TEST(GrammarMutationTest, DokKeyOutOfRange)
{
    auto encoded = encodeTile<DokEncoded>(FormatKind::DOK);
    auto &dok = static_cast<DokEncoded &>(*encoded);
    auto stray = dok.table.begin();
    const Value v = stray->second;
    dok.table.erase(stray);
    dok.table[DokEncoded::key(0, 9)] = v; // col 9 exceeds p = 8
    expectViolation(*encoded, FormatKind::DOK, "dok.key.range");
}

TEST(GrammarMutationTest, BitmapPopcountMismatch)
{
    auto encoded = encodeTile<BitmapEncoded>(FormatKind::BITMAP);
    auto &bitmap = static_cast<BitmapEncoded &>(*encoded);
    ASSERT_FALSE(bitmap.test(7, 0));
    bitmap.set(7, 0); // occupancy bit without a backing value
    expectViolation(*encoded, FormatKind::BITMAP, "bitmap.popcount");
}

TEST(GrammarMutationTest, EllCooUnsortedOverflow)
{
    auto encoded = encodeTile<EllCooEncoded>(FormatKind::ELLCOO);
    auto &hybrid = static_cast<EllCooEncoded &>(*encoded);
    ASSERT_GE(hybrid.overflowRows.size(), 2u);
    std::swap(hybrid.overflowRows[0], hybrid.overflowRows[1]);
    std::swap(hybrid.overflowCols[0], hybrid.overflowCols[1]);
    std::swap(hybrid.overflowValues[0], hybrid.overflowValues[1]);
    expectViolation(*encoded, FormatKind::ELLCOO,
                    "ellcoo.overflow.order");
}

/** Restores the validation toggle even if an assertion bails out. */
class ValidationGuard
{
  public:
    ValidationGuard() { setGrammarValidationEnabled(true); }
    ~ValidationGuard() { setGrammarValidationEnabled(false); }
};

TEST(EncodeCacheValidationTest, CorruptedCachedTileIsBypassed)
{
    const ValidationGuard guard;
    EncodeCache cache;
    const FormatRegistry registry;
    const Tile tile = mutationTile();

    // Miss: the cache stores (and returns a pointer aliasing) the
    // fresh encoding. Corrupt the resident copy through that alias,
    // the way a buggy codec or stray write would.
    const auto first = cache.encode(registry, FormatKind::COO, tile);
    auto &coo = const_cast<CooEncoded &>(
        static_cast<const CooEncoded &>(*first));
    // The first two tuples are (0,0) and (0,1): swapping the columns
    // breaks the row-major order invariant.
    std::swap(coo.colInx[0], coo.colInx[1]);
    ASSERT_FALSE(validateEncodedTile(*first).ok());

    // Verified hit: the validator rejects the cached encoding, the
    // cache re-encodes instead of trusting it, and counts the bypass.
    const auto second = cache.encode(registry, FormatKind::COO, tile);
    EXPECT_EQ(cache.stats().validationBypasses, 1u);
    EXPECT_TRUE(validateEncodedTile(*second).ok());
    EXPECT_EQ(registry.codec(FormatKind::COO).decode(*second), tile);
}

TEST(EncodeCacheValidationTest, CleanHitsAreNotBypassed)
{
    const ValidationGuard guard;
    EncodeCache cache;
    const FormatRegistry registry;
    const Tile tile = mutationTile();
    cache.encode(registry, FormatKind::CSR, tile);
    cache.encode(registry, FormatKind::CSR, tile);
    const EncodeCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.validationBypasses, 0u);
}

// ---------------------------------------------------------------- //
// Seeded defects for the deep analyzer passes: each mutant must be
// caught under exactly its expected COP rule id.

bool
hasOnlyId(const LintReport &report, const std::string &id)
{
    return !report.diagnostics.empty() &&
           std::all_of(report.diagnostics.begin(),
                       report.diagnostics.end(),
                       [&](const LintDiagnostic &d) {
                           return d.id == id;
                       });
}

/** COP063: a Cycles total squeezed through a 32-bit cast. */
LintReport
narrowingCastMutant()
{
    LintReport report;
    scanForNarrowingCasts(
        "src/formats/size_model.cc",
        "Bytes total = entries * 12;\n"
        "return static_cast<Index>(total);\n",
        report);
    return report;
}

/** COP070: consecutive pipelined segments over one dual-port bank. */
LintReport
portChainMutant()
{
    ScheduleSpec spec;
    spec.format = FormatKind::ELLCOO;
    SegmentSpec sweep;
    sweep.kind = SegmentKind::Pipelined;
    sweep.name = "ell sweep";
    sweep.bankAccessesPerII = 2;
    SegmentSpec overflow = sweep;
    overflow.name = "overflow loop";
    overflow.bankAccessesPerII = 1;
    spec.segments = {sweep, overflow};
    LintReport report;
    checkPortPressure(spec, HlsConfig(), report);
    return report;
}

/** COP082: a mutex member that lost its annotation wrapper. */
LintReport
droppedAnnotationMutant()
{
    LintReport report;
    scanHeaderForBareMutexes("src/serve/server.hh",
                             "class Server {\n"
                             "    std::mutex admitMutex;\n"
                             "};\n",
                             report);
    return report;
}

/** COP090: a handler shipped without documentation. */
LintReport
undocumentedEndpointMutant()
{
    ProtocolSurface surface;
    surface.handledEndpoints = {"ping", "debug_peek"};
    surface.documentedEndpoints = {"ping"};
    LintReport report;
    checkProtocolSurface(surface, report);
    return report;
}

TEST(SeededDefectTest, NarrowingCastCaughtAsCop063)
{
    const LintReport report = narrowingCastMutant();
    EXPECT_TRUE(hasOnlyId(report, "COP063")) << report.toString();
}

TEST(SeededDefectTest, OverSubscribedChainCaughtAsCop070)
{
    const LintReport report = portChainMutant();
    EXPECT_TRUE(hasOnlyId(report, "COP070")) << report.toString();
    EXPECT_EQ(report.diagnostics[0].segment,
              "ell sweep -> overflow loop");
}

TEST(SeededDefectTest, DroppedLockAnnotationCaughtAsCop082)
{
    const LintReport report = droppedAnnotationMutant();
    EXPECT_TRUE(hasOnlyId(report, "COP082")) << report.toString();
}

TEST(SeededDefectTest, UndocumentedEndpointCaughtAsCop090)
{
    const LintReport report = undocumentedEndpointMutant();
    EXPECT_TRUE(hasOnlyId(report, "COP090")) << report.toString();
    EXPECT_NE(report.diagnostics[0].message.find("debug_peek"),
              std::string::npos)
        << report.toString();
}

/**
 * The rendered diagnostics for all four mutants, pinned golden: a
 * reworded message or a reassigned rule id is a reviewable diff, not
 * a silent behavior change.
 */
TEST(SeededDefectTest, DiagnosticsMatchGolden)
{
    std::ostringstream rendered;
    rendered << narrowingCastMutant().toString()
             << portChainMutant().toString()
             << droppedAnnotationMutant().toString()
             << undocumentedEndpointMutant().toString();

    const std::string path = std::string(COPERNICUS_GOLDEN_DIR) +
                             "/seeded_lint_defects.txt";
    const char *regen = std::getenv("COPERNICUS_REGEN_GOLDEN");
    if (regen != nullptr && regen[0] == '1') {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << rendered.str();
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (regenerate with COPERNICUS_REGEN_GOLDEN=1)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(rendered.str(), golden.str());
}

} // namespace
} // namespace copernicus
