/**
 * @file
 * The CPB1 binary framing layer and its server integration: decoder
 * robustness on every segmentation (byte-at-a-time feeds, frames split
 * across many segments, truncated final frames, oversized and
 * structurally broken headers), dialect parity (the same request must
 * produce byte-identical response payloads over NDJSON and binary),
 * request multiplexing with out-of-order response claiming, per-stream
 * cancellation, the advise/plan_formats result memo, and EINTR
 * resilience of the client I/O loops under a signal storm.
 *
 * Labeled tsan: the multiplex/cancel tests drive concurrent handlers
 * against the event loop, so the suite doubles as the framing
 * concurrency test under -DCOPERNICUS_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/json.hh"
#include "serve/client.hh"
#include "serve/framing.hh"
#include "serve/server.hh"
#include "trace/span.hh"

namespace copernicus {
namespace {

/** A private socket path per fixture so parallel ctest runs coexist. */
std::string
testSocketPath(const std::string &tag)
{
    static int counter = 0;
    return "/tmp/copernicus_framing_" + std::to_string(::getpid()) +
           "_" + tag + "_" + std::to_string(counter++) + ".sock";
}

/** Build a raw 16-byte header (for malformed-input tests). */
std::string
rawHeader(std::uint32_t length, std::uint8_t type, std::uint8_t flags,
          std::uint16_t reserved, std::uint64_t streamId)
{
    std::string header(frameHeaderSize, '\0');
    for (int i = 0; i < 4; ++i)
        header[static_cast<std::size_t>(i)] =
            static_cast<char>((length >> (8 * i)) & 0xff);
    header[4] = static_cast<char>(type);
    header[5] = static_cast<char>(flags);
    header[6] = static_cast<char>(reserved & 0xff);
    header[7] = static_cast<char>((reserved >> 8) & 0xff);
    for (int i = 0; i < 8; ++i)
        header[static_cast<std::size_t>(8 + i)] =
            static_cast<char>((streamId >> (8 * i)) & 0xff);
    return header;
}

// ---------------------------------------------------------------------
// Decoder unit tests (no server).
// ---------------------------------------------------------------------

TEST(FrameDecoderTest, RoundTripSingleAndBackToBackFrames)
{
    const std::string wire =
        encodeFrame(FrameType::Request, 7, "{\"op\": \"ping\"}") +
        encodeFrame(FrameType::Response, 9, "{\"ok\": true}") +
        encodeFrame(FrameType::Cancel, 11, "");
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());

    Frame frame;
    ASSERT_EQ(decoder.next(frame), DecodeResult::GotFrame);
    EXPECT_EQ(frame.type, FrameType::Request);
    EXPECT_EQ(frame.streamId, 7u);
    EXPECT_EQ(frame.payload, "{\"op\": \"ping\"}");

    ASSERT_EQ(decoder.next(frame), DecodeResult::GotFrame);
    EXPECT_EQ(frame.type, FrameType::Response);
    EXPECT_EQ(frame.streamId, 9u);
    EXPECT_EQ(frame.payload, "{\"ok\": true}");

    ASSERT_EQ(decoder.next(frame), DecodeResult::GotFrame);
    EXPECT_EQ(frame.type, FrameType::Cancel);
    EXPECT_EQ(frame.streamId, 11u);
    EXPECT_TRUE(frame.payload.empty());

    EXPECT_EQ(decoder.next(frame), DecodeResult::NeedMore);
    EXPECT_FALSE(decoder.midFrame());
}

TEST(FrameDecoderTest, ByteAtATimeFeedAssemblesOneFrame)
{
    const std::string wire = encodeFrame(
        FrameType::Request, 42, "{\"op\": \"stats\", \"id\": 3}");
    FrameDecoder decoder;
    Frame frame;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        decoder.feed(&wire[i], 1);
        ASSERT_EQ(decoder.next(frame), DecodeResult::NeedMore)
            << "frame completed early at byte " << i;
        EXPECT_TRUE(decoder.midFrame());
    }
    decoder.feed(&wire[wire.size() - 1], 1);
    ASSERT_EQ(decoder.next(frame), DecodeResult::GotFrame);
    EXPECT_EQ(frame.streamId, 42u);
    EXPECT_EQ(frame.payload, "{\"op\": \"stats\", \"id\": 3}");
    EXPECT_FALSE(decoder.midFrame());
}

TEST(FrameDecoderTest, ManyFramesSurviveArbitrarySegmentation)
{
    std::string wire;
    for (std::uint64_t id = 1; id <= 20; ++id)
        appendFrame(wire, FrameType::Request, id,
                    "{\"seq\": " + std::to_string(id) + "}");
    // Prime-sized chunks guarantee every boundary lands mid-header or
    // mid-payload at some point.
    FrameDecoder decoder;
    std::uint64_t expect = 1;
    Frame frame;
    for (std::size_t off = 0; off < wire.size(); off += 7) {
        const std::size_t n = std::min<std::size_t>(7, wire.size() - off);
        decoder.feed(wire.data() + off, n);
        for (;;) {
            const DecodeResult result = decoder.next(frame);
            if (result == DecodeResult::NeedMore)
                break;
            ASSERT_EQ(result, DecodeResult::GotFrame);
            EXPECT_EQ(frame.streamId, expect);
            EXPECT_EQ(frame.payload,
                      "{\"seq\": " + std::to_string(expect) + "}");
            ++expect;
        }
    }
    EXPECT_EQ(expect, 21u);
    EXPECT_FALSE(decoder.midFrame());
}

TEST(FrameDecoderTest, TruncatedFinalFrameIsVisibleAsMidFrame)
{
    const std::string wire =
        encodeFrame(FrameType::Request, 5, "{\"op\": \"ping\"}");
    Frame frame;

    // Truncated mid-header.
    FrameDecoder headerCut;
    headerCut.feed(wire.data(), frameHeaderSize - 6);
    EXPECT_EQ(headerCut.next(frame), DecodeResult::NeedMore);
    EXPECT_TRUE(headerCut.midFrame());

    // Truncated mid-payload.
    FrameDecoder payloadCut;
    payloadCut.feed(wire.data(), wire.size() - 3);
    EXPECT_EQ(payloadCut.next(frame), DecodeResult::NeedMore);
    EXPECT_TRUE(payloadCut.midFrame());
}

TEST(FrameDecoderTest, OversizedFrameIsDiscardedUnbufferedThenRecovers)
{
    FrameDecoder decoder(64);
    const std::string big(1000, 'x');
    const std::string wire =
        encodeFrame(FrameType::Request, 9, big) +
        encodeFrame(FrameType::Request, 10, "{\"after\": true}");

    Frame frame;
    bool sawOversized = false;
    bool sawFollowing = false;
    for (std::size_t off = 0; off < wire.size(); off += 100) {
        const std::size_t n =
            std::min<std::size_t>(100, wire.size() - off);
        decoder.feed(wire.data() + off, n);
        // The discard must not accumulate the payload: whatever is
        // buffered stays bounded by one feed chunk plus a header.
        EXPECT_LE(decoder.bufferedBytes(), 100 + frameHeaderSize);
        for (;;) {
            const DecodeResult result = decoder.next(frame);
            if (result == DecodeResult::NeedMore)
                break;
            if (result == DecodeResult::Oversized) {
                EXPECT_FALSE(sawOversized);
                sawOversized = true;
                EXPECT_EQ(frame.streamId, 9u);
                EXPECT_EQ(decoder.declaredLength(), big.size());
                continue;
            }
            ASSERT_EQ(result, DecodeResult::GotFrame);
            EXPECT_EQ(frame.streamId, 10u);
            EXPECT_EQ(frame.payload, "{\"after\": true}");
            sawFollowing = true;
        }
    }
    EXPECT_TRUE(sawOversized);
    EXPECT_TRUE(sawFollowing);
}

TEST(FrameDecoderTest, StructurallyBrokenHeadersAreFatal)
{
    Frame frame;
    struct Case
    {
        const char *what;
        std::string header;
    };
    const Case cases[] = {
        {"unknown frame type", rawHeader(0, 9, 0, 0, 1)},
        {"non-zero flags", rawHeader(0, 1, 1, 0, 1)},
        {"non-zero reserved", rawHeader(0, 1, 0, 7, 1)},
        {"length beyond hard cap",
         rawHeader(0xffffffffu, 1, 0, 0, 1)},
    };
    for (const Case &c : cases) {
        FrameDecoder decoder;
        decoder.feed(c.header.data(), c.header.size());
        ASSERT_EQ(decoder.next(frame), DecodeResult::Fatal) << c.what;
        EXPECT_FALSE(decoder.error().empty()) << c.what;
        // A broken stream stays broken: later feeds change nothing.
        const std::string good =
            encodeFrame(FrameType::Request, 2, "{}");
        decoder.feed(good.data(), good.size());
        EXPECT_EQ(decoder.next(frame), DecodeResult::Fatal) << c.what;
    }
}

TEST(FrameDecoderTest, AppendFrameMatchesEncodeFrame)
{
    std::string out = "prefix";
    appendFrame(out, FrameType::Response, 123, "{\"ok\": true}");
    EXPECT_EQ(out, "prefix" + encodeFrame(FrameType::Response, 123,
                                          "{\"ok\": true}"));
}

// ---------------------------------------------------------------------
// Server integration.
// ---------------------------------------------------------------------

/** Start a quiet server; drain it on teardown. */
class FramingServerTest : public ::testing::Test
{
  protected:
    void
    startServer(const std::function<void(ServeOptions &)> &tweak = {})
    {
        savedLevel = logLevel();
        setLogLevel(LogLevel::Warn);
        ServeOptions options;
        options.socketPath = testSocketPath("srv");
        options.checkRegistry = false;
        if (tweak)
            tweak(options);
        server = std::make_unique<Server>(std::move(options));
        server->start();
    }

    void
    TearDown() override
    {
        if (server) {
            server->beginShutdown();
            server->waitDrained();
            server.reset();
        }
        setLogLevel(savedLevel);
    }

    ServeClient
    ndjsonClient()
    {
        ServeClient c =
            ServeClient::connectUnix(server->options().socketPath);
        c.setReceiveTimeoutMs(30000);
        return c;
    }

    ServeClient
    binaryClient()
    {
        ServeClient c = ndjsonClient();
        c.enableBinaryFraming();
        return c;
    }

    /** Raw connected fd for malformed-wire tests; caller closes. */
    int
    rawConnect()
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path,
                     server->options().socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        EXPECT_EQ(::connect(
                      fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)),
                  0);
        return fd;
    }

    /** Poll metricsText() until @p needle appears (loop is async). */
    bool
    metricsContain(const std::string &needle, int deadlineMs = 3000)
    {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(deadlineMs);
        while (std::chrono::steady_clock::now() < deadline) {
            if (server->metricsText().find(needle) !=
                std::string::npos)
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        return false;
    }

    std::unique_ptr<Server> server;
    LogLevel savedLevel = LogLevel::Info;
};

TEST_F(FramingServerTest, BinaryPingRoundTrip)
{
    startServer();
    ServeClient c = binaryClient();
    const JsonValue r = c.call("ping");
    EXPECT_TRUE(r.boolOr("ok", false));
    EXPECT_EQ(r.stringOr("op", ""), "ping");
    const JsonValue *result = r.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->boolOr("pong", false));
}

/**
 * Golden dialect parity: the same request must yield byte-identical
 * response payloads whether it travels as an NDJSON line or a CPB1
 * frame — the framing layer multiplexes, it never re-encodes.
 * Observability is off so responses carry no per-request trace ids,
 * and the memo is off so both dialects compute independently.
 */
TEST_F(FramingServerTest, NdjsonAndBinaryResponsesAreByteIdentical)
{
    startServer([](ServeOptions &options) {
        options.observability = false;
        options.memoBytes = 0;
    });
    const std::string requests[] = {
        "{\"op\": \"ping\", \"id\": 1}",
        "{\"op\": \"advise\", \"id\": 2, \"params\": {\"matrix\": "
        "{\"kind\": \"band\", \"n\": 64, \"width\": 4, \"seed\": 1}, "
        "\"goal\": \"latency\"}}",
        "{\"op\": \"run_study\", \"id\": 3, \"params\": {\"matrix\": "
        "{\"kind\": \"random\", \"n\": 48, \"density\": 0.05, "
        "\"seed\": 2}, \"partitions\": [16, 32]}}",
        "{\"op\": \"explode\", \"id\": 4}",
    };
    ServeClient ndjson = ndjsonClient();
    ServeClient binary = binaryClient();
    for (const std::string &request : requests) {
        const std::string viaLine = ndjson.requestLine(request);
        const std::string viaFrame = binary.requestLine(request);
        EXPECT_EQ(viaLine, viaFrame) << request;
    }
}

TEST_F(FramingServerTest, MultiplexedResponsesClaimedOutOfOrder)
{
    startServer([](ServeOptions &options) { options.workers = 2; });
    ServeClient c = binaryClient();

    // A long sleep and a ping in flight together; the ping's response
    // must be claimable while the sleep still occupies its worker.
    const std::uint64_t slow =
        c.startCall("sleep", "{\"ms\": 300}");
    const std::uint64_t quick = c.startCall("ping");
    const auto start = std::chrono::steady_clock::now();
    const JsonValue quickR = c.awaitCall(quick);
    const double quickMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_TRUE(quickR.boolOr("ok", false));
    EXPECT_LT(quickMs, 250.0)
        << "ping response was serialized behind the sleep";
    const JsonValue slowR = c.awaitCall(slow);
    EXPECT_TRUE(slowR.boolOr("ok", false));

    // Out-of-order claiming also works once both responses arrived.
    const std::uint64_t first = c.startCall("ping");
    const std::uint64_t second = c.startCall("ping");
    EXPECT_TRUE(c.awaitCall(second).boolOr("ok", false));
    EXPECT_TRUE(c.awaitCall(first).boolOr("ok", false));
}

TEST_F(FramingServerTest, CancelStreamLeavesSiblingUnaffected)
{
    startServer([](ServeOptions &options) { options.workers = 2; });
    ServeClient c = binaryClient();

    const std::uint64_t doomed =
        c.startCall("sleep", "{\"ms\": 30000}");
    const std::uint64_t sibling =
        c.startCall("sleep", "{\"ms\": 50}");
    c.cancelCall(doomed);

    const JsonValue cancelled = c.awaitCall(doomed);
    EXPECT_FALSE(cancelled.boolOr("ok", true));
    EXPECT_EQ(cancelled.stringOr("error", ""), "cancelled");

    const JsonValue ok = c.awaitCall(sibling);
    EXPECT_TRUE(ok.boolOr("ok", false));
    EXPECT_EQ(ok.stringOr("error", ""), "");

    // The connection is fully usable afterwards.
    EXPECT_TRUE(c.call("ping").boolOr("ok", false));
    EXPECT_TRUE(metricsContain(
        "copernicus_serve_streams_cancelled_total 1"));
}

TEST_F(FramingServerTest, CancellingUnknownStreamIsSilentlyIgnored)
{
    startServer();
    ServeClient c = binaryClient();
    c.cancelCall(9999);
    EXPECT_TRUE(c.call("ping").boolOr("ok", false));
    EXPECT_TRUE(
        metricsContain("copernicus_serve_streams_cancelled_total 0"));
}

TEST_F(FramingServerTest, DuplicateInFlightStreamIdIsRejected)
{
    startServer([](ServeOptions &options) { options.workers = 2; });
    ServeClient c = binaryClient();
    const int fd = rawConnect();
    ASSERT_EQ(::send(fd, framingMagic.data(), framingMagic.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(framingMagic.size()));
    const std::string sleepReq = encodeFrame(
        FrameType::Request, 5,
        "{\"op\": \"sleep\", \"id\": 1, \"params\": {\"ms\": 400}}");
    const std::string dupReq = encodeFrame(
        FrameType::Request, 5, "{\"op\": \"ping\", \"id\": 2}");
    ASSERT_EQ(::send(fd, sleepReq.data(), sleepReq.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(sleepReq.size()));
    ASSERT_EQ(::send(fd, dupReq.data(), dupReq.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(dupReq.size()));

    // First response on the wire is the duplicate's rejection (the
    // sleep is still running); then the sleep's own success.
    FrameDecoder decoder;
    Frame frame;
    int got = 0;
    char buf[4096];
    while (got < 2) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0);
        decoder.feed(buf, static_cast<std::size_t>(n));
        while (decoder.next(frame) == DecodeResult::GotFrame) {
            ASSERT_EQ(frame.type, FrameType::Response);
            EXPECT_EQ(frame.streamId, 5u);
            JsonValue response;
            ASSERT_TRUE(parseJson(frame.payload, response));
            if (got == 0) {
                EXPECT_EQ(response.stringOr("error", ""),
                          "bad_request");
            } else {
                EXPECT_TRUE(response.boolOr("ok", false));
            }
            ++got;
        }
    }
    ::close(fd);
    EXPECT_TRUE(metricsContain(
        "copernicus_serve_frame_errors_total{reason=\"protocol\"} 1"));
}

TEST_F(FramingServerTest, MemoHitServesIdenticalPayloadWithoutResweep)
{
    startServer(
        [](ServeOptions &options) { options.observability = false; });
    ServeClient c = binaryClient();
    const std::string advise =
        "{\"op\": \"advise\", \"id\": 7, \"params\": {\"matrix\": "
        "{\"kind\": \"band\", \"n\": 96, \"width\": 6, \"seed\": 4}, "
        "\"goal\": \"balanced\"}}";
    const std::string cold = c.requestLine(advise);
    EXPECT_TRUE(metricsContain("copernicus_serve_memo_misses_total 1"));
    const std::string warm = c.requestLine(advise);
    EXPECT_EQ(cold, warm);
    EXPECT_TRUE(metricsContain("copernicus_serve_memo_hits_total 1"));

    // plan_formats memoizes independently of advise.
    const std::string plan =
        "{\"op\": \"plan_formats\", \"id\": 8, \"params\": "
        "{\"matrix\": {\"kind\": \"band\", \"n\": 96, \"width\": 6, "
        "\"seed\": 4}, \"partition_size\": 32}}";
    const std::string planCold = c.requestLine(plan);
    const std::string planWarm = c.requestLine(plan);
    EXPECT_EQ(planCold, planWarm);
    EXPECT_TRUE(metricsContain("copernicus_serve_memo_hits_total 2"));
}

/**
 * The acceptance shape of the memo: a warm advise is served without
 * re-sweeping, observable as a memo hit that records a serve.memo span
 * but no new study.run span.
 */
TEST_F(FramingServerTest, WarmMemoAdviseRunsNoStudySweep)
{
    startServer(); // observability on (the daemon default)
    ServeClient c = binaryClient();
    const std::string advise =
        "{\"op\": \"advise\", \"id\": 1, \"params\": {\"matrix\": "
        "{\"kind\": \"band\", \"n\": 80, \"width\": 4, \"seed\": 9}, "
        "\"goal\": \"latency\"}}";
    // study.run / study.encode / study.partition all live on the
    // "study" track; a memo hit must record none of them (the advise
    // handler itself computes on the serve track).
    const auto countStudySpans = [] {
        std::size_t n = 0;
        for (const SpanRecord &span :
             SpanCollector::global().snapshot())
            if (span.track == "study")
                ++n;
        return n;
    };
    const auto countMemoSpans = [] {
        std::size_t n = 0;
        for (const SpanRecord &span :
             SpanCollector::global().snapshot())
            if (span.name == "serve.memo")
                ++n;
        return n;
    };

    c.requestLine(advise);
    const std::size_t studyAfterCold = countStudySpans();
    const std::size_t memoAfterCold = countMemoSpans();

    c.requestLine(advise);
    EXPECT_EQ(countStudySpans(), studyAfterCold)
        << "warm memo advise re-ran sweep work";
    EXPECT_EQ(countMemoSpans(), memoAfterCold + 1)
        << "warm advise was not served from the memo";
    EXPECT_TRUE(metricsContain("copernicus_serve_memo_hits_total 1"));
}

TEST_F(FramingServerTest, OversizedFrameGetsBadRequestConnectionLives)
{
    startServer([](ServeOptions &options) {
        options.maxFrameBytes = 1024;
    });
    ServeClient c = binaryClient();
    const std::string padding(4096, 'x');
    const std::string raw = c.requestLine(
        "{\"op\": \"ping\", \"id\": 1, \"params\": {\"pad\": \"" +
        padding + "\"}}");
    JsonValue response;
    ASSERT_TRUE(parseJson(raw, response));
    EXPECT_FALSE(response.boolOr("ok", true));
    EXPECT_EQ(response.stringOr("error", ""), "bad_request");

    // The connection and its framing survive the discard.
    EXPECT_TRUE(c.call("ping").boolOr("ok", false));
    EXPECT_TRUE(metricsContain(
        "copernicus_serve_frame_errors_total{reason=\"oversized\"} 1"));
}

TEST_F(FramingServerTest, FrameSplitAcrossManySegmentsIsAssembled)
{
    startServer();
    const int fd = rawConnect();
    const std::string wire =
        std::string(framingMagic) +
        encodeFrame(FrameType::Request, 42,
                    "{\"op\": \"ping\", \"id\": 9}");
    // Dribble the magic and the frame one byte at a time — worst-case
    // TCP segmentation.
    for (char byte : wire) {
        ASSERT_EQ(::send(fd, &byte, 1, MSG_NOSIGNAL), 1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    FrameDecoder decoder;
    Frame frame;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0);
        decoder.feed(buf, static_cast<std::size_t>(n));
        const DecodeResult result = decoder.next(frame);
        if (result == DecodeResult::NeedMore)
            continue;
        ASSERT_EQ(result, DecodeResult::GotFrame);
        break;
    }
    ::close(fd);
    EXPECT_EQ(frame.type, FrameType::Response);
    EXPECT_EQ(frame.streamId, 42u);
    JsonValue response;
    ASSERT_TRUE(parseJson(frame.payload, response));
    EXPECT_TRUE(response.boolOr("ok", false));
    EXPECT_DOUBLE_EQ(response.numberOr("id", 0), 9);
}

TEST_F(FramingServerTest, TruncatedFinalFrameCountsAsTruncated)
{
    startServer();
    const int fd = rawConnect();
    const std::string wire =
        std::string(framingMagic) +
        encodeFrame(FrameType::Request, 3, "{\"op\": \"ping\"}");
    // Magic plus ten header bytes, then a hard close mid-frame.
    ASSERT_EQ(::send(fd, wire.data(), framingMagic.size() + 10,
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(framingMagic.size() + 10));
    ::close(fd);
    EXPECT_TRUE(metricsContain(
        "copernicus_serve_frame_errors_total{reason=\"truncated\"} 1"));
}

TEST_F(FramingServerTest, ResponseFrameFromClientIsProtocolError)
{
    startServer();
    const int fd = rawConnect();
    const std::string wire =
        std::string(framingMagic) +
        encodeFrame(FrameType::Response, 6, "{\"ok\": true}");
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
    FrameDecoder decoder;
    Frame frame;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0);
        decoder.feed(buf, static_cast<std::size_t>(n));
        if (decoder.next(frame) == DecodeResult::GotFrame)
            break;
    }
    ::close(fd);
    EXPECT_EQ(frame.streamId, 6u);
    JsonValue response;
    ASSERT_TRUE(parseJson(frame.payload, response));
    EXPECT_EQ(response.stringOr("error", ""), "bad_request");
    EXPECT_TRUE(metricsContain(
        "copernicus_serve_frame_errors_total{reason=\"protocol\"} 1"));
}

TEST_F(FramingServerTest, MagicPrefixThenDivergenceFallsBackToNdjson)
{
    startServer();
    const int fd = rawConnect();
    // Three bytes of the magic, a pause, then a divergent byte: the
    // sniffer must settle on NDJSON and treat "CPBX" as a request
    // line (a malformed one, answered bad_request).
    ASSERT_EQ(::send(fd, "CPB", 3, MSG_NOSIGNAL), 3);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(::send(fd, "X\n", 2, MSG_NOSIGNAL), 2);
    std::string line;
    char buf[4096];
    while (line.find('\n') == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0);
        line.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    JsonValue response;
    ASSERT_TRUE(parseJson(line.substr(0, line.find('\n')), response));
    EXPECT_EQ(response.stringOr("error", ""), "bad_request");
}

namespace {
void
onUsr1(int)
{
    // Interruption is the point; the handler only needs to exist.
}
} // namespace

TEST_F(FramingServerTest, ClientIoSurvivesEintrSignalStorm)
{
    startServer();
    ServeClient c = binaryClient();

    // SIGUSR1 without SA_RESTART, so every blocking send/recv on the
    // client thread can fail with EINTR mid-call; the client's I/O
    // loops must retry transparently.
    struct sigaction action{};
    struct sigaction saved{};
    action.sa_handler = onUsr1;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    ASSERT_EQ(sigaction(SIGUSR1, &action, &saved), 0);

    std::atomic<bool> stop{false};
    const pthread_t target = pthread_self();
    std::thread storm([&stop, target] {
        while (!stop.load(std::memory_order_relaxed)) {
            pthread_kill(target, SIGUSR1);
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        }
    });
    for (int i = 0; i < 100; ++i) {
        const JsonValue r = c.call("ping");
        ASSERT_TRUE(r.boolOr("ok", false)) << "iteration " << i;
    }
    stop.store(true, std::memory_order_relaxed);
    storm.join();
    ASSERT_EQ(sigaction(SIGUSR1, &saved, nullptr), 0);
}

} // namespace
} // namespace copernicus
