/**
 * @file
 * Tests for the trace subsystem: TraceWriter's Chrome trace_event
 * output, the TraceSink plumbing through the pipelines, and the
 * ScopedTimer / ProfileRegistry host profiler.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <utility>

#include "common/json.hh"
#include "common/rng.hh"
#include "common/status.hh"
#include "pipeline/event_sim.hh"
#include "pipeline/parallel_pipeline.hh"
#include "trace/profile.hh"
#include "trace/trace_writer.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

Partitioning
sampleParts(double density = 0.08)
{
    Rng rng(21);
    return partition(randomMatrix(128, density, rng), 16);
}

TEST(TraceWriterTest, EmitsValidJson)
{
    TraceWriter writer;
    runEventSim(sampleParts(), FormatKind::CSR, HlsConfig(),
                defaultRegistry(), 2, &writer);
    ASSERT_GT(writer.eventCount(), 0u);

    std::ostringstream out;
    writer.write(out);
    const std::string doc = out.str();
    EXPECT_TRUE(jsonValid(doc)) << doc.substr(0, 400);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceWriterTest, TrackBusyMatchesEventSimBusyTotals)
{
    for (FormatKind kind : {FormatKind::CSR, FormatKind::BITMAP,
                            FormatKind::DIA}) {
        TraceWriter writer;
        const auto result =
            runEventSim(sampleParts(), kind, HlsConfig(),
                        defaultRegistry(), 2, &writer);
        // Exact, not just within the 1% acceptance bound: the writer
        // records the very same intervals the simulator accumulates.
        EXPECT_EQ(writer.trackBusy("read"), result.readBusy);
        EXPECT_EQ(writer.trackBusy("compute"), result.computeBusy);
        EXPECT_EQ(writer.trackBusy("write"), result.writeBusy);
    }
}

TEST(TraceWriterTest, EventsNestPerTrack)
{
    TraceWriter writer;
    runEventSim(sampleParts(), FormatKind::COO, HlsConfig(),
                defaultRegistry(), 2, &writer);

    // Within one (pid, track) pair the 'X' events must be disjoint and
    // in nondecreasing start order — one lane per pipeline stage.
    std::map<std::pair<int, std::string>, Cycles> lane_end;
    for (const auto &ev : writer.events()) {
        if (ev.phase != 'X')
            continue;
        auto [it, fresh] =
            lane_end.try_emplace({ev.pid, ev.track}, Cycles(0));
        EXPECT_GE(ev.ts, it->second)
            << "overlap on track " << ev.track;
        it->second = ev.ts + ev.dur;
    }
    EXPECT_GE(lane_end.size(), 3u); // read / compute / write lanes
}

TEST(TraceWriterTest, CounterTimestampsAreMonotonePerCounter)
{
    TraceWriter writer;
    runEventSim(sampleParts(), FormatKind::CSR, HlsConfig(),
                defaultRegistry(), 2, &writer);

    std::map<std::pair<int, std::string>, Cycles> last_ts;
    std::size_t counters = 0;
    for (const auto &ev : writer.events()) {
        if (ev.phase != 'C')
            continue;
        ++counters;
        auto [it, fresh] =
            last_ts.try_emplace({ev.pid, ev.name}, Cycles(0));
        EXPECT_GE(ev.ts, it->second) << "counter " << ev.name;
        it->second = ev.ts;
    }
    EXPECT_GT(counters, 0u);
}

TEST(TraceWriterTest, RecordEventSimMatchesLiveSink)
{
    const auto parts = sampleParts();
    TraceWriter live;
    const auto result = runEventSim(parts, FormatKind::CSR,
                                    HlsConfig(), defaultRegistry(), 2,
                                    &live);

    TraceWriter post;
    post.recordEventSim(result);
    EXPECT_EQ(post.trackBusy("read"), live.trackBusy("read"));
    EXPECT_EQ(post.trackBusy("compute"), live.trackBusy("compute"));
    EXPECT_EQ(post.trackBusy("write"), live.trackBusy("write"));
}

TEST(TraceWriterTest, SinkDoesNotPerturbSimulation)
{
    const auto parts = sampleParts();
    for (FormatKind kind : {FormatKind::CSR, FormatKind::ELL}) {
        const auto bare = runEventSim(parts, kind);
        TraceWriter writer;
        const auto traced = runEventSim(parts, kind, HlsConfig(),
                                        defaultRegistry(), 2, &writer);

        // Bit-identical, field by field.
        EXPECT_EQ(bare.totalCycles, traced.totalCycles);
        EXPECT_EQ(bare.readBusy, traced.readBusy);
        EXPECT_EQ(bare.computeBusy, traced.computeBusy);
        EXPECT_EQ(bare.writeBusy, traced.writeBusy);
        EXPECT_EQ(bare.readStall, traced.readStall);
        EXPECT_EQ(bare.computeStall, traced.computeStall);
        ASSERT_EQ(bare.schedule.size(), traced.schedule.size());
        for (std::size_t i = 0; i < bare.schedule.size(); ++i) {
            EXPECT_EQ(bare.schedule[i].readStart,
                      traced.schedule[i].readStart);
            EXPECT_EQ(bare.schedule[i].readEnd,
                      traced.schedule[i].readEnd);
            EXPECT_EQ(bare.schedule[i].computeStart,
                      traced.schedule[i].computeStart);
            EXPECT_EQ(bare.schedule[i].computeEnd,
                      traced.schedule[i].computeEnd);
            EXPECT_EQ(bare.schedule[i].writeStart,
                      traced.schedule[i].writeStart);
            EXPECT_EQ(bare.schedule[i].writeEnd,
                      traced.schedule[i].writeEnd);
        }
    }
}

TEST(TraceWriterTest, GlobalSinkFallback)
{
    const auto parts = sampleParts();
    TraceWriter writer;
    setActiveTraceSink(&writer);
    runEventSim(parts, FormatKind::CSR);
    setActiveTraceSink(nullptr);
    EXPECT_GT(writer.eventCount(), 0u);

    // With the global sink cleared, no further events are recorded.
    const std::size_t before = writer.eventCount();
    runEventSim(parts, FormatKind::CSR);
    EXPECT_EQ(writer.eventCount(), before);
}

TEST(TraceWriterTest, ParallelPipelineEmitsLaneEvents)
{
    const auto parts = sampleParts();
    TraceWriter writer;
    runParallel(parts, FormatKind::CSR, 4, ScheduleKind::RoundRobin,
                HlsConfig(), defaultRegistry(), &writer);

    std::size_t lanes = 0;
    for (const auto &ev : writer.events())
        if (ev.phase == 'X' && ev.track.rfind("pe", 0) == 0)
            ++lanes;
    EXPECT_GT(lanes, 0u);

    std::ostringstream out;
    writer.write(out);
    EXPECT_TRUE(jsonValid(out.str()));
}

TEST(TraceWriterTest, BackwardsDurationIsRejected)
{
    TraceWriter writer;
    EXPECT_THROW(writer.durationEvent("read", "p0", 10, 5),
                 PanicError);
}

TEST(ProfileTest, DisabledRegistryRecordsNothing)
{
    ProfileRegistry reg;
    ASSERT_FALSE(reg.enabled());
    {
        ScopedTimer timer("quiet", reg);
    }
    EXPECT_TRUE(reg.entries().empty());
}

TEST(ProfileTest, EnabledRegistryAggregates)
{
    ProfileRegistry reg;
    reg.setEnabled(true);
    for (int i = 0; i < 3; ++i) {
        ScopedTimer timer("loop", reg);
    }
    {
        ScopedTimer timer("other", reg);
    }
    const auto entries = reg.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].name, "loop"); // sorted by name
    EXPECT_EQ(entries[0].calls, 3u);
    EXPECT_GE(entries[0].seconds, 0.0);
    EXPECT_GE(entries[0].maxSeconds, 0.0);
    EXPECT_LE(entries[0].maxSeconds, entries[0].seconds);
    EXPECT_EQ(entries[1].name, "other");
    EXPECT_EQ(entries[1].calls, 1u);

    reg.clear();
    EXPECT_TRUE(reg.entries().empty());
    EXPECT_TRUE(reg.enabled()); // clear keeps the enabled state
}

TEST(ProfileTest, ProfileStatsExportsEntries)
{
    ProfileRegistry reg;
    reg.setEnabled(true);
    {
        ScopedTimer timer("alpha.beta", reg);
    }
    const ProfileStats stats(reg);
    EXPECT_EQ(stats.group().name(), "profile");
    EXPECT_NE(stats.group().find("alpha.beta.calls"), nullptr);
    EXPECT_NE(stats.group().find("alpha.beta.seconds"), nullptr);
    EXPECT_NE(stats.group().find("alpha.beta.max_seconds"), nullptr);

    std::ostringstream json;
    stats.dumpJson(json);
    EXPECT_TRUE(jsonValid(json.str()));
    EXPECT_NE(json.str().find("alpha.beta.calls"), std::string::npos);
}

TEST(JsonValidTest, AcceptsWellFormedDocuments)
{
    EXPECT_TRUE(jsonValid("{}"));
    EXPECT_TRUE(jsonValid("[]"));
    EXPECT_TRUE(jsonValid("{\"a\": [1, 2.5, -3e4], \"b\": null}"));
    EXPECT_TRUE(jsonValid("{\"s\": \"q\\\"uote\\u0041\"}"));
    EXPECT_TRUE(jsonValid("  [true, false]  "));
}

TEST(JsonValidTest, RejectsMalformedDocuments)
{
    EXPECT_FALSE(jsonValid(""));
    EXPECT_FALSE(jsonValid("{"));
    EXPECT_FALSE(jsonValid("{\"a\": 1,}"));
    EXPECT_FALSE(jsonValid("{\"a\" 1}"));
    EXPECT_FALSE(jsonValid("[1 2]"));
    EXPECT_FALSE(jsonValid("{\"a\": 01}"));
    EXPECT_FALSE(jsonValid("\"unterminated"));
    EXPECT_FALSE(jsonValid("{} extra"));
    EXPECT_FALSE(jsonValid("{\"bad\": \"\\x\"}"));
}

} // namespace
} // namespace copernicus
