/**
 * @file
 * Property tests over every codec: lossless round-trip and byte
 * accounting across formats x partition sizes x densities x structures.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "formats/registry.hh"

namespace copernicus {
namespace {

Tile
randomTile(Index p, double density, std::uint64_t seed)
{
    Rng rng(seed);
    Tile t(p);
    for (Index r = 0; r < p; ++r)
        for (Index c = 0; c < p; ++c)
            if (rng.chance(density))
                t(r, c) = static_cast<Value>(rng.range(0.5, 1.5));
    return t;
}

using Params = std::tuple<FormatKind, Index, double>;

class CodecProperty : public testing::TestWithParam<Params>
{
  protected:
    FormatKind kind() const { return std::get<0>(GetParam()); }
    Index p() const { return std::get<1>(GetParam()); }
    double density() const { return std::get<2>(GetParam()); }
    const FormatCodec &codec() const { return defaultCodec(kind()); }
};

TEST_P(CodecProperty, RoundTripIsLossless)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const Tile tile = randomTile(p(), density(), seed);
        const auto encoded = codec().encode(tile);
        const Tile back = codec().decode(*encoded);
        EXPECT_TRUE(back == tile)
            << formatName(kind()) << " p=" << p() << " seed=" << seed;
    }
}

TEST_P(CodecProperty, UsefulBytesEqualNnzPayload)
{
    const Tile tile = randomTile(p(), density(), 7);
    const auto encoded = codec().encode(tile);
    EXPECT_EQ(encoded->usefulBytes(), Bytes(tile.nnz()) * valueBytes);
    EXPECT_EQ(encoded->nnz(), tile.nnz());
    EXPECT_EQ(encoded->tileSize(), p());
}

TEST_P(CodecProperty, TotalBytesCoverUsefulBytes)
{
    const Tile tile = randomTile(p(), density(), 11);
    const auto encoded = codec().encode(tile);
    EXPECT_GE(encoded->totalBytes(), encoded->usefulBytes());
    EXPECT_EQ(encoded->totalBytes(),
              encoded->usefulBytes() + encoded->metadataBytes());
    double util = encoded->bandwidthUtilization();
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0);
}

TEST_P(CodecProperty, StreamsSumToTotal)
{
    const Tile tile = randomTile(p(), density(), 13);
    const auto encoded = codec().encode(tile);
    Bytes sum = 0;
    for (Bytes s : encoded->streams())
        sum += s;
    EXPECT_EQ(sum, encoded->totalBytes());
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, CodecProperty,
    testing::Combine(testing::ValuesIn(allFormats()),
                     testing::Values(Index(8), Index(16), Index(32)),
                     testing::Values(0.01, 0.1, 0.5, 1.0)),
    [](const testing::TestParamInfo<Params> &info) {
        return std::string(formatName(std::get<0>(info.param))) + "_p" +
               std::to_string(std::get<1>(info.param)) + "_d" +
               std::to_string(
                   static_cast<int>(std::get<2>(info.param) * 100));
    });

/** Structured edge-case tiles, parameterized over format only. */
class CodecEdgeCases : public testing::TestWithParam<FormatKind>
{
  protected:
    const FormatCodec &codec() const { return defaultCodec(GetParam()); }

    void
    expectRoundTrip(const Tile &tile)
    {
        const auto encoded = codec().encode(tile);
        EXPECT_TRUE(codec().decode(*encoded) == tile)
            << formatName(GetParam());
    }
};

TEST_P(CodecEdgeCases, EmptyTile)
{
    for (Index p : {8u, 16u, 32u}) {
        Tile t(p);
        const auto encoded = codec().encode(t);
        EXPECT_EQ(encoded->usefulBytes(), 0u);
        EXPECT_TRUE(codec().decode(*encoded) == t);
    }
}

TEST_P(CodecEdgeCases, SingleEntryCorners)
{
    const Index p = 16;
    const Index corners[][2] = {
        {0, 0}, {0, p - 1}, {p - 1, 0}, {p - 1, p - 1}};
    for (const auto &corner : corners) {
        Tile t(p);
        t(corner[0], corner[1]) = 42.0f;
        expectRoundTrip(t);
    }
}

TEST_P(CodecEdgeCases, FullTile)
{
    Tile t(16);
    for (Index r = 0; r < 16; ++r)
        for (Index c = 0; c < 16; ++c)
            t(r, c) = static_cast<Value>(r * 16 + c + 1);
    expectRoundTrip(t);
}

TEST_P(CodecEdgeCases, PureDiagonalTile)
{
    Tile t(16);
    for (Index i = 0; i < 16; ++i)
        t(i, i) = static_cast<Value>(i + 1);
    expectRoundTrip(t);
}

TEST_P(CodecEdgeCases, AntiDiagonalTile)
{
    Tile t(16);
    for (Index i = 0; i < 16; ++i)
        t(i, 15 - i) = static_cast<Value>(i + 1);
    expectRoundTrip(t);
}

TEST_P(CodecEdgeCases, SingleDenseRow)
{
    Tile t(16);
    for (Index c = 0; c < 16; ++c)
        t(7, c) = static_cast<Value>(c + 1);
    expectRoundTrip(t);
}

TEST_P(CodecEdgeCases, SingleDenseColumn)
{
    Tile t(16);
    for (Index r = 0; r < 16; ++r)
        t(r, 7) = static_cast<Value>(r + 1);
    expectRoundTrip(t);
}

TEST_P(CodecEdgeCases, FirstAndLastRowOnly)
{
    Tile t(16);
    t(0, 3) = 1.0f;
    t(15, 12) = 2.0f;
    expectRoundTrip(t);
}

TEST_P(CodecEdgeCases, NegativeValuesSurvive)
{
    Tile t(8);
    t(1, 2) = -3.5f;
    t(6, 6) = -0.001f;
    expectRoundTrip(t);
}

TEST_P(CodecEdgeCases, BandedTile)
{
    Tile t(16);
    for (Index r = 0; r < 16; ++r) {
        for (Index c = (r > 2 ? r - 2 : 0); c < std::min<Index>(16, r + 3);
             ++c) {
            t(r, c) = static_cast<Value>(r + c + 1);
        }
    }
    expectRoundTrip(t);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, CodecEdgeCases,
                         testing::ValuesIn(allFormats()),
                         [](const testing::TestParamInfo<FormatKind> &i) {
                             return std::string(formatName(i.param));
                         });

} // namespace
} // namespace copernicus
