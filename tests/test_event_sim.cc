/**
 * @file
 * Tests for the event-driven pipeline simulator, including the bounds
 * that tie it to the analytic steady-state model.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/status.hh"
#include "pipeline/event_sim.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

Partitioning
sampleParts(double density = 0.08)
{
    Rng rng(21);
    return partition(randomMatrix(128, density, rng), 16);
}

TEST(EventSimTest, EmptyMatrix)
{
    TripletMatrix m(32, 32);
    m.finalize();
    const auto result = runEventSim(partition(m, 16), FormatKind::CSR);
    EXPECT_EQ(result.totalCycles, 0u);
    EXPECT_TRUE(result.schedule.empty());
}

TEST(EventSimTest, StagesAreCausallyOrderedPerTile)
{
    const auto result = runEventSim(sampleParts(), FormatKind::CSR);
    for (const auto &slot : result.schedule) {
        EXPECT_LE(slot.readStart, slot.readEnd);
        EXPECT_LE(slot.readEnd, slot.computeStart);
        EXPECT_LE(slot.computeStart, slot.computeEnd);
        EXPECT_LE(slot.computeEnd, slot.writeStart);
        EXPECT_LE(slot.writeStart, slot.writeEnd);
    }
}

TEST(EventSimTest, StagesNeverOverlapWithinAStage)
{
    const auto result = runEventSim(sampleParts(), FormatKind::COO);
    for (std::size_t i = 1; i < result.schedule.size(); ++i) {
        EXPECT_GE(result.schedule[i].readStart,
                  result.schedule[i - 1].readEnd);
        EXPECT_GE(result.schedule[i].computeStart,
                  result.schedule[i - 1].computeEnd);
        EXPECT_GE(result.schedule[i].writeStart,
                  result.schedule[i - 1].writeEnd);
    }
}

TEST(EventSimTest, DoubleBufferingConstraintHolds)
{
    const auto result = runEventSim(sampleParts(), FormatKind::LIL);
    for (std::size_t i = 2; i < result.schedule.size(); ++i) {
        EXPECT_GE(result.schedule[i].readStart,
                  result.schedule[i - 2].computeEnd);
    }
}

/** Bounds against the analytic model, for every paper format. */
class EventSimBoundsTest : public testing::TestWithParam<FormatKind>
{
};

TEST_P(EventSimBoundsTest, BracketsAnalyticModel)
{
    const auto parts = sampleParts();
    const auto event = runEventSim(parts, GetParam());
    const auto analytic = runPipeline(parts, GetParam());

    // Lower bound: no stage can finish before its own busy total.
    EXPECT_GE(event.totalCycles, event.readBusy);
    EXPECT_GE(event.totalCycles, event.computeBusy);
    EXPECT_GE(event.totalCycles, event.writeBusy);

    // Upper bound: the analytic sum-of-bottlenecks (+fill/drain)
    // bounds the event sim up to the double-buffer constraint, which
    // can add at most a few percent of extra serialization (read i
    // also waits on compute i-2).
    EXPECT_LE(static_cast<double>(event.totalCycles),
              1.05 * static_cast<double>(analytic.totalCycles) + 100.0)
        << formatName(GetParam());
}

TEST_P(EventSimBoundsTest, BusyTotalsMatchAnalyticStageSums)
{
    const auto parts = sampleParts();
    const auto event = runEventSim(parts, GetParam());
    const auto analytic = runPipeline(parts, GetParam());
    EXPECT_EQ(event.readBusy, analytic.totalMemoryCycles);
    EXPECT_EQ(event.computeBusy, analytic.totalComputeCycles);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, EventSimBoundsTest,
                         testing::ValuesIn(paperFormats()),
                         [](const testing::TestParamInfo<FormatKind> &i) {
                             return std::string(formatName(i.param));
                         });

TEST(EventSimTest, ComputeBoundWorkloadHasReadStalls)
{
    // CSC is wildly compute-bound: the reader must pause (the paper's
    // "pauses in data transfer").
    const auto result = runEventSim(sampleParts(0.3), FormatKind::CSC);
    EXPECT_GT(result.readStall, 0u);
}

TEST(EventSimTest, MemoryBoundWorkloadHasComputeStalls)
{
    // The dense format at a big partition is memory-bound: compute
    // idles (the paper's "idle computation").
    Rng rng(22);
    const auto parts = partition(randomMatrix(128, 0.3, rng), 32);
    const auto result = runEventSim(parts, FormatKind::Dense);
    EXPECT_GT(result.computeStall, 0u);
}

TEST(EventSimTest, ZeroBuffersIsFatal)
{
    EXPECT_THROW(runEventSim(sampleParts(), FormatKind::CSR,
                             HlsConfig(), defaultRegistry(), 0),
                 FatalError);
}

TEST(EventSimTest, MoreInputBuffersNeverHurt)
{
    const auto parts = sampleParts(0.15);
    Cycles prev = ~Cycles(0);
    for (Index buffers : {1u, 2u, 4u, 8u}) {
        const auto result = runEventSim(parts, FormatKind::CSC,
                                        HlsConfig(), defaultRegistry(),
                                        buffers);
        EXPECT_LE(result.totalCycles, prev) << buffers << " buffers";
        prev = result.totalCycles;
    }
}

TEST(EventSimTest, SingleBufferSerializesReadBehindCompute)
{
    // With one buffer, read i must wait for compute i-1 entirely.
    const auto parts = sampleParts();
    const auto result = runEventSim(parts, FormatKind::CSR,
                                    HlsConfig(), defaultRegistry(), 1);
    for (std::size_t i = 1; i < result.schedule.size(); ++i) {
        EXPECT_GE(result.schedule[i].readStart,
                  result.schedule[i - 1].computeEnd);
    }
}

TEST(EventSimTest, SingleTileTotalsAreExact)
{
    TripletMatrix m(16, 16);
    m.add(3, 4, 1.0f);
    m.finalize();
    const auto parts = partition(m, 16);
    const auto result = runEventSim(parts, FormatKind::COO);
    ASSERT_EQ(result.schedule.size(), 1u);
    const auto &slot = result.schedule.front();
    EXPECT_EQ(slot.readStart, 0u);
    EXPECT_EQ(result.totalCycles, slot.writeEnd);
    EXPECT_EQ(result.totalCycles,
              result.readBusy + result.computeBusy + result.writeBusy);
}

} // namespace
} // namespace copernicus
