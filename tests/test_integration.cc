/**
 * @file
 * Integration tests: end-to-end runs reproducing the paper's headline
 * qualitative claims on small workloads.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "core/scheduler.hh"
#include "core/study.hh"
#include "kernels/spmv.hh"
#include "matrix/reorder.hh"
#include "solvers/pagerank.hh"
#include "workloads/generators.hh"
#include "workloads/suite_catalog.hh"

namespace copernicus {
namespace {

TEST(IntegrationTest, SuiteSurrogateFullStudyRuns)
{
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    study.addWorkload("DW", suiteMatrix("DW").generate(42));
    const auto result = study.run();
    EXPECT_EQ(result.rows.size(), paperFormats().size());
    for (const auto &row : result.rows) {
        EXPECT_GT(row.partitions, 0u);
        EXPECT_GT(row.totalCycles, 0u);
    }
}

TEST(IntegrationTest, CscSlowestOnDenseRandomWorkload)
{
    // Section 6.2: CSC is the slowest format, up to ~27x total latency.
    Rng rng(1);
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    study.addWorkload("random", randomMatrix(96, 0.4, rng));
    const auto result = study.run();
    Cycles csc = 0, worst_other = 0;
    for (const auto &row : result.rows) {
        if (row.format == FormatKind::CSC)
            csc = row.totalCycles;
        else
            worst_other = std::max(worst_other, row.totalCycles);
    }
    EXPECT_GT(csc, worst_other);
}

TEST(IntegrationTest, SparseFormatsBeatDenseOnVerySparseData)
{
    // The entire point of compression: at SuiteSparse-like sparsity,
    // well-matched sparse formats finish faster than dense.
    Rng rng(2);
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    study.addWorkload("sparse", randomMatrix(256, 0.005, rng));
    const auto result = study.run();
    Cycles dense = 0, coo = 0;
    for (const auto &row : result.rows) {
        if (row.format == FormatKind::Dense)
            dense = row.totalCycles;
        if (row.format == FormatKind::COO)
            coo = row.totalCycles;
    }
    EXPECT_LT(coo, dense);
}

TEST(IntegrationTest, DiaBandwidthBestOnDiagonalWorstOffBand)
{
    Rng rng(3);
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    cfg.formats = {FormatKind::DIA, FormatKind::COO};
    Study study(cfg);
    study.addWorkload("diag", diagonalMatrix(128, rng));
    const auto result = study.run();
    double dia_util = 0, coo_util = 0;
    for (const auto &row : result.rows) {
        if (row.format == FormatKind::DIA)
            dia_util = row.bandwidthUtilization;
        else
            coo_util = row.bandwidthUtilization;
    }
    EXPECT_GT(dia_util, 0.9);
    EXPECT_NEAR(coo_util, 1.0 / 3.0, 1e-9);
}

TEST(IntegrationTest, PageRankAgreesWithPartitionedSpmvIteration)
{
    // The graph-analytics pipeline built on the library's own kernels:
    // one power-iteration step computed through compressed tiles matches
    // the CSR reference step.
    Rng rng(4);
    const auto g = rmatGraph(64, 256, rng);

    // Build the column-stochastic transition like pageRank does.
    std::vector<double> out(64, 0.0);
    for (const auto &t : g.triplets())
        out[t.row] += t.value;
    TripletMatrix transition(64, 64);
    for (const auto &t : g.triplets())
        if (out[t.row] > 0)
            transition.add(t.col, t.row,
                           static_cast<Value>(t.value / out[t.row]));
    transition.finalize();

    const CsrMatrix m(transition);
    std::vector<Value> rank(64, 1.0f / 64);
    const auto reference = m.multiply(rank);

    const auto parts = partition(transition, 16);
    const auto tiled = spmvPartitioned(parts, FormatKind::CSR, rank);
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_NEAR(tiled[i], reference[i], 1e-4);
}

TEST(IntegrationTest, SigmaPartitionTrendsForEll)
{
    // Fig. 7: averaged over a workload class, ELL's sigma falls as the
    // partition grows.
    Rng rng(5);
    StudyConfig cfg;
    cfg.formats = {FormatKind::ELL};
    Study study(cfg);
    study.addWorkload("random", randomMatrix(128, 0.02, rng));
    study.addWorkload("band", bandMatrix(128, 4, rng));
    const auto result = study.run();

    double sigma_by_p[3] = {0, 0, 0};
    for (const auto &row : result.rows) {
        const int slot = row.partitionSize == 8
                             ? 0
                             : (row.partitionSize == 16 ? 1 : 2);
        sigma_by_p[slot] += row.meanSigma;
    }
    EXPECT_GT(sigma_by_p[0], sigma_by_p[1]);
    EXPECT_GT(sigma_by_p[1], sigma_by_p[2]);
}

TEST(IntegrationTest, Figure14NormalizationOverRealStudy)
{
    Rng rng(6);
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    study.addWorkload("random", randomMatrix(96, 0.05, rng));
    const auto metrics = study.run().aggregateByFormat();
    const auto scores = normalizeSummary(metrics);
    ASSERT_EQ(scores.size(), paperFormats().size());

    // Someone must be best (1.0) and someone worst (0.0) per metric.
    double best_sigma = 0, worst_sigma = 1;
    for (const auto &s : scores) {
        best_sigma = std::max(best_sigma, s.sigma);
        worst_sigma = std::min(worst_sigma, s.sigma);
    }
    EXPECT_DOUBLE_EQ(best_sigma, 1.0);
    EXPECT_DOUBLE_EQ(worst_sigma, 0.0);
}

TEST(IntegrationTest, MlDensityCrossoverExists)
{
    // Section 8: above density ~0.1 the dense baseline becomes
    // competitive with (or beats) index-heavy sparse formats in total
    // latency; far below it, sparse wins. Check both regimes for CSR.
    Rng rng(7);
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    cfg.formats = {FormatKind::Dense, FormatKind::CSR};
    Study dense_study(cfg);
    dense_study.addWorkload("dense_ml", prunedLayer(96, 96, 0.5, rng));
    Study sparse_study(cfg);
    sparse_study.addWorkload("sparse_ml", prunedLayer(96, 96, 0.01, rng));

    auto ratio = [](const StudyResult &r) {
        Cycles dense = 0, csr = 0;
        for (const auto &row : r.rows) {
            if (row.format == FormatKind::Dense)
                dense = row.totalCycles;
            else
                csr = row.totalCycles;
        }
        return static_cast<double>(csr) / static_cast<double>(dense);
    };
    const double at_half = ratio(dense_study.run());
    const double at_sparse = ratio(sparse_study.run());
    EXPECT_LT(at_sparse, 1.0); // sparse format wins when very sparse
    EXPECT_GT(at_half, at_sparse); // and loses ground as density grows
}

TEST(IntegrationTest, AdaptivePlanWinsOnSuiteSurrogate)
{
    // Real-world-shaped tiles disagree about the best format; the
    // adaptive plan must match or beat every fixed choice end to end.
    const auto m = suiteMatrix("DW").generate(7);
    const auto parts = partition(m, 16);
    const auto adaptive = runAdaptive(parts, paperFormats());
    for (FormatKind kind : paperFormats()) {
        EXPECT_LE(adaptive.totalCycles,
                  runPipeline(parts, kind).totalCycles)
            << formatName(kind);
    }
}

TEST(IntegrationTest, RcmEnablesDiaOnScatteredBandStructure)
{
    // Scramble a band matrix, then show RCM restores DIA's bandwidth
    // utilization - Section 6.1's preprocessing recommendation as an
    // executable claim.
    Rng rng(8);
    const auto band = bandMatrix(128, 4, rng);
    std::vector<Index> scramble(128);
    for (Index i = 0; i < 128; ++i)
        scramble[i] = i;
    for (Index i = 127; i > 0; --i)
        std::swap(scramble[i],
                  scramble[static_cast<Index>(rng.below(i + 1))]);
    const auto scrambled = permuteSymmetric(band, scramble);
    const auto recovered = rcmReorder(scrambled);

    const auto before = runPipeline(partition(scrambled, 16),
                                    FormatKind::DIA);
    const auto after = runPipeline(partition(recovered, 16),
                                   FormatKind::DIA);
    EXPECT_GT(after.bandwidthUtilization,
              2.0 * before.bandwidthUtilization);
    EXPECT_LT(after.totalCycles, before.totalCycles);
}

TEST(IntegrationTest, StudyCsvMatchesRowCount)
{
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    Rng rng(9);
    study.addWorkload("w", randomMatrix(64, 0.05, rng));
    const auto result = study.run();
    std::ostringstream out;
    result.writeCsv(out);
    std::size_t lines = 0;
    for (char ch : out.str())
        lines += ch == '\n';
    EXPECT_EQ(lines, result.rows.size() + 1);
}

} // namespace
} // namespace copernicus
