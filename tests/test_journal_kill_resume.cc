/**
 * @file
 * Kill/resume driver for the sweep journal, in the style of
 * smoke_cli_artifacts: a plain main() that runs the real
 * helper_journal_sweep binary (argv[1]) as a child process.
 *
 * The scenario the journal exists for, end to end with a real SIGKILL
 * rather than an in-process cancellation:
 *
 *   1. run the helper uninterrupted            -> baseline CSV
 *   2. run it again on a fresh journal, wait until the journal holds
 *      at least two completed cells, SIGKILL it mid-sweep
 *   3. rerun against the same journal          -> must resume (skip
 *      the completed cells) and write a CSV byte-identical to the
 *      baseline
 *   4. rerun with a different sweep config     -> the journal is
 *      stale and the helper must refuse loudly
 */

#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

namespace {

int failures = 0;

#define CHECK(cond)                                                    \
    do {                                                               \
        if (!(cond)) {                                                 \
            std::cerr << "FAIL " << __FILE__ << ":" << __LINE__        \
                      << ": " << #cond << "\n";                        \
            ++failures;                                                \
        }                                                              \
    } while (0)

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::size_t
countLines(const std::string &text)
{
    std::size_t lines = 0;
    for (char c : text)
        if (c == '\n')
            ++lines;
    return lines;
}

/** Launch the helper with @p args; returns the child pid. */
pid_t
launch(const std::string &helper, std::vector<std::string> args,
       const std::string &stderrPath)
{
    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    if (!stderrPath.empty())
        if (!std::freopen(stderrPath.c_str(), "w", stderr))
            _exit(127);
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>(helper.c_str()));
    for (std::string &arg : args)
        argv.push_back(arg.data());
    argv.push_back(nullptr);
    execv(helper.c_str(), argv.data());
    _exit(127);
}

/** Run the helper to completion; returns its wait() status. */
int
run(const std::string &helper, const std::vector<std::string> &args,
    const std::string &stderrPath = "")
{
    const pid_t pid = launch(helper, args, stderrPath);
    int status = 0;
    if (waitpid(pid, &status, 0) != pid)
        return -1;
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::cerr << "usage: test_journal_kill_resume "
                     "<helper_journal_sweep binary>\n";
        return 2;
    }
    const std::string helper = argv[1];

    char tmpl[] = "/tmp/copernicus_kill_resume.XXXXXX";
    const char *dirc = mkdtemp(tmpl);
    if (dirc == nullptr) {
        std::cerr << "mkdtemp failed\n";
        return 2;
    }
    const std::string dir = dirc;
    const std::string baseJournal = dir + "/base.ndjson";
    const std::string baseCsv = dir + "/base.csv";
    const std::string journal = dir + "/killed.ndjson";
    const std::string csv = dir + "/killed.csv";
    const std::string stats = dir + "/stats.txt";
    const std::string staleErr = dir + "/stale.err";

    // 1. Uninterrupted baseline.
    int status = run(helper, {baseJournal, baseCsv});
    CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    const std::string baseline = readFile(baseCsv);
    CHECK(!baseline.empty());
    // header + 2 workloads x 2 partition sizes x 3 formats
    CHECK(countLines(baseline) == 13);

    // 2. Fresh journal, slowed sweep; SIGKILL once the journal shows
    //    at least two completed cells (line 1 is the identity line).
    const pid_t victim =
        launch(helper, {journal, csv, "--slow-ms", "40"}, "");
    bool sawProgress = false;
    for (int spin = 0; spin < 4000; ++spin) {
        if (countLines(readFile(journal)) >= 3) {
            sawProgress = true;
            break;
        }
        usleep(10 * 1000);
    }
    CHECK(sawProgress);
    CHECK(kill(victim, SIGKILL) == 0);
    CHECK(waitpid(victim, &status, 0) == victim);
    CHECK(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
    CHECK(readFile(csv).empty()); // died before writing output

    // 3. Resume against the same journal: completes, skips the
    //    recorded cells, and the CSV matches the baseline exactly.
    status = run(helper, {journal, csv, "--stats", stats});
    CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    CHECK(readFile(csv) == baseline);
    const std::string resumed = readFile(stats);
    CHECK(resumed.rfind("resumed=", 0) == 0);
    const long cells = std::strtol(resumed.c_str() + 8, nullptr, 10);
    CHECK(cells >= 2 && cells < 12);

    // 4. Same journal, different sweep shape: stale, refused loudly.
    status = run(helper, {journal, csv, "--partitions", "8,32"},
                 staleErr);
    CHECK(WIFEXITED(status) && WEXITSTATUS(status) != 0);
    const std::string message = readFile(staleErr);
    CHECK(message.find("stale") != std::string::npos);
    CHECK(message.find("sweep config") != std::string::npos);

    if (failures == 0)
        std::printf("test_journal_kill_resume: all checks passed\n");
    return failures == 0 ? 0 : 1;
}
