/**
 * @file
 * Tests for the ASCII scatter-plot renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/ascii_plot.hh"
#include "common/status.hh"

namespace copernicus {
namespace {

TEST(AsciiPlotTest, EmptyPlotSaysSo)
{
    AsciiPlot plot;
    std::ostringstream out;
    plot.render(out);
    EXPECT_NE(out.str().find("(no points)"), std::string::npos);
}

TEST(AsciiPlotTest, TinyCanvasIsFatal)
{
    PlotConfig cfg;
    cfg.width = 4;
    EXPECT_THROW(AsciiPlot{cfg}, FatalError);
}

TEST(AsciiPlotTest, GlyphsAppearOnCanvas)
{
    AsciiPlot plot;
    plot.add(0.0, 0.0, 'a');
    plot.add(10.0, 10.0, 'b');
    std::ostringstream out;
    plot.render(out);
    const std::string text = out.str();
    EXPECT_NE(text.find('a'), std::string::npos);
    EXPECT_NE(text.find('b'), std::string::npos);
}

TEST(AsciiPlotTest, CornersLandAtExtremes)
{
    PlotConfig cfg;
    cfg.width = 10;
    cfg.height = 5;
    AsciiPlot plot(cfg);
    plot.add(0.0, 0.0, 'l');  // bottom-left
    plot.add(1.0, 1.0, 'h');  // top-right
    std::ostringstream out;
    plot.render(out);
    std::istringstream lines(out.str());
    std::string first, line, last;
    std::getline(lines, first); // top canvas row
    last = first;
    std::vector<std::string> rows;
    rows.push_back(first);
    while (std::getline(lines, line) && line[0] == '|')
        rows.push_back(line);
    // Top row holds 'h' at the right edge; bottom canvas row holds
    // 'l' at the left edge.
    EXPECT_EQ(rows.front().back(), 'h');
    EXPECT_EQ(rows[rows.size() - 1][1], 'l');
}

TEST(AsciiPlotTest, NonFiniteAndLogInvalidPointsSkipped)
{
    PlotConfig cfg;
    cfg.logX = true;
    cfg.logY = true;
    AsciiPlot plot(cfg);
    plot.add(0.0, 1.0, 'x');  // log of zero -> skipped
    plot.add(-1.0, 1.0, 'x'); // negative on log -> skipped
    plot.add(1.0 / 0.0, 1.0, 'x'); // inf -> skipped
    EXPECT_EQ(plot.points(), 0u);
    plot.add(10.0, 10.0, 'k');
    EXPECT_EQ(plot.points(), 1u);
}

TEST(AsciiPlotTest, LegendAndLabelsRendered)
{
    PlotConfig cfg;
    cfg.xLabel = "compute";
    cfg.yLabel = "memory";
    AsciiPlot plot(cfg);
    plot.add(1, 1, 'z');
    plot.legend('z', "series-z");
    std::ostringstream out;
    plot.render(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("compute"), std::string::npos);
    EXPECT_NE(text.find("memory"), std::string::npos);
    EXPECT_NE(text.find("z=series-z"), std::string::npos);
}

TEST(AsciiPlotTest, RangesPrinted)
{
    AsciiPlot plot;
    plot.add(2.0, 3.0, 'p');
    plot.add(8.0, 9.0, 'p');
    std::ostringstream out;
    plot.render(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("x: [2"), std::string::npos);
    EXPECT_NE(text.find("9]"), std::string::npos);
}

TEST(AsciiPlotTest, DegenerateSingleValueRangeHandled)
{
    AsciiPlot plot;
    plot.add(5.0, 5.0, 'q');
    plot.add(5.0, 5.0, 'q');
    std::ostringstream out;
    EXPECT_NO_THROW(plot.render(out));
    EXPECT_NE(out.str().find('q'), std::string::npos);
}

} // namespace
} // namespace copernicus
