/**
 * @file
 * Parameterized invariants over the full (format x partition size)
 * design space: every characterization row a Study produces must obey
 * the metric identities regardless of the design point, and all 20
 * SuiteSparse surrogates must survive a full row evaluation.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "core/study.hh"
#include "workloads/generators.hh"
#include "workloads/suite_catalog.hh"

namespace copernicus {
namespace {

using DesignPoint = std::tuple<FormatKind, Index>;

class StudyInvariants : public testing::TestWithParam<DesignPoint>
{
  protected:
    static const Study &
    sharedStudy()
    {
        static const Study study = [] {
            StudyConfig cfg;
            cfg.formats = allFormats();
            Study s(cfg);
            Rng rng(2026);
            s.addWorkload("random", randomMatrix(96, 0.08, rng));
            return s;
        }();
        return study;
    }
};

TEST_P(StudyInvariants, MetricIdentitiesHold)
{
    const auto [kind, p] = GetParam();
    const StudyRow row = sharedStudy().evaluate("random", kind, p);

    // Identities every row must satisfy.
    EXPECT_GT(row.partitions, 0u);
    EXPECT_GT(row.totalCycles, 0u);
    EXPECT_GT(row.meanSigma, 0.0);
    EXPECT_GE(row.bandwidthUtilization, 0.0);
    EXPECT_LE(row.bandwidthUtilization, 1.0);
    EXPECT_GT(row.totalBytes, 0u);
    EXPECT_GT(row.seconds, 0.0);
    EXPECT_NEAR(row.throughput,
                static_cast<double>(row.totalBytes) / row.seconds,
                row.throughput * 1e-9);
    EXPECT_GT(row.balanceRatio, 0.0);
    // Resources and power are populated for every design point.
    EXPECT_GT(row.resources.bram18k, 0.0);
    EXPECT_GT(row.power.dynamicW(), 0.0);
    EXPECT_GT(row.power.staticW, 0.0);

    if (kind == FormatKind::Dense) {
        EXPECT_DOUBLE_EQ(row.meanSigma, 1.0);
    }
    if (kind == FormatKind::COO || kind == FormatKind::DOK) {
        EXPECT_NEAR(row.bandwidthUtilization, 1.0 / 3.0, 1e-12);
    }

    // The pipeline can never move data faster than the memory
    // interface's peak (2 lanes x 8 B x cycle).
    const double peak_bytes_per_cycle = 16.0;
    EXPECT_LE(static_cast<double>(row.totalBytes),
              peak_bytes_per_cycle *
                  static_cast<double>(row.totalCycles));
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, StudyInvariants,
    testing::Combine(testing::ValuesIn(allFormats()),
                     testing::Values(Index(8), Index(16), Index(32))),
    [](const testing::TestParamInfo<DesignPoint> &info) {
        return std::string(formatName(std::get<0>(info.param))) + "_p" +
               std::to_string(std::get<1>(info.param));
    });

/** All 20 surrogates run one full characterization row. */
class SuiteSurrogateRow : public testing::TestWithParam<std::string>
{
};

TEST_P(SuiteSurrogateRow, CharacterizesCleanly)
{
    const auto &info = suiteMatrix(GetParam());
    SuiteMatrixInfo scaled = info;
    scaled.surrogateDim = std::max<Index>(512, info.surrogateDim / 4);
    const auto matrix = scaled.generate(314159);
    ASSERT_GT(matrix.nnz(), 0u);

    StudyConfig cfg;
    cfg.partitionSizes = {16};
    cfg.formats = {FormatKind::Dense, FormatKind::CSR, FormatKind::COO};
    Study study(cfg);
    study.addWorkload(info.id, matrix);
    const auto result = study.run();
    ASSERT_EQ(result.rows.size(), 3u);
    for (const auto &row : result.rows) {
        EXPECT_GT(row.partitions, 0u) << info.id;
        EXPECT_GT(row.totalCycles, 0u) << info.id;
        if (row.format == FormatKind::Dense) {
            EXPECT_DOUBLE_EQ(row.meanSigma, 1.0) << info.id;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTwenty, SuiteSurrogateRow, [] {
        std::vector<std::string> ids;
        for (const auto &info : suiteCatalog())
            ids.push_back(info.id);
        return testing::ValuesIn(ids);
    }());

} // namespace
} // namespace copernicus
