/**
 * @file
 * Analysis-layer tests: table rendering/CSV escaping and the Figure-14
 * min-max normalization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/energy.hh"
#include "analysis/summary.hh"
#include "analysis/table_writer.hh"
#include "common/status.hh"

namespace copernicus {
namespace {

TEST(TableWriterTest, AlignedOutput)
{
    TableWriter table({"format", "sigma"});
    table.addRow({"CSR", "1.5"});
    table.addRow({"DENSE", "1"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("format"), std::string::npos);
    EXPECT_NE(text.find("CSR"), std::string::npos);
    EXPECT_NE(text.find("DENSE"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TableWriterTest, RowWidthMismatchIsFatal)
{
    TableWriter table({"a", "b"});
    EXPECT_THROW(table.addRow({"only one"}), FatalError);
}

TEST(TableWriterTest, EmptyHeaderIsFatal)
{
    EXPECT_THROW(TableWriter({}), FatalError);
}

TEST(TableWriterTest, CsvEscapesSpecialCells)
{
    TableWriter table({"name", "note"});
    table.addRow({"a,b", "say \"hi\""});
    std::ostringstream out;
    table.writeCsv(out);
    EXPECT_EQ(out.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TableWriterTest, RowsCount)
{
    TableWriter table({"x"});
    EXPECT_EQ(table.rows(), 0u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.rows(), 2u);
}

TEST(TableWriterTest, NumFormatsWithPrecision)
{
    EXPECT_EQ(TableWriter::num(1.23456, 3), "1.23");
    EXPECT_EQ(TableWriter::num(1000000.0, 4), "1e+06");
    EXPECT_EQ(TableWriter::num(0.5), "0.5");
}

TEST(BalanceClosenessTest, BestAtOne)
{
    EXPECT_DOUBLE_EQ(balanceCloseness(1.0), 1.0);
    EXPECT_DOUBLE_EQ(balanceCloseness(2.0), 0.5);
    EXPECT_DOUBLE_EQ(balanceCloseness(0.5), 0.5);
    EXPECT_DOUBLE_EQ(balanceCloseness(0.0), 0.0);
    EXPECT_DOUBLE_EQ(balanceCloseness(-1.0), 0.0);
}

FormatMetrics
makeMetrics(FormatKind kind, double sigma, double seconds, double balance,
            double throughput, double bw, double power)
{
    FormatMetrics m;
    m.format = kind;
    m.meanSigma = sigma;
    m.totalSeconds = seconds;
    m.balanceRatio = balance;
    m.throughput = throughput;
    m.bandwidthUtilization = bw;
    m.dynamicPowerW = power;
    return m;
}

TEST(NormalizeSummaryTest, BestGetsOneWorstGetsZero)
{
    const std::vector<FormatMetrics> metrics = {
        makeMetrics(FormatKind::COO, 1.0, 1.0, 1.0, 100.0, 0.33, 0.02),
        makeMetrics(FormatKind::CSC, 20.0, 10.0, 0.1, 10.0, 0.4, 0.05),
    };
    const auto scores = normalizeSummary(metrics);
    ASSERT_EQ(scores.size(), 2u);
    // COO: best sigma, latency, balance, power; worst bw-util.
    EXPECT_DOUBLE_EQ(scores[0].sigma, 1.0);
    EXPECT_DOUBLE_EQ(scores[1].sigma, 0.0);
    EXPECT_DOUBLE_EQ(scores[0].latency, 1.0);
    EXPECT_DOUBLE_EQ(scores[0].balance, 1.0);
    EXPECT_DOUBLE_EQ(scores[1].balance, 0.0);
    EXPECT_DOUBLE_EQ(scores[0].throughput, 1.0);
    EXPECT_DOUBLE_EQ(scores[0].bandwidthUtilization, 0.0);
    EXPECT_DOUBLE_EQ(scores[1].bandwidthUtilization, 1.0);
    EXPECT_DOUBLE_EQ(scores[0].power, 1.0);
    EXPECT_DOUBLE_EQ(scores[1].power, 0.0);
}

TEST(NormalizeSummaryTest, TiesGetFullScore)
{
    const std::vector<FormatMetrics> metrics = {
        makeMetrics(FormatKind::CSR, 2.0, 1.0, 0.5, 10.0, 0.4, 0.05),
        makeMetrics(FormatKind::COO, 2.0, 2.0, 0.5, 20.0, 0.4, 0.05),
    };
    const auto scores = normalizeSummary(metrics);
    EXPECT_DOUBLE_EQ(scores[0].sigma, 1.0);
    EXPECT_DOUBLE_EQ(scores[1].sigma, 1.0);
    EXPECT_DOUBLE_EQ(scores[0].power, 1.0);
    EXPECT_DOUBLE_EQ(scores[1].power, 1.0);
}

TEST(NormalizeSummaryTest, BalanceUsesDistanceFromOne)
{
    // Ratio 1 beats ratio 4 and ratio 0.2.
    const std::vector<FormatMetrics> metrics = {
        makeMetrics(FormatKind::Dense, 1, 1, 1.0, 1, 0.1, 0.01),
        makeMetrics(FormatKind::CSR, 1, 1, 4.0, 1, 0.1, 0.01),
        makeMetrics(FormatKind::CSC, 1, 1, 0.2, 1, 0.1, 0.01),
    };
    const auto scores = normalizeSummary(metrics);
    EXPECT_DOUBLE_EQ(scores[0].balance, 1.0);
    EXPECT_LT(scores[1].balance, 1.0);
    EXPECT_LT(scores[2].balance, scores[1].balance);
}

TEST(NormalizeSummaryTest, ScoresStayInUnitInterval)
{
    const std::vector<FormatMetrics> metrics = {
        makeMetrics(FormatKind::Dense, 1, 5, 1.2, 50, 0.2, 0.03),
        makeMetrics(FormatKind::CSR, 3, 2, 0.4, 80, 0.45, 0.04),
        makeMetrics(FormatKind::COO, 2, 3, 0.8, 60, 0.33, 0.02),
    };
    for (const auto &s : normalizeSummary(metrics)) {
        for (double v : {s.sigma, s.latency, s.balance, s.throughput,
                         s.bandwidthUtilization, s.power}) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(NormalizeSummaryTest, FormatLabelsPreserved)
{
    const std::vector<FormatMetrics> metrics = {
        makeMetrics(FormatKind::LIL, 1, 1, 1, 1, 1, 1),
        makeMetrics(FormatKind::ELL, 2, 2, 2, 2, 2, 2),
    };
    const auto scores = normalizeSummary(metrics);
    EXPECT_EQ(scores[0].format, FormatKind::LIL);
    EXPECT_EQ(scores[1].format, FormatKind::ELL);
}

TEST(NormalizeSummaryTest, EmptyInputGivesEmptyOutput)
{
    EXPECT_TRUE(normalizeSummary({}).empty());
}

TEST(EnergyTest, PowerTimesTime)
{
    PowerEstimate power;
    power.logicW = 0.02;
    power.bramW = 0.01;
    power.signalsW = 0.03;
    power.staticW = 0.1;
    const auto energy = runEnergy(power, 2.0);
    EXPECT_DOUBLE_EQ(energy.dynamicJ, 0.12);
    EXPECT_DOUBLE_EQ(energy.staticJ, 0.2);
    EXPECT_DOUBLE_EQ(energy.totalJ(), 0.32);
    EXPECT_DOUBLE_EQ(energy.staticShare(), 0.2 / 0.32);
}

TEST(EnergyTest, ZeroDurationZeroEnergy)
{
    PowerEstimate power;
    power.staticW = 0.1;
    const auto energy = runEnergy(power, 0.0);
    EXPECT_DOUBLE_EQ(energy.totalJ(), 0.0);
    EXPECT_DOUBLE_EQ(energy.staticShare(), 0.0);
}

TEST(EnergyTest, NegativeDurationIsFatal)
{
    EXPECT_THROW(runEnergy(PowerEstimate{}, -1.0), FatalError);
}

TEST(EnergyTest, NanojoulesPerNonZero)
{
    PowerEstimate power;
    power.signalsW = 1.0; // 1 W dynamic
    const auto energy = runEnergy(power, 1e-6); // 1 us -> 1 uJ
    EXPECT_DOUBLE_EQ(nanojoulesPerNonZero(energy, 1000), 1.0);
    EXPECT_THROW(nanojoulesPerNonZero(energy, 0), FatalError);
}

TEST(EnergyTest, SlowLowPowerFormatCanLoseOnTotalEnergy)
{
    // Section 6.4's remark, in numbers: 0.03 W dynamic for 10x the
    // time loses to 0.12 W dynamic at 1x once static power (0.1 W)
    // multiplies the duration.
    PowerEstimate frugal;
    frugal.signalsW = 0.03;
    frugal.staticW = 0.103;
    PowerEstimate hungry;
    hungry.signalsW = 0.12;
    hungry.staticW = 0.121;
    const auto slow = runEnergy(frugal, 10.0);
    const auto fast = runEnergy(hungry, 1.0);
    EXPECT_GT(slow.totalJ(), fast.totalJ());
    EXPECT_LT(frugal.dynamicW(), hungry.dynamicW());
}

} // namespace
} // namespace copernicus
