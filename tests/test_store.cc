/**
 * @file
 * Store subsystem tests: the .cbm container (writer, mmap reader,
 * inspector), the bounded-memory streaming partitioner's parity with
 * the in-memory path, and the sweep journal's exact checkpoint/resume
 * semantics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/status.hh"
#include "core/study.hh"
#include "formats/registry.hh"
#include "matrix/partitioner.hh"
#include "store/container.hh"
#include "store/stream_partitioner.hh"
#include "store/sweep_journal.hh"
#include "workloads/generators.hh"
#include "workloads/suite_catalog.hh"

namespace copernicus {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

TripletMatrix
smallRandom(Index dim, double density, std::uint64_t seed)
{
    Rng rng(seed);
    TripletMatrix m = randomMatrix(dim, density, rng);
    m.finalize();
    return m;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------- CBM

TEST(CbmContainer, RoundTripPreservesMatrixAndIdentity)
{
    const TripletMatrix m = smallRandom(64, 0.1, 0xA11CE);
    const std::string path = tempPath("roundtrip.cbm");
    const std::uint64_t hash = writeCbmFile(path, m, /*epoch=*/7);

    const CbmReader reader(path);
    EXPECT_EQ(reader.rows(), m.rows());
    EXPECT_EQ(reader.cols(), m.cols());
    EXPECT_EQ(reader.nnz(), m.nnz());
    EXPECT_EQ(reader.epoch(), 7u);
    EXPECT_EQ(reader.contentHash(), hash);
    EXPECT_EQ(reader.contentHash(), contentHashOf(m));

    const TripletMatrix back = reader.toTripletMatrix();
    EXPECT_TRUE(back == m);
    std::remove(path.c_str());
}

TEST(CbmContainer, MultiChunkDirectoryIsMonotone)
{
    const TripletMatrix m = smallRandom(96, 0.2, 0xBEEF);
    ASSERT_GT(m.nnz(), 600u);
    const std::string path = tempPath("chunks.cbm");
    writeCbmFile(path, m, 1, /*chunkTargetNnz=*/100);

    const CbmReader reader(path);
    EXPECT_EQ(reader.chunkTargetNnz(), 100u);
    EXPECT_EQ(reader.chunkCount(), (m.nnz() + 99) / 100);
    std::uint64_t sum = 0;
    Index prevLast = 0;
    for (std::size_t i = 0; i < reader.chunks().size(); ++i) {
        const CbmChunkInfo &c = reader.chunks()[i];
        if (i > 0) {
            EXPECT_GE(c.firstRow, prevLast);
        }
        EXPECT_LT(c.lastRow, m.rows());
        prevLast = c.lastRow;
        sum += c.nnz;
    }
    EXPECT_EQ(sum, m.nnz());

    // scan() yields the canonical stream in order.
    std::size_t i = 0;
    reader.scan([&](const Triplet &t) {
        ASSERT_LT(i, m.nnz());
        EXPECT_TRUE(t == m.triplets()[i]);
        ++i;
    });
    EXPECT_EQ(i, m.nnz());
    std::remove(path.c_str());
}

TEST(CbmContainer, EmptyMatrixRoundTrips)
{
    TripletMatrix empty(8, 8);
    empty.finalize();
    const std::string path = tempPath("empty.cbm");
    writeCbmFile(path, empty, 1);
    EXPECT_TRUE(inspectCbmFile(path).empty());
    const CbmReader reader(path);
    EXPECT_EQ(reader.nnz(), 0u);
    EXPECT_EQ(reader.chunkCount(), 0u);
    std::size_t calls = 0;
    reader.scan([&](const Triplet &) { ++calls; });
    EXPECT_EQ(calls, 0u);
    std::remove(path.c_str());
}

TEST(CbmContainer, WriterRejectsDisorderZeroAndRange)
{
    const std::string path = tempPath("writer.cbm");
    {
        CbmWriter w(path, 4, 4, 1);
        w.append({1, 1, 1.0f});
        EXPECT_THROW(w.append({1, 1, 2.0f}), FatalError); // duplicate
        EXPECT_THROW(w.append({0, 0, 1.0f}), FatalError); // backwards
        EXPECT_THROW(w.append({1, 2, 0.0f}), FatalError); // zero
        EXPECT_THROW(w.append({1, 9, 1.0f}), FatalError); // range
    }
    std::remove(path.c_str());
}

TEST(CbmContainer, InspectorFlagsEachDefectClass)
{
    const TripletMatrix m = smallRandom(64, 0.15, 0xD00D);
    const std::string path = tempPath("defects.cbm");
    writeCbmFile(path, m, 1, /*chunkTargetNnz=*/64);
    const std::string clean = readFileBytes(path);
    ASSERT_TRUE(inspectCbmFile(path).empty());

    const auto hasKind = [](const std::vector<CbmIssue> &issues,
                            CbmIssueKind kind) {
        for (const CbmIssue &issue : issues)
            if (issue.kind == kind)
                return true;
        return false;
    };

    // Header: corrupt the version field.
    std::string bad = clean;
    bad[4] = static_cast<char>(bad[4] ^ 0x4);
    writeFileBytes(path, bad);
    EXPECT_TRUE(hasKind(inspectCbmFile(path), CbmIssueKind::Header));
    EXPECT_THROW(CbmReader{path}, FatalError);

    // Chunks: swap the first two directory entries.
    bad = clean;
    const auto *header =
        reinterpret_cast<const CbmHeader *>(clean.data());
    ASSERT_GE(header->chunkCount, 2u);
    const auto dir = static_cast<std::size_t>(header->directoryOffset);
    for (std::size_t i = 0; i < sizeof(CbmChunkInfo); ++i)
        std::swap(bad[dir + i], bad[dir + sizeof(CbmChunkInfo) + i]);
    writeFileBytes(path, bad);
    EXPECT_TRUE(hasKind(inspectCbmFile(path), CbmIssueKind::Chunks));

    // Hash: flip a payload mantissa bit; shallow checks stay clean.
    bad = clean;
    bad[sizeof(CbmHeader) + 8] =
        static_cast<char>(bad[sizeof(CbmHeader) + 8] ^ 0x1);
    writeFileBytes(path, bad);
    EXPECT_TRUE(hasKind(inspectCbmFile(path, true),
                        CbmIssueKind::Hash));
    EXPECT_TRUE(inspectCbmFile(path, /*deep=*/false).empty());

    // Truncation: chop the directory off.
    writeFileBytes(path, clean.substr(0, clean.size() - 10));
    EXPECT_FALSE(inspectCbmFile(path).empty());

    // Not a container at all.
    writeFileBytes(path, "definitely not a cbm file");
    EXPECT_TRUE(hasKind(inspectCbmFile(path), CbmIssueKind::Header));

    // Missing file reports rather than throws.
    std::remove(path.c_str());
    EXPECT_FALSE(inspectCbmFile(path).empty());
}

// -------------------------------------------- streaming partitioner

void
expectPartitioningsEqual(const Partitioning &a, const Partitioning &b)
{
    ASSERT_EQ(a.partitionSize, b.partitionSize);
    ASSERT_EQ(a.gridRows, b.gridRows);
    ASSERT_EQ(a.gridCols, b.gridCols);
    ASSERT_EQ(a.zeroTiles, b.zeroTiles);
    ASSERT_EQ(a.tiles.size(), b.tiles.size());
    for (std::size_t i = 0; i < a.tiles.size(); ++i) {
        const Tile &ta = a.tiles[i];
        const Tile &tb = b.tiles[i];
        ASSERT_EQ(ta.tileRow(), tb.tileRow()) << "tile " << i;
        ASSERT_EQ(ta.tileCol(), tb.tileCol()) << "tile " << i;
        ASSERT_EQ(ta.size(), tb.size()) << "tile " << i;
        ASSERT_EQ(ta.nonzeros().size(), tb.nonzeros().size())
            << "tile " << i;
        ASSERT_EQ(std::memcmp(ta.nonzeros().data(),
                              tb.nonzeros().data(),
                              ta.nonzeros().size() *
                                  sizeof(TileNonzero)),
                  0)
            << "tile " << i << " non-zero stream differs";
    }
}

TEST(StreamPartitioner, MatchesInMemoryAcrossShapes)
{
    std::vector<TripletMatrix> matrices;
    matrices.push_back(smallRandom(256, 0.0005, 1));
    matrices.push_back(smallRandom(256, 0.01, 2));
    matrices.push_back(smallRandom(256, 0.2, 3));
    {
        Rng rng(4);
        TripletMatrix band = bandMatrix(256, 8, rng);
        band.finalize();
        matrices.push_back(std::move(band));
    }
    for (const TripletMatrix &m : matrices) {
        const TripletMatrixSource source(m);
        for (Index p : {8u, 16u, 32u}) {
            const Partitioning expect = partition(m, p);
            StreamPartitionOptions opts;
            opts.maxBufferedNnz = 512; // force several passes
            StreamPartitionStats stats;
            const Partitioning got =
                partitionStreaming(source, p, opts, &stats);
            expectPartitioningsEqual(expect, got);
            EXPECT_EQ(stats.nonZeroTiles, got.tiles.size());
            EXPECT_EQ(stats.sourceScans, stats.passes + 1);
        }
    }
}

TEST(StreamPartitioner, OneNnzBudgetStillExact)
{
    const TripletMatrix m = smallRandom(64, 0.1, 99);
    const TripletMatrixSource source(m);
    StreamPartitionOptions opts;
    opts.maxBufferedNnz = 1; // every strip is its own oversized pass
    StreamPartitionStats stats;
    const Partitioning got = partitionStreaming(source, 8, opts, &stats);
    expectPartitioningsEqual(partition(m, 8), got);
    EXPECT_GT(stats.passes, 1u);
}

TEST(StreamPartitioner, EmptyMatrixYieldsNoTiles)
{
    TripletMatrix empty(32, 32);
    empty.finalize();
    const TripletMatrixSource source(empty);
    StreamPartitionStats stats;
    const Partitioning got =
        partitionStreaming(source, 8, {}, &stats);
    EXPECT_TRUE(got.tiles.empty());
    EXPECT_EQ(got.gridRows, 4u);
    EXPECT_EQ(got.gridCols, 4u);
    EXPECT_EQ(stats.passes, 0u);
}

/**
 * The golden roundtrip the store layer exists for: every catalog
 * workload, written to a container, reopened by mmap, partitioned in
 * bounded-memory passes — and the result must be byte-identical to
 * the in-memory path, down to the encoded streams every codec
 * produces (the same contract the PR-5 parity suite pins for the
 * encode hot path).
 */
TEST(StreamPartitioner, GoldenRoundtripOverCatalog)
{
    const FormatRegistry &registry = defaultRegistry();
    for (const SuiteMatrixInfo &entry : suiteCatalog()) {
        SuiteMatrixInfo scaled = entry;
        scaled.surrogateDim = 128; // keep 20 matrices CI-friendly
        TripletMatrix m = scaled.generate(0xC0FFEE);
        m.finalize();

        const std::string path = tempPath("golden_" + entry.id +
                                          ".cbm");
        writeCbmFile(path, m, 1, /*chunkTargetNnz=*/1000);
        const CbmReader reader(path);

        const Partitioning expect = partition(m, 16);
        StreamPartitionOptions opts;
        opts.maxBufferedNnz = 700; // several passes over the mmap
        const Partitioning got = partitionStreaming(reader, 16, opts);
        {
            SCOPED_TRACE("catalog " + entry.id);
            expectPartitioningsEqual(expect, got);
        }

        // Same tiles in, same encoded bytes out, format by format.
        for (std::size_t i = 0; i < expect.tiles.size(); ++i) {
            for (FormatKind kind : allFormats()) {
                const auto a =
                    registry.codec(kind).encode(expect.tiles[i]);
                const auto b =
                    registry.codec(kind).encode(got.tiles[i]);
                ASSERT_EQ(a->streams(), b->streams())
                    << entry.id << " tile " << i << " format "
                    << formatName(kind);
            }
        }
        std::remove(path.c_str());
    }
}

// ------------------------------------------------------ sweep journal

StudyRow
sampleRow(const std::string &workload, FormatKind format, Index p)
{
    StudyRow row;
    row.workload = workload;
    row.format = format;
    row.partitionSize = p;
    row.meanSigma = 0.1; // not exactly representable: exactness test
    row.totalCycles = 0xFFFFFFFFFFFFFFFFull; // past double precision
    row.seconds = 1.0 / 3.0;
    row.memoryCycles = (1ull << 53) + 1; // would clip as a double
    row.computeCycles = 12345678901234567ull;
    row.balanceRatio = 2.5;
    row.throughput = 9.87654321e9;
    row.bandwidthUtilization = 0.333333333333333314829616256247;
    row.totalBytes = 0xDEADBEEFCAFEull;
    row.partitions = 42;
    row.resources.bram18k = 18.5;
    row.resources.ffK = 0.07;
    row.resources.lutK = 123.456;
    row.resources.calibrated = true;
    row.power.logicW = 0.25;
    row.power.bramW = 1e-3;
    row.power.signalsW = 0.125;
    row.power.staticW = 0.6;
    return row;
}

void
expectRowsEqual(const StudyRow &a, const StudyRow &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.format, b.format);
    EXPECT_EQ(a.partitionSize, b.partitionSize);
    EXPECT_EQ(a.meanSigma, b.meanSigma);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.memoryCycles, b.memoryCycles);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.balanceRatio, b.balanceRatio);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.bandwidthUtilization, b.bandwidthUtilization);
    EXPECT_EQ(a.totalBytes, b.totalBytes);
    EXPECT_EQ(a.partitions, b.partitions);
    EXPECT_EQ(a.resources.bram18k, b.resources.bram18k);
    EXPECT_EQ(a.resources.ffK, b.resources.ffK);
    EXPECT_EQ(a.resources.lutK, b.resources.lutK);
    EXPECT_EQ(a.resources.calibrated, b.resources.calibrated);
    EXPECT_EQ(a.power.logicW, b.power.logicW);
    EXPECT_EQ(a.power.bramW, b.power.bramW);
    EXPECT_EQ(a.power.signalsW, b.power.signalsW);
    EXPECT_EQ(a.power.staticW, b.power.staticW);
}

TEST(SweepJournal, RecordsReloadExactly)
{
    const std::string path = tempPath("journal.ndjson");
    std::remove(path.c_str());
    JournalIdentity id{11, 22, 33};

    const StudyRow r1 = sampleRow("w", FormatKind::CSR, 8);
    const StudyRow r2 = sampleRow("w", FormatKind::COO, 16);
    {
        SweepJournal journal(path, id);
        EXPECT_EQ(journal.resumedCells(), 0u);
        EXPECT_EQ(journal.completed("w", FormatKind::CSR, 8), nullptr);
        journal.record(r1);
        journal.record(r2);
    }
    {
        SweepJournal journal(path, id);
        EXPECT_EQ(journal.resumedCells(), 2u);
        const StudyRow *got = journal.completed("w", FormatKind::CSR, 8);
        ASSERT_NE(got, nullptr);
        expectRowsEqual(*got, r1);
        got = journal.completed("w", FormatKind::COO, 16);
        ASSERT_NE(got, nullptr);
        expectRowsEqual(*got, r2);
        EXPECT_EQ(journal.completed("w", FormatKind::COO, 8), nullptr);
    }
    std::remove(path.c_str());
}

TEST(SweepJournal, RejectsStaleIdentityNamingComponent)
{
    const std::string path = tempPath("stale.ndjson");
    std::remove(path.c_str());
    { SweepJournal journal(path, {1, 2, 3}); }

    const auto expectStale = [&](const JournalIdentity &id,
                                 const std::string &component) {
        try {
            SweepJournal journal(path, id);
            FAIL() << "stale journal accepted for " << component;
        } catch (const FatalError &err) {
            const std::string what = err.what();
            EXPECT_NE(what.find("stale"), std::string::npos) << what;
            EXPECT_NE(what.find(component), std::string::npos) << what;
        }
    };
    expectStale({9, 2, 3}, "matrix content hash");
    expectStale({1, 9, 3}, "container epoch");
    expectStale({1, 2, 9}, "sweep config");
    std::remove(path.c_str());
}

TEST(SweepJournal, ToleratesTornTrailingLine)
{
    const std::string path = tempPath("torn.ndjson");
    std::remove(path.c_str());
    JournalIdentity id{5, 6, 7};
    {
        SweepJournal journal(path, id);
        journal.record(sampleRow("w", FormatKind::CSR, 8));
    }
    {
        // A SIGKILL mid-write leaves half a record and no newline.
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "{\"kind\":\"cell\",\"workload\":\"w\",\"for";
    }
    {
        SweepJournal journal(path, id);
        EXPECT_EQ(journal.resumedCells(), 1u);
        journal.record(sampleRow("w", FormatKind::COO, 8));
    }
    {
        SweepJournal journal(path, id);
        EXPECT_EQ(journal.resumedCells(), 2u);
    }
    std::remove(path.c_str());
}

TEST(SweepJournal, ConfigHashSeesOrderAndContent)
{
    const std::uint64_t base =
        sweepConfigHash({8, 16}, {FormatKind::CSR, FormatKind::COO});
    EXPECT_NE(base, sweepConfigHash({16, 8}, {FormatKind::CSR,
                                              FormatKind::COO}));
    EXPECT_NE(base, sweepConfigHash({8, 16}, {FormatKind::COO,
                                              FormatKind::CSR}));
    EXPECT_NE(base, sweepConfigHash({8}, {FormatKind::CSR,
                                          FormatKind::COO}));
    EXPECT_EQ(base, sweepConfigHash({8, 16}, {FormatKind::CSR,
                                              FormatKind::COO}));

    const std::uint64_t ws = workloadSetHash({{"a", 1}, {"b", 2}});
    EXPECT_NE(ws, workloadSetHash({{"b", 2}, {"a", 1}}));
    EXPECT_NE(ws, workloadSetHash({{"a", 1}}));
    EXPECT_EQ(ws, workloadSetHash({{"a", 1}, {"b", 2}}));
}

/** Cancel a sweep partway, then resume it: output must be identical. */
TEST(SweepJournal, InterruptedStudyResumesByteIdentical)
{
    StudyConfig cfg;
    cfg.partitionSizes = {8, 16};
    cfg.formats = {FormatKind::CSR, FormatKind::COO,
                   FormatKind::Dense};
    cfg.jobs = 1;

    const auto addWorkloads = [](Study &study) {
        study.addWorkload("rand", smallRandom(48, 0.1, 0x5EED));
        study.addWorkload("rand2", smallRandom(48, 0.02, 0x5EED1));
    };

    // Uninterrupted baseline.
    std::string baseline;
    {
        Study study(cfg);
        addWorkloads(study);
        std::ostringstream out;
        study.run().writeCsv(out);
        baseline = out.str();
    }

    const std::string path = tempPath("resume.ndjson");
    std::remove(path.c_str());
    const JournalIdentity id{1234, 0, sweepConfigHash(
                                          cfg.partitionSizes,
                                          cfg.formats)};

    // First attempt: cancel after a few design points complete.
    {
        StudyConfig interrupted = cfg;
        int budget = 5;
        interrupted.cancelCheck = [&budget] { return --budget < 0; };
        interrupted.journal =
            std::make_shared<SweepJournal>(path, id);
        Study study(interrupted);
        addWorkloads(study);
        EXPECT_THROW(study.run(), CancelledError);
    }

    // Resume: completed cells come from the journal, the rest run.
    {
        StudyConfig resumed = cfg;
        resumed.journal = std::make_shared<SweepJournal>(path, id);
        const std::size_t restored = resumed.journal->resumedCells();
        EXPECT_GT(restored, 0u);
        EXPECT_LT(restored, 12u); // 2 workloads x 2 p x 3 formats
        Study study(resumed);
        addWorkloads(study);
        std::ostringstream out;
        study.run().writeCsv(out);
        EXPECT_EQ(out.str(), baseline);
    }

    // A third run resumes everything and still matches.
    {
        StudyConfig resumed = cfg;
        resumed.journal = std::make_shared<SweepJournal>(path, id);
        EXPECT_EQ(resumed.journal->resumedCells(), 12u);
        Study study(resumed);
        addWorkloads(study);
        std::ostringstream out;
        study.run().writeCsv(out);
        EXPECT_EQ(out.str(), baseline);
    }
    std::remove(path.c_str());
}

TEST(Study, WorkloadSetIdentityFollowsRegistration)
{
    StudyConfig cfg;
    Study a(cfg);
    a.addWorkload("x", smallRandom(32, 0.1, 1));
    Study b(cfg);
    b.addWorkload("x", smallRandom(32, 0.1, 1));
    EXPECT_EQ(a.workloadSetIdentity(), b.workloadSetIdentity());

    Study c(cfg);
    c.addWorkload("y", smallRandom(32, 0.1, 1));
    EXPECT_NE(a.workloadSetIdentity(), c.workloadSetIdentity());

    Study d(cfg);
    d.addWorkload("x", smallRandom(32, 0.1, 2));
    EXPECT_NE(a.workloadSetIdentity(), d.workloadSetIdentity());
}

} // namespace
} // namespace copernicus
