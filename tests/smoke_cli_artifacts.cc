/**
 * @file
 * End-to-end smoke test: runs copernicus_cli with every observability
 * flag and validates the JSON artifacts it writes with the bundled
 * checker — no external JSON dependency. Registered with ctest as
 * `smoke_cli_artifacts <path-to-copernicus_cli>`.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hh"

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "FAIL: cannot read %s\n", path.c_str());
        std::exit(1);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
checkArtifact(const std::string &path, const char *needle)
{
    const std::string doc = slurp(path);
    if (!copernicus::jsonValid(doc)) {
        std::fprintf(stderr, "FAIL: %s is not valid JSON\n",
                     path.c_str());
        std::exit(1);
    }
    if (doc.find(needle) == std::string::npos) {
        std::fprintf(stderr, "FAIL: %s lacks %s\n", path.c_str(),
                     needle);
        std::exit(1);
    }
    std::printf("ok: %s (%zu bytes)\n", path.c_str(), doc.size());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: smoke_cli_artifacts <copernicus_cli>\n");
        return 2;
    }

    const std::string trace = "smoke_trace.json";
    const std::string stats = "smoke_stats.json";
    const std::string cmd = std::string(argv[1]) + " --trace " + trace +
                            " --stats-json " + stats +
                            " --profile > smoke_cli.out 2>&1";
    std::printf("running: %s\n", cmd.c_str());
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
        std::fprintf(stderr, "FAIL: CLI exited with %d; output:\n%s\n",
                     rc, slurp("smoke_cli.out").c_str());
        return 1;
    }

    checkArtifact(trace, "\"traceEvents\"");
    checkArtifact(stats, "\"groups\"");

    // The profile flag must surface at least one timed scope.
    const std::string stats_doc = slurp(stats);
    if (stats_doc.find("\"profile\"") == std::string::npos ||
        stats_doc.find("study.run") == std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: stats JSON lacks the profile group\n");
        return 1;
    }
    std::printf("smoke_cli_artifacts: all checks passed\n");
    return 0;
}
