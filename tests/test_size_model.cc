/**
 * @file
 * Size-model tests: the analytic byte predictions must match the real
 * codecs exactly for every format, size, density and structure.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "formats/size_model.hh"

namespace copernicus {
namespace {

Tile
randomTile(Index p, double density, std::uint64_t seed)
{
    Rng rng(seed);
    Tile t(p);
    for (Index r = 0; r < p; ++r)
        for (Index c = 0; c < p; ++c)
            if (rng.chance(density))
                t(r, c) = static_cast<Value>(rng.range(0.5, 1.5));
    return t;
}

using Params = std::tuple<FormatKind, Index, double>;

class SizeModelProperty : public testing::TestWithParam<Params>
{
};

TEST_P(SizeModelProperty, PredictionMatchesCodecExactly)
{
    const auto [kind, p, density] = GetParam();
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const Tile tile = randomTile(p, density, seed * 97);
        const TileShape shape = measureTile(tile);
        const auto encoded = defaultCodec(kind).encode(tile);
        EXPECT_EQ(predictedBytes(shape, kind), encoded->totalBytes())
            << formatName(kind) << " p=" << p << " d=" << density
            << " seed=" << seed;
        EXPECT_DOUBLE_EQ(predictedUtilization(shape, kind),
                         encoded->bandwidthUtilization());

        // The per-class split must cover the total exactly and match
        // the codec's own typedStreams() decomposition class by class.
        const StreamClassBytes perClass =
            predictedStreamBytes(shape, kind);
        EXPECT_EQ(perClass.total(), encoded->totalBytes());
        Bytes byClass[3] = {0, 0, 0};
        for (const TypedStream &stream : encoded->typedStreams())
            byClass[static_cast<std::size_t>(stream.cls)] +=
                stream.size();
        EXPECT_EQ(perClass.value, byClass[0])
            << formatName(kind) << " value stream";
        EXPECT_EQ(perClass.index, byClass[1])
            << formatName(kind) << " index stream";
        EXPECT_EQ(perClass.offset, byClass[2])
            << formatName(kind) << " offset stream";

        // Unit ratios reproduce the uncompressed prediction.
        EXPECT_EQ(predictedCompressedBytes(shape, kind,
                                           StreamClassRatios{}),
                  predictedBytes(shape, kind));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, SizeModelProperty,
    testing::Combine(testing::ValuesIn(allFormats()),
                     testing::Values(Index(8), Index(16), Index(32)),
                     testing::Values(0.0, 0.05, 0.3, 1.0)),
    [](const testing::TestParamInfo<Params> &info) {
        return std::string(formatName(std::get<0>(info.param))) + "_p" +
               std::to_string(std::get<1>(info.param)) + "_d" +
               std::to_string(
                   static_cast<int>(std::get<2>(info.param) * 100));
    });

TEST(SizeModelTest, MeasureTileStatistics)
{
    Tile t(8);
    t(0, 0) = 1;
    t(0, 1) = 2;
    t(3, 3) = 3;
    t(7, 0) = 4;
    const auto shape = measureTile(t);
    EXPECT_EQ(shape.p, 8u);
    EXPECT_EQ(shape.nnz, 4u);
    EXPECT_EQ(shape.maxRowNnz, 2u);
    EXPECT_EQ(shape.maxColNnz, 2u);
    // Blocks: (0,0) covers (0,0),(0,1),(3,3); (4,0) covers (7,0).
    EXPECT_EQ(shape.nnzBlocks, 2u);
    // Diagonals: 0 (two entries), +1, -7.
    EXPECT_EQ(shape.nnzDiagonals, 3u);
    // Slices of height 4: widths {2, 1}.
    EXPECT_EQ(shape.sliceWidths, (std::vector<Index>{2, 1}));
}

TEST(SizeModelTest, CustomParamsRespected)
{
    FormatParams params;
    params.ellMinWidth = 2;
    const FormatRegistry registry(params);
    const Tile tile = randomTile(16, 0.05, 5);
    const TileShape shape = measureTile(tile, params);
    const auto encoded = registry.codec(FormatKind::ELL).encode(tile);
    EXPECT_EQ(predictedBytes(shape, FormatKind::ELL, params),
              encoded->totalBytes());
}

TEST(SizeModelTest, DiagonalTilePredictions)
{
    Tile t(16);
    for (Index i = 0; i < 16; ++i)
        t(i, i) = 1;
    const auto shape = measureTile(t);
    EXPECT_EQ(shape.nnzDiagonals, 1u);
    EXPECT_EQ(predictedBytes(shape, FormatKind::DIA), (16u + 1u) * 4u);
    EXPECT_DOUBLE_EQ(predictedUtilization(shape, FormatKind::DIA),
                     16.0 / 17.0);
}

TEST(SizeModelTest, EmptyTilePredictions)
{
    const Tile t(16);
    const auto shape = measureTile(t);
    EXPECT_EQ(predictedBytes(shape, FormatKind::COO), 0u);
    EXPECT_DOUBLE_EQ(predictedUtilization(shape, FormatKind::COO), 0.0);
    // Dense still ships the whole tile.
    EXPECT_EQ(predictedBytes(shape, FormatKind::Dense), 16u * 16u * 4u);
}

} // namespace
} // namespace copernicus
