/**
 * @file
 * Streaming-pipeline tests: totals, balance ratio, throughput and
 * bandwidth-utilization bookkeeping over whole matrices.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "pipeline/stream_pipeline.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

TEST(PipelineTest, EmptyMatrixProducesZeroResult)
{
    TripletMatrix m(32, 32);
    m.finalize();
    const auto parts = partition(m, 16);
    const auto result = runPipeline(parts, FormatKind::CSR);
    EXPECT_TRUE(result.partitions.empty());
    EXPECT_EQ(result.totalCycles, 0u);
    EXPECT_EQ(result.totalBytes, 0u);
    EXPECT_DOUBLE_EQ(result.throughputBytesPerSec, 0.0);
}

TEST(PipelineTest, TotalsAreSumsOfPartitions)
{
    Rng rng(1);
    const auto m = randomMatrix(64, 0.05, rng);
    const auto parts = partition(m, 16);
    const auto result = runPipeline(parts, FormatKind::COO);

    Cycles memory = 0, compute = 0;
    Bytes bytes = 0, useful = 0;
    Cycles bottlenecks = 0;
    for (const auto &t : result.partitions) {
        memory += t.memoryCycles;
        compute += t.computeCycles;
        bytes += t.totalBytes;
        useful += t.usefulBytes;
        bottlenecks += t.bottleneckCycles();
    }
    EXPECT_EQ(result.totalMemoryCycles, memory);
    EXPECT_EQ(result.totalComputeCycles, compute);
    EXPECT_EQ(result.totalBytes, bytes);
    EXPECT_EQ(result.totalUsefulBytes, useful);
    // Fill (first read) + steady-state bottlenecks + drain (last write).
    EXPECT_EQ(result.totalCycles,
              bottlenecks + result.partitions.front().memoryCycles +
                  result.partitions.back().writeCycles);
}

TEST(PipelineTest, CooBandwidthUtilizationIsOneThird)
{
    Rng rng(2);
    const auto m = randomMatrix(64, 0.08, rng);
    const auto result = runPipeline(partition(m, 16), FormatKind::COO);
    EXPECT_DOUBLE_EQ(result.bandwidthUtilization, 1.0 / 3.0);
}

TEST(PipelineTest, DenseBalanceNearOneAtP8)
{
    // Section 6.2: the dense format is close to balanced at p = 8 and
    // drifts memory-bound as p grows.
    Rng rng(3);
    const auto m = randomMatrix(64, 0.5, rng);
    const auto r8 = runPipeline(partition(m, 8), FormatKind::Dense);
    const auto r32 = runPipeline(partition(m, 32), FormatKind::Dense);
    EXPECT_NEAR(r8.balanceRatio, 1.0, 0.3);
    EXPECT_GT(r32.balanceRatio, r8.balanceRatio);
}

TEST(PipelineTest, SparseFormatsReduceMemoryLatencyVsDense)
{
    // Section 6.2: all sparse formats transfer far less than dense.
    Rng rng(4);
    const auto m = randomMatrix(128, 0.02, rng);
    const auto parts = partition(m, 16);
    const auto dense = runPipeline(parts, FormatKind::Dense);
    for (FormatKind kind : sparseFormats()) {
        const auto sparse = runPipeline(parts, kind);
        EXPECT_LT(sparse.totalMemoryCycles, dense.totalMemoryCycles)
            << formatName(kind);
    }
}

TEST(PipelineTest, CscComputeLatencyExceedsDense)
{
    // Section 6.2: CSR/CSC/DIA lower memory latency but pay in compute;
    // CSC is the extreme case.
    Rng rng(5);
    const auto m = randomMatrix(64, 0.3, rng);
    const auto parts = partition(m, 16);
    const auto dense = runPipeline(parts, FormatKind::Dense);
    const auto csc = runPipeline(parts, FormatKind::CSC);
    EXPECT_GT(csc.totalComputeCycles, dense.totalComputeCycles);
}

TEST(PipelineTest, ThroughputMatchesBytesOverSeconds)
{
    Rng rng(6);
    const auto m = randomMatrix(64, 0.1, rng);
    const auto result = runPipeline(partition(m, 16), FormatKind::CSR);
    ASSERT_GT(result.seconds, 0.0);
    EXPECT_DOUBLE_EQ(result.throughputBytesPerSec,
                     static_cast<double>(result.totalBytes) /
                         result.seconds);
}

TEST(PipelineTest, MeanSigmaAveragesPartitions)
{
    Rng rng(7);
    const auto m = randomMatrix(64, 0.1, rng);
    const auto result = runPipeline(partition(m, 16), FormatKind::CSR);
    double sum = 0;
    for (const auto &t : result.partitions)
        sum += t.sigma;
    EXPECT_NEAR(result.meanSigma, sum / result.partitions.size(), 1e-12);
}

TEST(PipelineTest, DenseSigmaOneForEveryPartition)
{
    Rng rng(8);
    const auto m = randomMatrix(64, 0.05, rng);
    const auto result = runPipeline(partition(m, 16), FormatKind::Dense);
    for (const auto &t : result.partitions)
        EXPECT_DOUBLE_EQ(t.sigma, 1.0);
    EXPECT_DOUBLE_EQ(result.meanSigma, 1.0);
}

TEST(PipelineTest, ClockScalesSecondsNotCycles)
{
    Rng rng(9);
    const auto m = randomMatrix(64, 0.1, rng);
    const auto parts = partition(m, 16);
    HlsConfig fast;
    fast.clockMhz = 500.0;
    const auto slow_result = runPipeline(parts, FormatKind::CSR);
    const auto fast_result = runPipeline(parts, FormatKind::CSR, fast);
    EXPECT_EQ(slow_result.totalCycles, fast_result.totalCycles);
    EXPECT_NEAR(slow_result.seconds, 2.0 * fast_result.seconds, 1e-12);
}

TEST(PipelineTest, ResultRecordsFormatAndPartition)
{
    Rng rng(10);
    const auto m = randomMatrix(32, 0.1, rng);
    const auto result = runPipeline(partition(m, 8), FormatKind::LIL);
    EXPECT_EQ(result.format, FormatKind::LIL);
    EXPECT_EQ(result.partitionSize, 8u);
}

TEST(PipelineTest, VectorStreamingAddsMemoryButNotUtilization)
{
    Rng rng(15);
    const auto m = randomMatrix(64, 0.05, rng);
    const auto parts = partition(m, 16);
    // One streamline so the vector segment cannot ride a free lane.
    HlsConfig narrow;
    narrow.streamlines = 1;
    HlsConfig with_vector = narrow;
    with_vector.streamVectorOperand = true;
    const auto base = runPipeline(parts, FormatKind::COO, narrow);
    const auto streamed = runPipeline(parts, FormatKind::COO,
                                      with_vector);
    EXPECT_GT(streamed.totalMemoryCycles, base.totalMemoryCycles);
    // The paper's utilization metric covers the compressed partition
    // only: COO stays exactly at 1/3 either way.
    EXPECT_DOUBLE_EQ(streamed.bandwidthUtilization, 1.0 / 3.0);
    EXPECT_EQ(streamed.totalBytes, base.totalBytes);
}

TEST(PipelineTest, SecondStageCompressionOnlyImproves)
{
    Rng rng(21);
    const auto m = bandMatrix(128, 2, rng);
    const auto parts = partition(m, 16);
    HlsConfig compressed;
    compressed.secondStageCompression = true;
    for (FormatKind kind :
         {FormatKind::CSR, FormatKind::Dense, FormatKind::COO}) {
        const auto off = runPipeline(parts, kind);
        const auto on = runPipeline(parts, kind, compressed);
        // STORE passthrough bounds the loss at zero: stored bytes
        // never exceed raw, so utilization never drops and memory
        // latency never rises.
        EXPECT_LE(on.totalBytes, off.totalBytes) << formatName(kind);
        EXPECT_GE(on.bandwidthUtilization, off.bandwidthUtilization)
            << formatName(kind);
        EXPECT_LE(on.totalMemoryCycles, off.totalMemoryCycles)
            << formatName(kind);
        // Useful bytes are a property of the tile, not the wire
        // image; compression must not touch them.
        EXPECT_EQ(on.totalUsefulBytes, off.totalUsefulBytes);
        // Compute is downstream of the decompressor and unchanged.
        EXPECT_EQ(on.totalComputeCycles, off.totalComputeCycles);
    }
    // A banded matrix's DENSE tiles are mostly zero bytes — the
    // second stage must find real compression there.
    const auto dense_off = runPipeline(parts, FormatKind::Dense);
    const auto dense_on =
        runPipeline(parts, FormatKind::Dense, compressed);
    EXPECT_LT(dense_on.totalBytes, dense_off.totalBytes);
    EXPECT_GT(dense_on.bandwidthUtilization,
              dense_off.bandwidthUtilization);
}

TEST(PipelineTest, DiagonalMatrixFavorsDiaBandwidth)
{
    Rng rng(11);
    const auto m = diagonalMatrix(128, rng);
    const auto parts = partition(m, 16);
    const auto dia = runPipeline(parts, FormatKind::DIA);
    const auto coo = runPipeline(parts, FormatKind::COO);
    EXPECT_GT(dia.bandwidthUtilization, 0.9);
    EXPECT_GT(dia.bandwidthUtilization, coo.bandwidthUtilization);
}

TEST(PipelineTest, EveryPartitionTimingIsConsistent)
{
    Rng rng(12);
    const auto m = randomMatrix(96, 0.05, rng);
    const auto result = runPipeline(partition(m, 16), FormatKind::BCSR);
    for (const auto &t : result.partitions) {
        EXPECT_GT(t.memoryCycles, 0u);
        EXPECT_GT(t.computeCycles, 0u);
        EXPECT_GE(t.computeCycles, t.decompressCycles);
        EXPECT_GE(t.totalBytes, t.usefulBytes);
        EXPECT_GE(t.bottleneckCycles(), t.memoryCycles);
        EXPECT_GE(t.bottleneckCycles(), t.computeCycles);
    }
}

} // namespace
} // namespace copernicus
