/**
 * @file
 * ThreadPool contract tests: indexed-slot determinism, the serial
 * fallbacks (jobs = 1, nested calls), exception propagation, submit()
 * futures, the jobs-resolution chain and the observability counters.
 */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"

using namespace copernicus;

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);

    const std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    std::vector<std::size_t> out(n, 0);
    pool.parallelFor(n, [&](std::size_t i) {
        ++visits[i];
        out[i] = i * i;
    });
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
        EXPECT_EQ(out[i], i * i);
    }
}

TEST(ThreadPool, JobsOneNeverSpawnsAndRunsSerially)
{
    const auto before = ThreadPool::globalCounters();
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);

    std::vector<std::size_t> out(64, 0);
    pool.parallelFor(out.size(), [&](std::size_t i) { out[i] = i + 1; });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i + 1);

    const auto after = ThreadPool::globalCounters();
    EXPECT_GT(after.serialLoops, before.serialLoops);
    EXPECT_EQ(after.parallelFors, before.parallelFors);
}

TEST(ThreadPool, ParallelForPropagatesTheFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error(
                                              "bad index");
                                  }),
                 std::runtime_error);

    // The pool survives a failed loop and runs the next one fully.
    std::vector<int> out(100, 0);
    pool.parallelFor(out.size(), [&](std::size_t i) { out[i] = 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 100);
}

TEST(ThreadPool, NestedParallelForFallsBackToSerialInline)
{
    ThreadPool pool(4);
    const std::size_t outer = 8;
    const std::size_t inner = 16;
    std::vector<int> out(outer * inner, 0);
    std::atomic<int> sawPoolTask{0};
    pool.parallelFor(outer, [&](std::size_t i) {
        sawPoolTask += ThreadPool::inPoolTask() ? 1 : 0;
        // Same pool, from inside a task: must run inline, not deadlock.
        pool.parallelFor(inner, [&](std::size_t j) {
            out[i * inner + j] = static_cast<int>(i * inner + j);
        });
    });
    for (std::size_t k = 0; k < out.size(); ++k)
        EXPECT_EQ(out[k], static_cast<int>(k));
    EXPECT_EQ(sawPoolTask.load(), static_cast<int>(outer));
}

TEST(ThreadPool, SubmitDeliversValuesAndExceptions)
{
    ThreadPool pool(2);
    auto value = pool.submit([] { return 42; });
    EXPECT_EQ(value.get(), 42);

    auto failing = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(failing.get(), std::runtime_error);

    // jobs = 1: submit runs inline but the future contract is the same.
    ThreadPool serial(1);
    auto inline_value = serial.submit([] { return 7; });
    EXPECT_EQ(inline_value.get(), 7);
}

TEST(ThreadPool, EffectiveJobsResolutionChain)
{
    EXPECT_EQ(effectiveJobs(5), 5u);

    setJobsOverride(3);
    EXPECT_EQ(effectiveJobs(0), 3u);
    EXPECT_EQ(effectiveJobs(2), 2u); // explicit request beats override

    setJobsOverride(0);
    EXPECT_GE(effectiveJobs(0), 1u); // env or hardware, never 0
    EXPECT_GE(hardwareJobs(), 1u);
}

TEST(ThreadPool, CountersAndLaneSpansRecordFanOut)
{
    const auto before = ThreadPool::globalCounters();
    ThreadPool::setLaneRecording(true);
    ThreadPool pool(4);
    std::vector<int> out(256, 0);
    pool.parallelFor(out.size(), [&](std::size_t i) { out[i] = 1; });
    ThreadPool::setLaneRecording(false);

    const auto after = ThreadPool::globalCounters();
    EXPECT_GT(after.tasksRun, before.tasksRun);
    EXPECT_GT(after.parallelFors, before.parallelFors);

    const auto spans = ThreadPool::drainLaneSpans();
    EXPECT_FALSE(spans.empty());
    for (const auto &span : spans) {
        EXPECT_LT(span.worker, 4u);
        EXPECT_LE(span.startUs, span.endUs);
    }
    EXPECT_TRUE(ThreadPool::drainLaneSpans().empty()); // drain clears
}
