/**
 * @file
 * Second-stage compressor tests: exact roundtrip fuzzing for both
 * block families across random, structured, catalog-derived and
 * adversarial inputs, decoder robustness on malformed images, and the
 * compressTile() selection/accounting contract.
 *
 * The fuzz bodies are deterministic (fixed Rng seeds) and also run
 * under the sanitizer builds — the tsan label puts them in the
 * concurrency lane, and the asan/ubsan CI jobs run the whole suite —
 * so decoder bounds handling is exercised with full instrumentation.
 */

#include <cstring>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/second_stage.hh"
#include "compress/stream_compressor.hh"
#include "formats/registry.hh"
#include "matrix/partitioner.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

std::vector<const StreamCompressor *>
families()
{
    return {&lz4Compressor(), &lzfCompressor()};
}

/** Compress, decompress, and require byte-exact recovery. */
void
expectRoundtrip(const StreamCompressor &compressor,
                const std::vector<std::byte> &input)
{
    std::vector<std::byte> compressed;
    const std::size_t written = compressor.compress(input, compressed);
    EXPECT_EQ(written, compressed.size());

    std::vector<std::byte> output(input.size(), std::byte(0x5C));
    ASSERT_TRUE(compressor.decompress(compressed, output))
        << "family " << compressionFamilyName(compressor.family())
        << " rejected its own image (input " << input.size()
        << " bytes)";
    if (!input.empty()) {
        EXPECT_EQ(0, std::memcmp(output.data(), input.data(),
                                 input.size()))
            << "family "
            << compressionFamilyName(compressor.family())
            << " corrupted a " << input.size() << "-byte input";
    }
}

std::vector<std::byte>
randomBytes(std::size_t n, Rng &rng)
{
    std::vector<std::byte> out(n);
    for (auto &b : out)
        b = std::byte(rng() & 0xff);
    return out;
}

TEST(Compress, EmptyInput)
{
    for (const StreamCompressor *compressor : families()) {
        std::vector<std::byte> compressed;
        EXPECT_EQ(0u, compressor->compress({}, compressed));
        EXPECT_TRUE(compressed.empty());
        EXPECT_TRUE(compressor->decompress(compressed, {}));
    }
}

TEST(Compress, AllZeroBlocks)
{
    for (const StreamCompressor *compressor : families()) {
        for (std::size_t n :
             {1u, 2u, 15u, 16u, 64u, 4096u, 70000u}) {
            const std::vector<std::byte> zeros(n, std::byte(0));
            expectRoundtrip(*compressor, zeros);
            // All-zero input is the best case; it must actually
            // compress once past the minimum match length.
            if (n >= 64) {
                std::vector<std::byte> compressed;
                compressor->compress(zeros, compressed);
                EXPECT_LT(compressed.size(), n / 4);
            }
        }
    }
}

TEST(Compress, IncompressibleRandom)
{
    Rng rng(0xF00DF00D);
    for (const StreamCompressor *compressor : families()) {
        for (std::size_t n : {1u, 7u, 13u, 255u, 4096u, 70000u}) {
            const auto input = randomBytes(n, rng);
            expectRoundtrip(*compressor, input);
            // Incompressible input degrades gracefully: bounded
            // literal-run framing, never unbounded expansion.
            std::vector<std::byte> compressed;
            compressor->compress(input, compressed);
            EXPECT_LE(compressed.size(), n + n / 16 + 8);
        }
    }
}

TEST(Compress, LargeBlocksPastSixtyFourKiB)
{
    // > 64 KiB exercises LZ4's 16-bit offset ceiling and LZF's
    // 8 KiB window wrap on one continuous input.
    Rng rng(0xBEEF);
    std::vector<std::byte> input;
    input.reserve(300000);
    // Repeating structure with embedded noise: long-range matches
    // exist but are interrupted, so offsets span the full range.
    for (std::size_t i = 0; i < 300000; ++i) {
        if (i % 97 == 0)
            input.push_back(std::byte(rng() & 0xff));
        else
            input.push_back(std::byte((i / 3) & 0xff));
    }
    for (const StreamCompressor *compressor : families())
        expectRoundtrip(*compressor, input);
}

TEST(Compress, FuzzMixedContent)
{
    Rng rng(0xCAFE);
    for (int round = 0; round < 60; ++round) {
        const std::size_t n = 1 + std::size_t(rng() % 3000);
        std::vector<std::byte> input(n);
        // Alphabet size sweeps from near-constant to full-random:
        // small alphabets make dense match structure, large ones
        // force literal runs.
        const unsigned alphabet = 1 + unsigned(rng() % 256);
        for (auto &b : input)
            b = std::byte(rng() % alphabet);
        for (const StreamCompressor *compressor : families())
            expectRoundtrip(*compressor, input);
    }
}

TEST(Compress, FuzzEncodedTileStreams)
{
    // The payloads the second stage actually sees: typed streams of
    // real encodings over random and banded matrices.
    const FormatRegistry &registry = defaultRegistry();
    Rng rng(0x7E57);
    const TripletMatrix random = randomMatrix(128, 0.02, rng);
    const TripletMatrix band = bandMatrix(128, 4, rng);
    for (const TripletMatrix *matrix : {&random, &band}) {
        const Partitioning parts = partition(*matrix, 16);
        for (const Tile &tile : parts.tiles) {
            for (FormatKind kind :
                 {FormatKind::CSR, FormatKind::SELLCS,
                  FormatKind::JDS, FormatKind::BITMAP}) {
                const auto encoded = registry.codec(kind).encode(tile);
                for (const TypedStream &stream :
                     encoded->typedStreams())
                    for (const StreamCompressor *compressor :
                         families())
                        expectRoundtrip(*compressor, stream.bytes);
            }
        }
    }
}

TEST(Compress, DecoderRejectsTruncatedImages)
{
    Rng rng(0xDEAD);
    const auto input = randomBytes(512, rng);
    for (const StreamCompressor *compressor : families()) {
        std::vector<std::byte> compressed;
        compressor->compress(input, compressed);
        std::vector<std::byte> output(input.size());
        for (std::size_t keep = 0; keep < compressed.size();
             keep += 1 + keep / 8) {
            const std::span<const std::byte> truncated(
                compressed.data(), keep);
            // Must fail cleanly: a truncated image can never fill
            // the full output exactly.
            EXPECT_FALSE(compressor->decompress(truncated, output));
        }
    }
}

TEST(Compress, DecoderSurvivesGarbageImages)
{
    // Random bytes as compressed input: any result is acceptable
    // except memory errors — the sanitizer builds are the real
    // assertion here; the loop just must not crash.
    Rng rng(0xBAD5EED);
    for (const StreamCompressor *compressor : families()) {
        for (int round = 0; round < 200; ++round) {
            const auto garbage =
                randomBytes(1 + std::size_t(rng() % 200), rng);
            std::vector<std::byte> output(rng() % 300);
            (void)compressor->decompress(garbage, output);
        }
    }
}

TEST(Compress, CompressTileNeverExceedsRawBytes)
{
    const FormatRegistry &registry = defaultRegistry();
    Rng rng(0x1234);
    const TripletMatrix matrix = randomMatrix(96, 0.05, rng);
    const Partitioning parts = partition(matrix, 16);
    for (const Tile &tile : parts.tiles) {
        for (FormatKind kind : paperFormats()) {
            const auto encoded = registry.codec(kind).encode(tile);
            const TileCompression comp = compressTile(*encoded);
            // STORE passthrough bounds the loss at zero.
            EXPECT_LE(comp.storedBytes(), comp.rawBytes());
            // Raw accounting covers the legacy stream sizes exactly.
            const auto streams = encoded->streams();
            EXPECT_EQ(comp.rawBytes(),
                      std::accumulate(streams.begin(), streams.end(),
                                      Bytes(0)));
        }
    }
}

TEST(Compress, StorePolicyIsIdentityAccounting)
{
    const FormatRegistry &registry = defaultRegistry();
    Rng rng(0xABCD);
    const TripletMatrix matrix = randomMatrix(64, 0.1, rng);
    const Partitioning parts = partition(matrix, 16);
    CompressionPolicy store;
    store.value = SecondStageChoice::Store;
    store.index = SecondStageChoice::Store;
    store.offset = SecondStageChoice::Store;
    for (const Tile &tile : parts.tiles) {
        const auto encoded =
            registry.codec(FormatKind::CSR).encode(tile);
        const TileCompression comp = compressTile(*encoded, store);
        // Disabling the second stage IS the all-STORE policy.
        EXPECT_EQ(comp.storedBytes(), comp.rawBytes());
        for (const CompressedStream &s : comp.streams)
            EXPECT_EQ(CompressionFamily::Store, s.family);
    }
}

TEST(Compress, KeptPayloadsDecompressToOriginal)
{
    const FormatRegistry &registry = defaultRegistry();
    Rng rng(0x5555);
    const TripletMatrix matrix = bandMatrix(128, 2, rng);
    const Partitioning parts = partition(matrix, 16);
    bool sawCompressed = false;
    for (const Tile &tile : parts.tiles) {
        const auto encoded =
            registry.codec(FormatKind::CSR).encode(tile);
        const auto typed = encoded->typedStreams();
        const TileCompression comp =
            compressTile(*encoded, CompressionPolicy{}, true);
        ASSERT_EQ(typed.size(), comp.streams.size());
        for (std::size_t i = 0; i < typed.size(); ++i) {
            const CompressedStream &s = comp.streams[i];
            EXPECT_EQ(typed[i].cls, s.cls);
            EXPECT_EQ(typed[i].size(), s.rawBytes);
            if (s.family == CompressionFamily::Store) {
                EXPECT_EQ(typed[i].bytes, s.payload);
                continue;
            }
            sawCompressed = true;
            // Compressed streams pay the container header and must
            // still beat STORE after it.
            EXPECT_EQ(s.payloadBytes + streamHeaderBytes,
                      s.storedBytes());
            EXPECT_LT(s.storedBytes(), s.rawBytes);
            std::vector<std::byte> output(s.rawBytes);
            const StreamCompressor *codec = compressorFor(s.family);
            ASSERT_NE(nullptr, codec);
            ASSERT_TRUE(codec->decompress(s.payload, output));
            EXPECT_EQ(typed[i].bytes, output);
        }
    }
    // Band-matrix CSR streams are highly repetitive; selection must
    // actually engage somewhere in the sweep.
    EXPECT_TRUE(sawCompressed);
}

TEST(Compress, TotalsAreMonotonic)
{
    const FormatRegistry &registry = defaultRegistry();
    Rng rng(0x9999);
    const TripletMatrix matrix = randomMatrix(64, 0.05, rng);
    const Partitioning parts = partition(matrix, 16);
    const CompressTotals before = compressTotals();
    std::uint64_t streamsSeen = 0;
    for (const Tile &tile : parts.tiles) {
        const auto encoded =
            registry.codec(FormatKind::CSR).encode(tile);
        streamsSeen += compressTile(*encoded).streams.size();
    }
    const CompressTotals after = compressTotals();
    EXPECT_EQ(before.streams + streamsSeen, after.streams);
    EXPECT_GE(after.rawBytes, before.rawBytes);
    EXPECT_GE(after.storedBytes, before.storedBytes);
    EXPECT_GE(after.nanos, before.nanos);
}

} // namespace
} // namespace copernicus
