/**
 * @file
 * Tests for the full-matrix CSC class and CSR<->CSC conversions.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/status.hh"
#include "matrix/csc_matrix.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

TEST(CscMatrixTest, BuildsFromTriplets)
{
    TripletMatrix m(3, 4);
    m.add(0, 0, 1.0f);
    m.add(2, 0, 2.0f);
    m.add(1, 3, 3.0f);
    m.finalize();
    const CscMatrix csc(m);
    EXPECT_EQ(csc.nnz(), 3u);
    ASSERT_EQ(csc.colPtr().size(), 5u);
    EXPECT_EQ(csc.colPtr()[0], 0u);
    EXPECT_EQ(csc.colPtr()[1], 2u); // column 0 has two entries
    EXPECT_EQ(csc.colPtr()[4], 3u);
    EXPECT_EQ(csc.rowIndices()[0], 0u);
    EXPECT_EQ(csc.rowIndices()[1], 2u); // rows sorted within column
}

TEST(CscMatrixTest, MultiplyMatchesCsr)
{
    Rng rng(91);
    const auto m = randomMatrix(40, 0.15, rng);
    const CsrMatrix csr(m);
    const CscMatrix csc(m);
    std::vector<Value> x(40);
    for (auto &v : x)
        v = static_cast<Value>(rng.range(-1.0, 1.0));
    const auto y1 = csr.multiply(x);
    const auto y2 = csc.multiply(x);
    for (std::size_t i = 0; i < y1.size(); ++i)
        EXPECT_NEAR(y1[i], y2[i], 1e-4);
}

TEST(CscMatrixTest, MultiplyChecksDimensions)
{
    TripletMatrix m(2, 3);
    m.finalize();
    const CscMatrix csc(m);
    EXPECT_THROW(csc.multiply({1.0f, 2.0f}), FatalError);
}

TEST(CscMatrixTest, DirectConversionFromCsr)
{
    Rng rng(92);
    const auto m = randomMatrix(32, 0.2, rng);
    const CscMatrix via_triplets(m);
    const CscMatrix via_csr{CsrMatrix(m)};
    EXPECT_EQ(via_triplets.colPtr(), via_csr.colPtr());
    EXPECT_EQ(via_triplets.rowIndices(), via_csr.rowIndices());
    EXPECT_EQ(via_triplets.values(), via_csr.values());
}

TEST(CscMatrixTest, ToTripletsRoundTrips)
{
    Rng rng(93);
    const auto m = randomMatrix(24, 0.2, rng);
    const CscMatrix csc(m);
    EXPECT_TRUE(csc.toTriplets() == m);
}

TEST(CscMatrixTest, CscToCsrRoundTrips)
{
    Rng rng(94);
    const auto m = randomMatrix(24, 0.2, rng);
    const CsrMatrix back = toCsr(CscMatrix(m));
    const CsrMatrix direct(m);
    EXPECT_EQ(back.rowPtr(), direct.rowPtr());
    EXPECT_EQ(back.colIndices(), direct.colIndices());
    EXPECT_EQ(back.values(), direct.values());
}

TEST(CscMatrixTest, EmptyMatrix)
{
    TripletMatrix m(4, 4);
    m.finalize();
    const CscMatrix csc(m);
    EXPECT_EQ(csc.nnz(), 0u);
    const auto y = csc.multiply(std::vector<Value>(4, 1.0f));
    for (Value v : y)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(CscMatrixTest, RectangularShapesPreserved)
{
    TripletMatrix m(2, 5);
    m.add(1, 4, 7.0f);
    m.finalize();
    const CscMatrix csc(m);
    EXPECT_EQ(csc.rows(), 2u);
    EXPECT_EQ(csc.cols(), 5u);
    EXPECT_TRUE(csc.toTriplets() == m);
}

} // namespace
} // namespace copernicus
