/**
 * @file
 * EncodeCache contract tests: miss-then-hit memoisation, correctness
 * of cached encodings (round-trip), key separation across partition
 * sizes and codec hyperparameters, the disabled bypass, and eviction
 * under a tiny byte budget.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "formats/encode_cache.hh"
#include "formats/registry.hh"
#include "matrix/tile.hh"

using namespace copernicus;

namespace {

/** Deterministic tile with ~30% density. */
Tile
makeTile(Index p, std::uint64_t seed)
{
    Tile tile(p);
    Rng rng(seed);
    for (Index r = 0; r < p; ++r)
        for (Index c = 0; c < p; ++c)
            if (rng.chance(0.3))
                tile(r, c) = static_cast<Value>(rng.range(-1.0, 1.0));
    return tile;
}

/** Fresh state for every test; restores defaults afterwards. */
class EncodeCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cache().setEnabled(true);
        cache().clear();
    }

    void
    TearDown() override
    {
        cache().setEnabled(true);
        cache().setMaxBytes(std::uint64_t(256) << 20);
        cache().clear();
    }

    static EncodeCache &cache() { return EncodeCache::global(); }
};

} // namespace

TEST_F(EncodeCacheTest, MissThenHitReturnsTheSameEncoding)
{
    const Tile tile = makeTile(16, 1);
    const auto before = cache().stats();

    const auto first =
        cache().encode(defaultRegistry(), FormatKind::CSR, tile);
    const auto afterMiss = cache().stats();
    EXPECT_EQ(afterMiss.misses, before.misses + 1);
    EXPECT_EQ(afterMiss.hits, before.hits);

    const auto second =
        cache().encode(defaultRegistry(), FormatKind::CSR, tile);
    const auto afterHit = cache().stats();
    EXPECT_EQ(afterHit.misses, afterMiss.misses);
    EXPECT_EQ(afterHit.hits, before.hits + 1);
    EXPECT_EQ(first.get(), second.get()); // memoised, not re-encoded
}

TEST_F(EncodeCacheTest, IdenticalTileContentsHitAcrossObjects)
{
    // Content addressing: two distinct Tile objects with equal values
    // (different grid coordinates) share one entry.
    Tile a = makeTile(8, 2);
    Tile b(8, /*tileRow=*/5, /*tileCol=*/9);
    for (Index r = 0; r < 8; ++r)
        for (Index c = 0; c < 8; ++c)
            b(r, c) = a(r, c);

    const auto first =
        cache().encode(defaultRegistry(), FormatKind::ELL, a);
    const auto second =
        cache().encode(defaultRegistry(), FormatKind::ELL, b);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_GE(cache().stats().hits, 1u);
}

TEST_F(EncodeCacheTest, KeysSeparatePartitionSizesFormatsAndParams)
{
    const auto before = cache().stats();

    // Same seed, different partition sizes: distinct entries.
    cache().encode(defaultRegistry(), FormatKind::CSR, makeTile(8, 3));
    cache().encode(defaultRegistry(), FormatKind::CSR, makeTile(16, 3));

    // Same tile, different format: distinct entries.
    cache().encode(defaultRegistry(), FormatKind::COO, makeTile(8, 3));

    // Same tile and format, different codec hyperparameters.
    FormatParams small;
    small.bcsrBlock = 2;
    const FormatRegistry custom(small);
    cache().encode(defaultRegistry(), FormatKind::BCSR, makeTile(8, 3));
    cache().encode(custom, FormatKind::BCSR, makeTile(8, 3));

    const auto after = cache().stats();
    EXPECT_EQ(after.misses, before.misses + 5);
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_GE(after.entries, 5u);
}

TEST_F(EncodeCacheTest, CachedEncodingsDecodeBackToTheTile)
{
    for (FormatKind kind :
         {FormatKind::Dense, FormatKind::CSR, FormatKind::BCSR,
          FormatKind::ELL, FormatKind::COO, FormatKind::DIA}) {
        const Tile tile = makeTile(16, 4);
        // Warm then hit: decode the *cached* encoding.
        cache().encode(defaultRegistry(), kind, tile);
        const auto cached =
            cache().encode(defaultRegistry(), kind, tile);
        EXPECT_EQ(defaultRegistry().codec(kind).decode(*cached), tile)
            << formatName(kind);
    }
}

TEST_F(EncodeCacheTest, DisabledBypassesTheTableEntirely)
{
    cache().setEnabled(false);
    const Tile tile = makeTile(16, 5);
    const auto before = cache().stats();

    const auto first =
        cache().encode(defaultRegistry(), FormatKind::CSR, tile);
    const auto second =
        cache().encode(defaultRegistry(), FormatKind::CSR, tile);

    const auto after = cache().stats();
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses);
    EXPECT_EQ(after.entries, before.entries);
    EXPECT_NE(first.get(), second.get()); // fresh encode both times
    EXPECT_EQ(defaultRegistry().codec(FormatKind::CSR).decode(*second),
              tile);
}

TEST_F(EncodeCacheTest, TinyBudgetTriggersEvictionAndStaysCorrect)
{
    cache().setMaxBytes(16 * 1024); // 1 KiB per shard
    const auto before = cache().stats();
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const Tile tile = makeTile(32, 100 + seed);
        const auto encoded =
            cache().encode(defaultRegistry(), FormatKind::CSR, tile);
        EXPECT_EQ(defaultRegistry().codec(FormatKind::CSR).decode(
                      *encoded),
                  tile);
    }
    const auto after = cache().stats();
    EXPECT_GT(after.evictions, before.evictions);
    // Whole-shard eviction runs before each over-budget insert, so at
    // most one (possibly oversized) entry survives per shard.
    EXPECT_LE(after.entries, 16u);
}
