/**
 * @file
 * Unit tests for matrix and partition statistics (Figure 3 quantities).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "matrix/stats.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

TEST(MatrixStatsTest, DiagonalMatrix)
{
    Rng rng(1);
    const auto m = diagonalMatrix(16, rng);
    const auto stats = computeStats(m);
    EXPECT_EQ(stats.nnz, 16u);
    EXPECT_EQ(stats.bandwidth, 0u);
    EXPECT_EQ(stats.nonZeroDiagonals, 1u);
    EXPECT_DOUBLE_EQ(stats.diagonalFraction, 1.0);
    EXPECT_TRUE(stats.isDiagonal());
    EXPECT_EQ(stats.maxRowNnz, 1u);
    EXPECT_EQ(stats.nonZeroRows, 16u);
}

TEST(MatrixStatsTest, BandMatrixWidth4)
{
    Rng rng(2);
    const auto m = bandMatrix(32, 4, rng);
    const auto stats = computeStats(m);
    // k = 4 keeps |i - j| <= 2.
    EXPECT_EQ(stats.bandwidth, 2u);
    EXPECT_EQ(stats.nonZeroDiagonals, 5u);
    EXPECT_FALSE(stats.isDiagonal());
    EXPECT_EQ(stats.maxRowNnz, 5u);
}

TEST(MatrixStatsTest, EmptyMatrix)
{
    TripletMatrix m(8, 8);
    m.finalize();
    const auto stats = computeStats(m);
    EXPECT_EQ(stats.nnz, 0u);
    EXPECT_EQ(stats.nonZeroRows, 0u);
    EXPECT_EQ(stats.nonZeroDiagonals, 0u);
    EXPECT_FALSE(stats.isDiagonal());
    EXPECT_DOUBLE_EQ(stats.diagonalFraction, 0.0);
}

TEST(MatrixStatsTest, MeanRowNnz)
{
    TripletMatrix m(4, 4);
    m.add(0, 0, 1.0f);
    m.add(0, 1, 1.0f);
    m.add(2, 3, 1.0f);
    m.finalize();
    const auto stats = computeStats(m);
    EXPECT_DOUBLE_EQ(stats.meanRowNnz, 3.0 / 4.0);
    EXPECT_EQ(stats.maxRowNnz, 2u);
    EXPECT_EQ(stats.nonZeroRows, 2u);
}

TEST(MatrixStatsTest, OffDiagonalBandwidth)
{
    TripletMatrix m(10, 10);
    m.add(0, 9, 1.0f);
    m.finalize();
    const auto stats = computeStats(m);
    EXPECT_EQ(stats.bandwidth, 9u);
    EXPECT_DOUBLE_EQ(stats.diagonalFraction, 0.0);
}

TEST(PartitionStatsTest, FullTileIsFullyDense)
{
    Rng rng(3);
    // A fully dense matrix: every partition metric must be exactly 1.
    TripletMatrix m(16, 16);
    for (Index r = 0; r < 16; ++r)
        for (Index c = 0; c < 16; ++c)
            m.add(r, c, 1.0f);
    m.finalize();
    const auto stats = computePartitionStats(m, 8);
    EXPECT_EQ(stats.nonZeroTiles, 4u);
    EXPECT_EQ(stats.zeroTiles, 0u);
    EXPECT_DOUBLE_EQ(stats.avgPartitionDensity, 1.0);
    EXPECT_DOUBLE_EQ(stats.avgRowDensity, 1.0);
    EXPECT_DOUBLE_EQ(stats.avgNonZeroRowFraction, 1.0);
}

TEST(PartitionStatsTest, SingleEntryTile)
{
    TripletMatrix m(8, 8);
    m.add(0, 0, 1.0f);
    m.finalize();
    const auto stats = computePartitionStats(m, 8);
    EXPECT_EQ(stats.nonZeroTiles, 1u);
    EXPECT_DOUBLE_EQ(stats.avgPartitionDensity, 1.0 / 64.0);
    // One non-zero row containing 1 of 8 values.
    EXPECT_DOUBLE_EQ(stats.avgRowDensity, 1.0 / 8.0);
    EXPECT_DOUBLE_EQ(stats.avgNonZeroRowFraction, 1.0 / 8.0);
}

TEST(PartitionStatsTest, RowDensityExceedsPartitionDensity)
{
    // Fig. 3's point: non-zero rows are denser than partitions overall.
    Rng rng(4);
    const auto m = randomMatrix(128, 0.02, rng);
    const auto stats = computePartitionStats(m, 16);
    EXPECT_GE(stats.avgRowDensity, stats.avgPartitionDensity);
}

TEST(PartitionStatsTest, DiagonalMatrixPartitionShape)
{
    Rng rng(5);
    const auto m = diagonalMatrix(64, rng);
    const auto stats = computePartitionStats(m, 16);
    // Only the 4 diagonal tiles are non-zero; each has every row
    // non-zero with exactly one value.
    EXPECT_EQ(stats.nonZeroTiles, 4u);
    EXPECT_EQ(stats.zeroTiles, 12u);
    EXPECT_DOUBLE_EQ(stats.avgNonZeroRowFraction, 1.0);
    EXPECT_DOUBLE_EQ(stats.avgRowDensity, 1.0 / 16.0);
    EXPECT_DOUBLE_EQ(stats.avgPartitionDensity, 1.0 / 16.0);
}

TEST(PartitionStatsTest, EmptyPartitioning)
{
    TripletMatrix m(16, 16);
    m.finalize();
    const auto stats = computePartitionStats(m, 8);
    EXPECT_EQ(stats.nonZeroTiles, 0u);
    EXPECT_DOUBLE_EQ(stats.avgPartitionDensity, 0.0);
}

TEST(HistogramTest, RowNnzHistogramCountsRows)
{
    TripletMatrix m(5, 5);
    m.add(0, 0, 1.0f);
    m.add(0, 1, 1.0f);
    m.add(1, 2, 1.0f);
    m.add(3, 3, 1.0f);
    m.finalize();
    const auto histogram = rowNnzHistogram(m);
    EXPECT_EQ(histogram.at(0), 2u); // rows 2 and 4 empty
    EXPECT_EQ(histogram.at(1), 2u); // rows 1 and 3
    EXPECT_EQ(histogram.at(2), 1u); // row 0
    std::size_t total = 0;
    for (const auto &[nnz, count] : histogram)
        total += count;
    EXPECT_EQ(total, 5u);
}

TEST(HistogramTest, DiagonalMatrixHistogram)
{
    Rng rng(7);
    const auto m = diagonalMatrix(32, rng);
    const auto histogram = rowNnzHistogram(m);
    ASSERT_EQ(histogram.size(), 1u);
    EXPECT_EQ(histogram.at(1), 32u);
}

TEST(HistogramTest, TileDensityDecilesPartitionTiles)
{
    // One fully dense tile and one single-entry tile.
    TripletMatrix m(16, 16);
    for (Index r = 0; r < 8; ++r)
        for (Index c = 0; c < 8; ++c)
            m.add(r, c, 1.0f);
    m.add(8, 8, 1.0f);
    m.finalize();
    const auto deciles = tileDensityDeciles(partition(m, 8));
    EXPECT_EQ(deciles[9], 1u); // the dense tile (density 1)
    EXPECT_EQ(deciles[0], 1u); // the single-entry tile (1/64)
    std::size_t total = 0;
    for (std::size_t count : deciles)
        total += count;
    EXPECT_EQ(total, 2u);
}

TEST(HistogramTest, DecilesSumToNonZeroTiles)
{
    Rng rng(8);
    const auto m = randomMatrix(96, 0.05, rng);
    const auto parts = partition(m, 16);
    const auto deciles = tileDensityDeciles(parts);
    std::size_t total = 0;
    for (std::size_t count : deciles)
        total += count;
    EXPECT_EQ(total, parts.tiles.size());
}

TEST(PartitionStatsTest, DensityDecreasesWithPartitionSizeForDiagonal)
{
    Rng rng(6);
    const auto m = diagonalMatrix(64, rng);
    const auto s8 = computePartitionStats(m, 8);
    const auto s32 = computePartitionStats(m, 32);
    EXPECT_GT(s8.avgPartitionDensity, s32.avgPartitionDensity);
}

} // namespace
} // namespace copernicus
