/**
 * @file
 * Core-layer tests: the Study runner and the format advisor.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/rng.hh"
#include "core/advisor.hh"
#include "core/study.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

Study
smallStudy()
{
    StudyConfig cfg;
    cfg.partitionSizes = {8, 16};
    cfg.formats = {FormatKind::Dense, FormatKind::CSR, FormatKind::COO};
    Study study(cfg);
    Rng rng(1);
    study.addWorkload("random", randomMatrix(64, 0.05, rng));
    study.addWorkload("band", bandMatrix(64, 4, rng));
    return study;
}

TEST(StudyTest, RowCountIsFullCross)
{
    const Study study = smallStudy();
    const auto result = study.run();
    EXPECT_EQ(result.rows.size(), 2u * 2u * 3u);
}

TEST(StudyTest, EmptyConfigIsFatal)
{
    StudyConfig cfg;
    cfg.partitionSizes.clear();
    EXPECT_THROW(Study{cfg}, FatalError);
    StudyConfig cfg2;
    cfg2.formats.clear();
    EXPECT_THROW(Study{cfg2}, FatalError);
}

TEST(StudyTest, DuplicateWorkloadNameIsFatal)
{
    Study study(StudyConfig{});
    Rng rng(2);
    study.addWorkload("w", randomMatrix(16, 0.1, rng));
    EXPECT_THROW(study.addWorkload("w", randomMatrix(16, 0.1, rng)),
                 FatalError);
}

TEST(StudyTest, DenseRowsHaveSigmaOne)
{
    const auto result = smallStudy().run();
    for (const auto &row : result.rows) {
        if (row.format == FormatKind::Dense) {
            EXPECT_DOUBLE_EQ(row.meanSigma, 1.0);
        }
    }
}

TEST(StudyTest, RowsCarryResourceAndPowerEstimates)
{
    const auto result = smallStudy().run();
    for (const auto &row : result.rows) {
        EXPECT_GT(row.resources.bram18k, 0.0);
        EXPECT_GT(row.power.dynamicW(), 0.0);
        EXPECT_GT(row.power.staticW, 0.0);
    }
}

TEST(StudyTest, AtPartitionFilters)
{
    const auto result = smallStudy().run();
    const auto p8 = result.atPartition(8);
    EXPECT_EQ(p8.size(), 2u * 3u);
    for (const auto &row : p8)
        EXPECT_EQ(row.partitionSize, 8u);
}

TEST(StudyTest, EvaluateSingleTriple)
{
    const Study study = smallStudy();
    const auto row = study.evaluate("random", FormatKind::COO, 16);
    EXPECT_EQ(row.workload, "random");
    EXPECT_EQ(row.format, FormatKind::COO);
    EXPECT_EQ(row.partitionSize, 16u);
    EXPECT_NEAR(row.bandwidthUtilization, 1.0 / 3.0, 1e-12);
}

TEST(StudyTest, EvaluateUnknownWorkloadIsFatal)
{
    const Study study = smallStudy();
    EXPECT_THROW(study.evaluate("missing", FormatKind::CSR, 8),
                 FatalError);
}

TEST(StudyTest, AggregateByFormatAveragesAndSums)
{
    const auto result = smallStudy().run();
    const auto metrics = result.aggregateByFormat();
    ASSERT_EQ(metrics.size(), 3u);
    for (const auto &m : metrics) {
        EXPECT_GT(m.totalSeconds, 0.0);
        EXPECT_GT(m.throughput, 0.0);
        if (m.format == FormatKind::Dense) {
            EXPECT_DOUBLE_EQ(m.meanSigma, 1.0);
        }
        if (m.format == FormatKind::COO) {
            EXPECT_NEAR(m.bandwidthUtilization, 1.0 / 3.0, 1e-12);
        }
    }
}

TEST(StudyTest, CsvExportHasHeaderAndAllRows)
{
    const auto result = smallStudy().run();
    std::ostringstream out;
    result.writeCsv(out);
    const std::string text = out.str();
    // Header plus one line per row.
    std::size_t lines = 0;
    for (char ch : text)
        lines += ch == '\n';
    EXPECT_EQ(lines, result.rows.size() + 1);
    EXPECT_EQ(text.rfind("workload,format,p,sigma", 0), 0u);
    EXPECT_NE(text.find("DENSE"), std::string::npos);
    EXPECT_NE(text.find("random"), std::string::npos);
}

TEST(StudyTest, CsvFileRoundTrip)
{
    const auto result = smallStudy().run();
    const std::string path = testing::TempDir() + "/copernicus_study.csv";
    result.writeCsvFile(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header.rfind("workload,format", 0), 0u);
}

TEST(StudyTest, WorkloadCountAccessor)
{
    const Study study = smallStudy();
    EXPECT_EQ(study.workloads(), 2u);
}

TEST(AdvisorTest, GoalNamesArePrintable)
{
    EXPECT_EQ(goalName(AdvisorGoal::Latency), "latency");
    EXPECT_EQ(goalName(AdvisorGoal::Power), "power");
}

MatrixStats
statsFor(const TripletMatrix &m)
{
    return computeStats(m);
}

TEST(AdvisorTest, SparseGraphLatencyPicksCoo)
{
    Rng rng(3);
    const auto stats = statsFor(rmatGraph(512, 2048, rng));
    const auto rec = advise(stats, AdvisorGoal::Latency);
    EXPECT_EQ(rec.format, FormatKind::COO);
    EXPECT_FALSE(rec.rationale.empty());
    EXPECT_FALSE(rec.requiresTailoredEngine);
}

TEST(AdvisorTest, BandMatrixBandwidthWithTailoredEnginePicksDia)
{
    Rng rng(4);
    const auto stats = statsFor(bandMatrix(512, 8, rng));
    const auto rec = advise(stats, AdvisorGoal::Bandwidth, true);
    EXPECT_EQ(rec.format, FormatKind::DIA);
    EXPECT_TRUE(rec.requiresTailoredEngine);
    EXPECT_EQ(rec.partitionSize, 32u);
}

TEST(AdvisorTest, BandMatrixWithoutTailoredEngineAvoidsDia)
{
    // Section 8: generic formats beat DIA on generic hardware.
    Rng rng(5);
    const auto stats = statsFor(bandMatrix(512, 8, rng));
    for (AdvisorGoal goal :
         {AdvisorGoal::Latency, AdvisorGoal::Throughput,
          AdvisorGoal::Power, AdvisorGoal::Bandwidth,
          AdvisorGoal::Balanced}) {
        const auto rec = advise(stats, goal, false);
        EXPECT_NE(rec.format, FormatKind::DIA) << goalName(goal);
    }
}

TEST(AdvisorTest, DenseMlWorkloadUsesSmallPartitions)
{
    Rng rng(6);
    const auto stats = statsFor(prunedLayer(128, 128, 0.35, rng));
    const auto rec = advise(stats, AdvisorGoal::Latency);
    EXPECT_LE(rec.partitionSize, 16u);
    EXPECT_EQ(rec.format, FormatKind::BCSR);
}

TEST(AdvisorTest, PowerGoalPrefersCooForSparse)
{
    Rng rng(7);
    const auto stats = statsFor(randomMatrix(512, 0.005, rng));
    const auto rec = advise(stats, AdvisorGoal::Power);
    EXPECT_EQ(rec.format, FormatKind::COO);
}

TEST(AdvisorTest, AlternativesAreNeverThePrimary)
{
    Rng rng(8);
    const auto stats = statsFor(randomMatrix(256, 0.01, rng));
    for (AdvisorGoal goal :
         {AdvisorGoal::Latency, AdvisorGoal::Throughput,
          AdvisorGoal::Power, AdvisorGoal::Bandwidth,
          AdvisorGoal::Balanced}) {
        const auto rec = advise(stats, goal);
        for (FormatKind alt : rec.alternatives)
            EXPECT_NE(alt, rec.format) << goalName(goal);
    }
}

} // namespace
} // namespace copernicus
