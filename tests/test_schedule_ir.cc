/**
 * @file
 * Tests for the declarative schedule IR (formats/schedule_spec) and
 * its two evaluators (hls/schedule_ir): spec-table coverage, knob
 * resolution, feature extraction on hand-built tiles, guard collapse,
 * and closed-form-vs-walker agreement — the same oracle copernicus_lint
 * sweeps, pinned here on deterministic workloads so a drifting spec or
 * scheduling rule fails in-tree.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "formats/registry.hh"
#include "hls/decompressor.hh"
#include "hls/schedule_ir.hh"
#include "matrix/partitioner.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

/** p=8 tile with entries (0,0)=1, (0,5)=2, (3,0)=3. */
Tile
threeEntryTile()
{
    Tile t(8);
    t(0, 0) = 1;
    t(0, 5) = 2;
    t(3, 0) = 3;
    return t;
}

TileFeatures
featuresFor(FormatKind kind, const Tile &tile)
{
    const auto encoded = defaultCodec(kind).encode(tile);
    return extractScheduleFeatures(*encoded,
                                   defaultCodec(kind).decode(*encoded));
}

TEST(ScheduleSpecTest, EveryFormatHasASpec)
{
    for (FormatKind kind : allFormats()) {
        const ScheduleSpec &spec = scheduleSpec(kind);
        EXPECT_EQ(spec.format, kind) << formatName(kind);
        if (kind == FormatKind::Dense) {
            EXPECT_TRUE(spec.segments.empty());
            continue;
        }
        EXPECT_FALSE(spec.segments.empty()) << formatName(kind);
        for (const SegmentSpec &segment : spec.segments) {
            EXPECT_NE(segment.name[0], '\0') << formatName(kind);
            EXPECT_GE(segment.bankAccessesPerII, 1u)
                << formatName(kind);
        }
    }
}

TEST(ScheduleSpecTest, RegistryExposesTheSpecTable)
{
    for (FormatKind kind : allFormats())
        EXPECT_EQ(&defaultRegistry().schedule(kind),
                  &scheduleSpec(kind));
}

TEST(ScheduleSpecTest, FeatureNamesAreStable)
{
    EXPECT_EQ(scheduleFeatureName(ScheduleFeature::Entries), "entries");
    EXPECT_EQ(cycleKnobName(CycleKnob::LoopDepth), "loop_depth");
}

TEST(ScheduleIrTest, KnobResolutionAgainstDefaultConfig)
{
    const HlsConfig cfg;
    TileFeatures features;
    EXPECT_EQ(knobCycles(CycleKnob::UnitCycle, cfg, features), 1u);
    EXPECT_EQ(knobCycles(CycleKnob::TwoCycles, cfg, features), 2u);
    EXPECT_EQ(knobCycles(CycleKnob::BramReadLatency, cfg, features),
              cfg.bramReadLatency);
    EXPECT_EQ(knobCycles(CycleKnob::LoopDepth, cfg, features),
              cfg.loopDepth);
    EXPECT_EQ(knobCycles(CycleKnob::HashedLoopDepth, cfg, features),
              cfg.loopDepth + cfg.hashCycles);
    EXPECT_EQ(knobCycles(CycleKnob::HashCycles, cfg, features),
              cfg.hashCycles);

    // DIA's per-row scan rate: ceil(storedDiagonals / bramPorts).
    features.groupHeaders = 5;
    EXPECT_EQ(knobCycles(CycleKnob::DiagonalScan, cfg, features), 3u);
    features.groupHeaders = 4;
    EXPECT_EQ(knobCycles(CycleKnob::DiagonalScan, cfg, features), 2u);
}

TEST(ScheduleIrTest, CsrFeaturesOnHandBuiltTile)
{
    const TileFeatures f = featuresFor(FormatKind::CSR,
                                       threeEntryTile());
    EXPECT_EQ(f.tileSize, 8u);
    EXPECT_EQ(f.entries, 3u);
    EXPECT_EQ(f.nonEmptyGroups, 2u);
    EXPECT_EQ(f.producedRows, 2u);
    EXPECT_EQ(f.value(ScheduleFeature::One), 1u);
    EXPECT_EQ(f.value(ScheduleFeature::EntriesAtLeastOne), 3u);
}

TEST(ScheduleIrTest, DiaFeaturesCountStoredDiagonals)
{
    // Entries (0,0), (0,5), (3,0) sit on diagonals 0, 5 and -3.
    const TileFeatures f = featuresFor(FormatKind::DIA,
                                       threeEntryTile());
    EXPECT_EQ(f.groupHeaders, 3u);
}

TEST(ScheduleIrTest, GuardedFormatsSkipEmptyTiles)
{
    const Tile empty(8);
    for (FormatKind kind : allFormats()) {
        const ScheduleSpec &spec = scheduleSpec(kind);
        const auto encoded = defaultCodec(kind).encode(empty);
        const TileFeatures features = extractScheduleFeatures(
            *encoded, defaultCodec(kind).decode(*encoded));
        const Cycles closed =
            closedFormCycles(spec, HlsConfig(), features);
        EXPECT_EQ(closed,
                  walkScheduleCycles(spec, HlsConfig(), features))
            << formatName(kind);
        if (features.value(spec.guard) == 0) {
            EXPECT_EQ(closed, 0u) << formatName(kind);
        }
    }
    // Spot pins: CSR's guard collapses an empty tile, ELL's cannot.
    EXPECT_EQ(closedFormCycles(
                  scheduleSpec(FormatKind::CSR), HlsConfig(),
                  featuresFor(FormatKind::CSR, empty)),
              0u);
    EXPECT_GT(closedFormCycles(
                  scheduleSpec(FormatKind::ELL), HlsConfig(),
                  featuresFor(FormatKind::ELL, empty)),
              0u);
}

TEST(ScheduleIrTest, ClosedFormMatchesWalkerOnRandomTiles)
{
    const HlsConfig cfg;
    Rng rng(99);
    for (Index p : {Index(8), Index(16), Index(32)}) {
        const auto parts = partition(randomMatrix(4 * p, 0.08, rng), p);
        std::size_t checked = 0;
        for (const Tile &tile : parts.tiles) {
            if (++checked > 6)
                break;
            for (FormatKind kind : allFormats()) {
                const ScheduleSpec &spec = scheduleSpec(kind);
                const auto encoded = defaultCodec(kind).encode(tile);
                const TileFeatures features = extractScheduleFeatures(
                    *encoded, defaultCodec(kind).decode(*encoded));
                EXPECT_EQ(closedFormCycles(spec, cfg, features),
                          walkScheduleCycles(spec, cfg, features))
                    << formatName(kind) << " p=" << p;
            }
        }
    }
}

TEST(ScheduleIrTest, ClosedFormMatchesTheDynamicDecompressor)
{
    // The decompressor walks the same spec; the closed form must land
    // on the identical cycle count (the copernicus_lint oracle).
    const HlsConfig cfg;
    for (FormatKind kind : allFormats()) {
        const auto encoded =
            defaultCodec(kind).encode(threeEntryTile());
        const DecompressResult dynamic =
            simulateDecompression(*encoded, cfg);
        const TileFeatures features =
            extractScheduleFeatures(*encoded, dynamic.decoded);
        EXPECT_EQ(closedFormCycles(scheduleSpec(kind), cfg, features),
                  dynamic.decompressCycles)
            << formatName(kind);
        EXPECT_EQ(features.producedRows, dynamic.rowsProduced)
            << formatName(kind);
    }
}

TEST(ScheduleIrTest, NonDefaultConfigStaysConsistent)
{
    HlsConfig cfg;
    cfg.bramReadLatency = 3;
    cfg.loopDepth = 7;
    cfg.hashCycles = 5;
    cfg.bramPorts = 1;
    for (FormatKind kind : allFormats()) {
        const auto encoded =
            defaultCodec(kind).encode(threeEntryTile());
        const DecompressResult dynamic =
            simulateDecompression(*encoded, cfg);
        const TileFeatures features =
            extractScheduleFeatures(*encoded, dynamic.decoded);
        EXPECT_EQ(closedFormCycles(scheduleSpec(kind), cfg, features),
                  dynamic.decompressCycles)
            << formatName(kind);
    }
}

} // namespace
} // namespace copernicus
