/**
 * @file
 * HLS model tests: schedule arithmetic, the AXI transfer model, and the
 * per-format decompressor cycle walkers including the paper's headline
 * ordering claims.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "formats/registry.hh"
#include "hls/axi.hh"
#include "hls/decompressor.hh"
#include "hls/dram.hh"
#include "hls/schedule.hh"
#include "kernels/spmv.hh"

namespace copernicus {
namespace {

Tile
randomTile(Index p, double density, std::uint64_t seed)
{
    Rng rng(seed);
    Tile t(p);
    for (Index r = 0; r < p; ++r)
        for (Index c = 0; c < p; ++c)
            if (rng.chance(density))
                t(r, c) = static_cast<Value>(rng.range(0.5, 1.5));
    return t;
}

DecompressResult
simulate(FormatKind kind, const Tile &tile,
         const HlsConfig &cfg = HlsConfig())
{
    const auto encoded = defaultCodec(kind).encode(tile);
    return simulateDecompression(*encoded, cfg);
}

TEST(ScheduleTest, PipelinedLoop)
{
    EXPECT_EQ(pipelinedLoop(0, 4), 0u);
    EXPECT_EQ(pipelinedLoop(1, 4), 4u);
    EXPECT_EQ(pipelinedLoop(10, 4), 13u);
    EXPECT_EQ(pipelinedLoop(10, 4, 2), 22u);
}

TEST(ScheduleTest, UnrolledLoop)
{
    EXPECT_EQ(unrolledLoop(0, 4), 0u);
    EXPECT_EQ(unrolledLoop(16, 4), 4u);
}

TEST(AxiTest, SingleStream)
{
    HlsConfig cfg;
    // 8 bytes/cycle, setup 8: 1024 bytes -> 128 + 8.
    EXPECT_EQ(transferCycles({1024}, cfg), 136u);
}

TEST(AxiTest, PartialWordRoundsUp)
{
    HlsConfig cfg;
    EXPECT_EQ(transferCycles({9}, cfg), 2u + cfg.burstSetupCycles);
}

TEST(AxiTest, NoBytesNoCycles)
{
    HlsConfig cfg;
    EXPECT_EQ(transferCycles({}, cfg), 0u);
    EXPECT_EQ(transferCycles({0, 0}, cfg), 0u);
}

TEST(AxiTest, TwoLanesOverlapStreams)
{
    HlsConfig cfg; // 2 streamlines
    // Two equal streams ride different lanes: latency of one.
    EXPECT_EQ(transferCycles({800, 800}, cfg),
              100u + cfg.burstSetupCycles);
    // The longer stream defines latency.
    EXPECT_EQ(transferCycles({1600, 800}, cfg),
              200u + cfg.burstSetupCycles);
}

TEST(AxiTest, LptPacksThreeStreamsOntoTwoLanes)
{
    HlsConfig cfg;
    // {800, 480, 320}: LPT puts 800 alone, 480+320 together.
    EXPECT_EQ(transferCycles({800, 480, 320}, cfg),
              100u + cfg.burstSetupCycles);
}

TEST(AxiTest, SingleLaneSerializes)
{
    HlsConfig cfg;
    cfg.streamlines = 1;
    EXPECT_EQ(transferCycles({800, 800}, cfg),
              200u + cfg.burstSetupCycles);
}

TEST(AxiTest, ZeroLanesIsFatal)
{
    HlsConfig cfg;
    cfg.streamlines = 0;
    EXPECT_THROW(transferCycles({8}, cfg), FatalError);
}

TEST(AxiTest, WritebackCycles)
{
    HlsConfig cfg;
    EXPECT_EQ(writebackCycles(0, cfg), 0u);
    EXPECT_EQ(writebackCycles(64, cfg), 8u + cfg.burstSetupCycles);
}

TEST(DramTest, ZeroBytesCostNothing)
{
    EXPECT_EQ(dramServiceCycles(0, DramConfig(), 250.0), 0u);
}

TEST(DramTest, SingleRowTransfer)
{
    DramConfig dram;
    // 64 bytes: tRCD + tCL + 64/16 data cycles = 11+11+4 = 26 memory
    // cycles at 800 MHz -> ceil(26 * 250/800) = ceil(8.125) = 9.
    EXPECT_EQ(dramServiceCycles(64, dram, 250.0), 9u);
}

TEST(DramTest, RowCrossingAddsPrechargeActivate)
{
    DramConfig dram;
    const Cycles one_row = dramServiceCycles(dram.rowBytes, dram,
                                             800.0);
    const Cycles two_rows = dramServiceCycles(2 * dram.rowBytes, dram,
                                              800.0);
    // Second row adds tRP + tRCD plus its data cycles.
    EXPECT_EQ(two_rows - one_row,
              dram.tRp + dram.tRcd + dram.rowBytes /
                                         dram.bytesPerCycle());
}

TEST(DramTest, MonotoneInBytes)
{
    DramConfig dram;
    Cycles prev = 0;
    for (Bytes bytes : {64u, 512u, 4096u, 65536u}) {
        const Cycles cycles = dramServiceCycles(bytes, dram, 250.0);
        EXPECT_GE(cycles, prev);
        prev = cycles;
    }
}

TEST(DramTest, InvalidClocksAreFatal)
{
    EXPECT_THROW(dramServiceCycles(64, DramConfig(), 0.0), FatalError);
    DramConfig bad;
    bad.busClockMhz = 0.0;
    EXPECT_THROW(dramServiceCycles(64, bad, 250.0), FatalError);
}

TEST(DramTest, AxiUsesDramModelWhenEnabled)
{
    HlsConfig cfg;
    cfg.useDramModel = true;
    const Cycles via_axi = transferCycles({1024, 512}, cfg);
    EXPECT_EQ(via_axi,
              dramServiceCycles(1536, cfg.dram, cfg.clockMhz));
    EXPECT_EQ(writebackCycles(64, cfg),
              dramServiceCycles(64, cfg.dram, cfg.clockMhz));
}

TEST(DramTest, SequentialStreamBeatsFlatModelForLargeTransfers)
{
    // DDR3 at 800 MHz delivers 16 B per memory cycle ~ 6.4 GB/s, more
    // than two 64-bit AXI lanes at 250 MHz (4 GB/s): for long bursts
    // the DRAM-modelled transfer is faster.
    HlsConfig flat;
    HlsConfig timed;
    timed.useDramModel = true;
    const std::vector<Bytes> big = {1 << 20};
    EXPECT_LT(transferCycles(big, timed), transferCycles(big, flat));
}

TEST(HlsConfigTest, DotLatencyGrowsLogarithmically)
{
    HlsConfig cfg;
    EXPECT_EQ(cfg.dotLatency(8), 1u + 3u + 1u);
    EXPECT_EQ(cfg.dotLatency(16), 1u + 4u + 1u);
    EXPECT_EQ(cfg.dotLatency(32), 1u + 5u + 1u);
}

TEST(DecompressorTest, DenseSigmaIsExactlyOne)
{
    // Eq. 1: the dense baseline defines sigma = 1 at any density.
    HlsConfig cfg;
    for (Index p : {8u, 16u, 32u}) {
        for (double d : {0.1, 0.9}) {
            const Tile tile = randomTile(p, d, p + 1);
            const auto result = simulate(FormatKind::Dense, tile, cfg);
            EXPECT_EQ(result.decompressCycles, 0u);
            EXPECT_EQ(result.rowsProduced, p);
            EXPECT_DOUBLE_EQ(sigmaOverhead(result, p, cfg), 1.0);
        }
    }
}

/** The walker must reconstruct the exact tile for every format. */
class DecompressorFormatTest : public testing::TestWithParam<FormatKind>
{
};

TEST_P(DecompressorFormatTest, DecodedTileMatchesSource)
{
    for (Index p : {8u, 16u, 32u}) {
        for (double density : {0.02, 0.2, 0.8}) {
            const Tile tile = randomTile(p, density, 100 * p + 3);
            const auto result = simulate(GetParam(), tile);
            EXPECT_TRUE(result.decoded == tile)
                << formatName(GetParam()) << " p=" << p;
        }
    }
}

TEST_P(DecompressorFormatTest, EmptyTileCostsNothingMuch)
{
    const Tile tile(16);
    const auto result = simulate(GetParam(), tile);
    EXPECT_TRUE(result.decoded == tile);
    // Formats that skip zero rows produce none; row-oblivious formats
    // (dense/ELL-family) still push all 16 rows.
    if (GetParam() == FormatKind::Dense ||
        GetParam() == FormatKind::ELL ||
        GetParam() == FormatKind::SELL ||
        GetParam() == FormatKind::ELLCOO ||
        GetParam() == FormatKind::SELLCS) {
        EXPECT_EQ(result.rowsProduced, 16u);
    } else {
        EXPECT_EQ(result.rowsProduced, 0u);
    }
}

TEST_P(DecompressorFormatTest, WalkerAndKernelAgreeOnSemantics)
{
    // The cycle walker's reconstructed tile and the compressed-domain
    // SpMV kernel must describe the same matrix: y computed from the
    // decoded tile equals y computed straight off the encoding.
    const Tile tile = randomTile(16, 0.25, 41);
    const auto encoded = defaultCodec(GetParam()).encode(tile);
    const auto result = simulateDecompression(*encoded, HlsConfig());

    Rng rng(42);
    std::vector<Value> x(16);
    for (auto &v : x)
        v = static_cast<Value>(rng.range(-1.0, 1.0));
    const auto from_decoded = spmvDense(result.decoded, x);
    const auto from_encoded = spmvEncoded(*encoded, x);
    for (Index i = 0; i < 16; ++i)
        EXPECT_NEAR(from_decoded[i], from_encoded[i], 1e-4)
            << formatName(GetParam());
}

TEST_P(DecompressorFormatTest, SigmaIsPositive)
{
    HlsConfig cfg;
    const Tile tile = randomTile(16, 0.2, 5);
    const auto result = simulate(GetParam(), tile, cfg);
    EXPECT_GT(sigmaOverhead(result, 16, cfg), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, DecompressorFormatTest,
                         testing::ValuesIn(allFormats()),
                         [](const testing::TestParamInfo<FormatKind> &i) {
                             return std::string(formatName(i.param));
                         });

TEST(DecompressorTest, CscIsWorstOnDenseTiles)
{
    // Section 6.1: the orientation mismatch makes CSC the worst case.
    HlsConfig cfg;
    const Tile tile = randomTile(16, 0.5, 21);
    const double csc =
        sigmaOverhead(simulate(FormatKind::CSC, tile, cfg), 16, cfg);
    for (FormatKind kind : paperFormats()) {
        if (kind == FormatKind::CSC)
            continue;
        const double other =
            sigmaOverhead(simulate(kind, tile, cfg), 16, cfg);
        EXPECT_GT(csc, other) << "vs " << formatName(kind);
    }
    // "Up to 21x-30x slower" at high density: order of magnitude check.
    EXPECT_GT(csc, 10.0);
    EXPECT_LT(csc, 60.0);
}

TEST(DecompressorTest, SigmaGrowsWithDensityForCooCsrCsc)
{
    // Fig. 5: sigma increases with density, dramatically for
    // COO/CSR/CSC.
    HlsConfig cfg;
    for (FormatKind kind :
         {FormatKind::COO, FormatKind::CSR, FormatKind::CSC}) {
        double prev = 0;
        for (double density : {0.05, 0.2, 0.5, 0.9}) {
            const Tile tile = randomTile(16, density, 31);
            const double sigma =
                sigmaOverhead(simulate(kind, tile, cfg), 16, cfg);
            EXPECT_GT(sigma, prev) << formatName(kind) << " at "
                                   << density;
            prev = sigma;
        }
    }
}

TEST(DecompressorTest, EllSigmaIndependentOfSparsityPattern)
{
    // Section 6.1: ELL processes the whole compressed square no matter
    // where the non-zeros sit.
    HlsConfig cfg;
    Tile a(16), b(16);
    a(0, 0) = 1;
    a(5, 3) = 2;
    b(15, 15) = 1;
    b(8, 2) = 2;
    const auto ra = simulate(FormatKind::ELL, a, cfg);
    const auto rb = simulate(FormatKind::ELL, b, cfg);
    EXPECT_EQ(ra.decompressCycles, rb.decompressCycles);
    EXPECT_EQ(ra.rowsProduced, 16u);
}

TEST(DecompressorTest, EllSigmaDecreasesWithPartitionSize)
{
    // Fig. 7: ELL's relative overhead shrinks as p grows.
    HlsConfig cfg;
    double prev = 1e9;
    for (Index p : {8u, 16u, 32u}) {
        const Tile tile = randomTile(p, 0.05, p);
        const double sigma =
            sigmaOverhead(simulate(FormatKind::ELL, tile, cfg), p, cfg);
        EXPECT_LT(sigma, prev);
        prev = sigma;
    }
}

TEST(DecompressorTest, CsrLatencyScalesWithRowPopulation)
{
    HlsConfig cfg;
    Tile sparse(16), full(16);
    sparse(3, 3) = 1;
    for (Index r = 0; r < 16; ++r)
        for (Index c = 0; c < 16; ++c)
            full(r, c) = 1;
    EXPECT_LT(simulate(FormatKind::CSR, sparse, cfg).decompressCycles,
              simulate(FormatKind::CSR, full, cfg).decompressCycles);
}

TEST(DecompressorTest, BcsrProcessesWholeBlockRows)
{
    // One non-zero in one block still pushes 4 rows through the dot
    // engine (Listing 2's "whether they are all zero or not").
    Tile t(16);
    t(5, 5) = 1;
    const auto result = simulate(FormatKind::BCSR, t);
    EXPECT_EQ(result.rowsProduced, 4u);
}

TEST(DecompressorTest, DiaCostScalesWithDiagonalCount)
{
    HlsConfig cfg;
    Tile one_diag(16), many_diags(16);
    for (Index i = 0; i < 16; ++i)
        one_diag(i, i) = 1;
    // Same nnz scattered over many diagonals (Listing 7 discussion).
    for (Index i = 0; i < 16; ++i)
        many_diags(i, (i * 7) % 16) = 1;
    EXPECT_LT(simulate(FormatKind::DIA, one_diag, cfg).decompressCycles,
              simulate(FormatKind::DIA, many_diags, cfg)
                  .decompressCycles);
}

TEST(DecompressorTest, LilBoundByLongestColumn)
{
    HlsConfig cfg;
    Tile spread(16), stacked(16);
    // Same nnz: spread across columns vs stacked in one column.
    for (Index i = 0; i < 8; ++i)
        spread(i, i) = 1;
    for (Index i = 0; i < 8; ++i)
        stacked(i, 0) = 1;
    const auto rs = simulate(FormatKind::LIL, spread, cfg);
    const auto rt = simulate(FormatKind::LIL, stacked, cfg);
    EXPECT_LE(rs.decompressCycles, rt.decompressCycles);
}

TEST(DecompressorTest, DokSlowerThanCoo)
{
    HlsConfig cfg;
    const Tile tile = randomTile(16, 0.3, 77);
    EXPECT_GT(simulate(FormatKind::DOK, tile, cfg).decompressCycles,
              simulate(FormatKind::COO, tile, cfg).decompressCycles);
}

TEST(DecompressorTest, ComputeCyclesCombineDecompAndDots)
{
    HlsConfig cfg;
    const Tile tile = randomTile(16, 0.2, 88);
    const auto result = simulate(FormatKind::CSR, tile, cfg);
    EXPECT_EQ(computeCycles(result, cfg),
              result.decompressCycles +
                  Cycles(result.rowsProduced) * cfg.dotLatency(16));
}

} // namespace
} // namespace copernicus
