/**
 * @file
 * Unit tests for TripletMatrix, DenseMatrix and CsrMatrix.
 */

#include <gtest/gtest.h>

#include "common/status.hh"
#include "matrix/csr_matrix.hh"
#include "matrix/dense_matrix.hh"
#include "matrix/triplet_matrix.hh"

namespace copernicus {
namespace {

TEST(TripletMatrixTest, EmptyMatrixIsFinalized)
{
    TripletMatrix m(4, 4);
    EXPECT_TRUE(m.finalized());
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_EQ(m.density(), 0.0);
}

TEST(TripletMatrixTest, ZeroDimensionsRejected)
{
    EXPECT_THROW(TripletMatrix(0, 4), FatalError);
    EXPECT_THROW(TripletMatrix(4, 0), FatalError);
}

TEST(TripletMatrixTest, AddClearsFinalizedFlag)
{
    TripletMatrix m(4, 4);
    m.add(1, 2, 3.0f);
    EXPECT_FALSE(m.finalized());
    m.finalize();
    EXPECT_TRUE(m.finalized());
}

TEST(TripletMatrixTest, OutOfRangeAddPanics)
{
    TripletMatrix m(4, 4);
    EXPECT_THROW(m.add(4, 0, 1.0f), PanicError);
    EXPECT_THROW(m.add(0, 4, 1.0f), PanicError);
}

TEST(TripletMatrixTest, FinalizeSortsRowMajor)
{
    TripletMatrix m(3, 3);
    m.add(2, 1, 1.0f);
    m.add(0, 2, 2.0f);
    m.add(0, 0, 3.0f);
    m.add(1, 1, 4.0f);
    m.finalize();
    const auto &ts = m.triplets();
    ASSERT_EQ(ts.size(), 4u);
    EXPECT_EQ(ts[0].row, 0u);
    EXPECT_EQ(ts[0].col, 0u);
    EXPECT_EQ(ts[1].row, 0u);
    EXPECT_EQ(ts[1].col, 2u);
    EXPECT_EQ(ts[2].row, 1u);
    EXPECT_EQ(ts[3].row, 2u);
}

TEST(TripletMatrixTest, FinalizeSumsDuplicates)
{
    TripletMatrix m(2, 2);
    m.add(0, 0, 1.0f);
    m.add(0, 0, 2.5f);
    m.finalize();
    EXPECT_EQ(m.nnz(), 1u);
    EXPECT_FLOAT_EQ(m.at(0, 0), 3.5f);
}

TEST(TripletMatrixTest, FinalizeDropsCancelledEntries)
{
    TripletMatrix m(2, 2);
    m.add(1, 1, 2.0f);
    m.add(1, 1, -2.0f);
    m.add(0, 1, 1.0f);
    m.finalize();
    EXPECT_EQ(m.nnz(), 1u);
    EXPECT_FLOAT_EQ(m.at(1, 1), 0.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 1.0f);
}

TEST(TripletMatrixTest, AtReturnsZeroForMissing)
{
    TripletMatrix m(3, 3);
    m.add(1, 1, 5.0f);
    m.finalize();
    EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(m.at(1, 1), 5.0f);
    EXPECT_FLOAT_EQ(m.at(2, 2), 0.0f);
}

TEST(TripletMatrixTest, AtRequiresFinalized)
{
    TripletMatrix m(2, 2);
    m.add(0, 0, 1.0f);
    EXPECT_THROW(m.at(0, 0), PanicError);
}

TEST(TripletMatrixTest, RowRangeCoversRow)
{
    TripletMatrix m(3, 4);
    m.add(1, 0, 1.0f);
    m.add(1, 3, 2.0f);
    m.add(2, 2, 3.0f);
    m.finalize();
    const auto [b0, e0] = m.rowRange(0);
    EXPECT_EQ(b0, e0);
    const auto [b1, e1] = m.rowRange(1);
    EXPECT_EQ(e1 - b1, 2u);
    const auto [b2, e2] = m.rowRange(2);
    EXPECT_EQ(e2 - b2, 1u);
    EXPECT_EQ(b2, e1);
}

TEST(TripletMatrixTest, DensityMatchesDefinition)
{
    TripletMatrix m(4, 5);
    m.add(0, 0, 1.0f);
    m.add(1, 1, 1.0f);
    m.finalize();
    EXPECT_DOUBLE_EQ(m.density(), 2.0 / 20.0);
}

TEST(TripletMatrixTest, ToDensePlacesValues)
{
    TripletMatrix m(2, 3);
    m.add(0, 2, 7.0f);
    m.add(1, 0, -1.0f);
    m.finalize();
    const DenseMatrix d = m.toDense();
    EXPECT_FLOAT_EQ(d(0, 2), 7.0f);
    EXPECT_FLOAT_EQ(d(1, 0), -1.0f);
    EXPECT_FLOAT_EQ(d(0, 0), 0.0f);
}

TEST(TripletMatrixTest, TransposedSwapsCoordinates)
{
    TripletMatrix m(2, 3);
    m.add(0, 2, 7.0f);
    m.add(1, 1, 3.0f);
    m.finalize();
    const TripletMatrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_FLOAT_EQ(t.at(2, 0), 7.0f);
    EXPECT_FLOAT_EQ(t.at(1, 1), 3.0f);
}

TEST(TripletMatrixTest, DoubleTransposeIsIdentity)
{
    TripletMatrix m(3, 3);
    m.add(0, 1, 1.0f);
    m.add(2, 0, 2.0f);
    m.finalize();
    EXPECT_TRUE(m == m.transposed().transposed());
}

TEST(TripletMatrixTest, EqualityComparesContent)
{
    TripletMatrix a(2, 2), b(2, 2);
    a.add(0, 1, 1.0f);
    b.add(0, 1, 1.0f);
    a.finalize();
    b.finalize();
    EXPECT_TRUE(a == b);
    TripletMatrix c(2, 2);
    c.add(1, 0, 1.0f);
    c.finalize();
    EXPECT_FALSE(a == c);
}

TEST(DenseMatrixTest, ZeroInitialized)
{
    DenseMatrix d(3, 3);
    for (Index r = 0; r < 3; ++r)
        for (Index c = 0; c < 3; ++c)
            EXPECT_FLOAT_EQ(d(r, c), 0.0f);
    EXPECT_EQ(d.nnz(), 0u);
}

TEST(DenseMatrixTest, BoundsChecked)
{
    DenseMatrix d(2, 2);
    EXPECT_THROW(d(2, 0), PanicError);
    EXPECT_THROW(d(0, 2), PanicError);
}

TEST(DenseMatrixTest, RowHelpers)
{
    DenseMatrix d(3, 3);
    d(1, 0) = 1.0f;
    d(1, 2) = 2.0f;
    EXPECT_TRUE(d.rowIsZero(0));
    EXPECT_FALSE(d.rowIsZero(1));
    EXPECT_EQ(d.rowNnz(1), 2u);
    EXPECT_EQ(d.nnz(), 2u);
}

TEST(CsrMatrixTest, BuildsFromTriplets)
{
    TripletMatrix m(3, 3);
    m.add(0, 0, 1.0f);
    m.add(0, 2, 2.0f);
    m.add(2, 1, 3.0f);
    m.finalize();
    const CsrMatrix csr(m);
    EXPECT_EQ(csr.nnz(), 3u);
    ASSERT_EQ(csr.rowPtr().size(), 4u);
    EXPECT_EQ(csr.rowPtr()[0], 0u);
    EXPECT_EQ(csr.rowPtr()[1], 2u);
    EXPECT_EQ(csr.rowPtr()[2], 2u);
    EXPECT_EQ(csr.rowPtr()[3], 3u);
}

TEST(CsrMatrixTest, MultiplyMatchesManual)
{
    TripletMatrix m(2, 3);
    m.add(0, 0, 1.0f);
    m.add(0, 2, 2.0f);
    m.add(1, 1, 3.0f);
    m.finalize();
    const CsrMatrix csr(m);
    const std::vector<Value> x = {1.0f, 2.0f, 3.0f};
    const auto y = csr.multiply(x);
    ASSERT_EQ(y.size(), 2u);
    EXPECT_FLOAT_EQ(y[0], 1.0f + 6.0f);
    EXPECT_FLOAT_EQ(y[1], 6.0f);
}

TEST(CsrMatrixTest, MultiplyChecksDimensions)
{
    TripletMatrix m(2, 3);
    m.finalize();
    const CsrMatrix csr(m);
    EXPECT_THROW(csr.multiply({1.0f, 2.0f}), FatalError);
}

TEST(CsrMatrixTest, MultiplyTransposedMatchesExplicitTranspose)
{
    TripletMatrix m(3, 4);
    m.add(0, 1, 2.0f);
    m.add(1, 3, -1.0f);
    m.add(2, 0, 4.0f);
    m.finalize();
    const CsrMatrix a(m);
    const CsrMatrix at(m.transposed());
    const std::vector<Value> x = {1.0f, 2.0f, 3.0f};
    const auto y1 = a.multiplyTransposed(x);
    const auto y2 = at.multiply(x);
    ASSERT_EQ(y1.size(), y2.size());
    for (std::size_t i = 0; i < y1.size(); ++i)
        EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

} // namespace
} // namespace copernicus
