/**
 * @file
 * Tests for per-partition adaptive format selection and the mixed
 * pipeline.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/status.hh"
#include "core/scheduler.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

Partitioning
sampleParts(double density = 0.05)
{
    Rng rng(77);
    return partition(randomMatrix(128, density, rng), 16);
}

TEST(MixedPipelineTest, LengthMismatchIsFatal)
{
    const auto parts = sampleParts();
    std::vector<FormatKind> short_plan(parts.tiles.size() - 1,
                                       FormatKind::CSR);
    EXPECT_THROW(runPipelineMixed(parts, short_plan), FatalError);
}

TEST(MixedPipelineTest, UniformPlanMatchesFixedPipeline)
{
    const auto parts = sampleParts();
    const std::vector<FormatKind> plan(parts.tiles.size(),
                                       FormatKind::COO);
    const auto mixed = runPipelineMixed(parts, plan);
    const auto fixed = runPipeline(parts, FormatKind::COO);
    EXPECT_EQ(mixed.totalCycles, fixed.totalCycles);
    EXPECT_EQ(mixed.totalBytes, fixed.totalBytes);
    EXPECT_EQ(mixed.format, FormatKind::COO);
}

TEST(MixedPipelineTest, MajorityFormatReported)
{
    const auto parts = sampleParts();
    ASSERT_GE(parts.tiles.size(), 3u);
    std::vector<FormatKind> plan(parts.tiles.size(), FormatKind::CSR);
    plan[0] = FormatKind::DIA;
    const auto result = runPipelineMixed(parts, plan);
    EXPECT_EQ(result.format, FormatKind::CSR);
}

TEST(PlanFormatsTest, EmptyCandidatesIsFatal)
{
    const auto parts = sampleParts();
    EXPECT_THROW(planFormats(parts, {}), FatalError);
}

TEST(PlanFormatsTest, SingleCandidateIsChosenEverywhere)
{
    const auto parts = sampleParts();
    const auto plan = planFormats(parts, {FormatKind::LIL});
    EXPECT_EQ(plan.perTile.size(), parts.tiles.size());
    for (FormatKind kind : plan.perTile)
        EXPECT_EQ(kind, FormatKind::LIL);
    EXPECT_EQ(plan.histogram.at(FormatKind::LIL), parts.tiles.size());
}

TEST(PlanFormatsTest, HistogramSumsToTileCount)
{
    const auto parts = sampleParts();
    const auto plan = planFormats(parts, paperFormats());
    std::size_t total = 0;
    for (const auto &[kind, count] : plan.histogram)
        total += count;
    EXPECT_EQ(total, parts.tiles.size());
}

TEST(PlanFormatsTest, BytesObjectivePicksSmallestEncoding)
{
    const auto parts = sampleParts();
    const auto plan = planFormats(parts, paperFormats(),
                                  SchedulerObjective::Bytes);
    for (std::size_t i = 0; i < parts.tiles.size(); ++i) {
        const Bytes chosen = defaultCodec(plan.perTile[i])
                                 .encode(parts.tiles[i])
                                 ->totalBytes();
        for (FormatKind kind : paperFormats()) {
            const Bytes other =
                defaultCodec(kind).encode(parts.tiles[i])->totalBytes();
            EXPECT_LE(chosen, other)
                << "tile " << i << " chose " << formatName(
                       plan.perTile[i]) << " but " << formatName(kind)
                << " is smaller";
        }
    }
}

TEST(AdaptiveTest, NeverWorseThanEveryFixedChoice)
{
    // The adaptive bottleneck plan must beat-or-match the best fixed
    // format on total steady cycles (it optimizes exactly that,
    // tile by tile).
    for (double density : {0.02, 0.2}) {
        const auto parts = sampleParts(density);
        const auto adaptive = runAdaptive(parts, paperFormats());
        for (FormatKind kind : paperFormats()) {
            const auto fixed = runPipeline(parts, kind);
            EXPECT_LE(adaptive.totalCycles, fixed.totalCycles)
                << "density " << density << " vs " << formatName(kind);
        }
    }
}

TEST(AdaptiveTest, MixedStructurePicksDifferentFormats)
{
    // A matrix that is diagonal in one corner and dense random in
    // another should not get a single uniform answer under the bytes
    // objective.
    Rng rng(88);
    TripletMatrix m(64, 64);
    for (Index i = 0; i < 32; ++i)
        m.add(i, i, 1.0f); // diagonal tiles
    for (Index r = 32; r < 64; ++r)
        for (Index c = 32; c < 64; ++c)
            if (rng.chance(0.6))
                m.add(r, c, 1.0f); // dense tiles
    m.finalize();
    const auto parts = partition(m, 16);
    const auto plan = planFormats(parts, paperFormats(),
                                  SchedulerObjective::Bytes);
    EXPECT_GE(plan.histogram.size(), 2u);
}

TEST(AdaptiveTest, ComputeObjectiveMinimizesComputeCycles)
{
    const auto parts = sampleParts(0.1);
    const auto plan = planFormats(parts, paperFormats(),
                                  SchedulerObjective::Compute);
    const auto adaptive = runPipelineMixed(parts, plan.perTile);
    for (FormatKind kind : paperFormats()) {
        const auto fixed = runPipeline(parts, kind);
        EXPECT_LE(adaptive.totalComputeCycles,
                  fixed.totalComputeCycles)
            << formatName(kind);
    }
}

} // namespace
} // namespace copernicus
