/**
 * @file
 * Workload-generator tests: structural guarantees of every synthetic
 * family and the Table-1 surrogate catalog.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/status.hh"
#include "matrix/stats.hh"
#include "workloads/generators.hh"
#include "workloads/suite_catalog.hh"

namespace copernicus {
namespace {

TEST(RandomMatrixTest, DensityWithinTolerance)
{
    Rng rng(1);
    for (double density : {0.001, 0.01, 0.1, 0.5}) {
        const auto m = randomMatrix(256, density, rng);
        EXPECT_NEAR(m.density(), density, density * 0.25 + 0.001)
            << "target density " << density;
    }
}

TEST(RandomMatrixTest, SparsePathDrawsDistinctCells)
{
    Rng rng(2);
    const auto m = randomMatrix(512, 0.001, rng);
    // finalize() would have merged duplicates; the generator must have
    // hit the target count exactly via distinct draws.
    EXPECT_EQ(m.nnz(),
              static_cast<std::size_t>(
                  std::llround(512.0 * 512.0 * 0.001)));
}

TEST(RandomMatrixTest, InvalidDensityIsFatal)
{
    Rng rng(3);
    EXPECT_THROW(randomMatrix(16, -0.1, rng), FatalError);
    EXPECT_THROW(randomMatrix(16, 1.5, rng), FatalError);
}

TEST(RandomMatrixTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    const auto m1 = randomMatrix(64, 0.05, a);
    const auto m2 = randomMatrix(64, 0.05, b);
    EXPECT_TRUE(m1 == m2);
}

TEST(BandMatrixTest, EntriesConfinedToBand)
{
    Rng rng(4);
    for (Index k : {1u, 2u, 4u, 16u, 64u}) {
        const auto m = bandMatrix(128, k, rng);
        const auto stats = computeStats(m);
        EXPECT_LE(stats.bandwidth, k / 2) << "width " << k;
        EXPECT_EQ(m.nnz() > 0, true);
    }
}

TEST(BandMatrixTest, WidthOneIsDiagonal)
{
    Rng rng(5);
    const auto m = bandMatrix(64, 1, rng);
    EXPECT_EQ(m.nnz(), 64u);
    EXPECT_TRUE(computeStats(m).isDiagonal());
}

TEST(BandMatrixTest, FullBandIsCompletelyFilled)
{
    Rng rng(6);
    const auto m = bandMatrix(32, 4, rng, 1.0);
    // Every cell with |i-j| <= 2 must be non-zero.
    for (Index r = 0; r < 32; ++r)
        for (Index c = (r > 2 ? r - 2 : 0);
             c < std::min<Index>(32, r + 3); ++c)
            EXPECT_NE(m.at(r, c), 0.0f);
}

TEST(BandMatrixTest, PartialFillReducesNnz)
{
    Rng rng(7);
    const auto full = bandMatrix(128, 16, rng, 1.0);
    const auto half = bandMatrix(128, 16, rng, 0.5);
    EXPECT_LT(half.nnz(), full.nnz());
    EXPECT_GT(half.nnz(), full.nnz() / 4);
}

TEST(BandMatrixTest, ZeroWidthIsFatal)
{
    Rng rng(8);
    EXPECT_THROW(bandMatrix(16, 0, rng), FatalError);
}

TEST(DiagonalMatrixTest, ExactlyTheDiagonal)
{
    Rng rng(9);
    const auto m = diagonalMatrix(50, rng);
    EXPECT_EQ(m.nnz(), 50u);
    for (Index i = 0; i < 50; ++i)
        EXPECT_NE(m.at(i, i), 0.0f);
}

TEST(Stencil2dTest, StructureAndSymmetry)
{
    const auto m = stencil2d(8, 8);
    EXPECT_EQ(m.rows(), 64u);
    // Interior points have 5 entries; nnz = 5n - 2*(nx + ny) boundary
    // corrections.
    EXPECT_EQ(m.nnz(), 5u * 64u - 2u * (8u + 8u));
    EXPECT_TRUE(m == m.transposed());
    // Diagonally dominant rows sum to >= 0 (Poisson).
    const auto stats = computeStats(m);
    EXPECT_EQ(stats.nonZeroRows, 64u);
}

TEST(Stencil2dTest, RectangularGrid)
{
    const auto m = stencil2d(4, 6);
    EXPECT_EQ(m.rows(), 24u);
    EXPECT_TRUE(m == m.transposed());
}

TEST(Stencil3dTest, SevenPointDegree)
{
    const auto m = stencil3d(5, false);
    EXPECT_EQ(m.rows(), 125u);
    const auto stats = computeStats(m);
    // Interior degree 7; boundaries trim it.
    EXPECT_LE(stats.maxRowNnz, 7u);
    EXPECT_GT(stats.meanRowNnz, 5.0);
    EXPECT_TRUE(m == m.transposed());
}

TEST(Stencil3dTest, BoxStencilDenserThanCross)
{
    const auto cross = stencil3d(4, false);
    const auto box = stencil3d(4, true);
    EXPECT_GT(box.nnz(), cross.nnz());
    EXPECT_LE(computeStats(box).maxRowNnz, 27u);
}

TEST(RmatGraphTest, EdgeCountAndRange)
{
    Rng rng(10);
    const auto m = rmatGraph(1000, 5000, rng);
    EXPECT_EQ(m.rows(), 1000u);
    EXPECT_LE(m.nnz(), 5000u);
    EXPECT_GT(m.nnz(), 4000u); // best effort, small duplicate loss
}

TEST(RmatGraphTest, SkewProducesHubs)
{
    Rng rng(11);
    const auto m = rmatGraph(512, 4096, rng, 0.7, 0.15, 0.1);
    const auto stats = computeStats(m);
    // A heavily skewed R-MAT has rows far above the mean degree.
    EXPECT_GT(static_cast<double>(stats.maxRowNnz),
              4.0 * stats.meanRowNnz);
}

TEST(RmatGraphTest, InvalidProbabilitiesAreFatal)
{
    Rng rng(12);
    EXPECT_THROW(rmatGraph(64, 100, rng, 0.6, 0.3, 0.2), FatalError);
}

TEST(RoadGridTest, SymmetricBoundedDegree)
{
    Rng rng(13);
    const auto m = roadGrid(24, rng);
    EXPECT_TRUE(m == m.transposed());
    const auto stats = computeStats(m);
    EXPECT_LE(stats.maxRowNnz, 8u); // 4 lattice + rare shortcuts
}

TEST(RoadGridTest, KeepProbabilityScalesEdges)
{
    Rng a(14), b(14);
    const auto dense_grid = roadGrid(24, a, 0.9, 0.0);
    const auto sparse_grid = roadGrid(24, b, 0.3, 0.0);
    EXPECT_GT(dense_grid.nnz(), 2 * sparse_grid.nnz());
}

TEST(CircuitMatrixTest, FullDiagonalAndLocality)
{
    Rng rng(15);
    const auto m = circuitMatrix(256, rng);
    for (Index i = 0; i < 256; ++i)
        EXPECT_NE(m.at(i, i), 0.0f);
    const auto stats = computeStats(m);
    EXPECT_GT(stats.meanRowNnz, 1.5);
}

TEST(PrunedLayerTest, UnstructuredDensity)
{
    Rng rng(16);
    const auto m = prunedLayer(128, 128, 0.2, rng, false);
    EXPECT_NEAR(m.density(), 0.2, 0.05);
}

TEST(PrunedLayerTest, BlockStructuredKeepsWholeBlocks)
{
    Rng rng(17);
    const auto m = prunedLayer(64, 64, 0.3, rng, true);
    // Every 4x4 block is either fully present or fully absent.
    for (Index br = 0; br < 64; br += 4) {
        for (Index bc = 0; bc < 64; bc += 4) {
            int present = 0;
            for (Index r = br; r < br + 4; ++r)
                for (Index c = bc; c < bc + 4; ++c)
                    present += m.at(r, c) != 0.0f;
            EXPECT_TRUE(present == 0 || present == 16)
                << "block (" << br << "," << bc << ") has " << present;
        }
    }
}

TEST(PrunedLayerTest, RectangularShape)
{
    Rng rng(18);
    const auto m = prunedLayer(32, 96, 0.1, rng);
    EXPECT_EQ(m.rows(), 32u);
    EXPECT_EQ(m.cols(), 96u);
}

TEST(EmbeddingAccessTest, ExactLookupsPerRow)
{
    Rng rng(19);
    const auto m = embeddingAccess(16, 1000, 8, rng);
    EXPECT_EQ(m.rows(), 16u);
    EXPECT_EQ(m.cols(), 1000u);
    EXPECT_EQ(m.nnz(), 16u * 8u);
    for (Index r = 0; r < 16; ++r) {
        const auto [b, e] = m.rowRange(r);
        EXPECT_EQ(e - b, 8u);
    }
}

TEST(EmbeddingAccessTest, TooManyLookupsIsFatal)
{
    Rng rng(20);
    EXPECT_THROW(embeddingAccess(4, 4, 5, rng), FatalError);
}

TEST(SuiteCatalogTest, TwentyUniqueEntries)
{
    const auto &catalog = suiteCatalog();
    EXPECT_EQ(catalog.size(), 20u);
    std::set<std::string> ids;
    for (const auto &info : catalog)
        ids.insert(info.id);
    EXPECT_EQ(ids.size(), 20u);
}

TEST(SuiteCatalogTest, LookupByIdWorks)
{
    EXPECT_EQ(suiteMatrix("2C").name, "2cubes_sphere");
    EXPECT_EQ(suiteMatrix("KR").name, "kron_g500-logn21");
    EXPECT_THROW(suiteMatrix("XX"), FatalError);
}

TEST(SuiteCatalogTest, PaperDegreesMatchTable1)
{
    EXPECT_NEAR(suiteMatrix("KR").paperNnzPerRow(), 91.0, 1.0);
    EXPECT_NEAR(suiteMatrix("EO").paperNnzPerRow(), 2.12, 0.05);
}

TEST(SuiteCatalogTest, SurrogatesGenerateWithRoughDegreeMatch)
{
    // Spot-check one surrogate per recipe family.
    for (const char *id : {"2C", "FR", "RE", "AM", "EO", "DW"}) {
        const auto &info = suiteMatrix(id);
        const auto m = info.generate(1234);
        ASSERT_GT(m.nnz(), 0u) << id;
        const double deg = static_cast<double>(m.nnz()) / m.rows();
        const double target = info.paperNnzPerRow();
        EXPECT_GT(deg, target * 0.4) << id;
        EXPECT_LT(deg, target * 2.5) << id;
    }
}

TEST(SuiteCatalogTest, GenerationIsDeterministicPerSeed)
{
    const auto &info = suiteMatrix("AM");
    EXPECT_TRUE(info.generate(5) == info.generate(5));
    EXPECT_FALSE(info.generate(5) == info.generate(6));
}

TEST(SuiteCatalogTest, RoadSurrogatesKeepSpatialLocality)
{
    // Partitioned road networks should skip most tiles (Fig. 3's
    // motivation for partitioning): strong locality means few non-zero
    // tiles relative to the grid.
    const auto m = suiteMatrix("RO").generate(99);
    const auto parts = partition(m, 16);
    EXPECT_LT(parts.nonZeroTileFraction(), 0.2);
}

} // namespace
} // namespace copernicus
