/**
 * @file
 * Solver tests: conjugate gradient, Jacobi and PageRank.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/status.hh"
#include "solvers/accelerated.hh"
#include "solvers/cg.hh"
#include "solvers/pagerank.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

TEST(CgTest, SolvesSmallDiagonalSystem)
{
    TripletMatrix m(3, 3);
    m.add(0, 0, 2.0f);
    m.add(1, 1, 4.0f);
    m.add(2, 2, 8.0f);
    m.finalize();
    const CsrMatrix a(m);
    const auto result = conjugateGradient(a, {2.0f, 4.0f, 8.0f});
    ASSERT_TRUE(result.converged);
    for (Value x : result.x)
        EXPECT_NEAR(x, 1.0f, 1e-4);
}

TEST(CgTest, SolvesPoisson2d)
{
    const auto m = stencil2d(12, 12);
    const CsrMatrix a(m);
    std::vector<Value> b(a.rows(), 1.0f);
    const auto result = conjugateGradient(a, b, 1e-4, 2000);
    EXPECT_TRUE(result.converged);
    // Verify the residual independently: ||b - A x|| small.
    const auto ax = a.multiply(result.x);
    double err = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        const double d = static_cast<double>(b[i]) - ax[i];
        err += d * d;
    }
    EXPECT_LT(std::sqrt(err), 1e-3);
}

TEST(CgTest, ConvergesInAtMostNStepsOnSmallSpd)
{
    // CG converges in <= n iterations in exact arithmetic; float gets
    // close for well-conditioned systems.
    const auto m = stencil2d(4, 4);
    const CsrMatrix a(m);
    std::vector<Value> b(16, 1.0f);
    const auto result = conjugateGradient(a, b, 1e-4, 64);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.iterations, 32u);
}

TEST(CgTest, DimensionMismatchIsFatal)
{
    const auto m = stencil2d(3, 3);
    const CsrMatrix a(m);
    EXPECT_THROW(conjugateGradient(a, {1.0f}), FatalError);
}

TEST(CgTest, NonSquareIsFatal)
{
    TripletMatrix m(2, 3);
    m.finalize();
    const CsrMatrix a(m);
    EXPECT_THROW(conjugateGradient(a, {1.0f, 1.0f}), FatalError);
}

TEST(CgTest, ZeroRhsConvergesImmediately)
{
    const auto m = stencil2d(4, 4);
    const CsrMatrix a(m);
    const auto result = conjugateGradient(a,
                                          std::vector<Value>(16, 0.0f));
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 0u);
}

TEST(JacobiTest, SolvesDiagonallyDominantSystem)
{
    TripletMatrix m(4, 4);
    for (Index i = 0; i < 4; ++i) {
        m.add(i, i, 10.0f);
        if (i + 1 < 4) {
            m.add(i, i + 1, 1.0f);
            m.add(i + 1, i, 1.0f);
        }
    }
    m.finalize();
    const CsrMatrix a(m);
    std::vector<Value> x_true = {1.0f, -2.0f, 3.0f, 0.5f};
    const auto b = a.multiply(x_true);
    const auto result = jacobi(a, b, 1e-4, 500);
    ASSERT_TRUE(result.converged);
    for (Index i = 0; i < 4; ++i)
        EXPECT_NEAR(result.x[i], x_true[i], 1e-3);
}

TEST(JacobiTest, ZeroDiagonalIsFatal)
{
    TripletMatrix m(2, 2);
    m.add(0, 1, 1.0f);
    m.add(1, 0, 1.0f);
    m.finalize();
    const CsrMatrix a(m);
    EXPECT_THROW(jacobi(a, {1.0f, 1.0f}), FatalError);
}

TEST(JacobiTest, AgreesWithCgOnSpdSystem)
{
    const auto m = stencil2d(6, 6);
    const CsrMatrix a(m);
    std::vector<Value> b(36, 1.0f);
    const auto cg = conjugateGradient(a, b, 1e-5, 2000);
    const auto jac = jacobi(a, b, 1e-5, 5000);
    ASSERT_TRUE(cg.converged);
    ASSERT_TRUE(jac.converged);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_NEAR(cg.x[i], jac.x[i], 1e-2);
}

TEST(AcceleratedTest, EstimateScalesWithIterations)
{
    const auto m = stencil2d(8, 8);
    const auto ten = estimateIterativeSolve(m, FormatKind::CSR, 16, 10);
    const auto twenty = estimateIterativeSolve(m, FormatKind::CSR, 16,
                                               20);
    EXPECT_EQ(twenty.totalCycles, 2 * ten.totalCycles);
    EXPECT_EQ(ten.iterations, 10u);
    EXPECT_GT(ten.spmvCyclesPerIteration, 0u);
    EXPECT_GT(ten.vectorCyclesPerIteration, 0u);
}

TEST(AcceleratedTest, NonSquareIsFatal)
{
    TripletMatrix m(2, 3);
    m.finalize();
    EXPECT_THROW(estimateIterativeSolve(m, FormatKind::CSR, 16, 1),
                 FatalError);
}

TEST(AcceleratedTest, CgPairsSoftwareSolveWithEstimate)
{
    const auto m = stencil2d(10, 10);
    std::vector<Value> b(m.rows(), 1.0f);
    const auto result = acceleratedCg(m, b, FormatKind::CSR, 16, 1e-4,
                                      2000);
    EXPECT_TRUE(result.solve.converged);
    EXPECT_EQ(result.estimate.iterations, result.solve.iterations);
    EXPECT_GT(result.estimate.seconds, 0.0);
}

TEST(AcceleratedTest, FormatChoiceChangesSolveTime)
{
    // CSC's decompression penalty must show up in time-to-solution.
    const auto m = stencil2d(10, 10);
    const auto csr = estimateIterativeSolve(m, FormatKind::CSR, 16, 50);
    const auto csc = estimateIterativeSolve(m, FormatKind::CSC, 16, 50);
    EXPECT_GT(csc.totalCycles, csr.totalCycles);
}

TEST(PageRankTest, RanksSumToOne)
{
    Rng rng(1);
    const auto g = rmatGraph(128, 512, rng);
    const auto result = pageRank(g);
    double sum = 0;
    for (double r : result.ranks)
        sum += r;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRankTest, RingGraphIsUniform)
{
    const Index n = 10;
    TripletMatrix ring(n, n);
    for (Index i = 0; i < n; ++i)
        ring.add(i, (i + 1) % n, 1.0f);
    ring.finalize();
    const auto result = pageRank(ring);
    EXPECT_TRUE(result.converged);
    for (double r : result.ranks)
        EXPECT_NEAR(r, 1.0 / n, 1e-6);
}

TEST(PageRankTest, StarGraphCenterRanksHighest)
{
    // Everyone links to vertex 0.
    const Index n = 8;
    TripletMatrix star(n, n);
    for (Index i = 1; i < n; ++i)
        star.add(i, 0, 1.0f);
    star.finalize();
    const auto result = pageRank(star);
    for (Index i = 1; i < n; ++i)
        EXPECT_GT(result.ranks[0], result.ranks[i]);
}

TEST(PageRankTest, HandlesDanglingNodes)
{
    // Vertex 1 has no out-edges; mass must still sum to 1.
    TripletMatrix g(3, 3);
    g.add(0, 1, 1.0f);
    g.add(2, 1, 1.0f);
    g.finalize();
    const auto result = pageRank(g);
    double sum = 0;
    for (double r : result.ranks)
        sum += r;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(result.ranks[1], result.ranks[0]);
}

TEST(PageRankTest, InvalidDampingIsFatal)
{
    TripletMatrix g(2, 2);
    g.add(0, 1, 1.0f);
    g.finalize();
    EXPECT_THROW(pageRank(g, 0.0), FatalError);
    EXPECT_THROW(pageRank(g, 1.0), FatalError);
}

TEST(PageRankTest, NonSquareIsFatal)
{
    TripletMatrix g(2, 3);
    g.finalize();
    EXPECT_THROW(pageRank(g), FatalError);
}

TEST(PageRankTest, ConvergesOnRealGraphShape)
{
    Rng rng(2);
    const auto g = rmatGraph(256, 2048, rng);
    const auto result = pageRank(g, 0.85, 1e-5, 500);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.iterations, 200u);
}

} // namespace
} // namespace copernicus
