/**
 * @file
 * Unit tests of the observability plane's building blocks: trace
 * context propagation (thread-local scopes, pool capture), the span
 * collector ring and ScopedSpan parenting, the flight recorder, the
 * Prometheus writer/validator pair, and DistributionStat's
 * snapshot/merge API.
 *
 * Labeled tsan: the snapshot-vs-sample hammer test exists precisely to
 * run under -DCOPERNICUS_SANITIZE=thread — it pins down the satellite
 * requirement that a metrics scrape and a stats flush can never race a
 * request thread's sample().
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/prometheus.hh"
#include "common/stat_group.hh"
#include "common/status.hh"
#include "common/thread_pool.hh"
#include "common/trace_context.hh"
#include "trace/flight_recorder.hh"
#include "trace/span.hh"

namespace copernicus {
namespace {

// ---------------------------------------------------------------- //
// Trace context
// ---------------------------------------------------------------- //

TEST(TraceContextTest, DefaultIsInvalidAndScopeRestores)
{
    // Start from a clean slate whatever earlier tests did.
    setCurrentTraceContext(TraceContext{});
    EXPECT_FALSE(currentTraceContext().valid());

    const TraceContext outer{newTraceId(), newSpanId()};
    {
        const TraceContextScope scope(outer);
        EXPECT_EQ(currentTraceContext().traceId, outer.traceId);
        EXPECT_EQ(currentTraceContext().spanId, outer.spanId);
        {
            const TraceContext inner{outer.traceId, newSpanId()};
            const TraceContextScope nested(inner);
            EXPECT_EQ(currentTraceContext().spanId, inner.spanId);
        }
        // The nested scope restored its parent exactly.
        EXPECT_EQ(currentTraceContext().spanId, outer.spanId);
    }
    EXPECT_FALSE(currentTraceContext().valid());
}

TEST(TraceContextTest, IdsAreUniqueAndNonZero)
{
    const std::uint64_t a = newTraceId();
    const std::uint64_t b = newTraceId();
    const std::uint64_t s = newSpanId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(s, 0u);
    EXPECT_NE(a, b);
}

TEST(TraceContextTest, HexWireFormRoundTrips)
{
    EXPECT_EQ(traceIdToHex(0), "0");
    EXPECT_EQ(traceIdToHex(0x1a2b), "1a2b");
    EXPECT_EQ(traceIdFromHex("1a2b"), 0x1a2bu);
    EXPECT_EQ(traceIdFromHex("1A2B"), 0x1a2bu);
    const std::uint64_t id = 0xdeadbeefcafef00dULL;
    EXPECT_EQ(traceIdFromHex(traceIdToHex(id)), id);

    // Malformed input means "absent", never an error.
    EXPECT_EQ(traceIdFromHex(""), 0u);
    EXPECT_EQ(traceIdFromHex("xyz"), 0u);
    EXPECT_EQ(traceIdFromHex("12 34"), 0u);
    EXPECT_EQ(traceIdFromHex("11112222333344445555"), 0u); // overflow
}

TEST(TraceContextTest, ObserveClockIsMonotonic)
{
    const std::uint64_t a = observeNowUs();
    const std::uint64_t b = observeNowUs();
    EXPECT_LE(a, b);
}

// ---------------------------------------------------------------- //
// Span collector + ScopedSpan
// ---------------------------------------------------------------- //

TEST(SpanCollectorTest, RingWrapDropsOldestAndCounts)
{
    SpanCollector collector;
    collector.setEnabled(true);
    collector.setCapacity(3);
    for (std::uint64_t i = 1; i <= 5; ++i) {
        SpanRecord span;
        span.traceId = 7;
        span.spanId = i;
        span.name = "s" + std::to_string(i);
        collector.record(std::move(span));
    }
    EXPECT_EQ(collector.recorded(), 5u);
    EXPECT_EQ(collector.dropped(), 2u);
    const std::vector<SpanRecord> kept = collector.snapshot();
    ASSERT_EQ(kept.size(), 3u);
    // Oldest first, and the two oldest spans were overwritten.
    EXPECT_EQ(kept[0].spanId, 3u);
    EXPECT_EQ(kept[1].spanId, 4u);
    EXPECT_EQ(kept[2].spanId, 5u);

    collector.clear();
    EXPECT_EQ(collector.recorded(), 0u);
    EXPECT_EQ(collector.dropped(), 0u);
    EXPECT_TRUE(collector.snapshot().empty());
}

TEST(SpanCollectorTest, SpansForTraceFilters)
{
    SpanCollector collector;
    collector.setEnabled(true);
    for (std::uint64_t trace : {1u, 2u, 1u}) {
        SpanRecord span;
        span.traceId = trace;
        span.spanId = newSpanId();
        collector.record(std::move(span));
    }
    EXPECT_EQ(collector.spansForTrace(1).size(), 2u);
    EXPECT_EQ(collector.spansForTrace(2).size(), 1u);
    EXPECT_TRUE(collector.spansForTrace(99).empty());
}

TEST(ScopedSpanTest, DisabledCollectorRecordsNothing)
{
    SpanCollector collector; // default: disabled
    {
        const ScopedSpan span("noop", "test", collector);
        EXPECT_FALSE(span.context().valid());
    }
    EXPECT_EQ(collector.recorded(), 0u);
}

TEST(ScopedSpanTest, NestedSpansFormOneTree)
{
    SpanCollector collector;
    collector.setEnabled(true);
    setCurrentTraceContext(TraceContext{});
    {
        const ScopedSpan root("root", "test", collector);
        ASSERT_TRUE(root.context().valid());
        const ScopedSpan child("child", "test", collector);
        EXPECT_EQ(child.context().traceId, root.context().traceId);
        {
            const ScopedSpan leaf("leaf", "test", collector);
            EXPECT_EQ(leaf.context().traceId,
                      root.context().traceId);
        }
    }
    const std::vector<SpanRecord> spans = collector.snapshot();
    ASSERT_EQ(spans.size(), 3u);
    // Destruction order: leaf, child, root.
    const SpanRecord &leaf = spans[0];
    const SpanRecord &child = spans[1];
    const SpanRecord &root = spans[2];
    EXPECT_EQ(root.parentSpanId, 0u);
    EXPECT_EQ(child.parentSpanId, root.spanId);
    EXPECT_EQ(leaf.parentSpanId, child.spanId);
    EXPECT_EQ(leaf.traceId, root.traceId);
    EXPECT_LE(root.startUs, child.startUs);
    EXPECT_LE(child.endUs, root.endUs);
}

TEST(ScopedSpanTest, PoolSubmitInheritsSubmitterContext)
{
    SpanCollector &collector = SpanCollector::global();
    collector.clear();
    collector.setEnabled(true);
    setCurrentTraceContext(TraceContext{});

    ThreadPool pool(4);
    std::uint64_t rootTrace = 0;
    {
        const ScopedSpan root("submit.root", "test");
        rootTrace = root.context().traceId;
        pool.submit([] {
             const ScopedSpan task("submit.task", "test");
         }).get();
    }
    collector.setEnabled(false);

    const std::vector<SpanRecord> spans =
        collector.spansForTrace(rootTrace);
    ASSERT_EQ(spans.size(), 2u);
    // The task span joined the submitter's trace and parents under
    // the submitting span even though it ran on another lane.
    EXPECT_EQ(spans[0].name, "submit.task");
    EXPECT_EQ(spans[1].name, "submit.root");
    EXPECT_EQ(spans[0].parentSpanId, spans[1].spanId);
    collector.clear();
}

TEST(ScopedSpanTest, ParallelForBodiesInheritCallerContext)
{
    SpanCollector &collector = SpanCollector::global();
    collector.clear();
    collector.setEnabled(true);
    setCurrentTraceContext(TraceContext{});

    ThreadPool pool(4);
    std::uint64_t rootTrace = 0;
    {
        const ScopedSpan root("pfor.root", "test");
        rootTrace = root.context().traceId;
        pool.parallelFor(8, [](std::size_t) {
            const ScopedSpan body("pfor.body", "test");
        });
    }
    collector.setEnabled(false);

    const std::vector<SpanRecord> spans =
        collector.spansForTrace(rootTrace);
    // 8 bodies + the root, all in one trace regardless of lanes.
    ASSERT_EQ(spans.size(), 9u);
    std::uint64_t rootSpanId = 0;
    for (const SpanRecord &span : spans)
        if (span.name == "pfor.root")
            rootSpanId = span.spanId;
    ASSERT_NE(rootSpanId, 0u);
    for (const SpanRecord &span : spans) {
        if (span.name == "pfor.body") {
            EXPECT_EQ(span.parentSpanId, rootSpanId);
        }
    }
    collector.clear();
}

TEST(SpanRecordTest, WriteJsonIsValidAndHex)
{
    SpanRecord span;
    span.traceId = 0xabc;
    span.spanId = 0x1;
    span.parentSpanId = 0;
    span.name = "study.encode";
    span.track = "study";
    span.startUs = 10;
    span.endUs = 42;
    std::ostringstream out;
    span.writeJson(out);
    EXPECT_TRUE(jsonValid(out.str())) << out.str();
    JsonValue parsed;
    ASSERT_TRUE(parseJson(out.str(), parsed));
    EXPECT_EQ(parsed.stringOr("trace_id", ""), "abc");
    EXPECT_EQ(parsed.stringOr("name", ""), "study.encode");
    EXPECT_DOUBLE_EQ(parsed.numberOr("end_us", 0), 42);
}

// ---------------------------------------------------------------- //
// Flight recorder
// ---------------------------------------------------------------- //

TEST(FlightRecorderTest, RingRetainsNewestAndDumpIsValidJson)
{
    FlightRecorder recorder;
    recorder.setCapacity(2);
    recorder.record("{\"n\": 1}");
    recorder.record("{\"n\": 2}");
    recorder.record("{\"n\": 3}");
    EXPECT_EQ(recorder.recorded(), 3u);
    EXPECT_EQ(recorder.dropped(), 1u);
    const std::vector<std::string> kept = recorder.snapshot();
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_EQ(kept[0], "{\"n\": 2}");
    EXPECT_EQ(kept[1], "{\"n\": 3}");

    std::ostringstream out;
    recorder.dump(out);
    EXPECT_TRUE(jsonValid(out.str())) << out.str();
    JsonValue doc;
    ASSERT_TRUE(parseJson(out.str(), doc));
    const JsonValue *events = doc.find("wide_events");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_EQ(events->elements.size(), 2u);
    EXPECT_DOUBLE_EQ(doc.numberOr("wide_events_dropped", -1), 1);
    EXPECT_NE(doc.find("spans"), nullptr);
}

// ---------------------------------------------------------------- //
// Prometheus writer + validator
// ---------------------------------------------------------------- //

TEST(PrometheusTest, WriterOutputPassesValidator)
{
    StatGroup group("prom_test");
    DistributionStat dist(group, "lat", "latency", 0, 1000, 10);
    for (int i = 0; i < 100; ++i)
        dist.sample(i * 13 % 1200); // some overflow on purpose

    PrometheusWriter writer;
    writer.counter("copernicus_test_requests_total", "Requests.",
                   {{{{"endpoint", "ping"}}, 12},
                    {{{"endpoint", "run_study"}}, 3}});
    writer.gauge("copernicus_test_queue_depth", "Queue depth.",
                 {{{}, 2}});
    writer.histogram("copernicus_test_latency_seconds", "Latency.",
                     {{{{"endpoint", "ping"}}, dist.snapshot()}},
                     1e-6);
    const std::string text = writer.text();

    std::string error;
    EXPECT_TRUE(validatePrometheusText(text, error))
        << error << "\n" << text;
    // Spot-check shape: cumulative buckets and the terminal +Inf.
    EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
    EXPECT_NE(text.find("copernicus_test_latency_seconds_count"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE copernicus_test_requests_total "
                        "counter"),
              std::string::npos);
}

TEST(PrometheusTest, LabelValuesAreEscaped)
{
    PrometheusWriter writer;
    writer.counter("copernicus_test_esc_total", "Escapes.",
                   {{{{"path", "a\"b\\c\nd"}}, 1}});
    const std::string text = writer.text();
    std::string error;
    EXPECT_TRUE(validatePrometheusText(text, error)) << error;
    EXPECT_NE(text.find("a\\\"b\\\\c\\nd"), std::string::npos)
        << text;
}

TEST(PrometheusTest, ValidatorRejectsInterleavedFamilies)
{
    const std::string bad = "# TYPE a_total counter\n"
                            "a_total 1\n"
                            "# TYPE b_total counter\n"
                            "b_total 1\n"
                            "a_total{x=\"y\"} 2\n";
    std::string error;
    EXPECT_FALSE(validatePrometheusText(bad, error));
    EXPECT_FALSE(error.empty());
}

TEST(PrometheusTest, ValidatorRejectsNonCumulativeHistogram)
{
    const std::string bad =
        "# TYPE h histogram\n"
        "h_bucket{le=\"1\"} 5\n"
        "h_bucket{le=\"2\"} 3\n" // decreasing: not cumulative
        "h_bucket{le=\"+Inf\"} 5\n"
        "h_sum 9\n"
        "h_count 5\n";
    std::string error;
    EXPECT_FALSE(validatePrometheusText(bad, error));
}

TEST(PrometheusTest, ValidatorRejectsInfCountMismatch)
{
    const std::string bad = "# TYPE h histogram\n"
                            "h_bucket{le=\"1\"} 2\n"
                            "h_bucket{le=\"+Inf\"} 5\n"
                            "h_sum 9\n"
                            "h_count 4\n"; // != +Inf bucket
    std::string error;
    EXPECT_FALSE(validatePrometheusText(bad, error));
}

TEST(PrometheusTest, ValidatorRejectsSamplesBeforeType)
{
    const std::string bad = "a_total 1\n"
                            "# TYPE a_total counter\n"
                            "a_total 2\n";
    std::string error;
    EXPECT_FALSE(validatePrometheusText(bad, error));
}

// ---------------------------------------------------------------- //
// DistributionStat snapshot / merge
// ---------------------------------------------------------------- //

TEST(DistSnapshotTest, SnapshotMatchesLiveStat)
{
    StatGroup group("snap_test");
    DistributionStat dist(group, "d", "x", 0, 100, 10);
    for (int i = 0; i < 1000; ++i)
        dist.sample(i % 120 - 5); // exercises under- and overflow

    const DistributionStat::Snapshot snap = dist.snapshot();
    EXPECT_EQ(snap.count, dist.samples());
    EXPECT_DOUBLE_EQ(snap.min, dist.minSample());
    EXPECT_DOUBLE_EQ(snap.max, dist.maxSample());
    EXPECT_DOUBLE_EQ(snap.sum, dist.sumSamples());
    for (double p : {50.0, 95.0, 99.0})
        EXPECT_DOUBLE_EQ(snap.percentile(p), dist.percentile(p));

    // The snapshot is detached: new samples don't bleed into it.
    const std::uint64_t before = snap.count;
    dist.sample(50);
    EXPECT_EQ(snap.count, before);
}

TEST(DistSnapshotTest, MergeFoldsCountsAndExtremes)
{
    StatGroup group("merge_test");
    DistributionStat a(group, "a", "x", 0, 100, 10);
    DistributionStat b(group, "b", "x", 0, 100, 10);
    for (int i = 0; i < 50; ++i)
        a.sample(10);
    for (int i = 0; i < 50; ++i)
        b.sample(90);

    DistributionStat::Snapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.count, 100u);
    EXPECT_DOUBLE_EQ(merged.min, 10);
    EXPECT_DOUBLE_EQ(merged.max, 90);
    EXPECT_DOUBLE_EQ(merged.sum, 50 * 10.0 + 50 * 90.0);
    // Half the mass at ~10, half at ~90: the median sits in the low
    // half's bucket and p99 in the high half's.
    EXPECT_LT(merged.percentile(40), 50);
    EXPECT_GT(merged.percentile(60), 50);
}

TEST(DistSnapshotTest, MergeRejectsMismatchedBuckets)
{
    StatGroup group("merge_bad_test");
    DistributionStat a(group, "a", "x", 0, 100, 10);
    DistributionStat b(group, "b", "x", 0, 200, 10);
    DistributionStat::Snapshot snap = a.snapshot();
    EXPECT_THROW(snap.merge(b.snapshot()), FatalError);
}

TEST(DistSnapshotTest, EmptySnapshotPercentileIsNaN)
{
    StatGroup group("empty_snap_test");
    DistributionStat dist(group, "d", "x", 0, 100, 10);
    EXPECT_TRUE(std::isnan(dist.snapshot().percentile(50)));
}

/**
 * The satellite's race test: request threads hammer sample() while a
 * scraper thread snapshots and computes percentiles and a drain
 * thread reads samples()/sumSamples(). Run under
 * -DCOPERNICUS_SANITIZE=thread this proves scrape and flush can never
 * race a sample; in a plain build it still checks the final tallies.
 */
TEST(DistSnapshotTest, ConcurrentSampleAndSnapshotHammer)
{
    StatGroup group("hammer_test");
    DistributionStat dist(group, "d", "x", 0, 1000, 50);

    constexpr int kWriters = 4;
    constexpr int kSamplesPerWriter = 5000;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&dist, w] {
            for (int i = 0; i < kSamplesPerWriter; ++i)
                dist.sample((w * 31 + i * 7) % 1200);
        });
    }
    std::thread scraper([&dist, &stop] {
        while (!stop.load()) {
            const DistributionStat::Snapshot snap = dist.snapshot();
            if (snap.count > 0) {
                const double p99 = snap.percentile(99);
                ASSERT_GE(p99, 0);
            }
        }
    });
    std::thread drainer([&dist, &stop] {
        while (!stop.load()) {
            (void)dist.samples();
            (void)dist.sumSamples();
        }
    });

    for (std::thread &t : writers)
        t.join();
    stop.store(true);
    scraper.join();
    drainer.join();

    EXPECT_EQ(dist.samples(),
              static_cast<std::uint64_t>(kWriters) *
                  kSamplesPerWriter);
    const DistributionStat::Snapshot snap = dist.snapshot();
    EXPECT_EQ(snap.count, dist.samples());
}

} // namespace
} // namespace copernicus
