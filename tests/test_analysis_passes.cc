/**
 * @file
 * Tests for the analyzer's pass framework: diagnostic formatting and
 * exit codes, the pass manager's selection semantics, baseline
 * parse/apply/staleness, the JSON and SARIF emitters, and the deep
 * passes (overflow, capacity, thread-safety, protocol, compress) both
 * clean-on-tree and firing on injected defects.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "analysis/baseline.hh"
#include "analysis/capacity_pass.hh"
#include "analysis/compress_pass.hh"
#include "analysis/emitters.hh"
#include "analysis/lint_driver.hh"
#include "analysis/overflow_pass.hh"
#include "analysis/pass_manager.hh"
#include "analysis/protocol_pass.hh"
#include "analysis/store_pass.hh"
#include "analysis/thread_safety_pass.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "serve/protocol_doc.hh"
#include "store/container.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

bool
hasId(const LintReport &report, const std::string &id)
{
    return std::any_of(report.diagnostics.begin(),
                       report.diagnostics.end(),
                       [&](const LintDiagnostic &d) {
                           return d.id == id;
                       });
}

LintOptions
fastOptions()
{
    LintOptions options;
    options.runGrammar = false;
    options.runOracle = false;
    options.runStreams = false;
    options.runCompress = false;
    return options;
}

// ---------------------------------------------------------------- //
// Diagnostics: formatting, fingerprints, exit codes.

TEST(DiagnosticsTest, IdBearingToString)
{
    LintReport report;
    report.error("COP004", "spec", "CSR", "too many ports");
    EXPECT_EQ(report.diagnostics[0].toString(),
              "error[spec] COP004 CSR: too many ports");

    LintDiagnostic d;
    d.severity = LintSeverity::Warning;
    d.id = "COP063";
    d.pass = "overflow";
    d.file = "src/formats/size_model.cc";
    d.line = 42;
    d.message = "narrowing cast";
    EXPECT_EQ(d.toString(), "warning[overflow] COP063 "
                            "src/formats/size_model.cc:42: "
                            "narrowing cast");
}

TEST(DiagnosticsTest, SegmentBearingToString)
{
    LintDiagnostic d;
    d.id = "COP070";
    d.pass = "capacity";
    d.format = "ELLCOO";
    d.segment = "ell sweep -> overflow loop";
    d.message = "over-subscribed";
    EXPECT_EQ(d.toString(),
              "error[capacity] COP070 ELLCOO(ell sweep -> overflow "
              "loop): over-subscribed");
}

TEST(DiagnosticsTest, FingerprintOmitsMessageAndLine)
{
    LintDiagnostic a;
    a.id = "COP063";
    a.pass = "overflow";
    a.file = "src/formats/size_model.cc";
    a.line = 42;
    a.message = "one wording";
    LintDiagnostic b = a;
    b.line = 99;
    b.message = "another wording";
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.fingerprint(), "COP063 overflow size_model.cc -");
}

TEST(DiagnosticsTest, ExitCodeMapping)
{
    LintReport clean;
    EXPECT_EQ(lintExitCode(clean), 0);
    EXPECT_EQ(lintExitCode(clean, /*werror=*/true), 0);

    LintReport warns;
    warns.warning("contract", "ELL", "looks odd");
    EXPECT_EQ(lintExitCode(warns), 2);
    EXPECT_EQ(lintExitCode(warns, /*werror=*/true), 1);

    LintReport errors;
    errors.error("spec", "CSR", "broken");
    errors.warning("contract", "ELL", "looks odd");
    EXPECT_EQ(lintExitCode(errors), 1);
    EXPECT_EQ(lintExitCode(errors, /*werror=*/true), 1);
}

TEST(DiagnosticsTest, EveryRegisteredIdHasDescription)
{
    for (const PassInfo &pass : PassManager::standard().passes())
        for (const std::string &id : pass.ids)
            EXPECT_FALSE(lintRuleDescription(id).empty())
                << pass.name << " emits " << id
                << " with no rule description";
}

// ---------------------------------------------------------------- //
// Pass manager: listing, selection, unknown names.

TEST(PassManagerTest, StandardRegistryShape)
{
    const PassManager &manager = PassManager::standard();
    ASSERT_GE(manager.passes().size(), 11u);
    EXPECT_NE(manager.find("overflow"), nullptr);
    EXPECT_NE(manager.find("capacity"), nullptr);
    EXPECT_NE(manager.find("thread-safety"), nullptr);
    EXPECT_NE(manager.find("protocol"), nullptr);
    EXPECT_NE(manager.find("compress"), nullptr);
    EXPECT_EQ(manager.find("no-such-pass"), nullptr);
}

TEST(PassManagerTest, SelectionRunsOnlyNamedPasses)
{
    // "contract" at a non-power-of-two partition warns (COP024);
    // selecting only "spec" must not surface it.
    LintOptions options = fastOptions();
    options.partitionSizes = {12};
    const LintReport contract =
        PassManager::standard().run(options, {"contract"});
    EXPECT_TRUE(hasId(contract, "COP024")) << contract.toString();
    const LintReport spec =
        PassManager::standard().run(options, {"spec"});
    EXPECT_FALSE(hasId(spec, "COP024")) << spec.toString();
}

TEST(PassManagerTest, UnknownPassNameIsAnError)
{
    const LintReport report =
        PassManager::standard().run(fastOptions(), {"bogus"});
    EXPECT_EQ(report.errorCount(), 1u) << report.toString();
    EXPECT_EQ(report.diagnostics[0].pass, "driver");
}

// ---------------------------------------------------------------- //
// Overflow pass.

TEST(OverflowPassTest, CleanAtDefaultEnvelope)
{
    LintReport report;
    checkAccountingRanges(fastOptions(), AccountingEnvelope(), report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(OverflowPassTest, AbsurdEnvelopeOverflowsUint64)
{
    // At 2^64-1 aggregate non-zeros over p=8 tiles, the 128-bit shadow
    // fold must exceed uint64 and say so.
    AccountingEnvelope envelope;
    envelope.maxPartition = 8;
    envelope.maxWorkloadNnz = UINT64_MAX;
    LintOptions options = fastOptions();
    options.partitionSizes = {8};
    LintReport report;
    checkAccountingRanges(options, envelope, report);
    EXPECT_TRUE(hasId(report, "COP061")) << report.toString();
}

TEST(OverflowPassTest, NarrowingCastScanFlagsAndWaives)
{
    LintReport report;
    scanForNarrowingCasts(
        "fake.cc",
        "Cycles total = 0;\n"
        "Index n = static_cast<Index>(total);\n"
        "Index m = static_cast<Index>(total); // lint: widening-ok\n",
        report);
    ASSERT_EQ(report.diagnostics.size(), 1u) << report.toString();
    EXPECT_EQ(report.diagnostics[0].id, "COP063");
    EXPECT_EQ(report.diagnostics[0].line, 2);
}

TEST(OverflowPassTest, AccountingHotFilesAreCastClean)
{
    // The full pass (range proof + source scan over the real
    // checkout) must be clean; a new narrowing cast in the accounting
    // files fails here before CI.
    LintReport report;
    runOverflowPass(fastOptions(), report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

// ---------------------------------------------------------------- //
// Capacity pass.

TEST(CapacityPassTest, CleanAtDefaultSizes)
{
    LintReport report;
    runCapacityPass(fastOptions(), report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(CapacityPassTest, OverSubscribedPipelinedChain)
{
    // Two consecutive pipelined segments demanding 2 accesses each on
    // a dual-port bank: neither alone over-subscribes, the chain does.
    ScheduleSpec spec;
    spec.format = FormatKind::CSR;
    SegmentSpec producer;
    producer.kind = SegmentKind::Pipelined;
    producer.name = "producer";
    producer.bankAccessesPerII = 2;
    SegmentSpec consumer = producer;
    consumer.name = "consumer";
    spec.segments = {producer, consumer};
    LintReport report;
    checkPortPressure(spec, HlsConfig(), report);
    ASSERT_TRUE(hasId(report, "COP070")) << report.toString();
    EXPECT_EQ(report.diagnostics[0].segment, "producer -> consumer");
}

TEST(CapacityPassTest, HugePartitionOverflowsBram)
{
    // COO keeps the full coordinate stream resident; at p = 4096 the
    // double-buffered working set cannot fit a single device's BRAM.
    LintReport report;
    checkBufferCapacity(FormatKind::COO, 4096, FormatParams(),
                        DeviceCapacity(), report);
    EXPECT_FALSE(report.ok()) << report.toString();
}

// ---------------------------------------------------------------- //
// Thread-safety pass.

TEST(ThreadSafetyPassTest, ProcessRegistryAndHeadersClean)
{
    LintReport report;
    runThreadSafetyPass(fastOptions(), report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(ThreadSafetyPassTest, DuplicateRankIsAnError)
{
    LintReport report;
    checkLockOrderRegistry({{"a", 10}, {"b", 10}}, report);
    EXPECT_TRUE(hasId(report, "COP080")) << report.toString();
}

TEST(ThreadSafetyPassTest, DuplicateOrEmptyNameIsAnError)
{
    LintReport duplicate;
    checkLockOrderRegistry({{"a", 10}, {"a", 20}}, duplicate);
    EXPECT_TRUE(hasId(duplicate, "COP081")) << duplicate.toString();

    LintReport empty;
    checkLockOrderRegistry({{"", 10}}, empty);
    EXPECT_TRUE(hasId(empty, "COP081")) << empty.toString();
}

TEST(ThreadSafetyPassTest, BareMutexMemberFlaggedUnlessMarked)
{
    LintReport bare;
    scanHeaderForBareMutexes("src/foo/bar.hh",
                             "class X {\n    std::mutex lock;\n};\n",
                             bare);
    EXPECT_TRUE(hasId(bare, "COP082")) << bare.toString();

    LintReport marked;
    scanHeaderForBareMutexes(
        "src/foo/bar.hh",
        "class X {\n"
        "    // CV-paired with wakeCv; documented exclusion.\n"
        "    std::mutex lock;\n"
        "};\n",
        marked);
    EXPECT_TRUE(marked.ok()) << marked.toString();

    LintReport wrapped;
    scanHeaderForBareMutexes(
        "src/foo/bar.hh",
        "    std::lock_guard<std::mutex> guard(lock);\n", wrapped);
    EXPECT_TRUE(wrapped.ok()) << wrapped.toString();
}

// ---------------------------------------------------------------- //
// Protocol pass.

TEST(ProtocolPassTest, ServeSurfaceConforms)
{
    const ProtocolSurface surface = collectServeProtocolSurface();
    LintReport report;
    checkProtocolSurface(surface, report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(ProtocolPassTest, DriftFiresEachDirection)
{
    ProtocolSurface surface;
    surface.handledEndpoints = {"ping", "secret"};
    surface.documentedEndpoints = {"ping", "retired"};
    surface.wideEventFields = {"type", "renamed_field"};
    surface.documentedWideEventFields = {"type", "old_field"};
    surface.metricNames = {"copernicus_new_total"};
    surface.documentedMetricNames = {"copernicus_old_total"};
    LintReport report;
    checkProtocolSurface(surface, report);
    EXPECT_TRUE(hasId(report, "COP090")) << report.toString();
    EXPECT_TRUE(hasId(report, "COP091")) << report.toString();
    EXPECT_TRUE(hasId(report, "COP092")) << report.toString();
    EXPECT_TRUE(hasId(report, "COP093")) << report.toString();
}

TEST(ProtocolPassTest, SkippedWithoutSurface)
{
    LintReport report;
    runProtocolPass(fastOptions(), report); // protocol == nullptr
    EXPECT_TRUE(report.ok()) << report.toString();
}

// ---------------------------------------------------------------- //
// Compress pass.

TEST(CompressPassTest, StoredNeverExceedsRawOnMixedTiles)
{
    const FormatRegistry registry;
    Tile tile(8);
    tile(0, 0) = 1;
    tile(3, 4) = 2;
    tile(7, 7) = 3;
    LintReport report;
    for (FormatKind kind : allFormats())
        checkTileCompression(registry, kind, tile, report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

// ---------------------------------------------------------------- //
// Store pass.

TEST(StorePassTest, RegisteredWithContainerRules)
{
    const PassInfo *pass = PassManager::standard().find("store");
    ASSERT_NE(pass, nullptr);
    EXPECT_EQ(pass->ids,
              (std::vector<std::string>{"COP110", "COP111", "COP112"}));
}

TEST(StorePassTest, SelfInjectionSuiteRunsClean)
{
    // The pass round-trips fresh containers and injects one defect per
    // rule class; a sound inspector reports nothing at the top level.
    LintReport report;
    runStorePass(fastOptions(), report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(StorePassTest, GateSkipsThePass)
{
    LintOptions options = fastOptions();
    options.runStore = false;
    options.storeContainers.push_back("/nonexistent/matrix.cbm");
    LintReport report;
    runStorePass(options, report);
    EXPECT_TRUE(report.diagnostics.empty());
}

TEST(StorePassTest, FlagsCorruptedUserContainer)
{
    Rng rng(0xC0B);
    TripletMatrix m = randomMatrix(64, 0.1, rng);
    m.finalize();
    const std::string path =
        testing::TempDir() + "/copernicus_lint_corrupt.cbm";
    writeCbmFile(path, m, 1, /*chunkTargetNnz=*/64);
    {
        // Flip one payload value bit: header and directory still
        // check out, only the content hash betrays it.
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(sizeof(CbmHeader) + 8);
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x1);
        f.seekp(sizeof(CbmHeader) + 8);
        f.write(&byte, 1);
    }

    LintOptions options = fastOptions();
    options.storeContainers.push_back(path);
    LintReport report;
    runStorePass(options, report);
    EXPECT_TRUE(hasId(report, "COP112")) << report.toString();
    EXPECT_FALSE(hasId(report, "COP110")) << report.toString();
    EXPECT_FALSE(hasId(report, "COP111")) << report.toString();
    std::remove(path.c_str());

    // A container that cannot be opened at all is a header finding.
    LintReport missing;
    checkContainerFile(path, missing);
    EXPECT_TRUE(hasId(missing, "COP110")) << missing.toString();
}

// ---------------------------------------------------------------- //
// Baseline.

TEST(BaselineTest, ParseStripsCommentsAndNormalizes)
{
    const LintBaseline baseline = parseBaseline(
        "# header comment\n"
        "\n"
        "COP063  overflow   size_model.cc  -  # trailing note\n"
        "  COP024 contract ELL -\n");
    ASSERT_EQ(baseline.fingerprints.size(), 2u);
    EXPECT_EQ(baseline.fingerprints[0],
              "COP063 overflow size_model.cc -");
    EXPECT_EQ(baseline.fingerprints[1], "COP024 contract ELL -");
}

TEST(BaselineTest, ApplySuppressesAndReportsStale)
{
    LintReport report;
    report.error("COP004", "spec", "CSR", "ports");
    report.error("COP010", "body", "COO", "ii");

    LintBaseline baseline;
    baseline.fingerprints = {"COP004 spec CSR -",
                             "COP099 nowhere gone -"};
    std::vector<std::string> unused;
    const std::size_t suppressed =
        applyBaseline(report, baseline, &unused);
    EXPECT_EQ(suppressed, 1u);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].id, "COP010");
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "COP099 nowhere gone -");
}

TEST(BaselineTest, RoundTripThroughGeneratedText)
{
    LintReport report;
    report.error("COP004", "spec", "CSR", "ports");
    report.warning("COP024", "contract", "ELL", "non-pow2");
    const LintBaseline baseline =
        parseBaseline(baselineFromReport(report));
    LintReport again;
    again.error("COP004", "spec", "CSR", "other wording");
    again.warning("COP024", "contract", "ELL", "other wording");
    EXPECT_EQ(applyBaseline(again, baseline, nullptr), 2u);
    EXPECT_TRUE(again.diagnostics.empty());
}

// ---------------------------------------------------------------- //
// Emitters.

LintReport
sampleReport()
{
    LintReport report;
    report.error("COP004", "spec", "CSR", "too many ports");
    LintDiagnostic d;
    d.severity = LintSeverity::Warning;
    d.id = "COP063";
    d.pass = "overflow";
    d.file = "src/formats/size_model.cc";
    d.line = 7;
    d.message = "narrowing cast";
    d.fixHint = "widen it";
    report.add(std::move(d));
    return report;
}

TEST(EmittersTest, JsonDocumentParsesAndCounts)
{
    JsonValue doc;
    ASSERT_TRUE(parseJson(lintReportToJson(sampleReport()), doc));
    EXPECT_EQ(doc.numberOr("errors", -1), 1);
    EXPECT_EQ(doc.numberOr("warnings", -1), 1);
}

TEST(EmittersTest, SarifDocumentValidates)
{
    std::string why;
    EXPECT_TRUE(
        validateSarifDocument(lintReportToSarif(sampleReport()), &why))
        << why;
    EXPECT_TRUE(validateSarifDocument(lintReportToSarif(LintReport())))
        << "empty reports must still produce valid SARIF";
}

TEST(EmittersTest, SarifValidatorRejectsBrokenDocuments)
{
    EXPECT_FALSE(validateSarifDocument("not json"));
    EXPECT_FALSE(validateSarifDocument("{}"));
    EXPECT_FALSE(validateSarifDocument(
        "{\"version\": \"2.1.0\", \"runs\": []}"));
    std::string why;
    EXPECT_FALSE(validateSarifDocument(
        "{\"version\": \"1.0.0\", \"runs\": [{\"tool\": {\"driver\": "
        "{\"name\": \"x\"}}, \"results\": []}]}",
        &why));
    EXPECT_FALSE(why.empty());
}

TEST(EmittersTest, SarifCarriesLocationsAndRules)
{
    const std::string text = lintReportToSarif(sampleReport());
    JsonValue doc;
    ASSERT_TRUE(parseJson(text, doc));
    EXPECT_NE(text.find("\"COP004\""), std::string::npos);
    EXPECT_NE(text.find("\"COP063\""), std::string::npos);
    EXPECT_NE(text.find("size_model.cc"), std::string::npos);
    EXPECT_NE(text.find("logicalLocations"), std::string::npos);
}

// ---------------------------------------------------------------- //
// Driver: the CLI-facing behavior both binaries share.

TEST(LintDriverTest, ListPassesPrintsEveryPassName)
{
    LintDriverOptions options;
    options.listPasses = true;
    std::ostringstream out;
    EXPECT_EQ(runLintDriver(options, out), 0);
    for (const PassInfo &pass : PassManager::standard().passes())
        EXPECT_NE(out.str().find(pass.name), std::string::npos)
            << pass.name;
}

TEST(LintDriverTest, UnknownPassExitsNonzero)
{
    LintDriverOptions options;
    options.lint = fastOptions();
    options.passes = {"bogus"};
    std::ostringstream out;
    EXPECT_EQ(runLintDriver(options, out), 1);
}

TEST(LintDriverTest, MissingBaselineIsAnError)
{
    LintDriverOptions options;
    options.lint = fastOptions();
    options.passes = {"spec"};
    options.baselinePath = "/nonexistent/lint_baseline.txt";
    std::ostringstream out;
    EXPECT_EQ(runLintDriver(options, out), 1);
}

TEST(LintDriverTest, JsonModeEmitsParseableDocument)
{
    LintDriverOptions options;
    options.lint = fastOptions();
    options.passes = {"spec"};
    options.json = true;
    std::ostringstream out;
    EXPECT_EQ(runLintDriver(options, out), 0);
    JsonValue doc;
    EXPECT_TRUE(parseJson(out.str(), doc)) << out.str();
}

} // namespace
} // namespace copernicus
