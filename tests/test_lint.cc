/**
 * @file
 * Tests for the static schedule analyzer (analysis/schedule_check):
 * the clean tree lints clean, and each seeded hazard class — BRAM port
 * over-subscription, loop-carried II violations, unbalanced comparator
 * trees, hyperparameter contract breaks, malformed specs — produces an
 * error diagnostic naming the offending format.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "analysis/schedule_check.hh"
#include "hlsc/decoder_bodies.hh"

namespace copernicus {
namespace {

bool
hasError(const LintReport &report, const std::string &pass,
         const std::string &needle)
{
    return std::any_of(
        report.diagnostics.begin(), report.diagnostics.end(),
        [&](const LintDiagnostic &d) {
            return d.severity == LintSeverity::Error && d.pass == pass &&
                   d.message.find(needle) != std::string::npos;
        });
}

TEST(LintTest, CleanTreeLintsClean)
{
    const LintReport report = runLint();
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_EQ(report.errorCount(), 0u) << report.toString();
    EXPECT_EQ(report.warningCount(), 0u) << report.toString();
}

TEST(LintTest, FastPassesAloneLintClean)
{
    LintOptions options;
    options.runGrammar = false;
    options.runOracle = false;
    const LintReport report = runLint(options);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(LintTest, DiagnosticFormatting)
{
    LintReport report;
    report.error("body", "CSR", "something broke");
    report.warning("contract", "ELL", "looks odd");
    EXPECT_EQ(report.diagnostics[0].toString(),
              "error[body] CSR: something broke");
    EXPECT_EQ(report.errorCount(), 1u);
    EXPECT_EQ(report.warningCount(), 1u);
    EXPECT_FALSE(report.ok());
}

TEST(LintTest, SpecPassFlagsPortOverSubscription)
{
    // A segment demanding 3 accesses per II on one dual-port bank.
    ScheduleSpec spec = scheduleSpec(FormatKind::CSR);
    spec.segments[1].bankAccessesPerII = 3;
    LintReport report;
    checkSpecStructure(spec, HlsConfig(), report);
    EXPECT_TRUE(hasError(report, "spec", "over-subscription"))
        << report.toString();
}

TEST(LintTest, SpecPassFlagsMalformedSegments)
{
    ScheduleSpec spec = scheduleSpec(FormatKind::COO);
    spec.segments[0].name = "";
    spec.segments[0].bankAccessesPerII = 0;
    LintReport report;
    checkSpecStructure(spec, HlsConfig(), report);
    EXPECT_GE(report.errorCount(), 2u) << report.toString();
}

TEST(LintTest, BodyPassClassifiesCarriedDependenceIiViolation)
{
    // Seed a loop-carried dependence of 2 cycles at distance 1 into
    // COO's body: the achievable II becomes 2 against a claimed II of
    // 1, and no amount of BRAM ports can hide it.
    LoopBody body = cooLoopBody();
    body.carried.push_back({2, 1});
    LintReport report;
    checkDecoderBody(scheduleSpec(FormatKind::COO), body, 8,
                     HlsConfig(), report);
    EXPECT_TRUE(hasError(report, "body", "loop-carried dependence"))
        << report.toString();
}

TEST(LintTest, BodyPassClassifiesPortOverSubscriptionIiViolation)
{
    // Three loads on one bank of a dual-port BRAM: resource MII 2.
    // Rescheduling with unlimited ports recovers II 1, so the analyzer
    // must blame the port budget, not a dependence.
    LoopBody body = cooLoopBody();
    body.add(OpKind::BramLoad, {}, 0);
    body.add(OpKind::BramLoad, {}, 0);
    body.add(OpKind::BramLoad, {}, 0);
    LintReport report;
    checkDecoderBody(scheduleSpec(FormatKind::COO), body, 8,
                     HlsConfig(), report);
    EXPECT_TRUE(hasError(report, "body", "over-subscription"))
        << report.toString();
    EXPECT_FALSE(hasError(report, "body", "loop-carried dependence"))
        << report.toString();
}

TEST(LintTest, BodyPassFlagsUnbalancedComparatorTree)
{
    // LIL claims a balanced log2(p) comparator tree. Chain four extra
    // compares onto the body's last compare: the critical compare
    // chain now exceeds log2(16) = 4.
    LoopBody body = lilMergeBody(16);
    std::size_t last = 0;
    for (std::size_t i = 0; i < body.ops.size(); ++i)
        if (body.ops[i].kind == OpKind::Compare)
            last = i;
    for (int i = 0; i < 4; ++i)
        last = body.add(OpKind::Compare, {last});
    LintReport report;
    checkDecoderBody(scheduleSpec(FormatKind::LIL), body, 16,
                     HlsConfig(), report);
    EXPECT_TRUE(hasError(report, "body", "unbalanced"))
        << report.toString();
}

TEST(LintTest, BodyPassAcceptsTheRealBodies)
{
    const FormatParams params;
    LintReport report;
    for (FormatKind kind : allFormats()) {
        const ScheduleSpec &spec = scheduleSpec(kind);
        if (!spec.hasInnerBody)
            continue;
        checkDecoderBody(spec, decoderBodyFor(kind, params, 16), 16,
                         HlsConfig(), report);
    }
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(LintTest, ContractPassFlagsIndivisibleBlockAndSlice)
{
    FormatParams params;
    params.bcsrBlock = 3;
    LintReport report;
    checkContracts(params, HlsConfig(), {8}, report);
    EXPECT_TRUE(hasError(report, "contract", "divide"))
        << report.toString();
}

TEST(LintTest, ContractPassFlagsWindowSliceMismatch)
{
    FormatParams params;
    params.sellCsWindow = 6; // not a multiple of sellSlice = 4
    LintReport report;
    checkContracts(params, HlsConfig(), {8}, report);
    EXPECT_FALSE(report.ok()) << report.toString();
}

TEST(LintTest, ContractPassFlagsBadKnobs)
{
    HlsConfig cfg;
    cfg.bramPorts = 0;
    LintReport report;
    checkContracts(FormatParams(), cfg, {8}, report);
    EXPECT_TRUE(hasError(report, "contract", "bramPorts"))
        << report.toString();
}

TEST(LintTest, ContractPassWarnsOnNonPowerOfTwoPartition)
{
    LintReport report;
    checkContracts(FormatParams(), HlsConfig(), {12}, report);
    EXPECT_GE(report.warningCount(), 1u) << report.toString();
}

TEST(LintTest, TilePassAcceptsRealEncodings)
{
    const FormatRegistry registry;
    Tile tile(8);
    tile(0, 0) = 1;
    tile(2, 5) = 2;
    tile(7, 7) = 3;
    LintReport report;
    for (FormatKind kind : allFormats())
        checkTile(registry, kind, tile, HlsConfig(), true, true,
                  report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(LintTest, StreamsPassCoversLegacyTotalsForEveryFormat)
{
    // The typed-stream contract: per-class streams must cover the
    // legacy streams() byte totals exactly, for every format, across
    // structures (empty, sparse, dense, diagonal).
    const FormatRegistry registry;
    std::vector<Tile> tiles;
    tiles.emplace_back(8);
    Tile sparse(8);
    sparse(0, 0) = 1;
    sparse(2, 5) = 2;
    sparse(7, 7) = 3;
    tiles.push_back(sparse);
    Tile diag(8);
    for (Index i = 0; i < 8; ++i)
        diag(i, i) = static_cast<Value>(i + 1);
    tiles.push_back(diag);
    Tile dense(8);
    for (Index r = 0; r < 8; ++r)
        for (Index c = 0; c < 8; ++c)
            dense(r, c) = static_cast<Value>(r * 8 + c + 1);
    tiles.push_back(dense);

    LintReport report;
    for (const Tile &tile : tiles)
        for (FormatKind kind : allFormats())
            checkTile(registry, kind, tile, HlsConfig(), false, false,
                      true, report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

} // namespace
} // namespace copernicus
