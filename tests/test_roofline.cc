/**
 * @file
 * Roofline-analysis tests.
 */

#include <gtest/gtest.h>

#include "analysis/roofline.hh"
#include "common/rng.hh"
#include "common/status.hh"
#include "pipeline/stream_pipeline.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

TEST(RooflineTest, PeakComputeScalesWithEngineWidth)
{
    const HlsConfig cfg; // 250 MHz
    EXPECT_DOUBLE_EQ(peakComputeGflops(8, cfg), 2.0 * 8 * 0.25);
    EXPECT_DOUBLE_EQ(peakComputeGflops(16, cfg), 2.0 * 16 * 0.25);
    EXPECT_DOUBLE_EQ(peakComputeGflops(32, cfg), 2.0 * 32 * 0.25);
}

TEST(RooflineTest, PeakBandwidthScalesWithLanes)
{
    HlsConfig cfg;
    const double two_lanes = peakBandwidthGBs(cfg); // 2 x 8B x 250MHz
    EXPECT_DOUBLE_EQ(two_lanes, 4.0);
    cfg.streamlines = 1;
    EXPECT_DOUBLE_EQ(peakBandwidthGBs(cfg), 2.0);
}

TEST(RooflineTest, BoundIsMinOfRoofs)
{
    const HlsConfig cfg;
    // Very low intensity: bandwidth-limited.
    const auto low = placeOnRoofline(1e6, 1e-3, 100000000, 16, cfg);
    EXPECT_TRUE(low.memoryBoundRegion);
    EXPECT_DOUBLE_EQ(low.boundGflops,
                     low.intensity * peakBandwidthGBs(cfg));
    // Very high intensity: compute-limited.
    const auto high = placeOnRoofline(1e9, 1e-3, 1000, 16, cfg);
    EXPECT_FALSE(high.memoryBoundRegion);
    EXPECT_DOUBLE_EQ(high.boundGflops, peakComputeGflops(16, cfg));
}

TEST(RooflineTest, InvalidInputsAreFatal)
{
    const HlsConfig cfg;
    EXPECT_THROW(placeOnRoofline(1.0, 0.0, 10, 16, cfg), FatalError);
    EXPECT_THROW(placeOnRoofline(1.0, 1.0, 0, 16, cfg), FatalError);
}

TEST(RooflineTest, PipelineRunsNeverExceedTheirBound)
{
    // Physical sanity: no characterization run may beat the roofline.
    const HlsConfig cfg;
    Rng rng(61);
    const auto matrix = randomMatrix(96, 0.08, rng);
    for (Index p : {8u, 16u, 32u}) {
        const auto parts = partition(matrix, p);
        for (FormatKind kind : paperFormats()) {
            const auto run = runPipeline(parts, kind, cfg);
            const double flops =
                2.0 * static_cast<double>(run.totalUsefulBytes) /
                valueBytes;
            const auto point = placeOnRoofline(flops, run.seconds,
                                               run.totalBytes, p, cfg);
            EXPECT_LE(point.attainedGflops, point.boundGflops * 1.0001)
                << formatName(kind) << " p=" << p;
            EXPECT_GT(point.efficiency, 0.0);
            EXPECT_LE(point.efficiency, 1.0001);
        }
    }
}

TEST(RooflineTest, SparseSpmvIsMemoryBoundOnThisPlatform)
{
    // Classic result the model must reproduce: SpMV intensity is well
    // under the platform's ridge point, so every format lands in the
    // bandwidth-limited region.
    const HlsConfig cfg;
    Rng rng(62);
    const auto matrix = randomMatrix(96, 0.05, rng);
    const auto parts = partition(matrix, 16);
    for (FormatKind kind : paperFormats()) {
        const auto run = runPipeline(parts, kind, cfg);
        const double flops =
            2.0 * static_cast<double>(run.totalUsefulBytes) /
            valueBytes;
        const auto point = placeOnRoofline(flops, run.seconds,
                                           run.totalBytes, 16, cfg);
        EXPECT_TRUE(point.memoryBoundRegion) << formatName(kind);
        EXPECT_LE(point.intensity, 0.5);
    }
}

TEST(RooflineTest, CscEfficiencyCollapses)
{
    // CSC burns decompression cycles without flops: its attained
    // Gflop/s must sit far under its roof compared to CSR.
    const HlsConfig cfg;
    Rng rng(63);
    const auto matrix = randomMatrix(96, 0.2, rng);
    const auto parts = partition(matrix, 16);

    auto efficiency = [&](FormatKind kind) {
        const auto run = runPipeline(parts, kind, cfg);
        const double flops =
            2.0 * static_cast<double>(run.totalUsefulBytes) /
            valueBytes;
        return placeOnRoofline(flops, run.seconds, run.totalBytes, 16,
                               cfg).efficiency;
    };
    EXPECT_LT(efficiency(FormatKind::CSC),
              0.25 * efficiency(FormatKind::CSR));
}

} // namespace
} // namespace copernicus
