/**
 * @file
 * Tests for the coarse-grained multi-PE aggregation model.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/status.hh"
#include "pipeline/parallel_pipeline.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

Partitioning
sampleParts(Index n = 128, double density = 0.05, Index p = 16)
{
    Rng rng(11);
    return partition(randomMatrix(n, density, rng), p);
}

TEST(ParallelPipelineTest, SinglePeMatchesItself)
{
    const auto parts = sampleParts();
    const auto result = runParallel(parts, FormatKind::CSR, 1);
    EXPECT_EQ(result.peCount, 1u);
    EXPECT_DOUBLE_EQ(result.speedup, 1.0);
    EXPECT_EQ(result.peCycles.size(), 1u);
    EXPECT_EQ(result.totalCycles,
              std::max(result.computeBoundCycles,
                       result.memoryBoundCycles));
}

TEST(ParallelPipelineTest, ZeroPesIsFatal)
{
    const auto parts = sampleParts();
    EXPECT_THROW(runParallel(parts, FormatKind::CSR, 0), FatalError);
}

TEST(ParallelPipelineTest, SpeedupGrowsThenSaturates)
{
    const auto parts = sampleParts(256, 0.05, 16);
    double prev = 0.0;
    for (Index pes : {1u, 2u, 4u}) {
        const auto result = runParallel(parts, FormatKind::CSR, pes);
        EXPECT_GE(result.speedup + 1e-9, prev);
        prev = result.speedup;
    }
    // Speedup can never exceed the PE count.
    const auto result = runParallel(parts, FormatKind::CSR, 4);
    EXPECT_LE(result.speedup, 4.0 + 1e-9);
}

TEST(ParallelPipelineTest, SharedChannelEventuallyBinds)
{
    // Dense format moves the most bytes: with enough PEs the shared
    // DDR3 channel must become the bottleneck.
    const auto parts = sampleParts(256, 0.3, 16);
    const auto result = runParallel(parts, FormatKind::Dense, 16);
    EXPECT_TRUE(result.memoryBound);
    EXPECT_EQ(result.totalCycles, result.memoryBoundCycles);
}

TEST(ParallelPipelineTest, LoadBalancedBeatsRoundRobinOnSkew)
{
    // A workload with one huge tile and many small ones: LPT keeps
    // the huge tile alone.
    TripletMatrix m(64, 64);
    for (Index r = 0; r < 16; ++r)
        for (Index c = 0; c < 16; ++c)
            m.add(r, c, 1.0f); // tile (0,0) fully dense
    for (Index i = 0; i < 48; ++i)
        m.add(16 + i, (i * 7) % 64, 1.0f);
    m.finalize();
    const auto parts = partition(m, 16);

    const auto rr = runParallel(parts, FormatKind::CSR, 4,
                                ScheduleKind::RoundRobin);
    const auto lb = runParallel(parts, FormatKind::CSR, 4,
                                ScheduleKind::LoadBalanced);
    EXPECT_LE(lb.computeBoundCycles, rr.computeBoundCycles);
}

TEST(ParallelPipelineTest, PeCyclesSumConservesWork)
{
    // Total steady cycles across PEs equals the single-PE steady sum
    // (fill/drain differ, so compare within slack).
    const auto parts = sampleParts(128, 0.1, 16);
    const auto one = runParallel(parts, FormatKind::COO, 1);
    const auto four = runParallel(parts, FormatKind::COO, 4);
    Cycles sum_four = 0;
    for (Cycles c : four.peCycles)
        sum_four += c;
    // Parallel fill/drain overheads add at most peCount * (one tile).
    EXPECT_GE(sum_four + 4 * 2000, one.peCycles[0]);
}

TEST(ParallelPipelineTest, EmptyMatrix)
{
    TripletMatrix m(32, 32);
    m.finalize();
    const auto parts = partition(m, 16);
    const auto result = runParallel(parts, FormatKind::CSR, 4);
    EXPECT_EQ(result.totalCycles, 0u);
    EXPECT_DOUBLE_EQ(result.speedup, 1.0);
}

TEST(ParallelPipelineTest, MorePesThanTiles)
{
    TripletMatrix m(16, 16);
    m.add(0, 0, 1.0f);
    m.finalize();
    const auto parts = partition(m, 16);
    const auto result = runParallel(parts, FormatKind::CSR, 8);
    // Only one PE does work; others idle.
    Index busy = 0;
    for (Cycles c : result.peCycles)
        busy += c > 0;
    EXPECT_EQ(busy, 1u);
}

TEST(ParallelPipelineTest, ResultMetadata)
{
    const auto parts = sampleParts();
    const auto result = runParallel(parts, FormatKind::LIL, 2,
                                    ScheduleKind::LoadBalanced);
    EXPECT_EQ(result.format, FormatKind::LIL);
    EXPECT_EQ(result.partitionSize, 16u);
    EXPECT_EQ(result.schedule, ScheduleKind::LoadBalanced);
    EXPECT_GT(result.seconds, 0.0);
}

} // namespace
} // namespace copernicus
