/**
 * @file
 * Tests for the RCM reordering substrate.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "common/status.hh"
#include "matrix/reorder.hh"
#include "matrix/stats.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

bool
isPermutation(const std::vector<Index> &perm, Index n)
{
    if (perm.size() != n)
        return false;
    std::vector<bool> seen(n, false);
    for (Index v : perm) {
        if (v >= n || seen[v])
            return false;
        seen[v] = true;
    }
    return true;
}

TEST(RcmTest, ReturnsAPermutation)
{
    Rng rng(1);
    const auto m = randomMatrix(64, 0.05, rng);
    const auto perm = reverseCuthillMcKee(m);
    EXPECT_TRUE(isPermutation(perm, 64));
}

TEST(RcmTest, CoversDisconnectedComponents)
{
    // Two disjoint 3-cliques plus isolated vertices.
    TripletMatrix m(10, 10);
    for (Index a : {0u, 1u, 2u})
        for (Index b : {0u, 1u, 2u})
            if (a != b)
                m.add(a, b, 1.0f);
    for (Index a : {5u, 6u, 7u})
        for (Index b : {5u, 6u, 7u})
            if (a != b)
                m.add(a, b, 1.0f);
    m.finalize();
    EXPECT_TRUE(isPermutation(reverseCuthillMcKee(m), 10));
}

TEST(RcmTest, NonSquareIsFatal)
{
    TripletMatrix m(3, 4);
    m.finalize();
    EXPECT_THROW(reverseCuthillMcKee(m), FatalError);
}

TEST(RcmTest, ReducesBandwidthOfScatteredBand)
{
    // Take a band matrix and scramble it with a random permutation;
    // RCM must recover (most of) the band.
    Rng rng(2);
    const auto band = bandMatrix(128, 8, rng);

    std::vector<Index> scramble(128);
    for (Index i = 0; i < 128; ++i)
        scramble[i] = i;
    for (Index i = 127; i > 0; --i)
        std::swap(scramble[i],
                  scramble[static_cast<Index>(rng.below(i + 1))]);
    const auto scrambled = permuteSymmetric(band, scramble);
    const auto recovered = rcmReorder(scrambled);

    const auto before = computeStats(scrambled).bandwidth;
    const auto after = computeStats(recovered).bandwidth;
    EXPECT_LT(after, before / 2);
}

TEST(RcmTest, ImprovesPartitionElision)
{
    // Fewer non-zero tiles after banding = less data to stream.
    Rng rng(3);
    const auto band = bandMatrix(256, 4, rng);
    std::vector<Index> scramble(256);
    for (Index i = 0; i < 256; ++i)
        scramble[i] = i;
    for (Index i = 255; i > 0; --i)
        std::swap(scramble[i],
                  scramble[static_cast<Index>(rng.below(i + 1))]);
    const auto scrambled = permuteSymmetric(band, scramble);
    const auto recovered = rcmReorder(scrambled);

    EXPECT_LT(partition(recovered, 16).tiles.size(),
              partition(scrambled, 16).tiles.size());
}

TEST(PermuteSymmetricTest, PermutedValuesLandCorrectly)
{
    TripletMatrix m(3, 3);
    m.add(0, 1, 5.0f);
    m.add(2, 2, 7.0f);
    m.finalize();
    // perm[new] = old: new0 <- old2, new1 <- old0, new2 <- old1.
    const auto p = permuteSymmetric(m, {2, 0, 1});
    EXPECT_FLOAT_EQ(p.at(0, 0), 7.0f); // old (2,2)
    EXPECT_FLOAT_EQ(p.at(1, 2), 5.0f); // old (0,1)
    EXPECT_EQ(p.nnz(), m.nnz());
}

TEST(PermuteSymmetricTest, IdentityPermutationIsNoOp)
{
    Rng rng(4);
    const auto m = randomMatrix(32, 0.1, rng);
    std::vector<Index> identity(32);
    for (Index i = 0; i < 32; ++i)
        identity[i] = i;
    EXPECT_TRUE(permuteSymmetric(m, identity) == m);
}

TEST(PermuteSymmetricTest, InvalidPermutationIsFatal)
{
    TripletMatrix m(3, 3);
    m.finalize();
    EXPECT_THROW(permuteSymmetric(m, {0, 1}), FatalError);    // short
    EXPECT_THROW(permuteSymmetric(m, {0, 1, 1}), FatalError); // dup
    EXPECT_THROW(permuteSymmetric(m, {0, 1, 5}), FatalError); // range
}

TEST(RcmTest, PreservesSpectrumViaSymmetricPermutation)
{
    // A symmetric permutation preserves the diagonal multiset.
    Rng rng(5);
    const auto m = diagonalMatrix(16, rng);
    const auto r = rcmReorder(m);
    std::vector<Value> before, after;
    for (Index i = 0; i < 16; ++i) {
        before.push_back(m.at(i, i));
        after.push_back(r.at(i, i));
    }
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    EXPECT_EQ(before, after);
}

} // namespace
} // namespace copernicus
