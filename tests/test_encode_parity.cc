/**
 * @file
 * Golden parity suite for the sparse-native encode hot path.
 *
 * The partition -> feature -> encode pipeline was rewritten in PR 5 to
 * iterate only the non-zero structure. The hard contract of that
 * rewrite is *bit-identical* StudyResult output: these tests pin
 * `StudyResult::writeCsv` against golden CSVs generated from the seed
 * dense-scan implementation (commit 1e2eed7), across random matrices
 * spanning the paper's density range, band matrices, catalog
 * surrogates, every format, p in {8, 16, 32} and jobs in {1, 4}, with
 * the encode cache both on and off.
 *
 * Regenerate the goldens (only ever from a known-good tree) with
 *   COPERNICUS_REGEN_GOLDEN=1 ./test_encode_parity
 * which rewrites tests/golden/study_parity.csv in the source tree.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/rng.hh"
#include "core/study.hh"
#include "formats/encode_cache.hh"
#include "workloads/generators.hh"
#include "workloads/suite_catalog.hh"

namespace {

using namespace copernicus;

constexpr Index parityDim = 256;

std::string
goldenPath()
{
    return std::string(COPERNICUS_GOLDEN_DIR) + "/study_parity.csv";
}

Study
makeParityStudy(unsigned jobs)
{
    StudyConfig cfg;
    cfg.partitionSizes = {8, 16, 32};
    cfg.formats = allFormats();
    cfg.jobs = jobs;
    Study study(std::move(cfg));

    const std::vector<double> densities = {0.0001, 0.001, 0.01, 0.1,
                                           0.5};
    for (std::size_t i = 0; i < densities.size(); ++i) {
        std::uint64_t sm = 0xC0FFEE + i;
        Rng rng(splitMix64(sm));
        std::ostringstream name;
        name << "rand_d" << densities[i];
        study.addWorkload(name.str(),
                          randomMatrix(parityDim, densities[i], rng));
    }
    const std::vector<Index> widths = {1, 8};
    for (std::size_t i = 0; i < widths.size(); ++i) {
        std::uint64_t sm = 0xBA5D00 + i;
        Rng rng(splitMix64(sm));
        study.addWorkload("band_w" + std::to_string(widths[i]),
                          bandMatrix(parityDim, widths[i], rng));
    }
    const auto &catalog = suiteCatalog();
    for (std::size_t i = 0; i < 2 && i < catalog.size(); ++i) {
        SuiteMatrixInfo scaled = catalog[i];
        scaled.surrogateDim = parityDim;
        study.addWorkload("cat_" + scaled.id,
                          scaled.generate(0xC0FFEE));
    }
    return study;
}

std::string
runParityCsv(unsigned jobs)
{
    std::ostringstream out;
    makeParityStudy(jobs).run().writeCsv(out);
    return out.str();
}

std::string
loadGolden()
{
    std::ifstream in(goldenPath());
    EXPECT_TRUE(in.good()) << "missing golden file " << goldenPath();
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
regenRequested()
{
    const char *env = std::getenv("COPERNICUS_REGEN_GOLDEN");
    return env != nullptr && env[0] == '1';
}

/** Line-wise diff summary so a mismatch is debuggable, not a blob. */
void
expectCsvEqual(const std::string &got, const std::string &golden)
{
    if (got == golden)
        return;
    std::istringstream a(got), b(golden);
    std::string la, lb;
    std::size_t line = 0;
    while (std::getline(a, la) && std::getline(b, lb)) {
        ++line;
        ASSERT_EQ(la, lb) << "first CSV mismatch at line " << line;
    }
    FAIL() << "CSV row count differs from golden (got "
           << std::count(got.begin(), got.end(), '\n') << " vs "
           << std::count(golden.begin(), golden.end(), '\n')
           << " lines)";
}

TEST(EncodeParity, StudyCsvMatchesSeedGoldenSerial)
{
    const std::string csv = runParityCsv(1);
    if (regenRequested()) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath();
        out << csv;
        GTEST_SKIP() << "regenerated " << goldenPath();
    }
    expectCsvEqual(csv, loadGolden());
}

TEST(EncodeParity, StudyCsvMatchesSeedGoldenParallel)
{
    if (regenRequested())
        GTEST_SKIP() << "regen mode";
    expectCsvEqual(runParityCsv(4), loadGolden());
}

TEST(EncodeParity, StudyCsvMatchesSeedGoldenCacheDisabled)
{
    if (regenRequested())
        GTEST_SKIP() << "regen mode";
    EncodeCache::global().setEnabled(false);
    const std::string csv = runParityCsv(1);
    EncodeCache::global().setEnabled(true);
    expectCsvEqual(csv, loadGolden());
}

} // namespace
