/**
 * @file
 * Journaled-sweep helper for the kill/resume test.
 *
 * Runs a small deterministic Study with a SweepJournal and writes its
 * CSV. The driver (test_journal_kill_resume.cc) launches this binary,
 * SIGKILLs it mid-sweep, relaunches it against the same journal and
 * requires the final CSV to be byte-identical to an uninterrupted
 * run's. --slow-ms stretches each design point so there is a reliable
 * window to land the kill in.
 *
 *   helper_journal_sweep <journal> <csv>
 *       [--partitions 8,16] [--slow-ms N] [--stats FILE]
 *
 * --stats appends "resumed=<cells restored from the journal>" so the
 * driver can assert the second run actually skipped completed work.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/status.hh"
#include "core/study.hh"
#include "store/container.hh"
#include "store/sweep_journal.hh"
#include "workloads/generators.hh"

using namespace copernicus;

namespace {

std::vector<Index>
parsePartitions(const std::string &arg)
{
    std::vector<Index> sizes;
    std::istringstream in(arg);
    std::string token;
    while (std::getline(in, token, ','))
        sizes.push_back(static_cast<Index>(std::stoul(token)));
    fatalIf(sizes.empty(), "no partition sizes in '" + arg + "'");
    return sizes;
}

TripletMatrix
workloadMatrix(std::uint64_t seed, bool band)
{
    Rng rng(seed);
    TripletMatrix m =
        band ? bandMatrix(48, 4, rng) : randomMatrix(48, 0.1, rng);
    m.finalize();
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        std::string journalPath;
        std::string csvPath;
        std::string statsPath;
        std::string partitions = "8,16";
        long slowMs = 0;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto next = [&] {
                fatalIf(i + 1 >= argc, arg + " needs a value");
                return std::string(argv[++i]);
            };
            if (arg == "--partitions")
                partitions = next();
            else if (arg == "--slow-ms")
                slowMs = std::stol(next());
            else if (arg == "--stats")
                statsPath = next();
            else if (journalPath.empty())
                journalPath = arg;
            else if (csvPath.empty())
                csvPath = arg;
            else
                fatal("unexpected argument '" + arg + "'");
        }
        fatalIf(journalPath.empty() || csvPath.empty(),
                "usage: helper_journal_sweep <journal> <csv> "
                "[--partitions 8,16] [--slow-ms N] [--stats FILE]");

        StudyConfig cfg;
        cfg.partitionSizes = parsePartitions(partitions);
        cfg.formats = {FormatKind::CSR, FormatKind::COO,
                       FormatKind::Dense};
        cfg.jobs = 1;
        if (slowMs > 0) {
            // Not a cancellation: the hook just stretches each design
            // point so the driver can land a SIGKILL mid-sweep.
            cfg.cancelCheck = [slowMs] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(slowMs));
                return false;
            };
        }

        const TripletMatrix rand = workloadMatrix(0x5EED, false);
        const TripletMatrix band = workloadMatrix(0xBA4D, true);

        JournalIdentity identity;
        identity.matrixHash =
            workloadSetHash({{"rand", contentHashOf(rand)},
                             {"band", contentHashOf(band)}});
        identity.configHash =
            sweepConfigHash(cfg.partitionSizes, cfg.formats);
        cfg.journal =
            std::make_shared<SweepJournal>(journalPath, identity);
        const std::size_t resumed = cfg.journal->resumedCells();

        Study study(cfg);
        study.addWorkload("rand", rand);
        study.addWorkload("band", band);
        study.run().writeCsvFile(csvPath);

        if (!statsPath.empty()) {
            std::ofstream stats(statsPath, std::ios::app);
            stats << "resumed=" << resumed << "\n";
        }
        return 0;
    } catch (const FatalError &err) {
        std::cerr << "helper_journal_sweep: " << err.what() << "\n";
        return 1;
    }
}
