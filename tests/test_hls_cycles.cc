/**
 * @file
 * Exact-cycle regression tests for the decompressor models: every
 * format's cycle count on small hand-built tiles is computed by hand
 * from the documented schedule (default config: BRAM read 2, loop
 * depth 4, hash 2, dual-port BRAM) and pinned here. Any change to the
 * model's arithmetic must update these numbers consciously.
 */

#include <gtest/gtest.h>

#include "formats/registry.hh"
#include "hls/decompressor.hh"

namespace copernicus {
namespace {

Cycles
cyclesFor(FormatKind kind, const Tile &tile)
{
    const auto encoded = defaultCodec(kind).encode(tile);
    return simulateDecompression(*encoded, HlsConfig()).decompressCycles;
}

/** p=8 tile with entries (0,0)=1, (0,5)=2, (3,0)=3. */
Tile
threeEntryTile()
{
    Tile t(8);
    t(0, 0) = 1;
    t(0, 5) = 2;
    t(3, 0) = 3;
    return t;
}

TEST(ExactCyclesTest, Dense)
{
    EXPECT_EQ(cyclesFor(FormatKind::Dense, threeEntryTile()), 0u);
}

TEST(ExactCyclesTest, Csr)
{
    // bramLat(2) + depth(4) + entries(3) + (nnzRows(2) - 1) = 10.
    EXPECT_EQ(cyclesFor(FormatKind::CSR, threeEntryTile()), 10u);
}

TEST(ExactCyclesTest, Bcsr)
{
    // Blocks: (0,0) holds (0,0) and (3,0); (0,4) holds (0,5):
    // 2 blocks in 1 block-row: 2 + 4 + 2 + 0 = 8.
    EXPECT_EQ(cyclesFor(FormatKind::BCSR, threeEntryTile()), 8u);
}

TEST(ExactCyclesTest, Csc)
{
    // Per output row a pipelined scan of all 3 entries: depth 4 +
    // (3-1) = 6 cycles, times p=8 rows, plus the initial BRAM read:
    // 2 + 8*6 = 50.
    EXPECT_EQ(cyclesFor(FormatKind::CSC, threeEntryTile()), 50u);
}

TEST(ExactCyclesTest, Coo)
{
    // One pipelined loop over 3 tuples: 4 + (3-1) = 6.
    EXPECT_EQ(cyclesFor(FormatKind::COO, threeEntryTile()), 6u);
}

TEST(ExactCyclesTest, Dok)
{
    // Hash probe per tuple: depth 4+2, II 2: 6 + 2*(3-1) = 10.
    EXPECT_EQ(cyclesFor(FormatKind::DOK, threeEntryTile()), 10u);
}

TEST(ExactCyclesTest, Lil)
{
    // Column 0 holds two entries (longest list), nnzRows = 2.
    // fill = bramLat(2) + log2(8)(3) = 5; production =
    // max(2*nnzRows, bramLat*longest) = max(4, 4) = 4; end detection
    // +2 -> 11.
    EXPECT_EQ(cyclesFor(FormatKind::LIL, threeEntryTile()), 11u);
}

TEST(ExactCyclesTest, Ell)
{
    // One pipelined sweep over all 8 rows: 4 + 7 = 11, independent of
    // the entries.
    EXPECT_EQ(cyclesFor(FormatKind::ELL, threeEntryTile()), 11u);
    Tile other(8);
    other(7, 7) = 9;
    EXPECT_EQ(cyclesFor(FormatKind::ELL, other), 11u);
}

TEST(ExactCyclesTest, Sell)
{
    // ELL sweep (11) + one width-header read per slice (2 slices of
    // height 4, bramLat 2): 11 + 4 = 15.
    EXPECT_EQ(cyclesFor(FormatKind::SELL, threeEntryTile()), 15u);
}

TEST(ExactCyclesTest, SellCs)
{
    // SELL cost (11 + 4) plus one perm look-up per row (8): 23.
    EXPECT_EQ(cyclesFor(FormatKind::SELLCS, threeEntryTile()), 23u);
}

TEST(ExactCyclesTest, Dia)
{
    // Diagonals: 0 (entry (0,0)), +5 ((0,5)), -3 ((3,0)) -> 3
    // diagonals, dual-ported scan ceil(3/2)=2 per row, 8 rows:
    // 4 + 8*2 = 20.
    EXPECT_EQ(cyclesFor(FormatKind::DIA, threeEntryTile()), 20u);
}

TEST(ExactCyclesTest, Jds)
{
    // width = 2 jagged diagonals, nnz 3, nnzRows 2:
    // 2 + 4 + 3 + 2*2 + 2 = 15.
    EXPECT_EQ(cyclesFor(FormatKind::JDS, threeEntryTile()), 15u);
}

TEST(ExactCyclesTest, EllCoo)
{
    // Width 2, no row exceeds 2 entries: ELL sweep only = 11.
    EXPECT_EQ(cyclesFor(FormatKind::ELLCOO, threeEntryTile()), 11u);
    // Force 3 entries in one row: overflow loop adds 4 + (1-1).
    Tile overflow(8);
    overflow(2, 0) = 1;
    overflow(2, 3) = 2;
    overflow(2, 6) = 3;
    EXPECT_EQ(cyclesFor(FormatKind::ELLCOO, overflow), 11u + 4u);
}

TEST(ExactCyclesTest, Bitmap)
{
    // 64 mask bits = 1 word; max(words=1, nnz=3) = 3: 4 + 3 = 7.
    EXPECT_EQ(cyclesFor(FormatKind::BITMAP, threeEntryTile()), 7u);
}

TEST(ExactCyclesTest, EmptyTilesAreFreeForRowSkippingFormats)
{
    const Tile empty(8);
    for (FormatKind kind :
         {FormatKind::CSR, FormatKind::BCSR, FormatKind::COO,
          FormatKind::DOK, FormatKind::LIL, FormatKind::DIA,
          FormatKind::JDS, FormatKind::BITMAP}) {
        EXPECT_EQ(cyclesFor(kind, empty), 0u) << formatName(kind);
    }
}

TEST(ExactCyclesTest, FullTileCsr)
{
    // 64 entries, 8 non-zero rows: 2 + 4 + 64 + 7 = 77.
    Tile full(8);
    for (Index r = 0; r < 8; ++r)
        for (Index c = 0; c < 8; ++c)
            full(r, c) = 1;
    EXPECT_EQ(cyclesFor(FormatKind::CSR, full), 77u);
}

TEST(ExactCyclesTest, ConfigScalesCsr)
{
    // Doubling the loop depth adds exactly 4 cycles to CSR's count.
    const Tile tile = threeEntryTile();
    const auto encoded = defaultCodec(FormatKind::CSR).encode(tile);
    HlsConfig deep;
    deep.loopDepth = 8;
    EXPECT_EQ(simulateDecompression(*encoded, deep).decompressCycles,
              14u);
}

} // namespace
} // namespace copernicus
