/**
 * @file
 * Unit tests for Tile and the partitioner.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "kernels/spmv.hh"
#include "matrix/csr_matrix.hh"
#include "matrix/partitioner.hh"
#include "matrix/tile.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

TEST(TileTest, ConstructionAndAccess)
{
    Tile t(4, 2, 3);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.tileRow(), 2u);
    EXPECT_EQ(t.tileCol(), 3u);
    EXPECT_TRUE(t.empty());
    t(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(t(1, 2), 5.0f);
    EXPECT_FALSE(t.empty());
}

TEST(TileTest, ZeroSizeRejected)
{
    EXPECT_THROW(Tile(0), FatalError);
}

TEST(TileTest, BoundsChecked)
{
    Tile t(4);
    EXPECT_THROW(t(4, 0), PanicError);
    EXPECT_THROW(t(0, 4), PanicError);
}

TEST(TileTest, RowAndColumnStatistics)
{
    Tile t(4);
    t(0, 0) = 1.0f;
    t(0, 3) = 2.0f;
    t(2, 0) = 3.0f;
    EXPECT_EQ(t.nnz(), 3u);
    EXPECT_EQ(t.rowNnz(0), 2u);
    EXPECT_EQ(t.rowNnz(1), 0u);
    EXPECT_EQ(t.colNnz(0), 2u);
    EXPECT_EQ(t.nnzRows(), 2u);
    EXPECT_EQ(t.maxRowNnz(), 2u);
    EXPECT_EQ(t.maxColNnz(), 2u);
}

TEST(TileTest, EqualityIgnoresGridCoordinates)
{
    Tile a(2, 0, 0), b(2, 5, 7);
    a(0, 0) = 1.0f;
    b(0, 0) = 1.0f;
    EXPECT_TRUE(a == b);
    b(1, 1) = 2.0f;
    EXPECT_FALSE(a == b);
}

TEST(PartitionerTest, ExactGridNoPadding)
{
    TripletMatrix m(8, 8);
    m.add(0, 0, 1.0f);
    m.add(7, 7, 2.0f);
    m.finalize();
    const auto parts = partition(m, 4);
    EXPECT_EQ(parts.gridRows, 2u);
    EXPECT_EQ(parts.gridCols, 2u);
    EXPECT_EQ(parts.tiles.size(), 2u);
    EXPECT_EQ(parts.zeroTiles, 2u);
    EXPECT_EQ(parts.totalTiles(), 4u);
    EXPECT_DOUBLE_EQ(parts.nonZeroTileFraction(), 0.5);
}

TEST(PartitionerTest, PaddedEdgeTiles)
{
    TripletMatrix m(10, 10);
    m.add(9, 9, 1.0f);
    m.finalize();
    const auto parts = partition(m, 4);
    EXPECT_EQ(parts.gridRows, 3u);
    EXPECT_EQ(parts.gridCols, 3u);
    ASSERT_EQ(parts.tiles.size(), 1u);
    const Tile &tile = parts.tiles.front();
    EXPECT_EQ(tile.tileRow(), 2u);
    EXPECT_EQ(tile.tileCol(), 2u);
    EXPECT_FLOAT_EQ(tile(1, 1), 1.0f); // 9 % 4 == 1
}

TEST(PartitionerTest, TilesSortedInStreamingOrder)
{
    TripletMatrix m(8, 8);
    m.add(6, 1, 1.0f); // tile (1, 0)
    m.add(1, 6, 2.0f); // tile (0, 1)
    m.add(0, 0, 3.0f); // tile (0, 0)
    m.finalize();
    const auto parts = partition(m, 4);
    ASSERT_EQ(parts.tiles.size(), 3u);
    EXPECT_EQ(parts.tiles[0].tileRow(), 0u);
    EXPECT_EQ(parts.tiles[0].tileCol(), 0u);
    EXPECT_EQ(parts.tiles[1].tileRow(), 0u);
    EXPECT_EQ(parts.tiles[1].tileCol(), 1u);
    EXPECT_EQ(parts.tiles[2].tileRow(), 1u);
    EXPECT_EQ(parts.tiles[2].tileCol(), 0u);
}

TEST(PartitionerTest, ZeroPartitionSizeRejected)
{
    TripletMatrix m(4, 4);
    m.finalize();
    EXPECT_THROW(partition(m, 0), FatalError);
}

TEST(PartitionerTest, EmptyMatrixHasOnlyZeroTiles)
{
    TripletMatrix m(16, 16);
    m.finalize();
    const auto parts = partition(m, 8);
    EXPECT_TRUE(parts.tiles.empty());
    EXPECT_EQ(parts.zeroTiles, 4u);
    EXPECT_DOUBLE_EQ(parts.nonZeroTileFraction(), 0.0);
}

TEST(PartitionerTest, NnzConservedAcrossTiles)
{
    Rng rng(123);
    const auto m = randomMatrix(100, 0.05, rng);
    for (Index p : {8u, 16u, 32u}) {
        const auto parts = partition(m, p);
        std::size_t total = 0;
        for (const auto &tile : parts.tiles)
            total += tile.nnz();
        EXPECT_EQ(total, m.nnz()) << "partition size " << p;
    }
}

TEST(PartitionerTest, ValuesLandAtCorrectLocalCoordinates)
{
    Rng rng(321);
    const auto m = randomMatrix(40, 0.1, rng);
    const Index p = 16;
    const auto parts = partition(m, p);
    for (const auto &tile : parts.tiles) {
        for (Index r = 0; r < p; ++r) {
            for (Index c = 0; c < p; ++c) {
                const Index gr = tile.tileRow() * p + r;
                const Index gc = tile.tileCol() * p + c;
                const Value expected =
                    (gr < m.rows() && gc < m.cols()) ? m.at(gr, gc)
                                                     : Value(0);
                ASSERT_FLOAT_EQ(tile(r, c), expected);
            }
        }
    }
}

TEST(PartitionerTest, EveryReturnedTileIsNonZero)
{
    Rng rng(55);
    const auto m = randomMatrix(64, 0.01, rng);
    const auto parts = partition(m, 8);
    for (const auto &tile : parts.tiles)
        EXPECT_GT(tile.nnz(), 0u);
}

TEST(PartitionerTest, RectangularMatrixGrid)
{
    // 20 x 50 matrix at p = 16: grid 2 x 4 with padded edges.
    TripletMatrix m(20, 50);
    m.add(19, 49, 3.0f);
    m.add(0, 20, 5.0f);
    m.finalize();
    const auto parts = partition(m, 16);
    EXPECT_EQ(parts.gridRows, 2u);
    EXPECT_EQ(parts.gridCols, 4u);
    ASSERT_EQ(parts.tiles.size(), 2u);
    EXPECT_FLOAT_EQ(parts.tiles[0](0, 4), 5.0f);  // tile (0,1)
    EXPECT_FLOAT_EQ(parts.tiles[1](3, 1), 3.0f);  // tile (1,3)
}

TEST(PartitionerTest, RectangularSpmvMatchesCsr)
{
    // Pruned-layer shapes are rectangular; the partitioned SpMV must
    // agree with the full-matrix CSR reference there too.
    Rng rng(99);
    const auto m = prunedLayer(24, 56, 0.15, rng);
    const CsrMatrix csr(m);
    std::vector<Value> x(56);
    for (auto &v : x)
        v = static_cast<Value>(rng.range(-1.0, 1.0));
    const auto expected = csr.multiply(x);
    const auto parts = partition(m, 16);
    const auto y = spmvPartitioned(parts, FormatKind::CSR, x);
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_NEAR(y[i], expected[i], 1e-3);
}

TEST(PartitionerTest, PartitionSizeLargerThanMatrix)
{
    TripletMatrix m(5, 5);
    m.add(2, 3, 1.0f);
    m.finalize();
    const auto parts = partition(m, 16);
    EXPECT_EQ(parts.gridRows, 1u);
    EXPECT_EQ(parts.gridCols, 1u);
    ASSERT_EQ(parts.tiles.size(), 1u);
    EXPECT_FLOAT_EQ(parts.tiles[0](2, 3), 1.0f);
}

} // namespace
} // namespace copernicus
