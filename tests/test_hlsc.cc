/**
 * @file
 * Tests for the mini HLS scheduler, ending with the validation suite
 * that ties the scheduled depths/IIs of the Listing 1-7 loop bodies to
 * the constants the analytic model (hls/hls_config.hh) uses.
 */

#include <gtest/gtest.h>

#include "common/status.hh"
#include "hls/hls_config.hh"
#include "hlsc/decoder_bodies.hh"
#include "hlsc/schedule.hh"

namespace copernicus {
namespace {

TEST(HlscScheduleTest, EmptyBody)
{
    const LoopBody body;
    const auto schedule = scheduleBody(body);
    EXPECT_EQ(schedule.depth, 0u);
    EXPECT_EQ(schedule.ii, 1u);
    EXPECT_EQ(schedule.pipelinedCycles(0), 0u);
}

TEST(HlscScheduleTest, SingleOpDepthIsItsLatency)
{
    LoopBody body;
    body.add(OpKind::BramLoad);
    const auto schedule = scheduleBody(body);
    EXPECT_EQ(schedule.depth, HlscConstraints().bramLoadLatency);
}

TEST(HlscScheduleTest, DependencyChainsSerialize)
{
    LoopBody body;
    const auto a = body.add(OpKind::BramLoad); // 0..2
    const auto b = body.add(OpKind::Add, {a}); // 2..3
    body.add(OpKind::BramStore, {b}, 1);       // 3..4
    const auto schedule = scheduleBody(body);
    EXPECT_EQ(schedule.start[0], 0u);
    EXPECT_EQ(schedule.start[1], 2u);
    EXPECT_EQ(schedule.start[2], 3u);
    EXPECT_EQ(schedule.depth, 4u);
}

TEST(HlscScheduleTest, IndependentOpsRunInParallel)
{
    LoopBody body;
    body.add(OpKind::BramLoad, {}, 0);
    body.add(OpKind::BramLoad, {}, 1);
    body.add(OpKind::Mul);
    const auto schedule = scheduleBody(body);
    EXPECT_EQ(schedule.start[0], 0u);
    EXPECT_EQ(schedule.start[1], 0u);
    EXPECT_EQ(schedule.start[2], 0u);
}

TEST(HlscScheduleTest, PortPressureDelaysSameBankAccesses)
{
    // Three loads on one dual-ported bank: the third waits a cycle.
    LoopBody body;
    body.add(OpKind::BramLoad, {}, 0);
    body.add(OpKind::BramLoad, {}, 0);
    body.add(OpKind::BramLoad, {}, 0);
    const auto schedule = scheduleBody(body);
    EXPECT_EQ(schedule.start[0], 0u);
    EXPECT_EQ(schedule.start[1], 0u);
    EXPECT_EQ(schedule.start[2], 1u);
}

TEST(HlscScheduleTest, ResourceMiiFromPortDemand)
{
    // Four port uses on one bank, two ports -> II = 2.
    LoopBody body;
    for (int i = 0; i < 4; ++i)
        body.add(OpKind::BramLoad, {}, 0);
    EXPECT_EQ(scheduleBody(body).ii, 2u);
}

TEST(HlscScheduleTest, RecurrenceMiiFromCarriedDeps)
{
    LoopBody body;
    body.add(OpKind::Add);
    body.carried.push_back({6, 2}); // ceil(6/2) = 3
    EXPECT_EQ(scheduleBody(body).ii, 3u);
}

TEST(HlscScheduleTest, ZeroDistanceCarriedDepIsFatal)
{
    LoopBody body;
    body.add(OpKind::Add);
    body.carried.push_back({2, 0});
    EXPECT_THROW(scheduleBody(body), FatalError);
}

TEST(HlscScheduleTest, ForwardDependencyIsPanic)
{
    LoopBody body;
    body.ops.push_back({OpKind::Add, {1}, 0});
    body.ops.push_back({OpKind::Add, {}, 0});
    EXPECT_THROW(scheduleBody(body), PanicError);
}

TEST(HlscScheduleTest, PipelinedCyclesFormula)
{
    LoopBody body = cooLoopBody();
    const auto schedule = scheduleBody(body);
    EXPECT_EQ(schedule.pipelinedCycles(1), schedule.depth);
    EXPECT_EQ(schedule.pipelinedCycles(10),
              schedule.depth + schedule.ii * 9);
}

TEST(HlscScheduleTest, OpKindNamesArePrintable)
{
    EXPECT_EQ(opKindName(OpKind::BramLoad), "bram_load");
    EXPECT_EQ(opKindName(OpKind::HashProbe), "hash_probe");
}

// --- Validation: scheduled bodies vs the analytic model constants ---

TEST(HlscValidationTest, CooBodyMatchesLoopDepthAndIiOne)
{
    // The analytic model charges COO pipelinedLoop(nnz, loopDepth):
    // the scheduled tuple body must have that depth at II = 1.
    const auto schedule = scheduleBody(cooLoopBody());
    EXPECT_EQ(schedule.depth, HlsConfig().loopDepth);
    EXPECT_EQ(schedule.ii, 1u);
}

TEST(HlscValidationTest, CsrEntryBodyMatchesLoopDepthAndIiOne)
{
    const auto schedule = scheduleBody(csrInnerLoopBody());
    EXPECT_EQ(schedule.depth, HlsConfig().loopDepth);
    EXPECT_EQ(schedule.ii, 1u);
}

TEST(HlscValidationTest, CscScanBodyMatchesLoopDepthAndIiOne)
{
    const auto schedule = scheduleBody(cscScanLoopBody());
    EXPECT_EQ(schedule.depth, HlsConfig().loopDepth);
    EXPECT_EQ(schedule.ii, 1u);
}

TEST(HlscValidationTest, UnrolledBodiesKeepIiOne)
{
    // BCSR's 16-element block copy and ELL's width-6 sweep are
    // unrolled over partitioned banks: one iteration per cycle.
    EXPECT_EQ(scheduleBody(bcsrBlockBody(4)).ii, 1u);
    EXPECT_EQ(scheduleBody(ellRowBody(6)).ii, 1u);
}

TEST(HlscValidationTest, LilMergeIiIsTwo)
{
    // The cursor-update recurrence derives the II = 2 the analytic
    // LIL model charges per produced row.
    const auto schedule = scheduleBody(lilMergeBody(16));
    EXPECT_EQ(schedule.ii, 2u);
    // Comparator tree: parallel loads (2) + log2(16) compares +
    // select + store reach well past the flat loop depth.
    EXPECT_GE(schedule.depth,
              Cycles(2) + 4 /* tree */ + 1 /* select */);
}

TEST(HlscValidationTest, DokHashIiMatchesHashCycles)
{
    const auto schedule = scheduleBody(dokLoopBody());
    EXPECT_EQ(schedule.ii, HlsConfig().hashCycles);
}

TEST(HlscValidationTest, DiaScanChecksTwoDiagonalsPerCycle)
{
    // Dual-ported diagonal buffer: 2 loads on one bank fit one cycle,
    // so the scan covers bramPorts diagonals per II.
    const auto schedule = scheduleBody(diaRowScanBody());
    EXPECT_EQ(schedule.ii, 1u);
    const auto starts = schedule.start;
    EXPECT_EQ(starts[0], starts[1]); // both header loads issue together
}

TEST(HlscValidationTest, SinglePortBankHalvesDiaScanRate)
{
    // With one port per bank the same body's II doubles — the knob
    // the analytic model exposes as bramPorts.
    HlscConstraints single;
    single.bramPortsPerBank = 1;
    EXPECT_EQ(scheduleBody(diaRowScanBody(), single).ii, 2u);
}

} // namespace
} // namespace copernicus
