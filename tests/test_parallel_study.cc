/**
 * @file
 * Determinism contract of the parallel sweep engine: Study::run() and
 * planFormats() must produce bit-identical results at any jobs setting
 * and with the encode cache on or off, and the cache is genuinely
 * shared between the study and the scheduler.
 */

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/scheduler.hh"
#include "core/study.hh"
#include "formats/encode_cache.hh"
#include "matrix/partitioner.hh"
#include "workloads/generators.hh"

using namespace copernicus;

namespace {

void
expectRowsIdentical(const std::vector<StudyRow> &a,
                    const std::vector<StudyRow> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const StudyRow &x = a[i];
        const StudyRow &y = b[i];
        SCOPED_TRACE("row " + std::to_string(i) + " (" + x.workload +
                     ", " + std::string(formatName(x.format)) + ", p=" +
                     std::to_string(x.partitionSize) + ")");
        EXPECT_EQ(x.workload, y.workload);
        EXPECT_EQ(x.format, y.format);
        EXPECT_EQ(x.partitionSize, y.partitionSize);
        // Exact equality on purpose, doubles included: the contract is
        // bit-identical rows, not approximately-equal rows.
        EXPECT_EQ(x.meanSigma, y.meanSigma);
        EXPECT_EQ(x.totalCycles, y.totalCycles);
        EXPECT_EQ(x.seconds, y.seconds);
        EXPECT_EQ(x.memoryCycles, y.memoryCycles);
        EXPECT_EQ(x.computeCycles, y.computeCycles);
        EXPECT_EQ(x.balanceRatio, y.balanceRatio);
        EXPECT_EQ(x.throughput, y.throughput);
        EXPECT_EQ(x.bandwidthUtilization, y.bandwidthUtilization);
        EXPECT_EQ(x.totalBytes, y.totalBytes);
        EXPECT_EQ(x.partitions, y.partitions);
        EXPECT_EQ(x.resources.bram18k, y.resources.bram18k);
        EXPECT_EQ(x.resources.ffK, y.resources.ffK);
        EXPECT_EQ(x.resources.lutK, y.resources.lutK);
        EXPECT_EQ(x.resources.calibrated, y.resources.calibrated);
        EXPECT_EQ(x.power.logicW, y.power.logicW);
        EXPECT_EQ(x.power.bramW, y.power.bramW);
        EXPECT_EQ(x.power.signalsW, y.power.signalsW);
        EXPECT_EQ(x.power.staticW, y.power.staticW);
    }
}

StudyResult
runStudy(unsigned jobs)
{
    Rng rngRandom(11);
    Rng rngBand(12);
    StudyConfig cfg;
    cfg.partitionSizes = {8, 16};
    cfg.jobs = jobs;
    Study study(cfg);
    study.addWorkload("random", randomMatrix(96, 0.05, rngRandom));
    study.addWorkload("band", bandMatrix(96, 4, rngBand));
    return study.run();
}

class ParallelStudyTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        EncodeCache::global().setEnabled(true);
        EncodeCache::global().clear();
    }

    void
    TearDown() override
    {
        EncodeCache::global().setEnabled(true);
        EncodeCache::global().clear();
    }
};

} // namespace

TEST_F(ParallelStudyTest, RunIsBitIdenticalAcrossJobsSettings)
{
    const StudyResult serial = runStudy(1);
    const StudyResult parallel = runStudy(4);
    expectRowsIdentical(serial.rows, parallel.rows);
}

TEST_F(ParallelStudyTest, RunIsBitIdenticalWithCacheOnAndOff)
{
    const StudyResult cached = runStudy(1);
    // Every (tile, format) is distinct within one sweep, so the run
    // populates the cache without hitting it; hits across components
    // are asserted by CacheIsSharedBetweenStudyAndScheduler.
    EXPECT_GT(EncodeCache::global().stats().misses, 0u);
    EXPECT_GT(EncodeCache::global().stats().entries, 0u);

    EncodeCache::global().setEnabled(false);
    EncodeCache::global().clear();
    const StudyResult uncached = runStudy(1);
    expectRowsIdentical(cached.rows, uncached.rows);
}

TEST_F(ParallelStudyTest, PlanFormatsIsBitIdenticalAcrossJobsSettings)
{
    Rng rng(21);
    const TripletMatrix matrix = randomMatrix(128, 0.08, rng);
    const Partitioning parts = partition(matrix, 16);

    const FormatPlan serial =
        planFormats(parts, paperFormats(), SchedulerObjective::Bottleneck,
                    HlsConfig(), defaultRegistry(), 1);
    const FormatPlan parallel =
        planFormats(parts, paperFormats(), SchedulerObjective::Bottleneck,
                    HlsConfig(), defaultRegistry(), 4);
    EXPECT_EQ(serial.perTile, parallel.perTile);
    EXPECT_EQ(serial.histogram, parallel.histogram);
}

TEST_F(ParallelStudyTest, CacheIsSharedBetweenStudyAndScheduler)
{
    Rng rng(31);
    const TripletMatrix matrix = randomMatrix(96, 0.05, rng);
    const Partitioning parts = partition(matrix, 16);

    // The study's run warms the cache...
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    cfg.jobs = 1;
    Study study(cfg);
    study.addWorkload("m", matrix);
    study.run();

    // ...and the scheduler's scoring of the same tiles hits it.
    const auto before = EncodeCache::global().stats();
    planFormats(parts, paperFormats());
    const auto after = EncodeCache::global().stats();
    EXPECT_GT(after.hits, before.hits);
}
