/**
 * @file
 * Per-format layout tests: each codec's encoded arrays are checked
 * against hand-computed expectations on small tiles (the Figure-1 style
 * examples), plus the byte-accounting rules the metrics depend on.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "formats/bcsr_format.hh"
#include "formats/coo_format.hh"
#include "formats/csc_format.hh"
#include "formats/csr_format.hh"
#include "formats/dense_format.hh"
#include "formats/dia_format.hh"
#include "formats/dok_format.hh"
#include "formats/ell_format.hh"
#include "formats/ellcoo_format.hh"
#include "formats/jds_format.hh"
#include "formats/lil_format.hh"
#include "formats/bitmap_format.hh"
#include "formats/registry.hh"
#include "formats/sell_format.hh"
#include "formats/sellcs_format.hh"

namespace copernicus {
namespace {

/** 4x4 example tile:
 *    [ 1 0 2 0 ]
 *    [ 0 0 0 0 ]
 *    [ 0 3 0 0 ]
 *    [ 4 0 0 5 ]
 */
Tile
exampleTile()
{
    Tile t(4);
    t(0, 0) = 1;
    t(0, 2) = 2;
    t(2, 1) = 3;
    t(3, 0) = 4;
    t(3, 3) = 5;
    return t;
}

TEST(FormatKindTest, NamesRoundTrip)
{
    for (FormatKind kind : allFormats())
        EXPECT_EQ(parseFormatKind(formatName(kind)), kind);
}

TEST(FormatKindTest, UnknownNameIsFatal)
{
    EXPECT_THROW(parseFormatKind("NOPE"), FatalError);
}

TEST(FormatKindTest, ListSizes)
{
    EXPECT_EQ(paperFormats().size(), 8u);
    EXPECT_EQ(sparseFormats().size(), 7u);
    EXPECT_EQ(extensionFormats().size(), 6u);
    EXPECT_EQ(allFormats().size(), 14u);
}

TEST(FormatKindTest, RegistryCoversAllKinds)
{
    for (FormatKind kind : allFormats())
        EXPECT_EQ(defaultCodec(kind).kind(), kind);
}

TEST(CsrFormatTest, LayoutMatchesHandEncoding)
{
    const auto encoded = CsrCodec().encode(exampleTile());
    const auto &csr = encodedAs<CsrEncoded>(*encoded, FormatKind::CSR);
    // Cumulative-count offsets, length p.
    EXPECT_EQ(csr.offsets, (std::vector<Index>{2, 2, 3, 5}));
    EXPECT_EQ(csr.colInx, (std::vector<Index>{0, 2, 1, 0, 3}));
    EXPECT_EQ(csr.values, (std::vector<Value>{1, 2, 3, 4, 5}));
    EXPECT_EQ(csr.rowStart(0), 0u);
    EXPECT_EQ(csr.rowEnd(0), 2u);
    EXPECT_EQ(csr.rowStart(1), 2u);
    EXPECT_EQ(csr.rowEnd(1), 2u); // empty row
}

TEST(CsrFormatTest, ByteAccounting)
{
    const auto encoded = CsrCodec().encode(exampleTile());
    EXPECT_EQ(encoded->usefulBytes(), 5u * 4u);
    // 5 col indices + 4 offsets.
    EXPECT_EQ(encoded->metadataBytes(), (5u + 4u) * 4u);
    EXPECT_EQ(encoded->streams().size(), 3u);
}

TEST(CscFormatTest, LayoutMatchesHandEncoding)
{
    const auto encoded = CscCodec().encode(exampleTile());
    const auto &csc = encodedAs<CscEncoded>(*encoded, FormatKind::CSC);
    EXPECT_EQ(csc.offsets, (std::vector<Index>{2, 3, 4, 5}));
    EXPECT_EQ(csc.rowInx, (std::vector<Index>{0, 3, 2, 0, 3}));
    EXPECT_EQ(csc.values, (std::vector<Value>{1, 4, 3, 2, 5}));
}

TEST(BcsrFormatTest, SingleBlockLayout)
{
    Tile t(8);
    t(0, 0) = 1;
    t(2, 3) = 2; // same top-left 4x4 block
    const auto encoded = BcsrCodec(4).encode(t);
    const auto &bcsr = encodedAs<BcsrEncoded>(*encoded, FormatKind::BCSR);
    EXPECT_EQ(bcsr.offsets, (std::vector<Index>{1, 1}));
    ASSERT_EQ(bcsr.values.size(), 1u);
    EXPECT_EQ(bcsr.colInx[0], 0u);
    // Flattened row-major block with in-block zeros kept.
    EXPECT_FLOAT_EQ(bcsr.values[0][0], 1.0f);
    EXPECT_FLOAT_EQ(bcsr.values[0][2 * 4 + 3], 2.0f);
    EXPECT_EQ(bcsr.values[0].size(), 16u);
}

TEST(BcsrFormatTest, BlockColumnIndexIsFirstColumn)
{
    Tile t(8);
    t(5, 6) = 9; // block row 1, block col 1
    const auto encoded = BcsrCodec(4).encode(t);
    const auto &bcsr = encodedAs<BcsrEncoded>(*encoded, FormatKind::BCSR);
    EXPECT_EQ(bcsr.offsets, (std::vector<Index>{0, 1}));
    EXPECT_EQ(bcsr.colInx[0], 4u);
}

TEST(BcsrFormatTest, BlockSizeMustDivideTile)
{
    Tile t(6);
    EXPECT_THROW(BcsrCodec(4).encode(t), FatalError);
}

TEST(BcsrFormatTest, InBlockZerosAreOverheadBytes)
{
    Tile t(8);
    t(0, 0) = 1;
    const auto encoded = BcsrCodec(4).encode(t);
    EXPECT_EQ(encoded->usefulBytes(), 4u);
    // 15 in-block zeros + 1 column index + 2 offsets.
    EXPECT_EQ(encoded->metadataBytes(), (15u + 1u + 2u) * 4u);
}

TEST(CooFormatTest, TuplesRowMajor)
{
    const auto encoded = CooCodec().encode(exampleTile());
    const auto &coo = encodedAs<CooEncoded>(*encoded, FormatKind::COO);
    EXPECT_EQ(coo.rowInx, (std::vector<Index>{0, 0, 2, 3, 3}));
    EXPECT_EQ(coo.colInx, (std::vector<Index>{0, 2, 1, 0, 3}));
    EXPECT_EQ(coo.values, (std::vector<Value>{1, 2, 3, 4, 5}));
}

TEST(CooFormatTest, BandwidthUtilizationIsOneThird)
{
    // The paper's Figures 10-12: COO always transmits two indices per
    // value, pinning utilization at 1/3.
    const auto encoded = CooCodec().encode(exampleTile());
    EXPECT_DOUBLE_EQ(encoded->bandwidthUtilization(), 1.0 / 3.0);
}

TEST(DokFormatTest, SameWireBytesAsCoo)
{
    const Tile t = exampleTile();
    const auto coo = CooCodec().encode(t);
    const auto dok = DokCodec().encode(t);
    EXPECT_EQ(coo->totalBytes(), dok->totalBytes());
    EXPECT_DOUBLE_EQ(dok->bandwidthUtilization(), 1.0 / 3.0);
}

TEST(DokFormatTest, KeyPacking)
{
    const auto key = DokEncoded::key(3, 7);
    EXPECT_EQ(key >> 32, 3u);
    EXPECT_EQ(key & 0xffffffffULL, 7u);
}

TEST(LilFormatTest, ColumnsPushedToTop)
{
    const auto encoded = LilCodec().encode(exampleTile());
    const auto &lil = encodedAs<LilEncoded>(*encoded, FormatKind::LIL);
    // Longest column (col 0: rows 0, 3) + 1 sentinel row.
    EXPECT_EQ(lil.height(), 3u);
    EXPECT_EQ(lil.rowAt(0, 0), 0u);
    EXPECT_FLOAT_EQ(lil.valueAt(0, 0), 1.0f);
    EXPECT_EQ(lil.rowAt(1, 0), 3u);
    EXPECT_FLOAT_EQ(lil.valueAt(1, 0), 4.0f);
    EXPECT_EQ(lil.rowAt(2, 0), LilEncoded::endMarker);
    EXPECT_EQ(lil.rowAt(0, 1), 2u); // col 1 holds only (2,1)=3
    EXPECT_EQ(lil.rowAt(1, 1), LilEncoded::endMarker);
}

TEST(LilFormatTest, CompactListsCrossTheWire)
{
    // 5 non-zeros + one end marker per column, 8 bytes per entry.
    const auto encoded = LilCodec().encode(exampleTile());
    EXPECT_EQ(encoded->totalBytes(), (5u + 4u) * 8u);
}

TEST(EllFormatTest, WidthFloorsAtMinClampedToTile)
{
    EllCodec codec(6);
    Tile small(4);
    small(0, 0) = 1;
    EXPECT_EQ(codec.widthFor(small), 4u); // min(6, p=4)
    Tile wide(16);
    wide(0, 0) = 1;
    EXPECT_EQ(codec.widthFor(wide), 6u); // floor 6
}

TEST(EllFormatTest, WidthGrowsToLongestRow)
{
    EllCodec codec(6);
    Tile t(16);
    for (Index c = 0; c < 10; ++c)
        t(3, c) = 1;
    EXPECT_EQ(codec.widthFor(t), 10u);
}

TEST(EllFormatTest, RowsPushedLeftWithPadding)
{
    const auto encoded = EllCodec(3).encode(exampleTile());
    const auto &ell = encodedAs<EllEncoded>(*encoded, FormatKind::ELL);
    EXPECT_EQ(ell.width(), 3u);
    EXPECT_EQ(ell.colAt(0, 0), 0u);
    EXPECT_EQ(ell.colAt(0, 1), 2u);
    EXPECT_EQ(ell.colAt(0, 2), EllEncoded::padMarker);
    EXPECT_EQ(ell.colAt(1, 0), EllEncoded::padMarker); // empty row
    EXPECT_FLOAT_EQ(ell.valueAt(3, 1), 5.0f);
}

TEST(SellFormatTest, PerSliceWidths)
{
    Tile t(8);
    for (Index c = 0; c < 5; ++c)
        t(0, c) = 1; // slice 0 width 5
    t(6, 1) = 2;     // slice 1 width 1
    const auto encoded = SellCodec(4).encode(t);
    const auto &sell = encodedAs<SellEncoded>(*encoded, FormatKind::SELL);
    ASSERT_EQ(sell.slices.size(), 2u);
    EXPECT_EQ(sell.slices[0].width, 5u);
    EXPECT_EQ(sell.slices[1].width, 1u);
}

TEST(SellFormatTest, SliceMustDivideTile)
{
    Tile t(6);
    EXPECT_THROW(SellCodec(4).encode(t), FatalError);
}

TEST(SellFormatTest, SmallerThanEllForSkewedRows)
{
    // One long row forces plain ELL to a global width; SELL pays it in
    // one slice only.
    Tile t(16);
    for (Index c = 0; c < 12; ++c)
        t(0, c) = 1;
    for (Index r = 1; r < 16; ++r)
        t(r, 0) = 1;
    const auto ell = EllCodec(6).encode(t);
    const auto sell = SellCodec(4).encode(t);
    EXPECT_LT(sell->totalBytes(), ell->totalBytes());
}

TEST(DiaFormatTest, DiagonalNumbersAndSlots)
{
    const auto encoded = DiaCodec().encode(exampleTile());
    const auto &dia = encodedAs<DiaEncoded>(*encoded, FormatKind::DIA);
    // Non-zero diagonals of the example: -3 (4), -1 (3), 0 (1,5), 2 (2).
    ASSERT_EQ(dia.diagonals.size(), 4u);
    EXPECT_EQ(dia.diagonals[0].number, -3);
    EXPECT_EQ(dia.diagonals[1].number, -1);
    EXPECT_EQ(dia.diagonals[2].number, 0);
    EXPECT_EQ(dia.diagonals[3].number, 2);
    // Main diagonal holds 1 at row 0 and 5 at row 3.
    EXPECT_FLOAT_EQ(dia.diagonals[2].values[0], 1.0f);
    EXPECT_FLOAT_EQ(dia.diagonals[2].values[3], 5.0f);
    // d = -3: element (3,0) sits at slot 3 + (-3) = 0.
    EXPECT_FLOAT_EQ(dia.diagonals[0].values[0], 4.0f);
}

TEST(DiaFormatTest, PureDiagonalUtilizationApproachesOne)
{
    // Section 6.3: DIA's utilization for a diagonal matrix is p/(p+1),
    // approaching 1 as the partition grows.
    for (Index p : {8u, 16u, 32u}) {
        Tile t(p);
        for (Index i = 0; i < p; ++i)
            t(i, i) = 1;
        const auto encoded = DiaCodec().encode(t);
        EXPECT_DOUBLE_EQ(encoded->bandwidthUtilization(),
                         double(p) / (p + 1));
    }
}

TEST(DiaFormatTest, RowOnDiagonalPredicate)
{
    DiaEncoded dia(4, 0);
    EXPECT_TRUE(dia.rowOnDiagonal(0, 0));
    EXPECT_TRUE(dia.rowOnDiagonal(0, 3));
    EXPECT_FALSE(dia.rowOnDiagonal(0, -1));
    EXPECT_TRUE(dia.rowOnDiagonal(3, -3));
    EXPECT_FALSE(dia.rowOnDiagonal(3, 1));
}

TEST(JdsFormatTest, PermutationSortsByRowLength)
{
    const auto encoded = JdsCodec().encode(exampleTile());
    const auto &jds = encodedAs<JdsEncoded>(*encoded, FormatKind::JDS);
    // Row lengths: r0=2, r1=0, r2=1, r3=2; stable sort: 0, 3, 2, 1.
    const std::vector<Index> perm(jds.perm().begin(), jds.perm().end());
    EXPECT_EQ(perm, (std::vector<Index>{0, 3, 2, 1}));
    // Two jagged diagonals: first has 3 entries, second 2.
    const std::vector<Index> jdPtr(jds.jdPtr().begin(), jds.jdPtr().end());
    EXPECT_EQ(jdPtr, (std::vector<Index>{0, 3, 5}));
    EXPECT_EQ(jds.values.size(), 5u);
}

TEST(EllCooFormatTest, OverflowSpillsToCoo)
{
    Tile t(8);
    for (Index c = 0; c < 5; ++c)
        t(2, c) = Value(c + 1);
    const auto encoded = EllCooCodec(2).encode(t);
    const auto &hybrid =
        encodedAs<EllCooEncoded>(*encoded, FormatKind::ELLCOO);
    EXPECT_EQ(hybrid.width(), 2u);
    EXPECT_EQ(hybrid.overflowValues.size(), 3u);
    EXPECT_EQ(hybrid.overflowRows[0], 2u);
    EXPECT_EQ(hybrid.overflowCols[0], 2u);
}

TEST(SellCsFormatTest, WindowedSortKeepsPermutationLocal)
{
    // One long row at the bottom: global JDS would move it to the top,
    // SELL-C-sigma may only move it within its sigma-window.
    Tile t(16);
    for (Index c = 0; c < 10; ++c)
        t(12, c) = 1;
    t(2, 5) = 2;
    const auto encoded = SellCsCodec(4, 8).encode(t);
    const auto &scs = encodedAs<SellCsEncoded>(*encoded,
                                               FormatKind::SELLCS);
    ASSERT_EQ(scs.perm.size(), 16u);
    // Row 12 lives in window [8, 16): its sorted position stays there.
    Index position = 0;
    for (Index k = 0; k < 16; ++k)
        if (scs.perm[k] == 12)
            position = k;
    EXPECT_GE(position, 8u);
    // Window [8,16) sorts row 12 first.
    EXPECT_EQ(scs.perm[8], 12u);
}

TEST(SellCsFormatTest, NoWiderThanSell)
{
    // Windowed sorting can only shrink per-slice widths.
    Tile t(16);
    Rng rng(5);
    for (Index r = 0; r < 16; ++r)
        for (Index c = 0; c < 16; ++c)
            if (rng.chance(0.2))
                t(r, c) = 1;
    const auto sell = SellCodec(4).encode(t);
    const auto scs = SellCsCodec(4, 8).encode(t);
    // Compare payload bytes minus the perm overhead scs carries.
    EXPECT_LE(scs->totalBytes(),
              sell->totalBytes() + 16u * indexBytes);
}

TEST(SellCsFormatTest, InvalidWindowIsFatal)
{
    EXPECT_THROW(SellCsCodec(4, 6), FatalError); // not a multiple
    Tile t(12);
    EXPECT_THROW(SellCsCodec(4, 8).encode(t), FatalError); // 8 !| 12
}

TEST(BitmapFormatTest, MaskAndValueLayout)
{
    const auto encoded = BitmapCodec().encode(exampleTile());
    const auto &bitmap = encodedAs<BitmapEncoded>(*encoded,
                                                  FormatKind::BITMAP);
    EXPECT_TRUE(bitmap.test(0, 0));
    EXPECT_TRUE(bitmap.test(3, 3));
    EXPECT_FALSE(bitmap.test(1, 1));
    // Values in row-major scan order.
    EXPECT_EQ(bitmap.values, (std::vector<Value>{1, 2, 3, 4, 5}));
}

TEST(BitmapFormatTest, FixedMetadataBytes)
{
    // The mask costs p*p/8 bytes regardless of sparsity.
    for (Index p : {8u, 16u, 32u}) {
        Tile t(p);
        t(0, 0) = 1;
        const auto encoded = BitmapCodec().encode(t);
        EXPECT_EQ(encoded->metadataBytes(), Bytes(p) * p / 8);
    }
}

TEST(BitmapFormatTest, BeatsCooUtilizationOnModerateTiles)
{
    // The extension's selling point: above ~1 nnz per 16 cells the
    // bitmap's fixed mask beats COO's two-indices-per-value.
    Tile t(16);
    Rng rng(6);
    for (Index r = 0; r < 16; ++r)
        for (Index c = 0; c < 16; ++c)
            if (rng.chance(0.2))
                t(r, c) = 1;
    const auto bitmap = BitmapCodec().encode(t);
    const auto coo = CooCodec().encode(t);
    EXPECT_GT(bitmap->bandwidthUtilization(),
              coo->bandwidthUtilization());
}

TEST(DenseFormatTest, AllCellsOnTheWire)
{
    const auto encoded = DenseCodec().encode(exampleTile());
    EXPECT_EQ(encoded->totalBytes(), 16u * 4u);
    EXPECT_EQ(encoded->usefulBytes(), 5u * 4u);
    EXPECT_DOUBLE_EQ(encoded->bandwidthUtilization(), 5.0 / 16.0);
}

TEST(EncodedTileTest, KindMismatchPanics)
{
    const auto encoded = CooCodec().encode(exampleTile());
    EXPECT_THROW(CsrCodec().decode(*encoded), PanicError);
}

TEST(RegistryTest, ParamsReachCodecs)
{
    FormatParams params;
    params.ellMinWidth = 3;
    const FormatRegistry registry(params);
    const auto &ell =
        static_cast<const EllCodec &>(registry.codec(FormatKind::ELL));
    EXPECT_EQ(ell.minWidth(), 3u);
    const auto &bcsr =
        static_cast<const BcsrCodec &>(registry.codec(FormatKind::BCSR));
    EXPECT_EQ(bcsr.blockSize(), 4u);
}

} // namespace
} // namespace copernicus
