/**
 * @file
 * Tests for the gem5-style stats package and the pipeline stats
 * report.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/stats_report.hh"
#include "common/rng.hh"
#include "common/stat_group.hh"
#include "common/status.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

TEST(StatGroupTest, ScalarAccumulatesAndAssigns)
{
    StatGroup group("g");
    ScalarStat counter(group, "counter", "a counter");
    counter += 2;
    counter += 3.5;
    EXPECT_DOUBLE_EQ(counter.value(), 5.5);
    counter = 1.0;
    EXPECT_DOUBLE_EQ(counter.value(), 1.0);
}

TEST(StatGroupTest, AverageComputesMean)
{
    StatGroup group("g");
    AverageStat avg(group, "avg", "an average");
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
    avg.sample(1.0);
    avg.sample(2.0);
    avg.sample(6.0);
    EXPECT_DOUBLE_EQ(avg.mean(), 3.0);
    EXPECT_EQ(avg.samples(), 3u);
}

TEST(StatGroupTest, DistributionBucketsSamples)
{
    StatGroup group("g");
    DistributionStat dist(group, "dist", "a distribution", 0.0, 10.0,
                          5);
    dist.sample(-1.0); // underflow
    dist.sample(0.0);  // bucket 0
    dist.sample(3.9);  // bucket 1
    dist.sample(9.9);  // bucket 4
    dist.sample(10.0); // overflow
    EXPECT_EQ(dist.samples(), 5u);
    EXPECT_DOUBLE_EQ(dist.minSample(), -1.0);
    EXPECT_DOUBLE_EQ(dist.maxSample(), 10.0);
    EXPECT_EQ(dist.buckets()[0], 1u);
    EXPECT_EQ(dist.buckets()[1], 1u);
    EXPECT_EQ(dist.buckets()[4], 1u);
}

TEST(StatGroupTest, InvalidDistributionIsFatal)
{
    StatGroup group("g");
    EXPECT_THROW(DistributionStat(group, "d", "x", 0.0, 10.0, 0),
                 FatalError);
    EXPECT_THROW(DistributionStat(group, "d2", "x", 5.0, 5.0, 4),
                 FatalError);
}

TEST(StatGroupTest, DuplicateNamesAreFatal)
{
    StatGroup group("g");
    ScalarStat a(group, "same", "first");
    EXPECT_THROW(ScalarStat(group, "same", "second"), FatalError);
}

TEST(StatGroupTest, FindByName)
{
    StatGroup group("g");
    ScalarStat a(group, "alpha", "first");
    EXPECT_EQ(group.find("alpha"), &a);
    EXPECT_EQ(group.find("missing"), nullptr);
}

TEST(StatGroupTest, DumpFormat)
{
    StatGroup group("demo");
    ScalarStat counter(group, "hits", "cache hits");
    counter = 42;
    std::ostringstream out;
    group.dump(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("hits"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_NE(text.find("# cache hits"), std::string::npos);
}

TEST(PipelineStatsTest, MatchesResultTotals)
{
    Rng rng(71);
    const auto m = randomMatrix(64, 0.1, rng);
    const auto result = runPipeline(partition(m, 16), FormatKind::CSR);
    const PipelineStats stats(result);

    const auto *partitions = dynamic_cast<const ScalarStat *>(
        stats.group().find("partitions"));
    ASSERT_NE(partitions, nullptr);
    EXPECT_DOUBLE_EQ(partitions->value(),
                     static_cast<double>(result.partitions.size()));

    const auto *cycles = dynamic_cast<const ScalarStat *>(
        stats.group().find("total_cycles"));
    ASSERT_NE(cycles, nullptr);
    EXPECT_DOUBLE_EQ(cycles->value(),
                     static_cast<double>(result.totalCycles));

    const auto *sigma = dynamic_cast<const AverageStat *>(
        stats.group().find("sigma"));
    ASSERT_NE(sigma, nullptr);
    EXPECT_NEAR(sigma->mean(), result.meanSigma, 1e-12);
}

TEST(PipelineStatsTest, DumpContainsEveryStat)
{
    Rng rng(72);
    const auto m = randomMatrix(48, 0.1, rng);
    const auto result = runPipeline(partition(m, 16),
                                    FormatKind::DIA);
    const PipelineStats stats(result);
    std::ostringstream out;
    stats.dump(out);
    const std::string text = out.str();
    for (const char *needle :
         {"partitions", "total_cycles", "memory_cycles",
          "compute_cycles", "bytes_in", "useful_bytes", "sigma",
          "balance_ratio", "sigma_dist.samples"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
    EXPECT_NE(text.find("pipeline.DIA.p16"), std::string::npos);
}

} // namespace
} // namespace copernicus
