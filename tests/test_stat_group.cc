/**
 * @file
 * Tests for the gem5-style stats package and the pipeline stats
 * report.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/stats_report.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "common/stat_group.hh"
#include "common/status.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

TEST(StatGroupTest, ScalarAccumulatesAndAssigns)
{
    StatGroup group("g");
    ScalarStat counter(group, "counter", "a counter");
    counter += 2;
    counter += 3.5;
    EXPECT_DOUBLE_EQ(counter.value(), 5.5);
    counter = 1.0;
    EXPECT_DOUBLE_EQ(counter.value(), 1.0);
}

TEST(StatGroupTest, AverageComputesMean)
{
    StatGroup group("g");
    AverageStat avg(group, "avg", "an average");
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
    avg.sample(1.0);
    avg.sample(2.0);
    avg.sample(6.0);
    EXPECT_DOUBLE_EQ(avg.mean(), 3.0);
    EXPECT_EQ(avg.samples(), 3u);
}

TEST(StatGroupTest, DistributionBucketsSamples)
{
    StatGroup group("g");
    DistributionStat dist(group, "dist", "a distribution", 0.0, 10.0,
                          5);
    dist.sample(-1.0); // underflow
    dist.sample(0.0);  // bucket 0
    dist.sample(3.9);  // bucket 1
    dist.sample(9.9);  // bucket 4
    dist.sample(10.0); // overflow
    EXPECT_EQ(dist.samples(), 5u);
    EXPECT_DOUBLE_EQ(dist.minSample(), -1.0);
    EXPECT_DOUBLE_EQ(dist.maxSample(), 10.0);
    EXPECT_EQ(dist.buckets()[0], 1u);
    EXPECT_EQ(dist.buckets()[1], 1u);
    EXPECT_EQ(dist.buckets()[4], 1u);
}

TEST(StatGroupTest, PercentileInterpolatesWithinBuckets)
{
    StatGroup group("g");
    DistributionStat dist(group, "d", "x", 0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        dist.sample(i + 0.5); // one sample per unit-width bucket
    EXPECT_DOUBLE_EQ(dist.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(dist.percentile(95), 9.5);
    EXPECT_DOUBLE_EQ(dist.percentile(99), 9.9);
    EXPECT_DOUBLE_EQ(dist.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(dist.percentile(100), 10.0);
    EXPECT_DOUBLE_EQ(dist.percentile(10), 1.0);
}

TEST(StatGroupTest, PercentileHandlesTails)
{
    StatGroup group("g");
    DistributionStat dist(group, "d", "x", 10.0, 20.0, 5);
    dist.sample(2.0);  // underflow: spread over [min_seen, lo)
    dist.sample(12.0); // bucket 1
    dist.sample(14.0); // bucket 2
    dist.sample(30.0); // overflow: spread over [hi, max_seen]
    // Ranks 0..4 map to 2, 12 (bucket [12,14) left edge), 14, 30.
    EXPECT_LT(dist.percentile(1), 10.0);   // inside the underflow tail
    EXPECT_GT(dist.percentile(99), 20.0);  // inside the overflow tail
    EXPECT_LE(dist.percentile(99), 30.0);
    const double p50 = dist.percentile(50);
    EXPECT_GE(p50, 10.0);
    EXPECT_LE(p50, 20.0);
}

TEST(StatGroupTest, PercentileRejectsBadInput)
{
    StatGroup group("g");
    DistributionStat dist(group, "d", "x", 0.0, 1.0, 2);
    dist.sample(0.5);
    EXPECT_THROW(dist.percentile(-1), FatalError);
    EXPECT_THROW(dist.percentile(101), FatalError);
}

TEST(StatGroupTest, EmptyDistributionReturnsNanSentinel)
{
    StatGroup group("g");
    DistributionStat dist(group, "d", "x", 0.0, 1.0, 2);
    // An empty histogram has no meaningful percentile; the documented
    // sentinel is a quiet NaN ("no data"), never a throw or UB. The
    // serve daemon's per-endpoint latency histograms hit this for any
    // endpoint a run never exercised.
    EXPECT_TRUE(std::isnan(DistributionStat::emptyPercentile()));
    EXPECT_TRUE(std::isnan(dist.percentile(0)));
    EXPECT_TRUE(std::isnan(dist.percentile(50)));
    EXPECT_TRUE(std::isnan(dist.percentile(100)));
    // The sentinel must not leak unparseable NaN into exported JSON.
    std::ostringstream out;
    dist.writeJson(out);
    EXPECT_TRUE(jsonValid(out.str())) << out.str();
}

TEST(StatGroupTest, SingleSamplePercentilesEqualTheSample)
{
    StatGroup group("g");
    DistributionStat dist(group, "d", "x", 0.0, 100.0, 10);
    dist.sample(37.5);
    // One sample: every percentile is that sample exactly — no
    // interpolation across the bucket's width (p99 of one request is
    // that request's latency, not a bucket edge).
    EXPECT_DOUBLE_EQ(dist.percentile(0), 37.5);
    EXPECT_DOUBLE_EQ(dist.percentile(50), 37.5);
    EXPECT_DOUBLE_EQ(dist.percentile(99), 37.5);
    EXPECT_DOUBLE_EQ(dist.percentile(100), 37.5);
}

TEST(StatGroupTest, AllEqualSamplesPercentilesEqualTheSample)
{
    StatGroup group("g");
    DistributionStat dist(group, "d", "x", 0.0, 100.0, 10);
    for (int i = 0; i < 5; ++i)
        dist.sample(42.0);
    EXPECT_DOUBLE_EQ(dist.percentile(1), 42.0);
    EXPECT_DOUBLE_EQ(dist.percentile(99), 42.0);
}

TEST(StatGroupTest, DistributionPrintIncludesPercentiles)
{
    StatGroup group("g");
    DistributionStat dist(group, "d", "x", 0.0, 10.0, 5);
    for (int i = 0; i < 10; ++i)
        dist.sample(i);
    std::ostringstream out;
    dist.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("d.p50"), std::string::npos);
    EXPECT_NE(text.find("d.p95"), std::string::npos);
    EXPECT_NE(text.find("d.p99"), std::string::npos);
}

TEST(StatGroupTest, InvalidDistributionIsFatal)
{
    StatGroup group("g");
    EXPECT_THROW(DistributionStat(group, "d", "x", 0.0, 10.0, 0),
                 FatalError);
    EXPECT_THROW(DistributionStat(group, "d2", "x", 5.0, 5.0, 4),
                 FatalError);
}

TEST(StatGroupTest, DuplicateNamesAreFatal)
{
    StatGroup group("g");
    ScalarStat a(group, "same", "first");
    EXPECT_THROW(ScalarStat(group, "same", "second"), FatalError);
}

TEST(StatGroupTest, FindByName)
{
    StatGroup group("g");
    ScalarStat a(group, "alpha", "first");
    EXPECT_EQ(group.find("alpha"), &a);
    EXPECT_EQ(group.find("missing"), nullptr);
}

TEST(StatGroupTest, DumpFormat)
{
    StatGroup group("demo");
    ScalarStat counter(group, "hits", "cache hits");
    counter = 42;
    std::ostringstream out;
    group.dump(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("hits"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_NE(text.find("# cache hits"), std::string::npos);
}

TEST(PipelineStatsTest, MatchesResultTotals)
{
    Rng rng(71);
    const auto m = randomMatrix(64, 0.1, rng);
    const auto result = runPipeline(partition(m, 16), FormatKind::CSR);
    const PipelineStats stats(result);

    const auto *partitions = dynamic_cast<const ScalarStat *>(
        stats.group().find("partitions"));
    ASSERT_NE(partitions, nullptr);
    EXPECT_DOUBLE_EQ(partitions->value(),
                     static_cast<double>(result.partitions.size()));

    const auto *cycles = dynamic_cast<const ScalarStat *>(
        stats.group().find("total_cycles"));
    ASSERT_NE(cycles, nullptr);
    EXPECT_DOUBLE_EQ(cycles->value(),
                     static_cast<double>(result.totalCycles));

    const auto *sigma = dynamic_cast<const AverageStat *>(
        stats.group().find("sigma"));
    ASSERT_NE(sigma, nullptr);
    EXPECT_NEAR(sigma->mean(), result.meanSigma, 1e-12);
}

TEST(PipelineStatsTest, DumpContainsEveryStat)
{
    Rng rng(72);
    const auto m = randomMatrix(48, 0.1, rng);
    const auto result = runPipeline(partition(m, 16),
                                    FormatKind::DIA);
    const PipelineStats stats(result);
    std::ostringstream out;
    stats.dump(out);
    const std::string text = out.str();
    for (const char *needle :
         {"partitions", "total_cycles", "memory_cycles",
          "compute_cycles", "bytes_in", "useful_bytes", "sigma",
          "balance_ratio", "sigma_dist.samples"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
    EXPECT_NE(text.find("pipeline.DIA.p16"), std::string::npos);
}

TEST(StatGroupTest, JsonDumpIsValidAndComplete)
{
    StatGroup group("demo");
    ScalarStat counter(group, "hits", "cache hits");
    counter = 42;
    AverageStat avg(group, "latency", "mean latency");
    avg.sample(3.0);
    DistributionStat dist(group, "sizes", "tile sizes", 0.0, 8.0, 4);
    dist.sample(1.0);
    dist.sample(9.0); // overflow

    std::ostringstream out;
    group.dumpJson(out);
    const std::string json = out.str();
    EXPECT_TRUE(jsonValid(json)) << json;
    for (const char *needle :
         {"\"group\": \"demo\"", "\"hits\"", "\"scalar\"",
          "\"latency\"", "\"average\"", "\"sizes\"",
          "\"distribution\"", "\"buckets\"", "\"overflow\""}) {
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    }
}

TEST(StatGroupTest, JsonEscapesAndNonFiniteValues)
{
    StatGroup group("g\"quoted\"");
    ScalarStat weird(group, "inf", "an infinity");
    weird = std::numeric_limits<double>::infinity();
    std::ostringstream out;
    group.dumpJson(out);
    EXPECT_TRUE(jsonValid(out.str())) << out.str();
}

TEST(StatGroupTest, DumpGroupsJsonWrapsGroups)
{
    StatGroup a("a"), b("b");
    ScalarStat sa(a, "x", "x");
    ScalarStat sb(b, "y", "y");
    std::ostringstream out;
    dumpGroupsJson(out, {&a, &b});
    const std::string json = out.str();
    EXPECT_TRUE(jsonValid(json)) << json;
    EXPECT_NE(json.find("\"groups\""), std::string::npos);
    EXPECT_NE(json.find("\"group\": \"a\""), std::string::npos);
    EXPECT_NE(json.find("\"group\": \"b\""), std::string::npos);
}

TEST(PipelineStatsTest, JsonContainsEveryRegisteredStat)
{
    Rng rng(73);
    const auto m = randomMatrix(48, 0.1, rng);
    const auto result = runPipeline(partition(m, 16), FormatKind::CSR);
    const PipelineStats stats(result);

    std::ostringstream out;
    stats.dumpJson(out);
    const std::string json = out.str();
    EXPECT_TRUE(jsonValid(json));
    // Every stat of the text dump appears by name in the JSON.
    for (const StatBase *stat : stats.group().stats()) {
        EXPECT_NE(json.find("\"" + stat->name() + "\""),
                  std::string::npos)
            << stat->name();
    }
}

} // namespace
} // namespace copernicus
