/**
 * @file
 * End-to-end tests of the characterization service daemon: protocol
 * round trips, the admission queue's explicit-rejection contract,
 * per-request deadlines, graceful drain, the startup lint gate, and
 * golden comparisons of the advise/run_study endpoints against the
 * same computations run offline.
 *
 * Every test starts a real Server on a private Unix socket and talks
 * to it through ServeClient — the same wire path production clients
 * use. Labeled tsan: the server spans acceptor, reader, and pool
 * threads, so this suite doubles as the serve concurrency test under
 * -DCOPERNICUS_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/status.hh"
#include "core/advisor.hh"
#include "core/study.hh"
#include "matrix/stats.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

/** A private socket path per fixture so parallel ctest runs coexist. */
std::string
testSocketPath(const std::string &tag)
{
    static int counter = 0;
    return "/tmp/copernicus_test_" + std::to_string(::getpid()) + "_" +
           tag + "_" + std::to_string(counter++) + ".sock";
}

/** Start a quiet server; drain it on teardown. */
class ServeTest : public ::testing::Test
{
  protected:
    void
    startServer(std::size_t queueCapacity = 8)
    {
        savedLevel = logLevel();
        setLogLevel(LogLevel::Warn);
        ServeOptions options;
        options.socketPath = testSocketPath("serve");
        options.queueCapacity = queueCapacity;
        // The lint gate has its own dedicated test; skipping it here
        // keeps each fixture startup fast.
        options.checkRegistry = false;
        server = std::make_unique<Server>(std::move(options));
        server->start();
    }

    void
    TearDown() override
    {
        if (server) {
            server->beginShutdown();
            server->waitDrained();
            server.reset();
        }
        setLogLevel(savedLevel);
    }

    ServeClient
    client()
    {
        ServeClient c =
            ServeClient::connectUnix(server->options().socketPath);
        c.setReceiveTimeoutMs(30000);
        return c;
    }

    std::unique_ptr<Server> server;
    LogLevel savedLevel = LogLevel::Info;
};

TEST_F(ServeTest, PingRoundTripEchoesIdAndOp)
{
    startServer();
    ServeClient c = client();
    const JsonValue r1 = c.call("ping");
    EXPECT_TRUE(r1.boolOr("ok", false));
    EXPECT_DOUBLE_EQ(r1.numberOr("id", 0), 1);
    EXPECT_EQ(r1.stringOr("op", ""), "ping");
    const JsonValue *result = r1.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->boolOr("pong", false));

    // Ids increment per client and are echoed verbatim.
    const JsonValue r2 = c.call("ping");
    EXPECT_DOUBLE_EQ(r2.numberOr("id", 0), 2);
}

TEST_F(ServeTest, MalformedLineGetsBadRequestNotSilence)
{
    startServer();
    ServeClient c = client();
    const std::string raw = c.requestLine("this is not json");
    JsonValue response;
    ASSERT_TRUE(parseJson(raw, response));
    EXPECT_FALSE(response.boolOr("ok", true));
    EXPECT_EQ(response.stringOr("error", ""), "bad_request");
}

TEST_F(ServeTest, UnknownOpAndBadParamsAreBadRequests)
{
    startServer();
    ServeClient c = client();
    const std::string raw = c.requestLine("{\"op\": \"explode\"}");
    JsonValue response;
    ASSERT_TRUE(parseJson(raw, response));
    EXPECT_EQ(response.stringOr("error", ""), "bad_request");

    // A known op with missing params is rejected after admission,
    // with the op echoed back.
    const JsonValue advise = c.call("advise");
    EXPECT_FALSE(advise.boolOr("ok", true));
    EXPECT_EQ(advise.stringOr("error", ""), "bad_request");
    EXPECT_EQ(advise.stringOr("op", ""), "advise");
}

/**
 * Golden test of the advise endpoint: for three canonical matrix
 * families the served recommendation must equal what the offline
 * advisor (the format_advisor example's path) computes from the same
 * matrix.
 */
TEST_F(ServeTest, AdviseMatchesOfflineAdvisorOnCanonicalMatrices)
{
    startServer();
    ServeClient c = client();

    struct Golden
    {
        const char *name;
        std::string spec;
        TripletMatrix matrix;
    };
    Rng bandRng(1);
    Rng denseRng(2);
    Rng sparseRng(3);
    std::vector<Golden> goldens;
    goldens.push_back(
        {"band",
         "{\"kind\": \"band\", \"n\": 256, \"width\": 8, \"seed\": 1}",
         bandMatrix(256, 8, bandRng)});
    goldens.push_back({"random-dense",
                       "{\"kind\": \"random\", \"n\": 128, "
                       "\"density\": 0.3, \"seed\": 2}",
                       randomMatrix(128, 0.3, denseRng)});
    goldens.push_back({"random-sparse",
                       "{\"kind\": \"random\", \"n\": 256, "
                       "\"density\": 0.01, \"seed\": 3}",
                       randomMatrix(256, 0.01, sparseRng)});

    for (const Golden &golden : goldens) {
        for (const char *goal : {"latency", "power", "balanced"}) {
            const JsonValue response =
                c.call("advise", "{\"matrix\": " + golden.spec +
                                     ", \"goal\": \"" + goal + "\"}");
            ASSERT_TRUE(response.boolOr("ok", false))
                << golden.name << " " << goal;
            const JsonValue *result = response.find("result");
            ASSERT_NE(result, nullptr);

            const Recommendation offline =
                advise(computeStats(golden.matrix),
                       goalFromName(goal));
            EXPECT_EQ(result->stringOr("format", ""),
                      formatName(offline.format))
                << golden.name << " " << goal;
            EXPECT_DOUBLE_EQ(result->numberOr("partition_size", 0),
                             offline.partitionSize)
                << golden.name << " " << goal;
        }
    }
}

TEST_F(ServeTest, RunStudyMatchesOfflineStudy)
{
    startServer();
    ServeClient c = client();
    const JsonValue response = c.call(
        "run_study",
        "{\"matrix\": {\"kind\": \"random\", \"n\": 64, \"density\": "
        "0.1, \"seed\": 5}, \"partition_sizes\": [8, 16], "
        "\"formats\": [\"CSR\", \"COO\"]}");
    ASSERT_TRUE(response.boolOr("ok", false));
    const JsonValue *result = response.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_DOUBLE_EQ(result->numberOr("rows", 0), 4);

    StudyConfig cfg;
    cfg.partitionSizes = {8, 16};
    cfg.formats = {FormatKind::CSR, FormatKind::COO};
    cfg.jobs = 1;
    Study study(cfg);
    Rng rng(5);
    study.addWorkload("request", randomMatrix(64, 0.1, rng));
    const std::vector<FormatMetrics> offline =
        study.run().aggregateByFormat();

    const JsonValue *byFormat = result->find("by_format");
    ASSERT_NE(byFormat, nullptr);
    ASSERT_TRUE(byFormat->isArray());
    ASSERT_EQ(byFormat->elements.size(), offline.size());
    for (std::size_t i = 0; i < offline.size(); ++i) {
        const JsonValue &served = byFormat->elements[i];
        EXPECT_EQ(served.stringOr("format", ""),
                  formatName(offline[i].format));
        EXPECT_NEAR(served.numberOr("mean_sigma", -1),
                    offline[i].meanSigma, 1e-12);
        EXPECT_NEAR(served.numberOr("bw_util", -1),
                    offline[i].bandwidthUtilization, 1e-12);
    }
}

TEST_F(ServeTest, OverloadIsRejectedExplicitlyNeverHung)
{
    startServer(/*queueCapacity=*/1);

    // One client parks the only admission slot in a long sleep...
    std::thread sleeper([this] {
        ServeClient c = client();
        const JsonValue response =
            c.call("sleep", "{\"ms\": 600}");
        EXPECT_TRUE(response.boolOr("ok", false));
    });

    // ...so a second client's requests must bounce with queue_full —
    // an immediate explicit rejection, not a queued/hung request.
    ServeClient probe = client();
    bool sawQueueFull = false;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (!sawQueueFull &&
           std::chrono::steady_clock::now() < deadline) {
        const auto start = std::chrono::steady_clock::now();
        const JsonValue response = probe.call("ping");
        const double ms =
            std::chrono::duration_cast<
                std::chrono::duration<double, std::milli>>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (!response.boolOr("ok", true)) {
            EXPECT_EQ(response.stringOr("error", ""), "queue_full");
            // Rejection is immediate backpressure, not a timeout.
            EXPECT_LT(ms, 1000.0);
            sawQueueFull = true;
        }
    }
    EXPECT_TRUE(sawQueueFull);
    sleeper.join();
}

TEST_F(ServeTest, DeadlineCancelsSleepCooperatively)
{
    startServer();
    ServeClient c = client();
    const auto start = std::chrono::steady_clock::now();
    const JsonValue response =
        c.call("sleep", "{\"ms\": 30000}", /*timeoutMs=*/50);
    const double ms = std::chrono::duration_cast<
                          std::chrono::duration<double, std::milli>>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    EXPECT_FALSE(response.boolOr("ok", true));
    EXPECT_EQ(response.stringOr("error", ""), "deadline_exceeded");
    EXPECT_LT(ms, 5000.0);
}

TEST_F(ServeTest, DeadlineCancelsStudyBetweenDesignPoints)
{
    startServer();
    ServeClient c = client();
    // A sweep this size takes well over a millisecond, so the
    // cancelCheck poll at a partition boundary must fire.
    const JsonValue response = c.call(
        "run_study",
        "{\"matrix\": {\"kind\": \"random\", \"n\": 512, "
        "\"density\": 0.05, \"seed\": 1}}",
        /*timeoutMs=*/1);
    EXPECT_FALSE(response.boolOr("ok", true));
    EXPECT_EQ(response.stringOr("error", ""), "deadline_exceeded");
}

TEST_F(ServeTest, GracefulDrainFinishesInflightAndRejectsNew)
{
    startServer(/*queueCapacity=*/4);

    // An in-flight request started before the drain...
    std::thread inflight([this] {
        ServeClient c = client();
        const JsonValue response = c.call("sleep", "{\"ms\": 400}");
        // ...must still be answered ok, not dropped.
        EXPECT_TRUE(response.boolOr("ok", false));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    ServeClient c = client();
    const JsonValue shutdown = c.call("shutdown");
    EXPECT_TRUE(shutdown.boolOr("ok", false));

    // The same connection stays readable during the drain, but new
    // requests are shed with shutting_down.
    const JsonValue late = c.call("ping");
    EXPECT_FALSE(late.boolOr("ok", true));
    EXPECT_EQ(late.stringOr("error", ""), "shutting_down");

    server->waitDrained();
    inflight.join();

    // The request-lane trace recorded the slept request as completed.
    bool sawSleepOk = false;
    for (const RequestSpan &span : server->spans())
        if (span.endpoint == Endpoint::Sleep && span.outcome == "ok")
            sawSleepOk = true;
    EXPECT_TRUE(sawSleepOk);
    server.reset();
}

TEST_F(ServeTest, StatsEndpointExportsServeGroup)
{
    startServer();
    ServeClient c = client();
    (void)c.call("ping");
    (void)c.call("ping");
    const JsonValue response = c.call("stats");
    ASSERT_TRUE(response.boolOr("ok", false));
    const JsonValue *result = response.find("result");
    ASSERT_NE(result, nullptr);
    const JsonValue *groups = result->find("groups");
    ASSERT_NE(groups, nullptr);
    ASSERT_TRUE(groups->isArray());

    bool sawServe = false;
    for (const JsonValue &group : groups->elements) {
        if (group.stringOr("group", "") != "serve")
            continue;
        sawServe = true;
        // The ping counters cover at least the two calls above.
        const JsonValue *stats = group.find("stats");
        ASSERT_NE(stats, nullptr);
        double pingCompleted = -1;
        for (const JsonValue &stat : stats->elements)
            if (stat.stringOr("name", "") == "ping.completed")
                pingCompleted = stat.numberOr("value", -1);
        EXPECT_GE(pingCompleted, 2.0);
    }
    EXPECT_TRUE(sawServe);
}

TEST_F(ServeTest, ValidateTileReportsCleanEncodings)
{
    startServer();
    ServeClient c = client();
    const JsonValue response = c.call(
        "validate_tile",
        "{\"matrix\": {\"kind\": \"random\", \"n\": 64, \"density\": "
        "0.1, \"seed\": 9}, \"partition_size\": 16, \"formats\": "
        "[\"CSR\", \"COO\", \"ELL\"]}");
    ASSERT_TRUE(response.boolOr("ok", false));
    const JsonValue *result = response.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->boolOr("ok", false));
    EXPECT_GT(result->numberOr("checked", 0), 0.0);
    const JsonValue *violations = result->find("violations");
    ASSERT_NE(violations, nullptr);
    EXPECT_TRUE(violations->elements.empty());
}

TEST(ServeLintGateTest, RefusesToStartOnContractViolation)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    ServeOptions options;
    options.socketPath = testSocketPath("lintgate");
    options.checkRegistry = true;
    // sellCsWindow must be a multiple of sellSlice; 6 % 4 != 0 is a
    // contract error the gate must refuse.
    options.lintParams.sellSlice = 4;
    options.lintParams.sellCsWindow = 6;
    Server server(std::move(options));
    try {
        server.start();
        FAIL() << "start() accepted a contract-violating registry";
    } catch (const FatalError &e) {
        // The diagnostic names the violated constraint (either the
        // registry's own parameter validation or the contract pass).
        const std::string what = e.what();
        EXPECT_TRUE(what.find("contract") != std::string::npos ||
                    what.find("slice") != std::string::npos)
            << what;
    }
    setLogLevel(saved);
}

TEST(ServeLintGateTest, StartsCleanlyOnDefaultRegistry)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    ServeOptions options;
    options.socketPath = testSocketPath("lintok");
    options.checkRegistry = true;
    Server server(std::move(options));
    EXPECT_NO_THROW(server.start());
    server.beginShutdown();
    server.waitDrained();
    setLogLevel(saved);
}

} // namespace
} // namespace copernicus
