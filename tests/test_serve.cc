/**
 * @file
 * End-to-end tests of the characterization service daemon: protocol
 * round trips, the admission queue's explicit-rejection contract,
 * per-request deadlines, graceful drain, the startup lint gate, and
 * golden comparisons of the advise/run_study endpoints against the
 * same computations run offline.
 *
 * Every test starts a real Server on a private Unix socket and talks
 * to it through ServeClient — the same wire path production clients
 * use. Labeled tsan: the server spans acceptor, reader, and pool
 * threads, so this suite doubles as the serve concurrency test under
 * -DCOPERNICUS_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/logging.hh"
#include "common/prometheus.hh"
#include "common/rng.hh"
#include "common/status.hh"
#include "common/trace_context.hh"
#include "core/advisor.hh"
#include "core/study.hh"
#include "matrix/stats.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "trace/span.hh"
#include "workloads/generators.hh"

namespace copernicus {
namespace {

/** A private socket path per fixture so parallel ctest runs coexist. */
std::string
testSocketPath(const std::string &tag)
{
    static int counter = 0;
    return "/tmp/copernicus_test_" + std::to_string(::getpid()) + "_" +
           tag + "_" + std::to_string(counter++) + ".sock";
}

/** Start a quiet server; drain it on teardown. */
class ServeTest : public ::testing::Test
{
  protected:
    void
    startServer(std::size_t queueCapacity = 8, unsigned workers = 0,
                const std::string &tracePath = "")
    {
        savedLevel = logLevel();
        setLogLevel(LogLevel::Warn);
        ServeOptions options;
        options.socketPath = testSocketPath("serve");
        options.queueCapacity = queueCapacity;
        options.workers = workers;
        options.tracePath = tracePath;
        // The lint gate has its own dedicated test; skipping it here
        // keeps each fixture startup fast.
        options.checkRegistry = false;
        server = std::make_unique<Server>(std::move(options));
        server->start();
    }

    void
    TearDown() override
    {
        if (server) {
            server->beginShutdown();
            server->waitDrained();
            server.reset();
        }
        setLogLevel(savedLevel);
    }

    ServeClient
    client()
    {
        ServeClient c =
            ServeClient::connectUnix(server->options().socketPath);
        c.setReceiveTimeoutMs(30000);
        return c;
    }

    std::unique_ptr<Server> server;
    LogLevel savedLevel = LogLevel::Info;
};

TEST_F(ServeTest, PingRoundTripEchoesIdAndOp)
{
    startServer();
    ServeClient c = client();
    const JsonValue r1 = c.call("ping");
    EXPECT_TRUE(r1.boolOr("ok", false));
    EXPECT_DOUBLE_EQ(r1.numberOr("id", 0), 1);
    EXPECT_EQ(r1.stringOr("op", ""), "ping");
    const JsonValue *result = r1.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->boolOr("pong", false));

    // Ids increment per client and are echoed verbatim.
    const JsonValue r2 = c.call("ping");
    EXPECT_DOUBLE_EQ(r2.numberOr("id", 0), 2);
}

TEST_F(ServeTest, MalformedLineGetsBadRequestNotSilence)
{
    startServer();
    ServeClient c = client();
    const std::string raw = c.requestLine("this is not json");
    JsonValue response;
    ASSERT_TRUE(parseJson(raw, response));
    EXPECT_FALSE(response.boolOr("ok", true));
    EXPECT_EQ(response.stringOr("error", ""), "bad_request");
}

TEST_F(ServeTest, UnknownOpAndBadParamsAreBadRequests)
{
    startServer();
    ServeClient c = client();
    const std::string raw = c.requestLine("{\"op\": \"explode\"}");
    JsonValue response;
    ASSERT_TRUE(parseJson(raw, response));
    EXPECT_EQ(response.stringOr("error", ""), "bad_request");

    // A known op with missing params is rejected after admission,
    // with the op echoed back.
    const JsonValue advise = c.call("advise");
    EXPECT_FALSE(advise.boolOr("ok", true));
    EXPECT_EQ(advise.stringOr("error", ""), "bad_request");
    EXPECT_EQ(advise.stringOr("op", ""), "advise");
}

/**
 * Golden test of the advise endpoint: for three canonical matrix
 * families the served recommendation must equal what the offline
 * advisor (the format_advisor example's path) computes from the same
 * matrix.
 */
TEST_F(ServeTest, AdviseMatchesOfflineAdvisorOnCanonicalMatrices)
{
    startServer();
    ServeClient c = client();

    struct Golden
    {
        const char *name;
        std::string spec;
        TripletMatrix matrix;
    };
    Rng bandRng(1);
    Rng denseRng(2);
    Rng sparseRng(3);
    std::vector<Golden> goldens;
    goldens.push_back(
        {"band",
         "{\"kind\": \"band\", \"n\": 256, \"width\": 8, \"seed\": 1}",
         bandMatrix(256, 8, bandRng)});
    goldens.push_back({"random-dense",
                       "{\"kind\": \"random\", \"n\": 128, "
                       "\"density\": 0.3, \"seed\": 2}",
                       randomMatrix(128, 0.3, denseRng)});
    goldens.push_back({"random-sparse",
                       "{\"kind\": \"random\", \"n\": 256, "
                       "\"density\": 0.01, \"seed\": 3}",
                       randomMatrix(256, 0.01, sparseRng)});

    for (const Golden &golden : goldens) {
        for (const char *goal : {"latency", "power", "balanced"}) {
            const JsonValue response =
                c.call("advise", "{\"matrix\": " + golden.spec +
                                     ", \"goal\": \"" + goal + "\"}");
            ASSERT_TRUE(response.boolOr("ok", false))
                << golden.name << " " << goal;
            const JsonValue *result = response.find("result");
            ASSERT_NE(result, nullptr);

            const Recommendation offline =
                advise(computeStats(golden.matrix),
                       goalFromName(goal));
            EXPECT_EQ(result->stringOr("format", ""),
                      formatName(offline.format))
                << golden.name << " " << goal;
            EXPECT_DOUBLE_EQ(result->numberOr("partition_size", 0),
                             offline.partitionSize)
                << golden.name << " " << goal;
        }
    }
}

TEST_F(ServeTest, RunStudyMatchesOfflineStudy)
{
    startServer();
    ServeClient c = client();
    const JsonValue response = c.call(
        "run_study",
        "{\"matrix\": {\"kind\": \"random\", \"n\": 64, \"density\": "
        "0.1, \"seed\": 5}, \"partition_sizes\": [8, 16], "
        "\"formats\": [\"CSR\", \"COO\"]}");
    ASSERT_TRUE(response.boolOr("ok", false));
    const JsonValue *result = response.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_DOUBLE_EQ(result->numberOr("rows", 0), 4);

    StudyConfig cfg;
    cfg.partitionSizes = {8, 16};
    cfg.formats = {FormatKind::CSR, FormatKind::COO};
    cfg.jobs = 1;
    Study study(cfg);
    Rng rng(5);
    study.addWorkload("request", randomMatrix(64, 0.1, rng));
    const std::vector<FormatMetrics> offline =
        study.run().aggregateByFormat();

    const JsonValue *byFormat = result->find("by_format");
    ASSERT_NE(byFormat, nullptr);
    ASSERT_TRUE(byFormat->isArray());
    ASSERT_EQ(byFormat->elements.size(), offline.size());
    for (std::size_t i = 0; i < offline.size(); ++i) {
        const JsonValue &served = byFormat->elements[i];
        EXPECT_EQ(served.stringOr("format", ""),
                  formatName(offline[i].format));
        EXPECT_NEAR(served.numberOr("mean_sigma", -1),
                    offline[i].meanSigma, 1e-12);
        EXPECT_NEAR(served.numberOr("bw_util", -1),
                    offline[i].bandwidthUtilization, 1e-12);
    }
}

TEST_F(ServeTest, OverloadIsRejectedExplicitlyNeverHung)
{
    startServer(/*queueCapacity=*/1);

    // One client parks the only admission slot in a long sleep...
    std::thread sleeper([this] {
        ServeClient c = client();
        const JsonValue response =
            c.call("sleep", "{\"ms\": 600}");
        EXPECT_TRUE(response.boolOr("ok", false));
    });

    // Wait until the sleeper actually holds the slot before probing:
    // otherwise a probe ping can win the race for the single slot and
    // bounce the sleeper's own request instead.
    const auto admitDeadline = std::chrono::steady_clock::now() +
                               std::chrono::seconds(10);
    while (server->statsJson().find("\"queue_depth\": 1") ==
               std::string::npos &&
           std::chrono::steady_clock::now() < admitDeadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));

    // ...so a second client's requests must bounce with queue_full —
    // an immediate explicit rejection, not a queued/hung request.
    ServeClient probe = client();
    bool sawQueueFull = false;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (!sawQueueFull &&
           std::chrono::steady_clock::now() < deadline) {
        const auto start = std::chrono::steady_clock::now();
        const JsonValue response = probe.call("ping");
        const double ms =
            std::chrono::duration_cast<
                std::chrono::duration<double, std::milli>>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (!response.boolOr("ok", true)) {
            EXPECT_EQ(response.stringOr("error", ""), "queue_full");
            // Rejection is immediate backpressure, not a timeout.
            EXPECT_LT(ms, 1000.0);
            sawQueueFull = true;
        }
    }
    EXPECT_TRUE(sawQueueFull);
    sleeper.join();
}

TEST_F(ServeTest, DeadlineCancelsSleepCooperatively)
{
    startServer();
    ServeClient c = client();
    const auto start = std::chrono::steady_clock::now();
    const JsonValue response =
        c.call("sleep", "{\"ms\": 30000}", /*timeoutMs=*/50);
    const double ms = std::chrono::duration_cast<
                          std::chrono::duration<double, std::milli>>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    EXPECT_FALSE(response.boolOr("ok", true));
    EXPECT_EQ(response.stringOr("error", ""), "deadline_exceeded");
    EXPECT_LT(ms, 5000.0);
}

TEST_F(ServeTest, DeadlineCancelsStudyBetweenDesignPoints)
{
    startServer();
    ServeClient c = client();
    // A sweep this size takes well over a millisecond, so the
    // cancelCheck poll at a partition boundary must fire.
    const JsonValue response = c.call(
        "run_study",
        "{\"matrix\": {\"kind\": \"random\", \"n\": 512, "
        "\"density\": 0.05, \"seed\": 1}}",
        /*timeoutMs=*/1);
    EXPECT_FALSE(response.boolOr("ok", true));
    EXPECT_EQ(response.stringOr("error", ""), "deadline_exceeded");
}

TEST_F(ServeTest, GracefulDrainFinishesInflightAndRejectsNew)
{
    startServer(/*queueCapacity=*/4);

    // An in-flight request started before the drain...
    std::thread inflight([this] {
        ServeClient c = client();
        const JsonValue response = c.call("sleep", "{\"ms\": 400}");
        // ...must still be answered ok, not dropped.
        EXPECT_TRUE(response.boolOr("ok", false));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    ServeClient c = client();
    const JsonValue shutdown = c.call("shutdown");
    EXPECT_TRUE(shutdown.boolOr("ok", false));

    // The same connection stays readable during the drain, but new
    // requests are shed with shutting_down.
    const JsonValue late = c.call("ping");
    EXPECT_FALSE(late.boolOr("ok", true));
    EXPECT_EQ(late.stringOr("error", ""), "shutting_down");

    server->waitDrained();
    inflight.join();

    // The request-lane trace recorded the slept request as completed.
    bool sawSleepOk = false;
    for (const RequestSpan &span : server->spans())
        if (span.endpoint == Endpoint::Sleep && span.outcome == "ok")
            sawSleepOk = true;
    EXPECT_TRUE(sawSleepOk);
    server.reset();
}

TEST_F(ServeTest, StatsEndpointExportsServeGroup)
{
    startServer();
    ServeClient c = client();
    (void)c.call("ping");
    (void)c.call("ping");
    const JsonValue response = c.call("stats");
    ASSERT_TRUE(response.boolOr("ok", false));
    const JsonValue *result = response.find("result");
    ASSERT_NE(result, nullptr);
    const JsonValue *groups = result->find("groups");
    ASSERT_NE(groups, nullptr);
    ASSERT_TRUE(groups->isArray());

    bool sawServe = false;
    for (const JsonValue &group : groups->elements) {
        if (group.stringOr("group", "") != "serve")
            continue;
        sawServe = true;
        // The ping counters cover at least the two calls above.
        const JsonValue *stats = group.find("stats");
        ASSERT_NE(stats, nullptr);
        double pingCompleted = -1;
        for (const JsonValue &stat : stats->elements)
            if (stat.stringOr("name", "") == "ping.completed")
                pingCompleted = stat.numberOr("value", -1);
        EXPECT_GE(pingCompleted, 2.0);
    }
    EXPECT_TRUE(sawServe);
}

TEST_F(ServeTest, ValidateTileReportsCleanEncodings)
{
    startServer();
    ServeClient c = client();
    const JsonValue response = c.call(
        "validate_tile",
        "{\"matrix\": {\"kind\": \"random\", \"n\": 64, \"density\": "
        "0.1, \"seed\": 9}, \"partition_size\": 16, \"formats\": "
        "[\"CSR\", \"COO\", \"ELL\"]}");
    ASSERT_TRUE(response.boolOr("ok", false));
    const JsonValue *result = response.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->boolOr("ok", false));
    EXPECT_GT(result->numberOr("checked", 0), 0.0);
    const JsonValue *violations = result->find("violations");
    ASSERT_NE(violations, nullptr);
    EXPECT_TRUE(violations->elements.empty());
}

TEST_F(ServeTest, BadLineCountersClassifyFrameErrors)
{
    startServer();
    ServeClient c = client();

    // One of each failure class; every one must still get exactly one
    // bad_request response (the never-silent contract), and the
    // classified counters must tell them apart.
    for (const char *line :
         {"this is not json",            // malformed_json
          "[1, 2]",                      // not an object -> other
          "{\"id\": 3}",                 // missing op -> other
          "{\"op\": \"warp_drive\"}",    // unknown_op
          "{\"op\": \"ping\", \"params\": 7}"}) { // bad params -> other
        const std::string raw = c.requestLine(line);
        JsonValue response;
        ASSERT_TRUE(parseJson(raw, response)) << raw;
        EXPECT_FALSE(response.boolOr("ok", true));
        EXPECT_EQ(response.stringOr("error", ""), "bad_request");
    }

    const JsonValue stats = c.call("stats");
    ASSERT_TRUE(stats.boolOr("ok", false));
    const JsonValue *result = stats.find("result");
    ASSERT_NE(result, nullptr);
    std::map<std::string, double> values;
    const JsonValue *groups = result->find("groups");
    ASSERT_NE(groups, nullptr);
    for (const JsonValue &group : groups->elements) {
        if (group.stringOr("group", "") != "serve")
            continue;
        const JsonValue *list = group.find("stats");
        ASSERT_NE(list, nullptr);
        for (const JsonValue &stat : list->elements)
            values[stat.stringOr("name", "")] =
                stat.numberOr("value", -1);
    }
    EXPECT_DOUBLE_EQ(values["bad_lines"], 5);
    EXPECT_DOUBLE_EQ(values["bad_lines.malformed_json"], 1);
    EXPECT_DOUBLE_EQ(values["bad_lines.unknown_op"], 1);
    EXPECT_DOUBLE_EQ(values["bad_lines.other"], 3);
}

TEST_F(ServeTest, MetricsEndpointPassesExpositionValidator)
{
    startServer();
    ServeClient c = client();
    (void)c.call("ping");
    (void)c.call("ping");

    const JsonValue response = c.call("metrics");
    ASSERT_TRUE(response.boolOr("ok", false));
    const JsonValue *result = response.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_NE(result->stringOr("content_type", "")
                  .find("version=0.0.4"),
              std::string::npos);
    const std::string body = result->stringOr("body", "");
    ASSERT_FALSE(body.empty());

    std::string error;
    EXPECT_TRUE(validatePrometheusText(body, error)) << error;

    // The scrape carries the request counters and the latency
    // histogram for the pings above.
    EXPECT_NE(body.find("copernicus_serve_requests_completed_total"
                        "{endpoint=\"ping\"} 2"),
              std::string::npos)
        << body;
    EXPECT_NE(
        body.find("copernicus_serve_request_duration_seconds_bucket"),
        std::string::npos);
    EXPECT_NE(body.find("copernicus_serve_queue_depth"),
              std::string::npos);
}

TEST_F(ServeTest, DumpFlightRecInlineAndToFile)
{
    startServer();
    ServeClient c = client();
    (void)c.call("ping");

    // Inline: the dump document is the result itself.
    const JsonValue inlineDump = c.call("dump_flightrec");
    ASSERT_TRUE(inlineDump.boolOr("ok", false));
    const JsonValue *doc = inlineDump.find("result");
    ASSERT_NE(doc, nullptr);
    const JsonValue *events = doc->find("wide_events");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    bool sawPing = false;
    for (const JsonValue &event : events->elements)
        if (event.stringOr("type", "") == "request" &&
            event.stringOr("endpoint", "") == "ping")
            sawPing = true;
    EXPECT_TRUE(sawPing);

    // To a file: the response reports counts, the file holds the doc.
    const std::string path =
        "/tmp/copernicus_test_" + std::to_string(::getpid()) +
        "_flightrec.json";
    const JsonValue fileDump = c.call(
        "dump_flightrec", "{\"path\": \"" + path + "\"}");
    ASSERT_TRUE(fileDump.boolOr("ok", false));
    const JsonValue *result = fileDump.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_GE(result->numberOr("wide_events", 0), 1.0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonValue parsed;
    EXPECT_TRUE(parseJson(buf.str(), parsed));
    EXPECT_NE(parsed.find("wide_events"), nullptr);
    std::remove(path.c_str());
}

/**
 * The golden span-tree check (tentpole acceptance): one run_study
 * request must yield one causally-linked tree,
 *
 *   client.run_study
 *     -> serve.request
 *          -> serve.queue
 *          -> serve.handler
 *               -> study.run
 *                    -> study.partition, study.encode...
 *
 * independent of how many lanes the handler pool has — the tree's
 * shape is the contract, the lanes are an implementation detail.
 */
void
checkRunStudySpanTree(ServeClient &c, Server &server)
{
    setCurrentTraceContext(TraceContext{});
    const JsonValue response = c.call(
        "run_study",
        "{\"matrix\": {\"kind\": \"random\", \"n\": 48, \"density\": "
        "0.1, \"seed\": 11}, \"partition_sizes\": [16], "
        "\"formats\": [\"CSR\", \"COO\"]}");
    ASSERT_TRUE(response.boolOr("ok", false));
    const std::string traceHex = response.stringOr("trace_id", "");
    ASSERT_FALSE(traceHex.empty());
    const std::uint64_t traceId = traceIdFromHex(traceHex);
    ASSERT_NE(traceId, 0u);

    // Drain before inspecting: span records land as handlers unwind.
    server.beginShutdown();
    server.waitDrained();

    const std::vector<SpanRecord> spans =
        SpanCollector::global().spansForTrace(traceId);
    std::map<std::string, std::vector<SpanRecord>> byName;
    for (const SpanRecord &span : spans)
        byName[span.name].push_back(span);

    for (const char *unique :
         {"client.run_study", "serve.request", "serve.queue",
          "serve.handler", "study.run", "study.partition"})
        ASSERT_EQ(byName[unique].size(), 1u)
            << unique << " count in trace " << traceHex;
    // One encode span per (format, partition size) design point.
    ASSERT_EQ(byName["study.encode"].size(), 2u);

    const SpanRecord &clientSpan = byName["client.run_study"][0];
    const SpanRecord &request = byName["serve.request"][0];
    const SpanRecord &queue = byName["serve.queue"][0];
    const SpanRecord &handler = byName["serve.handler"][0];
    const SpanRecord &run = byName["study.run"][0];
    const SpanRecord &part = byName["study.partition"][0];

    // Parent/child edges, root to leaves.
    EXPECT_EQ(clientSpan.parentSpanId, 0u);
    EXPECT_EQ(request.parentSpanId, clientSpan.spanId);
    EXPECT_EQ(queue.parentSpanId, request.spanId);
    EXPECT_EQ(handler.parentSpanId, request.spanId);
    EXPECT_EQ(run.parentSpanId, handler.spanId);
    EXPECT_EQ(part.parentSpanId, run.spanId);
    for (const SpanRecord &encode : byName["study.encode"])
        EXPECT_EQ(encode.parentSpanId, run.spanId);

    // Interval sanity on the shared clock: queue precedes handler,
    // children nest inside study.run.
    EXPECT_LE(queue.startUs, handler.startUs);
    EXPECT_LE(run.startUs, part.startUs);
    EXPECT_LE(part.endUs, run.endUs);
}

TEST_F(ServeTest, SpanTreeGoldenAtOneWorker)
{
    startServer(/*queueCapacity=*/8, /*workers=*/1);
    ServeClient c = client();
    checkRunStudySpanTree(c, *server);
    server.reset();
}

TEST_F(ServeTest, SpanTreeGoldenAtFourWorkers)
{
    startServer(/*queueCapacity=*/8, /*workers=*/4);
    ServeClient c = client();
    checkRunStudySpanTree(c, *server);
    server.reset();
}

/**
 * End-to-end acceptance: one run_study request is visible in all
 * three observability surfaces at once — its span tree in the drained
 * Chrome trace, its wide event in the flight recorder, and its
 * latency in the Prometheus scrape.
 */
TEST_F(ServeTest, ObservabilityEndToEndForOneRequest)
{
    const std::string tracePath =
        "/tmp/copernicus_test_" + std::to_string(::getpid()) +
        "_serve_trace.json";
    startServer(/*queueCapacity=*/8, /*workers=*/2, tracePath);
    ServeClient c = client();
    setCurrentTraceContext(TraceContext{});

    const JsonValue response = c.call(
        "run_study",
        "{\"matrix\": {\"kind\": \"band\", \"n\": 64, \"width\": 4, "
        "\"seed\": 2}, \"partition_sizes\": [16], "
        "\"formats\": [\"CSR\"]}");
    ASSERT_TRUE(response.boolOr("ok", false));
    const std::string traceHex = response.stringOr("trace_id", "");
    ASSERT_FALSE(traceHex.empty());

    // Surface 1: the latency histogram counts the request.
    const JsonValue metrics = c.call("metrics");
    ASSERT_TRUE(metrics.boolOr("ok", false));
    const std::string body =
        metrics.find("result")->stringOr("body", "");
    std::string error;
    EXPECT_TRUE(validatePrometheusText(body, error)) << error;
    EXPECT_NE(
        body.find("copernicus_serve_requests_completed_total"
                  "{endpoint=\"run_study\"} 1"),
        std::string::npos)
        << body;

    // Surface 2: the wide event is retrievable from the recorder and
    // carries the same trace id the response echoed.
    const JsonValue dump = c.call("dump_flightrec");
    ASSERT_TRUE(dump.boolOr("ok", false));
    bool sawWideEvent = false;
    for (const JsonValue &event :
         dump.find("result")->find("wide_events")->elements) {
        if (event.stringOr("endpoint", "") == "run_study" &&
            event.stringOr("trace_id", "") == traceHex) {
            sawWideEvent = true;
            EXPECT_EQ(event.stringOr("outcome", ""), "ok");
            EXPECT_GE(event.numberOr("latency_us", -1), 0.0);
            EXPECT_GE(event.numberOr("queue_wait_us", -1), 0.0);
            EXPECT_DOUBLE_EQ(event.numberOr("formats_swept", 0), 1);
        }
    }
    EXPECT_TRUE(sawWideEvent);

    // Surface 3: after drain, the Chrome trace holds the span tree —
    // span events whose args carry our trace id, with the causal
    // edges intact (checked structurally above; here the artifact).
    server->beginShutdown();
    server->waitDrained();
    server.reset();

    std::ifstream in(tracePath);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string trace = buf.str();
    JsonValue parsed;
    ASSERT_TRUE(parseJson(trace, parsed));
    std::size_t spanEvents = 0;
    const JsonValue *traceEvents = parsed.find("traceEvents");
    ASSERT_NE(traceEvents, nullptr);
    ASSERT_TRUE(traceEvents->isArray());
    for (const JsonValue &event : traceEvents->elements) {
        const JsonValue *args = event.find("args");
        if (args != nullptr &&
            args->stringOr("trace_id", "") == traceHex)
            ++spanEvents;
    }
    // client.run_study + serve.request/queue/handler + study.run +
    // study.partition + one study.encode = at least 7 span events.
    EXPECT_GE(spanEvents, 7u);
    std::remove(tracePath.c_str());
}

TEST(ServeLintGateTest, RefusesToStartOnContractViolation)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    ServeOptions options;
    options.socketPath = testSocketPath("lintgate");
    options.checkRegistry = true;
    // sellCsWindow must be a multiple of sellSlice; 6 % 4 != 0 is a
    // contract error the gate must refuse.
    options.lintParams.sellSlice = 4;
    options.lintParams.sellCsWindow = 6;
    Server server(std::move(options));
    try {
        server.start();
        FAIL() << "start() accepted a contract-violating registry";
    } catch (const FatalError &e) {
        // The diagnostic names the violated constraint (either the
        // registry's own parameter validation or the contract pass).
        const std::string what = e.what();
        EXPECT_TRUE(what.find("contract") != std::string::npos ||
                    what.find("slice") != std::string::npos)
            << what;
    }
    setLogLevel(saved);
}

TEST(ServeLintGateTest, StartsCleanlyOnDefaultRegistry)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    ServeOptions options;
    options.socketPath = testSocketPath("lintok");
    options.checkRegistry = true;
    Server server(std::move(options));
    EXPECT_NO_THROW(server.start());
    server.beginShutdown();
    server.waitDrained();
    setLogLevel(saved);
}

} // namespace
} // namespace copernicus
