/**
 * @file
 * Worst-case buffer-model tests: Section 2's maximum-length formulas,
 * and the safety property that no real encoding ever exceeds its
 * allocated worst case.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/status.hh"
#include "fpga/buffer_model.hh"
#include "formats/registry.hh"

namespace copernicus {
namespace {

Bytes
elementsOf(FormatKind kind, Index p, const std::string &array)
{
    for (const auto &buffer : bufferRequirements(kind, p))
        if (buffer.array == array)
            return buffer.maxElements;
    ADD_FAILURE() << "no buffer named " << array;
    return 0;
}

TEST(BufferModelTest, Section2MaximumLengths)
{
    const Index n = 16;
    // CSR: offsets length n, values/indices up to n^2.
    EXPECT_EQ(elementsOf(FormatKind::CSR, n, "offsets"), 16u);
    EXPECT_EQ(elementsOf(FormatKind::CSR, n, "values"), 256u);
    EXPECT_EQ(elementsOf(FormatKind::CSR, n, "colInx"), 256u);
    // COO: 3n^2 tuple words.
    EXPECT_EQ(elementsOf(FormatKind::COO, n, "tuples"), 3u * 256u);
    // BCSR (b=4): offsets n/b, block indices (n/b)^2.
    EXPECT_EQ(elementsOf(FormatKind::BCSR, n, "offsets"), 4u);
    EXPECT_EQ(elementsOf(FormatKind::BCSR, n, "colInx"), 16u);
    // DIA: (2n-1) diagonals of n+1 words.
    EXPECT_EQ(elementsOf(FormatKind::DIA, n, "diags"), 31u * 17u);
}

TEST(BufferModelTest, ZeroPartitionIsFatal)
{
    EXPECT_THROW(bufferRequirements(FormatKind::CSR, 0), FatalError);
}

TEST(BufferModelTest, TotalBitsSumBuffers)
{
    for (FormatKind kind : allFormats()) {
        Bytes sum = 0;
        for (const auto &buffer : bufferRequirements(kind, 16))
            sum += buffer.bits();
        EXPECT_EQ(totalBufferBits(kind, 16), sum) << formatName(kind);
        EXPECT_GT(sum, 0u) << formatName(kind);
    }
}

TEST(BufferModelTest, DenseIsTheSmallestAllocationAtFullDensity)
{
    // Dense allocates exactly n^2 values; every sparse format's worst
    // case is at least that (the paper's point that the worst-case
    // allocations, unlike the transfers, do not shrink).
    const Bytes dense = totalBufferBits(FormatKind::Dense, 16);
    for (FormatKind kind : sparseFormats()) {
        EXPECT_GE(totalBufferBits(kind, 16), dense)
            << formatName(kind);
    }
}

/** No encoding of any tile may exceed its format's allocation. */
class BufferBoundTest : public testing::TestWithParam<FormatKind>
{
};

TEST_P(BufferBoundTest, EncodingsFitTheWorstCase)
{
    const FormatKind kind = GetParam();
    for (Index p : {8u, 16u, 32u}) {
        const Bytes budget_bits = totalBufferBits(kind, p);
        for (double density : {0.05, 0.5, 1.0}) {
            Rng rng(p + static_cast<std::uint64_t>(density * 100));
            Tile tile(p);
            for (Index r = 0; r < p; ++r)
                for (Index c = 0; c < p; ++c)
                    if (rng.chance(density))
                        tile(r, c) =
                            static_cast<Value>(rng.range(0.5, 1.5));
            const auto encoded = defaultCodec(kind).encode(tile);
            EXPECT_LE(encoded->totalBytes() * 8, budget_bits)
                << formatName(kind) << " p=" << p << " d=" << density;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, BufferBoundTest,
                         testing::ValuesIn(allFormats()),
                         [](const testing::TestParamInfo<FormatKind> &i) {
                             return std::string(formatName(i.param));
                         });

} // namespace
} // namespace copernicus
