/**
 * @file
 * Figure 8: balance ratio — the relationship between memory and compute
 * latency per format and partition size for the three workload classes.
 * Points with ratio < 1 sit below the paper's balance line
 * (compute-bound); > 1 is memory-bound.
 */

#include <iostream>

#include "analysis/ascii_plot.hh"
#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

namespace {

/** One-character glyph per paper format, shared with the legend. */
char
glyphFor(FormatKind kind)
{
    switch (kind) {
      case FormatKind::Dense: return 'd';
      case FormatKind::CSR: return 'r';
      case FormatKind::BCSR: return 'B';
      case FormatKind::CSC: return 'c';
      case FormatKind::LIL: return 'L';
      case FormatKind::ELL: return 'E';
      case FormatKind::COO: return 'o';
      case FormatKind::DIA: return 'D';
      default: return '?';
    }
}

void
runClass(const char *label, benchutil::WorkloadSet workloads,
         TableWriter &table, AsciiPlot &plot)
{
    Study study{StudyConfig{}};
    for (auto &[name, matrix] : workloads)
        study.addWorkload(name, std::move(matrix));
    const auto result = study.run();

    for (FormatKind kind : paperFormats()) {
        for (Index p : {8u, 16u, 32u}) {
            Cycles memory = 0, compute = 0;
            double ratio_sum = 0;
            std::size_t count = 0;
            for (const auto &r : result.rows) {
                if (r.format != kind || r.partitionSize != p)
                    continue;
                memory += r.memoryCycles;
                compute += r.computeCycles;
                ratio_sum += r.balanceRatio;
                ++count;
            }
            table.addRow({label, std::string(formatName(kind)),
                          std::to_string(p), std::to_string(memory),
                          std::to_string(compute),
                          TableWriter::num(ratio_sum / count, 4)});
            plot.add(static_cast<double>(compute),
                     static_cast<double>(memory), glyphFor(kind));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 8",
                      "memory vs compute latency and mean balance "
                      "ratio (memory/compute; 1 = perfectly balanced "
                      "streaming)", argc, argv);

    PlotConfig plot_cfg;
    plot_cfg.logX = true;
    plot_cfg.logY = true;
    plot_cfg.xLabel = "compute cycles (log)";
    plot_cfg.yLabel = "memory cycles (log); balance line = diagonal";
    AsciiPlot plot(plot_cfg);
    for (FormatKind kind : paperFormats())
        plot.legend(glyphFor(kind), std::string(formatName(kind)));

    TableWriter table({"class", "format", "p", "memory cycles",
                       "compute cycles", "balance ratio"});
    runClass("suitesparse", benchutil::suiteWorkloads(), table, plot);
    runClass("random", benchutil::randomWorkloads(), table, plot);
    runClass("band", benchutil::bandWorkloads(), table, plot);
    table.print(std::cout);
    std::cout << '\n';
    plot.render(std::cout);
    std::cout << "\nExpected shape: DENSE closest to 1 and drifting "
                 "memory-bound with p; most sparse formats "
                 "compute-bound (< 1); CSC far below 1.\n";
    return 0;
}
