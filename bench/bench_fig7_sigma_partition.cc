/**
 * @file
 * Figure 7: average sigma per format for the three workload classes
 * (SuiteSparse, random, band) at partition sizes 8, 16 and 32.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

namespace {

void
runClass(const char *label, benchutil::WorkloadSet workloads,
         TableWriter &table)
{
    Study study{StudyConfig{}}; // paper partition sizes and formats
    for (auto &[name, matrix] : workloads)
        study.addWorkload(name, std::move(matrix));
    const auto result = study.run();

    for (Index p : {8u, 16u, 32u}) {
        std::vector<std::string> row = {label, std::to_string(p)};
        for (FormatKind kind : paperFormats()) {
            double sum = 0;
            std::size_t count = 0;
            for (const auto &r : result.rows) {
                if (r.partitionSize == p && r.format == kind) {
                    sum += r.meanSigma;
                    ++count;
                }
            }
            row.push_back(TableWriter::num(sum / count, 4));
        }
        table.addRow(row);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 7",
                      "mean sigma per workload class and partition "
                      "size (lower is better)", argc, argv);

    std::vector<std::string> header = {"class", "p"};
    for (FormatKind kind : paperFormats())
        header.emplace_back(formatName(kind));
    TableWriter table(header);

    runClass("suitesparse", benchutil::suiteWorkloads(), table);
    runClass("random", benchutil::randomWorkloads(), table);
    runClass("band", benchutil::bandWorkloads(), table);

    table.print(std::cout);
    std::cout << "\nExpected shape: ELL's sigma falls as p grows; BCSR "
                 "moderate everywhere but degrading for random at "
                 "p=32; CSC worst in every class.\n";
    return 0;
}
