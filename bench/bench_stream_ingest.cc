/**
 * @file
 * Out-of-core ingest bench: synthesize a large matrix straight into a
 * .cbm container (never holding the triplet array), mmap it back and
 * run the streaming partitioner under a hard RSS budget.
 *
 *   bench_stream_ingest [--smoke] [--json PATH] [--cbm PATH]
 *                       [--nnz N] [--budget-mb N] [--buffer-nnz N]
 *                       [--keep]
 *
 * The bench FAILS (non-zero exit) if the process peak RSS (VmHWM)
 * exceeds the budget — this is the enforcement half of the store
 * layer's memory contract: an in-memory partition of the full-scale
 * matrix needs >1.2 GB for the triplet array alone, while the
 * streaming path must finish inside a fixed window regardless of
 * matrix size. --smoke ingests ~10M non-zeros under a 256 MB cap for
 * CI; the full run ingests 100M+ under 640 MB. The emitted
 * BENCH_stream_ingest.json records pass counts, peak buffered
 * triplets, peak RSS and phase timings.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/fnv.hh"
#include "common/json.hh"
#include "store/container.hh"
#include "store/stream_partitioner.hh"

using namespace copernicus;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Peak resident set (VmHWM) of this process, in kB; 0 if unknown. */
std::uint64_t
peakRssKb()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) != 0)
            continue;
        return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
    return 0;
}

/**
 * Stream a deterministic dim x dim matrix into @p writer in canonical
 * order without materializing it: an 8-wide band plus two off-diagonal
 * "rail" columns per row (sorted, deduplicated), so tiles appear both
 * on and off the diagonal. The rails are constant within each
 * 1024-row strip and hop by a prime stride between strips — enough
 * structure variety to exercise multi-tile passes without exploding
 * the run into millions of single-entry tiles. Returns the non-zero
 * count written.
 */
std::uint64_t
synthesizeInto(CbmWriter &writer, Index dim)
{
    std::uint64_t written = 0;
    std::vector<Index> cols;
    for (Index r = 0; r < dim; ++r) {
        cols.clear();
        const Index lo = r >= 3 ? r - 3 : 0;
        const Index hi = r + 4 < dim ? r + 4 : dim - 1;
        for (Index c = lo; c <= hi; ++c)
            cols.push_back(c);
        const std::uint64_t strip = static_cast<std::uint64_t>(r) >> 10;
        const Index inStrip = r & 1023;
        cols.push_back(static_cast<Index>(
            (strip * 7919 * 1024 + inStrip + 13) % dim));
        cols.push_back(static_cast<Index>(
            (strip * 104729 * 1024 + inStrip + 71) % dim));
        std::sort(cols.begin(), cols.end());
        cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
        for (Index c : cols) {
            const auto salt = static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(r) * 31 + c) & 0xFF);
            Triplet t;
            t.row = r;
            t.col = c;
            t.value = 1.0f + static_cast<Value>(salt) / 256.0f;
            writer.append(t);
            ++written;
        }
    }
    return written;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool keep = false;
    std::string jsonPath = "BENCH_stream_ingest.json";
    std::string cbmPath = "stream_ingest.cbm";
    std::uint64_t nnzTarget = 0;
    std::uint64_t budgetMb = 0;
    std::uint64_t bufferNnz = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--keep")
            keep = true;
        else if (arg == "--json" && i + 1 < argc)
            jsonPath = argv[++i];
        else if (arg == "--cbm" && i + 1 < argc)
            cbmPath = argv[++i];
        else if (arg == "--nnz" && i + 1 < argc)
            nnzTarget = std::strtoull(argv[++i], nullptr, 10);
        else if (arg == "--budget-mb" && i + 1 < argc)
            budgetMb = std::strtoull(argv[++i], nullptr, 10);
        else if (arg == "--buffer-nnz" && i + 1 < argc)
            bufferNnz = std::strtoull(argv[++i], nullptr, 10);
    }
    benchutil::banner("stream_ingest",
                      "out-of-core .cbm ingest + RSS-bounded streaming "
                      "partition",
                      argc, argv);

    if (nnzTarget == 0)
        nnzTarget = smoke ? 10'000'000ULL : 100'000'000ULL;
    if (budgetMb == 0)
        budgetMb = smoke ? 256 : 640;
    // ASan's redzones, quarantine and shadow pages inflate peak RSS
    // several-fold, which would trip the budget without any real
    // regression in the streaming path; widen it so the gate still
    // catches re-materialization (an order of magnitude, not 4x).
#if defined(__SANITIZE_ADDRESS__)
    budgetMb *= 4;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    budgetMb *= 4;
#endif
#endif
    if (bufferNnz == 0)
        bufferNnz = smoke ? (1ULL << 20) : (1ULL << 22);
    // ~10 entries per row (8-wide band + 2 rails, minus edge clipping).
    const auto dim = static_cast<Index>(nnzTarget / 10);
    const Index p = 1024;

    auto t0 = Clock::now();
    std::uint64_t nnz = 0;
    {
        CbmWriter writer(cbmPath, dim, dim, /*epoch=*/1);
        nnz = synthesizeInto(writer, dim);
        writer.finish();
    }
    const double ingestSeconds = secondsSince(t0);
    std::printf("ingest: %llu nnz (dim %u) -> %s in %.2f s\n",
                static_cast<unsigned long long>(nnz), dim,
                cbmPath.c_str(), ingestSeconds);

    const CbmReader reader(cbmPath);
    const std::uint64_t fileBytes =
        64 + nnz * sizeof(Triplet) +
        static_cast<std::uint64_t>(reader.chunkCount()) * 24;

    StreamPartitionOptions options;
    options.maxBufferedNnz = bufferNnz;
    std::uint64_t tileNnz = 0;
    std::uint64_t checksum = fnvOffsetBasis;
    t0 = Clock::now();
    const StreamPartitionStats stats = forEachTileStreaming(
        reader, p, options, [&](Tile &&tile) {
            tileNnz += tile.nonzeros().size();
            checksum = fnv1aValue(tile.tileRow(), checksum);
            checksum = fnv1aValue(tile.tileCol(), checksum);
            checksum = fnv1aValue(
                static_cast<std::uint64_t>(tile.nonzeros().size()),
                checksum);
        });
    const double partitionSeconds = secondsSince(t0);

    const std::uint64_t rssKb = peakRssKb();
    const double rssMb = static_cast<double>(rssKb) / 1024.0;
    std::printf("partition: p=%u, %zu tiles (+%zu empty), %zu passes, "
                "peak buffer %llu nnz, %.2f s\n",
                p, stats.nonZeroTiles, stats.zeroTiles, stats.passes,
                static_cast<unsigned long long>(stats.peakBufferedNnz),
                partitionSeconds);
    std::printf("peak RSS %.1f MB (budget %llu MB)\n", rssMb,
                static_cast<unsigned long long>(budgetMb));

    fatalIf(tileNnz != nnz, "stream_ingest: tile nnz mismatch");

    {
        std::ofstream out(jsonPath);
        fatalIf(!out,
                "bench_stream_ingest: cannot open '" + jsonPath + "'");
        out << "{\n  \"bench\": \"stream_ingest\",\n"
            << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
            << "  \"nnz\": " << nnz << ",\n  \"dim\": " << dim
            << ",\n  \"file_bytes\": " << fileBytes
            << ",\n  \"partition_size\": " << p
            << ",\n  \"buffer_nnz\": " << bufferNnz
            << ",\n  \"passes\": " << stats.passes
            << ",\n  \"source_scans\": " << stats.sourceScans
            << ",\n  \"peak_buffered_nnz\": " << stats.peakBufferedNnz
            << ",\n  \"tiles\": " << stats.nonZeroTiles
            << ",\n  \"zero_tiles\": " << stats.zeroTiles
            << ",\n  \"tile_checksum\": " << checksum
            << ",\n  \"ingest_seconds\": ";
        writeJsonNumber(out, ingestSeconds);
        out << ",\n  \"partition_seconds\": ";
        writeJsonNumber(out, partitionSeconds);
        out << ",\n  \"peak_rss_mb\": ";
        writeJsonNumber(out, rssMb);
        out << ",\n  \"budget_mb\": " << budgetMb << "\n}\n";
    }
    std::printf("wrote %s\n", jsonPath.c_str());

    if (!keep)
        std::remove(cbmPath.c_str());

    // The acceptance gate: the whole run — ingest, mmap scan, every
    // partitioning pass — must have fit the window.
    fatalIf(rssKb > budgetMb * 1024,
            "stream_ingest: peak RSS " + std::to_string(rssKb) +
                " kB exceeds the " + std::to_string(budgetMb) +
                " MB budget");
    return 0;
}
