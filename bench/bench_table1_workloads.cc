/**
 * @file
 * Table 1: the SuiteSparse workload inventory, paper metadata beside
 * the surrogate actually generated at bench scale.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "matrix/stats.hh"

using namespace copernicus;

int
main(int argc, char **argv)
{
    benchutil::banner("Table 1",
                      "SuiteSparse matrices and their generated "
                      "surrogates (dim/nnz in millions for the paper "
                      "columns)", argc, argv);

    TableWriter table({"ID", "Name", "Kind", "paper Dim(M)",
                       "paper NNZ(M)", "surr dim", "surr nnz",
                       "surr nnz/row", "paper nnz/row"});
    for (const auto &[id, matrix] : benchutil::suiteWorkloads()) {
        const auto &info = suiteMatrix(id);
        const auto stats = computeStats(matrix);
        table.addRow({info.id, info.name, info.kind,
                      TableWriter::num(info.paperDimM),
                      TableWriter::num(info.paperNnzM),
                      std::to_string(stats.rows),
                      std::to_string(stats.nnz),
                      TableWriter::num(stats.meanRowNnz, 3),
                      TableWriter::num(info.paperNnzPerRow(), 3)});
    }
    table.print(std::cout);
    return 0;
}
