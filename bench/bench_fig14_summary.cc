/**
 * @file
 * Figure 14: the six-metric normalized summary (1 best, 0 worst) per
 * format for each workload class: sigma, latency, balance, throughput,
 * bandwidth utilization and power.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

namespace {

void
runClass(const char *label, benchutil::WorkloadSet workloads,
         TableWriter &table)
{
    Study study{StudyConfig{}};
    for (auto &[name, matrix] : workloads)
        study.addWorkload(name, std::move(matrix));
    const auto metrics = study.run().aggregateByFormat();
    const auto scores = normalizeSummary(metrics);

    for (const auto &s : scores) {
        table.addRow({label, std::string(formatName(s.format)),
                      TableWriter::num(s.sigma, 3),
                      TableWriter::num(s.latency, 3),
                      TableWriter::num(s.balance, 3),
                      TableWriter::num(s.throughput, 3),
                      TableWriter::num(s.bandwidthUtilization, 3),
                      TableWriter::num(s.power, 3)});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 14",
                      "normalized six-metric comparison per class "
                      "(1 = best format for that metric, 0 = worst)", argc, argv);

    TableWriter table({"class", "format", "sigma", "latency", "balance",
                       "throughput", "bw util", "power"});
    runClass("suitesparse", benchutil::suiteWorkloads(), table);
    runClass("random", benchutil::randomWorkloads(), table);
    runClass("band", benchutil::bandWorkloads(), table);
    table.print(std::cout);
    std::cout << "\nExpected shape: COO strong on latency/power for "
                 "SuiteSparse; LIL/ELL lead latency for band; DIA "
                 "leads bandwidth only for diagonal-heavy inputs.\n";
    return 0;
}
