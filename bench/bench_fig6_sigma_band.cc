/**
 * @file
 * Figure 6: sigma of the seven sparse formats on band matrices as the
 * band width sweeps 1 -> 64, partition 16x16.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 6",
                      "sigma vs band width, partition 16x16 (lower is "
                      "better; width 1 = diagonal)", argc, argv);

    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    std::vector<std::string> names;
    for (auto &[name, matrix] : benchutil::bandWorkloads()) {
        names.push_back(name);
        study.addWorkload(name, std::move(matrix));
    }
    const auto result = study.run();

    std::vector<std::string> header = {"width"};
    for (FormatKind kind : paperFormats())
        header.emplace_back(formatName(kind));
    TableWriter table(header);
    for (const auto &name : names) {
        std::vector<std::string> row = {name.substr(2)};
        for (const auto &r : result.rows)
            if (r.workload == name)
                row.push_back(TableWriter::num(r.meanSigma, 4));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: sigma grows with width, fastest "
                 "for COO/CSR/CSC (up to ~30x for CSC); DIA grows "
                 "with the diagonal count; ELL stays near 1.\n";
    return 0;
}
