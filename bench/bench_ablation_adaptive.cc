/**
 * @file
 * Adaptive per-partition format selection vs every fixed format: how
 * much the per-tile choice buys on each workload class. This is the
 * design-space step the paper's insights point at — once the per-
 * format trade-offs are characterized, a decompress stage with
 * multiple decoders can pick per partition.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/scheduler.hh"

using namespace copernicus;

namespace {

void
runClass(const char *label, const TripletMatrix &matrix,
         TableWriter &table)
{
    const auto parts = partition(matrix, 16);

    Cycles best_fixed = ~Cycles(0);
    std::string best_name;
    for (FormatKind kind : paperFormats()) {
        const auto fixed = runPipeline(parts, kind);
        if (fixed.totalCycles < best_fixed) {
            best_fixed = fixed.totalCycles;
            best_name = formatName(kind);
        }
    }

    const auto plan = planFormats(parts, paperFormats());
    const auto adaptive = runPipelineMixed(parts, plan.perTile);

    std::string mix;
    for (const auto &[kind, count] : plan.histogram) {
        if (!mix.empty())
            mix += " ";
        mix += std::string(formatName(kind)) + ":" +
               std::to_string(count);
    }
    table.addRow({label, best_name, std::to_string(best_fixed),
                  std::to_string(adaptive.totalCycles),
                  TableWriter::num(static_cast<double>(best_fixed) /
                                       adaptive.totalCycles, 4),
                  mix});
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner("Ablation: adaptive format choice",
                      "per-partition argmin-bottleneck selection vs "
                      "the best single format, 16x16 partitions", argc, argv);

    Rng rng(benchutil::benchSeed + 23);
    const Index n = benchutil::syntheticDim() / 2;

    TableWriter table({"workload", "best fixed", "fixed cycles",
                       "adaptive cycles", "speedup", "chosen mix"});
    runClass("random d=0.01", randomMatrix(n, 0.01, rng), table);
    runClass("random d=0.2", randomMatrix(n, 0.2, rng), table);
    runClass("band w=8", bandMatrix(n, 8, rng), table);
    runClass("diagonal", diagonalMatrix(n, rng), table);
    runClass("rmat graph", rmatGraph(n, 8 * n, rng), table);

    table.print(std::cout);
    std::cout << "\nExpected shape: adaptive never loses to the best "
                 "fixed format and wins most on mixed-structure "
                 "matrices where tiles disagree about the best "
                 "format.\n";
    return 0;
}
