/**
 * @file
 * Section 5.2 companion: the scheduled form of each decompressor's
 * inner loop (Listings 1-7), as the mini HLS scheduler derives it —
 * pipeline depth, initiation interval, and the cycle cost of a
 * representative trip count. These are the numbers the analytic cycle
 * model consumes as constants.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "hls/hls_config.hh"
#include "hlsc/decoder_bodies.hh"
#include "hlsc/schedule.hh"

using namespace copernicus;

int
main(int argc, char **argv)
{
    benchutil::banner("Listing schedules",
                      "derived pipeline depth and II per decompressor "
                      "inner loop (Listings 1-7)", argc, argv);

    struct Entry
    {
        const char *listing;
        LoopBody body;
    };
    const Entry entries[] = {
        {"Listing 1 (CSR entry)", csrInnerLoopBody()},
        {"Listing 2 (BCSR block)", bcsrBlockBody(4)},
        {"Listing 3 (CSC scan)", cscScanLoopBody()},
        {"Listing 4 (LIL merge)", lilMergeBody(16)},
        {"Listing 5 (ELL row)", ellRowBody(6)},
        {"Listing 6 (COO tuple)", cooLoopBody()},
        {"Listing 6b (DOK tuple)", dokLoopBody()},
        {"Listing 7 (DIA scan)", diaRowScanBody()},
    };

    TableWriter table({"listing", "body", "ops", "depth", "II",
                       "cycles @ 16 trips"});
    for (const auto &entry : entries) {
        const auto schedule = scheduleBody(entry.body);
        table.addRow({entry.listing, entry.body.name,
                      std::to_string(entry.body.ops.size()),
                      std::to_string(schedule.depth),
                      std::to_string(schedule.ii),
                      std::to_string(schedule.pipelinedCycles(16))});
    }
    table.print(std::cout);

    const HlsConfig cfg;
    std::cout << "\nanalytic-model constants these must match: "
                 "loopDepth=" << cfg.loopDepth
              << ", hash II=" << cfg.hashCycles
              << ", LIL per-row II=2, DIA " << cfg.bramPorts
              << " diagonals/cycle (asserted in tests/test_hlsc.cc)\n";
    return 0;
}
