/**
 * @file
 * Section 5.2 companion: the scheduled form of each decompressor's
 * inner loop (Listings 1-7), as the mini HLS scheduler derives it —
 * pipeline depth, initiation interval, and the cycle cost of a
 * representative trip count. These are the numbers the analytic cycle
 * model consumes as constants.
 *
 * The second table is driven by the declarative schedule IR
 * (formats/schedule_spec): for every registered format it prints the
 * spec's segment structure plus the closed-form and walked cycle
 * counts on one representative tile — the same spec the decompressor
 * walker and copernicus_lint consume.
 */

#include <iostream>
#include <sstream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "formats/registry.hh"
#include "hls/hls_config.hh"
#include "hls/schedule_ir.hh"
#include "hlsc/decoder_bodies.hh"
#include "hlsc/schedule.hh"
#include "matrix/tile.hh"

using namespace copernicus;

namespace {

/** Compact one-line rendering of a spec's loop nest. */
std::string
describeSegments(const ScheduleSpec &spec)
{
    if (spec.segments.empty())
        return "(none)";
    std::ostringstream out;
    for (std::size_t i = 0; i < spec.segments.size(); ++i) {
        const SegmentSpec &seg = spec.segments[i];
        if (i > 0)
            out << " + ";
        out << seg.name << ":"
            << scheduleFeatureName(seg.trips) << "x"
            << cycleKnobName(seg.depth);
    }
    return out.str();
}

/** Representative tile: band + a stray entry, encodable by any codec. */
Tile
representativeTile()
{
    Tile tile(16);
    for (Index r = 0; r < 16; ++r) {
        tile(r, r) = Value(1) + Value(r);
        if (r + 1 < 16)
            tile(r, r + 1) = Value(2);
    }
    tile(13, 2) = Value(7);
    return tile;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner("Listing schedules",
                      "derived pipeline depth and II per decompressor "
                      "inner loop (Listings 1-7)", argc, argv);

    struct Entry
    {
        const char *listing;
        LoopBody body;
    };
    const Entry entries[] = {
        {"Listing 1 (CSR entry)", csrInnerLoopBody()},
        {"Listing 2 (BCSR block)", bcsrBlockBody(4)},
        {"Listing 3 (CSC scan)", cscScanLoopBody()},
        {"Listing 4 (LIL merge)", lilMergeBody(16)},
        {"Listing 5 (ELL row)", ellRowBody(6)},
        {"Listing 6 (COO tuple)", cooLoopBody()},
        {"Listing 6b (DOK tuple)", dokLoopBody()},
        {"Listing 7 (DIA scan)", diaRowScanBody()},
    };

    TableWriter table({"listing", "body", "ops", "depth", "II",
                       "cycles @ 16 trips"});
    for (const auto &entry : entries) {
        const auto schedule = scheduleBody(entry.body);
        table.addRow({entry.listing, entry.body.name,
                      std::to_string(entry.body.ops.size()),
                      std::to_string(schedule.depth),
                      std::to_string(schedule.ii),
                      std::to_string(schedule.pipelinedCycles(16))});
    }
    table.print(std::cout);

    const HlsConfig cfg;
    std::cout << "\nanalytic-model constants these must match: "
                 "loopDepth=" << cfg.loopDepth
              << ", hash II=" << cfg.hashCycles
              << ", LIL per-row II=2, DIA " << cfg.bramPorts
              << " diagonals/cycle (asserted in tests/test_hlsc.cc)\n";

    // The declarative schedule IR, format by format, evaluated on one
    // representative 16x16 tile by both evaluators. copernicus_lint's
    // oracle asserts the last two columns always agree.
    const Tile tile = representativeTile();
    const FormatRegistry &registry = defaultRegistry();
    TableWriter specs({"format", "listing", "nest",
                       "closed-form", "walked"});
    for (FormatKind kind : allFormats()) {
        const ScheduleSpec &spec = registry.schedule(kind);
        const auto encoded = registry.codec(kind).encode(tile);
        const TileFeatures features =
            extractScheduleFeatures(*encoded, tile);
        specs.addRow({std::string(formatName(kind)), spec.listing,
                      describeSegments(spec),
                      std::to_string(
                          closedFormCycles(spec, cfg, features)),
                      std::to_string(
                          walkScheduleCycles(spec, cfg, features))});
    }
    std::cout << "\n";
    specs.print(std::cout);
    return 0;
}
