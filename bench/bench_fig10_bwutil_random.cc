/**
 * @file
 * Figure 10: memory-bandwidth utilization (useful bytes / all bytes,
 * higher is better) on random matrices across the density sweep at
 * 16x16 partitions.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 10",
                      "memory bandwidth utilization vs density, "
                      "partition 16x16 (higher is better)", argc, argv);

    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    std::vector<std::string> names;
    for (auto &[name, matrix] : benchutil::randomWorkloads()) {
        names.push_back(name);
        study.addWorkload(name, std::move(matrix));
    }
    const auto result = study.run();

    std::vector<std::string> header = {"density"};
    for (FormatKind kind : paperFormats())
        header.emplace_back(formatName(kind));
    TableWriter table(header);
    for (const auto &name : names) {
        std::vector<std::string> row = {name.substr(2)};
        for (const auto &r : result.rows)
            if (r.workload == name)
                row.push_back(
                    TableWriter::num(r.bandwidthUtilization, 4));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: COO pinned at 0.33; LIL ahead of "
                 "ELL across the sweep and approaching 0.5 as density "
                 "grows; utilization rises with density for all "
                 "formats but COO.\n";
    return 0;
}
