/**
 * @file
 * Figure 10: memory-bandwidth utilization (useful bytes / all bytes,
 * higher is better) on random matrices across the density sweep at
 * 16x16 partitions.
 *
 * The paper's figure is first-stage only; a second table
 * re-characterizes it with second-stage stream compression
 * (compress/second_stage.hh) enabled, where utilization can only rise
 * because compression shrinks total bytes while useful bytes are
 * untouched. `--no-second-stage` skips the second run and reproduces
 * the original figure alone.
 */

#include <cstring>
#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

namespace {

void
printUtilization(const StudyResult &result,
                 const std::vector<std::string> &names)
{
    std::vector<std::string> header = {"density"};
    for (FormatKind kind : paperFormats())
        header.emplace_back(formatName(kind));
    TableWriter table(header);
    for (const auto &name : names) {
        std::vector<std::string> row = {name.substr(2)};
        for (const auto &r : result.rows)
            if (r.workload == name)
                row.push_back(
                    TableWriter::num(r.bandwidthUtilization, 4));
        table.addRow(row);
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 10",
                      "memory bandwidth utilization vs density, "
                      "partition 16x16 (higher is better)", argc, argv);
    bool second_stage = true;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--no-second-stage") == 0)
            second_stage = false;

    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    std::vector<std::string> names;
    for (auto &[name, matrix] : benchutil::randomWorkloads()) {
        names.push_back(name);
        study.addWorkload(name, std::move(matrix));
    }
    const auto result = study.run();

    std::cout << "second stage off (the paper's figure):\n";
    printUtilization(result, names);
    std::cout << "\nExpected shape: COO pinned at 0.33; LIL ahead of "
                 "ELL across the sweep and approaching 0.5 as density "
                 "grows; utilization rises with density for all "
                 "formats but COO.\n";

    if (second_stage) {
        StudyConfig compressed_cfg = cfg;
        compressed_cfg.hls.secondStageCompression = true;
        Study compressed(compressed_cfg);
        for (auto &[name, matrix] : benchutil::randomWorkloads())
            compressed.addWorkload(name, std::move(matrix));
        const auto on = compressed.run();
        std::cout << "\nsecond stage on (per-class codec selection, "
                     "STORE fallback):\n";
        printUtilization(on, names);
        std::cout << "\nExpected shape: utilization at or above the "
                     "first table everywhere — STORE passthrough "
                     "bounds the loss at zero — with the largest "
                     "gains at low density where index/offset "
                     "streams are repetitive.\n";
    }
    return 0;
}
