/**
 * @file
 * Figure 5: sigma of the seven sparse formats on random matrices as
 * density sweeps 0.0001 -> 0.5, partition 16x16.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 5",
                      "sigma vs density on random matrices, partition "
                      "16x16 (lower is better)", argc, argv);

    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    std::vector<std::string> names;
    for (auto &[name, matrix] : benchutil::randomWorkloads()) {
        names.push_back(name);
        study.addWorkload(name, std::move(matrix));
    }
    const auto result = study.run();

    std::vector<std::string> header = {"density"};
    for (FormatKind kind : paperFormats())
        header.emplace_back(formatName(kind));
    TableWriter table(header);
    for (const auto &name : names) {
        std::vector<std::string> row = {name.substr(2)};
        for (const auto &r : result.rows)
            if (r.workload == name)
                row.push_back(TableWriter::num(r.meanSigma, 4));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: sigma grows with density for all "
                 "formats, fastest for COO, CSR and CSC (up to ~21x "
                 "for CSC at 0.5).\n";
    return 0;
}
