/**
 * @file
 * Figure 9: throughput vs the average time to apply SpMV on an
 * 8000x8000 matrix (bench scale: 1024), one series per format with
 * line thickness = partition size. The series points come from the
 * density sweep.
 */

#include <iostream>

#include "analysis/ascii_plot.hh"
#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

namespace {

char
glyphFor(FormatKind kind)
{
    switch (kind) {
      case FormatKind::Dense: return 'd';
      case FormatKind::CSR: return 'r';
      case FormatKind::BCSR: return 'B';
      case FormatKind::CSC: return 'c';
      case FormatKind::LIL: return 'L';
      case FormatKind::ELL: return 'E';
      case FormatKind::COO: return 'o';
      case FormatKind::DIA: return 'D';
      default: return '?';
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 9",
                      "throughput vs total SpMV latency per format and "
                      "partition size across the density sweep", argc, argv);

    Study study{StudyConfig{}};
    std::vector<std::string> names;
    for (auto &[name, matrix] : benchutil::randomWorkloads()) {
        names.push_back(name);
        study.addWorkload(name, std::move(matrix));
    }
    const auto result = study.run();

    PlotConfig plot_cfg;
    plot_cfg.logX = true;
    plot_cfg.logY = true;
    plot_cfg.xLabel = "SpMV latency, ms (log)";
    plot_cfg.yLabel = "throughput, MB/s (log)";
    AsciiPlot plot(plot_cfg);
    for (FormatKind kind : paperFormats())
        plot.legend(glyphFor(kind), std::string(formatName(kind)));

    TableWriter table({"format", "p", "density", "latency (ms)",
                       "throughput (MB/s)"});
    for (FormatKind kind : paperFormats()) {
        for (Index p : {8u, 16u, 32u}) {
            for (const auto &name : names) {
                for (const auto &r : result.rows) {
                    if (r.format != kind || r.partitionSize != p ||
                        r.workload != name) {
                        continue;
                    }
                    table.addRow(
                        {std::string(formatName(kind)),
                         std::to_string(p), name.substr(2),
                         TableWriter::num(r.seconds * 1e3, 4),
                         TableWriter::num(r.throughput / 1e6, 4)});
                    plot.add(r.seconds * 1e3, r.throughput / 1e6,
                             glyphFor(kind));
                }
            }
        }
    }
    table.print(std::cout);
    std::cout << '\n';
    plot.render(std::cout);
    std::cout << "\nExpected shape: BCSR, LIL and DIA reach the "
                 "highest peak throughput; ELL's throughput is flat in "
                 "latency; larger partitions raise throughput for all "
                 "formats but CSC.\n";
    return 0;
}
