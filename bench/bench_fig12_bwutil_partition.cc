/**
 * @file
 * Figure 12: average memory-bandwidth utilization per workload class
 * (SuiteSparse, random, band) and partition size (8, 16, 32).
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

namespace {

void
runClass(const char *label, benchutil::WorkloadSet workloads,
         TableWriter &table)
{
    Study study{StudyConfig{}};
    for (auto &[name, matrix] : workloads)
        study.addWorkload(name, std::move(matrix));
    const auto result = study.run();

    for (Index p : {8u, 16u, 32u}) {
        std::vector<std::string> row = {label, std::to_string(p)};
        for (FormatKind kind : paperFormats()) {
            double sum = 0;
            std::size_t count = 0;
            for (const auto &r : result.rows) {
                if (r.partitionSize == p && r.format == kind) {
                    sum += r.bandwidthUtilization;
                    ++count;
                }
            }
            row.push_back(TableWriter::num(sum / count, 4));
        }
        table.addRow(row);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 12",
                      "mean memory bandwidth utilization per class and "
                      "partition size (higher is better)", argc, argv);

    std::vector<std::string> header = {"class", "p"};
    for (FormatKind kind : paperFormats())
        header.emplace_back(formatName(kind));
    TableWriter table(header);

    runClass("suitesparse", benchutil::suiteWorkloads(), table);
    runClass("random", benchutil::randomWorkloads(), table);
    runClass("band", benchutil::bandWorkloads(), table);
    table.print(std::cout);
    std::cout << "\nExpected shape: denser/structured classes utilize "
                 "bandwidth better than SuiteSparse for every format "
                 "but COO (fixed at 0.33).\n";
    return 0;
}
