/**
 * @file
 * Energy comparison (Section 6.4's static-vs-dynamic energy remark):
 * total joules and nJ per non-zero per format and partition size on
 * the three workload classes, splitting dynamic from static energy.
 * Shows the paper's crossover — low-dynamic-power formats can lose on
 * total energy when they run long.
 */

#include <iostream>

#include "analysis/energy.hh"
#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

namespace {

void
runClass(const char *label, const TripletMatrix &matrix,
         TableWriter &table)
{
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    study.addWorkload(label, matrix);
    const std::size_t nnz = matrix.nnz();
    for (const auto &row : study.run().rows) {
        const auto energy = runEnergy(row.power, row.seconds);
        table.addRow({label, std::string(formatName(row.format)),
                      TableWriter::num(row.seconds * 1e6, 4),
                      TableWriter::num(energy.dynamicJ * 1e6, 4),
                      TableWriter::num(energy.staticJ * 1e6, 4),
                      TableWriter::num(energy.totalJ() * 1e6, 4),
                      TableWriter::num(energy.staticShare(), 3),
                      TableWriter::num(
                          nanojoulesPerNonZero(energy, nnz), 4)});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner("Energy",
                      "dynamic + static energy per format at 16x16 "
                      "partitions (uJ; nJ per non-zero)", argc, argv);

    Rng rng(benchutil::benchSeed + 31);
    const Index n = benchutil::syntheticDim() / 2;
    TableWriter table({"workload", "format", "latency (us)",
                       "dynamic (uJ)", "static (uJ)", "total (uJ)",
                       "static share", "nJ/nnz"});
    runClass("random d=0.02", randomMatrix(n, 0.02, rng), table);
    runClass("random d=0.3", randomMatrix(n, 0.3, rng), table);
    runClass("band w=8", bandMatrix(n, 8, rng), table);
    table.print(std::cout);
    std::cout << "\nExpected shape: static energy dominates every "
                 "format (the run is long relative to its watts); "
                 "slow formats (CSC) burn the most total energy even "
                 "at low dynamic power — the paper's Section 6.4 "
                 "remark.\n";
    return 0;
}
