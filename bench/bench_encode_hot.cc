/**
 * @file
 * Encode hot-path microbenchmark: partition + per-format encode +
 * size-model feature extraction across a density sweep.
 *
 * This is the path every study sweep spends its time in (Figs. 4-14
 * all run it once per design point), so its trajectory is tracked as
 * a JSON artifact from PR 5 onward: the emitted BENCH_encode_hot.json
 * carries the measured numbers next to the frozen pre-PR baseline of
 * the dense-scan implementation, and CI runs the --smoke variant
 * under the `perf-smoke` ctest label.
 *
 *   bench_encode_hot [--smoke] [--json PATH]
 *
 * --smoke shrinks the sweep to one (density, p) point at a small
 * dimension so the run finishes in CI time; --json chooses the
 * artifact path (default BENCH_encode_hot.json in the working
 * directory).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/json.hh"
#include "formats/encode_cache.hh"
#include "formats/registry.hh"
#include "formats/size_model.hh"
#include "matrix/partitioner.hh"

using namespace copernicus;

namespace {

using Clock = std::chrono::steady_clock;

double
nsSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
}

/**
 * Seed (pre-PR) baseline for the acceptance point: the full
 * density-1e-3, p=32 sweep (partition + all-format encode + feature
 * extraction, dim 2048) measured on the dense-scan implementation at
 * commit 1e2eed7, best of 3 on the CI container. Recorded here so the
 * emitted JSON always carries both ends of the comparison.
 */
constexpr double seedSweepBaselineNs = 876.6e6;

struct PointResult
{
    double density = 0;
    Index p = 0;
    std::size_t tiles = 0;
    std::size_t nnz = 0;
    double partitionNs = 0;
    double featuresNs = 0;
    double encodeNs = 0; ///< all formats summed
    std::vector<std::pair<std::string, double>> perFormat;

    /** The tracked metric: everything the sweep hot path does. */
    double sweepNs() const { return partitionNs + featuresNs + encodeNs; }
};

PointResult
runPoint(const TripletMatrix &matrix, Index p, int reps)
{
    const FormatRegistry &registry = defaultRegistry();
    const auto &formats = allFormats();

    PointResult best;
    for (int rep = 0; rep < reps; ++rep) {
        PointResult r;
        r.p = p;
        r.nnz = matrix.nnz();

        auto t0 = Clock::now();
        const Partitioning parts = partition(matrix, p);
        r.partitionNs = nsSince(t0);
        r.tiles = parts.tiles.size();

        t0 = Clock::now();
        for (const Tile &tile : parts.tiles) {
            const TileShape shape = measureTile(tile, registry.params());
            for (FormatKind kind : formats)
                (void)predictedBytes(shape, kind, registry.params());
        }
        r.featuresNs = nsSince(t0);

        for (FormatKind kind : formats) {
            t0 = Clock::now();
            for (const Tile &tile : parts.tiles)
                (void)registry.codec(kind).encode(tile);
            const double ns = nsSince(t0);
            r.perFormat.emplace_back(std::string(formatName(kind)), ns);
            r.encodeNs += ns;
        }

        if (rep == 0 || r.sweepNs() < best.sweepNs())
            best = std::move(r);
    }
    return best;
}

void
writeJson(const std::string &path, const std::vector<PointResult> &results,
          bool smoke, Index dim)
{
    std::ofstream out(path);
    fatalIf(!out, "bench_encode_hot: cannot open '" + path + "'");
    out << "{\n  \"bench\": \"encode_hot\",\n";
    out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    out << "  \"dim\": " << dim << ",\n";
    out << "  \"seed_baseline\": {\n"
        << "    \"note\": \"dense-scan implementation at commit 1e2eed7, "
           "density 1e-3, p 32, dim 2048, best of 3\",\n"
        << "    \"sweep_ns\": ";
    writeJsonNumber(out, seedSweepBaselineNs);
    out << "\n  },\n  \"results\": [\n";
    double acceptance_ns = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const PointResult &r = results[i];
        out << "    {\"density\": ";
        writeJsonNumber(out, r.density);
        out << ", \"p\": " << r.p << ", \"tiles\": " << r.tiles
            << ", \"nnz\": " << r.nnz << ",\n     \"partition_ns\": ";
        writeJsonNumber(out, r.partitionNs);
        out << ", \"features_ns\": ";
        writeJsonNumber(out, r.featuresNs);
        out << ", \"encode_ns\": ";
        writeJsonNumber(out, r.encodeNs);
        out << ", \"sweep_ns\": ";
        writeJsonNumber(out, r.sweepNs());
        out << ",\n     \"encode_ns_by_format\": {";
        for (std::size_t f = 0; f < r.perFormat.size(); ++f) {
            if (f != 0)
                out << ", ";
            writeJsonString(out, r.perFormat[f].first);
            out << ": ";
            writeJsonNumber(out, r.perFormat[f].second);
        }
        out << "}}" << (i + 1 < results.size() ? "," : "") << "\n";
        if (r.density == 0.001 && r.p == 32)
            acceptance_ns = r.sweepNs();
    }
    out << "  ],\n  \"speedup_vs_seed_d0.001_p32\": ";
    writeJsonNumber(out, acceptance_ns > 0 && !smoke
                             ? seedSweepBaselineNs / acceptance_ns
                             : 0.0);
    out << "\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string jsonPath = "BENCH_encode_hot.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--json" && i + 1 < argc)
            jsonPath = argv[++i];
    }
    benchutil::banner("encode_hot",
                      "partition + encode + feature extraction hot path",
                      argc, argv);

    // Measure raw codec work, not memoisation.
    EncodeCache::global().setEnabled(false);

    const Index dim = smoke ? 512 : 2048;
    const int reps = smoke ? 1 : 3;
    const std::vector<double> densities =
        smoke ? std::vector<double>{0.001}
              : std::vector<double>{0.0001, 0.001, 0.01, 0.1};
    const std::vector<Index> sizes =
        smoke ? std::vector<Index>{32} : std::vector<Index>{8, 16, 32};

    std::vector<PointResult> results;
    for (double density : densities) {
        std::uint64_t sm = benchutil::benchSeed + 0x200;
        Rng rng(splitMix64(sm));
        const TripletMatrix matrix = randomMatrix(dim, density, rng);
        for (Index p : sizes) {
            PointResult r = runPoint(matrix, p, reps);
            r.density = density;
            std::printf("d=%-8g p=%-3u tiles=%-7zu partition=%8.2f ms  "
                        "features=%8.2f ms  encode=%8.2f ms  "
                        "sweep=%8.2f ms\n",
                        density, p, r.tiles, r.partitionNs / 1e6,
                        r.featuresNs / 1e6, r.encodeNs / 1e6,
                        r.sweepNs() / 1e6);
            results.push_back(std::move(r));
        }
    }

    writeJson(jsonPath, results, smoke, dim);
    std::printf("\nwrote %s\n", jsonPath.c_str());
    return 0;
}
