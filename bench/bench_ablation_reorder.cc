/**
 * @file
 * Reordering ablation (Section 6.1's closing advice: preprocess the
 * sparse data into a hardware-friendly shape): RCM-reorder a scattered
 * matrix and measure what it buys each format — fewer non-zero
 * partitions, lower sigma, better DIA bandwidth utilization.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"
#include "matrix/reorder.hh"
#include "matrix/stats.hh"

using namespace copernicus;

namespace {

void
characterize(const char *label, const TripletMatrix &matrix,
             TableWriter &table)
{
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    study.addWorkload(label, matrix);
    for (const auto &row : study.run().rows) {
        table.addRow({label, std::string(formatName(row.format)),
                      TableWriter::num(row.meanSigma, 4),
                      TableWriter::num(row.bandwidthUtilization, 4),
                      std::to_string(row.partitions)});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner("Ablation: RCM reorder",
                      "a band matrix scrambled by a random symmetric "
                      "permutation, before and after RCM recovery", argc, argv);

    // Build a band matrix, scramble it, then let RCM recover it.
    Rng rng(benchutil::benchSeed + 17);
    const Index n = benchutil::syntheticDim() / 2;
    const auto band = bandMatrix(n, 8, rng);
    std::vector<Index> scramble(n);
    for (Index i = 0; i < n; ++i)
        scramble[i] = i;
    for (Index i = n - 1; i > 0; --i)
        std::swap(scramble[i],
                  scramble[static_cast<Index>(rng.below(i + 1))]);
    const auto scrambled = permuteSymmetric(band, scramble);
    const auto recovered = rcmReorder(scrambled);

    std::cout << "bandwidth: original "
              << computeStats(band).bandwidth << ", scrambled "
              << computeStats(scrambled).bandwidth << ", after RCM "
              << computeStats(recovered).bandwidth << "\n\n";

    TableWriter table({"matrix", "format", "sigma", "bw util",
                       "non-zero partitions"});
    characterize("scrambled", scrambled, table);
    characterize("rcm", recovered, table);
    table.print(std::cout);
    std::cout << "\nExpected shape: RCM slashes the non-zero partition "
                 "count and restores DIA/band-format utilization that "
                 "the scrambling destroyed.\n";
    return 0;
}
