/**
 * @file
 * Coarse-grained parallelism ablation (Section 5.1: "Instances of this
 * architecture can be aggregated"): speedup and the compute/memory
 * bound as PE count grows, per format. Shows the paper's system-level
 * point — adding engines only helps until the shared memory channel
 * binds, and how soon that happens depends on the format's byte cost.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "pipeline/parallel_pipeline.hh"

using namespace copernicus;

int
main(int argc, char **argv)
{
    benchutil::banner("Ablation: PEs",
                      "multi-PE aggregation on a density-0.05 random "
                      "matrix, 16x16 partitions, LPT scheduling", argc, argv);

    Rng rng(benchutil::benchSeed + 13);
    const auto matrix = randomMatrix(benchutil::syntheticDim() / 2,
                                     0.05, rng);
    const auto parts = partition(matrix, 16);

    TableWriter table({"format", "PEs", "speedup", "bound",
                       "compute-bound cycles", "memory-bound cycles"});
    for (FormatKind kind :
         {FormatKind::Dense, FormatKind::CSR, FormatKind::COO,
          FormatKind::BCSR, FormatKind::ELL}) {
        for (Index pes : {1u, 2u, 4u, 8u, 16u}) {
            const auto result = runParallel(parts, kind, pes,
                                            ScheduleKind::LoadBalanced);
            table.addRow({std::string(formatName(kind)),
                          std::to_string(pes),
                          TableWriter::num(result.speedup, 4),
                          result.memoryBound ? "memory" : "compute",
                          std::to_string(result.computeBoundCycles),
                          std::to_string(result.memoryBoundCycles)});
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: compressed formats scale further "
                 "before the shared channel binds; DENSE saturates "
                 "first (it moves the most bytes).\n";
    return 0;
}
