/**
 * @file
 * Ablations of the model parameters DESIGN.md calls out: ELL's
 * compressed-width floor, the number of AXI streamlines, and the BRAM
 * read latency. Each sweep holds the workload fixed (a mid-density
 * random matrix at 16x16 partitions) and varies one knob.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

namespace {

TripletMatrix
workload()
{
    Rng rng(benchutil::benchSeed + 7);
    return randomMatrix(benchutil::syntheticDim() / 2, 0.05, rng);
}

void
ellWidthSweep()
{
    std::cout << "-- ELL compressed-width floor (paper fixes 6; wider "
                 "floors only cost bandwidth, not cycles) --\n";
    TableWriter table({"ell width", "sigma", "bw util",
                       "memory cycles"});
    for (Index width : {2u, 4u, 6u, 8u, 16u}) {
        StudyConfig cfg;
        cfg.partitionSizes = {16};
        cfg.formats = {FormatKind::ELL};
        cfg.formatParams.ellMinWidth = width;
        Study study(cfg);
        study.addWorkload("random", workload());
        const auto row = study.run().rows.front();
        table.addRow({std::to_string(width),
                      TableWriter::num(row.meanSigma, 4),
                      TableWriter::num(row.bandwidthUtilization, 4),
                      std::to_string(row.memoryCycles)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
streamlineSweep()
{
    std::cout << "-- AXI streamlines (memory-side parallelism) --\n";
    TableWriter table({"lanes", "format", "memory cycles",
                       "balance ratio"});
    for (Index lanes : {1u, 2u, 4u}) {
        StudyConfig cfg;
        cfg.partitionSizes = {16};
        cfg.formats = {FormatKind::CSR, FormatKind::COO};
        cfg.hls.streamlines = lanes;
        Study study(cfg);
        study.addWorkload("random", workload());
        for (const auto &row : study.run().rows) {
            table.addRow({std::to_string(lanes),
                          std::string(formatName(row.format)),
                          std::to_string(row.memoryCycles),
                          TableWriter::num(row.balanceRatio, 4)});
        }
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
bramLatencySweep()
{
    std::cout << "-- BRAM read latency (compute-side cost of the "
                 "offsets accesses) --\n";
    TableWriter table({"bram latency", "format", "sigma",
                       "compute cycles"});
    for (Cycles latency : {1u, 2u, 3u}) {
        StudyConfig cfg;
        cfg.partitionSizes = {16};
        cfg.formats = {FormatKind::CSR, FormatKind::LIL,
                       FormatKind::DIA};
        cfg.hls.bramReadLatency = latency;
        Study study(cfg);
        study.addWorkload("random", workload());
        for (const auto &row : study.run().rows) {
            table.addRow({std::to_string(latency),
                          std::string(formatName(row.format)),
                          TableWriter::num(row.meanSigma, 4),
                          std::to_string(row.computeCycles)});
        }
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
dramModelSweep()
{
    std::cout << "-- memory model: flat burst cost vs DDR3 timing --\n";
    TableWriter table({"memory model", "format", "memory cycles",
                       "balance ratio", "latency (us)"});
    for (bool dram : {false, true}) {
        StudyConfig cfg;
        cfg.partitionSizes = {16};
        cfg.formats = {FormatKind::Dense, FormatKind::CSR,
                       FormatKind::COO};
        cfg.hls.useDramModel = dram;
        Study study(cfg);
        study.addWorkload("random", workload());
        for (const auto &row : study.run().rows) {
            table.addRow({dram ? "ddr3" : "flat",
                          std::string(formatName(row.format)),
                          std::to_string(row.memoryCycles),
                          TableWriter::num(row.balanceRatio, 4),
                          TableWriter::num(row.seconds * 1e6, 4)});
        }
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
extensionFormatsSweep()
{
    std::cout << "-- Extension formats beside their paper siblings "
                 "(Section 2's variants) --\n";
    TableWriter table({"format", "sigma", "bw util", "latency (ms)"});
    StudyConfig cfg;
    cfg.partitionSizes = {16};
    cfg.formats = {FormatKind::COO,  FormatKind::DOK,
                   FormatKind::ELL,  FormatKind::SELL,
                   FormatKind::SELLCS, FormatKind::ELLCOO,
                   FormatKind::CSR,  FormatKind::JDS,
                   FormatKind::BITMAP};
    Study study(cfg);
    study.addWorkload("random", workload());
    for (const auto &row : study.run().rows) {
        table.addRow({std::string(formatName(row.format)),
                      TableWriter::num(row.meanSigma, 4),
                      TableWriter::num(row.bandwidthUtilization, 4),
                      TableWriter::num(row.seconds * 1e3, 4)});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner("Ablations",
                      "model-parameter sweeps on a density-0.05 random "
                      "matrix at 16x16 partitions", argc, argv);
    ellWidthSweep();
    streamlineSweep();
    bramLatencySweep();
    dramModelSweep();
    extensionFormatsSweep();
    return 0;
}
