/**
 * @file
 * Figure 4: decompression overhead sigma (Eq. 1, lower is better) of
 * the seven sparse formats on the SuiteSparse surrogates at 16x16
 * partitions. The dense baseline is sigma = 1 by definition.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 4",
                      "sigma per format on SuiteSparse surrogates, "
                      "partition 16x16 (lower is better; DENSE = 1)", argc, argv);

    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    std::vector<std::string> ids;
    for (auto &[id, matrix] : benchutil::suiteWorkloads()) {
        ids.push_back(id);
        study.addWorkload(id, std::move(matrix));
    }
    const auto result = study.run();

    std::vector<std::string> header = {"ID", "paper density"};
    for (FormatKind kind : paperFormats())
        header.emplace_back(formatName(kind));
    TableWriter table(header);

    for (const auto &id : ids) {
        const auto &info = suiteMatrix(id);
        const double density =
            info.paperNnzM / (info.paperDimM * info.paperDimM * 1e6);
        std::vector<std::string> row = {id, TableWriter::num(density, 2)};
        // Study rows for one workload come back in format order.
        for (const auto &r : result.rows)
            if (r.workload == id)
                row.push_back(TableWriter::num(r.meanSigma, 4));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: CSC worst everywhere; COO/CSR low "
                 "on very sparse matrices; ELL near 1.\n";
    return 0;
}
