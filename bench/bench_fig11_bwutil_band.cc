/**
 * @file
 * Figure 11: memory-bandwidth utilization on band matrices across the
 * width sweep at 16x16 partitions.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "core/study.hh"

using namespace copernicus;

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 11",
                      "memory bandwidth utilization vs band width, "
                      "partition 16x16 (higher is better)", argc, argv);

    StudyConfig cfg;
    cfg.partitionSizes = {16};
    Study study(cfg);
    std::vector<std::string> names;
    for (auto &[name, matrix] : benchutil::bandWorkloads()) {
        names.push_back(name);
        study.addWorkload(name, std::move(matrix));
    }
    const auto result = study.run();

    std::vector<std::string> header = {"width"};
    for (FormatKind kind : paperFormats())
        header.emplace_back(formatName(kind));
    TableWriter table(header);
    for (const auto &name : names) {
        std::vector<std::string> row = {name.substr(2)};
        for (const auto &r : result.rows)
            if (r.workload == name)
                row.push_back(
                    TableWriter::num(r.bandwidthUtilization, 4));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: DIA close to 1 for width 1 (only "
                 "the diagonal-number header is overhead) but no "
                 "better than COO/ELL/LIL for wider bands; COO at "
                 "0.33 throughout.\n";
    return 0;
}
