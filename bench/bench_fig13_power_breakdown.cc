/**
 * @file
 * Figure 13: dynamic power broken into logic, BRAM and signal
 * components per format and partition size.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "fpga/power_model.hh"

using namespace copernicus;

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 13",
                      "Dynamic power breakdown (watts) per format and "
                      "partition size", argc, argv);

    TableWriter table({"format", "p", "logic (W)", "BRAM (W)",
                       "signals (W)", "total (W)"});
    for (FormatKind kind : paperFormats()) {
        for (Index p : {8u, 16u, 32u}) {
            const auto power = estimatePower(kind, p);
            table.addRow({std::string(formatName(kind)),
                          std::to_string(p),
                          TableWriter::num(power.logicW, 3),
                          TableWriter::num(power.bramW, 3),
                          TableWriter::num(power.signalsW, 3),
                          TableWriter::num(power.dynamicW(), 3)});
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: the overall trend follows the "
                 "signal component; logic power never falls as p "
                 "grows.\n";
    return 0;
}
