/**
 * @file
 * Study sweep scaling: wall-clock seconds of one fixed Study::run()
 * sweep at jobs = 1, 2, 4 and the hardware concurrency, with the
 * shared encode cache off and on. Emits BENCH_study_scaling.json
 * (seconds, speedup vs jobs=1, cache hit rate per configuration) and
 * asserts that every parallel run produces rows bit-identical to the
 * serial run — the determinism contract of the parallel sweep engine.
 *
 * Honest measurement note: speedup is whatever the host delivers. On a
 * single-core container every configuration runs the same work on one
 * lane and speedup stays ~1.0; the bench reports the measured number,
 * not an expectation.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "common/json.hh"
#include "core/study.hh"

using namespace copernicus;

namespace {

/** Every StudyRow field, compared exactly (doubles included). */
bool
rowsIdentical(const std::vector<StudyRow> &a,
              const std::vector<StudyRow> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const StudyRow &x = a[i];
        const StudyRow &y = b[i];
        const bool same =
            x.workload == y.workload && x.format == y.format &&
            x.partitionSize == y.partitionSize &&
            x.meanSigma == y.meanSigma &&
            x.totalCycles == y.totalCycles && x.seconds == y.seconds &&
            x.memoryCycles == y.memoryCycles &&
            x.computeCycles == y.computeCycles &&
            x.balanceRatio == y.balanceRatio &&
            x.throughput == y.throughput &&
            x.bandwidthUtilization == y.bandwidthUtilization &&
            x.totalBytes == y.totalBytes &&
            x.partitions == y.partitions &&
            x.resources.bram18k == y.resources.bram18k &&
            x.resources.ffK == y.resources.ffK &&
            x.resources.lutK == y.resources.lutK &&
            x.resources.calibrated == y.resources.calibrated &&
            x.power.logicW == y.power.logicW &&
            x.power.bramW == y.power.bramW &&
            x.power.signalsW == y.power.signalsW &&
            x.power.staticW == y.power.staticW;
        if (!same)
            return false;
    }
    return true;
}

struct Measurement
{
    bool cacheOn = false;
    unsigned jobs = 0;
    double seconds = 0;
    double speedup = 0;
    double hitRate = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner("study scaling",
                      "fixed Study sweep at jobs = 1/2/4/hw, encode "
                      "cache off and on; parallel rows must be "
                      "bit-identical to serial", argc, argv);

    // A fixed, seed-pinned sweep: two structures the formats disagree
    // on (uniform random, banded) at the paper's partition sizes.
    Rng rngRandom(benchutil::benchSeed);
    Rng rngBand(benchutil::benchSeed + 1);
    const TripletMatrix random = randomMatrix(512, 0.05, rngRandom);
    const TripletMatrix band = bandMatrix(512, 16, rngBand);

    std::vector<unsigned> jobsSweep = {1, 2, 4, hardwareJobs()};
    std::sort(jobsSweep.begin(), jobsSweep.end());
    jobsSweep.erase(std::unique(jobsSweep.begin(), jobsSweep.end()),
                    jobsSweep.end());

    EncodeCache &cache = EncodeCache::global();
    const bool cacheWasEnabled = cache.enabled();

    std::vector<Measurement> table;
    bool identical = true;
    for (bool cacheOn : {false, true}) {
        cache.setEnabled(cacheOn);
        cache.clear();
        if (cacheOn) {
            // Warm once so the timed runs measure parallel scaling at
            // the steady-state hit rate, not first-touch encoding.
            StudyConfig warm;
            warm.jobs = 1;
            Study study(warm);
            study.addWorkload("random", random);
            study.addWorkload("band", band);
            study.run();
        }
        std::vector<StudyRow> serialRows;
        double serialSeconds = 0;
        for (unsigned jobs : jobsSweep) {
            const auto statsBefore = cache.stats();

            StudyConfig cfg;
            cfg.jobs = jobs;
            Study study(cfg);
            study.addWorkload("random", random);
            study.addWorkload("band", band);

            const auto start = std::chrono::steady_clock::now();
            const StudyResult result = study.run();
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;

            const auto statsAfter = cache.stats();
            const double hits = static_cast<double>(statsAfter.hits -
                                                    statsBefore.hits);
            const double misses = static_cast<double>(
                statsAfter.misses - statsBefore.misses);
            const double lookups = hits + misses;

            if (jobs == jobsSweep.front()) {
                serialRows = result.rows;
                serialSeconds = elapsed.count();
            } else if (!rowsIdentical(serialRows, result.rows)) {
                identical = false;
            }

            Measurement m;
            m.cacheOn = cacheOn;
            m.jobs = jobs;
            m.seconds = elapsed.count();
            m.speedup = elapsed.count() > 0
                            ? serialSeconds / elapsed.count()
                            : 0;
            m.hitRate = lookups > 0 ? hits / lookups : 0;
            table.push_back(m);
        }
    }
    cache.setEnabled(cacheWasEnabled);
    cache.clear();

    TableWriter out({"cache", "jobs", "seconds", "speedup vs jobs=1",
                     "cache hit rate"});
    for (const Measurement &m : table) {
        out.addRow({m.cacheOn ? "on" : "off", std::to_string(m.jobs),
                    TableWriter::num(m.seconds, 4),
                    TableWriter::num(m.speedup, 3),
                    TableWriter::num(m.hitRate, 3)});
    }
    out.print(std::cout);

    std::cout << "\nrows bit-identical across jobs settings: "
              << (identical ? "yes" : "NO — determinism bug") << '\n';

    const char *jsonPath = "BENCH_study_scaling.json";
    std::ofstream json(jsonPath);
    fatalIf(!json, std::string("cannot open '") + jsonPath + "'");
    json << "{\n  \"identical_rows\": "
         << (identical ? "true" : "false") << ",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < table.size(); ++i) {
        const Measurement &m = table[i];
        json << "    {\"cache\": " << (m.cacheOn ? "true" : "false")
             << ", \"jobs\": " << m.jobs << ", \"seconds\": ";
        writeJsonNumber(json, m.seconds);
        json << ", \"speedup\": ";
        writeJsonNumber(json, m.speedup);
        json << ", \"cache_hit_rate\": ";
        writeJsonNumber(json, m.hitRate);
        json << '}' << (i + 1 < table.size() ? "," : "") << '\n';
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << jsonPath << '\n';

    return identical ? 0 : 1;
}
