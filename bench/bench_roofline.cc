/**
 * @file
 * Roofline placement of every format (an analysis figure beyond the
 * paper): operational intensity, attained Gflop/s, the binding roof
 * and efficiency, per format and partition size on a mid-density
 * random matrix. Makes the Section 6.2 balance discussion quantitative
 * in roofline terms.
 */

#include <iostream>

#include "analysis/roofline.hh"
#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "pipeline/stream_pipeline.hh"

using namespace copernicus;

int
main(int argc, char **argv)
{
    benchutil::banner("Roofline",
                      "format placement on the platform roofline, "
                      "density-0.05 random matrix", argc, argv);

    const HlsConfig config;
    Rng rng(benchutil::benchSeed + 29);
    const auto matrix = randomMatrix(benchutil::syntheticDim() / 2,
                                     0.05, rng);

    std::cout << "compute roof (p=16): "
              << TableWriter::num(peakComputeGflops(16, config), 4)
              << " Gflop/s; bandwidth roof: "
              << TableWriter::num(peakBandwidthGBs(config), 4)
              << " GB/s\n\n";

    TableWriter table({"format", "p", "intensity (flop/B)",
                       "attained Gflop/s", "bound Gflop/s",
                       "efficiency", "region"});
    for (Index p : {8u, 16u, 32u}) {
        const auto parts = partition(matrix, p);
        for (FormatKind kind : paperFormats()) {
            const auto run = runPipeline(parts, kind, config);
            // 2 flops per stored non-zero (multiply + add).
            const double flops =
                2.0 * static_cast<double>(run.totalUsefulBytes) /
                valueBytes;
            const auto point = placeOnRoofline(flops, run.seconds,
                                               run.totalBytes, p,
                                               config);
            table.addRow({std::string(formatName(kind)),
                          std::to_string(p),
                          TableWriter::num(point.intensity, 4),
                          TableWriter::num(point.attainedGflops, 4),
                          TableWriter::num(point.boundGflops, 4),
                          TableWriter::num(point.efficiency, 3),
                          point.memoryBoundRegion ? "memory"
                                                  : "compute"});
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: index-light formats (CSR) sit at "
                 "higher intensity; every format lands in the "
                 "memory-limited region at this sparsity (intensity "
                 "<= 0.5 flop/B); CSC's efficiency collapses because "
                 "its decompression burns cycles without flops.\n";
    return 0;
}
