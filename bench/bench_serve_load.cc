/**
 * @file
 * Closed-loop load generator for the characterization daemon.
 *
 * Starts an in-process Server on a private Unix socket, then drives it
 * at three offered-load levels (client thread counts below, at, and
 * above the admission queue capacity). Each client thread runs a
 * closed loop — issue a request from the fixed mix, wait for its
 * response, repeat — so offered load is bounded by thread count, the
 * classic closed-system model.
 *
 * The accounting is the point: every request must receive exactly one
 * response (accepted requests a result, shed requests an explicit
 * queue_full), so the bench fails loudly if overload ever turns into a
 * lost or hung response. Emits BENCH_serve_load.json with per-level
 * completed/rejected counts, reject rate, throughput, and the
 * p50/p95/p99 latency of accepted requests.
 *
 * Request mix (closed loop, per iteration): 70% ping (queue-dynamics
 * probe), 20% advise (small real work), 10% plan_formats (heavier
 * work, exercises the shared encode cache across clients).
 *
 * The main levels run with the observability plane on (the daemon's
 * default: spans, wide events, trace ids). A final at-capacity level
 * reruns against a plane-off server and the JSON records both p99s
 * plus the overhead fraction — the number the plane's "always on"
 * claim rests on. Reported, not asserted: wall-clock latency on shared
 * CI is too noisy for a hard gate.
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/json.hh"
#include "serve/client.hh"
#include "serve/server.hh"

using namespace copernicus;

namespace {

struct LevelResult
{
    unsigned clients = 0;
    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t errors = 0;
    double seconds = 0;
    double p50Us = 0;
    double p95Us = 0;
    double p99Us = 0;

    double
    rejectRate() const
    {
        const std::size_t total = completed + rejected + errors;
        return total == 0 ? 0.0
                          : static_cast<double>(rejected) /
                                static_cast<double>(total);
    }

    double
    throughputRps() const
    {
        return seconds > 0
                   ? static_cast<double>(completed) / seconds
                   : 0.0;
    }
};

double
percentileOf(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 *
                        static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/** One client thread's closed loop. */
void
clientLoop(const std::string &socketPath, unsigned seedIndex,
           std::size_t iterations, LevelResult &result,
           std::vector<double> &latenciesUs, std::mutex &resultMutex)
{
    ServeClient client = ServeClient::connectUnix(socketPath);
    client.setReceiveTimeoutMs(30000);

    // The advise/plan requests reuse a small pool of specs so the
    // shared encode cache sees repeats across clients (its hit rate
    // is part of the serve stats this bench reports).
    const std::string adviseParams =
        "{\"matrix\": {\"kind\": \"band\", \"n\": 192, \"width\": " +
        std::to_string(4 + (seedIndex % 3) * 4) +
        ", \"seed\": 7}, \"goal\": \"latency\"}";
    const std::string planParams =
        "{\"matrix\": {\"kind\": \"random\", \"n\": 96, \"density\": "
        "0.08, \"seed\": " +
        std::to_string(1 + seedIndex % 2) +
        "}, \"partition_size\": 16, \"formats\": [\"CSR\", \"COO\", "
        "\"ELL\"]}";

    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t errors = 0;
    std::vector<double> latencies;
    latencies.reserve(iterations);

    for (std::size_t i = 0; i < iterations; ++i) {
        const unsigned draw = (seedIndex * 131 + i * 17) % 10;
        const std::string op =
            draw < 7 ? "ping" : draw < 9 ? "advise" : "plan_formats";
        const std::string &params =
            op == "advise" ? adviseParams
            : op == "plan_formats" ? planParams
                                   : std::string();

        const auto start = std::chrono::steady_clock::now();
        const JsonValue response = client.call(op, params);
        const double us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();

        if (response.boolOr("ok", false)) {
            ++completed;
            latencies.push_back(us);
        } else if (response.stringOr("error", "") == "queue_full") {
            ++rejected;
        } else {
            ++errors;
        }
    }

    const std::lock_guard<std::mutex> lock(resultMutex);
    result.completed += completed;
    result.rejected += rejected;
    result.errors += errors;
    latenciesUs.insert(latenciesUs.end(), latencies.begin(),
                       latencies.end());
}

LevelResult
runLevel(const std::string &socketPath, unsigned clients,
         std::size_t iterationsPerClient)
{
    LevelResult result;
    result.clients = clients;
    std::vector<double> latenciesUs;
    std::mutex resultMutex;

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            clientLoop(socketPath, c, iterationsPerClient, result,
                       latenciesUs, resultMutex);
        });
    }
    for (std::thread &t : threads)
        t.join();
    result.seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - start)
            .count();

    result.p50Us = percentileOf(latenciesUs, 50);
    result.p95Us = percentileOf(latenciesUs, 95);
    result.p99Us = percentileOf(latenciesUs, 99);

    // The closed-loop invariant: every issued request was answered.
    const std::size_t answered =
        result.completed + result.rejected + result.errors;
    fatalIf(answered != clients * iterationsPerClient,
            "serve_load: lost responses (" + std::to_string(answered) +
                " answered of " +
                std::to_string(clients * iterationsPerClient) +
                " issued)");
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner(
        "serve_load",
        "closed-loop load generator against the characterization "
        "daemon: offered load below/at/above the admission queue",
        argc, argv);

    const std::string socketPath = "/tmp/copernicus_bench_serve.sock";
    const std::size_t queueCapacity = 4;
    const std::size_t iterations = benchutil::fullScale() ? 400 : 120;

    ServeOptions options;
    options.socketPath = socketPath;
    options.queueCapacity = queueCapacity;
    // The registry was already linted by the daemon's own tests; a
    // bench run cares about queue dynamics, not the gate.
    options.checkRegistry = false;
    Server server(std::move(options));
    server.start();

    // Offered loads: under capacity (no shedding expected), at
    // capacity, and 3x over capacity (explicit queue_full shedding).
    const std::vector<unsigned> levels = {
        2, static_cast<unsigned>(queueCapacity),
        static_cast<unsigned>(queueCapacity) * 3};
    std::vector<LevelResult> results;
    for (unsigned clients : levels) {
        std::printf("level: %u clients x %zu iterations...\n", clients,
                    iterations);
        results.push_back(runLevel(socketPath, clients, iterations));
    }

    server.beginShutdown();
    server.waitDrained();

    // Observability overhead: the at-capacity level again, against a
    // fresh server with the plane off. Same socket-path discipline,
    // different path, so a crashed prior run can't alias it.
    const unsigned overheadClients =
        static_cast<unsigned>(queueCapacity);
    std::printf("overhead level: %u clients x %zu iterations "
                "(observability off)...\n",
                overheadClients, iterations);
    const std::string offSocketPath =
        "/tmp/copernicus_bench_serve_off.sock";
    ServeOptions offOptions;
    offOptions.socketPath = offSocketPath;
    offOptions.queueCapacity = queueCapacity;
    offOptions.checkRegistry = false;
    offOptions.observability = false;
    Server offServer(std::move(offOptions));
    offServer.start();
    const LevelResult offResult =
        runLevel(offSocketPath, overheadClients, iterations);
    offServer.beginShutdown();
    offServer.waitDrained();

    // results[1] is the at-capacity plane-on run of the same shape.
    const LevelResult &onResult = results[1];
    const double overheadFrac =
        offResult.p99Us > 0
            ? (onResult.p99Us - offResult.p99Us) / offResult.p99Us
            : 0.0;

    std::printf("\n%-8s %10s %10s %8s %12s %10s %10s %10s\n", "clients",
                "completed", "rejected", "rej %", "rps", "p50 us",
                "p95 us", "p99 us");
    for (const LevelResult &r : results) {
        std::printf("%-8u %10zu %10zu %7.2f%% %12.1f %10.1f %10.1f "
                    "%10.1f\n",
                    r.clients, r.completed, r.rejected,
                    100 * r.rejectRate(), r.throughputRps(), r.p50Us,
                    r.p95Us, r.p99Us);
    }
    std::printf("\nobservability overhead at %u clients: p99 %.1f us "
                "(on) vs %.1f us (off), %+.1f%%\n",
                overheadClients, onResult.p99Us, offResult.p99Us,
                100 * overheadFrac);

    const char *jsonPath = "BENCH_serve_load.json";
    std::ofstream json(jsonPath);
    fatalIf(!json, std::string("cannot open '") + jsonPath + "'");
    json << "{\n  \"queue_capacity\": " << queueCapacity
         << ",\n  \"iterations_per_client\": " << iterations
         << ",\n  \"levels\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const LevelResult &r = results[i];
        json << "    {\"clients\": " << r.clients
             << ", \"completed\": " << r.completed
             << ", \"rejected\": " << r.rejected
             << ", \"errors\": " << r.errors << ", \"reject_rate\": ";
        writeJsonNumber(json, r.rejectRate());
        json << ", \"throughput_rps\": ";
        writeJsonNumber(json, r.throughputRps());
        json << ", \"p50_us\": ";
        writeJsonNumber(json, r.p50Us);
        json << ", \"p95_us\": ";
        writeJsonNumber(json, r.p95Us);
        json << ", \"p99_us\": ";
        writeJsonNumber(json, r.p99Us);
        json << '}' << (i + 1 < results.size() ? "," : "") << '\n';
    }
    json << "  ],\n  \"observability\": {\"clients\": "
         << overheadClients << ", \"p99_on_us\": ";
    writeJsonNumber(json, onResult.p99Us);
    json << ", \"p99_off_us\": ";
    writeJsonNumber(json, offResult.p99Us);
    json << ", \"p99_overhead_frac\": ";
    writeJsonNumber(json, overheadFrac);
    json << "}\n}\n";
    std::cout << "wrote " << jsonPath << '\n';
    return 0;
}
