/**
 * @file
 * Closed-loop load generator for the characterization daemon.
 *
 * Starts an in-process Server on a private Unix socket, then drives it
 * at three offered-load levels (client thread counts below, at, and
 * above the admission queue capacity). Each client thread runs a
 * closed loop — issue a request from the fixed mix, wait for its
 * response, repeat — so offered load is bounded by thread count, the
 * classic closed-system model.
 *
 * The accounting is the point: every request must receive exactly one
 * response (accepted requests a result, shed requests an explicit
 * queue_full), so the bench fails loudly if overload ever turns into a
 * lost or hung response. Emits BENCH_serve_load.json with per-level
 * completed/rejected counts, reject rate, throughput, and the
 * p50/p95/p99 latency of accepted requests.
 *
 * Request mix (closed loop, per iteration): 70% ping (queue-dynamics
 * probe), 20% advise (small real work), 10% plan_formats (heavier
 * work, exercises the shared encode cache across clients).
 *
 * The main levels run with the observability plane on (the daemon's
 * default: spans, wide events, trace ids). A final at-capacity level
 * reruns against a plane-off server and the JSON records both p99s
 * plus the overhead fraction — the number the plane's "always on"
 * claim rests on. Reported, not asserted: wall-clock latency on shared
 * CI is too noisy for a hard gate.
 *
 * On top of the thread-per-client levels, a poll()-driven sweep drives
 * the epoll server core at 100 / 1000 / 4000 concurrent loopback-TCP
 * connections — far past what a thread per connection could model —
 * once over NDJSON and once over the CPB1 binary framing. Each
 * connection is a tiny closed-loop state machine (build request, send,
 * await response, repeat), so the invariant stays the same: every
 * issued request must be answered, and the sweep fails loudly on any
 * lost response. A final cold/warm pair against the advise endpoint
 * measures the server-side result memo and asserts the warm payload is
 * byte-identical to the populating miss.
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_common.hh"
#include "common/json.hh"
#include "serve/client.hh"
#include "serve/framing.hh"
#include "serve/server.hh"

using namespace copernicus;

namespace {

struct LevelResult
{
    unsigned clients = 0;
    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t errors = 0;
    double seconds = 0;
    double p50Us = 0;
    double p95Us = 0;
    double p99Us = 0;

    double
    rejectRate() const
    {
        const std::size_t total = completed + rejected + errors;
        return total == 0 ? 0.0
                          : static_cast<double>(rejected) /
                                static_cast<double>(total);
    }

    double
    throughputRps() const
    {
        return seconds > 0
                   ? static_cast<double>(completed) / seconds
                   : 0.0;
    }
};

double
percentileOf(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 *
                        static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/** One client thread's closed loop. */
void
clientLoop(const std::string &socketPath, unsigned seedIndex,
           std::size_t iterations, LevelResult &result,
           std::vector<double> &latenciesUs, std::mutex &resultMutex)
{
    ServeClient client = ServeClient::connectUnix(socketPath);
    client.setReceiveTimeoutMs(30000);

    // The advise/plan requests reuse a small pool of specs so the
    // shared encode cache sees repeats across clients (its hit rate
    // is part of the serve stats this bench reports).
    const std::string adviseParams =
        "{\"matrix\": {\"kind\": \"band\", \"n\": 192, \"width\": " +
        std::to_string(4 + (seedIndex % 3) * 4) +
        ", \"seed\": 7}, \"goal\": \"latency\"}";
    const std::string planParams =
        "{\"matrix\": {\"kind\": \"random\", \"n\": 96, \"density\": "
        "0.08, \"seed\": " +
        std::to_string(1 + seedIndex % 2) +
        "}, \"partition_size\": 16, \"formats\": [\"CSR\", \"COO\", "
        "\"ELL\"]}";

    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t errors = 0;
    std::vector<double> latencies;
    latencies.reserve(iterations);

    for (std::size_t i = 0; i < iterations; ++i) {
        const unsigned draw = (seedIndex * 131 + i * 17) % 10;
        const std::string op =
            draw < 7 ? "ping" : draw < 9 ? "advise" : "plan_formats";
        const std::string &params =
            op == "advise" ? adviseParams
            : op == "plan_formats" ? planParams
                                   : std::string();

        const auto start = std::chrono::steady_clock::now();
        const JsonValue response = client.call(op, params);
        const double us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();

        if (response.boolOr("ok", false)) {
            ++completed;
            latencies.push_back(us);
        } else if (response.stringOr("error", "") == "queue_full") {
            ++rejected;
        } else {
            ++errors;
        }
    }

    const std::lock_guard<std::mutex> lock(resultMutex);
    result.completed += completed;
    result.rejected += rejected;
    result.errors += errors;
    latenciesUs.insert(latenciesUs.end(), latencies.begin(),
                       latencies.end());
}

LevelResult
runLevel(const std::string &socketPath, unsigned clients,
         std::size_t iterationsPerClient)
{
    LevelResult result;
    result.clients = clients;
    std::vector<double> latenciesUs;
    std::mutex resultMutex;

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            clientLoop(socketPath, c, iterationsPerClient, result,
                       latenciesUs, resultMutex);
        });
    }
    for (std::thread &t : threads)
        t.join();
    result.seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - start)
            .count();

    result.p50Us = percentileOf(latenciesUs, 50);
    result.p95Us = percentileOf(latenciesUs, 95);
    result.p99Us = percentileOf(latenciesUs, 99);

    // The closed-loop invariant: every issued request was answered.
    const std::size_t answered =
        result.completed + result.rejected + result.errors;
    fatalIf(answered != clients * iterationsPerClient,
            "serve_load: lost responses (" + std::to_string(answered) +
                " answered of " +
                std::to_string(clients * iterationsPerClient) +
                " issued)");
    return result;
}

// ---------------------------------------------------------------------
// poll()-driven concurrency sweep (100 / 1000 / 4000 connections).
// ---------------------------------------------------------------------

struct ConcResult
{
    unsigned connections = 0;
    std::string protocol;
    std::size_t completed = 0;
    std::size_t lost = 0;
    double seconds = 0;
    double p50Us = 0;
    double p95Us = 0;
    double p99Us = 0;

    double
    throughputRps() const
    {
        return seconds > 0 ? static_cast<double>(completed) / seconds
                           : 0.0;
    }
};

/** One closed-loop connection state machine in the poll driver. */
struct LoadConn
{
    enum class St
    {
        Sending,
        Receiving,
        Done,
        Lost,
    };

    int fd = -1;
    St st = St::Sending;
    std::string out;
    std::size_t outOff = 0;
    std::string in; ///< NDJSON receive buffer
    FrameDecoder decoder;
    std::size_t remaining = 0; ///< requests still to issue (incl. current)
    std::uint64_t nextStream = 1;
    std::chrono::steady_clock::time_point start;
};

void
buildRequest(LoadConn &conn, bool binary)
{
    conn.out.clear();
    conn.outOff = 0;
    const std::string payload =
        "{\"op\": \"ping\", \"id\": " +
        std::to_string(conn.nextStream) + "}";
    if (binary) {
        if (conn.nextStream == 1)
            conn.out.append(framingMagic);
        appendFrame(conn.out, FrameType::Request, conn.nextStream,
                    payload);
    } else {
        conn.out = payload + "\n";
    }
    ++conn.nextStream;
    conn.st = LoadConn::St::Sending;
    conn.start = std::chrono::steady_clock::now();
}

/** Mark every request this connection still owed as lost. */
void
abandon(LoadConn &conn, ConcResult &result)
{
    result.lost += conn.remaining;
    conn.remaining = 0;
    conn.st = LoadConn::St::Lost;
    if (conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
    }
}

ConcResult
runConcurrencyLevel(int port, unsigned connections,
                    std::size_t itersPerConn, bool binary)
{
    ConcResult result;
    result.connections = connections;
    result.protocol = binary ? "binary" : "ndjson";
    std::vector<double> latenciesUs;
    latenciesUs.reserve(connections * itersPerConn);

    // Connect everything up front (the load phase measures request
    // latency, not connection setup). Blocking connect against the
    // event loop's SOMAXCONN backlog, then nonblocking for the driver.
    std::vector<LoadConn> conns(connections);
    for (LoadConn &conn : conns) {
        conn.fd = ::socket(AF_INET, SOCK_STREAM, 0);
        fatalIf(conn.fd < 0, std::string("serve_load: socket(): ") +
                                 std::strerror(errno));
        const int one = 1;
        ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        fatalIf(::connect(conn.fd,
                          reinterpret_cast<const sockaddr *>(&addr),
                          sizeof(addr)) != 0,
                std::string("serve_load: connect(): ") +
                    std::strerror(errno));
        const int flags = ::fcntl(conn.fd, F_GETFL, 0);
        ::fcntl(conn.fd, F_SETFL, flags | O_NONBLOCK);
        conn.remaining = itersPerConn;
        buildRequest(conn, binary);
    }

    const auto levelStart = std::chrono::steady_clock::now();
    std::vector<pollfd> fds;
    std::vector<std::size_t> fdOwner;
    char buf[65536];
    for (;;) {
        fds.clear();
        fdOwner.clear();
        for (std::size_t i = 0; i < conns.size(); ++i) {
            const LoadConn &conn = conns[i];
            if (conn.st == LoadConn::St::Done ||
                conn.st == LoadConn::St::Lost)
                continue;
            pollfd p{};
            p.fd = conn.fd;
            p.events = conn.st == LoadConn::St::Sending
                           ? POLLOUT
                           : POLLIN;
            fds.push_back(p);
            fdOwner.push_back(i);
        }
        if (fds.empty())
            break;
        const int ready =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 30000);
        if (ready < 0 && errno == EINTR)
            continue;
        fatalIf(ready < 0, std::string("serve_load: poll(): ") +
                               std::strerror(errno));
        // A full poll timeout with requests outstanding means the
        // server stalled; abandoning (not hanging) keeps the
        // zero-lost-responses check meaningful.
        if (ready == 0) {
            for (std::size_t i : fdOwner)
                abandon(conns[i], result);
            break;
        }

        for (std::size_t k = 0; k < fds.size(); ++k) {
            const short revents = fds[k].revents;
            if (revents == 0)
                continue;
            LoadConn &conn = conns[fdOwner[k]];
            if ((revents & (POLLERR | POLLNVAL)) != 0) {
                abandon(conn, result);
                continue;
            }

            if (conn.st == LoadConn::St::Sending &&
                (revents & POLLOUT) != 0) {
                while (conn.outOff < conn.out.size()) {
                    const ssize_t n = ::send(
                        conn.fd, conn.out.data() + conn.outOff,
                        conn.out.size() - conn.outOff, MSG_NOSIGNAL);
                    if (n > 0) {
                        conn.outOff += static_cast<std::size_t>(n);
                        continue;
                    }
                    if (n < 0 && errno == EINTR)
                        continue;
                    break;
                }
                if (conn.outOff >= conn.out.size()) {
                    conn.st = LoadConn::St::Receiving;
                } else if (errno != EAGAIN &&
                           errno != EWOULDBLOCK) {
                    abandon(conn, result);
                }
                continue;
            }

            if (conn.st != LoadConn::St::Receiving ||
                (revents & (POLLIN | POLLHUP)) == 0)
                continue;
            bool gotResponse = false;
            bool dead = false;
            for (;;) {
                const ssize_t n =
                    ::recv(conn.fd, buf, sizeof(buf), 0);
                if (n < 0 && errno == EINTR)
                    continue;
                if (n < 0 &&
                    (errno == EAGAIN || errno == EWOULDBLOCK))
                    break;
                if (n <= 0) {
                    dead = true;
                    break;
                }
                if (binary) {
                    conn.decoder.feed(
                        buf, static_cast<std::size_t>(n));
                    Frame frame;
                    while (conn.decoder.next(frame) ==
                           DecodeResult::GotFrame)
                        gotResponse = true;
                } else {
                    conn.in.append(buf,
                                   static_cast<std::size_t>(n));
                    const std::size_t pos = conn.in.find('\n');
                    if (pos != std::string::npos) {
                        conn.in.erase(0, pos + 1);
                        gotResponse = true;
                    }
                }
                if (gotResponse)
                    break;
            }
            if (gotResponse) {
                latenciesUs.push_back(
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() -
                        conn.start)
                        .count());
                ++result.completed;
                --conn.remaining;
                if (conn.remaining == 0) {
                    conn.st = LoadConn::St::Done;
                    ::close(conn.fd);
                    conn.fd = -1;
                } else {
                    buildRequest(conn, binary);
                }
            } else if (dead) {
                abandon(conn, result);
            }
        }
    }
    result.seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - levelStart)
            .count();
    result.p50Us = percentileOf(latenciesUs, 50);
    result.p95Us = percentileOf(latenciesUs, 95);
    result.p99Us = percentileOf(latenciesUs, 99);
    fatalIf(result.completed + result.lost !=
                connections * itersPerConn,
            "serve_load: concurrency accounting broken");
    return result;
}

/** Lift the fd soft limit to the hard limit (4000 conns x 2 ends). */
void
raiseFdLimit()
{
    rlimit limit{};
    if (::getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
        limit.rlim_cur < limit.rlim_max) {
        limit.rlim_cur = limit.rlim_max;
        ::setrlimit(RLIMIT_NOFILE, &limit);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::banner(
        "serve_load",
        "closed-loop load generator against the characterization "
        "daemon: offered load below/at/above the admission queue",
        argc, argv);

    raiseFdLimit();

    const std::string socketPath = "/tmp/copernicus_bench_serve.sock";
    const std::size_t queueCapacity = 4;
    const std::size_t iterations = benchutil::fullScale() ? 400 : 120;

    ServeOptions options;
    options.socketPath = socketPath;
    options.queueCapacity = queueCapacity;
    // The registry was already linted by the daemon's own tests; a
    // bench run cares about queue dynamics, not the gate.
    options.checkRegistry = false;
    Server server(std::move(options));
    server.start();

    // Offered loads: under capacity (no shedding expected), at
    // capacity, and 3x over capacity (explicit queue_full shedding).
    const std::vector<unsigned> levels = {
        2, static_cast<unsigned>(queueCapacity),
        static_cast<unsigned>(queueCapacity) * 3};
    std::vector<LevelResult> results;
    for (unsigned clients : levels) {
        std::printf("level: %u clients x %zu iterations...\n", clients,
                    iterations);
        results.push_back(runLevel(socketPath, clients, iterations));
    }

    server.beginShutdown();
    server.waitDrained();

    // Observability overhead: the at-capacity level again, against a
    // fresh server with the plane off. Same socket-path discipline,
    // different path, so a crashed prior run can't alias it.
    const unsigned overheadClients =
        static_cast<unsigned>(queueCapacity);
    std::printf("overhead level: %u clients x %zu iterations "
                "(observability off)...\n",
                overheadClients, iterations);
    const std::string offSocketPath =
        "/tmp/copernicus_bench_serve_off.sock";
    ServeOptions offOptions;
    offOptions.socketPath = offSocketPath;
    offOptions.queueCapacity = queueCapacity;
    offOptions.checkRegistry = false;
    offOptions.observability = false;
    Server offServer(std::move(offOptions));
    offServer.start();
    const LevelResult offResult =
        runLevel(offSocketPath, overheadClients, iterations);
    offServer.beginShutdown();
    offServer.waitDrained();

    // results[1] is the at-capacity plane-on run of the same shape.
    const LevelResult &onResult = results[1];
    const double overheadFrac =
        offResult.p99Us > 0
            ? (onResult.p99Us - offResult.p99Us) / offResult.p99Us
            : 0.0;

    // Concurrency sweep: the epoll core at 100/1000/4000 loopback-TCP
    // connections, NDJSON vs binary framing. Queue capacity is lifted
    // above the largest level so the sweep measures the event loop,
    // not admission shedding; total request count per level is held
    // roughly constant so the sizes are comparable.
    const std::size_t sweepRequests =
        benchutil::fullScale() ? 60000 : 20000;
    ServeOptions tcpOptions;
    tcpOptions.socketPath = "/tmp/copernicus_bench_serve_tcp.sock";
    tcpOptions.tcpPort = 0;
    tcpOptions.queueCapacity = 8192;
    tcpOptions.checkRegistry = false;
    Server tcpServer(std::move(tcpOptions));
    tcpServer.start();
    std::vector<ConcResult> sweep;
    for (unsigned connections : {100u, 1000u, 4000u}) {
        const std::size_t iters = std::max<std::size_t>(
            4, sweepRequests / connections);
        for (const bool binary : {false, true}) {
            std::printf("concurrency: %u connections x %zu pings "
                        "(%s)...\n",
                        connections, iters,
                        binary ? "binary" : "ndjson");
            sweep.push_back(runConcurrencyLevel(
                tcpServer.tcpPort(), connections, iters, binary));
            fatalIf(sweep.back().lost != 0,
                    "serve_load: " +
                        std::to_string(sweep.back().lost) +
                        " lost responses at " +
                        std::to_string(connections) + " connections");
        }
    }
    tcpServer.beginShutdown();
    tcpServer.waitDrained();

    // Result-memo cold vs warm: the same advise request twice against
    // a plane-off server (no per-request trace ids), so the warm
    // response must be byte-identical to the populating miss.
    const std::string memoSocketPath =
        "/tmp/copernicus_bench_serve_memo.sock";
    ServeOptions memoOptions;
    memoOptions.socketPath = memoSocketPath;
    memoOptions.checkRegistry = false;
    memoOptions.observability = false;
    Server memoServer(std::move(memoOptions));
    memoServer.start();
    ServeClient memoClient = ServeClient::connectUnix(memoSocketPath);
    memoClient.setReceiveTimeoutMs(30000);
    memoClient.enableBinaryFraming();
    // A matrix heavy enough that the sweep dominates the warm path's
    // unavoidable work (regenerating + content-hashing the matrix for
    // the memo key).
    const std::string memoRequest =
        "{\"op\": \"advise\", \"id\": 1, \"params\": {\"matrix\": "
        "{\"kind\": \"random\", \"n\": 1024, \"density\": 0.02, "
        "\"seed\": 7}, \"goal\": \"latency\"}}";
    const auto coldStart = std::chrono::steady_clock::now();
    const std::string coldResponse =
        memoClient.requestLine(memoRequest);
    const double memoColdUs =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - coldStart)
            .count();
    const auto warmStart = std::chrono::steady_clock::now();
    const std::string warmResponse =
        memoClient.requestLine(memoRequest);
    const double memoWarmUs =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - warmStart)
            .count();
    fatalIf(coldResponse != warmResponse,
            "serve_load: memo hit payload differs from the "
            "populating miss");
    memoServer.beginShutdown();
    memoServer.waitDrained();

    std::printf("\n%-8s %10s %10s %8s %12s %10s %10s %10s\n", "clients",
                "completed", "rejected", "rej %", "rps", "p50 us",
                "p95 us", "p99 us");
    for (const LevelResult &r : results) {
        std::printf("%-8u %10zu %10zu %7.2f%% %12.1f %10.1f %10.1f "
                    "%10.1f\n",
                    r.clients, r.completed, r.rejected,
                    100 * r.rejectRate(), r.throughputRps(), r.p50Us,
                    r.p95Us, r.p99Us);
    }
    std::printf("\nobservability overhead at %u clients: p99 %.1f us "
                "(on) vs %.1f us (off), %+.1f%%\n",
                overheadClients, onResult.p99Us, offResult.p99Us,
                100 * overheadFrac);

    std::printf("\n%-12s %-8s %10s %6s %12s %10s %10s %10s\n",
                "connections", "proto", "completed", "lost", "rps",
                "p50 us", "p95 us", "p99 us");
    for (const ConcResult &r : sweep) {
        std::printf("%-12u %-8s %10zu %6zu %12.1f %10.1f %10.1f "
                    "%10.1f\n",
                    r.connections, r.protocol.c_str(), r.completed,
                    r.lost, r.throughputRps(), r.p50Us, r.p95Us,
                    r.p99Us);
    }
    std::printf(
        "note: accepted loopback-TCP connections run with "
        "TCP_NODELAY;\nwithout it Nagle would hold each sub-MSS "
        "response back until the peer's\ndelayed ACK (tens of ms), "
        "which would dominate every latency column above.\n");
    std::printf("\nresult memo (advise, random n=1024): cold %.1f us, "
                "warm %.1f us (%.1fx), payloads byte-identical\n",
                memoColdUs, memoWarmUs,
                memoWarmUs > 0 ? memoColdUs / memoWarmUs : 0.0);

    const char *jsonPath = "BENCH_serve_load.json";
    std::ofstream json(jsonPath);
    fatalIf(!json, std::string("cannot open '") + jsonPath + "'");
    json << "{\n  \"queue_capacity\": " << queueCapacity
         << ",\n  \"iterations_per_client\": " << iterations
         << ",\n  \"levels\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const LevelResult &r = results[i];
        json << "    {\"clients\": " << r.clients
             << ", \"completed\": " << r.completed
             << ", \"rejected\": " << r.rejected
             << ", \"errors\": " << r.errors << ", \"reject_rate\": ";
        writeJsonNumber(json, r.rejectRate());
        json << ", \"throughput_rps\": ";
        writeJsonNumber(json, r.throughputRps());
        json << ", \"p50_us\": ";
        writeJsonNumber(json, r.p50Us);
        json << ", \"p95_us\": ";
        writeJsonNumber(json, r.p95Us);
        json << ", \"p99_us\": ";
        writeJsonNumber(json, r.p99Us);
        json << '}' << (i + 1 < results.size() ? "," : "") << '\n';
    }
    json << "  ],\n  \"observability\": {\"clients\": "
         << overheadClients << ", \"p99_on_us\": ";
    writeJsonNumber(json, onResult.p99Us);
    json << ", \"p99_off_us\": ";
    writeJsonNumber(json, offResult.p99Us);
    json << ", \"p99_overhead_frac\": ";
    writeJsonNumber(json, overheadFrac);
    json << "},\n  \"tcp_nodelay\": true,\n  \"concurrency\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const ConcResult &r = sweep[i];
        json << "    {\"connections\": " << r.connections
             << ", \"protocol\": \"" << r.protocol
             << "\", \"completed\": " << r.completed
             << ", \"lost\": " << r.lost << ", \"throughput_rps\": ";
        writeJsonNumber(json, r.throughputRps());
        json << ", \"p50_us\": ";
        writeJsonNumber(json, r.p50Us);
        json << ", \"p95_us\": ";
        writeJsonNumber(json, r.p95Us);
        json << ", \"p99_us\": ";
        writeJsonNumber(json, r.p99Us);
        json << '}' << (i + 1 < sweep.size() ? "," : "") << '\n';
    }
    json << "  ],\n  \"memo\": {\"op\": \"advise\", \"cold_us\": ";
    writeJsonNumber(json, memoColdUs);
    json << ", \"warm_us\": ";
    writeJsonNumber(json, memoWarmUs);
    json << ", \"speedup\": ";
    writeJsonNumber(json,
                    memoWarmUs > 0 ? memoColdUs / memoWarmUs : 0.0);
    json << ", \"byte_identical\": true}\n}\n";
    std::cout << "wrote " << jsonPath << '\n';
    return 0;
}
