/**
 * @file
 * Table 2: FPGA resource utilization (BRAM_18K, FF, LUT) and total
 * dynamic power per format and partition size. Paper formats at the
 * measured sizes come from the Vivado calibration table; extension
 * formats show the anchored structural estimates.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "fpga/buffer_model.hh"
#include "fpga/power_model.hh"
#include "fpga/resource_model.hh"

using namespace copernicus;

int
main(int argc, char **argv)
{
    benchutil::banner("Table 2",
                      "Resource utilization and dynamic power per "
                      "format x partition size ([cal] = Vivado "
                      "calibration from the paper, [est] = anchored "
                      "structural estimate)", argc, argv);

    TableWriter table({"format", "p", "BRAM_18K", "FF (K)", "LUT (K)",
                       "BRAM %", "worst-case Kbit", "dyn power (W)",
                       "static (W)", "source"});
    for (FormatKind kind : allFormats()) {
        for (Index p : {8u, 16u, 32u}) {
            const auto res = estimateResources(kind, p);
            const auto power = estimatePower(kind, p);
            const auto util = utilization(res);
            table.addRow({std::string(formatName(kind)),
                          std::to_string(p),
                          TableWriter::num(res.bram18k, 3),
                          TableWriter::num(res.ffK, 3),
                          TableWriter::num(res.lutK, 3),
                          TableWriter::num(util.bramPct, 3),
                          TableWriter::num(
                              totalBufferBits(kind, p) / 1024.0, 4),
                          TableWriter::num(power.dynamicW(), 3),
                          TableWriter::num(power.staticW, 3),
                          res.calibrated ? "cal" : "est"});
        }
    }
    table.print(std::cout);

    const DeviceCapacity device;
    std::cout << "\nDevice (xc7z020): BRAM_18K " << device.bram18k
              << ", FF " << device.ffK << "K, LUT " << device.lutK
              << "K\n";
    std::cout << "Expected shape: CSR/CSC fewest BRAMs; BCSR matches "
                 "DENSE; LIL/DIA FF grows steeply with p.\n";
    return 0;
}
