/**
 * @file
 * Software-codec microbenchmarks (google-benchmark): encode, decode
 * and compressed-domain SpMV wall-clock cost per format on a 16x16
 * tile at two densities. These time the *host-side* implementation,
 * complementing the modelled hardware cycles.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "formats/registry.hh"
#include "kernels/spmv.hh"

namespace copernicus {
namespace {

Tile
makeTile(Index p, double density)
{
    Rng rng(0xBEEF + static_cast<std::uint64_t>(density * 1000));
    Tile t(p);
    for (Index r = 0; r < p; ++r)
        for (Index c = 0; c < p; ++c)
            if (rng.chance(density))
                t(r, c) = static_cast<Value>(rng.range(0.5, 1.5));
    return t;
}

FormatKind
kindAt(int index)
{
    return allFormats()[static_cast<std::size_t>(index)];
}

void
BM_Encode(benchmark::State &state)
{
    const FormatKind kind = kindAt(static_cast<int>(state.range(0)));
    const double density = state.range(1) / 100.0;
    const Tile tile = makeTile(16, density);
    const FormatCodec &codec = defaultCodec(kind);
    for (auto _ : state) {
        auto encoded = codec.encode(tile);
        benchmark::DoNotOptimize(encoded);
    }
    state.SetLabel(std::string(formatName(kind)) + " d=" +
                   std::to_string(density));
}

void
BM_Decode(benchmark::State &state)
{
    const FormatKind kind = kindAt(static_cast<int>(state.range(0)));
    const double density = state.range(1) / 100.0;
    const Tile tile = makeTile(16, density);
    const FormatCodec &codec = defaultCodec(kind);
    const auto encoded = codec.encode(tile);
    for (auto _ : state) {
        Tile decoded = codec.decode(*encoded);
        benchmark::DoNotOptimize(decoded);
    }
    state.SetLabel(std::string(formatName(kind)) + " d=" +
                   std::to_string(density));
}

void
BM_SpmvEncoded(benchmark::State &state)
{
    const FormatKind kind = kindAt(static_cast<int>(state.range(0)));
    const double density = state.range(1) / 100.0;
    const Tile tile = makeTile(16, density);
    const auto encoded = defaultCodec(kind).encode(tile);
    Rng rng(99);
    std::vector<Value> x(16);
    for (auto &v : x)
        v = static_cast<Value>(rng.range(-1.0, 1.0));
    for (auto _ : state) {
        auto y = spmvEncoded(*encoded, x);
        benchmark::DoNotOptimize(y);
    }
    state.SetLabel(std::string(formatName(kind)) + " d=" +
                   std::to_string(density));
}

void
formatArgs(benchmark::internal::Benchmark *bench)
{
    const int count = static_cast<int>(allFormats().size());
    for (int f = 0; f < count; ++f)
        for (int density : {5, 50})
            bench->Args({f, density});
}

BENCHMARK(BM_Encode)->Apply(formatArgs);
BENCHMARK(BM_Decode)->Apply(formatArgs);
BENCHMARK(BM_SpmvEncoded)->Apply(formatArgs);

} // namespace
} // namespace copernicus

BENCHMARK_MAIN();
