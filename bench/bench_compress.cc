/**
 * @file
 * Second-stage stream-compression characterization: per-stream-class
 * compression ratios and throughputs for both in-repo families (LZ4
 * and LZF, compress/) across the Table-1 workload catalog, plus the
 * Figure-10 bandwidth-utilization sweep re-run with the second stage
 * on and off.
 *
 * Streams are taken from the CSR encoding of every tile — the
 * canonical format with all three stream classes (values, column
 * indices, row offsets). Every compressed image is decompressed and
 * byte-compared on the spot, so a run that completes is also a
 * roundtrip proof over the whole catalog. The emitted
 * BENCH_compress.json is schema-checked before the bench exits and
 * uploaded by the CI perf-smoke job.
 *
 *   bench_compress [--smoke] [--json PATH]
 *
 * --smoke shrinks the catalog slice and the fig10 sweep so the run
 * finishes in CI time; --json chooses the artifact path (default
 * BENCH_compress.json in the working directory).
 */

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/json.hh"
#include "compress/second_stage.hh"
#include "compress/stream_compressor.hh"
#include "core/study.hh"
#include "formats/registry.hh"
#include "matrix/partitioner.hh"

using namespace copernicus;

namespace {

using Clock = std::chrono::steady_clock;

double
nsSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
}

/** One (stream class, family) cell of the characterization. */
struct FamilyAccum
{
    double compressedBytes = 0;
    double compressNs = 0;
    double decompressNs = 0;
};

struct ClassAccum
{
    double rawBytes = 0;
    FamilyAccum lz4;
    FamilyAccum lzf;
};

struct WorkloadResult
{
    std::string name;
    std::size_t tiles = 0;
    std::size_t nnz = 0;
    std::array<ClassAccum, 3> classes; ///< indexed by StreamClass
};

/** bytes over ns -> MB/s; 0 when nothing was timed. */
double
mbPerSec(double bytes, double ns)
{
    return ns <= 0 ? 0.0 : bytes * 1e3 / ns;
}

/** payload bytes / raw bytes; 1 for an empty class. */
double
ratioOf(double compressedBytes, double rawBytes)
{
    return rawBytes <= 0 ? 1.0 : compressedBytes / rawBytes;
}

WorkloadResult
characterize(const std::string &name, const TripletMatrix &matrix,
             Index p)
{
    const FormatRegistry &registry = defaultRegistry();
    WorkloadResult r;
    r.name = name;
    r.nnz = matrix.nnz();

    std::vector<std::byte> compressed;
    std::vector<std::byte> scratch;
    const Partitioning parts = partition(matrix, p);
    r.tiles = parts.tiles.size();
    for (const Tile &tile : parts.tiles) {
        const auto encoded =
            registry.codec(FormatKind::CSR).encode(tile);
        for (const TypedStream &stream : encoded->typedStreams()) {
            ClassAccum &cls =
                r.classes[static_cast<std::size_t>(stream.cls)];
            cls.rawBytes += static_cast<double>(stream.size());
            for (const StreamCompressor *compressor :
                 {&lz4Compressor(), &lzfCompressor()}) {
                FamilyAccum &fam =
                    compressor->family() == CompressionFamily::Lz4
                        ? cls.lz4
                        : cls.lzf;
                compressed.clear();
                auto t0 = Clock::now();
                compressor->compress(stream.bytes, compressed);
                fam.compressNs += nsSince(t0);
                fam.compressedBytes +=
                    static_cast<double>(compressed.size());

                scratch.assign(stream.size(), std::byte(0xAA));
                t0 = Clock::now();
                const bool ok =
                    compressor->decompress(compressed, scratch);
                fam.decompressNs += nsSince(t0);
                fatalIf(!ok || (stream.size() != 0 &&
                                std::memcmp(scratch.data(),
                                            stream.bytes.data(),
                                            stream.size()) != 0),
                        "bench_compress: roundtrip mismatch on '" +
                            name + "' stream " + stream.name);
            }
        }
    }
    return r;
}

/** The fig10 utilization sweep, second stage off and on. */
struct Fig10Result
{
    std::vector<double> densities;
    // bwUtil[format][density index], off and on.
    std::vector<std::string> formats;
    std::vector<std::vector<double>> off;
    std::vector<std::vector<double>> on;
};

Fig10Result
runFig10(const std::vector<double> &densities, Index dim, Index p)
{
    Fig10Result fig;
    fig.densities = densities;
    for (FormatKind kind : paperFormats())
        fig.formats.emplace_back(formatName(kind));

    benchutil::WorkloadSet set;
    for (double density : densities)
        set.emplace_back("d=" + std::to_string(density),
                         TripletMatrix(1, 1));
    benchutil::generateWorkloads(set, [&](std::size_t i) {
        std::uint64_t sm = benchutil::benchSeed + 0x300 + i;
        Rng rng(splitMix64(sm));
        return randomMatrix(dim, densities[i], rng);
    });

    for (const bool second_stage : {false, true}) {
        StudyConfig cfg;
        cfg.partitionSizes = {p};
        cfg.hls.secondStageCompression = second_stage;
        Study study(cfg);
        for (const auto &[name, matrix] : set)
            study.addWorkload(name, matrix);
        const StudyResult result = study.run();

        auto &table = second_stage ? fig.on : fig.off;
        table.assign(fig.formats.size(),
                     std::vector<double>(densities.size(), 0.0));
        const auto &kinds = paperFormats();
        for (std::size_t f = 0; f < kinds.size(); ++f) {
            for (std::size_t d = 0; d < densities.size(); ++d) {
                for (const StudyRow &row : result.rows) {
                    if (row.format == kinds[f] &&
                        row.workload == set[d].first)
                        table[f][d] = row.bandwidthUtilization;
                }
            }
        }
    }
    return fig;
}

void
writeFamilyJson(std::ostream &out, const char *label,
                const FamilyAccum &fam, double rawBytes)
{
    out << '"' << label << "\": {\"ratio\": ";
    writeJsonNumber(out, ratioOf(fam.compressedBytes, rawBytes));
    out << ", \"compressed_bytes\": ";
    writeJsonNumber(out, fam.compressedBytes);
    out << ", \"compress_mb_s\": ";
    writeJsonNumber(out, mbPerSec(rawBytes, fam.compressNs));
    out << ", \"decompress_mb_s\": ";
    writeJsonNumber(out, mbPerSec(rawBytes, fam.decompressNs));
    out << '}';
}

std::string
renderJson(const std::vector<WorkloadResult> &results,
           const Fig10Result &fig, bool smoke, Index p)
{
    std::ostringstream out;
    out << "{\n  \"bench\": \"compress\",\n";
    out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    out << "  \"p\": " << p << ",\n";
    out << "  \"families\": [\"lz4\", \"lzf\"],\n";
    out << "  \"classes\": [\"value\", \"index\", \"offset\"],\n";
    out << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        out << "    {\"workload\": ";
        writeJsonString(out, r.name);
        out << ", \"tiles\": " << r.tiles << ", \"nnz\": " << r.nnz
            << ",\n";
        static constexpr const char *classNames[] = {"value", "index",
                                                     "offset"};
        for (std::size_t c = 0; c < 3; ++c) {
            const ClassAccum &cls = r.classes[c];
            out << "     \"" << classNames[c]
                << "\": {\"raw_bytes\": ";
            writeJsonNumber(out, cls.rawBytes);
            out << ", ";
            writeFamilyJson(out, "lz4", cls.lz4, cls.rawBytes);
            out << ", ";
            writeFamilyJson(out, "lzf", cls.lzf, cls.rawBytes);
            out << '}' << (c + 1 < 3 ? "," : "") << '\n';
        }
        out << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"fig10\": {\n    \"p\": " << p
        << ",\n    \"densities\": [";
    for (std::size_t d = 0; d < fig.densities.size(); ++d) {
        if (d != 0)
            out << ", ";
        writeJsonNumber(out, fig.densities[d]);
    }
    out << "],\n    \"bw_util\": [\n";
    for (std::size_t f = 0; f < fig.formats.size(); ++f) {
        out << "      {\"format\": ";
        writeJsonString(out, fig.formats[f]);
        for (const bool second_stage : {false, true}) {
            const auto &table = second_stage ? fig.on : fig.off;
            out << ", \"" << (second_stage ? "on" : "off")
                << "\": [";
            for (std::size_t d = 0; d < table[f].size(); ++d) {
                if (d != 0)
                    out << ", ";
                writeJsonNumber(out, table[f][d]);
            }
            out << ']';
        }
        out << '}' << (f + 1 < fig.formats.size() ? "," : "") << '\n';
    }
    out << "    ]\n  }\n}\n";
    return out.str();
}

/**
 * Schema self-check over the rendered artifact: well-formed JSON plus
 * every key a downstream consumer reads. Cheap insurance that a
 * refactor of the writer cannot silently ship an unparsable artifact.
 */
void
checkSchema(const std::string &text)
{
    fatalIf(!jsonValid(text),
            "BENCH_compress.json failed JSON validation");
    for (const char *key :
         {"\"bench\"", "\"smoke\"", "\"families\"", "\"classes\"",
          "\"workloads\"", "\"ratio\"", "\"compress_mb_s\"",
          "\"decompress_mb_s\"", "\"raw_bytes\"", "\"fig10\"",
          "\"densities\"", "\"bw_util\""}) {
        fatalIf(text.find(key) == std::string::npos,
                std::string("BENCH_compress.json schema check: "
                            "missing key ") +
                    key);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string jsonPath = "BENCH_compress.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--json" && i + 1 < argc)
            jsonPath = argv[++i];
    }
    benchutil::banner("compress",
                      "second-stage stream compression: per-class "
                      "ratios/throughputs and fig10 on/off",
                      argc, argv);

    const Index p = 16;
    benchutil::WorkloadSet catalog = benchutil::suiteWorkloads();
    if (smoke && catalog.size() > 4)
        catalog.erase(catalog.begin() + 4, catalog.end());

    std::vector<WorkloadResult> results;
    for (const auto &[name, matrix] : catalog) {
        WorkloadResult r = characterize(name, matrix, p);
        const ClassAccum &idx = r.classes[1];
        std::printf("%-14s tiles=%-6zu raw=%9.0f B  "
                    "index lz4=%.3f lzf=%.3f  value lz4=%.3f\n",
                    r.name.c_str(), r.tiles,
                    r.classes[0].rawBytes + idx.rawBytes +
                        r.classes[2].rawBytes,
                    ratioOf(idx.lz4.compressedBytes, idx.rawBytes),
                    ratioOf(idx.lzf.compressedBytes, idx.rawBytes),
                    ratioOf(r.classes[0].lz4.compressedBytes,
                            r.classes[0].rawBytes));
        results.push_back(std::move(r));
    }

    const std::vector<double> densities =
        smoke ? std::vector<double>{0.01} : benchutil::densitySweep();
    const Index dim = smoke ? 256 : benchutil::syntheticDim();
    std::printf("\nfig10 sweep: %zu densities, dim %u, second stage "
                "off vs on...\n",
                densities.size(), dim);
    const Fig10Result fig = runFig10(densities, dim, p);

    const std::string json = renderJson(results, fig, smoke, p);
    checkSchema(json);
    std::ofstream out(jsonPath);
    fatalIf(!out, "bench_compress: cannot open '" + jsonPath + "'");
    out << json;
    out.close();
    std::printf("\nwrote %s (schema ok)\n", jsonPath.c_str());
    return 0;
}
