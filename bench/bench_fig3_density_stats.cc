/**
 * @file
 * Figure 3: density and spatial locality of the SuiteSparse workloads —
 * (a) % non-zero values per non-zero partition, (b) % non-zero values
 * within non-zero rows, (c) % non-zero rows per partition, for
 * partition sizes 8, 16 and 32.
 */

#include <iostream>

#include "analysis/table_writer.hh"
#include "bench_common.hh"
#include "matrix/stats.hh"

using namespace copernicus;

int
main(int argc, char **argv)
{
    benchutil::banner("Figure 3",
                      "Partition-level sparsity statistics (percent) "
                      "per SuiteSparse surrogate and partition size", argc, argv);

    TableWriter table({"ID", "p", "partition density %", "row density %",
                       "non-zero rows %"});
    for (const auto &[id, matrix] : benchutil::suiteWorkloads()) {
        for (Index p : {8u, 16u, 32u}) {
            const auto stats = computePartitionStats(matrix, p);
            table.addRow(
                {id, std::to_string(p),
                 TableWriter::num(100.0 * stats.avgPartitionDensity, 3),
                 TableWriter::num(100.0 * stats.avgRowDensity, 3),
                 TableWriter::num(100.0 * stats.avgNonZeroRowFraction,
                                  3)});
        }
    }
    table.print(std::cout);
    return 0;
}
