/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures.
 *
 * Scale: benches default to laptop-friendly matrix sizes (surrogates at
 * half dimension, synthetic matrices at n = 1024 instead of the paper's
 * 8000). Setting COPERNICUS_FULL=1 in the environment switches to the
 * catalog/paper sizes. Per-partition metrics (sigma, balance ratio,
 * bandwidth utilization) are size-independent given the same density,
 * so the reduced scale preserves every trend; only absolute end-to-end
 * seconds shrink.
 */

#ifndef COPERNICUS_BENCH_BENCH_COMMON_HH
#define COPERNICUS_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/status.hh"
#include "matrix/triplet_matrix.hh"
#include "trace/profile.hh"
#include "trace/trace_writer.hh"
#include "workloads/generators.hh"
#include "workloads/suite_catalog.hh"

namespace copernicus::benchutil {

/** Fixed seed so bench output is reproducible run to run. */
inline constexpr std::uint64_t benchSeed = 0xC0FFEE;

/** True when COPERNICUS_FULL=1 requests paper-scale workloads. */
inline bool
fullScale()
{
    const char *env = std::getenv("COPERNICUS_FULL");
    return env != nullptr && env[0] == '1';
}

/** Synthetic matrix dimension (paper: 8000). */
inline Index
syntheticDim()
{
    return fullScale() ? 8000 : 1024;
}

/** The density sweep of Figures 5, 9 and 10. */
inline std::vector<double>
densitySweep()
{
    return {0.0001, 0.001, 0.01, 0.1, 0.2, 0.5};
}

/** The band-width sweep of Figures 6 and 11 (width 1 = diagonal). */
inline std::vector<Index>
bandWidths()
{
    return {1, 2, 4, 8, 16, 32, 64};
}

/** Named workload list. */
using WorkloadSet = std::vector<std::pair<std::string, TripletMatrix>>;

/** The 20 Table-1 surrogates at bench scale. */
inline WorkloadSet
suiteWorkloads()
{
    WorkloadSet set;
    for (const auto &info : suiteCatalog()) {
        SuiteMatrixInfo scaled = info;
        if (!fullScale())
            scaled.surrogateDim = std::max<Index>(512,
                                                  info.surrogateDim / 2);
        set.emplace_back(info.id, scaled.generate(benchSeed));
    }
    return set;
}

/** Random matrices across the density sweep. */
inline WorkloadSet
randomWorkloads()
{
    WorkloadSet set;
    Rng rng(benchSeed);
    for (double density : densitySweep()) {
        set.emplace_back("d=" + std::to_string(density),
                         randomMatrix(syntheticDim(), density, rng));
    }
    return set;
}

/** Band matrices across the width sweep. */
inline WorkloadSet
bandWorkloads()
{
    WorkloadSet set;
    Rng rng(benchSeed + 1);
    for (Index width : bandWidths()) {
        set.emplace_back("w=" + std::to_string(width),
                         bandMatrix(syntheticDim(), width, rng));
    }
    return set;
}

/** Observability flags shared by every bench binary. */
struct BenchFlags
{
    std::string tracePath;
    std::string statsJsonPath;
    bool profile = false;
};

inline BenchFlags &
benchFlags()
{
    static BenchFlags flags;
    return flags;
}

/** The writer installed as the process-wide sink under --trace. */
inline TraceWriter &
benchTraceWriter()
{
    static TraceWriter writer;
    return writer;
}

/** atexit hook: write the artifacts the flags asked for. */
inline void
writeBenchArtifacts()
{
    const BenchFlags &flags = benchFlags();
    if (!flags.tracePath.empty()) {
        setActiveTraceSink(nullptr);
        benchTraceWriter().writeFile(flags.tracePath);
        std::fprintf(stderr, "wrote Chrome trace (%zu events) to %s\n",
                     benchTraceWriter().eventCount(),
                     flags.tracePath.c_str());
    }
    if (flags.profile || !flags.statsJsonPath.empty()) {
        const ProfileStats stats;
        if (flags.profile)
            stats.dump(std::cerr);
        if (!flags.statsJsonPath.empty()) {
            std::ofstream out(flags.statsJsonPath);
            fatalIf(!out, "cannot open '" + flags.statsJsonPath + "'");
            dumpGroupsJson(out, {&stats.group()});
            std::fprintf(stderr, "wrote stats JSON to %s\n",
                         flags.statsJsonPath.c_str());
        }
    }
}

/**
 * Parse `--trace <path>`, `--stats-json <path>` and `--profile`;
 * unknown arguments are ignored so benches can add their own. Installs
 * the global trace sink / enables the profile registry and registers
 * an atexit hook that writes the artifacts, so a bench body needs no
 * further code.
 */
inline void
parseBenchFlags(int argc, char **argv)
{
    BenchFlags &flags = benchFlags();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--profile") {
            flags.profile = true;
        } else if ((arg == "--trace" || arg == "--stats-json") &&
                   i + 1 < argc) {
            (arg == "--trace" ? flags.tracePath
                              : flags.statsJsonPath) = argv[++i];
        }
    }
    if (flags.profile || !flags.statsJsonPath.empty())
        ProfileRegistry::global().setEnabled(true);
    if (!flags.tracePath.empty())
        setActiveTraceSink(&benchTraceWriter());
    if (flags.profile || !flags.statsJsonPath.empty() ||
        !flags.tracePath.empty()) {
        std::atexit(writeBenchArtifacts);
    }
}

/**
 * Print the standard bench banner; the argc/argv form also wires up
 * the shared observability flags via parseBenchFlags().
 */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("== %s ==\n%s\n", experiment, description);
    std::printf("scale: %s (set COPERNICUS_FULL=1 for paper scale)\n\n",
                fullScale() ? "paper" : "reduced");
}

inline void
banner(const char *experiment, const char *description, int argc,
       char **argv)
{
    parseBenchFlags(argc, argv);
    banner(experiment, description);
}

} // namespace copernicus::benchutil

#endif // COPERNICUS_BENCH_BENCH_COMMON_HH
