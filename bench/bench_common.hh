/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures.
 *
 * Scale: benches default to laptop-friendly matrix sizes (surrogates at
 * half dimension, synthetic matrices at n = 1024 instead of the paper's
 * 8000). Setting COPERNICUS_FULL=1 in the environment switches to the
 * catalog/paper sizes. Per-partition metrics (sigma, balance ratio,
 * bandwidth utilization) are size-independent given the same density,
 * so the reduced scale preserves every trend; only absolute end-to-end
 * seconds shrink.
 */

#ifndef COPERNICUS_BENCH_BENCH_COMMON_HH
#define COPERNICUS_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/status.hh"
#include "common/thread_pool.hh"
#include "formats/encode_cache.hh"
#include "matrix/triplet_matrix.hh"
#include "trace/profile.hh"
#include "trace/trace_writer.hh"
#include "workloads/generators.hh"
#include "workloads/suite_catalog.hh"

namespace copernicus::benchutil {

/** Fixed seed so bench output is reproducible run to run. */
inline constexpr std::uint64_t benchSeed = 0xC0FFEE;

/** True when COPERNICUS_FULL=1 requests paper-scale workloads. */
inline bool
fullScale()
{
    const char *env = std::getenv("COPERNICUS_FULL");
    return env != nullptr && env[0] == '1';
}

/** Synthetic matrix dimension (paper: 8000). */
inline Index
syntheticDim()
{
    return fullScale() ? 8000 : 1024;
}

/** The density sweep of Figures 5, 9 and 10. */
inline std::vector<double>
densitySweep()
{
    return {0.0001, 0.001, 0.01, 0.1, 0.2, 0.5};
}

/** The band-width sweep of Figures 6 and 11 (width 1 = diagonal). */
inline std::vector<Index>
bandWidths()
{
    return {1, 2, 4, 8, 16, 32, 64};
}

/** Named workload list. */
using WorkloadSet = std::vector<std::pair<std::string, TripletMatrix>>;

/**
 * Fill a pre-sized workload set in parallel over the process-wide
 * pool. Each generator draws from its own per-index seed, so the
 * matrices are identical at any jobs setting.
 */
inline void
generateWorkloads(WorkloadSet &set,
                  const std::function<TripletMatrix(std::size_t)> &make)
{
    ThreadPool::global().parallelFor(set.size(), [&](std::size_t i) {
        set[i].second = make(i);
    });
}

/** The 20 Table-1 surrogates at bench scale. */
inline WorkloadSet
suiteWorkloads()
{
    const auto &catalog = suiteCatalog();
    WorkloadSet set;
    for (const auto &info : catalog)
        set.emplace_back(info.id, TripletMatrix(1, 1));
    generateWorkloads(set, [&](std::size_t i) {
        SuiteMatrixInfo scaled = catalog[i];
        if (!fullScale())
            scaled.surrogateDim =
                std::max<Index>(512, catalog[i].surrogateDim / 2);
        return scaled.generate(benchSeed);
    });
    return set;
}

/** Random matrices across the density sweep. */
inline WorkloadSet
randomWorkloads()
{
    const auto densities = densitySweep();
    WorkloadSet set;
    for (double density : densities)
        set.emplace_back("d=" + std::to_string(density),
                         TripletMatrix(1, 1));
    generateWorkloads(set, [&](std::size_t i) {
        std::uint64_t sm = benchSeed + i;
        Rng rng(splitMix64(sm));
        return randomMatrix(syntheticDim(), densities[i], rng);
    });
    return set;
}

/** Band matrices across the width sweep. */
inline WorkloadSet
bandWorkloads()
{
    const auto widths = bandWidths();
    WorkloadSet set;
    for (Index width : widths)
        set.emplace_back("w=" + std::to_string(width), TripletMatrix(1, 1));
    generateWorkloads(set, [&](std::size_t i) {
        std::uint64_t sm = benchSeed + 0x100 + i;
        Rng rng(splitMix64(sm));
        return bandMatrix(syntheticDim(), widths[i], rng);
    });
    return set;
}

/** Observability flags shared by every bench binary. */
struct BenchFlags
{
    std::string tracePath;
    std::string statsJsonPath;
    bool profile = false;
};

inline BenchFlags &
benchFlags()
{
    static BenchFlags flags;
    return flags;
}

/** The writer installed as the process-wide sink under --trace. */
inline TraceWriter &
benchTraceWriter()
{
    static TraceWriter writer;
    return writer;
}

/** atexit hook: write the artifacts the flags asked for. */
inline void
writeBenchArtifacts()
{
    const BenchFlags &flags = benchFlags();
    if (!flags.tracePath.empty()) {
        setActiveTraceSink(nullptr);
        // Pool workers never emit into the writer directly (it is
        // single-threaded); their activity is recorded as lane spans
        // and serialised here, after all parallel work is done.
        emitWorkerLanes(benchTraceWriter(), ThreadPool::drainLaneSpans());
        benchTraceWriter().writeFile(flags.tracePath);
        std::fprintf(stderr, "wrote Chrome trace (%zu events) to %s\n",
                     benchTraceWriter().eventCount(),
                     flags.tracePath.c_str());
    }
    if (flags.profile || !flags.statsJsonPath.empty()) {
        const ProfileStats stats;
        const ThreadPoolStats poolStats;
        const EncodeCacheStats cacheStats;
        if (flags.profile)
            stats.dump(std::cerr);
        if (!flags.statsJsonPath.empty()) {
            std::ofstream out(flags.statsJsonPath);
            fatalIf(!out, "cannot open '" + flags.statsJsonPath + "'");
            dumpGroupsJson(out, {&stats.group(), &poolStats.group(),
                                 &cacheStats.group()});
            std::fprintf(stderr, "wrote stats JSON to %s\n",
                         flags.statsJsonPath.c_str());
        }
    }
}

/**
 * Parse `--trace <path>`, `--stats-json <path>`, `--profile` and
 * `--jobs N`; unknown arguments are ignored so benches can add their
 * own. Installs the global trace sink / enables the profile registry
 * and registers an atexit hook that writes the artifacts, so a bench
 * body needs no further code. `--jobs N` caps every pool in the
 * process (equivalent to COPERNICUS_JOBS=N in the environment).
 */
inline void
parseBenchFlags(int argc, char **argv)
{
    BenchFlags &flags = benchFlags();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--profile") {
            flags.profile = true;
        } else if ((arg == "--trace" || arg == "--stats-json") &&
                   i + 1 < argc) {
            (arg == "--trace" ? flags.tracePath
                              : flags.statsJsonPath) = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            const long n = std::strtol(argv[++i], nullptr, 10);
            fatalIf(n < 1, "--jobs wants a positive integer");
            setJobsOverride(static_cast<unsigned>(n));
        }
    }
    if (flags.profile || !flags.statsJsonPath.empty())
        ProfileRegistry::global().setEnabled(true);
    if (!flags.tracePath.empty()) {
        setActiveTraceSink(&benchTraceWriter());
        ThreadPool::setLaneRecording(true);
    }
    if (flags.profile || !flags.statsJsonPath.empty() ||
        !flags.tracePath.empty()) {
        std::atexit(writeBenchArtifacts);
    }
}

/**
 * Print the standard bench banner; the argc/argv form also wires up
 * the shared observability flags via parseBenchFlags().
 */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("== %s ==\n%s\n", experiment, description);
    std::printf("scale: %s (set COPERNICUS_FULL=1 for paper scale)\n\n",
                fullScale() ? "paper" : "reduced");
}

inline void
banner(const char *experiment, const char *description, int argc,
       char **argv)
{
    parseBenchFlags(argc, argv);
    banner(experiment, description);
}

} // namespace copernicus::benchutil

#endif // COPERNICUS_BENCH_BENCH_COMMON_HH
