#include "hlsc/schedule.hh"

#include <algorithm>
#include <map>

#include "common/math.hh"
#include "common/status.hh"

namespace copernicus {

Cycles
HlscConstraints::latency(OpKind kind) const
{
    switch (kind) {
      case OpKind::BramLoad: return bramLoadLatency;
      case OpKind::BramStore: return bramStoreLatency;
      case OpKind::IndexArith: return indexArithLatency;
      case OpKind::Add: return addLatency;
      case OpKind::Mul: return mulLatency;
      case OpKind::Compare: return compareLatency;
      case OpKind::Select: return selectLatency;
      case OpKind::HashProbe: return hashProbeLatency;
    }
    panic("HlscConstraints::latency: unknown op kind");
}

namespace {

bool
usesBramPort(OpKind kind)
{
    return kind == OpKind::BramLoad || kind == OpKind::BramStore ||
           kind == OpKind::HashProbe;
}

} // namespace

BodySchedule
scheduleBody(const LoopBody &body, const HlscConstraints &constraints)
{
    BodySchedule schedule;
    schedule.start.assign(body.ops.size(), 0);

    // Port occupancy per (bank, cycle) while placing ops ASAP.
    std::map<std::pair<Index, Cycles>, Index> port_use;
    for (std::size_t i = 0; i < body.ops.size(); ++i) {
        const Op &op = body.ops[i];
        Cycles earliest = 0;
        for (std::size_t dep : op.deps) {
            panicIf(dep >= i,
                    "hlsc: op dependencies must point backwards");
            const Op &producer = body.ops[dep];
            earliest = std::max(earliest,
                                schedule.start[dep] +
                                    constraints.latency(producer.kind));
        }
        if (usesBramPort(op.kind)) {
            while (port_use[{op.bank, earliest}] >=
                   constraints.bramPortsPerBank) {
                ++earliest;
            }
            ++port_use[{op.bank, earliest}];
        }
        schedule.start[i] = earliest;
        schedule.depth = std::max(schedule.depth,
                                  earliest +
                                      constraints.latency(op.kind));
    }

    // Resource MII: port demand per bank over ports per bank, per
    // iteration (the steady-state constraint of a pipelined loop).
    std::map<Index, Index> demand;
    for (const Op &op : body.ops)
        if (usesBramPort(op.kind))
            ++demand[op.bank];
    Cycles res_mii = 1;
    for (const auto &[bank, uses] : demand) {
        res_mii = std::max(res_mii,
                           ceilDiv(uses, constraints.bramPortsPerBank));
    }

    // Recurrence MII from loop-carried dependency cycles.
    Cycles rec_mii = 1;
    for (const CarriedDep &dep : body.carried) {
        fatalIf(dep.distance == 0,
                "hlsc: carried dependency distance must be positive");
        rec_mii = std::max(rec_mii, ceilDiv(dep.delay, dep.distance));
    }

    schedule.ii = std::max(res_mii, rec_mii);
    return schedule;
}

} // namespace copernicus
