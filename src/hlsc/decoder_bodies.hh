/**
 * @file
 * The decompressor inner loops of Listings 1-7 expressed as hlsc loop
 * bodies, so their pipeline depth and initiation interval can be
 * *derived* by the scheduler instead of asserted. The analytic model's
 * constants (HlsConfig::loopDepth, the LIL II of 2, the DOK hash II)
 * are validated against these schedules by the test suite.
 */

#ifndef COPERNICUS_HLSC_DECODER_BODIES_HH
#define COPERNICUS_HLSC_DECODER_BODIES_HH

#include "hlsc/ir.hh"

namespace copernicus {

/**
 * COO (Listing 6): load the tuple, compute the destination address,
 * scatter into the dense row buffer.
 */
LoopBody cooLoopBody();

/**
 * CSR entry loop (Listing 1): parallel loads of colInx and values
 * (separate arrays, separate banks), address arithmetic, scatter.
 */
LoopBody csrInnerLoopBody();

/**
 * CSC scan (Listing 3): load rowInx, compare against the wanted row,
 * conditionally scatter the value.
 */
LoopBody cscScanLoopBody();

/**
 * BCSR block copy (Listing 2): the b*b element copy fully unrolled
 * over partitioned banks.
 *
 * @param blockSize Block edge length b.
 */
LoopBody bcsrBlockBody(Index blockSize);

/**
 * ELL row sweep (Listing 5): the width-wide copy unrolled over
 * partitioned banks.
 *
 * @param width Compressed row width.
 */
LoopBody ellRowBody(Index width);

/**
 * LIL merge step (Listing 4): parallel head loads, a comparator tree
 * finding the minimum pending row index, select + scatter. The row
 * cursor of the winning column feeds the next iteration's scan — a
 * loop-carried dependency that bounds the II.
 *
 * @param p Partition size (number of column lists).
 */
LoopBody lilMergeBody(Index p);

/**
 * DOK tuple walk: hash-probe the table (bucket header then entry on
 * the same bank), then scatter; the collision-chain cursor carried to
 * the next iteration bounds the II.
 */
LoopBody dokLoopBody();

/**
 * DIA row scan (Listing 7): two diagonal headers checked per cycle
 * through the dual-ported diagonal buffer.
 */
LoopBody diaRowScanBody();

} // namespace copernicus

#endif // COPERNICUS_HLSC_DECODER_BODIES_HH
