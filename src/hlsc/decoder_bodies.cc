#include "hlsc/decoder_bodies.hh"

#include "common/math.hh"

namespace copernicus {

std::string_view
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::BramLoad: return "bram_load";
      case OpKind::BramStore: return "bram_store";
      case OpKind::IndexArith: return "index_arith";
      case OpKind::Add: return "add";
      case OpKind::Mul: return "mul";
      case OpKind::Compare: return "compare";
      case OpKind::Select: return "select";
      case OpKind::HashProbe: return "hash_probe";
    }
    return "unknown";
}

LoopBody
cooLoopBody()
{
    LoopBody body;
    body.name = "coo_tuple";
    const auto tuple = body.add(OpKind::BramLoad, {}, 0);
    const auto addr = body.add(OpKind::IndexArith, {tuple});
    body.add(OpKind::BramStore, {addr}, 1);
    return body;
}

LoopBody
csrInnerLoopBody()
{
    LoopBody body;
    body.name = "csr_entry";
    const auto col = body.add(OpKind::BramLoad, {}, 0);
    const auto val = body.add(OpKind::BramLoad, {}, 1);
    const auto addr = body.add(OpKind::IndexArith, {col});
    body.add(OpKind::BramStore, {addr, val}, 2);
    return body;
}

LoopBody
cscScanLoopBody()
{
    LoopBody body;
    body.name = "csc_scan";
    const auto row = body.add(OpKind::BramLoad, {}, 0);
    const auto hit = body.add(OpKind::Compare, {row});
    body.add(OpKind::BramStore, {hit}, 1);
    return body;
}

LoopBody
bcsrBlockBody(Index blockSize)
{
    LoopBody body;
    body.name = "bcsr_block";
    const auto col0 = body.add(OpKind::BramLoad, {}, 0);
    const auto base = body.add(OpKind::IndexArith, {col0});
    // b*b element copies, each on its own partitioned bank.
    for (Index j = 0; j < blockSize * blockSize; ++j) {
        const auto val = body.add(OpKind::BramLoad, {}, 1 + j);
        body.add(OpKind::BramStore, {base, val},
                 1 + blockSize * blockSize + j);
    }
    return body;
}

LoopBody
ellRowBody(Index width)
{
    LoopBody body;
    body.name = "ell_row";
    for (Index j = 0; j < width; ++j) {
        const auto col = body.add(OpKind::BramLoad, {}, 2 * j);
        const auto val = body.add(OpKind::BramLoad, {}, 2 * j + 1);
        const auto addr = body.add(OpKind::IndexArith, {col});
        // drow is itself partitioned for the wide dot engine, so each
        // lane's scatter lands in its own bank.
        body.add(OpKind::BramStore, {addr, val}, 2 * width + j);
    }
    return body;
}

LoopBody
lilMergeBody(Index p)
{
    LoopBody body;
    body.name = "lil_merge";
    // Parallel head loads across the p partitioned column lists.
    std::vector<std::size_t> heads;
    for (Index c = 0; c < p; ++c)
        heads.push_back(body.add(OpKind::BramLoad, {}, c));
    // Comparator tree of depth log2(p).
    std::vector<std::size_t> level = heads;
    while (level.size() > 1) {
        std::vector<std::size_t> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(body.add(OpKind::Compare,
                                    {level[i], level[i + 1]}));
        if (level.size() % 2 != 0)
            next.push_back(level.back());
        level = std::move(next);
    }
    const auto winner = body.add(OpKind::Select, {level.front()});
    body.add(OpKind::BramStore, {winner}, p);
    // The winning column's cursor advances before the next merge step
    // can compare heads again: compare + select = 2 cycles carried to
    // the next iteration.
    body.carried.push_back({2, 1});
    return body;
}

LoopBody
dokLoopBody()
{
    LoopBody body;
    body.name = "dok_tuple";
    const auto probe = body.add(OpKind::HashProbe, {}, 0);
    const auto addr = body.add(OpKind::IndexArith, {probe});
    body.add(OpKind::BramStore, {addr}, 1);
    // The collision-chain cursor for the next tuple resolves only
    // after the current probe completes.
    body.carried.push_back({2, 1});
    return body;
}

LoopBody
diaRowScanBody()
{
    LoopBody body;
    body.name = "dia_scan";
    // Two diagonal headers per iteration through the dual-ported
    // buffer.
    const auto d0 = body.add(OpKind::BramLoad, {}, 0);
    const auto d1 = body.add(OpKind::BramLoad, {}, 0);
    const auto on0 = body.add(OpKind::Compare, {d0});
    const auto on1 = body.add(OpKind::Compare, {d1});
    body.add(OpKind::BramStore, {on0}, 1);
    body.add(OpKind::BramStore, {on1}, 1);
    return body;
}

} // namespace copernicus
