/**
 * @file
 * Tiny HLS intermediate representation.
 *
 * The paper's decompressors are C++ loops pushed through Vivado HLS;
 * the cycle constants in hls/hls_config.hh (loop depth 4, II 1, hash
 * II 2) are properties of the schedules that tool would produce. This
 * module makes that derivation explicit: a decompressor's loop body is
 * a small dependency DAG of primitive operations, and hlsc/schedule
 * computes its pipeline depth and initiation interval under the
 * platform's resource constraints. The test suite checks that the
 * derived numbers equal the constants the analytic model uses — the
 * constants are scheduled, not guessed.
 */

#ifndef COPERNICUS_HLSC_IR_HH
#define COPERNICUS_HLSC_IR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"

namespace copernicus {

/** Primitive operation kinds the decompressor bodies use. */
enum class OpKind
{
    BramLoad,   ///< read one element from a BRAM bank
    BramStore,  ///< write one element to a BRAM bank
    IndexArith, ///< address/index computation (LUT logic)
    Add,        ///< integer/float add
    Mul,        ///< multiply
    Compare,    ///< comparison
    Select,     ///< mux/select
    HashProbe,  ///< hash-table bucket probe (DOK)
};

/** Printable op-kind name. */
std::string_view opKindName(OpKind kind);

/** One operation in a loop body. */
struct Op
{
    OpKind kind = OpKind::IndexArith;

    /** Indices of ops (within the body) this op consumes. */
    std::vector<std::size_t> deps;

    /** BRAM bank this op touches (Load/Store/HashProbe only). */
    Index bank = 0;
};

/**
 * A loop-carried dependency: the chain producing `delay` cycles of
 * latency must complete before the iteration `distance` later can
 * consume it, constraining the initiation interval to
 * ceil(delay / distance).
 */
struct CarriedDep
{
    Cycles delay = 0;
    Cycles distance = 1;
};

/** One pipelined loop body. */
struct LoopBody
{
    std::string name;
    std::vector<Op> ops;
    std::vector<CarriedDep> carried;

    /** Append an op, returning its index for later deps. */
    std::size_t
    add(OpKind kind, std::vector<std::size_t> deps = {}, Index bank = 0)
    {
        ops.push_back({kind, std::move(deps), bank});
        return ops.size() - 1;
    }
};

} // namespace copernicus

#endif // COPERNICUS_HLSC_IR_HH
