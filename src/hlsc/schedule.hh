/**
 * @file
 * Resource-constrained list scheduling and initiation-interval
 * derivation for hlsc loop bodies.
 */

#ifndef COPERNICUS_HLSC_SCHEDULE_HH
#define COPERNICUS_HLSC_SCHEDULE_HH

#include <vector>

#include "hlsc/ir.hh"

namespace copernicus {

/** Operation latencies and per-cycle resource capacities. */
struct HlscConstraints
{
    /** Latency of each op kind, cycles. */
    Cycles bramLoadLatency = 2;
    Cycles bramStoreLatency = 1;
    Cycles indexArithLatency = 1;
    Cycles addLatency = 1;
    Cycles mulLatency = 1;
    Cycles compareLatency = 1;
    Cycles selectLatency = 1;
    Cycles hashProbeLatency = 2;

    /** Ports per BRAM bank (7-series true dual port). */
    Index bramPortsPerBank = 2;

    /** Latency of @p kind. */
    Cycles latency(OpKind kind) const;
};

/** Result of scheduling one loop body. */
struct BodySchedule
{
    /** Start cycle of each op. */
    std::vector<Cycles> start;

    /**
     * Pipeline depth: the cycle at which the last op's result is
     * available (max over ops of start + latency).
     */
    Cycles depth = 0;

    /** Derived initiation interval. */
    Cycles ii = 1;

    /**
     * Cycles for `trips` pipelined iterations of this body:
     * depth + ii * (trips - 1); zero trips cost nothing.
     */
    Cycles
    pipelinedCycles(Cycles trips) const
    {
        return trips == 0 ? 0 : depth + ii * (trips - 1);
    }
};

/**
 * ASAP list scheduling with per-cycle BRAM-port limits.
 *
 * Ops issue at the earliest cycle where all dependencies have
 * completed and a port is free on their bank. The initiation interval
 * is the maximum of the resource constraint (port uses per bank over
 * ports available) and the recurrence constraint
 * (ceil(delay/distance) over the carried dependencies).
 *
 * @param body The loop body; its dep indices must point backwards.
 * @param constraints Latencies and port counts.
 */
BodySchedule scheduleBody(const LoopBody &body,
                          const HlscConstraints &constraints =
                              HlscConstraints());

} // namespace copernicus

#endif // COPERNICUS_HLSC_SCHEDULE_HH
