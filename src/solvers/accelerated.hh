/**
 * @file
 * End-to-end solver time on the modelled accelerator.
 *
 * Section 3.3 motivates the platform with iterative solvers whose
 * inner kernel is SpMV; this module closes that loop: run the solver
 * in software to learn the iteration count, then price each iteration
 * on the streaming pipeline (one SpMV pass over the compressed
 * partitions plus the solver's vector operations on the p-wide
 * engine). The result is the format-dependent time-to-solution an
 * architect actually cares about.
 */

#ifndef COPERNICUS_SOLVERS_ACCELERATED_HH
#define COPERNICUS_SOLVERS_ACCELERATED_HH

#include "hls/hls_config.hh"
#include "matrix/partitioner.hh"
#include "pipeline/stream_pipeline.hh"
#include "solvers/cg.hh"

namespace copernicus {

/** Time-to-solution estimate for an iterative solve. */
struct PlatformSolveEstimate
{
    FormatKind format = FormatKind::CSR;
    Index partitionSize = 16;

    /** Solver iterations priced. */
    std::size_t iterations = 0;

    /** One SpMV pass over the compressed partitions. */
    Cycles spmvCyclesPerIteration = 0;

    /** The solver's vector work (axpy/dot) on the p-wide engine. */
    Cycles vectorCyclesPerIteration = 0;

    Cycles totalCycles = 0;
    double seconds = 0;
};

/**
 * Price @p iterations of an iterative solve over @p matrix.
 *
 * @param matrix The (square) operand matrix.
 * @param kind Compression format streamed each iteration.
 * @param partitionSize Partition edge length.
 * @param iterations Iteration count to price.
 * @param vectorOpsPerIteration Length-n vector operations per
 *        iteration (CG: 3 axpy + 2 dot = 5).
 * @param config Platform parameters.
 */
PlatformSolveEstimate estimateIterativeSolve(
    const TripletMatrix &matrix, FormatKind kind, Index partitionSize,
    std::size_t iterations, std::size_t vectorOpsPerIteration = 5,
    const HlsConfig &config = HlsConfig());

/** Software CG run paired with its platform estimate. */
struct AcceleratedCgResult
{
    SolveResult solve;
    PlatformSolveEstimate estimate;
};

/**
 * Solve A x = b with CG in software, then price the same solve on the
 * accelerator in @p kind at @p partitionSize.
 */
AcceleratedCgResult acceleratedCg(const TripletMatrix &matrix,
                                  const std::vector<Value> &b,
                                  FormatKind kind, Index partitionSize,
                                  double tolerance = 1e-5,
                                  std::size_t maxIterations = 1000,
                                  const HlsConfig &config = HlsConfig());

} // namespace copernicus

#endif // COPERNICUS_SOLVERS_ACCELERATED_HH
