/**
 * @file
 * Conjugate-gradient solver (Section 3.3's scientific-computation
 * consumer of SpMV): solves A x = b for symmetric positive-definite A.
 */

#ifndef COPERNICUS_SOLVERS_CG_HH
#define COPERNICUS_SOLVERS_CG_HH

#include <vector>

#include "matrix/csr_matrix.hh"

namespace copernicus {

/** Outcome of an iterative solve. */
struct SolveResult
{
    std::vector<Value> x;

    /** Iterations actually run. */
    std::size_t iterations = 0;

    /** Final residual 2-norm. */
    double residual = 0;

    /** True when the residual dropped below the tolerance. */
    bool converged = false;
};

/**
 * Solve A x = b with plain conjugate gradient.
 *
 * @param a Symmetric positive-definite matrix.
 * @param b Right-hand side of length a.rows().
 * @param tolerance Convergence threshold on ||r||_2.
 * @param maxIterations Iteration cap.
 */
SolveResult conjugateGradient(const CsrMatrix &a,
                              const std::vector<Value> &b,
                              double tolerance = 1e-5,
                              std::size_t maxIterations = 1000);

/**
 * Solve A x = b with Jacobi iteration (diagonal must be non-zero).
 */
SolveResult jacobi(const CsrMatrix &a, const std::vector<Value> &b,
                   double tolerance = 1e-5,
                   std::size_t maxIterations = 1000);

} // namespace copernicus

#endif // COPERNICUS_SOLVERS_CG_HH
