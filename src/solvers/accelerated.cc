#include "solvers/accelerated.hh"

#include "common/math.hh"
#include "common/status.hh"
#include "matrix/csr_matrix.hh"

namespace copernicus {

PlatformSolveEstimate
estimateIterativeSolve(const TripletMatrix &matrix, FormatKind kind,
                       Index partitionSize, std::size_t iterations,
                       std::size_t vectorOpsPerIteration,
                       const HlsConfig &config)
{
    fatalIf(matrix.rows() != matrix.cols(),
            "estimateIterativeSolve requires a square matrix");

    PlatformSolveEstimate estimate;
    estimate.format = kind;
    estimate.partitionSize = partitionSize;
    estimate.iterations = iterations;

    const auto parts = partition(matrix, partitionSize);
    const auto pipeline = runPipeline(parts, kind, config);
    estimate.spmvCyclesPerIteration = pipeline.totalCycles;

    // Each length-n vector op runs through the p-wide engine at one
    // p-element chunk per cycle plus the arithmetic drain.
    const Cycles chunk_cycles = ceilDiv(matrix.rows(), partitionSize);
    estimate.vectorCyclesPerIteration =
        Cycles(vectorOpsPerIteration) *
        (chunk_cycles + config.dotLatency(partitionSize));

    estimate.totalCycles =
        Cycles(iterations) * (estimate.spmvCyclesPerIteration +
                              estimate.vectorCyclesPerIteration);
    estimate.seconds = static_cast<double>(estimate.totalCycles) *
                       config.secondsPerCycle();
    return estimate;
}

AcceleratedCgResult
acceleratedCg(const TripletMatrix &matrix, const std::vector<Value> &b,
              FormatKind kind, Index partitionSize, double tolerance,
              std::size_t maxIterations, const HlsConfig &config)
{
    AcceleratedCgResult result;
    const CsrMatrix a(matrix);
    result.solve = conjugateGradient(a, b, tolerance, maxIterations);
    result.estimate = estimateIterativeSolve(
        matrix, kind, partitionSize,
        std::max<std::size_t>(result.solve.iterations, 1), 5, config);
    return result;
}

} // namespace copernicus
