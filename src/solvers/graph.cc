#include "solvers/graph.hh"

#include <limits>

#include "common/status.hh"
#include "matrix/csr_matrix.hh"

namespace copernicus {

BfsResult
bfs(const TripletMatrix &adjacency, Index source)
{
    fatalIf(adjacency.rows() != adjacency.cols(),
            "bfs requires a square adjacency matrix");
    fatalIf(source >= adjacency.rows(), "bfs source out of range");
    const Index n = adjacency.rows();
    const CsrMatrix a(adjacency);

    BfsResult result;
    result.level.assign(n, bfsUnreached);
    result.level[source] = 0;
    result.reached = 1;

    std::vector<Index> frontier = {source};
    std::uint32_t depth = 0;
    const auto &ptr = a.rowPtr();
    const auto &inds = a.colIndices();
    while (!frontier.empty()) {
        ++depth;
        ++result.rounds;
        // next = (boolean) frontier x A, masked by unvisited — the
        // row-slice gather below is exactly that semiring SpMV.
        std::vector<Index> next;
        for (Index u : frontier) {
            for (std::size_t i = ptr[u]; i < ptr[u + 1]; ++i) {
                const Index v = inds[i];
                if (result.level[v] == bfsUnreached) {
                    result.level[v] = depth;
                    next.push_back(v);
                    ++result.reached;
                }
            }
        }
        frontier.swap(next);
    }
    return result;
}

double
ssspUnreached()
{
    return std::numeric_limits<double>::infinity();
}

SsspResult
sssp(const TripletMatrix &adjacency, Index source)
{
    fatalIf(adjacency.rows() != adjacency.cols(),
            "sssp requires a square adjacency matrix");
    fatalIf(source >= adjacency.rows(), "sssp source out of range");
    const Index n = adjacency.rows();

    SsspResult result;
    result.distance.assign(n, ssspUnreached());
    result.distance[source] = 0.0;

    // Bellman-Ford: each round is one (min, +) SpMV over the edge
    // list; stop early when no distance improves.
    for (Index round = 0; round < n; ++round) {
        ++result.rounds;
        bool improved = false;
        for (const auto &t : adjacency.triplets()) {
            const double base = result.distance[t.row];
            if (base == ssspUnreached())
                continue;
            const double candidate = base + static_cast<double>(t.value);
            if (candidate < result.distance[t.col]) {
                result.distance[t.col] = candidate;
                improved = true;
            }
        }
        if (!improved)
            return result;
    }

    // A full n rounds without convergence: check for negative cycles.
    for (const auto &t : adjacency.triplets()) {
        const double base = result.distance[t.row];
        if (base != ssspUnreached() &&
            base + static_cast<double>(t.value) <
                result.distance[t.col]) {
            result.valid = false;
            break;
        }
    }
    return result;
}

} // namespace copernicus
