#include "solvers/pagerank.hh"

#include <cmath>

#include "common/status.hh"
#include "trace/profile.hh"

namespace copernicus {

PageRankResult
pageRank(const TripletMatrix &adjacency, double damping, double tolerance,
         std::size_t maxIterations)
{
    fatalIf(adjacency.rows() != adjacency.cols(),
            "pageRank requires a square adjacency matrix");
    fatalIf(damping <= 0.0 || damping >= 1.0,
            "pageRank damping must be in (0, 1)");

    const ScopedTimer timer("solver.pagerank");
    const Index n = adjacency.rows();

    // Out-degree (weighted) per vertex.
    std::vector<double> out_weight(n, 0.0);
    for (const auto &t : adjacency.triplets())
        out_weight[t.row] += std::fabs(static_cast<double>(t.value));

    // Column-stochastic transition matrix M: M[v][u] = w(u,v)/out(u);
    // ranks update as r' = d*M*r + teleport. Built transposed in CSR so
    // each iteration is one row-major SpMV.
    TripletMatrix transition(n, n);
    for (const auto &t : adjacency.triplets()) {
        if (out_weight[t.row] > 0) {
            transition.add(t.col, t.row,
                           static_cast<Value>(
                               std::fabs(static_cast<double>(t.value)) /
                               out_weight[t.row]));
        }
    }
    transition.finalize();
    const CsrMatrix m(transition);

    PageRankResult result;
    result.ranks.assign(n, 1.0 / n);
    std::vector<Value> rank_f(n, static_cast<Value>(1.0 / n));

    for (std::size_t iter = 0; iter < maxIterations; ++iter) {
        // Dangling mass: vertices with no out-edges spread uniformly.
        double dangling = 0;
        for (Index u = 0; u < n; ++u)
            if (out_weight[u] == 0)
                dangling += result.ranks[u];

        const auto spread = m.multiply(rank_f);
        const double teleport =
            (1.0 - damping) / n + damping * dangling / n;

        double delta = 0;
        double sum = 0;
        std::vector<double> next(n);
        for (Index v = 0; v < n; ++v) {
            next[v] = damping * static_cast<double>(spread[v]) + teleport;
            delta += std::fabs(next[v] - result.ranks[v]);
            sum += next[v];
        }
        // Renormalize against float drift.
        for (Index v = 0; v < n; ++v)
            next[v] /= sum;

        result.ranks.swap(next);
        for (Index v = 0; v < n; ++v)
            rank_f[v] = static_cast<Value>(result.ranks[v]);
        result.iterations = iter + 1;
        result.delta = delta;
        if (delta < tolerance) {
            result.converged = true;
            break;
        }
    }
    return result;
}

} // namespace copernicus
