/**
 * @file
 * PageRank by power iteration (Section 3.3's graph-analytics consumer
 * of SpMV): each iteration is one SpMV with the column-normalized
 * adjacency matrix plus the damping redistribution.
 */

#ifndef COPERNICUS_SOLVERS_PAGERANK_HH
#define COPERNICUS_SOLVERS_PAGERANK_HH

#include <vector>

#include "matrix/csr_matrix.hh"
#include "matrix/triplet_matrix.hh"

namespace copernicus {

/** Outcome of a PageRank run. */
struct PageRankResult
{
    /** Rank per vertex; sums to 1. */
    std::vector<double> ranks;

    std::size_t iterations = 0;

    /** Final L1 change between successive iterations. */
    double delta = 0;

    bool converged = false;
};

/**
 * PageRank over a (possibly weighted) adjacency matrix whose entry
 * (u, v) means an edge u -> v.
 *
 * @param adjacency Finalized adjacency matrix, square.
 * @param damping Damping factor (0.85 classic).
 * @param tolerance L1 convergence threshold. The SpMV runs in the
 *        platform's 32-bit Value type, which floors the reachable delta
 *        around n * 1e-7; tolerances below that will never trigger.
 * @param maxIterations Iteration cap.
 */
PageRankResult pageRank(const TripletMatrix &adjacency,
                        double damping = 0.85, double tolerance = 1e-6,
                        std::size_t maxIterations = 200);

} // namespace copernicus

#endif // COPERNICUS_SOLVERS_PAGERANK_HH
