/**
 * @file
 * Graph algorithms as sparse-matrix kernels (Section 3.3: BFS and
 * single-source shortest path "can be implemented as a sparse
 * matrix-vector operation" in the vertex-centric model).
 *
 * BFS advances its frontier with one boolean-semiring SpMV per level;
 * SSSP relaxes with one (min, +)-semiring SpMV per round
 * (Bellman-Ford). Both run on the library's CSR substrate.
 */

#ifndef COPERNICUS_SOLVERS_GRAPH_HH
#define COPERNICUS_SOLVERS_GRAPH_HH

#include <cstdint>
#include <vector>

#include "matrix/triplet_matrix.hh"

namespace copernicus {

/** Level assigned to vertices BFS never reaches. */
inline constexpr std::uint32_t bfsUnreached = ~std::uint32_t(0);

/** Result of a BFS sweep. */
struct BfsResult
{
    /** Hop count from the source; bfsUnreached if not connected. */
    std::vector<std::uint32_t> level;

    /** Number of frontier expansions (SpMV rounds). */
    std::size_t rounds = 0;

    /** Vertices reached, source included. */
    std::size_t reached = 0;
};

/**
 * Breadth-first search over a directed adjacency matrix; entry (u, v)
 * is an edge u -> v (weights ignored).
 *
 * @param adjacency Finalized square adjacency matrix.
 * @param source Start vertex, must be < rows().
 */
BfsResult bfs(const TripletMatrix &adjacency, Index source);

/** Distance for vertices SSSP never reaches. */
double ssspUnreached();

/** Result of a shortest-path solve. */
struct SsspResult
{
    /** Distance from the source; ssspUnreached() if unreachable. */
    std::vector<double> distance;

    /** Relaxation rounds executed. */
    std::size_t rounds = 0;

    /** False when a negative cycle was detected. */
    bool valid = true;
};

/**
 * Single-source shortest paths by Bellman-Ford relaxation; entry
 * (u, v) is an edge u -> v with weight value (must be the actual edge
 * weight; negative edges allowed, negative cycles detected).
 *
 * @param adjacency Finalized square weighted adjacency matrix.
 * @param source Start vertex, must be < rows().
 */
SsspResult sssp(const TripletMatrix &adjacency, Index source);

} // namespace copernicus

#endif // COPERNICUS_SOLVERS_GRAPH_HH
