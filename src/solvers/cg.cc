#include "solvers/cg.hh"

#include <cmath>

#include "common/status.hh"
#include "trace/profile.hh"

namespace copernicus {

namespace {

double
norm2(const std::vector<Value> &v)
{
    double acc = 0;
    for (Value x : v)
        acc += static_cast<double>(x) * x;
    return std::sqrt(acc);
}

double
dot(const std::vector<Value> &a, const std::vector<Value> &b)
{
    double acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += static_cast<double>(a[i]) * b[i];
    return acc;
}

} // namespace

SolveResult
conjugateGradient(const CsrMatrix &a, const std::vector<Value> &b,
                  double tolerance, std::size_t maxIterations)
{
    fatalIf(a.rows() != a.cols(), "CG requires a square matrix");
    fatalIf(b.size() != a.rows(), "CG right-hand-side length mismatch");

    const ScopedTimer timer("solver.cg");

    const std::size_t n = b.size();
    SolveResult result;
    result.x.assign(n, Value(0));

    std::vector<Value> r = b;          // r = b - A*0
    std::vector<Value> p = r;
    double rs_old = dot(r, r);

    for (std::size_t iter = 0; iter < maxIterations; ++iter) {
        result.residual = std::sqrt(rs_old);
        if (result.residual < tolerance) {
            result.converged = true;
            return result;
        }
        const std::vector<Value> ap = a.multiply(p);
        const double denom = dot(p, ap);
        fatalIf(denom == 0.0,
                "CG breakdown: matrix is not positive-definite");
        const double alpha = rs_old / denom;
        for (std::size_t i = 0; i < n; ++i) {
            result.x[i] += static_cast<Value>(alpha * p[i]);
            r[i] -= static_cast<Value>(alpha * ap[i]);
        }
        const double rs_new = dot(r, r);
        const double beta = rs_new / rs_old;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = r[i] + static_cast<Value>(beta * p[i]);
        rs_old = rs_new;
        result.iterations = iter + 1;
    }
    result.residual = norm2(r);
    result.converged = result.residual < tolerance;
    return result;
}

SolveResult
jacobi(const CsrMatrix &a, const std::vector<Value> &b, double tolerance,
       std::size_t maxIterations)
{
    fatalIf(a.rows() != a.cols(), "Jacobi requires a square matrix");
    fatalIf(b.size() != a.rows(),
            "Jacobi right-hand-side length mismatch");

    const Index n = a.rows();
    std::vector<Value> diag(n, Value(0));
    const auto &ptr = a.rowPtr();
    const auto &inds = a.colIndices();
    const auto &vals = a.values();
    for (Index r = 0; r < n; ++r)
        for (std::size_t i = ptr[r]; i < ptr[r + 1]; ++i)
            if (inds[i] == r)
                diag[r] = vals[i];
    for (Index r = 0; r < n; ++r)
        fatalIf(diag[r] == Value(0),
                "Jacobi requires a non-zero diagonal");

    SolveResult result;
    result.x.assign(n, Value(0));
    std::vector<Value> next(n);
    for (std::size_t iter = 0; iter < maxIterations; ++iter) {
        for (Index r = 0; r < n; ++r) {
            Value acc = b[r];
            for (std::size_t i = ptr[r]; i < ptr[r + 1]; ++i)
                if (inds[i] != r)
                    acc -= vals[i] * result.x[inds[i]];
            next[r] = acc / diag[r];
        }
        result.x.swap(next);
        result.iterations = iter + 1;

        // Residual check: r = b - A x.
        const auto ax = a.multiply(result.x);
        double acc = 0;
        for (Index r = 0; r < n; ++r) {
            const double d = static_cast<double>(b[r]) - ax[r];
            acc += d * d;
        }
        result.residual = std::sqrt(acc);
        if (result.residual < tolerance) {
            result.converged = true;
            return result;
        }
    }
    return result;
}

} // namespace copernicus
