/**
 * @file
 * Second-stage compression invariant pass (rule COP100).
 *
 * compress/second_stage.hh promises storedBytes() <= rawBytes(): a
 * STORE stream ships its raw bytes unchanged and a compressed stream
 * may only win by being smaller (header included), so the second
 * stage can never inflate what crosses the memory interface. The
 * transfer model and the bandwidth-utilization numbers lean on that
 * promise, so this pass checks it as a lint invariant over the same
 * synthetic tile sweep the grammar and oracle passes use, in every
 * format — any tile where selection regresses past STORE is an error
 * naming the format and tile shape.
 */

#ifndef COPERNICUS_ANALYSIS_COMPRESS_PASS_HH
#define COPERNICUS_ANALYSIS_COMPRESS_PASS_HH

#include "analysis/schedule_check.hh"

namespace copernicus {

/** COP100 for one tile in one format. */
void checkTileCompression(const FormatRegistry &registry,
                          FormatKind kind, const Tile &tile,
                          LintReport &report);

/** The pass: the synthetic tile sweep across every format. */
void runCompressPass(const LintOptions &options, LintReport &report);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_COMPRESS_PASS_HH
