#include "analysis/source_scan.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/schedule_check.hh"

namespace copernicus {

std::string
lintSourceRoot(const LintOptions &options)
{
    if (!options.sourceRoot.empty())
        return options.sourceRoot;
#ifdef COPERNICUS_SOURCE_ROOT
    return COPERNICUS_SOURCE_ROOT;
#else
    return "";
#endif
}

bool
readTextFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

std::vector<std::string>
splitLines(const std::string &contents)
{
    std::vector<std::string> lines;
    std::string::size_type start = 0;
    while (start <= contents.size()) {
        const std::string::size_type end = contents.find('\n', start);
        if (end == std::string::npos) {
            if (start < contents.size())
                lines.push_back(contents.substr(start));
            break;
        }
        lines.push_back(contents.substr(start, end - start));
        start = end + 1;
    }
    return lines;
}

std::vector<std::string>
listHeadersUnderSrc(const std::string &root)
{
    namespace fs = std::filesystem;
    std::vector<std::string> headers;
    if (root.empty())
        return headers;
    const fs::path src = fs::path(root) / "src";
    std::error_code ec;
    if (!fs::is_directory(src, ec))
        return headers;
    for (fs::recursive_directory_iterator
             it(src, fs::directory_options::skip_permission_denied, ec),
         end;
         it != end; it.increment(ec)) {
        if (ec)
            break;
        if (!it->is_regular_file(ec))
            continue;
        if (it->path().extension() != ".hh")
            continue;
        headers.push_back(
            fs::relative(it->path(), fs::path(root), ec).string());
    }
    // Deterministic report order regardless of directory iteration.
    std::sort(headers.begin(), headers.end());
    return headers;
}

} // namespace copernicus
