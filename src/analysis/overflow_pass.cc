#include "analysis/overflow_pass.hh"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>

#include "analysis/source_scan.hh"
#include "common/math.hh"
#include "formats/size_model.hh"

namespace copernicus {

namespace {

using U128 = unsigned __int128;

constexpr std::uint64_t u64Max =
    std::numeric_limits<std::uint64_t>::max();

std::string
u128ToString(U128 v)
{
    if (v == 0)
        return "0";
    std::string out;
    while (v > 0) {
        out.insert(out.begin(), static_cast<char>('0' + int(v % 10)));
        v /= 10;
    }
    return out;
}

U128
ceilDiv128(U128 a, U128 b)
{
    return b == 0 ? 0 : (a + b - 1) / b;
}

/**
 * TileFeatures with every knob pinned to its maximum over @p envelope
 * (or all-zero for the empty-tile fixed-overhead bound). The shadow
 * fold below resolves ScheduleFeature against this instead of a real
 * tile.
 */
struct EnvelopeFeatures
{
    U128 tileSize = 0;
    U128 entries = 0;
    U128 overflowEntries = 0;
    U128 nonEmptyGroups = 0;
    U128 groupHeaders = 0;
    U128 longestGroup = 0;
    U128 maskWords = 0;

    U128
    value(ScheduleFeature feature) const
    {
        switch (feature) {
          case ScheduleFeature::One: return 1;
          case ScheduleFeature::TileSize: return tileSize;
          case ScheduleFeature::Log2TileSize:
            return log2Ceil(static_cast<Index>(
                std::min<U128>(tileSize, u64Max)));
          case ScheduleFeature::Entries: return entries;
          case ScheduleFeature::EntriesAtLeastOne:
            return std::max<U128>(entries, 1);
          case ScheduleFeature::OverflowEntries: return overflowEntries;
          case ScheduleFeature::NonEmptyGroups: return nonEmptyGroups;
          case ScheduleFeature::GroupHeaders: return groupHeaders;
          case ScheduleFeature::LongestGroup: return longestGroup;
          case ScheduleFeature::MaskWords: return maskWords;
        }
        return 0;
    }
};

EnvelopeFeatures
fullTileFeatures(Index p)
{
    EnvelopeFeatures f;
    const U128 pp = U128(p) * U128(p);
    f.tileSize = p;
    f.entries = pp;
    f.overflowEntries = pp;
    f.nonEmptyGroups = p;
    // Diagonal-family headers reach 2p-1; round up to 2p.
    f.groupHeaders = U128(2) * p;
    f.longestGroup = p;
    // The real packed-mask word count is ceil(p^2/32); charging the
    // full p^2 keeps the bound safely above any packing change.
    f.maskWords = pp;
    return f;
}

/** Fixed per-tile overhead: a tile with no stored entries at all. */
EnvelopeFeatures
emptyTileFeatures(Index p)
{
    EnvelopeFeatures f;
    f.tileSize = p;
    return f;
}

U128
knobCycles128(CycleKnob knob, const HlsConfig &config,
              const EnvelopeFeatures &features)
{
    switch (knob) {
      case CycleKnob::UnitCycle: return 1;
      case CycleKnob::TwoCycles: return 2;
      case CycleKnob::BramReadLatency: return config.bramReadLatency;
      case CycleKnob::LoopDepth: return config.loopDepth;
      case CycleKnob::HashedLoopDepth:
        return U128(config.loopDepth) + config.hashCycles;
      case CycleKnob::HashCycles: return config.hashCycles;
      case CycleKnob::DiagonalScan:
        return ceilDiv128(features.groupHeaders,
                          std::max<U128>(config.bramPorts, 1));
    }
    return 0;
}

U128
pipelined128(U128 trips, U128 depth, U128 ii)
{
    return trips == 0 ? 0 : depth + ii * (trips - 1);
}

/**
 * segmentClosedFormCycles (hls/schedule_ir.cc) re-derived in 128-bit
 * arithmetic. Any rule change there must be mirrored here or the
 * oracle-style agreement test in test_analysis_passes fails.
 */
U128
segmentCycles128(const SegmentSpec &segment, const HlsConfig &config,
                 const EnvelopeFeatures &features)
{
    const U128 trips = features.value(segment.trips);
    const U128 depth = knobCycles128(segment.depth, config, features);
    switch (segment.kind) {
      case SegmentKind::Fixed:
        return trips * depth;
      case SegmentKind::Pipelined:
        return pipelined128(
            trips, depth, knobCycles128(segment.ii, config, features));
      case SegmentKind::Serial:
        return trips *
               pipelined128(features.value(segment.innerTrips), depth,
                            knobCycles128(segment.ii, config, features));
      case SegmentKind::RateMax:
        return std::max(trips * depth,
                        features.value(segment.innerTrips) *
                            knobCycles128(segment.rateB, config,
                                          features));
    }
    return 0;
}

/** Whole-spec shadow fold; also reports the dominating segment. */
U128
specCycles128(const ScheduleSpec &spec, const HlsConfig &config,
              const EnvelopeFeatures &features,
              std::string *dominating)
{
    if (features.value(spec.guard) == 0)
        return 0;
    U128 total = 0;
    U128 best = 0;
    for (const SegmentSpec &segment : spec.segments) {
        const U128 cycles =
            segmentCycles128(segment, config, features);
        total += cycles;
        if (dominating != nullptr && cycles >= best) {
            best = cycles;
            *dominating = segment.name;
        }
    }
    return total;
}

/** Worst-case TileShape for the byte-model envelope. */
TileShape
envelopeShape(Index p, const FormatParams &params)
{
    TileShape shape;
    shape.p = p;
    shape.nnz = p * p;
    shape.maxRowNnz = p;
    shape.maxColNnz = p;
    const Index block = std::max<Index>(params.bcsrBlock, 1);
    const Index grid = std::max<Index>(p / block, 1);
    shape.nnzBlocks = grid * grid;
    shape.nnzDiagonals = 2 * p - 1;
    const Index slice = std::max<Index>(params.sellSlice, 1);
    const Index slices = std::max<Index>(p / slice, 1);
    shape.sliceWidths.assign(slices, p);
    shape.sortedSliceWidths.assign(slices, p);
    shape.ellCooOverflow = p * p;
    return shape;
}

} // namespace

void
checkAccountingRanges(const LintOptions &options,
                      const AccountingEnvelope &envelope,
                      LintReport &report)
{
    // COP060: the accounting typedefs themselves. Everything below
    // proves "the uint64 fold cannot wrap"; that proof is vacuous if
    // an accounting type is narrower than 64 bits to begin with.
    static_assert(std::is_unsigned_v<Cycles> && std::is_unsigned_v<Bytes>,
                  "accounting types must be unsigned");
    if (sizeof(Cycles) < 8)
        report.error("COP060", "overflow", "",
                     "Cycles is narrower than 64 bits; the range proof "
                     "assumes uint64 accounting");
    if (sizeof(Bytes) < 8)
        report.error("COP060", "overflow", "",
                     "Bytes is narrower than 64 bits; the range proof "
                     "assumes uint64 accounting");

    const Index p = envelope.maxPartition;
    const EnvelopeFeatures full = fullTileFeatures(p);
    const EnvelopeFeatures empty = emptyTileFeatures(p);
    // The aggregate deliberately over-counts: it charges the full
    // worst-case tile cost to every tile that could hold the envelope's
    // non-zeros, plus the fixed per-tile overhead to one (near-empty)
    // tile per non-zero — an adversarially partitioned workload.
    const U128 fullTiles = std::max<U128>(
        ceilDiv128(envelope.maxWorkloadNnz, U128(p) * U128(p)), 1);
    const U128 emptyTiles = envelope.maxWorkloadNnz;

    const FormatRegistry registry(options.params);
    for (FormatKind kind : allFormats()) {
        const ScheduleSpec &spec = registry.schedule(kind);
        const std::string name(formatName(kind));

        std::string dominating;
        const U128 perTile =
            specCycles128(spec, options.hls, full, &dominating);
        const U128 perEmpty =
            specCycles128(spec, options.hls, empty, nullptr);
        if (perTile > u64Max) {
            LintDiagnostic d;
            d.id = "COP061";
            d.pass = "overflow";
            d.format = name;
            d.segment = dominating;
            d.message =
                "closed-form cycles overflow uint64 on one p=" +
                std::to_string(p) + " tile: 128-bit fold gives " +
                u128ToString(perTile);
            d.fixHint = "the folding is super-linear in a tile "
                        "feature; re-derive the segment's trip count";
            report.add(std::move(d));
            continue;
        }
        const U128 aggregate =
            perTile * fullTiles + perEmpty * emptyTiles;
        if (aggregate > u64Max) {
            LintDiagnostic d;
            d.id = "COP061";
            d.pass = "overflow";
            d.format = name;
            d.segment = dominating;
            d.message =
                "aggregate cycle accounting overflows uint64 within "
                "the " +
                std::to_string(envelope.maxWorkloadNnz) +
                "-nnz envelope: 128-bit total " +
                u128ToString(aggregate);
            report.add(std::move(d));
        } else if (aggregate > u64Max / 8) {
            LintDiagnostic d;
            d.severity = LintSeverity::Warning;
            d.id = "COP061";
            d.pass = "overflow";
            d.format = name;
            d.segment = dominating;
            d.message = "aggregate cycle accounting has less than 8x "
                        "uint64 headroom at the envelope (128-bit "
                        "total " +
                        u128ToString(aggregate) + ")";
            report.add(std::move(d));
        }

        // Growth probe far beyond the envelope: a fold that is linear
        // in its features stays far below uint64 even at p = 2^20; one
        // that multiplies two large features blows past it and gets
        // flagged before anyone raises the envelope into the wrap.
        const Index probeP = Index(1) << 20;
        const U128 probe = specCycles128(
            spec, options.hls, fullTileFeatures(probeP), nullptr);
        if (perTile <= u64Max && probe > u64Max)
            report.warning("COP061", "overflow", name,
                           "cycle folding grows super-linearly: the "
                           "p=2^20 growth probe overflows uint64 "
                           "(128-bit fold " +
                               u128ToString(probe) + ")");

        // COP062: byte accounting. predictedBytes is exact codec
        // arithmetic; hold it to a generous linear bound (64 bytes per
        // matrix position) so a quadratic-in-nnz regression in any
        // size model is caught at the envelope.
        const TileShape shape = envelopeShape(p, options.params);
        const Bytes predicted =
            predictedBytes(shape, kind, options.params);
        const U128 byteBound = U128(64) * U128(p) * U128(p);
        if (U128(predicted) > byteBound) {
            report.error(
                "COP062", "overflow", name,
                "worst-case tile bytes " + std::to_string(predicted) +
                    " exceed the linear envelope bound " +
                    u128ToString(byteBound) +
                    " (64 bytes per matrix position)");
        } else {
            const U128 byteAggregate = U128(predicted) * fullTiles;
            if (byteAggregate > u64Max)
                report.error("COP062", "overflow", name,
                             "aggregate byte accounting overflows "
                             "uint64 within the envelope: 128-bit "
                             "total " +
                                 u128ToString(byteAggregate));
            else if (byteAggregate > u64Max / 8)
                report.warning("COP062", "overflow", name,
                               "aggregate byte accounting has less "
                               "than 8x uint64 headroom at the "
                               "envelope (128-bit total " +
                                   u128ToString(byteAggregate) + ")");
        }
    }
}

void
scanForNarrowingCasts(const std::string &path,
                      const std::string &contents, LintReport &report)
{
    // The accounting models must compute natively wide: squeezing a
    // Cycles/Bytes intermediate through a 32-bit type silently undoes
    // the range proof above. Textual, deliberately simple: any cast to
    // a 32-bit-or-narrower arithmetic type in these files is flagged
    // unless the line carries a `lint: widening-ok` waiver.
    static const char *const narrowing[] = {
        "static_cast<Index>(",
        "static_cast<int>(",
        "static_cast<unsigned>(",
        "static_cast<std::uint32_t>(",
        "static_cast<uint32_t>(",
        "static_cast<std::int32_t>(",
        "static_cast<int32_t>(",
    };
    const std::vector<std::string> lines = splitLines(contents);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &line = lines[i];
        if (line.find("lint: widening-ok") != std::string::npos)
            continue;
        for (const char *pattern : narrowing) {
            const std::string::size_type at = line.find(pattern);
            if (at == std::string::npos)
                continue;
            LintDiagnostic d;
            d.id = "COP063";
            d.pass = "overflow";
            d.file = path;
            d.line = static_cast<int>(i + 1);
            d.message =
                std::string("narrowing cast in accounting code: ") +
                pattern + "...)";
            d.fixHint = "compute in Cycles/Bytes (uint64) end to end, "
                        "or waive with `// lint: widening-ok` if the "
                        "value is provably small";
            report.add(std::move(d));
            break;
        }
    }
}

void
runOverflowPass(const LintOptions &options, LintReport &report)
{
    checkAccountingRanges(options, AccountingEnvelope(), report);

    const std::string root = lintSourceRoot(options);
    if (root.empty())
        return;
    // The accounting hot files: everything that folds cycles or sums
    // bytes on the lint-provable paths.
    static const char *const scanSet[] = {
        "src/formats/size_model.cc",  "src/formats/schedule_spec.cc",
        "src/hls/schedule_ir.cc",     "src/hls/decompressor.cc",
        "src/compress/second_stage.cc", "src/fpga/buffer_model.cc",
    };
    for (const char *relative : scanSet) {
        const std::string path = root + "/" + relative;
        std::string contents;
        if (!readTextFile(path, contents))
            continue; // no checkout at runtime: skip silently
        scanForNarrowingCasts(relative, contents, report);
    }
}

} // namespace copernicus
