#include "analysis/roofline.hh"

#include <algorithm>

#include "common/status.hh"

namespace copernicus {

double
peakComputeGflops(Index p, const HlsConfig &config)
{
    // p multiply-accumulates per cycle = 2p flops per cycle.
    return 2.0 * p * config.clockMhz * 1e6 / 1e9;
}

double
peakBandwidthGBs(const HlsConfig &config)
{
    return static_cast<double>(config.laneBytesPerCycle()) *
           config.streamlines * config.clockMhz * 1e6 / 1e9;
}

RooflinePoint
placeOnRoofline(double usefulFlops, double seconds,
                Bytes transferredBytes, Index p,
                const HlsConfig &config)
{
    fatalIf(seconds <= 0.0, "roofline: seconds must be positive");
    fatalIf(transferredBytes == 0, "roofline: no bytes transferred");

    RooflinePoint point;
    point.intensity = usefulFlops /
                      static_cast<double>(transferredBytes);
    point.attainedGflops = usefulFlops / seconds / 1e9;

    const double compute_roof = peakComputeGflops(p, config);
    const double bandwidth_roof = point.intensity *
                                  peakBandwidthGBs(config);
    point.boundGflops = std::min(compute_roof, bandwidth_roof);
    point.memoryBoundRegion = bandwidth_roof < compute_roof;
    point.efficiency = point.boundGflops > 0
                           ? point.attainedGflops / point.boundGflops
                           : 0.0;
    return point;
}

} // namespace copernicus
