/**
 * @file
 * Static schedule analyzer: the original four pass families.
 *
 * All static — nothing here runs the pipeline:
 *
 *  - Spec structure (COP001-004): every format's ScheduleSpec is
 *    well-formed and none of its segments over-subscribes a dual-port
 *    BRAM bank (> bramPorts accesses per initiation interval on one
 *    bank).
 *  - Decoder-body cross-check (COP010-013): the depth/II each spec
 *    claims for its inner loop must equal what the hlsc list scheduler
 *    derives from the Listing 1-7 loop bodies; a violated II is
 *    classified as port over-subscription (rescheduling with unlimited
 *    ports fixes it) or a loop-carried dependence (it does not). LIL's
 *    comparator tree is additionally checked for balance: its
 *    compare-chain depth must be log2(p).
 *  - Contracts (COP020-024): codec hyperparameters against
 *    hls_config.hh and the requested partition sizes (BCSR block /
 *    SELL slice / SELL-C-sigma window divisibility, ELL width clamps,
 *    knob sanity).
 *  - Grammar + oracle + streams (COP030, COP040-041, COP050) over
 *    synthetic workloads: every encoded tile must satisfy its format
 *    grammar (formats/validate), and the closed-form cycle bound from
 *    the schedule IR must equal the dynamic walker exactly (the
 *    model-vs-walker oracle).
 *
 * The deeper passes live beside this file (overflow_pass, capacity_pass,
 * thread_safety_pass, protocol_pass, compress_pass) and everything is
 * orchestrated by analysis/pass_manager. runLint() remains the
 * one-call entry point: copernicus_lint and `copernicus_cli --lint`
 * run it over the full registry and map the report to an exit status
 * with lintExitCode().
 */

#ifndef COPERNICUS_ANALYSIS_SCHEDULE_CHECK_HH
#define COPERNICUS_ANALYSIS_SCHEDULE_CHECK_HH

#include <functional>
#include <string>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/protocol_surface.hh"
#include "formats/registry.hh"
#include "hls/hls_config.hh"
#include "hlsc/ir.hh"
#include "matrix/tile.hh"

namespace copernicus {

/** What to lint and against which platform. */
struct LintOptions
{
    /** Partition sizes the contracts and oracle sweep. */
    std::vector<Index> partitionSizes = {8, 16, 32};

    /** Platform the schedules are checked against. */
    HlsConfig hls;

    /** Codec hyperparameters (the registry the passes build). */
    FormatParams params;

    /** Run the encoded-tile grammar pass over synthetic tiles. */
    bool runGrammar = true;

    /** Run the model-vs-walker oracle over synthetic tiles. */
    bool runOracle = true;

    /**
     * Run the typed-stream coverage pass over synthetic tiles: every
     * format's typedStreams() must cover its legacy streams() total
     * exactly (no bytes dropped or double-counted by the typed-stream
     * migration).
     */
    bool runStreams = true;

    /** Run the symbolic range/overflow pass (COP060-063). */
    bool runOverflow = true;

    /** Run the buffer/BRAM capacity dataflow pass (COP070-072). */
    bool runCapacity = true;

    /** Run the thread-safety contract pass (COP080-082). */
    bool runThreadSafety = true;

    /**
     * Run the second-stage compression invariant pass (COP100):
     * storedBytes <= rawBytes over synthetic tiles. Slow — off by
     * default like grammar/oracle are in the daemon's quick gate.
     */
    bool runCompress = true;

    /**
     * Run the .cbm container-integrity pass (COP110-112): synthetic
     * round-trips plus per-rule defect injection against the
     * inspector.
     */
    bool runStore = true;

    /**
     * Extra .cbm files to deep-inspect under COP110-112 — real sweep
     * artifacts a CI job wants linted alongside the synthetic ones.
     */
    std::vector<std::string> storeContainers;

    /**
     * Serve-protocol surface to conform-check (COP090-093); the pass
     * is skipped when null. The serve library provides
     * collectServeProtocolSurface() — analysis cannot depend on serve
     * (serve's startup gate already depends on analysis), so callers
     * inject the surface.
     */
    const ProtocolSurface *protocol = nullptr;

    /**
     * Root of the source tree for the source-scanning rules (COP063
     * narrowing casts, COP082 bare mutexes). "" means the compiled-in
     * checkout path; the scans skip silently when the directory does
     * not exist (a deployed daemon has no source tree).
     */
    std::string sourceRoot;
};

/**
 * The hlsc loop body modelling @p kind's pipelined inner loop (JDS
 * reuses CSR's entry body, the ELL family reuses the row sweep).
 * Only valid for formats whose spec has hasInnerBody set.
 */
LoopBody decoderBodyFor(FormatKind kind, const FormatParams &params,
                        Index partitionSize);

/** Pass 1: structural sanity + BRAM port budget of one spec. */
void checkSpecStructure(const ScheduleSpec &spec, const HlsConfig &config,
                        LintReport &report);

/**
 * Pass 2: schedule @p body with hlsc and compare against @p spec's
 * claims; II violations are classified as port over-subscription or
 * loop-carried dependence. @p partitionSize sizes the comparator-tree
 * balance check for specs that claim one.
 */
void checkDecoderBody(const ScheduleSpec &spec, const LoopBody &body,
                      Index partitionSize, const HlsConfig &config,
                      LintReport &report);

/** Pass 3: hyperparameter/partition/knob contracts. */
void checkContracts(const FormatParams &params, const HlsConfig &config,
                    const std::vector<Index> &partitionSizes,
                    LintReport &report);

/**
 * Pass 4 (per tile): grammar-validate @p tile encoded as @p kind and
 * check the closed-form bound against the dynamic walker.
 */
void checkTile(const FormatRegistry &registry, FormatKind kind,
               const Tile &tile, const HlsConfig &config, bool grammar,
               bool oracle, bool streams, LintReport &report);

/** Back-compat overload: runs the streams pass. */
void checkTile(const FormatRegistry &registry, FormatKind kind,
               const Tile &tile, const HlsConfig &config, bool grammar,
               bool oracle, LintReport &report);

/**
 * Invoke @p fn for every tile of the synthetic lint workload set
 * (random, band, diagonal, stencil, plus the all-zero tile) at each
 * partition size — the shared tile sweep behind the grammar, oracle,
 * streams and compress passes. Deterministic (fixed seed).
 */
void forEachLintTile(const std::vector<Index> &partitionSizes,
                     const std::function<void(Index, const Tile &)> &fn);

/**
 * Run every enabled pass over the full registry (implemented in
 * analysis/pass_manager — this is PassManager::standard() with the
 * default selection).
 */
LintReport runLint(const LintOptions &options = LintOptions());

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_SCHEDULE_CHECK_HH
