/**
 * @file
 * Static schedule analyzer and lint driver.
 *
 * Four families of passes, all static — nothing here runs the
 * pipeline:
 *
 *  - Spec structure: every format's ScheduleSpec is well-formed and
 *    none of its segments over-subscribes a dual-port BRAM bank
 *    (> bramPorts accesses per initiation interval on one bank).
 *  - Decoder-body cross-check: the depth/II each spec claims for its
 *    inner loop must equal what the hlsc list scheduler derives from
 *    the Listing 1-7 loop bodies; a violated II is classified as port
 *    over-subscription (rescheduling with unlimited ports fixes it) or
 *    a loop-carried dependence (it does not). LIL's comparator tree is
 *    additionally checked for balance: its compare-chain depth must be
 *    log2(p).
 *  - Contracts: codec hyperparameters against hls_config.hh and the
 *    requested partition sizes (BCSR block / SELL slice /
 *    SELL-C-sigma window divisibility, ELL width clamps, knob sanity).
 *  - Grammar + oracle over synthetic workloads: every encoded tile
 *    must satisfy its format grammar (formats/validate), and the
 *    closed-form cycle bound from the schedule IR must equal the
 *    dynamic walker exactly (the model-vs-walker oracle).
 *
 * copernicus_lint and `copernicus_cli --lint` run runLint() over the
 * full registry and exit nonzero on any error diagnostic.
 */

#ifndef COPERNICUS_ANALYSIS_SCHEDULE_CHECK_HH
#define COPERNICUS_ANALYSIS_SCHEDULE_CHECK_HH

#include <string>
#include <vector>

#include "formats/registry.hh"
#include "hls/hls_config.hh"
#include "hlsc/ir.hh"
#include "matrix/tile.hh"

namespace copernicus {

/** How bad one lint finding is. */
enum class LintSeverity
{
    Warning, ///< suspicious but does not invalidate the model
    Error,   ///< the model or an encoding is wrong; lint exits nonzero
};

/** One format-qualified diagnostic. */
struct LintDiagnostic
{
    LintSeverity severity = LintSeverity::Error;

    /** Pass that produced it: "spec", "body", "contract", ... */
    std::string pass;

    /** Format the finding concerns ("" for global contract findings). */
    std::string format;

    std::string message;

    /** "error[body] CSR: ..." */
    std::string toString() const;
};

/** Everything one lint run found. */
struct LintReport
{
    std::vector<LintDiagnostic> diagnostics;

    std::size_t errorCount() const;
    std::size_t warningCount() const;

    /** True when no error-severity diagnostics were produced. */
    bool ok() const { return errorCount() == 0; }

    /** One line per diagnostic. */
    std::string toString() const;

    void
    error(const std::string &pass, const std::string &format,
          const std::string &message)
    {
        diagnostics.push_back(
            {LintSeverity::Error, pass, format, message});
    }

    void
    warning(const std::string &pass, const std::string &format,
            const std::string &message)
    {
        diagnostics.push_back(
            {LintSeverity::Warning, pass, format, message});
    }
};

/** What to lint and against which platform. */
struct LintOptions
{
    /** Partition sizes the contracts and oracle sweep. */
    std::vector<Index> partitionSizes = {8, 16, 32};

    /** Platform the schedules are checked against. */
    HlsConfig hls;

    /** Codec hyperparameters (the registry the passes build). */
    FormatParams params;

    /** Run the encoded-tile grammar pass over synthetic tiles. */
    bool runGrammar = true;

    /** Run the model-vs-walker oracle over synthetic tiles. */
    bool runOracle = true;

    /**
     * Run the typed-stream coverage pass over synthetic tiles: every
     * format's typedStreams() must cover its legacy streams() total
     * exactly (no bytes dropped or double-counted by the typed-stream
     * migration).
     */
    bool runStreams = true;
};

/**
 * The hlsc loop body modelling @p kind's pipelined inner loop (JDS
 * reuses CSR's entry body, the ELL family reuses the row sweep).
 * Only valid for formats whose spec has hasInnerBody set.
 */
LoopBody decoderBodyFor(FormatKind kind, const FormatParams &params,
                        Index partitionSize);

/** Pass 1: structural sanity + BRAM port budget of one spec. */
void checkSpecStructure(const ScheduleSpec &spec, const HlsConfig &config,
                        LintReport &report);

/**
 * Pass 2: schedule @p body with hlsc and compare against @p spec's
 * claims; II violations are classified as port over-subscription or
 * loop-carried dependence. @p partitionSize sizes the comparator-tree
 * balance check for specs that claim one.
 */
void checkDecoderBody(const ScheduleSpec &spec, const LoopBody &body,
                      Index partitionSize, const HlsConfig &config,
                      LintReport &report);

/** Pass 3: hyperparameter/partition/knob contracts. */
void checkContracts(const FormatParams &params, const HlsConfig &config,
                    const std::vector<Index> &partitionSizes,
                    LintReport &report);

/**
 * Pass 4 (per tile): grammar-validate @p tile encoded as @p kind and
 * check the closed-form bound against the dynamic walker.
 */
void checkTile(const FormatRegistry &registry, FormatKind kind,
               const Tile &tile, const HlsConfig &config, bool grammar,
               bool oracle, bool streams, LintReport &report);

/** Back-compat overload: runs the streams pass. */
void checkTile(const FormatRegistry &registry, FormatKind kind,
               const Tile &tile, const HlsConfig &config, bool grammar,
               bool oracle, LintReport &report);

/** Run every pass over the full registry. */
LintReport runLint(const LintOptions &options = LintOptions());

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_SCHEDULE_CHECK_HH
