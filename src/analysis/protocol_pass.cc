#include "analysis/protocol_pass.hh"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace copernicus {

namespace {

/** Elements of @p actual missing from @p documented, sorted. */
std::vector<std::string>
missingFrom(const std::vector<std::string> &actual,
            const std::vector<std::string> &documented)
{
    const std::set<std::string> have(documented.begin(),
                                     documented.end());
    std::vector<std::string> missing;
    for (const std::string &name : actual)
        if (have.count(name) == 0)
            missing.push_back(name);
    std::sort(missing.begin(), missing.end());
    missing.erase(std::unique(missing.begin(), missing.end()),
                  missing.end());
    return missing;
}

std::string
joined(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

} // namespace

void
checkProtocolSurface(const ProtocolSurface &surface, LintReport &report)
{
    for (const std::string &endpoint :
         missingFrom(surface.handledEndpoints,
                     surface.documentedEndpoints))
        report.error("COP090", "protocol", "",
                     "endpoint '" + endpoint +
                         "' is handled by the server but missing from "
                         "the documented endpoint table");
    for (const std::string &endpoint :
         missingFrom(surface.documentedEndpoints,
                     surface.handledEndpoints))
        report.error("COP091", "protocol", "",
                     "endpoint '" + endpoint +
                         "' is documented but no handler serves it");

    const std::vector<std::string> undocFields = missingFrom(
        surface.wideEventFields, surface.documentedWideEventFields);
    if (!undocFields.empty())
        report.error("COP092", "protocol", "",
                     "wide events carry undocumented fields: " +
                         joined(undocFields));
    const std::vector<std::string> deadFields = missingFrom(
        surface.documentedWideEventFields, surface.wideEventFields);
    if (!deadFields.empty())
        report.error("COP092", "protocol", "",
                     "documented wide-event fields never recorded: " +
                         joined(deadFields));

    const std::vector<std::string> undocMetrics =
        missingFrom(surface.metricNames, surface.documentedMetricNames);
    if (!undocMetrics.empty())
        report.error("COP093", "protocol", "",
                     "exported metric families are undocumented: " +
                         joined(undocMetrics));
    const std::vector<std::string> deadMetrics =
        missingFrom(surface.documentedMetricNames, surface.metricNames);
    if (!deadMetrics.empty())
        report.error("COP093", "protocol", "",
                     "documented metric families never exported: " +
                         joined(deadMetrics));
}

void
runProtocolPass(const LintOptions &options, LintReport &report)
{
    // No surface injected: the caller has no serve plane in the
    // process (plain copernicus_lint links it precisely to provide
    // one; library users may not). Nothing to check.
    if (options.protocol == nullptr)
        return;
    checkProtocolSurface(*options.protocol, report);
}

} // namespace copernicus
