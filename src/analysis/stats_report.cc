#include "analysis/stats_report.hh"

#include <string>

namespace copernicus {

PipelineStats::PipelineStats(const PipelineResult &result)
    : grp("pipeline." + std::string(formatName(result.format)) + ".p" +
          std::to_string(result.partitionSize)),
      partitions(grp, "partitions", "non-zero partitions streamed"),
      totalCycles(grp, "total_cycles",
                  "end-to-end cycles incl. fill/drain"),
      memoryCycles(grp, "memory_cycles", "sum of memory-read cycles"),
      computeCycles(grp, "compute_cycles", "sum of compute cycles"),
      bytesIn(grp, "bytes_in", "bytes transferred (data + metadata)"),
      usefulBytes(grp, "useful_bytes", "value-payload bytes"),
      throughput(grp, "throughput_bps", "bytes processed per second"),
      sigma(grp, "sigma", "decompression overhead (Eq. 1)"),
      balance(grp, "balance_ratio", "memory/compute per partition"),
      sigmaDist(grp, "sigma_dist", "per-partition sigma distribution",
                0.0, 8.0, 16)
{
    partitions = static_cast<double>(result.partitions.size());
    totalCycles = static_cast<double>(result.totalCycles);
    memoryCycles = static_cast<double>(result.totalMemoryCycles);
    computeCycles = static_cast<double>(result.totalComputeCycles);
    bytesIn = static_cast<double>(result.totalBytes);
    usefulBytes = static_cast<double>(result.totalUsefulBytes);
    throughput = result.throughputBytesPerSec;
    for (const auto &timing : result.partitions) {
        sigma.sample(timing.sigma);
        if (timing.computeCycles > 0) {
            balance.sample(
                static_cast<double>(timing.memoryCycles) /
                static_cast<double>(timing.computeCycles));
        }
        sigmaDist.sample(timing.sigma);
    }
}

} // namespace copernicus
