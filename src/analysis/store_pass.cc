#include "analysis/store_pass.hh"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

#include "common/rng.hh"
#include "common/status.hh"
#include "store/container.hh"
#include "workloads/generators.hh"

namespace copernicus {

namespace {

const char *
ruleFor(CbmIssueKind kind)
{
    switch (kind) {
      case CbmIssueKind::Header: return "COP110";
      case CbmIssueKind::Chunks: return "COP111";
      case CbmIssueKind::Hash: return "COP112";
    }
    panic("store pass: unhandled issue kind");
}

/** RAII temp directory; empty path when creation failed. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        char pattern[] = "/tmp/copernicus_lint_store.XXXXXX";
        if (::mkdtemp(pattern) != nullptr)
            path_ = pattern;
    }

    ~ScratchDir()
    {
        for (const std::string &file : files)
            std::remove(file.c_str());
        if (!path_.empty())
            ::rmdir(path_.c_str());
    }

    bool ok() const { return !path_.empty(); }

    /** Register and return @p name as a path inside the directory. */
    std::string
    file(const std::string &name)
    {
        files.push_back(path_ + "/" + name);
        return files.back();
    }

  private:
    std::string path_;
    std::vector<std::string> files;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/**
 * Require the inspector to flag @p corrupted with at least one issue
 * of @p kind; a miss is a soundness error under that kind's own rule.
 */
void
expectFlagged(const std::string &corrupted, CbmIssueKind kind,
              const std::string &what, LintReport &report)
{
    for (const CbmIssue &issue : inspectCbmFile(corrupted, true))
        if (issue.kind == kind)
            return;
    report.error(ruleFor(kind), "store", "",
                 "inspector failed to flag an injected " + what +
                     " defect — the " + std::string(ruleFor(kind)) +
                     " invariant is not actually checked");
}

} // namespace

void
checkContainerFile(const std::string &path, LintReport &report)
{
    for (const CbmIssue &issue : inspectCbmFile(path, true))
        report.error(ruleFor(issue.kind), "store", path,
                     issue.message);
}

void
runStorePass(const LintOptions &options, LintReport &report)
{
    if (!options.runStore)
        return;

    ScratchDir scratch;
    if (scratch.ok()) {
        // Round-trip half: freshly written containers of several
        // shapes must deep-inspect clean (multi-chunk via a small
        // chunk target, single-chunk via the default).
        Rng rng(0x5704E);
        TripletMatrix band = bandMatrix(256, 6, rng);
        band.finalize();
        TripletMatrix random = randomMatrix(128, 0.08, rng);
        random.finalize();

        const std::string multi = scratch.file("multi_chunk.cbm");
        writeCbmFile(multi, band, /*epoch=*/3,
                     /*chunkTargetNnz=*/257);
        checkContainerFile(multi, report);

        const std::string single = scratch.file("single_chunk.cbm");
        writeCbmFile(single, random, /*epoch=*/1);
        checkContainerFile(single, report);

        // Injection half: one defect per rule class, each of which
        // the inspector must catch.
        const std::string clean = readFile(multi);
        const CbmHeader *header =
            reinterpret_cast<const CbmHeader *>(clean.data());
        if (clean.size() > sizeof(CbmHeader) &&
            header->chunkCount >= 2) {
            std::string bad = clean;
            bad[4] = static_cast<char>(bad[4] ^ 0x2); // version field
            const std::string headerPath =
                scratch.file("bad_header.cbm");
            writeFile(headerPath, bad);
            expectFlagged(headerPath, CbmIssueKind::Header,
                          "header-version", report);

            // Swap the first two directory entries: offsets stop
            // being contiguous and first/last rows stop being
            // monotone, while header and payload stay pristine.
            bad = clean;
            const std::size_t dir =
                static_cast<std::size_t>(header->directoryOffset);
            for (std::size_t i = 0; i < sizeof(CbmChunkInfo); ++i)
                std::swap(bad[dir + i],
                          bad[dir + sizeof(CbmChunkInfo) + i]);
            const std::string chunksPath =
                scratch.file("bad_chunks.cbm");
            writeFile(chunksPath, bad);
            expectFlagged(chunksPath, CbmIssueKind::Chunks,
                          "chunk-directory", report);

            // Flip a mantissa bit of the first value: order and
            // bounds stay legal, the content hash must not.
            bad = clean;
            bad[sizeof(CbmHeader) + 8] ^= 0x1;
            const std::string hashPath = scratch.file("bad_hash.cbm");
            writeFile(hashPath, bad);
            expectFlagged(hashPath, CbmIssueKind::Hash,
                          "payload-hash", report);
        } else {
            report.error("COP110", "store", "",
                         "store pass could not build its multi-chunk "
                         "fixture (container too small)");
        }
    } else {
        report.warning("COP110", "store", "",
                       "store pass skipped defect injection: no "
                       "scratch directory available");
    }

    for (const std::string &path : options.storeContainers)
        checkContainerFile(path, report);
}

} // namespace copernicus
