/**
 * @file
 * The analyzer's pass framework.
 *
 * Every lint check is a named pass: a description, the rule ids it can
 * emit, a default-enablement predicate over LintOptions, and a run
 * function from (options, report). PassManager::standard() owns the
 * registered list — the same one `copernicus_lint --list-passes`
 * prints and `--passes=a,b` selects from — and runLint() is exactly
 * standard().run(options) with the default selection.
 *
 * Passes are independent by contract: each builds what it needs from
 * the options (sharing forEachLintTile for the synthetic sweep) and
 * only appends diagnostics, so an explicit `--passes` selection runs
 * any subset in registration order with identical results.
 */

#ifndef COPERNICUS_ANALYSIS_PASS_MANAGER_HH
#define COPERNICUS_ANALYSIS_PASS_MANAGER_HH

#include <functional>
#include <string>
#include <vector>

#include "analysis/schedule_check.hh"

namespace copernicus {

/** One registered analyzer pass. */
struct PassInfo
{
    /** Selection name ("overflow", "thread-safety", ...). */
    std::string name;

    /** One-line description for --list-passes. */
    std::string description;

    /** Rule ids this pass can emit ("COP060", ...). */
    std::vector<std::string> ids;

    /** True for tile-sweeping passes a quick gate may want off. */
    bool slow = false;

    /** Whether the default selection includes this pass. */
    std::function<bool(const LintOptions &)> enabledByDefault;

    /** Append this pass's findings to the report. */
    std::function<void(const LintOptions &, LintReport &)> run;
};

/** The registered pass list and the drivers over it. */
class PassManager
{
  public:
    /** The process-wide registry of every pass, in run order. */
    static const PassManager &standard();

    const std::vector<PassInfo> &passes() const { return registered; }

    /** The pass named @p name, or nullptr. */
    const PassInfo *find(const std::string &name) const;

    /** Run the default selection (each pass's enabledByDefault). */
    LintReport run(const LintOptions &options) const;

    /**
     * Run exactly @p selection (registration order, duplicates
     * collapsed), ignoring the default-enablement gates. An unknown
     * name produces an error diagnostic (pass "driver") instead of
     * silently checking nothing.
     */
    LintReport run(const LintOptions &options,
                   const std::vector<std::string> &selection) const;

    /** Register @p pass (used by standard()'s builder and tests). */
    void add(PassInfo pass) { registered.push_back(std::move(pass)); }

  private:
    std::vector<PassInfo> registered;
};

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_PASS_MANAGER_HH
