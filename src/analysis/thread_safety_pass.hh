/**
 * @file
 * Thread-safety contract pass (rules COP080-082).
 *
 * The locking discipline has three legs: clang capability annotations
 * (common/thread_annotations.hh, enforced by the -Wthread-safety CI
 * job), the debug-asserted lock-order hierarchy
 * (common/lock_order.hh), and this pass, which checks the parts a
 * compiler cannot:
 *
 *  - COP080/081: the lock-order registry must stay a strict total
 *    order by construction — ranks positive and unique, names
 *    non-empty and unique. A duplicated rank silently legalizes a
 *    nesting the hierarchy was supposed to forbid.
 *  - COP082: every std::mutex member in a header must either be the
 *    annotated Mutex wrapper or carry a documented exclusion. The scan
 *    flags bare `std::mutex` member declarations in src/ headers
 *    unless a "CV-paired" or "documented exclusion" marker appears on
 *    or just above the declaration — the condition-variable waiters
 *    are the only legitimate escape, and they must say so where the
 *    next reader will look.
 *
 * The scan halves are exposed on raw inputs so the seeded-defect
 * suite can feed mutated registries and header snippets.
 */

#ifndef COPERNICUS_ANALYSIS_THREAD_SAFETY_PASS_HH
#define COPERNICUS_ANALYSIS_THREAD_SAFETY_PASS_HH

#include <string>
#include <vector>

#include "analysis/schedule_check.hh"
#include "common/lock_order.hh"

namespace copernicus {

/** COP080/081 over @p registry (tests inject broken hierarchies). */
void checkLockOrderRegistry(const std::vector<LockLevel> &registry,
                            LintReport &report);

/**
 * COP082 over one header's contents. @p path is used for reporting
 * and for the wrapper exemption (common/mutex.hh is the one header
 * allowed to hold a bare std::mutex — it is the annotated wrapper).
 */
void scanHeaderForBareMutexes(const std::string &path,
                              const std::string &contents,
                              LintReport &report);

/**
 * The whole pass: the process lock-order registry plus the header
 * scan over options.sourceRoot (skipped when no checkout exists).
 */
void runThreadSafetyPass(const LintOptions &options, LintReport &report);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_THREAD_SAFETY_PASS_HH
