/**
 * @file
 * Bridge from pipeline results to the gem5-style stats package: one
 * dumpable StatGroup per characterization run, including per-partition
 * sigma and balance distributions.
 */

#ifndef COPERNICUS_ANALYSIS_STATS_REPORT_HH
#define COPERNICUS_ANALYSIS_STATS_REPORT_HH

#include <iosfwd>

#include "common/stat_group.hh"
#include "pipeline/stream_pipeline.hh"

namespace copernicus {

/** Owns the statistics of one pipeline run. */
class PipelineStats
{
  public:
    /** Populate from a finished run. */
    explicit PipelineStats(const PipelineResult &result);

    /** The underlying group (for find()/stats()). */
    const StatGroup &group() const { return grp; }

    /** Dump in `name value # desc` format. */
    void dump(std::ostream &out) const { grp.dump(out); }

    /** Dump as JSON (the shape of StatGroup::dumpJson). */
    void dumpJson(std::ostream &out) const { grp.dumpJson(out); }

  private:
    StatGroup grp;
    ScalarStat partitions;
    ScalarStat totalCycles;
    ScalarStat memoryCycles;
    ScalarStat computeCycles;
    ScalarStat bytesIn;
    ScalarStat usefulBytes;
    ScalarStat throughput;
    AverageStat sigma;
    AverageStat balance;
    DistributionStat sigmaDist;
};

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_STATS_REPORT_HH
