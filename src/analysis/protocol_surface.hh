/**
 * @file
 * The serve protocol as data, for conformance checking.
 *
 * The analysis library cannot link against serve (serve's startup lint
 * gate already links analysis), so the protocol pass consumes this
 * plain-data snapshot instead of the Server itself. The serve library
 * provides collectServeProtocolSurface() (serve/protocol_doc.hh),
 * which fills the "handled"/"exported" halves by interrogating the
 * real implementation — the endpoint dispatch table, a sample wide
 * event, the Prometheus exposition — and the "documented" halves from
 * the hand-maintained tables that double as the protocol docs. The
 * protocol pass (COP090-093) then reports any drift between the two.
 */

#ifndef COPERNICUS_ANALYSIS_PROTOCOL_SURFACE_HH
#define COPERNICUS_ANALYSIS_PROTOCOL_SURFACE_HH

#include <string>
#include <vector>

namespace copernicus {

/** What the serve plane implements vs what it documents. */
struct ProtocolSurface
{
    /** Endpoint names the server actually dispatches. */
    std::vector<std::string> handledEndpoints;

    /** Endpoint names the protocol documentation lists. */
    std::vector<std::string> documentedEndpoints;

    /** Field names a recorded wide event actually carries. */
    std::vector<std::string> wideEventFields;

    /** Wide-event field names the documentation lists. */
    std::vector<std::string> documentedWideEventFields;

    /** Metric family names the /metrics exposition actually exports. */
    std::vector<std::string> metricNames;

    /** Metric family names the documentation lists. */
    std::vector<std::string> documentedMetricNames;
};

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_PROTOCOL_SURFACE_HH
