#include "analysis/table_writer.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/status.hh"

namespace copernicus {

TableWriter::TableWriter(std::vector<std::string> columns)
    : header(std::move(columns))
{
    fatalIf(header.empty(), "TableWriter needs at least one column");
}

void
TableWriter::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != header.size(),
            "TableWriter row width does not match the header");
    body.push_back(std::move(cells));
}

void
TableWriter::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emit(header);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : body)
        emit(row);
}

void
TableWriter::writeCsv(std::ostream &out) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            // Cells are numeric or simple identifiers; quote on demand.
            const bool quote =
                row[c].find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                out << '"';
                for (char ch : row[c]) {
                    if (ch == '"')
                        out << '"';
                    out << ch;
                }
                out << '"';
            } else {
                out << row[c];
            }
            if (c + 1 < row.size())
                out << ',';
        }
        out << '\n';
    };
    emit(header);
    for (const auto &row : body)
        emit(row);
}

void
TableWriter::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    fatalIf(!out, "TableWriter: cannot open '" + path + "'");
    writeCsv(out);
}

std::string
TableWriter::num(double value, int precision)
{
    std::ostringstream out;
    out.precision(precision);
    out << value;
    return out.str();
}

} // namespace copernicus
