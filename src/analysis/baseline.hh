/**
 * @file
 * Checked-in lint baselines: suppress known findings, keep new ones
 * fatal.
 *
 * A baseline file holds one fingerprint per accepted finding —
 * `<id> <pass> <format-or-file> <segment-or->`, '#' comments and
 * blank lines ignored — matching LintDiagnostic::fingerprint().
 * Messages and line numbers deliberately do not participate, so
 * rewording a diagnostic or editing an unrelated line never un-
 * suppresses it, while a finding moving to a new format/segment/file
 * does surface.
 *
 * applyBaseline() removes matched diagnostics from the report (each
 * entry suppresses any number of matching findings) and reports which
 * entries matched nothing — stale entries are how a baseline rots, so
 * `copernicus_lint --baseline` prints them as warnings. The tree's
 * committed baseline (lint_baseline.txt) is empty and the CI lint job
 * enforces it stays that way; the mechanism exists so a future
 * intentional exception is one reviewed line, not a disabled pass.
 */

#ifndef COPERNICUS_ANALYSIS_BASELINE_HH
#define COPERNICUS_ANALYSIS_BASELINE_HH

#include <string>
#include <vector>

#include "analysis/diagnostics.hh"

namespace copernicus {

/** A parsed baseline: accepted finding fingerprints. */
struct LintBaseline
{
    std::vector<std::string> fingerprints;
};

/** Parse baseline text (comments/blank lines stripped). */
LintBaseline parseBaseline(const std::string &text);

/**
 * Load @p path. Returns false (and an empty baseline) when the file
 * cannot be read — callers decide whether a missing baseline is fatal.
 */
bool loadBaseline(const std::string &path, LintBaseline &out);

/** The report's fingerprints as baseline text (one per line). */
std::string baselineFromReport(const LintReport &report);

/**
 * Remove diagnostics matching @p baseline from @p report. Returns the
 * number suppressed; when @p unused is non-null it receives the
 * entries that matched nothing (stale suppressions).
 */
std::size_t applyBaseline(LintReport &report,
                          const LintBaseline &baseline,
                          std::vector<std::string> *unused = nullptr);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_BASELINE_HH
