/**
 * @file
 * Shared driver behind the lint command-line surfaces.
 *
 * `copernicus_lint` and `copernicus_cli --lint` accept the same flag
 * set and must behave identically; both parse argv into a
 * LintDriverOptions and hand it here. The driver runs the pass
 * manager (optionally a named subset), applies a baseline file,
 * surfaces stale baseline entries as warnings, emits human text or
 * JSON to the given stream plus an optional SARIF file, and maps the
 * final report to an exit code via lintExitCode().
 */

#ifndef COPERNICUS_ANALYSIS_LINT_DRIVER_HH
#define COPERNICUS_ANALYSIS_LINT_DRIVER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/schedule_check.hh"

namespace copernicus {

/** Parsed lint CLI flags; `lint` carries the pass gates. */
struct LintDriverOptions
{
    LintOptions lint;
    /** Exact pass names to run; empty means the default gated set. */
    std::vector<std::string> passes;
    bool listPasses = false;   ///< print the pass table and exit 0
    bool json = false;         ///< machine-readable report on stdout
    std::string sarifPath;     ///< write SARIF 2.1.0 here when set
    std::string baselinePath;  ///< suppress fingerprints listed here
    bool werror = false;       ///< warnings exit 1 instead of 2
};

/**
 * Run the lint passes per `options`, write the report to `out`, and
 * return the process exit code (0 clean, 1 errors or --werror
 * warnings, 2 warnings).
 */
int runLintDriver(const LintDriverOptions &options, std::ostream &out);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_LINT_DRIVER_HH
