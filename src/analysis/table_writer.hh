/**
 * @file
 * TableWriter: aligned ASCII tables on stdout plus optional CSV files,
 * used by every bench binary to print the paper's rows/series.
 */

#ifndef COPERNICUS_ANALYSIS_TABLE_WRITER_HH
#define COPERNICUS_ANALYSIS_TABLE_WRITER_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace copernicus {

/** Column-aligned table builder. */
class TableWriter
{
  public:
    /** @param columns Header labels, one per column. */
    explicit TableWriter(std::vector<std::string> columns);

    /** Append one row; must match the column count. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows so far. */
    std::size_t rows() const { return body.size(); }

    /** Print the aligned table. */
    void print(std::ostream &out) const;

    /** Write the table as CSV. */
    void writeCsv(std::ostream &out) const;

    /** Write CSV to @p path (directories must exist). */
    void writeCsvFile(const std::string &path) const;

    /** Format a double with @p precision significant digits. */
    static std::string num(double value, int precision = 4);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_TABLE_WRITER_HH
