#include "analysis/baseline.hh"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

namespace copernicus {

namespace {

/** Collapse runs of whitespace so hand-edited files compare stably. */
std::string
normalizeEntry(const std::string &line)
{
    std::string out;
    bool inSpace = true; // also trims leading whitespace
    for (const char c : line) {
        if (c == ' ' || c == '\t') {
            if (!inSpace)
                out += ' ';
            inSpace = true;
        } else {
            out += c;
            inSpace = false;
        }
    }
    while (!out.empty() && out.back() == ' ')
        out.pop_back();
    return out;
}

} // namespace

LintBaseline
parseBaseline(const std::string &text)
{
    LintBaseline baseline;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const std::string::size_type hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const std::string entry = normalizeEntry(line);
        if (!entry.empty())
            baseline.fingerprints.push_back(entry);
    }
    return baseline;
}

bool
loadBaseline(const std::string &path, LintBaseline &out)
{
    out = LintBaseline();
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = parseBaseline(buffer.str());
    return true;
}

std::string
baselineFromReport(const LintReport &report)
{
    // Sorted + deduplicated: the file is meant to be committed, so
    // regenerating it must be diff-stable.
    std::set<std::string> fingerprints;
    for (const LintDiagnostic &d : report.diagnostics)
        fingerprints.insert(d.fingerprint());
    std::string out = "# copernicus_lint baseline: one accepted "
                      "finding per line\n"
                      "# format: <id> <pass> <format-or-file> "
                      "<segment-or->\n";
    for (const std::string &fingerprint : fingerprints) {
        out += fingerprint;
        out += '\n';
    }
    return out;
}

std::size_t
applyBaseline(LintReport &report, const LintBaseline &baseline,
              std::vector<std::string> *unused)
{
    const std::set<std::string> accepted(baseline.fingerprints.begin(),
                                         baseline.fingerprints.end());
    std::set<std::string> matched;
    std::vector<LintDiagnostic> kept;
    kept.reserve(report.diagnostics.size());
    std::size_t suppressed = 0;
    for (LintDiagnostic &d : report.diagnostics) {
        const std::string fingerprint = d.fingerprint();
        if (accepted.count(fingerprint) != 0) {
            ++suppressed;
            matched.insert(fingerprint);
        } else {
            kept.push_back(std::move(d));
        }
    }
    report.diagnostics = std::move(kept);
    if (unused != nullptr) {
        unused->clear();
        for (const std::string &fingerprint : accepted)
            if (matched.count(fingerprint) == 0)
                unused->push_back(fingerprint);
    }
    return suppressed;
}

} // namespace copernicus
