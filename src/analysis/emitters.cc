#include "analysis/emitters.hh"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "common/json.hh"

namespace copernicus {

namespace {

const char *
severityName(LintSeverity severity)
{
    return severity == LintSeverity::Error ? "error" : "warning";
}

void
writeMember(std::ostream &out, const char *key, const std::string &value,
            bool &first)
{
    if (!first)
        out << ',';
    first = false;
    writeJsonString(out, key);
    out << ':';
    writeJsonString(out, value);
}

/** Distinct rule ids used by @p report, sorted. */
std::vector<std::string>
usedRuleIds(const LintReport &report)
{
    std::set<std::string> ids;
    for (const LintDiagnostic &d : report.diagnostics)
        if (!d.id.empty())
            ids.insert(d.id);
    return {ids.begin(), ids.end()};
}

} // namespace

std::string
lintReportToJson(const LintReport &report)
{
    std::ostringstream out;
    out << "{\"errors\":" << report.errorCount()
        << ",\"warnings\":" << report.warningCount()
        << ",\"diagnostics\":[";
    bool firstDiag = true;
    for (const LintDiagnostic &d : report.diagnostics) {
        if (!firstDiag)
            out << ',';
        firstDiag = false;
        out << '{';
        bool first = true;
        writeMember(out, "severity", severityName(d.severity), first);
        writeMember(out, "pass", d.pass, first);
        if (!d.id.empty())
            writeMember(out, "id", d.id, first);
        if (!d.format.empty())
            writeMember(out, "format", d.format, first);
        if (!d.segment.empty())
            writeMember(out, "segment", d.segment, first);
        if (!d.file.empty()) {
            writeMember(out, "file", d.file, first);
            out << ",\"line\":" << d.line;
        }
        writeMember(out, "message", d.message, first);
        if (!d.fixHint.empty())
            writeMember(out, "fix", d.fixHint, first);
        out << '}';
    }
    out << "]}";
    return out.str();
}

std::string
lintReportToSarif(const LintReport &report)
{
    std::ostringstream out;
    out << "{\"$schema\":\"https://raw.githubusercontent.com/oasis-"
           "tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
           "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
           "\"name\":\"copernicus_lint\",\"informationUri\":"
           "\"https://github.com/copernicus/copernicus\",\"rules\":[";
    bool first = true;
    for (const std::string &id : usedRuleIds(report)) {
        if (!first)
            out << ',';
        first = false;
        out << "{\"id\":";
        writeJsonString(out, id);
        out << ",\"shortDescription\":{\"text\":";
        writeJsonString(out, lintRuleDescription(id));
        out << "}}";
    }
    out << "]}},\"results\":[";
    first = true;
    for (const LintDiagnostic &d : report.diagnostics) {
        if (!first)
            out << ',';
        first = false;
        out << "{\"ruleId\":";
        // SARIF requires a ruleId; ad-hoc diagnostics map to the
        // reserved synthetic id of their pass.
        writeJsonString(out, d.id.empty() ? "COP000" : d.id);
        out << ",\"level\":";
        writeJsonString(out, severityName(d.severity));
        out << ",\"message\":{\"text\":";
        writeJsonString(out, d.message);
        out << "}";
        if (!d.file.empty()) {
            out << ",\"locations\":[{\"physicalLocation\":{"
                   "\"artifactLocation\":{\"uri\":";
            writeJsonString(out, d.file);
            out << "}";
            if (d.line > 0)
                out << ",\"region\":{\"startLine\":" << d.line << "}";
            out << "}}]";
        } else if (!d.format.empty()) {
            out << ",\"locations\":[{\"logicalLocations\":[{"
                   "\"name\":";
            writeJsonString(out, d.format);
            out << ",\"kind\":\"format\"";
            if (!d.segment.empty()) {
                out << ",\"fullyQualifiedName\":";
                writeJsonString(out, d.format + "/" + d.segment);
            }
            out << "}]}]";
        }
        out << ",\"properties\":{\"pass\":";
        writeJsonString(out, d.pass);
        if (!d.fixHint.empty()) {
            out << ",\"fix\":";
            writeJsonString(out, d.fixHint);
        }
        out << "}}";
    }
    out << "]}]}";
    return out.str();
}

bool
validateSarifDocument(const std::string &text, std::string *why)
{
    const auto fail = [why](const char *reason) {
        if (why != nullptr)
            *why = reason;
        return false;
    };
    JsonValue doc;
    if (!parseJson(text, doc))
        return fail("document is not well-formed JSON");
    if (!doc.isObject())
        return fail("top level is not an object");
    if (doc.stringOr("version", "") != "2.1.0")
        return fail("version is not \"2.1.0\"");
    const JsonValue *runs = doc.find("runs");
    if (runs == nullptr || !runs->isArray() || runs->elements.empty())
        return fail("runs is missing or empty");
    const JsonValue &run = runs->elements.front();
    const JsonValue *tool = run.find("tool");
    const JsonValue *driver =
        tool != nullptr ? tool->find("driver") : nullptr;
    if (driver == nullptr || driver->stringOr("name", "").empty())
        return fail("tool.driver.name is missing");
    std::set<std::string> ruleIds;
    if (const JsonValue *rules = driver->find("rules");
        rules != nullptr && rules->isArray())
        for (const JsonValue &rule : rules->elements)
            ruleIds.insert(rule.stringOr("id", ""));
    const JsonValue *results = run.find("results");
    if (results == nullptr || !results->isArray())
        return fail("results is missing");
    for (const JsonValue &result : results->elements) {
        const std::string ruleId = result.stringOr("ruleId", "");
        if (ruleId.empty())
            return fail("a result has no ruleId");
        const JsonValue *message = result.find("message");
        if (message == nullptr ||
            message->stringOr("text", "").empty())
            return fail("a result has no message.text");
        if (ruleId != "COP000" && ruleIds.count(ruleId) == 0)
            return fail("a result's ruleId is not in the driver's "
                        "rules table");
    }
    return true;
}

} // namespace copernicus
