#include "analysis/diagnostics.hh"

#include <utility>

namespace copernicus {

std::string
LintDiagnostic::toString() const
{
    std::string out =
        severity == LintSeverity::Error ? "error[" : "warning[";
    out += pass;
    out += "] ";
    if (!id.empty()) {
        out += id;
        out += ' ';
    }
    if (!format.empty()) {
        out += format;
        if (!segment.empty()) {
            out += '(';
            out += segment;
            out += ')';
        }
        out += ": ";
    } else if (!file.empty()) {
        out += file;
        if (line > 0) {
            out += ':';
            out += std::to_string(line);
        }
        out += ": ";
    }
    out += message;
    return out;
}

std::string
LintDiagnostic::fingerprint() const
{
    // Location identity without the message: a reworded diagnostic at
    // the same place must keep matching its baseline entry. File paths
    // participate (basename only, so checkouts at different roots
    // agree); line numbers deliberately do not — they drift with every
    // unrelated edit.
    std::string fileKey = file;
    const std::size_t slash = fileKey.find_last_of('/');
    if (slash != std::string::npos)
        fileKey.erase(0, slash + 1);
    std::string out = id.empty() ? std::string("-") : id;
    out += ' ';
    out += pass.empty() ? "-" : pass;
    out += ' ';
    if (!format.empty())
        out += format;
    else if (!fileKey.empty())
        out += fileKey;
    else
        out += '-';
    out += ' ';
    out += segment.empty() ? "-" : segment;
    return out;
}

std::size_t
LintReport::errorCount() const
{
    std::size_t count = 0;
    for (const LintDiagnostic &d : diagnostics)
        count += d.severity == LintSeverity::Error;
    return count;
}

std::size_t
LintReport::warningCount() const
{
    return diagnostics.size() - errorCount();
}

std::string
LintReport::toString() const
{
    std::string out;
    for (const LintDiagnostic &d : diagnostics) {
        out += d.toString();
        out += '\n';
    }
    return out;
}

int
lintExitCode(const LintReport &report, bool werror)
{
    if (report.errorCount() > 0)
        return 1;
    if (report.warningCount() > 0)
        return werror ? 1 : 2;
    return 0;
}

std::string
lintRuleDescription(const std::string &id)
{
    struct Rule
    {
        const char *id;
        const char *description;
    };
    // The one authoritative id table (mirrored in README.md). Ids are
    // append-only: retire a rule by leaving a tombstone, never by
    // reusing its number.
    static const Rule rules[] = {
        {"COP001", "decode schedule declares no segments"},
        {"COP002", "schedule segment without a name"},
        {"COP003", "segment declares zero bank accesses per II"},
        {"COP004", "segment over-subscribes one BRAM bank's ports"},
        {"COP010", "decoder body schedules at a different II than the "
                   "model charges"},
        {"COP011", "decoder body pipeline depth differs from the "
                   "model's claim"},
        {"COP012", "comparator tree deeper than log2(p) (unbalanced)"},
        {"COP013", "comparator tree shallower than log2(p)"},
        {"COP020", "platform knob out of range (ports, depth, BRAM "
                   "latency)"},
        {"COP021", "codec hyperparameter out of range"},
        {"COP022", "codec hyperparameter does not divide a requested "
                   "partition size"},
        {"COP023", "codec width exceeds the partition size (clamped)"},
        {"COP024", "partition size is not a power of two"},
        {"COP030", "encoded tile violates its format grammar"},
        {"COP040", "closed-form cycle bound != dynamic walker"},
        {"COP041", "IR produced-rows != walker rows"},
        {"COP050", "typed streams and legacy streams() disagree on "
                   "bytes"},
        {"COP060", "accounting type narrower than 64 bits"},
        {"COP061", "cycle accounting can overflow uint64 within the "
                   "workload envelope"},
        {"COP062", "byte accounting can overflow uint64 within the "
                   "workload envelope"},
        {"COP063", "narrowing cast on an accounting value in a size or "
                   "cycle model"},
        {"COP070", "consecutive pipelined segments over-subscribe one "
                   "bank's ports"},
        {"COP071", "double-buffered working set exceeds device BRAM"},
        {"COP072", "double-buffered working set above 80% of device "
                   "BRAM"},
        {"COP080", "lock-order registry rank invalid or duplicated"},
        {"COP081", "lock-order registry name invalid or duplicated"},
        {"COP082", "bare std::mutex member without thread-safety "
                   "annotations or a documented exclusion"},
        {"COP090", "endpoint handled by the server but not documented"},
        {"COP091", "endpoint documented but not handled"},
        {"COP092", "wide-event fields drift from the documented set"},
        {"COP093", "exported metric names drift from the documented "
                   "set"},
        {"COP100", "second-stage compression stored more bytes than "
                   "raw"},
        {"COP110", "container header invariant broken (magic, "
                   "version, sizes, header hash)"},
        {"COP111", "container chunk directory inconsistent (offsets, "
                   "extent monotonicity, counts)"},
        {"COP112", "container content hash does not cover the "
                   "payload bytes"},
    };
    for (const Rule &rule : rules)
        if (id == rule.id)
            return rule.description;
    return "";
}

} // namespace copernicus
