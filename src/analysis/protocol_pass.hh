/**
 * @file
 * Serve-protocol conformance pass (rules COP090-093).
 *
 * The serve plane's external surface — endpoint names, wide-event
 * fields, Prometheus metric families — is documented in hand-written
 * tables (serve/protocol_doc.hh) that operators and dashboards are
 * built against. This pass diffs those tables against what the
 * implementation actually exposes, both directions:
 *
 *  - COP090: an endpoint the dispatch table handles but the docs do
 *    not list (an invisible API surface).
 *  - COP091: a documented endpoint no handler serves (a dead doc, or
 *    a deleted handler someone still depends on).
 *  - COP092: wide-event field drift — a dashboard keyed on a renamed
 *    field silently flatlines.
 *  - COP093: metric-family drift, same failure mode for alerts.
 *
 * Analysis cannot link serve (serve's startup gate links analysis),
 * so the pass consumes an injected ProtocolSurface; the serve library
 * fills one with collectServeProtocolSurface().
 */

#ifndef COPERNICUS_ANALYSIS_PROTOCOL_PASS_HH
#define COPERNICUS_ANALYSIS_PROTOCOL_PASS_HH

#include "analysis/protocol_surface.hh"
#include "analysis/schedule_check.hh"

namespace copernicus {

/** The full conformance diff over one surface snapshot. */
void checkProtocolSurface(const ProtocolSurface &surface,
                          LintReport &report);

/** The pass: runs the diff when options.protocol is set, else skips. */
void runProtocolPass(const LintOptions &options, LintReport &report);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_PROTOCOL_PASS_HH
