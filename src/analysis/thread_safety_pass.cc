#include "analysis/thread_safety_pass.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <utility>

#include "analysis/source_scan.hh"

namespace copernicus {

namespace {

/** True when trimmed @p line sits inside a comment. */
bool
isCommentLine(const std::string &line)
{
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    if (i >= line.size())
        return true;
    if (line[i] == '*')
        return true;
    return line.compare(i, 2, "//") == 0 ||
           line.compare(i, 2, "/*") == 0 ||
           line.compare(i, 2, "*/") == 0;
}

/**
 * True when @p line declares a std::mutex member: the token
 * "std::mutex" followed by an identifier and ';', not a template
 * argument ("std::unique_lock<std::mutex>") or a comment mention.
 */
bool
declaresBareMutex(const std::string &line)
{
    if (isCommentLine(line))
        return false;
    const std::size_t at = line.find("std::mutex");
    if (at == std::string::npos)
        return false;
    // Template arguments and pointers/references are not members.
    const std::size_t after = at + std::string("std::mutex").size();
    if (after >= line.size())
        return false;
    if (line[after] == '>' || line[after] == '*' || line[after] == '&')
        return false;
    if (line.find(';', after) == std::string::npos)
        return false;
    // Need an identifier between the type and the semicolon.
    std::size_t i = after;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    return i < line.size() &&
           (std::isalpha(static_cast<unsigned char>(line[i])) ||
            line[i] == '_');
}

/** Lines above a declaration the exclusion marker may sit on. */
constexpr std::size_t markerWindow = 6;

bool
hasExclusionMarker(const std::vector<std::string> &lines,
                   std::size_t declIndex)
{
    const std::size_t first =
        declIndex >= markerWindow ? declIndex - markerWindow : 0;
    for (std::size_t i = first; i <= declIndex; ++i) {
        if (lines[i].find("CV-paired") != std::string::npos ||
            lines[i].find("documented exclusion") != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

void
checkLockOrderRegistry(const std::vector<LockLevel> &registry,
                       LintReport &report)
{
    std::map<int, std::string> byRank;
    std::map<std::string, int> byName;
    for (const LockLevel &level : registry) {
        if (level.rank <= 0)
            report.error("COP080", "thread-safety", "",
                         "lock '" + level.name +
                             "' has non-positive rank " +
                             std::to_string(level.rank) +
                             "; ranks must be positive (0 is the "
                             "unranked sentinel)");
        else if (const auto [it, inserted] =
                     byRank.emplace(level.rank, level.name);
                 !inserted)
            report.error("COP080", "thread-safety", "",
                         "locks '" + it->second + "' and '" +
                             level.name + "' share rank " +
                             std::to_string(level.rank) +
                             "; equal ranks legalize a nesting the "
                             "hierarchy forbids");
        if (level.name.empty())
            report.error("COP081", "thread-safety", "",
                         "lock with rank " +
                             std::to_string(level.rank) +
                             " has no name");
        else if (const auto [it, inserted] =
                     byName.emplace(level.name, level.rank);
                 !inserted)
            report.error("COP081", "thread-safety", "",
                         "lock name '" + level.name +
                             "' registered twice (ranks " +
                             std::to_string(it->second) + " and " +
                             std::to_string(level.rank) + ")");
    }
}

void
scanHeaderForBareMutexes(const std::string &path,
                         const std::string &contents, LintReport &report)
{
    // The wrapper itself is the one header allowed a bare member.
    if (path.find("common/mutex.hh") != std::string::npos)
        return;
    const std::vector<std::string> lines = splitLines(contents);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (!declaresBareMutex(lines[i]))
            continue;
        if (hasExclusionMarker(lines, i))
            continue;
        LintDiagnostic d;
        d.id = "COP082";
        d.pass = "thread-safety";
        d.file = path;
        d.line = static_cast<int>(i + 1);
        d.message = "bare std::mutex member: invisible to "
                    "-Wthread-safety and the lock-order assertions";
        d.fixHint = "use copernicus::Mutex + COPERNICUS_GUARDED_BY "
                    "(common/mutex.hh), or document the exclusion "
                    "with a 'CV-paired' / 'documented exclusion' "
                    "comment above the member";
        report.add(std::move(d));
    }
}

void
runThreadSafetyPass(const LintOptions &options, LintReport &report)
{
    checkLockOrderRegistry(lockOrderRegistry(), report);

    const std::string root = lintSourceRoot(options);
    if (root.empty())
        return;
    for (const std::string &header : listHeadersUnderSrc(root)) {
        std::string contents;
        if (!readTextFile(root + "/" + header, contents))
            continue;
        scanHeaderForBareMutexes(header, contents, report);
    }
}

} // namespace copernicus
