/**
 * @file
 * Structured diagnostics for the static analyzer.
 *
 * Every finding any pass produces is a LintDiagnostic: a stable rule
 * id (COP###), a severity, the pass that produced it, and a location —
 * either model-level (format, optionally a schedule segment) or
 * source-level (file and line, for the source-scanning passes). Ids
 * are contracts: tests, baselines (analysis/baseline) and the SARIF
 * export (analysis/emitters) all key on them, so an id is never
 * renumbered once shipped. The full id table lives in README.md and is
 * exported as SARIF rule metadata by lintRuleDescription().
 *
 * Severity maps to process exit status through lintExitCode(), the one
 * place the mapping is defined: 0 = clean, 1 = errors (or warnings
 * under --werror), 2 = warnings only. copernicus_lint and
 * `copernicus_cli --lint` both return it verbatim.
 */

#ifndef COPERNICUS_ANALYSIS_DIAGNOSTICS_HH
#define COPERNICUS_ANALYSIS_DIAGNOSTICS_HH

#include <string>
#include <vector>

namespace copernicus {

/** How bad one lint finding is. */
enum class LintSeverity
{
    Warning, ///< suspicious but does not invalidate the model
    Error,   ///< the model or an encoding is wrong; lint exits nonzero
};

/** One finding, with a stable rule id and a location. */
struct LintDiagnostic
{
    LintSeverity severity = LintSeverity::Error;

    /** Stable rule id ("COP004"); "" only for ad-hoc test reports. */
    std::string id;

    /** Pass that produced it: "spec", "overflow", "protocol", ... */
    std::string pass;

    /** Format the finding concerns ("" for global findings). */
    std::string format;

    /** Schedule segment (or segment chain) involved, or "". */
    std::string segment;

    /** Source file, for source-scanning passes ("" otherwise). */
    std::string file;

    /** 1-based line in @ref file; 0 when not file-anchored. */
    int line = 0;

    std::string message;

    /** Suggested remediation, or "" when none is known. */
    std::string fixHint;

    /**
     * "error[spec] COP004 CSR: ..." — id omitted when empty,
     * "format(segment)" when a segment is named, "file:line" for
     * source-anchored findings.
     */
    std::string toString() const;

    /**
     * Baseline identity: id + pass + format + segment (+ file), never
     * the message text, so reworded diagnostics stay suppressed.
     */
    std::string fingerprint() const;
};

/** Everything one lint run found. */
struct LintReport
{
    std::vector<LintDiagnostic> diagnostics;

    std::size_t errorCount() const;
    std::size_t warningCount() const;

    /** True when no error-severity diagnostics were produced. */
    bool ok() const { return errorCount() == 0; }

    /** One line per diagnostic. */
    std::string toString() const;

    void
    add(LintDiagnostic diagnostic)
    {
        diagnostics.push_back(std::move(diagnostic));
    }

    void
    error(const std::string &pass, const std::string &format,
          const std::string &message)
    {
        LintDiagnostic d;
        d.severity = LintSeverity::Error;
        d.pass = pass;
        d.format = format;
        d.message = message;
        diagnostics.push_back(std::move(d));
    }

    void
    warning(const std::string &pass, const std::string &format,
            const std::string &message)
    {
        LintDiagnostic d;
        d.severity = LintSeverity::Warning;
        d.pass = pass;
        d.format = format;
        d.message = message;
        diagnostics.push_back(std::move(d));
    }

    void
    error(const std::string &id, const std::string &pass,
          const std::string &format, const std::string &message)
    {
        LintDiagnostic d;
        d.severity = LintSeverity::Error;
        d.id = id;
        d.pass = pass;
        d.format = format;
        d.message = message;
        diagnostics.push_back(std::move(d));
    }

    void
    warning(const std::string &id, const std::string &pass,
            const std::string &format, const std::string &message)
    {
        LintDiagnostic d;
        d.severity = LintSeverity::Warning;
        d.id = id;
        d.pass = pass;
        d.format = format;
        d.message = message;
        diagnostics.push_back(std::move(d));
    }
};

/**
 * The severity -> exit-status mapping, pinned by tests:
 *   0  no diagnostics (or warnings all suppressed)
 *   1  at least one error, or any warning under @p werror
 *   2  warnings only
 */
int lintExitCode(const LintReport &report, bool werror = false);

/**
 * One-line human description of a rule id for SARIF metadata and
 * --list-passes; "" for unknown ids.
 */
std::string lintRuleDescription(const std::string &id);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_DIAGNOSTICS_HH
