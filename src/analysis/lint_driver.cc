#include "analysis/lint_driver.hh"

#include <fstream>
#include <ostream>

#include "analysis/baseline.hh"
#include "analysis/emitters.hh"
#include "analysis/pass_manager.hh"

namespace copernicus {

namespace {

void
printPassTable(const PassManager &manager, std::ostream &out)
{
    out << "available passes (--passes=a,b selects a subset):\n";
    for (const PassInfo &pass : manager.passes()) {
        out << "  " << pass.name;
        if (pass.slow)
            out << " [slow]";
        out << "\n      " << pass.description << '\n';
        if (!pass.ids.empty()) {
            out << "      ids:";
            for (const std::string &id : pass.ids)
                out << ' ' << id;
            out << '\n';
        }
    }
}

} // namespace

int
runLintDriver(const LintDriverOptions &options, std::ostream &out)
{
    PassManager manager = PassManager::standard();
    if (options.listPasses) {
        printPassTable(manager, out);
        return 0;
    }

    LintReport report = options.passes.empty()
                            ? manager.run(options.lint)
                            : manager.run(options.lint, options.passes);

    if (!options.baselinePath.empty()) {
        LintBaseline baseline;
        if (!loadBaseline(options.baselinePath, baseline)) {
            report.error("driver", "",
                         "cannot read baseline file '" +
                             options.baselinePath + "'");
        } else {
            std::vector<std::string> unused;
            const std::size_t suppressed =
                applyBaseline(report, baseline, &unused);
            if (!options.json && suppressed != 0)
                out << "(baseline suppressed " << suppressed
                    << " finding(s))\n";
            // A stale entry means the finding it excused is gone; the
            // file should shrink with the debt it tracks.
            for (const std::string &fingerprint : unused) {
                LintDiagnostic d;
                d.severity = LintSeverity::Warning;
                d.pass = "baseline";
                d.file = options.baselinePath;
                d.message =
                    "unused baseline entry: " + fingerprint;
                d.fixHint = "delete the stale line";
                report.add(std::move(d));
            }
        }
    }

    if (!options.sarifPath.empty()) {
        std::ofstream sarif(options.sarifPath);
        if (sarif)
            sarif << lintReportToSarif(report);
        else
            report.error("driver", "",
                         "cannot write SARIF to '" +
                             options.sarifPath + "'");
    }

    if (options.json) {
        out << lintReportToJson(report) << '\n';
    } else {
        if (!report.diagnostics.empty())
            out << report.toString();
        out << report.errorCount() << " error(s), "
            << report.warningCount() << " warning(s)\n";
    }
    return lintExitCode(report, options.werror);
}

} // namespace copernicus
