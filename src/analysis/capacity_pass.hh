/**
 * @file
 * Buffer/BRAM capacity dataflow across pipelined segments (rules
 * COP070-072).
 *
 * Two resources can be over-subscribed without any single segment
 * looking wrong in isolation:
 *
 *  - Ports (COP070): consecutive Pipelined segments of one decode
 *    schedule stream concurrently once the producer's first results
 *    reach the consumer — a producer/consumer pair whose summed
 *    bankAccessesPerII exceeds the bank's ports cannot both sustain
 *    their declared IIs. The diagnostic names the offending segment
 *    chain ("row sweep -> overflow loop").
 *  - BRAM bits (COP071/072): the worst-case working set is the
 *    Section 2 allocation bound, and the streaming pipeline double
 *    buffers it (tile k decodes while tile k+1 loads). 2x the bound
 *    above the device's BRAM is an error naming the largest buffer;
 *    above 80% is a warning — one partition-size bump from failing
 *    placement.
 *
 * checkPortPressure() is exposed on a bare ScheduleSpec so the
 * seeded-defect suite can feed it a mutated chain.
 */

#ifndef COPERNICUS_ANALYSIS_CAPACITY_PASS_HH
#define COPERNICUS_ANALYSIS_CAPACITY_PASS_HH

#include "analysis/schedule_check.hh"
#include "fpga/device.hh"

namespace copernicus {

/** COP070 over one spec's consecutive-Pipelined chains. */
void checkPortPressure(const ScheduleSpec &spec, const HlsConfig &config,
                       LintReport &report);

/** COP071/072 for one format at one partition size. */
void checkBufferCapacity(FormatKind kind, Index p,
                         const FormatParams &params,
                         const DeviceCapacity &device,
                         LintReport &report);

/** The whole pass over the registry and options.partitionSizes. */
void runCapacityPass(const LintOptions &options, LintReport &report);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_CAPACITY_PASS_HH
