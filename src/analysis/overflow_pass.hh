/**
 * @file
 * Symbolic range / overflow analysis over the schedule IR and the size
 * model (rules COP060-063).
 *
 * The cycle and byte accounting runs in uint64 (Cycles, Bytes). This
 * pass proves that stays safe up to a declared workload envelope — by
 * default p = 4096 tiles and a 10^9-non-zero aggregate — instead of
 * assuming it:
 *
 *  - COP060: the accounting typedefs themselves must be unsigned and
 *    at least 64 bits wide.
 *  - COP061: every format's closed-form cycle folding is re-evaluated
 *    in unsigned __int128 with every TileFeatures knob pinned to its
 *    envelope maximum, exactly mirroring hls/schedule_ir's rules. A
 *    per-tile result above UINT64_MAX is an error (the uint64 fold
 *    would silently wrap); the aggregate over the envelope's tile
 *    count must keep 8x headroom or a warning is raised. A spec whose
 *    folding ever goes super-linear in `entries` fails here loudly.
 *  - COP062: the same treatment for byte accounting — the per-tile
 *    predicted wire bytes are checked against a generous linear bound
 *    (64 bytes per matrix position) and the aggregate against uint64.
 *  - COP063: a textual scan of the accounting hot files for narrowing
 *    casts (static_cast to Index/int/unsigned/uint32_t): a 64-bit
 *    count squeezed through a 32-bit intermediate defeats the range
 *    proof above, so the models must compute natively wide.
 *
 * The source scan needs a checkout; it skips silently when the source
 * root does not exist (a deployed daemon has no source tree).
 */

#ifndef COPERNICUS_ANALYSIS_OVERFLOW_PASS_HH
#define COPERNICUS_ANALYSIS_OVERFLOW_PASS_HH

#include <string>

#include "analysis/schedule_check.hh"

namespace copernicus {

/** The workload envelope the uint64 accounting is proven against. */
struct AccountingEnvelope
{
    /** Largest partition edge length the proof covers. */
    Index maxPartition = 4096;

    /** Largest aggregate non-zero count across one workload. */
    std::uint64_t maxWorkloadNnz = 1'000'000'000;
};

/** COP060 + COP061 + COP062 over every format at @p envelope. */
void checkAccountingRanges(const LintOptions &options,
                           const AccountingEnvelope &envelope,
                           LintReport &report);

/**
 * COP063 over one file's contents (exposed so the seeded-defect tests
 * can inject mutated sources). @p path is used only for reporting.
 * Lines carrying a `lint: widening-ok` marker are exempt.
 */
void scanForNarrowingCasts(const std::string &path,
                           const std::string &contents,
                           LintReport &report);

/**
 * The whole pass: range checks at the default envelope plus the
 * narrowing-cast scan over the accounting hot files under
 * options.sourceRoot (or the compiled-in checkout when empty).
 */
void runOverflowPass(const LintOptions &options, LintReport &report);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_OVERFLOW_PASS_HH
