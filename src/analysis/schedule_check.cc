#include "analysis/schedule_check.hh"

#include <algorithm>
#include <utility>

#include "common/math.hh"
#include "common/rng.hh"
#include "formats/validate.hh"
#include "hls/decompressor.hh"
#include "hls/schedule_ir.hh"
#include "hlsc/decoder_bodies.hh"
#include "hlsc/schedule.hh"
#include "matrix/partitioner.hh"
#include "workloads/generators.hh"

namespace copernicus {

namespace {

/** The hlsc resource model matching the analytic platform knobs. */
HlscConstraints
constraintsFrom(const HlsConfig &config)
{
    HlscConstraints cons;
    cons.bramLoadLatency = config.bramReadLatency;
    cons.hashProbeLatency = config.hashCycles;
    cons.bramPortsPerBank = config.bramPorts;
    return cons;
}

/**
 * Longest dependency chain of Compare ops through @p body — the
 * comparator-tree depth. A balanced tree over p lanes has log2(p)
 * levels; a compare chain longer than that is an unbalanced tree.
 */
Cycles
compareChainDepth(const LoopBody &body)
{
    std::vector<Cycles> chain(body.ops.size(), 0);
    Cycles deepest = 0;
    for (std::size_t i = 0; i < body.ops.size(); ++i) {
        Cycles best = 0;
        for (std::size_t dep : body.ops[i].deps)
            best = std::max(best, chain[dep]);
        chain[i] = best + (body.ops[i].kind == OpKind::Compare ? 1 : 0);
        deepest = std::max(deepest, chain[i]);
    }
    return deepest;
}

} // namespace

LoopBody
decoderBodyFor(FormatKind kind, const FormatParams &params,
               Index partitionSize)
{
    switch (kind) {
      case FormatKind::CSR: return csrInnerLoopBody();
      case FormatKind::JDS: // same entry loop, no per-row offsets
        return csrInnerLoopBody();
      case FormatKind::BCSR: return bcsrBlockBody(params.bcsrBlock);
      case FormatKind::CSC: return cscScanLoopBody();
      case FormatKind::COO: return cooLoopBody();
      case FormatKind::DOK: return dokLoopBody();
      case FormatKind::LIL: return lilMergeBody(partitionSize);
      case FormatKind::ELL:
        return ellRowBody(std::min(params.ellMinWidth, partitionSize));
      case FormatKind::SELL: // the per-slice sweep is the same body
      case FormatKind::SELLCS:
        return ellRowBody(std::min(params.ellMinWidth, partitionSize));
      case FormatKind::ELLCOO:
        return ellRowBody(std::min(params.ellCooWidth, partitionSize));
      case FormatKind::DIA: return diaRowScanBody();
      case FormatKind::Dense:
      case FormatKind::BITMAP:
        break;
    }
    panic("no decoder body for format " +
          std::string(formatName(kind)));
}

void
checkSpecStructure(const ScheduleSpec &spec, const HlsConfig &config,
                   LintReport &report)
{
    const std::string name(formatName(spec.format));
    if (spec.format != FormatKind::Dense && spec.segments.empty())
        report.error("COP001", "spec", name,
                     "decode schedule declares no segments");
    for (const SegmentSpec &segment : spec.segments) {
        if (segment.name == nullptr || segment.name[0] == '\0')
            report.error("COP002", "spec", name,
                         "segment without a name");
        if (segment.bankAccessesPerII == 0) {
            LintDiagnostic d;
            d.id = "COP003";
            d.pass = "spec";
            d.format = name;
            d.segment = segment.name;
            d.message = std::string("segment '") + segment.name +
                        "' declares zero bank accesses per II";
            report.add(std::move(d));
            continue;
        }
        // > bramPorts accesses per II against one dual-port bank can
        // never be scheduled at the declared II.
        if (segment.bankAccessesPerII > config.bramPorts) {
            LintDiagnostic d;
            d.id = "COP004";
            d.pass = "spec";
            d.format = name;
            d.segment = segment.name;
            d.message =
                std::string("BRAM port over-subscription: segment '") +
                segment.name + "' needs " +
                std::to_string(segment.bankAccessesPerII) +
                " accesses per II on one bank, but banks expose " +
                std::to_string(config.bramPorts) + " ports";
            d.fixHint = "split the access across banks or raise the "
                        "segment's initiation interval";
            report.add(std::move(d));
        }
    }
}

void
checkDecoderBody(const ScheduleSpec &spec, const LoopBody &body,
                 Index partitionSize, const HlsConfig &config,
                 LintReport &report)
{
    const std::string name(formatName(spec.format));
    const HlscConstraints cons = constraintsFrom(config);
    const BodySchedule schedule = scheduleBody(body, cons);

    const TileFeatures none; // claims never use tile-dependent knobs
    const Cycles claimedIi = knobCycles(spec.claims.ii, config, none);
    if (schedule.ii != claimedIi) {
        // Classify: if unlimited ports restore the claimed II the
        // violation is resource pressure; otherwise it is a recurrence
        // (loop-carried dependence) no amount of ports can hide.
        HlscConstraints unlimited = cons;
        unlimited.bramPortsPerBank = 1u << 20;
        const Cycles relaxed = scheduleBody(body, unlimited).ii;
        const char *cause =
            relaxed <= claimedIi
                ? "BRAM port over-subscription"
                : "a loop-carried dependence";
        report.error("COP010", "body", name,
                     "II violation from " + std::string(cause) +
                         ": body '" + body.name + "' schedules at II " +
                         std::to_string(schedule.ii) +
                         ", model charges II " +
                         std::to_string(claimedIi));
    }

    if (spec.claims.checkDepth) {
        const Cycles claimedDepth =
            knobCycles(spec.claims.depth, config, none);
        if (schedule.depth != claimedDepth)
            report.error("COP011", "body", name,
                         "pipeline depth mismatch: body '" + body.name +
                             "' schedules at depth " +
                             std::to_string(schedule.depth) +
                             ", model charges " +
                             std::to_string(claimedDepth));
    }

    if (spec.claims.balancedTreeOverLanes) {
        const Cycles levels = compareChainDepth(body);
        const Cycles balanced = log2Ceil(partitionSize);
        if (levels > balanced)
            report.error("COP012", "body", name,
                         "unbalanced comparator tree: compare chain of " +
                             std::to_string(levels) + " levels over " +
                             std::to_string(partitionSize) +
                             " lanes; a balanced tree needs " +
                             std::to_string(balanced));
        else if (levels < balanced)
            report.warning("COP013", "body", name,
                           "comparator tree shallower than log2(p) — "
                           "body covers " +
                               std::to_string(levels) +
                               " levels for p = " +
                               std::to_string(partitionSize));
    }
}

void
checkContracts(const FormatParams &params, const HlsConfig &config,
               const std::vector<Index> &partitionSizes,
               LintReport &report)
{
    if (config.bramPorts == 0)
        report.error("COP020", "contract", "",
                     "bramPorts must be positive");
    if (config.loopDepth == 0)
        report.error("COP020", "contract", "",
                     "loopDepth must be positive (pipelines have at "
                     "least one stage)");
    if (config.bramReadLatency == 0)
        report.error("COP020", "contract", "",
                     "bramReadLatency must be positive (block RAM is "
                     "registered)");
    if (params.bcsrBlock == 0)
        report.error("COP021", "contract", "BCSR",
                     "block size must be positive");
    if (params.sellSlice == 0)
        report.error("COP021", "contract", "SELL",
                     "slice height must be positive");
    if (params.sellSlice != 0 &&
        params.sellCsWindow % params.sellSlice != 0)
        report.error("COP021", "contract", "SELLCS",
                     "sorting window " +
                         std::to_string(params.sellCsWindow) +
                         " is not a multiple of the slice height " +
                         std::to_string(params.sellSlice));

    for (Index p : partitionSizes) {
        if (p == 0) {
            report.error("COP022", "contract", "",
                         "partition size must be positive");
            continue;
        }
        if (params.bcsrBlock != 0 && p % params.bcsrBlock != 0)
            report.error("COP022", "contract", "BCSR",
                         "block size " +
                             std::to_string(params.bcsrBlock) +
                             " does not divide partition size " +
                             std::to_string(p));
        if (params.sellSlice != 0 && p % params.sellSlice != 0)
            report.error("COP022", "contract", "SELL",
                         "slice height " +
                             std::to_string(params.sellSlice) +
                             " does not divide partition size " +
                             std::to_string(p));
        if (params.sellCsWindow != 0 && p % params.sellCsWindow != 0)
            report.error("COP022", "contract", "SELLCS",
                         "sorting window " +
                             std::to_string(params.sellCsWindow) +
                             " does not divide partition size " +
                             std::to_string(p));
        if (params.ellMinWidth > p)
            report.warning("COP023", "contract", "ELL",
                           "minimum width " +
                               std::to_string(params.ellMinWidth) +
                               " exceeds partition size " +
                               std::to_string(p) +
                               " (codec clamps it)");
        if (params.ellCooWidth > p)
            report.warning("COP023", "contract", "ELLCOO",
                           "ELL-part width " +
                               std::to_string(params.ellCooWidth) +
                               " exceeds partition size " +
                               std::to_string(p) +
                               " (codec clamps it)");
        if (!isPow2(p))
            report.warning("COP024", "contract", "",
                           "partition size " + std::to_string(p) +
                               " is not a power of two; the dot "
                               "engine's adder tree rounds up");
    }
}

void
checkTile(const FormatRegistry &registry, FormatKind kind,
          const Tile &tile, const HlsConfig &config, bool grammar,
          bool oracle, LintReport &report)
{
    checkTile(registry, kind, tile, config, grammar, oracle, true,
              report);
}

void
checkTile(const FormatRegistry &registry, FormatKind kind,
          const Tile &tile, const HlsConfig &config, bool grammar,
          bool oracle, bool streams, LintReport &report)
{
    const std::string name(formatName(kind));
    const auto encoded = registry.codec(kind).encode(tile);

    if (streams) {
        // Typed-stream coverage: the typed payloads must account for
        // exactly the bytes the legacy streams() API charges — the
        // transfer model and the second-stage compressor must agree
        // on what crosses the memory interface.
        Bytes legacyTotal = 0;
        for (const Bytes b : encoded->streams())
            legacyTotal += b;
        const Bytes typedTotal =
            typedStreamBytes(encoded->typedStreams());
        if (typedTotal != legacyTotal)
            report.error("COP050", "streams", name,
                         "typed streams serialize " +
                             std::to_string(typedTotal) +
                             " bytes but streams() reports " +
                             std::to_string(legacyTotal) +
                             " on a p=" + std::to_string(tile.size()) +
                             " tile with " +
                             std::to_string(tile.nnz()) + " non-zeros");
    }

    if (grammar) {
        const GrammarReport check = validateEncodedTile(*encoded);
        for (const GrammarViolation &violation : check.violations)
            report.error("COP030", "grammar", name,
                         violation.invariant + ": " + violation.detail);
    }

    if (oracle) {
        const DecompressResult walked =
            simulateDecompression(*encoded, config);
        const ScheduleSpec &spec = registry.schedule(kind);
        const TileFeatures features =
            extractScheduleFeatures(*encoded, walked.decoded);
        const Cycles closed =
            closedFormCycles(spec, config, features);
        if (closed != walked.decompressCycles)
            report.error("COP040", "oracle", name,
                         "closed-form bound " + std::to_string(closed) +
                             " != dynamic walker " +
                             std::to_string(walked.decompressCycles) +
                             " on a p=" + std::to_string(tile.size()) +
                             " tile with " +
                             std::to_string(tile.nnz()) + " non-zeros");
        if (features.producedRows != walked.rowsProduced)
            report.error("COP041", "oracle", name,
                         "IR produced-rows " +
                             std::to_string(features.producedRows) +
                             " != walker rows " +
                             std::to_string(walked.rowsProduced) +
                             " on a p=" + std::to_string(tile.size()) +
                             " tile");
    }
}

void
forEachLintTile(const std::vector<Index> &partitionSizes,
                const std::function<void(Index, const Tile &)> &fn)
{
    // The synthetic workload set: random, band, diagonal and stencil
    // structure exercise every format's encoder shapes (dense rows,
    // empty rows, diagonals, uneven slices).
    for (Index p : partitionSizes) {
        if (p == 0)
            continue;
        const Index n = p * 4;
        Rng rng(2024);
        std::vector<TripletMatrix> workloads;
        workloads.push_back(randomMatrix(n, 0.05, rng));
        workloads.push_back(bandMatrix(n, 3, rng));
        workloads.push_back(diagonalMatrix(n, rng));
        workloads.push_back(stencil2d(p, n / p > 0 ? n / p : 1));
        for (const TripletMatrix &matrix : workloads) {
            const Partitioning parts = partition(matrix, p);
            std::size_t checked = 0;
            for (const Tile &tile : parts.tiles) {
                if (++checked > 12)
                    break; // bounded per workload; shapes repeat
                fn(p, tile);
            }
        }
        // The all-zero tile exercises every guard path.
        const Tile empty(p);
        fn(p, empty);
    }
}

} // namespace copernicus
