/**
 * @file
 * Six-metric summary and min-max normalization for Figure 14.
 *
 * The paper's radar summary normalizes each metric to its best/worst
 * observed value so that 1 is the best format and 0 the worst. Lower is
 * better for sigma, latency and power; higher is better for throughput
 * and bandwidth utilization; for balance ratio the best value is 1
 * (perfect streaming balance), so the score uses the distance from 1.
 */

#ifndef COPERNICUS_ANALYSIS_SUMMARY_HH
#define COPERNICUS_ANALYSIS_SUMMARY_HH

#include <vector>

#include "formats/format_kind.hh"

namespace copernicus {

/** Aggregated raw metrics for one format over one workload class. */
struct FormatMetrics
{
    FormatKind format = FormatKind::Dense;

    /** Mean decompression overhead sigma (lower better). */
    double meanSigma = 0;

    /** Total SpMV seconds (lower better). */
    double totalSeconds = 0;

    /** Mean memory/compute balance ratio (best at 1). */
    double balanceRatio = 0;

    /** Bytes per second (higher better). */
    double throughput = 0;

    /** Useful/total byte ratio (higher better). */
    double bandwidthUtilization = 0;

    /** Dynamic power, watts (lower better). */
    double dynamicPowerW = 0;
};

/** Normalized [0, 1] scores; 1 best, 0 worst (Figure 14). */
struct NormalizedScores
{
    FormatKind format = FormatKind::Dense;
    double sigma = 0;
    double latency = 0;
    double balance = 0;
    double throughput = 0;
    double bandwidthUtilization = 0;
    double power = 0;
};

/**
 * Min-max normalize a set of format metrics.
 *
 * With fewer than two distinct values for a metric, every format gets
 * score 1 for it (no discrimination possible).
 */
std::vector<NormalizedScores>
normalizeSummary(const std::vector<FormatMetrics> &metrics);

/** Balance-ratio goodness: min(r, 1/r), in (0, 1], best at r = 1. */
double balanceCloseness(double ratio);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_SUMMARY_HH
