#include "analysis/energy.hh"

#include "common/status.hh"

namespace copernicus {

EnergyEstimate
runEnergy(const PowerEstimate &power, double seconds)
{
    fatalIf(seconds < 0.0, "runEnergy: negative duration");
    EnergyEstimate energy;
    energy.dynamicJ = power.dynamicW() * seconds;
    energy.staticJ = power.staticW * seconds;
    return energy;
}

double
nanojoulesPerNonZero(const EnergyEstimate &energy,
                     std::size_t nnzProcessed)
{
    fatalIf(nnzProcessed == 0,
            "nanojoulesPerNonZero: no non-zeros processed");
    return energy.totalJ() * 1e9 / static_cast<double>(nnzProcessed);
}

} // namespace copernicus
