/**
 * @file
 * ASCII scatter plots for the bench binaries: Figures 8 and 9 are
 * scatter/line charts in the paper, so the benches render a terminal
 * approximation next to their data tables.
 */

#ifndef COPERNICUS_ANALYSIS_ASCII_PLOT_HH
#define COPERNICUS_ANALYSIS_ASCII_PLOT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace copernicus {

/** One point with the single-character glyph of its series. */
struct PlotPoint
{
    double x = 0;
    double y = 0;
    char glyph = '*';
};

/** Configuration of an AsciiPlot canvas. */
struct PlotConfig
{
    std::size_t width = 64;
    std::size_t height = 20;
    bool logX = false;
    bool logY = false;
    std::string xLabel;
    std::string yLabel;
};

/** Scatter plot over an auto-scaled canvas. */
class AsciiPlot
{
  public:
    explicit AsciiPlot(PlotConfig config = PlotConfig());

    /** Add one point; non-finite or non-positive-on-log are skipped. */
    void add(double x, double y, char glyph);

    /** Add a labelled series glyph to the legend. */
    void legend(char glyph, const std::string &label);

    /** Points accepted so far. */
    std::size_t points() const { return data.size(); }

    /** Render the canvas, axes, ranges and legend. */
    void render(std::ostream &out) const;

  private:
    PlotConfig cfg;
    std::vector<PlotPoint> data;
    std::vector<std::pair<char, std::string>> legends;
};

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_ASCII_PLOT_HH
