/**
 * @file
 * Energy accounting (Section 6.4's closing observation: "The static
 * energy, which depends on time, can be an issue for those slower
 * sparse formats that require less amount of dynamic energy").
 *
 * Energy = power x time, split into the dynamic part (activity) and
 * the static part (leakage for as long as the run lasts). A format
 * with low dynamic power but high latency can lose on total energy —
 * the bench makes that crossover visible.
 */

#ifndef COPERNICUS_ANALYSIS_ENERGY_HH
#define COPERNICUS_ANALYSIS_ENERGY_HH

#include "fpga/power_model.hh"

namespace copernicus {

/** Energy breakdown of one run, joules. */
struct EnergyEstimate
{
    double dynamicJ = 0;
    double staticJ = 0;

    double totalJ() const { return dynamicJ + staticJ; }

    /** Share of total energy that is leakage. */
    double
    staticShare() const
    {
        const double total = totalJ();
        return total > 0 ? staticJ / total : 0.0;
    }
};

/**
 * Energy of a run of @p seconds under @p power.
 */
EnergyEstimate runEnergy(const PowerEstimate &power, double seconds);

/**
 * Energy per useful non-zero processed (nJ/nnz), the efficiency
 * figure architects compare across formats.
 */
double nanojoulesPerNonZero(const EnergyEstimate &energy,
                            std::size_t nnzProcessed);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_ENERGY_HH
