/**
 * @file
 * Container-integrity pass (rules COP110-112).
 *
 * The .cbm container is the store layer's durable artifact: sweeps
 * mmap it repeatedly and the sweep journal trusts its content hash as
 * the matrix identity, so a malformed container corrupts results
 * silently rather than loudly. This pass exercises the container
 * inspector both ways:
 *
 *  - it writes synthetic containers (several shapes and chunk sizes)
 *    and deep-inspects them — any finding on a freshly written file
 *    means the writer and inspector disagree on the invariants;
 *  - it injects one defect per rule class into corrupted copies
 *    (version bytes, a shuffled chunk directory, a flipped payload
 *    byte) and requires the inspector to flag each — an injected
 *    defect the inspector misses is itself an error, the same
 *    soundness bar the model-vs-walker oracle sets for cycle counts.
 *
 * Rules map 1:1 onto CbmIssueKind:
 *
 *  - COP110: header invariant broken (magic, version, sizes, header
 *    hash).
 *  - COP111: chunk directory inconsistent (offsets, extent
 *    monotonicity, counts).
 *  - COP112: content hash does not cover the payload bytes.
 *
 * User-supplied containers (LintOptions::storeContainers) are
 * deep-inspected with the same rules, so CI can lint real artifacts.
 */

#ifndef COPERNICUS_ANALYSIS_STORE_PASS_HH
#define COPERNICUS_ANALYSIS_STORE_PASS_HH

#include <string>

#include "analysis/schedule_check.hh"

namespace copernicus {

/** Deep-inspect one .cbm file, reporting each issue under its rule. */
void checkContainerFile(const std::string &path, LintReport &report);

/** The pass: synthetic round-trips, defect injection, user files. */
void runStorePass(const LintOptions &options, LintReport &report);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_STORE_PASS_HH
