/**
 * @file
 * Roofline placement of the SpMV pipeline.
 *
 * The paper's balance-ratio discussion (Section 6.2) is a roofline
 * argument in disguise: a format whose streaming is memory-bound sits
 * on the bandwidth roof, a compute-bound one under the compute roof.
 * This module makes it explicit — operational intensity = useful
 * flops per transferred byte, the roofs come from the platform
 * parameters (dot-engine width x clock; streamlines x lane width x
 * clock), and each characterization run becomes one point.
 */

#ifndef COPERNICUS_ANALYSIS_ROOFLINE_HH
#define COPERNICUS_ANALYSIS_ROOFLINE_HH

#include "hls/hls_config.hh"

namespace copernicus {

/** One run placed on the roofline. */
struct RooflinePoint
{
    /** Useful flops per transferred byte. */
    double intensity = 0;

    /** Achieved useful Gflop/s. */
    double attainedGflops = 0;

    /** min(compute roof, intensity * bandwidth roof), Gflop/s. */
    double boundGflops = 0;

    /** attained / bound, in (0, 1]. */
    double efficiency = 0;

    /** True when the point sits in the bandwidth-limited region. */
    bool memoryBoundRegion = false;
};

/** Peak useful compute of a width-p dot engine, Gflop/s. */
double peakComputeGflops(Index p, const HlsConfig &config);

/** Peak memory bandwidth of the AXI streamlines, GB/s. */
double peakBandwidthGBs(const HlsConfig &config);

/**
 * Place one run on the roofline.
 *
 * @param usefulFlops Flops that produce the result (2 per non-zero).
 * @param seconds End-to-end run time.
 * @param transferredBytes All bytes crossing the memory interface.
 * @param p Dot-engine width (partition size).
 * @param config Platform parameters.
 */
RooflinePoint placeOnRoofline(double usefulFlops, double seconds,
                              Bytes transferredBytes, Index p,
                              const HlsConfig &config);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_ROOFLINE_HH
