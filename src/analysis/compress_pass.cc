#include "analysis/compress_pass.hh"

#include "compress/second_stage.hh"

namespace copernicus {

void
checkTileCompression(const FormatRegistry &registry, FormatKind kind,
                     const Tile &tile, LintReport &report)
{
    const std::string name(formatName(kind));
    const auto encoded = registry.codec(kind).encode(tile);
    const TileCompression result = compressTile(*encoded);
    const Bytes raw = result.rawBytes();
    const Bytes stored = result.storedBytes();
    if (stored > raw)
        report.error("COP100", "compress", name,
                     "second stage stored " + std::to_string(stored) +
                         " bytes for " + std::to_string(raw) +
                         " raw on a p=" + std::to_string(tile.size()) +
                         " tile with " + std::to_string(tile.nnz()) +
                         " non-zeros; STORE passthrough must cap the "
                         "cost");
    // The per-stream contract behind the total: STORE is free of
    // framing, everything else pays its header but must still win.
    for (const CompressedStream &stream : result.streams)
        if (stream.storedBytes() > stream.rawBytes)
            report.error("COP100", "compress", name,
                         std::string("stream '") + stream.name +
                             "' stored " +
                             std::to_string(stream.storedBytes()) +
                             " bytes for " +
                             std::to_string(stream.rawBytes) +
                             " raw; selection must fall back to STORE");
}

void
runCompressPass(const LintOptions &options, LintReport &report)
{
    const FormatRegistry registry(options.params);
    forEachLintTile(options.partitionSizes,
                    [&](Index, const Tile &tile) {
                        for (FormatKind kind : allFormats())
                            checkTileCompression(registry, kind, tile,
                                                 report);
                    });
}

} // namespace copernicus
