/**
 * @file
 * Shared plumbing for the source-scanning lint rules (COP063 narrowing
 * casts, COP082 bare mutexes).
 *
 * The scans run over the checkout the binary was built from: the build
 * bakes the source root in (COPERNICUS_SOURCE_ROOT), and LintOptions
 * can override it for tests. A missing root is not an error — a
 * deployed daemon has no source tree, so the scans simply skip.
 */

#ifndef COPERNICUS_ANALYSIS_SOURCE_SCAN_HH
#define COPERNICUS_ANALYSIS_SOURCE_SCAN_HH

#include <string>
#include <vector>

namespace copernicus {

struct LintOptions;

/**
 * The source root the scans should use: options.sourceRoot when set,
 * else the compiled-in checkout path, else "".
 */
std::string lintSourceRoot(const LintOptions &options);

/** Read @p path into @p out; false when it cannot be opened. */
bool readTextFile(const std::string &path, std::string &out);

/** Split @p contents into lines (no trailing newlines kept). */
std::vector<std::string> splitLines(const std::string &contents);

/**
 * Every .hh file under @p root's src/ tree, as paths relative to
 * @p root; empty when the directory does not exist.
 */
std::vector<std::string> listHeadersUnderSrc(const std::string &root);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_SOURCE_SCAN_HH
