#include "analysis/pass_manager.hh"

#include <algorithm>
#include <set>
#include <utility>

#include "analysis/capacity_pass.hh"
#include "analysis/compress_pass.hh"
#include "analysis/overflow_pass.hh"
#include "analysis/protocol_pass.hh"
#include "analysis/store_pass.hh"
#include "analysis/thread_safety_pass.hh"

namespace copernicus {

namespace {

void
runSpecPass(const LintOptions &options, LintReport &report)
{
    const FormatRegistry registry(options.params);
    for (FormatKind kind : allFormats())
        checkSpecStructure(registry.schedule(kind), options.hls,
                           report);
}

void
runBodyPass(const LintOptions &options, LintReport &report)
{
    const FormatRegistry registry(options.params);
    for (FormatKind kind : allFormats()) {
        const ScheduleSpec &spec = registry.schedule(kind);
        if (!spec.hasInnerBody)
            continue;
        for (Index p : options.partitionSizes)
            checkDecoderBody(spec,
                             decoderBodyFor(kind, options.params, p), p,
                             options.hls, report);
    }
}

void
runContractPass(const LintOptions &options, LintReport &report)
{
    checkContracts(options.params, options.hls, options.partitionSizes,
                   report);
}

/** Grammar, oracle and streams share checkTile's one encode per tile. */
void
runTilePasses(const LintOptions &options, bool grammar, bool oracle,
              bool streams, LintReport &report)
{
    const FormatRegistry registry(options.params);
    forEachLintTile(options.partitionSizes,
                    [&](Index, const Tile &tile) {
                        for (FormatKind kind : allFormats())
                            checkTile(registry, kind, tile, options.hls,
                                      grammar, oracle, streams, report);
                    });
}

PassManager
buildStandard()
{
    PassManager manager;
    const auto always = [](const LintOptions &) { return true; };

    manager.add({"spec",
                 "schedule specs well-formed, segment port budgets",
                 {"COP001", "COP002", "COP003", "COP004"},
                 false, always, runSpecPass});
    manager.add({"body",
                 "spec claims vs hlsc-scheduled decoder bodies",
                 {"COP010", "COP011", "COP012", "COP013"},
                 false, always, runBodyPass});
    manager.add({"contract",
                 "codec hyperparameter and platform-knob contracts",
                 {"COP020", "COP021", "COP022", "COP023", "COP024"},
                 false, always, runContractPass});
    manager.add({"grammar",
                 "encoded tiles satisfy their format grammars",
                 {"COP030"},
                 true,
                 [](const LintOptions &o) { return o.runGrammar; },
                 [](const LintOptions &o, LintReport &r) {
                     runTilePasses(o, true, false, false, r);
                 }});
    manager.add({"oracle",
                 "closed-form cycle model vs the dynamic walker",
                 {"COP040", "COP041"},
                 true,
                 [](const LintOptions &o) { return o.runOracle; },
                 [](const LintOptions &o, LintReport &r) {
                     runTilePasses(o, false, true, false, r);
                 }});
    manager.add({"streams",
                 "typed streams cover the legacy stream bytes exactly",
                 {"COP050"},
                 true,
                 [](const LintOptions &o) { return o.runStreams; },
                 [](const LintOptions &o, LintReport &r) {
                     runTilePasses(o, false, false, true, r);
                 }});
    manager.add({"overflow",
                 "uint64 accounting proven against the workload "
                 "envelope; narrowing-cast scan",
                 {"COP060", "COP061", "COP062", "COP063"},
                 false,
                 [](const LintOptions &o) { return o.runOverflow; },
                 runOverflowPass});
    manager.add({"capacity",
                 "pipelined-chain port pressure and double-buffered "
                 "BRAM budgets",
                 {"COP070", "COP071", "COP072"},
                 false,
                 [](const LintOptions &o) { return o.runCapacity; },
                 runCapacityPass});
    manager.add({"thread-safety",
                 "lock-order registry sanity and bare-mutex header "
                 "scan",
                 {"COP080", "COP081", "COP082"},
                 false,
                 [](const LintOptions &o) { return o.runThreadSafety; },
                 runThreadSafetyPass});
    manager.add({"protocol",
                 "serve surface (endpoints, wide events, metrics) vs "
                 "its documentation",
                 {"COP090", "COP091", "COP092", "COP093"},
                 false,
                 [](const LintOptions &o) {
                     return o.protocol != nullptr;
                 },
                 runProtocolPass});
    manager.add({"compress",
                 "second stage never stores more than raw "
                 "(storedBytes <= rawBytes)",
                 {"COP100"},
                 true,
                 [](const LintOptions &o) { return o.runCompress; },
                 runCompressPass});
    manager.add({"store",
                 ".cbm container invariants (header, chunk "
                 "directory, content hash) with defect injection",
                 {"COP110", "COP111", "COP112"},
                 false,
                 [](const LintOptions &o) { return o.runStore; },
                 runStorePass});
    return manager;
}

} // namespace

const PassManager &
PassManager::standard()
{
    static const PassManager manager = buildStandard();
    return manager;
}

const PassInfo *
PassManager::find(const std::string &name) const
{
    for (const PassInfo &pass : registered)
        if (pass.name == name)
            return &pass;
    return nullptr;
}

LintReport
PassManager::run(const LintOptions &options) const
{
    LintReport report;
    for (const PassInfo &pass : registered)
        if (pass.enabledByDefault(options))
            pass.run(options, report);
    return report;
}

LintReport
PassManager::run(const LintOptions &options,
                 const std::vector<std::string> &selection) const
{
    LintReport report;
    const std::set<std::string> wanted(selection.begin(),
                                       selection.end());
    std::set<std::string> known;
    for (const PassInfo &pass : registered) {
        known.insert(pass.name);
        if (wanted.count(pass.name) != 0)
            pass.run(options, report);
    }
    for (const std::string &name : wanted)
        if (known.count(name) == 0)
            report.error("driver", "",
                         "unknown pass '" + name +
                             "' (see --list-passes)");
    return report;
}

LintReport
runLint(const LintOptions &options)
{
    return PassManager::standard().run(options);
}

} // namespace copernicus
