#include "analysis/summary.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

namespace copernicus {

double
balanceCloseness(double ratio)
{
    if (ratio <= 0)
        return 0;
    return std::min(ratio, 1.0 / ratio);
}

namespace {

/**
 * Assign (v - min)/(max - min) across all metrics selected by @p get,
 * inverted when lower raw values are better.
 */
void
normalizeOne(const std::vector<FormatMetrics> &metrics,
             std::vector<NormalizedScores> &scores,
             const std::function<double(const FormatMetrics &)> &get,
             const std::function<double &(NormalizedScores &)> &put,
             bool lower_is_better)
{
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto &m : metrics) {
        lo = std::min(lo, get(m));
        hi = std::max(hi, get(m));
    }
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        double score = 1.0;
        if (hi > lo) {
            score = (get(metrics[i]) - lo) / (hi - lo);
            if (lower_is_better)
                score = 1.0 - score;
        }
        put(scores[i]) = score;
    }
}

} // namespace

std::vector<NormalizedScores>
normalizeSummary(const std::vector<FormatMetrics> &metrics)
{
    std::vector<NormalizedScores> scores(metrics.size());
    for (std::size_t i = 0; i < metrics.size(); ++i)
        scores[i].format = metrics[i].format;

    normalizeOne(metrics, scores,
                 [](const FormatMetrics &m) { return m.meanSigma; },
                 [](NormalizedScores &s) -> double & { return s.sigma; },
                 true);
    normalizeOne(metrics, scores,
                 [](const FormatMetrics &m) { return m.totalSeconds; },
                 [](NormalizedScores &s) -> double & { return s.latency; },
                 true);
    normalizeOne(
        metrics, scores,
        [](const FormatMetrics &m) {
            return balanceCloseness(m.balanceRatio);
        },
        [](NormalizedScores &s) -> double & { return s.balance; }, false);
    normalizeOne(
        metrics, scores,
        [](const FormatMetrics &m) { return m.throughput; },
        [](NormalizedScores &s) -> double & { return s.throughput; },
        false);
    normalizeOne(metrics, scores,
                 [](const FormatMetrics &m) {
                     return m.bandwidthUtilization;
                 },
                 [](NormalizedScores &s) -> double & {
                     return s.bandwidthUtilization;
                 },
                 false);
    normalizeOne(metrics, scores,
                 [](const FormatMetrics &m) { return m.dynamicPowerW; },
                 [](NormalizedScores &s) -> double & { return s.power; },
                 true);
    return scores;
}

} // namespace copernicus
