#include "analysis/capacity_pass.hh"

#include <algorithm>
#include <utility>

#include "fpga/buffer_model.hh"

namespace copernicus {

namespace {

/** Device BRAM capacity in bits (18k-bit blocks). */
Bytes
deviceBramBits(const DeviceCapacity &device)
{
    return static_cast<Bytes>(device.bram18k * 18.0 * 1024.0);
}

} // namespace

void
checkPortPressure(const ScheduleSpec &spec, const HlsConfig &config,
                  LintReport &report)
{
    const std::string name(formatName(spec.format));
    const auto &segments = spec.segments;
    std::size_t i = 0;
    while (i < segments.size()) {
        if (segments[i].kind != SegmentKind::Pipelined) {
            ++i;
            continue;
        }
        // One maximal run of consecutive Pipelined segments: they
        // overlap in steady state, so their port demands add up.
        std::size_t end = i + 1;
        while (end < segments.size() &&
               segments[end].kind == SegmentKind::Pipelined)
            ++end;
        if (end - i >= 2) {
            Index pressure = 0;
            std::string chain;
            for (std::size_t s = i; s < end; ++s) {
                pressure += segments[s].bankAccessesPerII;
                if (!chain.empty())
                    chain += " -> ";
                chain += segments[s].name;
            }
            if (pressure > config.bramPorts) {
                LintDiagnostic d;
                d.id = "COP070";
                d.pass = "capacity";
                d.format = name;
                d.segment = chain;
                d.message =
                    "pipelined chain over-subscribes one bank: '" +
                    chain + "' needs " + std::to_string(pressure) +
                    " accesses per II concurrently, but banks expose " +
                    std::to_string(config.bramPorts) + " ports";
                d.fixHint = "split the chain's arrays across banks or "
                            "serialize the segments";
                report.add(std::move(d));
            }
        }
        i = end;
    }
}

void
checkBufferCapacity(FormatKind kind, Index p,
                    const FormatParams &params,
                    const DeviceCapacity &device, LintReport &report)
{
    const std::string name(formatName(kind));
    const std::vector<BufferRequirement> buffers =
        bufferRequirements(kind, p, params);
    Bytes bits = 0;
    const BufferRequirement *largest = nullptr;
    for (const BufferRequirement &buffer : buffers) {
        bits += buffer.bits();
        if (largest == nullptr || buffer.bits() > largest->bits())
            largest = &buffer;
    }
    // Tile k decodes while tile k+1 loads: the streaming pipeline
    // keeps two worst-case working sets resident.
    const Bytes doubleBuffered = 2 * bits;
    const Bytes capacity = deviceBramBits(device);
    if (capacity == 0)
        return;
    if (doubleBuffered > capacity) {
        LintDiagnostic d;
        d.id = "COP071";
        d.pass = "capacity";
        d.format = name;
        d.segment = largest != nullptr ? largest->array : "";
        d.message =
            "double-buffered working set exceeds device BRAM at p=" +
            std::to_string(p) + ": needs " +
            std::to_string(doubleBuffered) + " bits of " +
            std::to_string(capacity) +
            (largest != nullptr
                 ? " (largest buffer: '" + largest->array + "', " +
                       std::to_string(largest->bits()) + " bits)"
                 : "");
        d.fixHint = "shrink the partition size or drop the format "
                    "from the sweep at this p";
        report.add(std::move(d));
    } else if (doubleBuffered * 10 > capacity * 8) {
        LintDiagnostic d;
        d.severity = LintSeverity::Warning;
        d.id = "COP072";
        d.pass = "capacity";
        d.format = name;
        d.segment = largest != nullptr ? largest->array : "";
        d.message =
            "double-buffered working set above 80% of device BRAM "
            "at p=" +
            std::to_string(p) + ": " + std::to_string(doubleBuffered) +
            " of " + std::to_string(capacity) + " bits";
        report.add(std::move(d));
    }
}

void
runCapacityPass(const LintOptions &options, LintReport &report)
{
    const FormatRegistry registry(options.params);
    const DeviceCapacity device;
    for (FormatKind kind : allFormats()) {
        checkPortPressure(registry.schedule(kind), options.hls, report);
        for (Index p : options.partitionSizes) {
            if (p == 0)
                continue;
            checkBufferCapacity(kind, p, options.params, device,
                                report);
        }
    }
}

} // namespace copernicus
