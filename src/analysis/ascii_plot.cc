#include "analysis/ascii_plot.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/status.hh"

namespace copernicus {

AsciiPlot::AsciiPlot(PlotConfig config) : cfg(std::move(config))
{
    fatalIf(cfg.width < 8 || cfg.height < 4,
            "AsciiPlot canvas too small");
}

void
AsciiPlot::add(double x, double y, char glyph)
{
    if (!std::isfinite(x) || !std::isfinite(y))
        return;
    if ((cfg.logX && x <= 0) || (cfg.logY && y <= 0))
        return;
    data.push_back({x, y, glyph});
}

void
AsciiPlot::legend(char glyph, const std::string &label)
{
    legends.emplace_back(glyph, label);
}

void
AsciiPlot::render(std::ostream &out) const
{
    if (data.empty()) {
        out << "(no points)\n";
        return;
    }

    auto tx = [&](double v) { return cfg.logX ? std::log10(v) : v; };
    auto ty = [&](double v) { return cfg.logY ? std::log10(v) : v; };

    double x_lo = std::numeric_limits<double>::infinity();
    double x_hi = -x_lo, y_lo = x_lo, y_hi = -x_lo;
    for (const auto &point : data) {
        x_lo = std::min(x_lo, tx(point.x));
        x_hi = std::max(x_hi, tx(point.x));
        y_lo = std::min(y_lo, ty(point.y));
        y_hi = std::max(y_hi, ty(point.y));
    }
    if (x_hi == x_lo)
        x_hi = x_lo + 1;
    if (y_hi == y_lo)
        y_hi = y_lo + 1;

    std::vector<std::string> canvas(cfg.height,
                                    std::string(cfg.width, ' '));
    for (const auto &point : data) {
        const auto col = static_cast<std::size_t>(
            (tx(point.x) - x_lo) / (x_hi - x_lo) *
            static_cast<double>(cfg.width - 1));
        const auto row = static_cast<std::size_t>(
            (ty(point.y) - y_lo) / (y_hi - y_lo) *
            static_cast<double>(cfg.height - 1));
        // Row 0 prints at the top; flip so y grows upward.
        canvas[cfg.height - 1 - row][col] = point.glyph;
    }

    if (!cfg.yLabel.empty())
        out << cfg.yLabel << '\n';
    for (const auto &line : canvas)
        out << '|' << line << '\n';
    out << '+' << std::string(cfg.width, '-') << "> "
        << cfg.xLabel << '\n';
    double raw_x_lo = data.front().x, raw_x_hi = data.front().x;
    double raw_y_lo = data.front().y, raw_y_hi = data.front().y;
    for (const auto &point : data) {
        raw_x_lo = std::min(raw_x_lo, point.x);
        raw_x_hi = std::max(raw_x_hi, point.x);
        raw_y_lo = std::min(raw_y_lo, point.y);
        raw_y_hi = std::max(raw_y_hi, point.y);
    }
    out << "x: [" << (cfg.logX ? "log " : "") << raw_x_lo << ", "
        << raw_x_hi << "]  y: [" << (cfg.logY ? "log " : "")
        << raw_y_lo << ", " << raw_y_hi << "]\n";
    if (!legends.empty()) {
        out << "legend:";
        for (const auto &[glyph, label] : legends)
            out << "  " << glyph << "=" << label;
        out << '\n';
    }
}

} // namespace copernicus
