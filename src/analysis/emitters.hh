/**
 * @file
 * Machine-readable lint report emitters.
 *
 * Two formats, both assembled with the common/json helpers:
 *
 *  - lintReportToJson(): a compact custom document ({"diagnostics":
 *    [...], "errors": N, "warnings": N}) for scripting against
 *    `copernicus_lint --json`.
 *  - lintReportToSarif(): SARIF 2.1.0, the interchange format code
 *    hosts ingest (GitHub code scanning among them). One run, one
 *    driver ("copernicus_lint"), every emitted rule id present in the
 *    driver's rule table with its lintRuleDescription(), results
 *    carrying physical locations for source-anchored findings and
 *    logical locations (format/segment) for model-level ones.
 *
 * validateSarifDocument() is a structural checker used by tests and
 * the CLI: it proves an emitted document parses and carries the
 * required SARIF skeleton (version string, runs array, driver name,
 * per-result ruleId/message), without pretending to be a full schema
 * validator.
 */

#ifndef COPERNICUS_ANALYSIS_EMITTERS_HH
#define COPERNICUS_ANALYSIS_EMITTERS_HH

#include <string>

#include "analysis/diagnostics.hh"

namespace copernicus {

/** The report as one compact JSON document. */
std::string lintReportToJson(const LintReport &report);

/** The report as a SARIF 2.1.0 document. */
std::string lintReportToSarif(const LintReport &report);

/**
 * Structurally validate @p text as a SARIF 2.1.0 log: well-formed
 * JSON, version "2.1.0", a non-empty runs array whose first run has a
 * tool.driver.name, and every result carrying ruleId + message.text
 * with its ruleId present in the driver's rules table. On failure
 * returns false and, when @p why is non-null, sets it to the first
 * violated requirement.
 */
bool validateSarifDocument(const std::string &text,
                           std::string *why = nullptr);

} // namespace copernicus

#endif // COPERNICUS_ANALYSIS_EMITTERS_HH
