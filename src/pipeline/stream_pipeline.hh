/**
 * @file
 * The three-stage streaming pipeline of Figure 2: memory-read, compute
 * (decompress + dot), memory-write, evaluated over the non-zero
 * partitions of a matrix.
 *
 * Stages are pipelined across partitions, so in steady state each
 * partition costs the maximum of its three stage latencies and the whole
 * run adds one fill and one drain. The simulator reports per-partition
 * breakdowns and the aggregate metrics Section 4.2 defines: memory and
 * compute latency, balance ratio, throughput and memory-bandwidth
 * utilization.
 */

#ifndef COPERNICUS_PIPELINE_STREAM_PIPELINE_HH
#define COPERNICUS_PIPELINE_STREAM_PIPELINE_HH

#include <vector>

#include "formats/registry.hh"
#include "hls/hls_config.hh"
#include "matrix/partitioner.hh"
#include "trace/trace_sink.hh"

namespace copernicus {

/** Latency breakdown for one non-zero partition. */
struct PartitionTiming
{
    /** Memory-read stage: transfer of the compressed partition. */
    Cycles memoryCycles = 0;

    /** Compute stage: decompression plus dot products. */
    Cycles computeCycles = 0;

    /** Memory-write stage: streaming the partial result back. */
    Cycles writeCycles = 0;

    /** Decompression share of the compute stage. */
    Cycles decompressCycles = 0;

    /** Rows handed to the dot engine. */
    Index rowsProduced = 0;

    /** sigma (Eq. 1) of this partition. */
    double sigma = 0;

    /** Bytes of this partition crossing the read interface. */
    Bytes totalBytes = 0;

    /** Value-payload bytes of this partition. */
    Bytes usefulBytes = 0;

    /** Stage bound of the partition in steady state. */
    Cycles
    bottleneckCycles() const
    {
        return std::max(memoryCycles,
                        std::max(computeCycles, writeCycles));
    }
};

/** Aggregate result of streaming one matrix through the platform. */
struct PipelineResult
{
    /** Format the partitions were encoded in. */
    FormatKind format = FormatKind::Dense;

    /** Partition size p. */
    Index partitionSize = 0;

    /** Per-partition breakdowns, in streaming order. */
    std::vector<PartitionTiming> partitions;

    /** End-to-end cycles including pipeline fill and drain. */
    Cycles totalCycles = 0;

    /** Sum of memory-read cycles. */
    Cycles totalMemoryCycles = 0;

    /** Sum of compute cycles. */
    Cycles totalComputeCycles = 0;

    /** Bytes transferred in (data + metadata). */
    Bytes totalBytes = 0;

    /** Value-payload bytes transferred in. */
    Bytes totalUsefulBytes = 0;

    /** Mean of per-partition memory/compute ratios (Section 4.2). */
    double balanceRatio = 0;

    /** Mean per-partition sigma. */
    double meanSigma = 0;

    /** End-to-end seconds at the configured clock. */
    double seconds = 0;

    /** Bytes processed per second (Section 4.2's throughput). */
    double throughputBytesPerSec = 0;

    /** usefulBytes / totalBytes. */
    double bandwidthUtilization = 0;
};

/**
 * Stream every non-zero partition of @p parts through the platform with
 * tiles encoded in @p kind.
 *
 * @param parts Partitioning of the operand matrix.
 * @param kind Compression format under study.
 * @param config Platform parameters.
 * @param registry Codec source (paper defaults).
 * @param sink Timeline sink; null falls back to activeTraceSink()
 *        (null again = tracing off), and `&noTraceSink()` forces
 *        tracing off — the parallel sweep paths pass it so workers
 *        never touch the single-threaded writer. The analytic model
 *        has no exact
 *        event times, so partitions are laid out on a steady-state
 *        clock — each slot advances by its bottleneck stage — with
 *        sigma and bw_util counters per partition. Never affects the
 *        returned metrics.
 * @return Aggregate and per-partition metrics.
 */
PipelineResult runPipeline(const Partitioning &parts, FormatKind kind,
                           const HlsConfig &config = HlsConfig(),
                           const FormatRegistry &registry =
                               defaultRegistry(),
                           TraceSink *sink = nullptr);

/**
 * Stream with a per-partition format choice (one entry per non-zero
 * tile, in streaming order). The result's `format` field reports the
 * most frequent choice; per-partition formats drive everything else.
 *
 * This models an accelerator whose decompress stage instantiates
 * several decoders and selects per partition — the natural extension
 * of the paper's study once the per-format trade-offs are known.
 */
PipelineResult runPipelineMixed(const Partitioning &parts,
                                const std::vector<FormatKind> &perTile,
                                const HlsConfig &config = HlsConfig(),
                                const FormatRegistry &registry =
                                    defaultRegistry(),
                                TraceSink *sink = nullptr);

} // namespace copernicus

#endif // COPERNICUS_PIPELINE_STREAM_PIPELINE_HH
