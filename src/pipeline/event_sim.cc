#include "pipeline/event_sim.hh"

#include <algorithm>

#include "compress/second_stage.hh"
#include "hls/axi.hh"
#include "hls/decompressor.hh"

namespace copernicus {

EventSimResult
runEventSim(const Partitioning &parts, FormatKind kind,
            const HlsConfig &config, const FormatRegistry &registry,
            Index inputBuffers, TraceSink *sink)
{
    fatalIf(inputBuffers == 0,
            "runEventSim needs at least one input buffer");
    EventSimResult result;
    result.format = kind;
    result.partitionSize = parts.partitionSize;

    TraceSink *trace = sink != nullptr ? sink : activeTraceSink();
    if (trace != nullptr) {
        trace->beginScope("event_sim." +
                          std::string(formatName(kind)) + ".p" +
                          std::to_string(parts.partitionSize));
    }

    const FormatCodec &codec = registry.codec(kind);
    const Bytes out_bytes = Bytes(parts.partitionSize) * valueBytes;

    Cycles prev_read_end = 0;
    Cycles prev_compute_end = 0;
    Cycles prev_write_end = 0;

    for (const Tile &tile : parts.tiles) {
        const auto encoded = codec.encode(tile);
        const auto decomp = simulateDecompression(*encoded, config);

        std::vector<Bytes> streams = encoded->streams();
        Bytes stored_bytes = encoded->totalBytes();
        if (config.secondStageCompression) {
            const TileCompression comp = compressTile(*encoded);
            streams = comp.storedStreamBytes();
            stored_bytes = comp.storedBytes();
        }
        const Cycles read_cost = transferCycles(streams, config);
        const Cycles compute_cost = computeCycles(decomp, config);
        const Cycles write_cost = writebackCycles(out_bytes, config);

        TileSchedule slot;
        // Buffering: reading tile i reuses the slot tile
        // i - inputBuffers computed from.
        Cycles buffer_free = 0;
        if (result.schedule.size() >= inputBuffers) {
            buffer_free = result
                              .schedule[result.schedule.size() -
                                        inputBuffers]
                              .computeEnd;
        }
        slot.readStart = std::max(prev_read_end, buffer_free);
        slot.readEnd = slot.readStart + read_cost;
        slot.computeStart = std::max(slot.readEnd, prev_compute_end);
        slot.computeEnd = slot.computeStart + compute_cost;
        slot.writeStart = std::max(slot.computeEnd, prev_write_end);
        slot.writeEnd = slot.writeStart + write_cost;

        result.readBusy += read_cost;
        result.computeBusy += compute_cost;
        result.writeBusy += write_cost;
        result.readStall += slot.readStart - prev_read_end;
        if (!result.schedule.empty())
            result.computeStall += slot.computeStart - prev_compute_end;

        prev_read_end = slot.readEnd;
        prev_compute_end = slot.computeEnd;
        prev_write_end = slot.writeEnd;

        if (trace != nullptr) {
            const std::string name =
                "p" + std::to_string(result.schedule.size());
            trace->durationEvent("read", name, slot.readStart,
                                 slot.readEnd);
            trace->durationEvent("compute", name, slot.computeStart,
                                 slot.computeEnd);
            trace->durationEvent("write", name, slot.writeStart,
                                 slot.writeEnd);
            trace->counterEvent(
                "bw_util", slot.readEnd,
                stored_bytes == 0
                    ? 0.0
                    : static_cast<double>(encoded->usefulBytes()) /
                          static_cast<double>(stored_bytes));
            trace->counterEvent(
                "sigma", slot.computeEnd,
                sigmaOverhead(decomp, parts.partitionSize, config));
        }

        result.schedule.push_back(slot);
    }

    result.totalCycles = prev_write_end;
    return result;
}

} // namespace copernicus
