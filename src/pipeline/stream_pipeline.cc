#include "pipeline/stream_pipeline.hh"

#include <algorithm>
#include <map>

#include "common/status.hh"
#include "compress/second_stage.hh"
#include "formats/encode_cache.hh"
#include "formats/validate.hh"
#include "hls/axi.hh"
#include "hls/decompressor.hh"

namespace copernicus {

namespace {

/** Shared core: stream tiles with a per-tile format lookup. */
PipelineResult
runImpl(const Partitioning &parts,
        const std::vector<FormatKind> &perTile, const HlsConfig &config,
        const FormatRegistry &registry, TraceSink *trace)
{
    PipelineResult result;
    result.partitionSize = parts.partitionSize;

    const Index p = parts.partitionSize;
    // The partial output vector streamed back per partition.
    const Bytes out_bytes = Bytes(p) * valueBytes;

    double balance_sum = 0;
    double sigma_sum = 0;
    Cycles fill_first = 0;
    Cycles drain_last = 0;
    // Steady-state clock for the emitted timeline: the first read is
    // exposed, then each partition's slot advances by its bottleneck.
    Cycles trace_clock = 0;
    for (std::size_t i = 0; i < parts.tiles.size(); ++i) {
        const Tile &tile = parts.tiles[i];
        const auto encoded = encodeCached(registry, perTile[i], tile);
        if (grammarValidationEnabled()) {
            const GrammarReport report = validateEncodedTile(*encoded);
            panicIf(!report.ok(),
                    "pipeline: encoded tile violates its format "
                    "grammar:\n" +
                        report.toString());
        }
        const auto decomp = simulateDecompression(*encoded, config);
        panicIf(!(decomp.decoded == tile),
                "pipeline: decompressor model corrupted a tile");

        PartitionTiming timing;
        auto streams = encoded->streams();
        timing.totalBytes = encoded->totalBytes();
        if (config.secondStageCompression) {
            // The DDR interface sees post-compression stream images;
            // useful bytes are untouched, so utilization can only rise.
            const TileCompression comp = compressTile(*encoded);
            streams = comp.storedStreamBytes();
            timing.totalBytes = comp.storedBytes();
        }
        if (config.streamVectorOperand)
            streams.push_back(Bytes(p) * valueBytes);
        timing.memoryCycles = transferCycles(streams, config);
        timing.decompressCycles = decomp.decompressCycles;
        timing.rowsProduced = decomp.rowsProduced;
        timing.computeCycles = computeCycles(decomp, config);
        timing.writeCycles = writebackCycles(out_bytes, config);
        timing.sigma = sigmaOverhead(decomp, p, config);
        timing.usefulBytes = encoded->usefulBytes();

        result.totalMemoryCycles += timing.memoryCycles;
        result.totalComputeCycles += timing.computeCycles;
        result.totalBytes += timing.totalBytes;
        result.totalUsefulBytes += timing.usefulBytes;
        result.totalCycles += timing.bottleneckCycles();
        balance_sum += timing.computeCycles == 0
                           ? 0.0
                           : static_cast<double>(timing.memoryCycles) /
                                 static_cast<double>(timing.computeCycles);
        sigma_sum += timing.sigma;

        if (result.partitions.empty())
            fill_first = timing.memoryCycles;
        drain_last = timing.writeCycles;

        if (trace != nullptr) {
            if (result.partitions.empty())
                trace_clock = fill_first;
            const std::string name =
                "p" + std::to_string(result.partitions.size());
            trace->durationEvent(
                "read", name, trace_clock,
                trace_clock + timing.memoryCycles);
            trace->durationEvent(
                "compute", name, trace_clock,
                trace_clock + timing.computeCycles);
            trace->durationEvent(
                "write", name, trace_clock,
                trace_clock + timing.writeCycles);
            const Cycles slot_end =
                trace_clock + timing.bottleneckCycles();
            trace->counterEvent("sigma", slot_end, timing.sigma);
            trace->counterEvent(
                "bw_util", slot_end,
                timing.totalBytes == 0
                    ? 0.0
                    : static_cast<double>(timing.usefulBytes) /
                          static_cast<double>(timing.totalBytes));
            trace_clock = slot_end;
        }

        result.partitions.push_back(timing);
    }

    if (!result.partitions.empty()) {
        // Steady state costs max(stage) per partition; the first
        // partition's read and the last one's write are exposed.
        result.totalCycles += fill_first + drain_last;
        const auto count = static_cast<double>(result.partitions.size());
        result.balanceRatio = balance_sum / count;
        result.meanSigma = sigma_sum / count;
    }

    result.seconds = static_cast<double>(result.totalCycles) *
                     config.secondsPerCycle();
    result.throughputBytesPerSec =
        result.seconds == 0.0
            ? 0.0
            : static_cast<double>(result.totalBytes) / result.seconds;
    result.bandwidthUtilization =
        result.totalBytes == 0
            ? 0.0
            : static_cast<double>(result.totalUsefulBytes) /
                  static_cast<double>(result.totalBytes);
    return result;
}

} // namespace

PipelineResult
runPipeline(const Partitioning &parts, FormatKind kind,
            const HlsConfig &config, const FormatRegistry &registry,
            TraceSink *sink)
{
    TraceSink *trace = sink != nullptr ? sink : activeTraceSink();
    if (trace == &noTraceSink())
        trace = nullptr;
    if (trace != nullptr) {
        trace->beginScope("pipeline." +
                          std::string(formatName(kind)) + ".p" +
                          std::to_string(parts.partitionSize));
    }
    const std::vector<FormatKind> per_tile(parts.tiles.size(), kind);
    PipelineResult result = runImpl(parts, per_tile, config, registry,
                                    trace);
    result.format = kind;
    return result;
}

PipelineResult
runPipelineMixed(const Partitioning &parts,
                 const std::vector<FormatKind> &perTile,
                 const HlsConfig &config, const FormatRegistry &registry,
                 TraceSink *sink)
{
    fatalIf(perTile.size() != parts.tiles.size(),
            "runPipelineMixed: one format per non-zero tile required");
    TraceSink *trace = sink != nullptr ? sink : activeTraceSink();
    if (trace == &noTraceSink())
        trace = nullptr;
    if (trace != nullptr) {
        trace->beginScope("pipeline.mixed.p" +
                          std::to_string(parts.partitionSize));
    }
    PipelineResult result = runImpl(parts, perTile, config, registry,
                                    trace);

    // Report the majority format for summary displays.
    std::map<FormatKind, std::size_t> counts;
    for (FormatKind kind : perTile)
        ++counts[kind];
    std::size_t best = 0;
    for (const auto &[kind, count] : counts) {
        if (count > best) {
            best = count;
            result.format = kind;
        }
    }
    return result;
}

} // namespace copernicus
