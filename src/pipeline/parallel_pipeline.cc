#include "pipeline/parallel_pipeline.hh"

#include <algorithm>
#include <numeric>

#include "common/math.hh"
#include "common/status.hh"
#include "compress/second_stage.hh"
#include "hls/axi.hh"
#include "hls/decompressor.hh"

namespace copernicus {

namespace {

/** Timing of one tile, reused for scheduling and per-PE accounting. */
struct TileCost
{
    Cycles memory = 0;
    Cycles compute = 0;
    Cycles write = 0;
    Bytes bytes = 0;

    Cycles
    bottleneck() const
    {
        return std::max(memory, std::max(compute, write));
    }
};

/**
 * Body of runParallel with the sink fully resolved; the recursive
 * single-PE baseline call passes null so speedup bookkeeping never
 * emits a second timeline.
 */
ParallelResult
runParallelImpl(const Partitioning &parts, FormatKind kind,
                Index peCount, ScheduleKind schedule,
                const HlsConfig &config, const FormatRegistry &registry,
                TraceSink *trace)
{
    fatalIf(peCount == 0, "runParallel needs at least one PE");

    if (trace != nullptr) {
        trace->beginScope("parallel." +
                          std::string(formatName(kind)) + ".p" +
                          std::to_string(parts.partitionSize) + ".pe" +
                          std::to_string(peCount));
    }

    ParallelResult result;
    result.format = kind;
    result.partitionSize = parts.partitionSize;
    result.peCount = peCount;
    result.schedule = schedule;
    result.peCycles.assign(peCount, 0);

    const FormatCodec &codec = registry.codec(kind);
    const Bytes out_bytes = Bytes(parts.partitionSize) * valueBytes;

    std::vector<TileCost> costs;
    costs.reserve(parts.tiles.size());
    Bytes total_bytes = 0;
    for (const Tile &tile : parts.tiles) {
        const auto encoded = codec.encode(tile);
        const auto decomp = simulateDecompression(*encoded, config);
        TileCost cost;
        std::vector<Bytes> streams = encoded->streams();
        Bytes stored_bytes = encoded->totalBytes();
        if (config.secondStageCompression) {
            const TileCompression comp = compressTile(*encoded);
            streams = comp.storedStreamBytes();
            stored_bytes = comp.storedBytes();
        }
        cost.memory = transferCycles(streams, config);
        cost.compute = computeCycles(decomp, config);
        cost.write = writebackCycles(out_bytes, config);
        cost.bytes = stored_bytes + out_bytes;
        total_bytes += cost.bytes;
        costs.push_back(cost);
    }

    // Assign tiles to PEs.
    std::vector<Cycles> pe_steady(peCount, 0);
    std::vector<Cycles> pe_first_mem(peCount, 0);
    std::vector<Cycles> pe_last_write(peCount, 0);
    std::vector<bool> pe_used(peCount, false);

    auto assign = [&](std::size_t tile_index, Index pe) {
        const TileCost &cost = costs[tile_index];
        if (!pe_used[pe]) {
            pe_used[pe] = true;
            pe_first_mem[pe] = cost.memory;
        }
        if (trace != nullptr) {
            // One lane per PE: each assigned tile occupies its
            // steady-state slot on that lane.
            trace->durationEvent(
                "pe" + std::to_string(pe),
                "p" + std::to_string(tile_index), pe_steady[pe],
                pe_steady[pe] + cost.bottleneck());
        }
        pe_steady[pe] += cost.bottleneck();
        pe_last_write[pe] = cost.write;
    };

    if (schedule == ScheduleKind::RoundRobin) {
        for (std::size_t i = 0; i < costs.size(); ++i)
            assign(i, static_cast<Index>(i % peCount));
    } else {
        // Longest-processing-time: sort tiles by bottleneck descending
        // and always feed the least-loaded PE.
        std::vector<std::size_t> order(costs.size());
        std::iota(order.begin(), order.end(), std::size_t(0));
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return costs[a].bottleneck() >
                             costs[b].bottleneck();
                  });
        for (std::size_t i : order) {
            const Index pe = static_cast<Index>(
                std::min_element(pe_steady.begin(), pe_steady.end()) -
                pe_steady.begin());
            assign(i, pe);
        }
    }

    for (Index pe = 0; pe < peCount; ++pe) {
        result.peCycles[pe] = pe_used[pe]
                                  ? pe_steady[pe] + pe_first_mem[pe] +
                                        pe_last_write[pe]
                                  : 0;
        result.computeBoundCycles =
            std::max(result.computeBoundCycles, result.peCycles[pe]);
    }

    // Shared DDR3 channel: every byte (in and out) crosses it once.
    const Bytes channel_bytes_per_cycle =
        config.laneBytesPerCycle() * config.streamlines;
    result.memoryBoundCycles =
        ceilDiv(total_bytes, channel_bytes_per_cycle) +
        (costs.empty() ? 0 : config.burstSetupCycles);

    result.totalCycles = std::max(result.computeBoundCycles,
                                  result.memoryBoundCycles);
    result.memoryBound =
        result.memoryBoundCycles > result.computeBoundCycles;
    result.seconds = static_cast<double>(result.totalCycles) *
                     config.secondsPerCycle();

    if (peCount == 1 || costs.empty()) {
        result.speedup = 1.0;
    } else {
        const ParallelResult single = runParallelImpl(
            parts, kind, 1, schedule, config, registry, nullptr);
        result.speedup = static_cast<double>(single.totalCycles) /
                         static_cast<double>(result.totalCycles);
    }
    return result;
}

} // namespace

ParallelResult
runParallel(const Partitioning &parts, FormatKind kind, Index peCount,
            ScheduleKind schedule, const HlsConfig &config,
            const FormatRegistry &registry, TraceSink *sink)
{
    return runParallelImpl(parts, kind, peCount, schedule, config,
                           registry,
                           sink != nullptr ? sink : activeTraceSink());
}

} // namespace copernicus
