/**
 * @file
 * Event-driven simulation of the Figure-2 pipeline.
 *
 * Where stream_pipeline.cc charges each partition the maximum of its
 * stage latencies (the steady-state bound), this simulator schedules
 * every stage of every partition explicitly under double buffering:
 * the read of partition i may start once the read of i-1 finished and
 * the compute of i-2 released its input buffer; compute needs its own
 * read done and the previous compute done; write needs its compute
 * done and the previous write done. The result is an exact timeline
 * with per-stage busy/stall accounting, used by tests to bound the
 * analytic model and by the ablation bench to show where bubbles come
 * from (the paper's "imbalance streaming leads to idle computation or
 * pauses in data transfer").
 */

#ifndef COPERNICUS_PIPELINE_EVENT_SIM_HH
#define COPERNICUS_PIPELINE_EVENT_SIM_HH

#include "pipeline/stream_pipeline.hh"
#include "trace/trace_sink.hh"

namespace copernicus {

/** Scheduled interval of one partition through the three stages. */
struct TileSchedule
{
    Cycles readStart = 0;
    Cycles readEnd = 0;
    Cycles computeStart = 0;
    Cycles computeEnd = 0;
    Cycles writeStart = 0;
    Cycles writeEnd = 0;
};

/** Outcome of an event-driven run. */
struct EventSimResult
{
    FormatKind format = FormatKind::Dense;
    Index partitionSize = 0;

    /** Per-partition timeline, streaming order. */
    std::vector<TileSchedule> schedule;

    /** Completion time of the last write. */
    Cycles totalCycles = 0;

    /** Cycles each stage spent busy. */
    Cycles readBusy = 0;
    Cycles computeBusy = 0;
    Cycles writeBusy = 0;

    /** Idle gaps inside the compute stage (the paper's bubbles). */
    Cycles computeStall = 0;

    /** Idle gaps inside the read stage (paused transfers). */
    Cycles readStall = 0;
};

/**
 * Simulate the pipeline event by event.
 *
 * @param parts Partitioning of the operand matrix.
 * @param kind Compression format.
 * @param config Platform parameters.
 * @param registry Codec source.
 * @param inputBuffers Input-buffer slots between the read and compute
 *        stages: the read of partition i waits for the compute of
 *        partition i - inputBuffers to release its slot (2 = the
 *        classic ping-pong double buffer).
 * @param sink Timeline sink; null falls back to activeTraceSink()
 *        (null again = tracing off). Emits read/compute/write duration
 *        events per partition plus bw_util and sigma counters; never
 *        affects the returned cycles.
 */
EventSimResult runEventSim(const Partitioning &parts, FormatKind kind,
                           const HlsConfig &config = HlsConfig(),
                           const FormatRegistry &registry =
                               defaultRegistry(),
                           Index inputBuffers = 2,
                           TraceSink *sink = nullptr);

} // namespace copernicus

#endif // COPERNICUS_PIPELINE_EVENT_SIM_HH
