/**
 * @file
 * Coarse-grained parallelism: several instances of the Figure-2
 * pipeline working on one matrix ("Instances of this architecture can
 * be aggregated for implementing coarse-grain parallelism",
 * Section 5.1).
 *
 * Non-zero partitions are distributed across processing elements (PEs)
 * and every PE runs the single-pipeline model independently; the
 * slowest PE bounds the parallel compute time. All PEs share one DDR3
 * channel, so the aggregate transfer demand also bounds the run — the
 * model reports which of the two limits binds, which is exactly the
 * balance question of Section 6.2 at the system level.
 */

#ifndef COPERNICUS_PIPELINE_PARALLEL_PIPELINE_HH
#define COPERNICUS_PIPELINE_PARALLEL_PIPELINE_HH

#include "pipeline/stream_pipeline.hh"

namespace copernicus {

/** How partitions are assigned to PEs. */
enum class ScheduleKind
{
    RoundRobin, ///< tile i goes to PE i mod N (streaming order)
    LoadBalanced, ///< longest-processing-time by bottleneck cycles
};

/** Result of a multi-PE run. */
struct ParallelResult
{
    FormatKind format = FormatKind::Dense;
    Index partitionSize = 0;
    Index peCount = 1;
    ScheduleKind schedule = ScheduleKind::RoundRobin;

    /** Per-PE end-to-end cycles (fill/drain included). */
    std::vector<Cycles> peCycles;

    /** max(peCycles): the compute-side bound. */
    Cycles computeBoundCycles = 0;

    /** Cycles to push every partition through the shared channel. */
    Cycles memoryBoundCycles = 0;

    /** The binding constraint: max(compute, memory). */
    Cycles totalCycles = 0;

    /** True when the shared memory channel is the bottleneck. */
    bool memoryBound = false;

    /** Speedup versus the same run on one PE. */
    double speedup = 0;

    /** totalCycles at the configured clock. */
    double seconds = 0;
};

/**
 * Run @p parts through @p peCount aggregated pipelines.
 *
 * @param parts Partitioning of the operand matrix.
 * @param kind Compression format.
 * @param peCount Number of pipeline instances (>= 1).
 * @param schedule Tile-assignment policy.
 * @param config Platform parameters (shared by every PE).
 * @param registry Codec source.
 * @param sink Timeline sink; null falls back to activeTraceSink()
 *        (null again = tracing off). Emits one lane track per PE
 *        ("pe0", "pe1", ...) with each assigned tile as a slot of its
 *        bottleneck cycles; the internal single-PE baseline run used
 *        for the speedup figure is never traced. Never affects the
 *        returned cycles.
 */
ParallelResult runParallel(const Partitioning &parts, FormatKind kind,
                           Index peCount,
                           ScheduleKind schedule =
                               ScheduleKind::RoundRobin,
                           const HlsConfig &config = HlsConfig(),
                           const FormatRegistry &registry =
                               defaultRegistry(),
                           TraceSink *sink = nullptr);

} // namespace copernicus

#endif // COPERNICUS_PIPELINE_PARALLEL_PIPELINE_HH
