/**
 * @file
 * DOK codec (Section 2, Figure 1e).
 *
 * Dictionary of keys: coordinate/value pairs stored in a hash table keyed
 * by (row, col). The wire image is the same tuple series as COO (the paper
 * notes DOK follows the same decompression procedure); the hash structure
 * matters on-chip, where the decompressor pays a hashing step per tuple.
 */

#ifndef COPERNICUS_FORMATS_DOK_FORMAT_HH
#define COPERNICUS_FORMATS_DOK_FORMAT_HH

#include <unordered_map>

#include "formats/codec.hh"

namespace copernicus {

/** DOK-encoded tile: hash of packed (row, col) key to value. */
class DokEncoded : public EncodedTile
{
  public:
    DokEncoded(Index tileSize, Index nnz) : EncodedTile(tileSize, nnz) {}

    FormatKind kind() const override { return FormatKind::DOK; }

    std::vector<Bytes>
    streams() const override
    {
        // Same wire image as COO: (row, col, value) per entry.
        return {Bytes(table.size()) * (valueBytes + 2 * indexBytes)};
    }

    /**
     * COO's planar wire image in sorted (row, col) order — the hash
     * table's iteration order is not deterministic, the serialized
     * streams must be.
     */
    std::vector<TypedStream> typedStreams() const override;

    /** Pack (row, col) into one hash key. */
    static std::uint64_t
    key(Index row, Index col)
    {
        return (static_cast<std::uint64_t>(row) << 32) | col;
    }

    std::unordered_map<std::uint64_t, Value> table;
};

/** Codec for DOK. */
class DokCodec : public FormatCodec
{
  public:
    FormatKind kind() const override { return FormatKind::DOK; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_DOK_FORMAT_HH
