#include "formats/typed_stream.hh"

namespace copernicus {

const char *
streamClassName(StreamClass cls)
{
    switch (cls) {
    case StreamClass::Value:
        return "value";
    case StreamClass::Index:
        return "index";
    case StreamClass::Offset:
        return "offset";
    }
    return "unknown";
}

} // namespace copernicus
