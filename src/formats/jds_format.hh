/**
 * @file
 * Jagged Diagonal Storage codec (Section 2's JDS variant).
 *
 * Rows are sorted by descending non-zero count (the permutation is kept),
 * then stored as jagged diagonals: diagonal j holds the j-th non-zero of
 * every row long enough to have one. No padding is stored; the jagged
 * pointer array delimits the diagonals.
 */

#ifndef COPERNICUS_FORMATS_JDS_FORMAT_HH
#define COPERNICUS_FORMATS_JDS_FORMAT_HH

#include "formats/codec.hh"

namespace copernicus {

/** JDS-encoded tile. */
class JdsEncoded : public EncodedTile
{
  public:
    JdsEncoded(Index tileSize, Index nnz) : EncodedTile(tileSize, nnz) {}

    FormatKind kind() const override { return FormatKind::JDS; }

    std::vector<Bytes>
    streams() const override
    {
        return {Bytes(values.size()) * valueBytes,
                Bytes(colInx.size()) * indexBytes,
                Bytes(perm.size() + jdPtr.size()) * indexBytes};
    }

    /** perm[k] = original row stored at sorted position k. */
    std::vector<Index> perm;

    /** Start of each jagged diagonal in values/colInx; length width+1. */
    std::vector<Index> jdPtr;

    /** Non-zero values, jagged-diagonal-major. */
    std::vector<Value> values;

    /** Column index of each value. */
    std::vector<Index> colInx;
};

/** Codec for JDS. */
class JdsCodec : public FormatCodec
{
  public:
    FormatKind kind() const override { return FormatKind::JDS; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_JDS_FORMAT_HH
