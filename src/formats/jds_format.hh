/**
 * @file
 * Jagged Diagonal Storage codec (Section 2's JDS variant).
 *
 * Rows are sorted by descending non-zero count (the permutation is kept),
 * then stored as jagged diagonals: diagonal j holds the j-th non-zero of
 * every row long enough to have one. No padding is stored; the jagged
 * pointer array delimits the diagonals.
 */

#ifndef COPERNICUS_FORMATS_JDS_FORMAT_HH
#define COPERNICUS_FORMATS_JDS_FORMAT_HH

#include <span>

#include "formats/codec.hh"

namespace copernicus {

/**
 * JDS-encoded tile.
 *
 * The three index-typed arrays (colInx, perm, jdPtr) share one backing
 * vector: the encode hot path pays one allocation for all of them
 * instead of three, which is a measurable share of the per-tile cost
 * at paper densities (most tiles hold a handful of non-zeros). The
 * spans partition `meta` in declaration order.
 */
class JdsEncoded : public EncodedTile
{
  public:
    JdsEncoded(Index tileSize, Index nnz) : EncodedTile(tileSize, nnz) {}

    FormatKind kind() const override { return FormatKind::JDS; }

    std::vector<Bytes>
    streams() const override
    {
        return {Bytes(values.size()) * valueBytes,
                Bytes(colInx().size()) * indexBytes,
                Bytes(perm().size() + jdPtr().size()) * indexBytes};
    }

    std::vector<TypedStream>
    typedStreams() const override
    {
        return {scalarStream(StreamClass::Value, "values", values),
                scalarStream(StreamClass::Index, "colInx", colInx()),
                scalarStream(StreamClass::Index, "perm", perm()),
                scalarStream(StreamClass::Offset, "jdPtr", jdPtr())};
    }

    /** Non-zero values, jagged-diagonal-major. */
    std::vector<Value> values;

    /**
     * Index-typed metadata, one allocation:
     * [colInx (nnz) | perm (p) | jdPtr (width + 1)].
     */
    std::vector<Index> meta;

    /** Column index of each value. */
    std::span<Index> colInx() { return {meta.data(), nnz()}; }
    std::span<const Index>
    colInx() const
    {
        return {meta.data(), nnz()};
    }

    /** perm[k] = original row stored at sorted position k. */
    std::span<Index>
    perm()
    {
        return {meta.data() + nnz(), tileSize()};
    }
    std::span<const Index>
    perm() const
    {
        return {meta.data() + nnz(), tileSize()};
    }

    /** Start of each jagged diagonal in values/colInx; length width+1. */
    std::span<Index>
    jdPtr()
    {
        const std::size_t head = std::size_t(nnz()) + tileSize();
        return {meta.data() + head, meta.size() - head};
    }
    std::span<const Index>
    jdPtr() const
    {
        const std::size_t head = std::size_t(nnz()) + tileSize();
        return {meta.data() + head, meta.size() - head};
    }
};

/** Codec for JDS. */
class JdsCodec : public FormatCodec
{
  public:
    FormatKind kind() const override { return FormatKind::JDS; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_JDS_FORMAT_HH
