#include "formats/format_kind.hh"

#include <string>

#include "common/status.hh"

namespace copernicus {

std::string_view
formatName(FormatKind kind)
{
    switch (kind) {
      case FormatKind::Dense: return "DENSE";
      case FormatKind::CSR: return "CSR";
      case FormatKind::BCSR: return "BCSR";
      case FormatKind::CSC: return "CSC";
      case FormatKind::COO: return "COO";
      case FormatKind::DOK: return "DOK";
      case FormatKind::LIL: return "LIL";
      case FormatKind::ELL: return "ELL";
      case FormatKind::SELL: return "SELL";
      case FormatKind::DIA: return "DIA";
      case FormatKind::JDS: return "JDS";
      case FormatKind::ELLCOO: return "ELLCOO";
      case FormatKind::SELLCS: return "SELLCS";
      case FormatKind::BITMAP: return "BITMAP";
    }
    panic("formatName: unknown FormatKind");
}

FormatKind
parseFormatKind(std::string_view name)
{
    for (FormatKind kind : allFormats()) {
        if (formatName(kind) == name)
            return kind;
    }
    fatal("unknown format name '" + std::string(name) + "'");
}

const std::vector<FormatKind> &
paperFormats()
{
    static const std::vector<FormatKind> kinds = {
        FormatKind::Dense, FormatKind::CSR, FormatKind::BCSR,
        FormatKind::CSC, FormatKind::LIL, FormatKind::ELL,
        FormatKind::COO, FormatKind::DIA,
    };
    return kinds;
}

const std::vector<FormatKind> &
sparseFormats()
{
    static const std::vector<FormatKind> kinds = {
        FormatKind::CSR, FormatKind::BCSR, FormatKind::CSC,
        FormatKind::LIL, FormatKind::ELL, FormatKind::COO,
        FormatKind::DIA,
    };
    return kinds;
}

const std::vector<FormatKind> &
extensionFormats()
{
    static const std::vector<FormatKind> kinds = {
        FormatKind::DOK, FormatKind::SELL, FormatKind::JDS,
        FormatKind::ELLCOO, FormatKind::SELLCS, FormatKind::BITMAP,
    };
    return kinds;
}

const std::vector<FormatKind> &
allFormats()
{
    static const std::vector<FormatKind> kinds = [] {
        std::vector<FormatKind> all = paperFormats();
        const auto &ext = extensionFormats();
        all.insert(all.end(), ext.begin(), ext.end());
        return all;
    }();
    return kinds;
}

} // namespace copernicus
