#include "formats/coo_format.hh"

#include "trace/profile.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
CooCodec::encode(const Tile &tile) const
{
    const ScopedTimer timer("encode.COO");
    const Index p = tile.size();
    auto encoded = std::make_unique<CooEncoded>(p, tile.nnz());
    for (Index r = 0; r < p; ++r) {
        for (Index c = 0; c < p; ++c) {
            const Value v = tile(r, c);
            if (v != Value(0)) {
                encoded->rowInx.push_back(r);
                encoded->colInx.push_back(c);
                encoded->values.push_back(v);
            }
        }
    }
    return encoded;
}

Tile
CooCodec::decode(const EncodedTile &encoded) const
{
    const auto &coo = encodedAs<CooEncoded>(encoded, FormatKind::COO);
    Tile tile(coo.tileSize());
    for (std::size_t i = 0; i < coo.values.size(); ++i)
        tile(coo.rowInx[i], coo.colInx[i]) = coo.values[i];
    return tile;
}

} // namespace copernicus
