#include "formats/coo_format.hh"

#include "trace/profile.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
CooCodec::encode(const Tile &tile) const
{
    const ScopedTimer timer("encode.COO");
    const Index p = tile.size();
    const auto &nz = tile.nonzeros();
    auto encoded = std::make_unique<CooEncoded>(p, tile.nnz());
    encoded->rowInx.reserve(nz.size());
    encoded->colInx.reserve(nz.size());
    encoded->values.reserve(nz.size());
    for (const TileNonzero &e : nz) {
        encoded->rowInx.push_back(e.row);
        encoded->colInx.push_back(e.col);
        encoded->values.push_back(e.value);
    }
    return encoded;
}

Tile
CooCodec::decode(const EncodedTile &encoded) const
{
    const auto &coo = encodedAs<CooEncoded>(encoded, FormatKind::COO);
    Tile tile(coo.tileSize());
    for (std::size_t i = 0; i < coo.values.size(); ++i)
        tile.cell(coo.rowInx[i], coo.colInx[i]) = coo.values[i];
    return tile;
}

} // namespace copernicus
