/**
 * @file
 * Sliced ELL codec (Section 2's SELL variant).
 *
 * The tile is cut row-wise into slices of fixed height C; ELL is applied
 * per slice with the slice's own width, which trims the padding a single
 * global width would force. One width header per slice is the extra
 * metadata.
 */

#ifndef COPERNICUS_FORMATS_SELL_FORMAT_HH
#define COPERNICUS_FORMATS_SELL_FORMAT_HH

#include "formats/codec.hh"

namespace copernicus {

/** One ELL slice of a SELL encoding. */
struct SellSlice
{
    /** Compressed width of this slice (its longest row). */
    Index width = 0;

    /** sliceHeight x width values, rows pushed left, zero-padded. */
    std::vector<Value> values;

    /** sliceHeight x width column indices; padMarker pads. */
    std::vector<Index> colInx;
};

/** SELL-encoded tile. */
class SellEncoded : public EncodedTile
{
  public:
    /** Column-index value marking a padding slot. */
    static constexpr Index padMarker = ~Index(0);

    SellEncoded(Index tileSize, Index nnz, Index sliceHeight)
        : EncodedTile(tileSize, nnz), c(sliceHeight)
    {}

    FormatKind kind() const override { return FormatKind::SELL; }

    std::vector<Bytes>
    streams() const override
    {
        Bytes value_bytes = 0;
        Bytes index_bytes = 0;
        for (const auto &slice : slices) {
            value_bytes += Bytes(slice.values.size()) * valueBytes;
            index_bytes += Bytes(slice.colInx.size()) * indexBytes;
        }
        // One width header per slice.
        index_bytes += Bytes(slices.size()) * indexBytes;
        return {value_bytes, index_bytes};
    }

    std::vector<TypedStream>
    typedStreams() const override
    {
        TypedStream values{StreamClass::Value, "values", {}};
        TypedStream colInx{StreamClass::Index, "colInx", {}};
        TypedStream widths{StreamClass::Offset, "widths", {}};
        for (const auto &slice : slices) {
            appendScalarBytes(values.bytes, slice.values.data(),
                              slice.values.size());
            appendScalarBytes(colInx.bytes, slice.colInx.data(),
                              slice.colInx.size());
            appendScalarBytes(widths.bytes, &slice.width, 1);
        }
        std::vector<TypedStream> out;
        out.push_back(std::move(values));
        out.push_back(std::move(colInx));
        out.push_back(std::move(widths));
        return out;
    }

    /** Slice height C. */
    Index sliceHeight() const { return c; }

    std::vector<SellSlice> slices;

  private:
    Index c;
};

/** Codec for SELL with configurable slice height (default 4). */
class SellCodec : public FormatCodec
{
  public:
    /** @param sliceHeight Slice height C; must divide the tile size. */
    explicit SellCodec(Index sliceHeight = 4);

    FormatKind kind() const override { return FormatKind::SELL; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;

    Index sliceHeight() const { return c; }

  private:
    Index c;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_SELL_FORMAT_HH
