/**
 * @file
 * Bitmap codec: the bitmask representation used by recent sparse DSAs
 * (SparTen's SparseMap, SMASH's hierarchical bitmaps — the paper's
 * Related Work), implemented here as an extension format.
 *
 * The tile ships as a p*p occupancy bitmap (one bit per cell,
 * row-major, packed into 64-bit words) plus the dense array of
 * non-zero values in row-major order. Metadata is a fixed p*p/8 bytes
 * regardless of sparsity, so bandwidth utilization beats index-based
 * formats once a tile holds more than a handful of non-zeros.
 */

#ifndef COPERNICUS_FORMATS_BITMAP_FORMAT_HH
#define COPERNICUS_FORMATS_BITMAP_FORMAT_HH

#include <cstdint>

#include "formats/codec.hh"

namespace copernicus {

/** Bitmap-encoded tile. */
class BitmapEncoded : public EncodedTile
{
  public:
    BitmapEncoded(Index tileSize, Index nnz)
        : EncodedTile(tileSize, nnz),
          mask((static_cast<std::size_t>(tileSize) * tileSize + 63) /
               64, 0)
    {}

    FormatKind kind() const override { return FormatKind::BITMAP; }

    std::vector<Bytes>
    streams() const override
    {
        // The bitmap is packed: p*p bits of metadata.
        const Bytes mask_bytes =
            (Bytes(p) * p + 7) / 8;
        return {Bytes(values.size()) * valueBytes, mask_bytes};
    }

    std::vector<TypedStream>
    typedStreams() const override
    {
        TypedStream mask_stream{StreamClass::Index, "mask", {}};
        appendScalarBytes(mask_stream.bytes, mask.data(), mask.size());
        // The wire image is the packed p*p bits, not the backing
        // words: truncate the tail padding the words add.
        mask_stream.bytes.resize((std::size_t(p) * p + 7) / 8);
        std::vector<TypedStream> out;
        out.push_back(
            scalarStream(StreamClass::Value, "values", values));
        out.push_back(std::move(mask_stream));
        return out;
    }

    /** True iff cell (row, col) is occupied. */
    bool
    test(Index row, Index col) const
    {
        const std::size_t bit = static_cast<std::size_t>(row) * p + col;
        return (mask[bit / 64] >> (bit % 64)) & 1;
    }

    /** Mark cell (row, col) occupied. */
    void
    set(Index row, Index col)
    {
        const std::size_t bit = static_cast<std::size_t>(row) * p + col;
        mask[bit / 64] |= std::uint64_t(1) << (bit % 64);
    }

    /** Occupancy bits, row-major, packed little-endian into words. */
    std::vector<std::uint64_t> mask;

    /** Non-zero values in row-major order. */
    std::vector<Value> values;
};

/** Codec for the bitmap format. */
class BitmapCodec : public FormatCodec
{
  public:
    FormatKind kind() const override { return FormatKind::BITMAP; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_BITMAP_FORMAT_HH
