/**
 * @file
 * Typed memory streams: the second-stage compression boundary.
 *
 * The legacy EncodedTile::streams() API reports opaque byte counts,
 * which is all the AXI transfer model needs. Second-stage compression
 * (src/compress) needs more: the actual serialized payload of each
 * stream, and a coarse class so index, offset and value streams can be
 * compressed with independently chosen codecs — they have very
 * different statistics (Qin et al., PAPERS.md).
 *
 * Every format therefore also reports typedStreams(): the same bytes
 * as streams(), split into labeled, classed, serialized payloads. The
 * invariant — enforced by the `streams` lint pass and the tier-1 tests
 * — is that the typed payload sizes sum to exactly the legacy
 * streams() total for every format: no bytes silently dropped or
 * double-counted by the migration.
 *
 * Serialization is the native little-endian in-memory image of each
 * array (the same bytes the DDR interface would move); formats with
 * non-contiguous storage (DOK's hash table, SELL's slices, BCSR's
 * blocks) define a deterministic canonical order here.
 */

#ifndef COPERNICUS_FORMATS_TYPED_STREAM_HH
#define COPERNICUS_FORMATS_TYPED_STREAM_HH

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "common/types.hh"

namespace copernicus {

/** Coarse stream taxonomy for per-class compressor selection. */
enum class StreamClass : std::uint8_t
{
    Value,  ///< non-zero payload words (and in-block/padding zeros)
    Index,  ///< per-entry coordinates: column/row indices, masks, perms
    Offset, ///< structural headers: prefix sums, widths, diagonal numbers
};

/** Human-readable class label ("value", "index", "offset"). */
const char *streamClassName(StreamClass cls);

/** One serialized memory stream of an encoded tile. */
struct TypedStream
{
    StreamClass cls = StreamClass::Value;

    /** Static label, e.g. "values", "colInx" (never owned). */
    const char *name = "";

    /** Serialized payload, canonical order, native byte order. */
    std::vector<std::byte> bytes;

    Bytes size() const { return Bytes(bytes.size()); }
};

/** Append the raw bytes of @p count scalars at @p data to @p out. */
template <typename T>
inline void
appendScalarBytes(std::vector<std::byte> &out, const T *data,
                  std::size_t count)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = out.size();
    out.resize(at + count * sizeof(T));
    if (count != 0)
        std::memcpy(out.data() + at, data, count * sizeof(T));
}

/** Build a TypedStream from a contiguous scalar range. */
template <typename Range>
inline TypedStream
scalarStream(StreamClass cls, const char *name, const Range &range)
{
    TypedStream s;
    s.cls = cls;
    s.name = name;
    appendScalarBytes(s.bytes, std::data(range), std::size(range));
    return s;
}

/** Sum of the serialized payload sizes. */
inline Bytes
typedStreamBytes(const std::vector<TypedStream> &streams)
{
    Bytes total = 0;
    for (const TypedStream &s : streams)
        total += s.size();
    return total;
}

} // namespace copernicus

#endif // COPERNICUS_FORMATS_TYPED_STREAM_HH
