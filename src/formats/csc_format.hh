/**
 * @file
 * CSC codec (Section 2; decompression Listing 3).
 *
 * Column-oriented mirror of CSR: offsets per column, row indices per
 * non-zero, values column-major. The paper keeps this format in the study
 * as the deliberate worst case of format/hardware orientation mismatch.
 */

#ifndef COPERNICUS_FORMATS_CSC_FORMAT_HH
#define COPERNICUS_FORMATS_CSC_FORMAT_HH

#include "formats/codec.hh"

namespace copernicus {

/** CSC-encoded tile. */
class CscEncoded : public EncodedTile
{
  public:
    CscEncoded(Index tileSize, Index nnz) : EncodedTile(tileSize, nnz) {}

    FormatKind kind() const override { return FormatKind::CSC; }

    std::vector<Bytes>
    streams() const override
    {
        return {Bytes(values.size()) * valueBytes,
                Bytes(rowInx.size()) * indexBytes,
                Bytes(offsets.size()) * indexBytes};
    }

    std::vector<TypedStream>
    typedStreams() const override
    {
        return {scalarStream(StreamClass::Value, "values", values),
                scalarStream(StreamClass::Index, "rowInx", rowInx),
                scalarStream(StreamClass::Offset, "offsets", offsets)};
    }

    /** Cumulative non-zero count through each column; length p. */
    std::vector<Index> offsets;

    /** Row index of each non-zero, column-major; length nnz. */
    std::vector<Index> rowInx;

    /** Non-zero values, column-major; length nnz. */
    std::vector<Value> values;

    /** Start position of @p col in rowInx/values. */
    Index
    colStart(Index col) const
    {
        return col == 0 ? 0 : offsets[col - 1];
    }

    /** One-past-the-end position of @p col in rowInx/values. */
    Index colEnd(Index col) const { return offsets[col]; }
};

/** Codec for CSC. */
class CscCodec : public FormatCodec
{
  public:
    FormatKind kind() const override { return FormatKind::CSC; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_CSC_FORMAT_HH
