/**
 * @file
 * Analytic encoded-size model: predict a tile's wire bytes in every
 * format from its sparsity statistics alone, without encoding.
 *
 * This is what an architect sizing buffers or a scheduler picking a
 * format per tile actually needs — the byte cost is a closed-form
 * function of (nnz, non-zero blocks, longest row/column, diagonal
 * count). The test suite verifies the model against the real codecs
 * bit-for-bit across formats, sizes and densities.
 */

#ifndef COPERNICUS_FORMATS_SIZE_MODEL_HH
#define COPERNICUS_FORMATS_SIZE_MODEL_HH

#include "formats/format_kind.hh"
#include "formats/registry.hh"
#include "matrix/tile.hh"

namespace copernicus {

/** Sparsity statistics a size prediction needs. */
struct TileShape
{
    /** Tile edge length p. */
    Index p = 0;

    /** Non-zero count. */
    Index nnz = 0;

    /** Longest row, in non-zeros. */
    Index maxRowNnz = 0;

    /** Longest column, in non-zeros. */
    Index maxColNnz = 0;

    /** Non-zero b x b blocks for the registry's BCSR block size. */
    Index nnzBlocks = 0;

    /** Non-zero diagonals. */
    Index nnzDiagonals = 0;

    /** Per-slice widths for the registry's SELL slice height. */
    std::vector<Index> sliceWidths;

    /** Per-window-sorted slice widths for SELL-C-sigma. */
    std::vector<Index> sortedSliceWidths;

    /** Non-zeros beyond the ELL+COO width, summed over rows. */
    Index ellCooOverflow = 0;
};

/** Measure the statistics of @p tile for @p params. */
TileShape measureTile(const Tile &tile,
                      const FormatParams &params = FormatParams());

/**
 * Predicted total wire bytes of @p shape in @p kind.
 *
 * Exact for every format: predictedBytes(measureTile(t), k) equals
 * codec(k).encode(t)->totalBytes().
 */
Bytes predictedBytes(const TileShape &shape, FormatKind kind,
                     const FormatParams &params = FormatParams());

/** Predicted bandwidth utilization (nnz payload / predictedBytes). */
double predictedUtilization(const TileShape &shape, FormatKind kind,
                            const FormatParams &params = FormatParams());

} // namespace copernicus

#endif // COPERNICUS_FORMATS_SIZE_MODEL_HH
