/**
 * @file
 * Analytic encoded-size model: predict a tile's wire bytes in every
 * format from its sparsity statistics alone, without encoding.
 *
 * This is what an architect sizing buffers or a scheduler picking a
 * format per tile actually needs — the byte cost is a closed-form
 * function of (nnz, non-zero blocks, longest row/column, diagonal
 * count). The test suite verifies the model against the real codecs
 * bit-for-bit across formats, sizes and densities.
 */

#ifndef COPERNICUS_FORMATS_SIZE_MODEL_HH
#define COPERNICUS_FORMATS_SIZE_MODEL_HH

#include "formats/format_kind.hh"
#include "formats/registry.hh"
#include "matrix/tile.hh"

namespace copernicus {

/** Sparsity statistics a size prediction needs. */
struct TileShape
{
    /** Tile edge length p. */
    Index p = 0;

    /** Non-zero count. */
    Index nnz = 0;

    /** Longest row, in non-zeros. */
    Index maxRowNnz = 0;

    /** Longest column, in non-zeros. */
    Index maxColNnz = 0;

    /** Non-zero b x b blocks for the registry's BCSR block size. */
    Index nnzBlocks = 0;

    /** Non-zero diagonals. */
    Index nnzDiagonals = 0;

    /** Per-slice widths for the registry's SELL slice height. */
    std::vector<Index> sliceWidths;

    /** Per-window-sorted slice widths for SELL-C-sigma. */
    std::vector<Index> sortedSliceWidths;

    /** Non-zeros beyond the ELL+COO width, summed over rows. */
    Index ellCooOverflow = 0;
};

/** Measure the statistics of @p tile for @p params. */
TileShape measureTile(const Tile &tile,
                      const FormatParams &params = FormatParams());

/**
 * Predicted total wire bytes of @p shape in @p kind.
 *
 * Exact for every format: predictedBytes(measureTile(t), k) equals
 * codec(k).encode(t)->totalBytes().
 */
Bytes predictedBytes(const TileShape &shape, FormatKind kind,
                     const FormatParams &params = FormatParams());

/** Predicted bandwidth utilization (nnz payload / predictedBytes). */
double predictedUtilization(const TileShape &shape, FormatKind kind,
                            const FormatParams &params = FormatParams());

/**
 * Predicted wire bytes split by stream class, mirroring the codec's
 * typedStreams() decomposition (typed_stream.hh): values, indices and
 * offsets have very different second-stage compressibility, so the
 * size model exposes the same per-class split the compressor selects
 * over. Invariant (test-verified): total() == predictedBytes().
 */
struct StreamClassBytes
{
    Bytes value = 0;
    Bytes index = 0;
    Bytes offset = 0;

    Bytes total() const { return value + index + offset; }
};

/** Per-class byte prediction for @p shape in @p kind. */
StreamClassBytes
predictedStreamBytes(const TileShape &shape, FormatKind kind,
                     const FormatParams &params = FormatParams());

/**
 * Measured second-stage ratios (stored bytes / raw bytes) per stream
 * class, e.g. from a calibration run over a workload sample. A plain
 * struct — the size model stays independent of the compressor; 1.0
 * everywhere models the second stage off.
 */
struct StreamClassRatios
{
    double value = 1.0;
    double index = 1.0;
    double offset = 1.0;
};

/**
 * Predicted post-second-stage wire bytes: each class scaled by its
 * measured ratio and rounded. An estimate, not exact — actual stored
 * bytes depend on the stream contents, not just their sizes.
 */
Bytes predictedCompressedBytes(const TileShape &shape, FormatKind kind,
                               const StreamClassRatios &ratios,
                               const FormatParams &params =
                                   FormatParams());

} // namespace copernicus

#endif // COPERNICUS_FORMATS_SIZE_MODEL_HH
