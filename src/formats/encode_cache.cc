#include "formats/encode_cache.hh"

#include <cstdlib>
#include <cstring>

#include "common/fnv.hh"
#include "common/logging.hh"
#include "formats/validate.hh"

namespace copernicus {

namespace {

std::uint64_t
mixIndex(std::uint64_t hash, Index v)
{
    return fnv1a(&v, sizeof(v), hash);
}

// The key fingerprint hashes the raw triplet array in one pass; that
// is only sound if TileNonzero has no padding bytes.
static_assert(sizeof(TileNonzero) == 2 * sizeof(Index) + sizeof(Value),
              "TileNonzero must be packed for raw-byte hashing");

std::uint64_t
keyHash(FormatKind kind, const FormatParams &params, const Tile &tile)
{
    std::uint64_t hash = fnvOffsetBasis;
    const auto kind_id = static_cast<std::uint32_t>(kind);
    hash = fnv1a(&kind_id, sizeof(kind_id), hash);
    hash = mixIndex(hash, params.bcsrBlock);
    hash = mixIndex(hash, params.ellMinWidth);
    hash = mixIndex(hash, params.sellSlice);
    hash = mixIndex(hash, params.ellCooWidth);
    hash = mixIndex(hash, params.sellCsWindow);
    hash = mixIndex(hash, tile.size());
    const std::vector<TileNonzero> &nz = tile.nonzeros();
    return fnv1a(nz.data(), nz.size() * sizeof(TileNonzero), hash);
}

bool
sameParams(const FormatParams &a, const FormatParams &b)
{
    return a.bcsrBlock == b.bcsrBlock &&
           a.ellMinWidth == b.ellMinWidth &&
           a.sellSlice == b.sellSlice &&
           a.ellCooWidth == b.ellCooWidth &&
           a.sellCsWindow == b.sellCsWindow;
}

std::uint64_t
entryBytes(const Tile &tile, const EncodedTile &encoded)
{
    // Key copy + encoding payload + container overhead, approximate.
    return std::uint64_t(tile.nnz()) * sizeof(TileNonzero) +
           encoded.totalBytes() + 128;
}

} // namespace

EncodeCache::EncodeCache() : budget(256ULL << 20)
{
    shards.reserve(shardCount);
    for (std::size_t i = 0; i < shardCount; ++i)
        shards.push_back(std::make_unique<Shard>());
    const char *env = std::getenv("COPERNICUS_ENCODE_CACHE");
    if (env != nullptr && env[0] == '0')
        on.store(false, std::memory_order_relaxed);
}

EncodeCache &
EncodeCache::global()
{
    static EncodeCache cache;
    return cache;
}

void
EncodeCache::setEnabled(bool enabled)
{
    on.store(enabled, std::memory_order_relaxed);
}

bool
EncodeCache::enabled() const
{
    return on.load(std::memory_order_relaxed);
}

void
EncodeCache::setMaxBytes(std::uint64_t bytes)
{
    budget.store(bytes, std::memory_order_relaxed);
}

std::uint64_t
EncodeCache::maxBytes() const
{
    return budget.load(std::memory_order_relaxed);
}

void
EncodeCache::clear()
{
    for (const auto &shard : shards) {
        const MutexLock lock(shard->mutex);
        shard->table.clear();
        shard->bytes = 0;
        shard->entries = 0;
    }
}

std::shared_ptr<const EncodedTile>
EncodeCache::encode(const FormatRegistry &registry, FormatKind kind,
                    const Tile &tile)
{
    if (!enabled())
        return registry.codec(kind).encode(tile);

    const FormatParams &params = registry.params();
    const std::uint64_t hash = keyHash(kind, params, tile);
    Shard &shard = *shards[hash % shardCount];

    std::shared_ptr<const EncodedTile> cached;
    {
        const MutexLock lock(shard.mutex);
        auto it = shard.table.find(hash);
        if (it != shard.table.end()) {
            for (const Entry &entry : it->second) {
                if (entry.kind == kind &&
                    sameParams(entry.params, params) &&
                    entry.p == tile.size() &&
                    entry.key == tile.nonzeros()) {
                    cached = entry.encoded;
                    break;
                }
            }
        }
    }
    if (cached != nullptr) {
        // A verified hit is still only trusted as far as its grammar:
        // a corrupted resident encoding is bypassed with a warning, not
        // handed back (debug builds / COPERNICUS_VALIDATE=1).
        if (grammarValidationEnabled()) {
            const GrammarReport report = validateEncodedTile(*cached);
            if (!report.ok()) {
                validationBypasses.fetch_add(1,
                                             std::memory_order_relaxed);
                warn("EncodeCache: cached " +
                     std::string(formatName(kind)) +
                     " encoding failed grammar validation; bypassing "
                     "the cache: " +
                     report.violations.front().toString());
                return registry.codec(kind).encode(tile);
            }
        }
        hits.fetch_add(1, std::memory_order_relaxed);
        return cached;
    }

    // Miss: encode outside the shard lock (the expensive part).
    misses.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<const EncodedTile> encoded =
        registry.codec(kind).encode(tile);
    const std::uint64_t cost = entryBytes(tile, *encoded);

    const MutexLock lock(shard.mutex);
    if (shard.bytes + cost >
        budget.load(std::memory_order_relaxed) / shardCount) {
        shard.table.clear();
        shard.bytes = 0;
        shard.entries = 0;
        evictions.fetch_add(1, std::memory_order_relaxed);
    }
    std::vector<Entry> &bucket = shard.table[hash];
    // A racing worker may have inserted the same key meanwhile; its
    // encoding is bit-identical (encode is pure), so keep the first.
    for (const Entry &entry : bucket) {
        if (entry.kind == kind && sameParams(entry.params, params) &&
            entry.p == tile.size() && entry.key == tile.nonzeros()) {
            return entry.encoded;
        }
    }
    bucket.push_back(
        Entry{kind, params, tile.size(), tile.nonzeros(), encoded, cost});
    shard.bytes += cost;
    ++shard.entries;
    return encoded;
}

EncodeCache::Stats
EncodeCache::stats() const
{
    Stats out;
    out.hits = hits.load(std::memory_order_relaxed);
    out.misses = misses.load(std::memory_order_relaxed);
    out.evictions = evictions.load(std::memory_order_relaxed);
    out.validationBypasses =
        validationBypasses.load(std::memory_order_relaxed);
    for (const auto &shard : shards) {
        const MutexLock lock(shard->mutex);
        out.entries += shard->entries;
        out.bytes += shard->bytes;
    }
    return out;
}

std::shared_ptr<const EncodedTile>
encodeCached(const FormatRegistry &registry, FormatKind kind,
             const Tile &tile)
{
    return EncodeCache::global().encode(registry, kind, tile);
}

EncodeCacheStats::EncodeCacheStats() : grp("encode_cache")
{
    const EncodeCache::Stats stats = EncodeCache::global().stats();
    auto add = [this](const std::string &name, const char *desc,
                      double value) {
        auto stat = std::make_unique<ScalarStat>(grp, name, desc);
        *stat = value;
        owned.push_back(std::move(stat));
    };
    add("hits", "encode calls served from the cache",
        static_cast<double>(stats.hits));
    add("misses", "encode calls that ran the codec",
        static_cast<double>(stats.misses));
    add("hit_rate", "hits / (hits + misses)", stats.hitRate());
    add("evictions", "whole-shard drops under the byte budget",
        static_cast<double>(stats.evictions));
    add("validation_bypasses",
        "verified hits rejected by the grammar validator",
        static_cast<double>(stats.validationBypasses));
    add("entries", "encodings currently resident",
        static_cast<double>(stats.entries));
    add("bytes", "approximate resident bytes",
        static_cast<double>(stats.bytes));
}

} // namespace copernicus
