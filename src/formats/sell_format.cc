#include "formats/sell_format.hh"

#include <algorithm>

#include "common/status.hh"

namespace copernicus {

SellCodec::SellCodec(Index sliceHeight) : c(sliceHeight)
{
    fatalIf(sliceHeight == 0, "SELL slice height must be positive");
}

std::unique_ptr<EncodedTile>
SellCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    fatalIf(p % c != 0, "SELL slice height must divide the tile size");
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    auto encoded = std::make_unique<SellEncoded>(p, feat.nnz, c);
    encoded->slices.reserve(p / c);
    for (Index base = 0; base < p; base += c) {
        SellSlice slice;
        for (Index r = base; r < base + c; ++r)
            slice.width = std::max(slice.width, feat.rowNnz[r]);
        slice.values.assign(static_cast<std::size_t>(c) * slice.width,
                            Value(0));
        slice.colInx.assign(static_cast<std::size_t>(c) * slice.width,
                            SellEncoded::padMarker);
        for (Index r = base; r < base + c; ++r) {
            for (Index i = feat.rowStart[r]; i < feat.rowStart[r + 1];
                 ++i) {
                const auto at =
                    static_cast<std::size_t>(r - base) * slice.width +
                    (i - feat.rowStart[r]);
                slice.values[at] = nz[i].value;
                slice.colInx[at] = nz[i].col;
            }
        }
        encoded->slices.push_back(std::move(slice));
    }
    return encoded;
}

Tile
SellCodec::decode(const EncodedTile &encoded) const
{
    const auto &sell = encodedAs<SellEncoded>(encoded, FormatKind::SELL);
    const Index p = sell.tileSize();
    const Index c = sell.sliceHeight();
    Tile tile(p);
    for (std::size_t s = 0; s < sell.slices.size(); ++s) {
        const auto &slice = sell.slices[s];
        const Index base = static_cast<Index>(s) * c;
        for (Index r = 0; r < c; ++r) {
            for (Index slot = 0; slot < slice.width; ++slot) {
                const auto at = static_cast<std::size_t>(r) * slice.width +
                                slot;
                const Index col = slice.colInx[at];
                if (col == SellEncoded::padMarker)
                    break;
                tile.cell(base + r, col) = slice.values[at];
            }
        }
    }
    return tile;
}

} // namespace copernicus
