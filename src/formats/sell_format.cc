#include "formats/sell_format.hh"

#include <algorithm>

#include "common/status.hh"

namespace copernicus {

SellCodec::SellCodec(Index sliceHeight) : c(sliceHeight)
{
    fatalIf(sliceHeight == 0, "SELL slice height must be positive");
}

std::unique_ptr<EncodedTile>
SellCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    fatalIf(p % c != 0, "SELL slice height must divide the tile size");
    auto encoded = std::make_unique<SellEncoded>(p, tile.nnz(), c);
    for (Index base = 0; base < p; base += c) {
        SellSlice slice;
        for (Index r = base; r < base + c; ++r)
            slice.width = std::max(slice.width, tile.rowNnz(r));
        slice.values.assign(static_cast<std::size_t>(c) * slice.width,
                            Value(0));
        slice.colInx.assign(static_cast<std::size_t>(c) * slice.width,
                            SellEncoded::padMarker);
        for (Index r = 0; r < c; ++r) {
            Index slot = 0;
            for (Index col = 0; col < p; ++col) {
                const Value v = tile(base + r, col);
                if (v != Value(0)) {
                    const auto at = static_cast<std::size_t>(r) *
                                    slice.width + slot;
                    slice.values[at] = v;
                    slice.colInx[at] = col;
                    ++slot;
                }
            }
        }
        encoded->slices.push_back(std::move(slice));
    }
    return encoded;
}

Tile
SellCodec::decode(const EncodedTile &encoded) const
{
    const auto &sell = encodedAs<SellEncoded>(encoded, FormatKind::SELL);
    const Index p = sell.tileSize();
    const Index c = sell.sliceHeight();
    Tile tile(p);
    for (std::size_t s = 0; s < sell.slices.size(); ++s) {
        const auto &slice = sell.slices[s];
        const Index base = static_cast<Index>(s) * c;
        for (Index r = 0; r < c; ++r) {
            for (Index slot = 0; slot < slice.width; ++slot) {
                const auto at = static_cast<std::size_t>(r) * slice.width +
                                slot;
                const Index col = slice.colInx[at];
                if (col == SellEncoded::padMarker)
                    break;
                tile(base + r, col) = slice.values[at];
            }
        }
    }
    return tile;
}

} // namespace copernicus
