/**
 * @file
 * EncodeCache: a sharded, content-addressed memo of
 * encode(tile, format, params).
 *
 * The sweep hot paths encode the same tiles over and over: Study::run
 * re-encodes every tile for each design point, planFormats encodes
 * every tile once per candidate format, and the adaptive pipeline then
 * encodes the winners again. Encoding is pure — the result depends
 * only on the tile contents, the format, and the codec
 * hyperparameters — so one shared memo collapses all of that to one
 * encode per distinct (tile, format, params) triple. Content
 * addressing also dedupes *identical* tiles, which band and stencil
 * matrices produce in bulk (the same band tile repeats down the whole
 * diagonal).
 *
 * Lookups hash the tile's canonical nonzero stream (FNV-1a over the
 * sorted (row, col, value) triplets — O(nnz), not O(p^2)) but hits are
 * verified by full stream comparison, so a hash collision can never
 * substitute a wrong encoding — parallel and serial sweeps stay
 * bit-identical with the cache on or off.
 *
 * Concurrency: the table is split into shards, each behind its own
 * mutex, so pool workers encoding different tiles rarely contend. Two
 * workers racing on the same missing key both encode (pure, identical
 * results) and the first insert wins.
 *
 * Memory: a byte budget (default 256 MiB, spread over the shards)
 * bounds the cache; a shard that exceeds its share is dropped
 * wholesale (counted as evictions) — a deliberately simple policy that
 * keeps the hot path to one hash + one map probe.
 *
 * Disable with COPERNICUS_ENCODE_CACHE=0 or setEnabled(false).
 */

#ifndef COPERNICUS_FORMATS_ENCODE_CACHE_HH
#define COPERNICUS_FORMATS_ENCODE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/lock_order.hh"
#include "common/mutex.hh"
#include "common/stat_group.hh"
#include "common/thread_annotations.hh"
#include "formats/registry.hh"
#include "matrix/tile.hh"

namespace copernicus {

/** Process-wide memo of encoded tiles. */
class EncodeCache
{
  public:
    EncodeCache();
    EncodeCache(const EncodeCache &) = delete;
    EncodeCache &operator=(const EncodeCache &) = delete;

    /** The shared cache used by the pipeline and the scheduler. */
    static EncodeCache &global();

    /**
     * encode(tile) through @p registry's codec for @p kind, memoised
     * on (tile contents, kind, registry params). Never returns null.
     */
    std::shared_ptr<const EncodedTile>
    encode(const FormatRegistry &registry, FormatKind kind,
           const Tile &tile);

    /** Drop every entry (stats and configuration are kept). */
    void clear();

    /** Turn memoisation on/off; off = every call encodes fresh. */
    void setEnabled(bool enabled);
    bool enabled() const;

    /**
     * Cap the total byte budget (tiles + encodings, approximate).
     * Applied per shard; an overfull shard is dropped wholesale.
     */
    void setMaxBytes(std::uint64_t bytes);
    std::uint64_t maxBytes() const;

    /** Monotonic counters since process start. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0; ///< shard drops

        /** Verified hits rejected by the grammar validator. */
        std::uint64_t validationBypasses = 0;
        std::uint64_t entries = 0;   ///< currently resident
        std::uint64_t bytes = 0;     ///< approximate resident bytes
        double
        hitRate() const
        {
            const std::uint64_t total = hits + misses;
            return total == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(total);
        }
    };
    Stats stats() const;

  private:
    struct Entry
    {
        FormatKind kind;
        FormatParams params;
        Index p = 0; ///< tile edge length of the key
        /** Canonical nonzero stream: hits are verified, never trusted. */
        std::vector<TileNonzero> key;
        std::shared_ptr<const EncodedTile> encoded;
        std::uint64_t bytes = 0;
    };

    struct Shard
    {
        mutable Mutex mutex{lock_rank::encodeCacheShard};
        std::unordered_map<std::uint64_t, std::vector<Entry>> table
            COPERNICUS_GUARDED_BY(mutex);
        std::uint64_t bytes COPERNICUS_GUARDED_BY(mutex) = 0;
        std::uint64_t entries COPERNICUS_GUARDED_BY(mutex) = 0;
    };

    static constexpr std::size_t shardCount = 16;

    std::vector<std::unique_ptr<Shard>> shards;
    std::atomic<bool> on{true};
    std::atomic<std::uint64_t> budget;
    mutable std::atomic<std::uint64_t> hits{0};
    mutable std::atomic<std::uint64_t> misses{0};
    mutable std::atomic<std::uint64_t> evictions{0};
    mutable std::atomic<std::uint64_t> validationBypasses{0};
};

/**
 * Shorthand used by the pipeline/scheduler hot paths: the global
 * cache's encode(), falling back to a fresh codec encode when the
 * cache is disabled.
 */
std::shared_ptr<const EncodedTile>
encodeCached(const FormatRegistry &registry, FormatKind kind,
             const Tile &tile);

/**
 * EncodeCache::global().stats() exported as a StatGroup named
 * "encode_cache", for --stats-json alongside the profile group.
 */
class EncodeCacheStats
{
  public:
    EncodeCacheStats();

    const StatGroup &group() const { return grp; }

  private:
    StatGroup grp;
    std::vector<std::unique_ptr<ScalarStat>> owned;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_ENCODE_CACHE_HH
