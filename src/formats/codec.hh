/**
 * @file
 * FormatCodec: encode/decode interface implemented once per format.
 */

#ifndef COPERNICUS_FORMATS_CODEC_HH
#define COPERNICUS_FORMATS_CODEC_HH

#include <memory>
#include <string_view>

#include "formats/encoded_tile.hh"
#include "matrix/tile.hh"

namespace copernicus {

/**
 * Lossless tile compressor/decompressor for one format.
 *
 * Invariant checked by the test suite for every codec:
 * decode(*encode(tile)) == tile for any tile, including all-zero ones.
 */
class FormatCodec
{
  public:
    virtual ~FormatCodec() = default;

    /** The format this codec implements. */
    virtual FormatKind kind() const = 0;

    /** Printable name, same as formatName(kind()). */
    std::string_view name() const { return formatName(kind()); }

    /** Compress @p tile. Never fails: every tile is representable. */
    virtual std::unique_ptr<EncodedTile> encode(const Tile &tile) const = 0;

    /**
     * Reconstruct the dense tile.
     *
     * @param encoded Must have been produced by this codec's encode();
     *        a kind() mismatch is a panic.
     */
    virtual Tile decode(const EncodedTile &encoded) const = 0;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_CODEC_HH
