#include "formats/lil_format.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
LilCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    // Height is the longest column plus one all-sentinel terminator row.
    const Index height = tile.maxColNnz() + 1;
    auto encoded = std::make_unique<LilEncoded>(p, tile.nnz(), height);
    for (Index c = 0; c < p; ++c) {
        Index level = 0;
        for (Index r = 0; r < p; ++r) {
            const Value v = tile(r, c);
            if (v != Value(0)) {
                encoded->valueAt(level, c) = v;
                encoded->rowAt(level, c) = r;
                ++level;
            }
        }
    }
    return encoded;
}

Tile
LilCodec::decode(const EncodedTile &encoded) const
{
    const auto &lil = encodedAs<LilEncoded>(encoded, FormatKind::LIL);
    const Index p = lil.tileSize();
    Tile tile(p);
    for (Index c = 0; c < p; ++c) {
        for (Index level = 0; level < lil.height(); ++level) {
            const Index row = lil.rowAt(level, c);
            if (row == LilEncoded::endMarker)
                break;
            tile(row, c) = lil.valueAt(level, c);
        }
    }
    return tile;
}

} // namespace copernicus
