#include "formats/lil_format.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
LilCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    // Height is the longest column plus one all-sentinel terminator row.
    const Index height = feat.maxColNnz + 1;
    auto encoded = std::make_unique<LilEncoded>(p, feat.nnz, height);
    // The row-major stream visits each column's rows in ascending
    // order, so per-column level counters reproduce the column scan.
    std::vector<Index> level(p, 0);
    for (const TileNonzero &e : nz) {
        const Index l = level[e.col]++;
        encoded->valueAt(l, e.col) = e.value;
        encoded->rowAt(l, e.col) = e.row;
    }
    return encoded;
}

Tile
LilCodec::decode(const EncodedTile &encoded) const
{
    const auto &lil = encodedAs<LilEncoded>(encoded, FormatKind::LIL);
    const Index p = lil.tileSize();
    Tile tile(p);
    for (Index c = 0; c < p; ++c) {
        for (Index level = 0; level < lil.height(); ++level) {
            const Index row = lil.rowAt(level, c);
            if (row == LilEncoded::endMarker)
                break;
            tile.cell(row, c) = lil.valueAt(level, c);
        }
    }
    return tile;
}

} // namespace copernicus
