#include "formats/lil_format.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
LilCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    // Height is the longest column plus one all-sentinel terminator row.
    const Index height = feat.maxColNnz + 1;
    auto encoded = std::make_unique<LilEncoded>(p, feat.nnz, height);
    // The row-major stream visits each column's rows in ascending
    // order, so per-column level counters reproduce the column scan.
    std::vector<Index> level(p, 0);
    for (const TileNonzero &e : nz) {
        const Index l = level[e.col]++;
        encoded->valueAt(l, e.col) = e.value;
        encoded->rowAt(l, e.col) = e.row;
    }
    return encoded;
}

std::vector<TypedStream>
LilEncoded::typedStreams() const
{
    TypedStream values{StreamClass::Value, "values", {}};
    TypedStream rows{StreamClass::Index, "rowInx", {}};
    // Column-major: each column's packed list, closed by one
    // end-marker entry (a zero value slot under the endMarker row).
    for (Index col = 0; col < tileSize(); ++col) {
        for (Index level = 0;; ++level) {
            const Index row = rowAt(level, col);
            if (row == endMarker) {
                const Value sentinel = Value(0);
                appendScalarBytes(values.bytes, &sentinel, 1);
                appendScalarBytes(rows.bytes, &row, 1);
                break;
            }
            const Value value = valueAt(level, col);
            appendScalarBytes(values.bytes, &value, 1);
            appendScalarBytes(rows.bytes, &row, 1);
        }
    }
    std::vector<TypedStream> out;
    out.push_back(std::move(values));
    out.push_back(std::move(rows));
    return out;
}

Tile
LilCodec::decode(const EncodedTile &encoded) const
{
    const auto &lil = encodedAs<LilEncoded>(encoded, FormatKind::LIL);
    const Index p = lil.tileSize();
    Tile tile(p);
    for (Index c = 0; c < p; ++c) {
        for (Index level = 0; level < lil.height(); ++level) {
            const Index row = lil.rowAt(level, c);
            if (row == LilEncoded::endMarker)
                break;
            tile.cell(row, c) = lil.valueAt(level, c);
        }
    }
    return tile;
}

} // namespace copernicus
