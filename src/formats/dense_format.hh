/**
 * @file
 * Dense "format": the uncompressed baseline of the characterization.
 *
 * All p*p values are transferred, zero or not; there is no metadata and
 * no decompression logic, so sigma is exactly 1 by Eq. 1.
 */

#ifndef COPERNICUS_FORMATS_DENSE_FORMAT_HH
#define COPERNICUS_FORMATS_DENSE_FORMAT_HH

#include "formats/codec.hh"

namespace copernicus {

/** Encoded form: the row-major values, nothing else. */
class DenseEncoded : public EncodedTile
{
  public:
    DenseEncoded(Index tileSize, Index nnz, std::vector<Value> values)
        : EncodedTile(tileSize, nnz), values(std::move(values))
    {}

    FormatKind kind() const override { return FormatKind::Dense; }

    std::vector<Bytes>
    streams() const override
    {
        return {Bytes(values.size()) * valueBytes};
    }

    std::vector<TypedStream>
    typedStreams() const override
    {
        return {scalarStream(StreamClass::Value, "values", values)};
    }

    /** Row-major p*p values including zeros. */
    std::vector<Value> values;
};

/** Codec for the dense baseline. */
class DenseCodec : public FormatCodec
{
  public:
    FormatKind kind() const override { return FormatKind::Dense; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_DENSE_FORMAT_HH
