/**
 * @file
 * Enumeration of the compression formats studied by Copernicus.
 *
 * The paper's seven formats (CSR, BCSR, CSC, COO, LIL, ELL, DIA) plus the
 * dense baseline form the core set; DOK, SELL, JDS and ELL+COO are the
 * variants Section 2 describes, implemented here as extensions.
 */

#ifndef COPERNICUS_FORMATS_FORMAT_KIND_HH
#define COPERNICUS_FORMATS_FORMAT_KIND_HH

#include <string_view>
#include <vector>

namespace copernicus {

/** Identifier for one sparse compression format. */
enum class FormatKind
{
    Dense, ///< uncompressed baseline
    CSR,   ///< compressed sparse row
    BCSR,  ///< block CSR with 4x4 blocks
    CSC,   ///< compressed sparse column
    COO,   ///< coordinate tuples
    DOK,   ///< dictionary of keys (hash of coordinate tuples)
    LIL,   ///< per-column lists pushed to the top (Fig. 1f)
    ELL,   ///< Ellpack with explicit padding
    SELL,  ///< sliced Ellpack (per-slice width)
    DIA,   ///< non-zero diagonals with diagonal-number headers
    JDS,   ///< jagged diagonal storage (row-sorted Ellpack)
    ELLCOO, ///< ELL of fixed width + COO overflow
    SELLCS, ///< SELL-C-sigma: SELL with windowed row sorting
    BITMAP, ///< occupancy bitmap + dense value list (SparTen/SMASH)
};

/** Printable name of @p kind ("CSR", "BCSR", ...). */
std::string_view formatName(FormatKind kind);

/**
 * Parse a format name (case-sensitive, as printed by formatName).
 *
 * Throws FatalError for unknown names.
 */
FormatKind parseFormatKind(std::string_view name);

/**
 * The eight formats characterized in the paper's figures:
 * Dense, CSR, BCSR, CSC, COO, LIL, ELL, DIA, in the paper's plot order.
 */
const std::vector<FormatKind> &paperFormats();

/** The seven sparse formats (paperFormats() without Dense). */
const std::vector<FormatKind> &sparseFormats();

/** Extension formats: DOK, SELL, JDS, ELLCOO, SELLCS, BITMAP. */
const std::vector<FormatKind> &extensionFormats();

/** All implemented formats (paper + extensions). */
const std::vector<FormatKind> &allFormats();

} // namespace copernicus

#endif // COPERNICUS_FORMATS_FORMAT_KIND_HH
