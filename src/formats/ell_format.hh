/**
 * @file
 * ELL codec (Section 2, Figure 1g; decompression Listing 5).
 *
 * Non-zeros are pushed to the left within each row and padded to a common
 * width. The paper fixes the compressed width at six; rows longer than
 * that cannot be represented at the fixed width, so the codec widens to
 * the longest row when necessary (width = max(min(6, p), maxRowNnz)),
 * which preserves losslessness while matching the paper's sizing for the
 * sparse workloads it studies.
 */

#ifndef COPERNICUS_FORMATS_ELL_FORMAT_HH
#define COPERNICUS_FORMATS_ELL_FORMAT_HH

#include "formats/codec.hh"

namespace copernicus {

/** ELL-encoded tile. */
class EllEncoded : public EncodedTile
{
  public:
    /** Column-index value marking a padding slot. */
    static constexpr Index padMarker = ~Index(0);

    EllEncoded(Index tileSize, Index nnz, Index width)
        : EncodedTile(tileSize, nnz), w(width),
          values(static_cast<std::size_t>(tileSize) * width, Value(0)),
          colInx(static_cast<std::size_t>(tileSize) * width, padMarker)
    {}

    FormatKind kind() const override { return FormatKind::ELL; }

    std::vector<Bytes>
    streams() const override
    {
        return {Bytes(values.size()) * valueBytes,
                Bytes(colInx.size()) * indexBytes};
    }

    std::vector<TypedStream>
    typedStreams() const override
    {
        return {scalarStream(StreamClass::Value, "values", values),
                scalarStream(StreamClass::Index, "colInx", colInx)};
    }

    /** Compressed row width (padding included). */
    Index width() const { return w; }

    Value &
    valueAt(Index row, Index slot)
    {
        return values[static_cast<std::size_t>(row) * w + slot];
    }

    Value
    valueAt(Index row, Index slot) const
    {
        return values[static_cast<std::size_t>(row) * w + slot];
    }

    Index &
    colAt(Index row, Index slot)
    {
        return colInx[static_cast<std::size_t>(row) * w + slot];
    }

    Index
    colAt(Index row, Index slot) const
    {
        return colInx[static_cast<std::size_t>(row) * w + slot];
    }

  private:
    Index w;

  public:
    /** p x width values, rows pushed left, zero-padded. */
    std::vector<Value> values;

    /** p x width column indices; padMarker pads short rows. */
    std::vector<Index> colInx;
};

/** Codec for ELL with a configurable minimum width (paper default 6). */
class EllCodec : public FormatCodec
{
  public:
    /** @param minWidth Compressed width floor (clamped to tile size). */
    explicit EllCodec(Index minWidth = 6);

    FormatKind kind() const override { return FormatKind::ELL; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;

    Index minWidth() const { return wMin; }

    /** Width this codec would use for @p tile. */
    Index widthFor(const Tile &tile) const;

  private:
    Index wMin;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_ELL_FORMAT_HH
