/**
 * @file
 * LIL codec (Section 2, Figure 1f; decompression Listing 4).
 *
 * Copernicus's LIL convention compresses the rows and preserves the
 * columns: within each column, non-zero entries are pushed to the top and
 * their row indices are recorded. Storage is two height x p arrays
 * (values and row indices), where height is the longest column's non-zero
 * count plus one sentinel row that marks the end of the lists — the
 * "additional row" whose transfer the paper charges to LIL's memory
 * latency.
 */

#ifndef COPERNICUS_FORMATS_LIL_FORMAT_HH
#define COPERNICUS_FORMATS_LIL_FORMAT_HH

#include "formats/codec.hh"

namespace copernicus {

/** LIL-encoded tile. */
class LilEncoded : public EncodedTile
{
  public:
    /** Row-index value marking a padded/terminated list slot. */
    static constexpr Index endMarker = ~Index(0);

    LilEncoded(Index tileSize, Index nnz, Index height)
        : EncodedTile(tileSize, nnz), h(height),
          values(static_cast<std::size_t>(height) * tileSize, Value(0)),
          rowInx(static_cast<std::size_t>(height) * tileSize, endMarker)
    {}

    FormatKind kind() const override { return FormatKind::LIL; }

    std::vector<Bytes>
    streams() const override
    {
        // The wire format is the compact column lists: one
        // (row-index, value) entry per non-zero plus one end-marker
        // entry per column — the paper's "number of non-zero rows, the
        // size of rows, and one additional row". The padded 2D arrays
        // exist only in BRAM.
        const Bytes entries = Bytes(_nnz) + p;
        return {entries * valueBytes, entries * indexBytes};
    }

    /**
     * The compact wire image: per column, the packed (value, row)
     * entries followed by one end-marker entry — the padded BRAM
     * arrays never cross the memory interface.
     */
    std::vector<TypedStream> typedStreams() const override;

    /** Stored rows: longest column + 1 sentinel row. */
    Index height() const { return h; }

    Value &
    valueAt(Index level, Index col)
    {
        return values[static_cast<std::size_t>(level) * p + col];
    }

    Value
    valueAt(Index level, Index col) const
    {
        return values[static_cast<std::size_t>(level) * p + col];
    }

    Index &
    rowAt(Index level, Index col)
    {
        return rowInx[static_cast<std::size_t>(level) * p + col];
    }

    Index
    rowAt(Index level, Index col) const
    {
        return rowInx[static_cast<std::size_t>(level) * p + col];
    }

  private:
    Index h;

  public:
    /** height x p values, column lists pushed to the top. */
    std::vector<Value> values;

    /** height x p row indices; endMarker pads exhausted lists. */
    std::vector<Index> rowInx;
};

/** Codec for LIL. */
class LilCodec : public FormatCodec
{
  public:
    FormatKind kind() const override { return FormatKind::LIL; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_LIL_FORMAT_HH
