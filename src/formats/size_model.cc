#include "formats/size_model.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/status.hh"

namespace copernicus {

TileShape
measureTile(const Tile &tile, const FormatParams &params)
{
    const TileStats &feat = tile.features();
    TileShape shape;
    shape.p = tile.size();
    shape.nnz = feat.nnz;
    shape.maxRowNnz = feat.maxRowNnz;
    shape.maxColNnz = feat.maxColNnz;
    shape.nnzDiagonals = feat.nnzDiagonals;

    const Index p = tile.size();
    const auto &nz = tile.nonzeros();
    const std::vector<Index> &row_nnz = feat.rowNnz;

    // Non-zero BCSR blocks: mark each nonzero's block in one pass.
    const Index b = params.bcsrBlock;
    if (p % b == 0) {
        const Index grid = p / b;
        std::vector<char> blockSet(static_cast<std::size_t>(grid) * grid,
                                   0);
        for (const TileNonzero &e : nz)
            blockSet[static_cast<std::size_t>(e.row / b) * grid +
                     e.col / b] = 1;
        for (const char set : blockSet)
            shape.nnzBlocks += set != 0;
    }

    // Per-slice widths, plain and window-sorted.
    const Index c = params.sellSlice;
    if (p % c == 0) {
        for (Index base = 0; base < p; base += c) {
            Index width = 0;
            for (Index r = base; r < base + c; ++r)
                width = std::max(width, row_nnz[r]);
            shape.sliceWidths.push_back(width);
        }
    }
    const Index sigma = params.sellCsWindow;
    if (p % c == 0 && sigma % c == 0 && p % sigma == 0) {
        std::vector<Index> sorted = row_nnz;
        for (Index base = 0; base < p; base += sigma) {
            std::sort(sorted.begin() + base,
                      sorted.begin() + base + sigma,
                      std::greater<>());
        }
        for (Index base = 0; base < p; base += c) {
            Index width = 0;
            for (Index r = base; r < base + c; ++r)
                width = std::max(width, sorted[r]);
            shape.sortedSliceWidths.push_back(width);
        }
    }

    // ELL+COO overflow.
    const Index hybrid_width = std::min(params.ellCooWidth, p);
    for (Index r = 0; r < p; ++r)
        if (row_nnz[r] > hybrid_width)
            shape.ellCooOverflow += row_nnz[r] - hybrid_width;

    return shape;
}

Bytes
predictedBytes(const TileShape &shape, FormatKind kind,
               const FormatParams &params)
{
    const Bytes p = shape.p;
    const Bytes nnz = shape.nnz;
    const Bytes entry = valueBytes + indexBytes;
    switch (kind) {
      case FormatKind::Dense:
        return p * p * valueBytes;
      case FormatKind::CSR:
      case FormatKind::CSC:
        return nnz * entry + p * indexBytes;
      case FormatKind::BCSR: {
        const Bytes b = params.bcsrBlock;
        return Bytes(shape.nnzBlocks) * (b * b * valueBytes +
                                         indexBytes) +
               (p / b) * indexBytes;
      }
      case FormatKind::COO:
      case FormatKind::DOK:
        return nnz * (valueBytes + 2 * indexBytes);
      case FormatKind::LIL:
        return (nnz + p) * entry;
      case FormatKind::ELL: {
        const Bytes width = std::max<Bytes>(
            std::min<Bytes>(params.ellMinWidth, p), shape.maxRowNnz);
        return p * width * entry;
      }
      case FormatKind::SELL: {
        Bytes total = Bytes(shape.sliceWidths.size()) * indexBytes;
        for (Index width : shape.sliceWidths)
            total += Bytes(params.sellSlice) * width * entry;
        return total;
      }
      case FormatKind::SELLCS: {
        Bytes total = Bytes(shape.sortedSliceWidths.size()) *
                          indexBytes +
                      p * indexBytes;
        for (Index width : shape.sortedSliceWidths)
            total += Bytes(params.sellSlice) * width * entry;
        return total;
      }
      case FormatKind::DIA:
        return Bytes(shape.nnzDiagonals) * (p + 1) * valueBytes;
      case FormatKind::JDS:
        return nnz * entry + p * indexBytes +
               (Bytes(shape.maxRowNnz) + 1) * indexBytes;
      case FormatKind::ELLCOO: {
        const Bytes width = std::min<Bytes>(params.ellCooWidth, p);
        return p * width * entry +
               Bytes(shape.ellCooOverflow) *
                   (valueBytes + 2 * indexBytes);
      }
      case FormatKind::BITMAP:
        return nnz * valueBytes + (p * p + 7) / 8;
    }
    panic("predictedBytes: unknown format kind");
}

StreamClassBytes
predictedStreamBytes(const TileShape &shape, FormatKind kind,
                     const FormatParams &params)
{
    const Bytes p = shape.p;
    const Bytes nnz = shape.nnz;
    StreamClassBytes out;
    switch (kind) {
      case FormatKind::Dense:
        out.value = p * p * valueBytes;
        return out;
      case FormatKind::CSR:
      case FormatKind::CSC:
        out.value = nnz * valueBytes;
        out.index = nnz * indexBytes;
        out.offset = p * indexBytes;
        return out;
      case FormatKind::BCSR: {
        const Bytes b = params.bcsrBlock;
        out.value = Bytes(shape.nnzBlocks) * b * b * valueBytes;
        out.index = Bytes(shape.nnzBlocks) * indexBytes;
        out.offset = (p / b) * indexBytes;
        return out;
      }
      case FormatKind::COO:
      case FormatKind::DOK:
        out.value = nnz * valueBytes;
        out.index = nnz * 2 * indexBytes;
        return out;
      case FormatKind::LIL:
        // One sentinel entry closes each column's packed list.
        out.value = (nnz + p) * valueBytes;
        out.index = (nnz + p) * indexBytes;
        return out;
      case FormatKind::ELL: {
        const Bytes width = std::max<Bytes>(
            std::min<Bytes>(params.ellMinWidth, p), shape.maxRowNnz);
        out.value = p * width * valueBytes;
        out.index = p * width * indexBytes;
        return out;
      }
      case FormatKind::SELL: {
        Bytes slots = 0;
        for (Index width : shape.sliceWidths)
            slots += Bytes(params.sellSlice) * width;
        out.value = slots * valueBytes;
        out.index = slots * indexBytes;
        out.offset = Bytes(shape.sliceWidths.size()) * indexBytes;
        return out;
      }
      case FormatKind::SELLCS: {
        Bytes slots = 0;
        for (Index width : shape.sortedSliceWidths)
            slots += Bytes(params.sellSlice) * width;
        out.value = slots * valueBytes;
        // colInx plus the row permutation.
        out.index = slots * indexBytes + p * indexBytes;
        out.offset = Bytes(shape.sortedSliceWidths.size()) * indexBytes;
        return out;
      }
      case FormatKind::DIA:
        out.value = Bytes(shape.nnzDiagonals) * p * valueBytes;
        // One 32-bit diagonal number per diagonal.
        out.offset = Bytes(shape.nnzDiagonals) * valueBytes;
        return out;
      case FormatKind::JDS:
        out.value = nnz * valueBytes;
        // colInx plus the row permutation.
        out.index = (nnz + p) * indexBytes;
        out.offset = (Bytes(shape.maxRowNnz) + 1) * indexBytes;
        return out;
      case FormatKind::ELLCOO: {
        const Bytes width = std::min<Bytes>(params.ellCooWidth, p);
        const Bytes overflow = shape.ellCooOverflow;
        out.value = (p * width + overflow) * valueBytes;
        out.index = p * width * indexBytes +
                    overflow * 2 * indexBytes;
        return out;
      }
      case FormatKind::BITMAP:
        out.value = nnz * valueBytes;
        out.index = (p * p + 7) / 8;
        return out;
    }
    panic("predictedStreamBytes: unknown format kind");
}

Bytes
predictedCompressedBytes(const TileShape &shape, FormatKind kind,
                         const StreamClassRatios &ratios,
                         const FormatParams &params)
{
    const StreamClassBytes raw = predictedStreamBytes(shape, kind,
                                                      params);
    const auto scale = [](Bytes bytes, double ratio) {
        const double scaled = static_cast<double>(bytes) * ratio;
        return scaled <= 0.0 ? Bytes(0)
                             : Bytes(std::llround(scaled));
    };
    return scale(raw.value, ratios.value) +
           scale(raw.index, ratios.index) +
           scale(raw.offset, ratios.offset);
}

double
predictedUtilization(const TileShape &shape, FormatKind kind,
                     const FormatParams &params)
{
    const Bytes total = predictedBytes(shape, kind, params);
    return total == 0
               ? 0.0
               : static_cast<double>(Bytes(shape.nnz) * valueBytes) /
                     static_cast<double>(total);
}

} // namespace copernicus
