#include "formats/size_model.hh"

#include <algorithm>
#include <functional>

#include "common/status.hh"

namespace copernicus {

TileShape
measureTile(const Tile &tile, const FormatParams &params)
{
    const TileStats &feat = tile.features();
    TileShape shape;
    shape.p = tile.size();
    shape.nnz = feat.nnz;
    shape.maxRowNnz = feat.maxRowNnz;
    shape.maxColNnz = feat.maxColNnz;
    shape.nnzDiagonals = feat.nnzDiagonals;

    const Index p = tile.size();
    const auto &nz = tile.nonzeros();
    const std::vector<Index> &row_nnz = feat.rowNnz;

    // Non-zero BCSR blocks: mark each nonzero's block in one pass.
    const Index b = params.bcsrBlock;
    if (p % b == 0) {
        const Index grid = p / b;
        std::vector<char> blockSet(static_cast<std::size_t>(grid) * grid,
                                   0);
        for (const TileNonzero &e : nz)
            blockSet[static_cast<std::size_t>(e.row / b) * grid +
                     e.col / b] = 1;
        for (const char set : blockSet)
            shape.nnzBlocks += set != 0;
    }

    // Per-slice widths, plain and window-sorted.
    const Index c = params.sellSlice;
    if (p % c == 0) {
        for (Index base = 0; base < p; base += c) {
            Index width = 0;
            for (Index r = base; r < base + c; ++r)
                width = std::max(width, row_nnz[r]);
            shape.sliceWidths.push_back(width);
        }
    }
    const Index sigma = params.sellCsWindow;
    if (p % c == 0 && sigma % c == 0 && p % sigma == 0) {
        std::vector<Index> sorted = row_nnz;
        for (Index base = 0; base < p; base += sigma) {
            std::sort(sorted.begin() + base,
                      sorted.begin() + base + sigma,
                      std::greater<>());
        }
        for (Index base = 0; base < p; base += c) {
            Index width = 0;
            for (Index r = base; r < base + c; ++r)
                width = std::max(width, sorted[r]);
            shape.sortedSliceWidths.push_back(width);
        }
    }

    // ELL+COO overflow.
    const Index hybrid_width = std::min(params.ellCooWidth, p);
    for (Index r = 0; r < p; ++r)
        if (row_nnz[r] > hybrid_width)
            shape.ellCooOverflow += row_nnz[r] - hybrid_width;

    return shape;
}

Bytes
predictedBytes(const TileShape &shape, FormatKind kind,
               const FormatParams &params)
{
    const Bytes p = shape.p;
    const Bytes nnz = shape.nnz;
    const Bytes entry = valueBytes + indexBytes;
    switch (kind) {
      case FormatKind::Dense:
        return p * p * valueBytes;
      case FormatKind::CSR:
      case FormatKind::CSC:
        return nnz * entry + p * indexBytes;
      case FormatKind::BCSR: {
        const Bytes b = params.bcsrBlock;
        return Bytes(shape.nnzBlocks) * (b * b * valueBytes +
                                         indexBytes) +
               (p / b) * indexBytes;
      }
      case FormatKind::COO:
      case FormatKind::DOK:
        return nnz * (valueBytes + 2 * indexBytes);
      case FormatKind::LIL:
        return (nnz + p) * entry;
      case FormatKind::ELL: {
        const Bytes width = std::max<Bytes>(
            std::min<Bytes>(params.ellMinWidth, p), shape.maxRowNnz);
        return p * width * entry;
      }
      case FormatKind::SELL: {
        Bytes total = Bytes(shape.sliceWidths.size()) * indexBytes;
        for (Index width : shape.sliceWidths)
            total += Bytes(params.sellSlice) * width * entry;
        return total;
      }
      case FormatKind::SELLCS: {
        Bytes total = Bytes(shape.sortedSliceWidths.size()) *
                          indexBytes +
                      p * indexBytes;
        for (Index width : shape.sortedSliceWidths)
            total += Bytes(params.sellSlice) * width * entry;
        return total;
      }
      case FormatKind::DIA:
        return Bytes(shape.nnzDiagonals) * (p + 1) * valueBytes;
      case FormatKind::JDS:
        return nnz * entry + p * indexBytes +
               (Bytes(shape.maxRowNnz) + 1) * indexBytes;
      case FormatKind::ELLCOO: {
        const Bytes width = std::min<Bytes>(params.ellCooWidth, p);
        return p * width * entry +
               Bytes(shape.ellCooOverflow) *
                   (valueBytes + 2 * indexBytes);
      }
      case FormatKind::BITMAP:
        return nnz * valueBytes + (p * p + 7) / 8;
    }
    panic("predictedBytes: unknown format kind");
}

double
predictedUtilization(const TileShape &shape, FormatKind kind,
                     const FormatParams &params)
{
    const Bytes total = predictedBytes(shape, kind, params);
    return total == 0
               ? 0.0
               : static_cast<double>(Bytes(shape.nnz) * valueBytes) /
                     static_cast<double>(total);
}

} // namespace copernicus
