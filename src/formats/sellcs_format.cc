#include "formats/sellcs_format.hh"

#include <algorithm>
#include <numeric>

#include "common/status.hh"

namespace copernicus {

SellCsCodec::SellCsCodec(Index sliceHeight, Index window)
    : c(sliceHeight), sigma(window)
{
    fatalIf(sliceHeight == 0, "SELL-C-sigma slice height must be > 0");
    fatalIf(window == 0 || window % sliceHeight != 0,
            "SELL-C-sigma window must be a multiple of the slice "
            "height");
}

std::unique_ptr<EncodedTile>
SellCsCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    fatalIf(p % sigma != 0,
            "SELL-C-sigma window must divide the tile size");
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    auto encoded = std::make_unique<SellCsEncoded>(p, feat.nnz, c,
                                                   sigma);

    // Sort rows by descending length within each sigma window; stable
    // keeps ties in original order so the permutation is deterministic.
    const std::vector<Index> &row_nnz = feat.rowNnz;
    encoded->perm.resize(p);
    std::iota(encoded->perm.begin(), encoded->perm.end(), Index(0));
    for (Index base = 0; base < p; base += sigma) {
        std::stable_sort(encoded->perm.begin() + base,
                         encoded->perm.begin() + base + sigma,
                         [&](Index a, Index b) {
                             return row_nnz[a] > row_nnz[b];
                         });
    }

    // Sliced ELL over the permuted row order; rowStart hands each
    // permuted row its nonzero run directly.
    encoded->slices.reserve(p / c);
    for (Index base = 0; base < p; base += c) {
        SellSlice slice;
        for (Index k = base; k < base + c; ++k)
            slice.width = std::max(slice.width,
                                   row_nnz[encoded->perm[k]]);
        slice.values.assign(static_cast<std::size_t>(c) * slice.width,
                            Value(0));
        slice.colInx.assign(static_cast<std::size_t>(c) * slice.width,
                            SellCsEncoded::padMarker);
        for (Index k = 0; k < c; ++k) {
            const Index row = encoded->perm[base + k];
            for (Index i = feat.rowStart[row];
                 i < feat.rowStart[row + 1]; ++i) {
                const auto at = static_cast<std::size_t>(k) *
                                slice.width + (i - feat.rowStart[row]);
                slice.values[at] = nz[i].value;
                slice.colInx[at] = nz[i].col;
            }
        }
        encoded->slices.push_back(std::move(slice));
    }
    return encoded;
}

Tile
SellCsCodec::decode(const EncodedTile &encoded) const
{
    const auto &scs = encodedAs<SellCsEncoded>(encoded,
                                               FormatKind::SELLCS);
    const Index p = scs.tileSize();
    const Index height = scs.sliceHeight();
    Tile tile(p);
    for (std::size_t s = 0; s < scs.slices.size(); ++s) {
        const auto &slice = scs.slices[s];
        const Index base = static_cast<Index>(s) * height;
        for (Index k = 0; k < height; ++k) {
            const Index row = scs.perm[base + k];
            for (Index slot = 0; slot < slice.width; ++slot) {
                const auto at = static_cast<std::size_t>(k) *
                                slice.width + slot;
                const Index col = slice.colInx[at];
                if (col == SellCsEncoded::padMarker)
                    break;
                tile.cell(row, col) = slice.values[at];
            }
        }
    }
    return tile;
}

} // namespace copernicus
