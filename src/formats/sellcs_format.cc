#include "formats/sellcs_format.hh"

#include <algorithm>

#include "common/arena.hh"
#include "common/status.hh"

namespace copernicus {

SellCsCodec::SellCsCodec(Index sliceHeight, Index window)
    : c(sliceHeight), sigma(window)
{
    fatalIf(sliceHeight == 0, "SELL-C-sigma slice height must be > 0");
    fatalIf(window == 0 || window % sliceHeight != 0,
            "SELL-C-sigma window must be a multiple of the slice "
            "height");
}

std::unique_ptr<EncodedTile>
SellCsCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    fatalIf(p % sigma != 0,
            "SELL-C-sigma window must divide the tile size");
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    auto encoded = std::make_unique<SellCsEncoded>(p, feat.nnz, c,
                                                   sigma);

    Arena &arena = encodeArena();
    const ArenaScope scope(arena);

    // Per-window descending counting sort over the row lengths —
    // stable (ties keep original order), allocation-free, and the
    // exact permutation std::stable_sort produced before.
    const std::vector<Index> &row_nnz = feat.rowNnz;
    encoded->perm.resize(p);
    Index *perm = encoded->perm.data();
    Index *start = arena.alloc<Index>(static_cast<std::size_t>(p) + 2);
    for (Index base = 0; base < p; base += sigma) {
        std::fill(start, start + p + 2, Index(0));
        for (Index k = base; k < base + sigma; ++k)
            ++start[row_nnz[k] + 1];
        // start[len] = first slot for key len, longest first:
        // suffix-sum the counts from the top of the key domain down.
        Index running = 0;
        for (Index len = p;; --len) {
            const Index count = start[len + 1];
            start[len + 1] = running;
            running += count;
            if (len == 0)
                break;
        }
        for (Index k = base; k < base + sigma; ++k)
            perm[base + start[row_nnz[k] + 1]++] = k;
    }

    // Sliced ELL over the permuted rows. sigma is a multiple of C, so
    // every slice lies inside one sorted window and its width is the
    // length of its first (longest) row; each row's nonzero run
    // scatters flat off the canonical view via rowStart.
    const TileNonzero *entries = nz.data();
    encoded->slices.reserve(p / c);
    for (Index base = 0; base < p; base += c) {
        SellSlice slice;
        slice.width = row_nnz[perm[base]];
        slice.values.assign(static_cast<std::size_t>(c) * slice.width,
                            Value(0));
        slice.colInx.assign(static_cast<std::size_t>(c) * slice.width,
                            SellCsEncoded::padMarker);
        Value *vals = slice.values.data();
        Index *cols = slice.colInx.data();
        for (Index k = 0; k < c; ++k) {
            const Index row = perm[base + k];
            const TileNonzero *run = entries + feat.rowStart[row];
            const Index len = row_nnz[row];
            Value *vrow = vals + static_cast<std::size_t>(k) * slice.width;
            Index *crow = cols + static_cast<std::size_t>(k) * slice.width;
            for (Index i = 0; i < len; ++i) {
                vrow[i] = run[i].value;
                crow[i] = run[i].col;
            }
        }
        encoded->slices.push_back(std::move(slice));
    }
    return encoded;
}

Tile
SellCsCodec::decode(const EncodedTile &encoded) const
{
    const auto &scs = encodedAs<SellCsEncoded>(encoded,
                                               FormatKind::SELLCS);
    const Index p = scs.tileSize();
    const Index height = scs.sliceHeight();
    Tile tile(p);
    for (std::size_t s = 0; s < scs.slices.size(); ++s) {
        const auto &slice = scs.slices[s];
        const Index base = static_cast<Index>(s) * height;
        for (Index k = 0; k < height; ++k) {
            const Index row = scs.perm[base + k];
            for (Index slot = 0; slot < slice.width; ++slot) {
                const auto at = static_cast<std::size_t>(k) *
                                slice.width + slot;
                const Index col = slice.colInx[at];
                if (col == SellCsEncoded::padMarker)
                    break;
                tile.cell(row, col) = slice.values[at];
            }
        }
    }
    return tile;
}

} // namespace copernicus
