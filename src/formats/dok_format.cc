#include "formats/dok_format.hh"

#include <algorithm>

namespace copernicus {

std::unique_ptr<EncodedTile>
DokCodec::encode(const Tile &tile) const
{
    const auto &nz = tile.nonzeros();
    auto encoded = std::make_unique<DokEncoded>(tile.size(), tile.nnz());
    encoded->table.reserve(nz.size());
    for (const TileNonzero &e : nz)
        encoded->table.emplace(DokEncoded::key(e.row, e.col), e.value);
    return encoded;
}

std::vector<TypedStream>
DokEncoded::typedStreams() const
{
    // Sorted (row, col) order: the packed key sorts row-major, so one
    // sort of the keys yields the canonical COO ordering.
    std::vector<std::uint64_t> keys;
    keys.reserve(table.size());
    for (const auto &[key, value] : table)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());

    TypedStream values{StreamClass::Value, "values", {}};
    TypedStream rows{StreamClass::Index, "rowInx", {}};
    TypedStream cols{StreamClass::Index, "colInx", {}};
    for (const std::uint64_t key : keys) {
        const Index row = static_cast<Index>(key >> 32);
        const Index col = static_cast<Index>(key & 0xffffffffULL);
        const Value value = table.at(key);
        appendScalarBytes(values.bytes, &value, 1);
        appendScalarBytes(rows.bytes, &row, 1);
        appendScalarBytes(cols.bytes, &col, 1);
    }
    std::vector<TypedStream> out;
    out.push_back(std::move(values));
    out.push_back(std::move(rows));
    out.push_back(std::move(cols));
    return out;
}

Tile
DokCodec::decode(const EncodedTile &encoded) const
{
    const auto &dok = encodedAs<DokEncoded>(encoded, FormatKind::DOK);
    Tile tile(dok.tileSize());
    for (const auto &[key, value] : dok.table) {
        const Index row = static_cast<Index>(key >> 32);
        const Index col = static_cast<Index>(key & 0xffffffffULL);
        tile.cell(row, col) = value;
    }
    return tile;
}

} // namespace copernicus
