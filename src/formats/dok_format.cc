#include "formats/dok_format.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
DokCodec::encode(const Tile &tile) const
{
    const auto &nz = tile.nonzeros();
    auto encoded = std::make_unique<DokEncoded>(tile.size(), tile.nnz());
    encoded->table.reserve(nz.size());
    for (const TileNonzero &e : nz)
        encoded->table.emplace(DokEncoded::key(e.row, e.col), e.value);
    return encoded;
}

Tile
DokCodec::decode(const EncodedTile &encoded) const
{
    const auto &dok = encodedAs<DokEncoded>(encoded, FormatKind::DOK);
    Tile tile(dok.tileSize());
    for (const auto &[key, value] : dok.table) {
        const Index row = static_cast<Index>(key >> 32);
        const Index col = static_cast<Index>(key & 0xffffffffULL);
        tile.cell(row, col) = value;
    }
    return tile;
}

} // namespace copernicus
