#include "formats/dok_format.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
DokCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    auto encoded = std::make_unique<DokEncoded>(p, tile.nnz());
    for (Index r = 0; r < p; ++r) {
        for (Index c = 0; c < p; ++c) {
            const Value v = tile(r, c);
            if (v != Value(0))
                encoded->table.emplace(DokEncoded::key(r, c), v);
        }
    }
    return encoded;
}

Tile
DokCodec::decode(const EncodedTile &encoded) const
{
    const auto &dok = encodedAs<DokEncoded>(encoded, FormatKind::DOK);
    Tile tile(dok.tileSize());
    for (const auto &[key, value] : dok.table) {
        const Index row = static_cast<Index>(key >> 32);
        const Index col = static_cast<Index>(key & 0xffffffffULL);
        tile(row, col) = value;
    }
    return tile;
}

} // namespace copernicus
