#include "formats/validate.hh"

#include <atomic>
#include <cstdlib>
#include <span>

#include "formats/bcsr_format.hh"
#include "formats/bitmap_format.hh"
#include "formats/coo_format.hh"
#include "formats/csc_format.hh"
#include "formats/csr_format.hh"
#include "formats/dense_format.hh"
#include "formats/dia_format.hh"
#include "formats/dok_format.hh"
#include "formats/ell_format.hh"
#include "formats/ellcoo_format.hh"
#include "formats/jds_format.hh"
#include "formats/lil_format.hh"
#include "formats/sell_format.hh"
#include "formats/sellcs_format.hh"

namespace copernicus {

std::string
GrammarViolation::toString() const
{
    return "[" + std::string(formatName(format)) + "] " + invariant +
           ": " + detail;
}

std::string
GrammarReport::toString() const
{
    std::string out;
    for (const GrammarViolation &v : violations) {
        out += v.toString();
        out += '\n';
    }
    return out;
}

namespace {

/** Collects violations for one tile; all checkers append through it. */
class Checker
{
  public:
    explicit Checker(FormatKind kind) : kind(kind) {}

    void
    fail(const std::string &invariant, const std::string &detail)
    {
        report.violations.push_back({kind, invariant, detail});
    }

    /** Record a violation unless @p condition holds. */
    void
    require(bool condition, const std::string &invariant,
            const std::string &detail)
    {
        if (!condition)
            fail(invariant, detail);
    }

    GrammarReport report;

  private:
    FormatKind kind;
};

std::string
at(std::size_t i)
{
    return "at position " + std::to_string(i);
}

/** offsets must be non-decreasing cumulative counts ending at total. */
void
checkOffsets(Checker &chk, const std::vector<Index> &offsets,
             std::size_t expectedLen, std::size_t total,
             const std::string &prefix)
{
    chk.require(offsets.size() == expectedLen, prefix + ".length",
                "expected " + std::to_string(expectedLen) +
                    " offsets, found " + std::to_string(offsets.size()));
    if (offsets.size() != expectedLen)
        return;
    Index prev = 0;
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        if (offsets[i] < prev) {
            chk.fail(prefix + ".monotone",
                     "offset decreases from " + std::to_string(prev) +
                         " to " + std::to_string(offsets[i]) + " " +
                         at(i));
            return;
        }
        prev = offsets[i];
    }
    chk.require(!offsets.empty() && offsets.back() == total,
                prefix + ".total",
                "final offset " +
                    std::to_string(offsets.empty() ? 0 : offsets.back()) +
                    " does not cover the " + std::to_string(total) +
                    " stored entries");
}

void
checkCsr(Checker &chk, const CsrEncoded &csr)
{
    const Index p = csr.tileSize();
    chk.require(csr.colInx.size() == csr.values.size(),
                "csr.arrays.length",
                "colInx/values length mismatch");
    chk.require(csr.values.size() == csr.nnz(), "csr.nnz",
                "stored " + std::to_string(csr.values.size()) +
                    " values for nnz " + std::to_string(csr.nnz()));
    checkOffsets(chk, csr.offsets, p, csr.values.size(), "csr.offsets");
    if (!chk.report.ok())
        return;
    for (Index r = 0; r < p; ++r) {
        Index prevCol = 0;
        bool first = true;
        for (Index i = csr.rowStart(r); i < csr.rowEnd(r); ++i) {
            const Index col = csr.colInx[i];
            chk.require(col < p, "csr.col.range",
                        "column " + std::to_string(col) + " in row " +
                            std::to_string(r) + " exceeds p");
            chk.require(first || col > prevCol, "csr.col.sorted",
                        "row " + std::to_string(r) +
                            " columns not strictly ascending " + at(i));
            prevCol = col;
            first = false;
        }
    }
}

void
checkCsc(Checker &chk, const CscEncoded &csc)
{
    const Index p = csc.tileSize();
    chk.require(csc.rowInx.size() == csc.values.size(),
                "csc.arrays.length",
                "rowInx/values length mismatch");
    chk.require(csc.values.size() == csc.nnz(), "csc.nnz",
                "stored " + std::to_string(csc.values.size()) +
                    " values for nnz " + std::to_string(csc.nnz()));
    checkOffsets(chk, csc.offsets, p, csc.values.size(), "csc.offsets");
    if (!chk.report.ok())
        return;
    for (Index c = 0; c < p; ++c) {
        Index prevRow = 0;
        bool first = true;
        for (Index i = csc.colStart(c); i < csc.colEnd(c); ++i) {
            const Index row = csc.rowInx[i];
            chk.require(row < p, "csc.row.range",
                        "row " + std::to_string(row) + " in column " +
                            std::to_string(c) + " exceeds p");
            chk.require(first || row > prevRow, "csc.row.sorted",
                        "column " + std::to_string(c) +
                            " rows not strictly ascending " + at(i));
            prevRow = row;
            first = false;
        }
    }
}

void
checkCoo(Checker &chk, const CooEncoded &coo)
{
    const Index p = coo.tileSize();
    chk.require(coo.rowInx.size() == coo.values.size() &&
                    coo.colInx.size() == coo.values.size(),
                "coo.arrays.length",
                "row/col/value arrays differ in length");
    chk.require(coo.values.size() == coo.nnz(), "coo.nnz",
                "stored " + std::to_string(coo.values.size()) +
                    " tuples for nnz " + std::to_string(coo.nnz()));
    if (!chk.report.ok())
        return;
    for (std::size_t i = 0; i < coo.values.size(); ++i) {
        chk.require(coo.rowInx[i] < p && coo.colInx[i] < p, "coo.range",
                    "tuple (" + std::to_string(coo.rowInx[i]) + ", " +
                        std::to_string(coo.colInx[i]) + ") exceeds p " +
                        at(i));
        if (i == 0)
            continue;
        const bool ascending =
            coo.rowInx[i] > coo.rowInx[i - 1] ||
            (coo.rowInx[i] == coo.rowInx[i - 1] &&
             coo.colInx[i] > coo.colInx[i - 1]);
        chk.require(ascending, "coo.order",
                    "tuples not sorted row-major (or duplicated) " +
                        at(i));
    }
}

void
checkBcsr(Checker &chk, const BcsrEncoded &bcsr)
{
    const Index p = bcsr.tileSize();
    const Index b = bcsr.blockSize();
    chk.require(b > 0 && p % b == 0, "bcsr.block.divides",
                "block size " + std::to_string(b) +
                    " does not divide tile size " + std::to_string(p));
    if (b == 0 || p % b != 0)
        return;
    chk.require(bcsr.colInx.size() == bcsr.values.size(),
                "bcsr.arrays.length",
                "colInx/values block-count mismatch");
    checkOffsets(chk, bcsr.offsets, p / b, bcsr.values.size(),
                 "bcsr.offsets");
    for (std::size_t i = 0; i < bcsr.values.size(); ++i)
        chk.require(bcsr.values[i].size() ==
                        static_cast<std::size_t>(b) * b,
                    "bcsr.block.shape",
                    "block " + at(i) + " holds " +
                        std::to_string(bcsr.values[i].size()) +
                        " values, expected " + std::to_string(b * b));
    if (!chk.report.ok())
        return;
    for (Index br = 0; br < p / b; ++br) {
        Index prevCol = 0;
        bool first = true;
        for (Index i = bcsr.blockRowStart(br); i < bcsr.blockRowEnd(br);
             ++i) {
            const Index col = bcsr.colInx[i];
            chk.require(col < p && col % b == 0, "bcsr.block.alignment",
                        "block column " + std::to_string(col) +
                            " is not a multiple of " + std::to_string(b) +
                            " inside the tile");
            chk.require(first || col > prevCol, "bcsr.block.sorted",
                        "block-row " + std::to_string(br) +
                            " blocks not strictly ascending " + at(i));
            prevCol = col;
            first = false;
        }
    }
}

/**
 * One ELL-shaped plane: rows left-pushed, clean padding, in-range and
 * ascending columns. Shared by ELL, SELL slices, SELL-C-sigma slices
 * and the ELL part of the hybrid. Returns the non-pad entry count.
 */
std::size_t
checkEllPlane(Checker &chk, const std::vector<Value> &values,
              const std::vector<Index> &colInx, Index rows, Index width,
              Index p, const std::string &prefix, const std::string &where)
{
    const std::size_t cells = static_cast<std::size_t>(rows) * width;
    chk.require(values.size() == cells && colInx.size() == cells,
                prefix + ".shape",
                where + " stores " + std::to_string(values.size()) +
                    " values / " + std::to_string(colInx.size()) +
                    " columns, expected " + std::to_string(cells));
    if (values.size() != cells || colInx.size() != cells)
        return 0;
    std::size_t entries = 0;
    for (Index r = 0; r < rows; ++r) {
        bool padded = false;
        Index prevCol = 0;
        bool first = true;
        for (Index s = 0; s < width; ++s) {
            const std::size_t cell =
                static_cast<std::size_t>(r) * width + s;
            const Index col = colInx[cell];
            if (col == EllEncoded::padMarker) {
                padded = true;
                chk.require(values[cell] == Value(0), prefix + ".padding",
                            where + " row " + std::to_string(r) +
                                " carries a non-zero value in padding "
                                "slot " +
                                std::to_string(s));
                continue;
            }
            ++entries;
            chk.require(!padded, prefix + ".padding",
                        where + " row " + std::to_string(r) +
                            " has an entry after padding at slot " +
                            std::to_string(s) + " (not left-pushed)");
            chk.require(col < p, prefix + ".col.range",
                        where + " row " + std::to_string(r) +
                            " column " + std::to_string(col) +
                            " exceeds p");
            chk.require(first || col > prevCol, prefix + ".col.sorted",
                        where + " row " + std::to_string(r) +
                            " columns not strictly ascending at slot " +
                            std::to_string(s));
            prevCol = col;
            first = false;
        }
    }
    return entries;
}

void
checkEll(Checker &chk, const EllEncoded &ell)
{
    const std::size_t entries =
        checkEllPlane(chk, ell.values, ell.colInx, ell.tileSize(),
                      ell.width(), ell.tileSize(), "ell", "tile");
    if (chk.report.ok())
        chk.require(entries == ell.nnz(), "ell.nnz",
                    std::to_string(entries) +
                        " stored entries for nnz " +
                        std::to_string(ell.nnz()));
}

/** Slice checks shared by SELL and SELL-C-sigma. */
void
checkSlices(Checker &chk, const std::vector<SellSlice> &slices, Index p,
            Index sliceHeight, Index nnz, const std::string &prefix)
{
    chk.require(sliceHeight > 0 && p % sliceHeight == 0,
                prefix + ".slice.divides",
                "slice height " + std::to_string(sliceHeight) +
                    " does not divide tile size " + std::to_string(p));
    if (sliceHeight == 0 || p % sliceHeight != 0)
        return;
    chk.require(slices.size() == p / sliceHeight,
                prefix + ".slices.count",
                "expected " + std::to_string(p / sliceHeight) +
                    " slices, found " + std::to_string(slices.size()));
    std::size_t entries = 0;
    for (std::size_t s = 0; s < slices.size(); ++s)
        entries += checkEllPlane(chk, slices[s].values, slices[s].colInx,
                                 sliceHeight, slices[s].width, p, prefix,
                                 "slice " + std::to_string(s));
    if (chk.report.ok())
        chk.require(entries == nnz, prefix + ".nnz",
                    std::to_string(entries) + " stored entries for nnz " +
                        std::to_string(nnz));
}

/** @p perm must be a permutation of 0..p-1. */
void
checkPermutation(Checker &chk, std::span<const Index> perm, Index p,
                 const std::string &invariant)
{
    chk.require(perm.size() == p, invariant,
                "permutation has " + std::to_string(perm.size()) +
                    " entries for tile size " + std::to_string(p));
    if (perm.size() != p)
        return;
    std::vector<bool> seen(p, false);
    for (std::size_t i = 0; i < perm.size(); ++i) {
        if (perm[i] >= p || seen[perm[i]]) {
            chk.fail(invariant, "entry " + std::to_string(perm[i]) +
                                    " " + at(i) +
                                    " is out of range or repeated");
            return;
        }
        seen[perm[i]] = true;
    }
}

void
checkDia(Checker &chk, const DiaEncoded &dia)
{
    const Index p = dia.tileSize();
    const auto bound = static_cast<std::int32_t>(p) - 1;
    bool first = true;
    std::int32_t prev = 0;
    std::size_t entries = 0;
    for (std::size_t i = 0; i < dia.diagonals.size(); ++i) {
        const DiaDiagonal &diag = dia.diagonals[i];
        chk.require(diag.number >= -bound && diag.number <= bound,
                    "dia.offset.range",
                    "diagonal number " + std::to_string(diag.number) +
                        " outside [-" + std::to_string(bound) + ", " +
                        std::to_string(bound) + "]");
        chk.require(first || diag.number > prev, "dia.order",
                    "diagonals not strictly ascending " + at(i));
        prev = diag.number;
        first = false;
        chk.require(diag.values.size() == p, "dia.shape",
                    "diagonal " + std::to_string(diag.number) +
                        " stores " + std::to_string(diag.values.size()) +
                        " slots, expected p = " + std::to_string(p));
        if (diag.values.size() != p)
            continue;
        // An out-of-range offset has no valid slots at all; the range
        // failure is already reported and p - |d| would wrap.
        const auto magnitude = static_cast<Index>(
            diag.number < 0 ? -diag.number : diag.number);
        if (magnitude >= p)
            continue;
        // Valid slots run 0..p-|d|-1; the tail is Listing 7's padding.
        const Index len = p - magnitude;
        bool any = false;
        for (Index s = 0; s < p; ++s) {
            if (s >= len)
                chk.require(diag.values[s] == Value(0), "dia.padding",
                            "diagonal " + std::to_string(diag.number) +
                                " has a value in padding slot " +
                                std::to_string(s));
            else if (diag.values[s] != Value(0))
                any = true;
        }
        for (Index s = 0; s < len; ++s)
            entries += diag.values[s] != Value(0);
        chk.require(any, "dia.nonempty",
                    "diagonal " + std::to_string(diag.number) +
                        " stores no non-zero");
    }
    if (chk.report.ok())
        chk.require(entries == dia.nnz(), "dia.nnz",
                    std::to_string(entries) + " stored non-zeros for "
                        "nnz " + std::to_string(dia.nnz()));
}

void
checkJds(Checker &chk, const JdsEncoded &jds)
{
    const Index p = jds.tileSize();
    const std::span<const Index> jdPtr = jds.jdPtr();
    const std::span<const Index> colInx = jds.colInx();
    checkPermutation(chk, jds.perm(), p, "jds.perm");
    chk.require(colInx.size() == jds.values.size(),
                "jds.arrays.length", "colInx/values length mismatch");
    chk.require(jds.values.size() == jds.nnz(), "jds.nnz",
                "stored " + std::to_string(jds.values.size()) +
                    " values for nnz " + std::to_string(jds.nnz()));
    chk.require(!jdPtr.empty() && jdPtr.front() == 0,
                "jds.jdptr.start", "jdPtr must start at 0");
    if (jdPtr.empty())
        return;
    for (std::size_t i = 1; i < jdPtr.size(); ++i)
        chk.require(jdPtr[i] >= jdPtr[i - 1],
                    "jds.jdptr.monotone",
                    "jdPtr decreases " + at(i));
    chk.require(jdPtr.back() == jds.values.size(),
                "jds.jdptr.total",
                "final jdPtr " + std::to_string(jdPtr.back()) +
                    " does not cover the " +
                    std::to_string(jds.values.size()) +
                    " stored entries");
    // Jagged diagonals shrink (rows are sorted by descending length).
    for (std::size_t d = 2; d < jdPtr.size(); ++d) {
        const Index lenPrev = jdPtr[d - 1] - jdPtr[d - 2];
        const Index len = jdPtr[d] - jdPtr[d - 1];
        chk.require(len <= lenPrev, "jds.jagged.nonincreasing",
                    "jagged diagonal " + std::to_string(d - 1) +
                        " is longer than its predecessor");
    }
    for (std::size_t i = 0; i < colInx.size(); ++i)
        chk.require(colInx[i] < p, "jds.col.range",
                    "column " + std::to_string(colInx[i]) +
                        " exceeds p " + at(i));
}

void
checkLil(Checker &chk, const LilEncoded &lil)
{
    const Index p = lil.tileSize();
    const Index h = lil.height();
    const std::size_t cells = static_cast<std::size_t>(h) * p;
    chk.require(lil.values.size() == cells &&
                    lil.rowInx.size() == cells,
                "lil.shape",
                "stores " + std::to_string(lil.values.size()) +
                    " values / " + std::to_string(lil.rowInx.size()) +
                    " rows, expected " + std::to_string(cells));
    if (lil.values.size() != cells || lil.rowInx.size() != cells)
        return;
    chk.require(h >= 1, "lil.sentinel", "height must include the "
                                        "sentinel row");
    std::size_t entries = 0;
    for (Index c = 0; c < p; ++c) {
        bool ended = false;
        Index prevRow = 0;
        bool first = true;
        for (Index level = 0; level < h; ++level) {
            const Index row = lil.rowAt(level, c);
            if (row == LilEncoded::endMarker) {
                ended = true;
                chk.require(lil.valueAt(level, c) == Value(0),
                            "lil.padding",
                            "column " + std::to_string(c) +
                                " carries a value in terminated slot " +
                                std::to_string(level));
                continue;
            }
            ++entries;
            chk.require(!ended, "lil.pushed",
                        "column " + std::to_string(c) +
                            " has an entry below its end marker at "
                            "level " +
                            std::to_string(level));
            chk.require(row < p, "lil.row.range",
                        "row " + std::to_string(row) + " in column " +
                            std::to_string(c) + " exceeds p");
            chk.require(first || row > prevRow, "lil.rows.sorted",
                        "column " + std::to_string(c) +
                            " rows not strictly ascending at level " +
                            std::to_string(level));
            prevRow = row;
            first = false;
        }
        // The sentinel row exists so every list terminates on-stream.
        if (h >= 1)
            chk.require(lil.rowAt(h - 1, c) == LilEncoded::endMarker,
                        "lil.sentinel",
                        "column " + std::to_string(c) +
                            " is not terminated by the sentinel row");
    }
    if (chk.report.ok())
        chk.require(entries == lil.nnz(), "lil.nnz",
                    std::to_string(entries) + " stored entries for "
                        "nnz " + std::to_string(lil.nnz()));
}

void
checkDok(Checker &chk, const DokEncoded &dok)
{
    const Index p = dok.tileSize();
    chk.require(dok.table.size() == dok.nnz(), "dok.nnz",
                "table holds " + std::to_string(dok.table.size()) +
                    " entries for nnz " + std::to_string(dok.nnz()));
    for (const auto &[key, value] : dok.table) {
        const auto row = static_cast<Index>(key >> 32);
        const auto col = static_cast<Index>(key & 0xffffffffu);
        chk.require(row < p && col < p, "dok.key.range",
                    "key (" + std::to_string(row) + ", " +
                        std::to_string(col) + ") exceeds p");
        (void)value;
    }
}

void
checkBitmap(Checker &chk, const BitmapEncoded &bitmap)
{
    const Index p = bitmap.tileSize();
    const std::size_t bits = static_cast<std::size_t>(p) * p;
    const std::size_t words = (bits + 63) / 64;
    chk.require(bitmap.mask.size() == words, "bitmap.shape",
                "mask holds " + std::to_string(bitmap.mask.size()) +
                    " words, expected " + std::to_string(words));
    chk.require(bitmap.values.size() == bitmap.nnz(), "bitmap.nnz",
                "stored " + std::to_string(bitmap.values.size()) +
                    " values for nnz " + std::to_string(bitmap.nnz()));
    if (bitmap.mask.size() != words)
        return;
    std::size_t popcount = 0;
    for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t word = bitmap.mask[w];
        // Bits beyond p*p must stay clear: the decoder trusts them.
        if (w == words - 1 && bits % 64 != 0) {
            const std::uint64_t valid =
                (std::uint64_t(1) << (bits % 64)) - 1;
            chk.require((word & ~valid) == 0, "bitmap.trailing",
                        "mask sets bits beyond the p*p grid");
            word &= valid;
        }
        for (; word != 0; word &= word - 1)
            ++popcount;
    }
    chk.require(popcount == bitmap.values.size(), "bitmap.popcount",
                "mask sets " + std::to_string(popcount) +
                    " bits for " + std::to_string(bitmap.values.size()) +
                    " stored values");
}

void
checkEllCoo(Checker &chk, const EllCooEncoded &hybrid)
{
    const Index p = hybrid.tileSize();
    const Index w = hybrid.width();
    const std::size_t entries =
        checkEllPlane(chk, hybrid.values, hybrid.colInx, p, w, p,
                      "ellcoo", "ELL part");
    chk.require(hybrid.overflowRows.size() ==
                        hybrid.overflowValues.size() &&
                    hybrid.overflowCols.size() ==
                        hybrid.overflowValues.size(),
                "ellcoo.overflow.shape",
                "overflow row/col/value arrays differ in length");
    if (!chk.report.ok())
        return;
    for (std::size_t i = 0; i < hybrid.overflowValues.size(); ++i) {
        const Index row = hybrid.overflowRows[i];
        const Index col = hybrid.overflowCols[i];
        chk.require(row < p && col < p, "ellcoo.overflow.range",
                    "overflow tuple (" + std::to_string(row) + ", " +
                        std::to_string(col) + ") exceeds p " + at(i));
        if (i > 0) {
            const bool ascending =
                row > hybrid.overflowRows[i - 1] ||
                (row == hybrid.overflowRows[i - 1] &&
                 col > hybrid.overflowCols[i - 1]);
            chk.require(ascending, "ellcoo.overflow.order",
                        "overflow tuples not sorted row-major (or "
                        "duplicated) " +
                            at(i));
        }
        // A row only spills once its fixed-width ELL part is full.
        if (row < p && w > 0)
            chk.require(hybrid.colAt(row, w - 1) !=
                            EllCooEncoded::padMarker,
                        "ellcoo.overflow.discipline",
                        "row " + std::to_string(row) +
                            " spills to COO while its ELL part still "
                            "has padding");
    }
    if (chk.report.ok())
        chk.require(entries + hybrid.overflowValues.size() ==
                        hybrid.nnz(),
                    "ellcoo.nnz",
                    std::to_string(entries + hybrid.overflowValues
                                                 .size()) +
                        " stored entries for nnz " +
                        std::to_string(hybrid.nnz()));
}

void
checkDense(Checker &chk, const DenseEncoded &dense)
{
    const Index p = dense.tileSize();
    const std::size_t cells = static_cast<std::size_t>(p) * p;
    chk.require(dense.values.size() == cells, "dense.shape",
                "stores " + std::to_string(dense.values.size()) +
                    " values, expected " + std::to_string(cells));
    std::size_t nonzeros = 0;
    for (Value v : dense.values)
        nonzeros += v != Value(0);
    chk.require(nonzeros == dense.nnz(), "dense.nnz",
                std::to_string(nonzeros) + " non-zeros for nnz " +
                    std::to_string(dense.nnz()));
}

} // namespace

GrammarReport
validateEncodedTile(const EncodedTile &encoded)
{
    Checker chk(encoded.kind());
    switch (encoded.kind()) {
      case FormatKind::Dense:
        checkDense(chk, encodedAs<DenseEncoded>(encoded,
                                                FormatKind::Dense));
        break;
      case FormatKind::CSR:
        checkCsr(chk, encodedAs<CsrEncoded>(encoded, FormatKind::CSR));
        break;
      case FormatKind::BCSR:
        checkBcsr(chk,
                  encodedAs<BcsrEncoded>(encoded, FormatKind::BCSR));
        break;
      case FormatKind::CSC:
        checkCsc(chk, encodedAs<CscEncoded>(encoded, FormatKind::CSC));
        break;
      case FormatKind::COO:
        checkCoo(chk, encodedAs<CooEncoded>(encoded, FormatKind::COO));
        break;
      case FormatKind::DOK:
        checkDok(chk, encodedAs<DokEncoded>(encoded, FormatKind::DOK));
        break;
      case FormatKind::LIL:
        checkLil(chk, encodedAs<LilEncoded>(encoded, FormatKind::LIL));
        break;
      case FormatKind::ELL:
        checkEll(chk, encodedAs<EllEncoded>(encoded, FormatKind::ELL));
        break;
      case FormatKind::SELL: {
        const auto &sell =
            encodedAs<SellEncoded>(encoded, FormatKind::SELL);
        checkSlices(chk, sell.slices, sell.tileSize(),
                    sell.sliceHeight(), sell.nnz(), "sell");
        break;
      }
      case FormatKind::DIA:
        checkDia(chk, encodedAs<DiaEncoded>(encoded, FormatKind::DIA));
        break;
      case FormatKind::JDS:
        checkJds(chk, encodedAs<JdsEncoded>(encoded, FormatKind::JDS));
        break;
      case FormatKind::ELLCOO:
        checkEllCoo(chk, encodedAs<EllCooEncoded>(encoded,
                                                  FormatKind::ELLCOO));
        break;
      case FormatKind::SELLCS: {
        const auto &scs =
            encodedAs<SellCsEncoded>(encoded, FormatKind::SELLCS);
        checkPermutation(chk, scs.perm, scs.tileSize(), "sellcs.perm");
        checkSlices(chk, scs.slices, scs.tileSize(), scs.sliceHeight(),
                    scs.nnz(), "sellcs");
        break;
      }
      case FormatKind::BITMAP:
        checkBitmap(chk, encodedAs<BitmapEncoded>(encoded,
                                                  FormatKind::BITMAP));
        break;
    }
    return chk.report;
}

namespace {

/** -1 = defer to the environment; 0/1 = explicit override. */
std::atomic<int> validationOverride{-1};

} // namespace

bool
grammarValidationEnabled()
{
    const int forced = validationOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    static const bool fromEnv = [] {
        const char *env = std::getenv("COPERNICUS_VALIDATE");
        return env != nullptr && env[0] != '\0' &&
               std::string(env) != "0";
    }();
    return fromEnv;
}

void
setGrammarValidationEnabled(bool enabled)
{
    validationOverride.store(enabled ? 1 : 0,
                             std::memory_order_relaxed);
}

} // namespace copernicus
