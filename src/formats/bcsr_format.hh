/**
 * @file
 * BCSR codec (Section 2, Figure 1c; decompression Listing 2).
 *
 * CSR over fixed b x b blocks (b = 4 throughout the paper): offsets count
 * the non-zero blocks per block-row, colInx stores the first column of
 * each non-zero block, and values stores each block flattened row-major —
 * including the zeros inside the block, which is the format's bandwidth
 * overhead.
 */

#ifndef COPERNICUS_FORMATS_BCSR_FORMAT_HH
#define COPERNICUS_FORMATS_BCSR_FORMAT_HH

#include "formats/codec.hh"

namespace copernicus {

/** BCSR-encoded tile. */
class BcsrEncoded : public EncodedTile
{
  public:
    BcsrEncoded(Index tileSize, Index nnz, Index blockSize)
        : EncodedTile(tileSize, nnz), block(blockSize)
    {}

    FormatKind kind() const override { return FormatKind::BCSR; }

    std::vector<Bytes>
    streams() const override
    {
        // values is the longest stream and defines the memory latency
        // (Listing 2 discussion).
        Bytes value_bytes = 0;
        for (const auto &blk : values)
            value_bytes += Bytes(blk.size()) * valueBytes;
        return {value_bytes, Bytes(colInx.size()) * indexBytes,
                Bytes(offsets.size()) * indexBytes};
    }

    std::vector<TypedStream>
    typedStreams() const override
    {
        TypedStream values_stream{StreamClass::Value, "values", {}};
        for (const auto &blk : values)
            appendScalarBytes(values_stream.bytes, blk.data(),
                              blk.size());
        std::vector<TypedStream> out;
        out.push_back(std::move(values_stream));
        out.push_back(scalarStream(StreamClass::Index, "colInx", colInx));
        out.push_back(
            scalarStream(StreamClass::Offset, "offsets", offsets));
        return out;
    }

    /** Block edge length b. */
    Index blockSize() const { return block; }

    /** Cumulative non-zero-block count through each block-row. */
    std::vector<Index> offsets;

    /** First column of each non-zero block, block-row-major. */
    std::vector<Index> colInx;

    /** Flattened b*b values per non-zero block (zeros included). */
    std::vector<std::vector<Value>> values;

    /** Start block position of block-row @p brow. */
    Index
    blockRowStart(Index brow) const
    {
        return brow == 0 ? 0 : offsets[brow - 1];
    }

    /** One-past-the-end block position of block-row @p brow. */
    Index blockRowEnd(Index brow) const { return offsets[brow]; }

  private:
    Index block;
};

/** Codec for BCSR with a configurable block size (paper default 4). */
class BcsrCodec : public FormatCodec
{
  public:
    /** @param blockSize Block edge length b; must divide the tile size. */
    explicit BcsrCodec(Index blockSize = 4);

    FormatKind kind() const override { return FormatKind::BCSR; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;

    Index blockSize() const { return block; }

  private:
    Index block;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_BCSR_FORMAT_HH
