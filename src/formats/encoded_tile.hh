/**
 * @file
 * EncodedTile: a tile compressed in one particular format.
 *
 * The encoded representation keeps the real arrays (values, indices,
 * offsets, ...) so that (a) decode() can reconstruct the tile exactly and
 * (b) the HLS decompressor models in src/hls can walk the same data the
 * hardware would, making their cycle counts data-dependent.
 *
 * Byte accounting follows Section 4.2: "useful" bytes are the non-zero
 * values; everything else that crosses the memory interface — indices,
 * offsets, headers, and padding or in-block zeros — is overhead. The
 * bandwidth-utilization metric is usefulBytes()/totalBytes().
 */

#ifndef COPERNICUS_FORMATS_ENCODED_TILE_HH
#define COPERNICUS_FORMATS_ENCODED_TILE_HH

#include <atomic>
#include <string>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"
#include "formats/format_kind.hh"
#include "formats/typed_stream.hh"

namespace copernicus {

/**
 * Base class for per-format encoded tiles.
 *
 * Concrete subclasses live next to their codec (CsrEncoded in
 * csr_format.hh, and so on).
 */
class EncodedTile
{
  public:
    /**
     * @param tileSize Edge length p of the source tile.
     * @param nnz Non-zero count of the source tile.
     */
    EncodedTile(Index tileSize, Index nnz) : p(tileSize), _nnz(nnz) {}

    virtual ~EncodedTile() = default;

    EncodedTile(const EncodedTile &other)
        : p(other.p), _nnz(other._nnz),
          cachedTotal(other.cachedTotal.load(std::memory_order_relaxed))
    {}

    EncodedTile &operator=(const EncodedTile &) = delete;

    /** Format this tile is encoded in. */
    virtual FormatKind kind() const = 0;

    /**
     * Byte count of each memory stream of this encoding.
     *
     * The AXI transfer model assigns streams to the available
     * streamlines; the longest streamline defines memory latency
     * (Section 5.2, CSR discussion).
     */
    virtual std::vector<Bytes> streams() const = 0;

    /**
     * The same bytes as streams(), split into labeled, classed,
     * serialized payloads for second-stage compression (see
     * typed_stream.hh). Implementations must cover the streams()
     * total exactly; copernicus_lint's `streams` pass and the tier-1
     * tests enforce it.
     */
    virtual std::vector<TypedStream> typedStreams() const = 0;

    /** Edge length p of the source tile. */
    Index tileSize() const { return p; }

    /** Non-zero count of the source tile. */
    Index nnz() const { return _nnz; }

    /** Payload bytes: the non-zero values. */
    Bytes usefulBytes() const { return Bytes(_nnz) * valueBytes; }

    /**
     * All bytes crossing the memory interface. The sum is memoized:
     * streams() allocates a fresh vector per call, and the pipeline
     * asks for totalBytes(), metadataBytes() and
     * bandwidthUtilization() against immutable encodings. A racing
     * first call computes the same sum twice and stores it twice —
     * benign.
     */
    Bytes
    totalBytes() const
    {
        Bytes total = cachedTotal.load(std::memory_order_relaxed);
        if (total == unknownBytes) {
            total = 0;
            for (Bytes s : streams())
                total += s;
            cachedTotal.store(total, std::memory_order_relaxed);
        }
        return total;
    }

    /** Overhead bytes: metadata, headers, padding, in-block zeros. */
    Bytes metadataBytes() const { return totalBytes() - usefulBytes(); }

    /** usefulBytes()/totalBytes(); 0 for an empty encoding. */
    double
    bandwidthUtilization() const
    {
        const Bytes total = totalBytes();
        return total == 0
                   ? 0.0
                   : static_cast<double>(usefulBytes()) / total;
    }

  protected:
    Index p;
    Index _nnz;

  private:
    /** Sentinel: the sum of streams() has not been computed yet. */
    static constexpr Bytes unknownBytes = ~Bytes(0);

    mutable std::atomic<Bytes> cachedTotal{unknownBytes};
};

/**
 * Checked downcast to a concrete encoded-tile type.
 *
 * @param encoded The generic encoded tile.
 * @param expected The kind ConcreteTile represents; mismatch is a panic.
 */
template <typename ConcreteTile>
const ConcreteTile &
encodedAs(const EncodedTile &encoded, FormatKind expected)
{
    panicIf(encoded.kind() != expected,
            "encoded tile is " + std::string(formatName(encoded.kind())) +
            ", expected " + std::string(formatName(expected)));
    return static_cast<const ConcreteTile &>(encoded);
}

} // namespace copernicus

#endif // COPERNICUS_FORMATS_ENCODED_TILE_HH
