#include "formats/dia_format.hh"

#include <cstdint>
#include <vector>

#include "trace/profile.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
DiaCodec::encode(const Tile &tile) const
{
    const ScopedTimer timer("encode.DIA");
    const Index p = tile.size();
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    auto encoded = std::make_unique<DiaEncoded>(p, feat.nnz);
    // One pass marks the populated diagonals; ascending bucket order
    // matches a scan from d = -(p-1) to p-1. Slot index p-1+d keeps
    // buckets non-negative.
    const std::size_t diagCount = 2 * static_cast<std::size_t>(p) - 1;
    std::vector<std::int32_t> diagSlot(diagCount, -1);
    for (const TileNonzero &e : nz) {
        const std::size_t k = static_cast<std::size_t>(p) - 1 - e.row +
                              e.col;
        diagSlot[k] = 0;
    }
    encoded->diagonals.reserve(feat.nnzDiagonals);
    for (std::size_t k = 0; k < diagCount; ++k) {
        if (diagSlot[k] < 0)
            continue;
        diagSlot[k] = static_cast<std::int32_t>(encoded->diagonals.size());
        DiaDiagonal diag;
        diag.number = static_cast<std::int32_t>(k) -
                      (static_cast<std::int32_t>(p) - 1);
        diag.values.assign(p, Value(0));
        encoded->diagonals.push_back(std::move(diag));
    }
    for (const TileNonzero &e : nz) {
        const std::size_t k = static_cast<std::size_t>(p) - 1 - e.row +
                              e.col;
        DiaDiagonal &diag =
            encoded->diagonals[static_cast<std::size_t>(diagSlot[k])];
        diag.values[DiaEncoded::slotForRow(e.row, diag.number)] = e.value;
    }
    return encoded;
}

Tile
DiaCodec::decode(const EncodedTile &encoded) const
{
    const auto &dia = encodedAs<DiaEncoded>(encoded, FormatKind::DIA);
    const Index p = dia.tileSize();
    Tile tile(p);
    // Listing 7: for each row, scan every stored diagonal.
    for (Index row = 0; row < p; ++row) {
        for (const auto &diag : dia.diagonals) {
            if (!dia.rowOnDiagonal(row, diag.number))
                continue;
            const Index col = static_cast<Index>(
                static_cast<std::int32_t>(row) + diag.number);
            tile.cell(row, col) = diag.values[DiaEncoded::slotForRow(
                row, diag.number)];
        }
    }
    return tile;
}

} // namespace copernicus
