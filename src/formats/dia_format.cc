#include "formats/dia_format.hh"

#include "trace/profile.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
DiaCodec::encode(const Tile &tile) const
{
    const ScopedTimer timer("encode.DIA");
    const Index p = tile.size();
    auto encoded = std::make_unique<DiaEncoded>(p, tile.nnz());
    const auto size = static_cast<std::int32_t>(p);
    for (std::int32_t d = -(size - 1); d <= size - 1; ++d) {
        DiaDiagonal diag;
        diag.number = d;
        diag.values.assign(p, Value(0));
        bool non_zero = false;
        const Index row_begin = d < 0 ? static_cast<Index>(-d) : 0;
        const Index row_end = d < 0 ? p : static_cast<Index>(size - d);
        for (Index r = row_begin; r < row_end; ++r) {
            const Index c = static_cast<Index>(
                static_cast<std::int32_t>(r) + d);
            const Value v = tile(r, c);
            diag.values[DiaEncoded::slotForRow(r, d)] = v;
            non_zero |= v != Value(0);
        }
        if (non_zero)
            encoded->diagonals.push_back(std::move(diag));
    }
    return encoded;
}

Tile
DiaCodec::decode(const EncodedTile &encoded) const
{
    const auto &dia = encodedAs<DiaEncoded>(encoded, FormatKind::DIA);
    const Index p = dia.tileSize();
    Tile tile(p);
    // Listing 7: for each row, scan every stored diagonal.
    for (Index row = 0; row < p; ++row) {
        for (const auto &diag : dia.diagonals) {
            if (!dia.rowOnDiagonal(row, diag.number))
                continue;
            const Index col = static_cast<Index>(
                static_cast<std::int32_t>(row) + diag.number);
            tile(row, col) = diag.values[DiaEncoded::slotForRow(
                row, diag.number)];
        }
    }
    return tile;
}

} // namespace copernicus
