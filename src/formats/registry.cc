#include "formats/registry.hh"

#include "common/status.hh"
#include "formats/bcsr_format.hh"
#include "formats/bitmap_format.hh"
#include "formats/coo_format.hh"
#include "formats/csc_format.hh"
#include "formats/csr_format.hh"
#include "formats/dense_format.hh"
#include "formats/dia_format.hh"
#include "formats/dok_format.hh"
#include "formats/ell_format.hh"
#include "formats/ellcoo_format.hh"
#include "formats/jds_format.hh"
#include "formats/lil_format.hh"
#include "formats/sell_format.hh"
#include "formats/sellcs_format.hh"

namespace copernicus {

FormatRegistry::FormatRegistry(const FormatParams &params)
    : _params(params)
{
    codecs.push_back(std::make_unique<DenseCodec>());
    codecs.push_back(std::make_unique<CsrCodec>());
    codecs.push_back(std::make_unique<BcsrCodec>(params.bcsrBlock));
    codecs.push_back(std::make_unique<CscCodec>());
    codecs.push_back(std::make_unique<CooCodec>());
    codecs.push_back(std::make_unique<DokCodec>());
    codecs.push_back(std::make_unique<LilCodec>());
    codecs.push_back(std::make_unique<EllCodec>(params.ellMinWidth));
    codecs.push_back(std::make_unique<SellCodec>(params.sellSlice));
    codecs.push_back(std::make_unique<DiaCodec>());
    codecs.push_back(std::make_unique<JdsCodec>());
    codecs.push_back(std::make_unique<EllCooCodec>(params.ellCooWidth));
    codecs.push_back(std::make_unique<SellCsCodec>(params.sellSlice,
                                                   params.sellCsWindow));
    codecs.push_back(std::make_unique<BitmapCodec>());
}

const FormatCodec &
FormatRegistry::codec(FormatKind kind) const
{
    for (const auto &entry : codecs) {
        if (entry->kind() == kind)
            return *entry;
    }
    panic("FormatRegistry: no codec registered for kind");
}

const ScheduleSpec &
FormatRegistry::schedule(FormatKind kind) const
{
    return scheduleSpec(kind);
}

const FormatRegistry &
defaultRegistry()
{
    static const FormatRegistry registry;
    return registry;
}

const FormatCodec &
defaultCodec(FormatKind kind)
{
    return defaultRegistry().codec(kind);
}

} // namespace copernicus
