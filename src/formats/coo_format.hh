/**
 * @file
 * COO codec (Section 2, Figure 1d; decompression Listing 6).
 *
 * A flat series of (row, column, value) tuples. Two indices travel per
 * value, which pins the memory-bandwidth utilization at 1/3 regardless of
 * sparsity — the paper's "always 0.3" observation in Figures 10-12.
 */

#ifndef COPERNICUS_FORMATS_COO_FORMAT_HH
#define COPERNICUS_FORMATS_COO_FORMAT_HH

#include "formats/codec.hh"

namespace copernicus {

/** COO-encoded tile: parallel row/col/value arrays, row-major order. */
class CooEncoded : public EncodedTile
{
  public:
    CooEncoded(Index tileSize, Index nnz) : EncodedTile(tileSize, nnz) {}

    FormatKind kind() const override { return FormatKind::COO; }

    std::vector<Bytes>
    streams() const override
    {
        // Tuples travel together as one interleaved stream.
        return {Bytes(values.size()) *
                (valueBytes + 2 * indexBytes)};
    }

    /** The interleaved tuples split into planar streams (SoA). */
    std::vector<TypedStream>
    typedStreams() const override
    {
        return {scalarStream(StreamClass::Value, "values", values),
                scalarStream(StreamClass::Index, "rowInx", rowInx),
                scalarStream(StreamClass::Index, "colInx", colInx)};
    }

    std::vector<Index> rowInx;
    std::vector<Index> colInx;
    std::vector<Value> values;
};

/** Codec for COO. */
class CooCodec : public FormatCodec
{
  public:
    FormatKind kind() const override { return FormatKind::COO; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_COO_FORMAT_HH
