/**
 * @file
 * FormatRegistry: owns one configured codec per format.
 *
 * Codec hyperparameters (BCSR block, ELL minimum width, SELL slice
 * height, ELL+COO width) come from a FormatParams bundle whose defaults
 * are the paper's choices; benches that ablate a parameter construct
 * their own registry.
 */

#ifndef COPERNICUS_FORMATS_REGISTRY_HH
#define COPERNICUS_FORMATS_REGISTRY_HH

#include <memory>
#include <vector>

#include "formats/codec.hh"
#include "formats/schedule_spec.hh"

namespace copernicus {

/** Codec hyperparameters; defaults match Sections 2 and 4.2. */
struct FormatParams
{
    /** BCSR block edge length b. */
    Index bcsrBlock = 4;

    /** ELL compressed-width floor. */
    Index ellMinWidth = 6;

    /** SELL slice height C. */
    Index sellSlice = 4;

    /** ELL-part width of the ELL+COO hybrid. */
    Index ellCooWidth = 2;

    /** SELL-C-sigma sorting window (multiple of sellSlice). */
    Index sellCsWindow = 8;
};

/** Owns one codec instance per FormatKind. */
class FormatRegistry
{
  public:
    /** Build all codecs with the given hyperparameters. */
    explicit FormatRegistry(const FormatParams &params = FormatParams());

    /** The codec for @p kind; every FormatKind is registered. */
    const FormatCodec &codec(FormatKind kind) const;

    /**
     * The declarative decode schedule of @p kind (the loop nest the
     * cycle walker and the static analyzer both price). Specs are
     * hyperparameter-independent, so all registries expose the same
     * table.
     */
    const ScheduleSpec &schedule(FormatKind kind) const;

    /** Hyperparameters this registry was built with. */
    const FormatParams &params() const { return _params; }

  private:
    FormatParams _params;
    std::vector<std::unique_ptr<FormatCodec>> codecs;
};

/** Process-wide registry with default (paper) hyperparameters. */
const FormatRegistry &defaultRegistry();

/** Shorthand for defaultRegistry().codec(kind). */
const FormatCodec &defaultCodec(FormatKind kind);

} // namespace copernicus

#endif // COPERNICUS_FORMATS_REGISTRY_HH
