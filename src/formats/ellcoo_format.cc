#include "formats/ellcoo_format.hh"

#include <algorithm>

#include "common/status.hh"

namespace copernicus {

EllCooCodec::EllCooCodec(Index width) : w(width)
{
    fatalIf(width == 0, "ELL+COO width must be positive");
}

std::unique_ptr<EncodedTile>
EllCooCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    const Index width = std::min(w, p);
    auto encoded = std::make_unique<EllCooEncoded>(p, tile.nnz(), width);
    for (Index r = 0; r < p; ++r) {
        Index slot = 0;
        for (Index c = 0; c < p; ++c) {
            const Value v = tile(r, c);
            if (v == Value(0))
                continue;
            if (slot < width) {
                encoded->valueAt(r, slot) = v;
                encoded->colAt(r, slot) = c;
                ++slot;
            } else {
                encoded->overflowRows.push_back(r);
                encoded->overflowCols.push_back(c);
                encoded->overflowValues.push_back(v);
            }
        }
    }
    return encoded;
}

Tile
EllCooCodec::decode(const EncodedTile &encoded) const
{
    const auto &hybrid = encodedAs<EllCooEncoded>(encoded,
                                                  FormatKind::ELLCOO);
    const Index p = hybrid.tileSize();
    Tile tile(p);
    for (Index r = 0; r < p; ++r) {
        for (Index slot = 0; slot < hybrid.width(); ++slot) {
            const Index col = hybrid.colAt(r, slot);
            if (col == EllCooEncoded::padMarker)
                break;
            tile(r, col) = hybrid.valueAt(r, slot);
        }
    }
    for (std::size_t i = 0; i < hybrid.overflowValues.size(); ++i) {
        tile(hybrid.overflowRows[i], hybrid.overflowCols[i]) =
            hybrid.overflowValues[i];
    }
    return tile;
}

} // namespace copernicus
