#include "formats/ellcoo_format.hh"

#include <algorithm>

#include "common/status.hh"

namespace copernicus {

EllCooCodec::EllCooCodec(Index width) : w(width)
{
    fatalIf(width == 0, "ELL+COO width must be positive");
}

std::unique_ptr<EncodedTile>
EllCooCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    const Index width = std::min(w, p);
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    auto encoded = std::make_unique<EllCooEncoded>(p, feat.nnz, width);
    // The first `width` nonzeros of each row fill the ELL part; the
    // row-major stream appends the rest to the COO overflow in the
    // same row-then-column order a dense scan would.
    for (Index i = 0; i < feat.nnz; ++i) {
        const TileNonzero &e = nz[i];
        const Index slot = i - feat.rowStart[e.row];
        if (slot < width) {
            encoded->valueAt(e.row, slot) = e.value;
            encoded->colAt(e.row, slot) = e.col;
        } else {
            encoded->overflowRows.push_back(e.row);
            encoded->overflowCols.push_back(e.col);
            encoded->overflowValues.push_back(e.value);
        }
    }
    return encoded;
}

Tile
EllCooCodec::decode(const EncodedTile &encoded) const
{
    const auto &hybrid = encodedAs<EllCooEncoded>(encoded,
                                                  FormatKind::ELLCOO);
    const Index p = hybrid.tileSize();
    Tile tile(p);
    for (Index r = 0; r < p; ++r) {
        for (Index slot = 0; slot < hybrid.width(); ++slot) {
            const Index col = hybrid.colAt(r, slot);
            if (col == EllCooEncoded::padMarker)
                break;
            tile.cell(r, col) = hybrid.valueAt(r, slot);
        }
    }
    for (std::size_t i = 0; i < hybrid.overflowValues.size(); ++i) {
        tile.cell(hybrid.overflowRows[i], hybrid.overflowCols[i]) =
            hybrid.overflowValues[i];
    }
    return tile;
}

} // namespace copernicus
