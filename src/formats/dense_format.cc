#include "formats/dense_format.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
DenseCodec::encode(const Tile &tile) const
{
    return std::make_unique<DenseEncoded>(tile.size(), tile.nnz(),
                                          tile.data());
}

Tile
DenseCodec::decode(const EncodedTile &encoded) const
{
    const auto &dense = encodedAs<DenseEncoded>(encoded,
                                                FormatKind::Dense);
    const Index p = dense.tileSize();
    Tile tile(p);
    for (Index r = 0; r < p; ++r)
        for (Index c = 0; c < p; ++c)
            tile.cell(r, c) =
                dense.values[static_cast<std::size_t>(r) * p + c];
    return tile;
}

} // namespace copernicus
