/**
 * @file
 * CSR codec (Section 2, Figure 1b; decompression Listing 1).
 *
 * Three arrays: offsets (one entry per row, storing the cumulative
 * non-zero count through that row — the paper's "first element can store
 * absolute value" optimization, so offsets has length p rather than p+1),
 * column indices, and values.
 */

#ifndef COPERNICUS_FORMATS_CSR_FORMAT_HH
#define COPERNICUS_FORMATS_CSR_FORMAT_HH

#include "formats/codec.hh"

namespace copernicus {

/** CSR-encoded tile. */
class CsrEncoded : public EncodedTile
{
  public:
    CsrEncoded(Index tileSize, Index nnz) : EncodedTile(tileSize, nnz) {}

    FormatKind kind() const override { return FormatKind::CSR; }

    /**
     * Streams per Listing 1's discussion: offsets and column indices
     * travel on parallel streamlines with the values.
     */
    std::vector<Bytes>
    streams() const override
    {
        return {Bytes(values.size()) * valueBytes,
                Bytes(colInx.size()) * indexBytes,
                Bytes(offsets.size()) * indexBytes};
    }

    std::vector<TypedStream>
    typedStreams() const override
    {
        return {scalarStream(StreamClass::Value, "values", values),
                scalarStream(StreamClass::Index, "colInx", colInx),
                scalarStream(StreamClass::Offset, "offsets", offsets)};
    }

    /** Cumulative non-zero count through each row; length p. */
    std::vector<Index> offsets;

    /** Column index of each non-zero, row-major; length nnz. */
    std::vector<Index> colInx;

    /** Non-zero values, row-major; length nnz. */
    std::vector<Value> values;

    /** Start position of @p row in colInx/values. */
    Index
    rowStart(Index row) const
    {
        return row == 0 ? 0 : offsets[row - 1];
    }

    /** One-past-the-end position of @p row in colInx/values. */
    Index rowEnd(Index row) const { return offsets[row]; }
};

/** Codec for CSR. */
class CsrCodec : public FormatCodec
{
  public:
    FormatKind kind() const override { return FormatKind::CSR; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_CSR_FORMAT_HH
