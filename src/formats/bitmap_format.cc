#include "formats/bitmap_format.hh"

#include "trace/profile.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
BitmapCodec::encode(const Tile &tile) const
{
    const ScopedTimer timer("encode.Bitmap");
    const auto &nz = tile.nonzeros();
    auto encoded = std::make_unique<BitmapEncoded>(tile.size(),
                                                   tile.nnz());
    encoded->values.reserve(nz.size());
    for (const TileNonzero &e : nz) {
        encoded->set(e.row, e.col);
        encoded->values.push_back(e.value);
    }
    return encoded;
}

Tile
BitmapCodec::decode(const EncodedTile &encoded) const
{
    const auto &bitmap = encodedAs<BitmapEncoded>(encoded,
                                                  FormatKind::BITMAP);
    const Index p = bitmap.tileSize();
    Tile tile(p);
    std::size_t next = 0;
    for (Index r = 0; r < p; ++r)
        for (Index c = 0; c < p; ++c)
            if (bitmap.test(r, c))
                tile.cell(r, c) = bitmap.values[next++];
    return tile;
}

} // namespace copernicus
