#include "formats/bitmap_format.hh"

#include "trace/profile.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
BitmapCodec::encode(const Tile &tile) const
{
    const ScopedTimer timer("encode.Bitmap");
    const Index p = tile.size();
    auto encoded = std::make_unique<BitmapEncoded>(p, tile.nnz());
    for (Index r = 0; r < p; ++r) {
        for (Index c = 0; c < p; ++c) {
            const Value v = tile(r, c);
            if (v != Value(0)) {
                encoded->set(r, c);
                encoded->values.push_back(v);
            }
        }
    }
    return encoded;
}

Tile
BitmapCodec::decode(const EncodedTile &encoded) const
{
    const auto &bitmap = encodedAs<BitmapEncoded>(encoded,
                                                  FormatKind::BITMAP);
    const Index p = bitmap.tileSize();
    Tile tile(p);
    std::size_t next = 0;
    for (Index r = 0; r < p; ++r)
        for (Index c = 0; c < p; ++c)
            if (bitmap.test(r, c))
                tile(r, c) = bitmap.values[next++];
    return tile;
}

} // namespace copernicus
