#include "formats/ell_format.hh"

#include <algorithm>

#include "common/status.hh"
#include "trace/profile.hh"

namespace copernicus {

EllCodec::EllCodec(Index minWidth) : wMin(minWidth)
{
    fatalIf(minWidth == 0, "ELL minimum width must be positive");
}

Index
EllCodec::widthFor(const Tile &tile) const
{
    return std::max(std::min(wMin, tile.size()), tile.maxRowNnz());
}

std::unique_ptr<EncodedTile>
EllCodec::encode(const Tile &tile) const
{
    const ScopedTimer timer("encode.ELL");
    const Index p = tile.size();
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    const Index width = std::max(std::min(wMin, p), feat.maxRowNnz);
    auto encoded = std::make_unique<EllEncoded>(p, feat.nnz, width);
    // rowStart gives each nonzero's slot within its row directly.
    for (Index i = 0; i < feat.nnz; ++i) {
        const TileNonzero &e = nz[i];
        const Index slot = i - feat.rowStart[e.row];
        encoded->valueAt(e.row, slot) = e.value;
        encoded->colAt(e.row, slot) = e.col;
    }
    return encoded;
}

Tile
EllCodec::decode(const EncodedTile &encoded) const
{
    const auto &ell = encodedAs<EllEncoded>(encoded, FormatKind::ELL);
    const Index p = ell.tileSize();
    Tile tile(p);
    for (Index r = 0; r < p; ++r) {
        for (Index slot = 0; slot < ell.width(); ++slot) {
            const Index col = ell.colAt(r, slot);
            if (col == EllEncoded::padMarker)
                break;
            tile.cell(r, col) = ell.valueAt(r, slot);
        }
    }
    return tile;
}

} // namespace copernicus
