#include "formats/ell_format.hh"

#include <algorithm>

#include "common/status.hh"
#include "trace/profile.hh"

namespace copernicus {

EllCodec::EllCodec(Index minWidth) : wMin(minWidth)
{
    fatalIf(minWidth == 0, "ELL minimum width must be positive");
}

Index
EllCodec::widthFor(const Tile &tile) const
{
    return std::max(std::min(wMin, tile.size()), tile.maxRowNnz());
}

std::unique_ptr<EncodedTile>
EllCodec::encode(const Tile &tile) const
{
    const ScopedTimer timer("encode.ELL");
    const Index p = tile.size();
    const Index width = widthFor(tile);
    auto encoded = std::make_unique<EllEncoded>(p, tile.nnz(), width);
    for (Index r = 0; r < p; ++r) {
        Index slot = 0;
        for (Index c = 0; c < p; ++c) {
            const Value v = tile(r, c);
            if (v != Value(0)) {
                encoded->valueAt(r, slot) = v;
                encoded->colAt(r, slot) = c;
                ++slot;
            }
        }
    }
    return encoded;
}

Tile
EllCodec::decode(const EncodedTile &encoded) const
{
    const auto &ell = encodedAs<EllEncoded>(encoded, FormatKind::ELL);
    const Index p = ell.tileSize();
    Tile tile(p);
    for (Index r = 0; r < p; ++r) {
        for (Index slot = 0; slot < ell.width(); ++slot) {
            const Index col = ell.colAt(r, slot);
            if (col == EllEncoded::padMarker)
                break;
            tile(r, col) = ell.valueAt(r, slot);
        }
    }
    return tile;
}

} // namespace copernicus
