#include "formats/schedule_spec.hh"

#include <algorithm>

#include "common/math.hh"
#include "common/status.hh"
#include "formats/bcsr_format.hh"
#include "formats/bitmap_format.hh"
#include "formats/coo_format.hh"
#include "formats/csc_format.hh"
#include "formats/csr_format.hh"
#include "formats/dia_format.hh"
#include "formats/dok_format.hh"
#include "formats/ell_format.hh"
#include "formats/ellcoo_format.hh"
#include "formats/jds_format.hh"
#include "formats/lil_format.hh"
#include "formats/sell_format.hh"
#include "formats/sellcs_format.hh"

namespace copernicus {

std::string_view
scheduleFeatureName(ScheduleFeature feature)
{
    switch (feature) {
      case ScheduleFeature::One: return "one";
      case ScheduleFeature::TileSize: return "tile_size";
      case ScheduleFeature::Log2TileSize: return "log2_tile_size";
      case ScheduleFeature::Entries: return "entries";
      case ScheduleFeature::EntriesAtLeastOne: return "entries_or_one";
      case ScheduleFeature::OverflowEntries: return "overflow_entries";
      case ScheduleFeature::NonEmptyGroups: return "non_empty_groups";
      case ScheduleFeature::GroupHeaders: return "group_headers";
      case ScheduleFeature::LongestGroup: return "longest_group";
      case ScheduleFeature::MaskWords: return "mask_words";
    }
    return "unknown";
}

std::string_view
cycleKnobName(CycleKnob knob)
{
    switch (knob) {
      case CycleKnob::UnitCycle: return "unit";
      case CycleKnob::TwoCycles: return "two";
      case CycleKnob::BramReadLatency: return "bram_read_latency";
      case CycleKnob::LoopDepth: return "loop_depth";
      case CycleKnob::HashedLoopDepth: return "hashed_loop_depth";
      case CycleKnob::HashCycles: return "hash_cycles";
      case CycleKnob::DiagonalScan: return "diagonal_scan";
    }
    return "unknown";
}

Cycles
TileFeatures::value(ScheduleFeature feature) const
{
    switch (feature) {
      case ScheduleFeature::One: return 1;
      case ScheduleFeature::TileSize: return tileSize;
      case ScheduleFeature::Log2TileSize: return log2Ceil(tileSize);
      case ScheduleFeature::Entries: return entries;
      case ScheduleFeature::EntriesAtLeastOne:
        return std::max<Cycles>(entries, 1);
      case ScheduleFeature::OverflowEntries: return overflowEntries;
      case ScheduleFeature::NonEmptyGroups: return nonEmptyGroups;
      case ScheduleFeature::GroupHeaders: return groupHeaders;
      case ScheduleFeature::LongestGroup: return longestGroup;
      case ScheduleFeature::MaskWords: return maskWords;
    }
    panic("unknown schedule feature");
}

namespace {

using SF = ScheduleFeature;
using CK = CycleKnob;

SegmentSpec
fixed(const char *name, SF count, CK scale)
{
    SegmentSpec seg;
    seg.kind = SegmentKind::Fixed;
    seg.name = name;
    seg.trips = count;
    seg.depth = scale;
    return seg;
}

SegmentSpec
pipelined(const char *name, SF trips, CK depth, CK ii = CK::UnitCycle,
          Index unroll = 1, Index bankAccessesPerII = 1)
{
    SegmentSpec seg;
    seg.kind = SegmentKind::Pipelined;
    seg.name = name;
    seg.trips = trips;
    seg.depth = depth;
    seg.ii = ii;
    seg.unroll = unroll;
    seg.bankAccessesPerII = bankAccessesPerII;
    return seg;
}

SegmentSpec
serial(const char *name, SF outerTrips, SF innerTrips, CK depth)
{
    SegmentSpec seg;
    seg.kind = SegmentKind::Serial;
    seg.name = name;
    seg.trips = outerTrips;
    seg.innerTrips = innerTrips;
    seg.depth = depth;
    return seg;
}

SegmentSpec
rateMax(const char *name, SF tripsA, CK rateA, SF tripsB, CK rateB)
{
    SegmentSpec seg;
    seg.kind = SegmentKind::RateMax;
    seg.name = name;
    seg.trips = tripsA;
    seg.depth = rateA;
    seg.innerTrips = tripsB;
    seg.rateB = rateB;
    return seg;
}

/**
 * The spec table. Every formula of the old per-format cycle walkers
 * lives here as structure; see the per-format comments for the
 * listing each nest reproduces.
 */
std::vector<ScheduleSpec>
buildSpecs()
{
    std::vector<ScheduleSpec> specs;
    auto add = [&specs](FormatKind kind, const char *listing,
                        SF guard) -> ScheduleSpec & {
        specs.emplace_back();
        specs.back().format = kind;
        specs.back().listing = listing;
        specs.back().guard = guard;
        return specs.back();
    };

    // Dense: no decompression stage at all.
    add(FormatKind::Dense, "", SF::One).hasInnerBody = false;

    // CSR, Listing 1: offsets header, then the entry loop pipelined at
    // II = 1 across rows with one turnaround cycle per non-zero row.
    {
        auto &s = add(FormatKind::CSR, "Listing 1", SF::NonEmptyGroups);
        s.segments = {
            fixed("offsets header", SF::One, CK::BramReadLatency),
            pipelined("entry loop", SF::Entries, CK::LoopDepth),
            fixed("row turnaround", SF::NonEmptyGroups, CK::UnitCycle),
        };
        s.hasInnerBody = true;
    }

    // BCSR, Listing 2: same shape over non-zero blocks; the b*b block
    // copy is fully unrolled over partitioned banks so one block costs
    // one initiation interval.
    {
        auto &s = add(FormatKind::BCSR, "Listing 2", SF::NonEmptyGroups);
        s.segments = {
            fixed("offsets header", SF::One, CK::BramReadLatency),
            pipelined("block loop", SF::Entries, CK::LoopDepth,
                      CK::UnitCycle, /*unroll=*/0),
            fixed("block-row turnaround", SF::NonEmptyGroups,
                  CK::UnitCycle),
        };
        s.claims.checkDepth = false; // unrolled body depth != loopDepth
        s.hasInnerBody = true;
    }

    // CSC, Listing 3: the orientation mismatch re-scans the whole
    // entry list once per output row; each scan is pipelined at II = 1
    // and runs even for an empty list (the exit test still issues).
    {
        auto &s = add(FormatKind::CSC, "Listing 3", SF::One);
        s.segments = {
            fixed("offsets header", SF::One, CK::BramReadLatency),
            serial("per-row scans", SF::TileSize, SF::EntriesAtLeastOne,
                   CK::LoopDepth),
        };
        s.hasInnerBody = true;
    }

    // COO, Listing 6: one pipelined loop over the tuples; scattered
    // destinations keep everything on a single bank at II = 1.
    {
        auto &s = add(FormatKind::COO, "Listing 6", SF::One);
        s.segments = {pipelined("tuple loop", SF::Entries,
                                CK::LoopDepth)};
        s.hasInnerBody = true;
    }

    // DOK: COO's walk plus a hash probe per tuple; the collision-chain
    // cursor is a loop-carried dependence that bounds the II.
    {
        auto &s = add(FormatKind::DOK, "Listing 6 (hashed)", SF::One);
        s.segments = {pipelined("hashed tuple loop", SF::Entries,
                                CK::HashedLoopDepth, CK::HashCycles)};
        s.claims.ii = CK::HashCycles;
        s.claims.checkDepth = false; // fill priced as depth + probe
        s.hasInnerBody = true;
    }

    // LIL, Listing 4: comparator-tree fill, then production rate-bound
    // by the slower of the II=2 producer and the longest column list's
    // serialized pops, plus one end-detection access.
    {
        auto &s = add(FormatKind::LIL, "Listing 4", SF::NonEmptyGroups);
        s.segments = {
            fixed("merge fill", SF::One, CK::BramReadLatency),
            fixed("comparator tree", SF::Log2TileSize, CK::UnitCycle),
            rateMax("production", SF::NonEmptyGroups, CK::TwoCycles,
                    SF::LongestGroup, CK::BramReadLatency),
            fixed("end detection", SF::One, CK::BramReadLatency),
        };
        s.claims.ii = CK::TwoCycles;
        s.claims.checkDepth = false; // fill priced separately
        s.claims.balancedTreeOverLanes = true;
        s.hasInnerBody = true;
    }

    // ELL, Listing 5: the width-wide copy is fully unrolled over
    // partitioned banks, so every row costs one cycle, zero or not.
    {
        auto &s = add(FormatKind::ELL, "Listing 5", SF::One);
        s.segments = {pipelined("row sweep", SF::TileSize,
                                CK::LoopDepth, CK::UnitCycle,
                                /*unroll=*/0)};
        s.claims.checkDepth = false; // unrolled body depth != loopDepth
        s.hasInnerBody = true;
    }

    // SELL: ELL's sweep plus one width-header read per slice.
    {
        auto &s = add(FormatKind::SELL, "Listing 5 (sliced)", SF::One);
        s.segments = {
            pipelined("row sweep", SF::TileSize, CK::LoopDepth,
                      CK::UnitCycle, /*unroll=*/0),
            fixed("width headers", SF::GroupHeaders,
                  CK::BramReadLatency),
        };
        s.claims.checkDepth = false; // unrolled body depth != loopDepth
        s.hasInnerBody = true;
    }

    // SELL-C-sigma: SELL plus a permutation look-up per row.
    {
        auto &s = add(FormatKind::SELLCS, "Listing 5 (sliced+sorted)",
                      SF::One);
        s.segments = {
            pipelined("row sweep", SF::TileSize, CK::LoopDepth,
                      CK::UnitCycle, /*unroll=*/0),
            fixed("width headers", SF::GroupHeaders,
                  CK::BramReadLatency),
            fixed("perm look-ups", SF::TileSize, CK::UnitCycle),
        };
        s.claims.checkDepth = false; // unrolled body depth != loopDepth
        s.hasInnerBody = true;
    }

    // DIA, Listing 7: every output row scans the stored diagonals;
    // the dual-ported buffer checks bramPorts diagonals per cycle.
    {
        auto &s = add(FormatKind::DIA, "Listing 7", SF::GroupHeaders);
        s.segments = {
            fixed("scan fill", SF::One, CK::LoopDepth),
            fixed("row scans", SF::TileSize, CK::DiagonalScan),
        };
        s.claims.checkDepth = false; // scan fill priced flat
        s.hasInnerBody = true;
        s.segments[1].bankAccessesPerII = 2; // header pair per cycle
    }

    // JDS: CSR's entry loop without per-row offsets, plus one jdPtr
    // read per jagged diagonal and a permutation look-up per row.
    {
        auto &s = add(FormatKind::JDS, "Listing 1 (jagged)",
                      SF::NonEmptyGroups);
        s.segments = {
            fixed("first jdPtr read", SF::One, CK::BramReadLatency),
            pipelined("entry loop", SF::Entries, CK::LoopDepth),
            fixed("loop exit", SF::One, CK::UnitCycle),
            fixed("jdPtr reads", SF::GroupHeaders, CK::BramReadLatency),
            fixed("perm look-ups", SF::NonEmptyGroups, CK::UnitCycle),
        };
        s.hasInnerBody = true;
    }

    // ELL+COO hybrid: the ELL sweep plus a COO-style overflow loop.
    {
        auto &s = add(FormatKind::ELLCOO, "Listing 5 + Listing 6",
                      SF::One);
        s.segments = {
            pipelined("row sweep", SF::TileSize, CK::LoopDepth,
                      CK::UnitCycle, /*unroll=*/0),
            pipelined("overflow loop", SF::OverflowEntries,
                      CK::LoopDepth),
        };
        s.claims.checkDepth = false; // unrolled body depth != loopDepth
        s.hasInnerBody = true;
    }

    // Bitmap: a pipelined scan over the packed mask words racing the
    // one-value-per-cycle dense value stream.
    {
        auto &s = add(FormatKind::BITMAP, "bitmap scan", SF::Entries);
        s.segments = {
            fixed("scan fill", SF::One, CK::LoopDepth),
            rateMax("mask/value race", SF::MaskWords, CK::UnitCycle,
                    SF::Entries, CK::UnitCycle),
        };
        s.claims.checkDepth = false;
        s.hasInnerBody = false;
    }

    return specs;
}

} // namespace

const ScheduleSpec &
scheduleSpec(FormatKind kind)
{
    static const std::vector<ScheduleSpec> specs = buildSpecs();
    for (const ScheduleSpec &spec : specs) {
        if (spec.format == kind)
            return spec;
    }
    panic("no schedule spec registered for format " +
          std::string(formatName(kind)));
}

TileFeatures
extractScheduleFeatures(const EncodedTile &encoded, const Tile &decoded)
{
    TileFeatures feat;
    const Index p = encoded.tileSize();
    feat.tileSize = p;
    const Index nnz_rows = decoded.nnzRows();

    switch (encoded.kind()) {
      case FormatKind::Dense:
        feat.producedRows = p;
        break;
      case FormatKind::CSR: {
        const auto &csr = encodedAs<CsrEncoded>(encoded,
                                                FormatKind::CSR);
        feat.entries = csr.values.size();
        for (Index r = 0; r < p; ++r)
            feat.nonEmptyGroups += csr.rowEnd(r) != csr.rowStart(r);
        feat.producedRows = nnz_rows;
        break;
      }
      case FormatKind::BCSR: {
        const auto &bcsr = encodedAs<BcsrEncoded>(encoded,
                                                  FormatKind::BCSR);
        feat.entries = bcsr.values.size();
        const Index grid = p / bcsr.blockSize();
        Index nonEmptyBlockRows = 0;
        for (Index br = 0; br < grid; ++br) {
            nonEmptyBlockRows +=
                bcsr.blockRowEnd(br) != bcsr.blockRowStart(br);
        }
        feat.nonEmptyGroups = nonEmptyBlockRows;
        // Every row of a non-zero block-row reaches the dot engine,
        // zero or not (Listing 2 discussion). Counted in Index (the
        // block-row count is at most p), so no narrowing happens.
        feat.producedRows = nonEmptyBlockRows * bcsr.blockSize();
        break;
      }
      case FormatKind::CSC: {
        const auto &csc = encodedAs<CscEncoded>(encoded,
                                                FormatKind::CSC);
        feat.entries = csc.values.size();
        for (Index c = 0; c < p; ++c)
            feat.nonEmptyGroups += csc.colEnd(c) != csc.colStart(c);
        feat.producedRows = nnz_rows;
        break;
      }
      case FormatKind::COO: {
        const auto &coo = encodedAs<CooEncoded>(encoded,
                                                FormatKind::COO);
        feat.entries = coo.values.size();
        feat.producedRows = nnz_rows;
        break;
      }
      case FormatKind::DOK: {
        const auto &dok = encodedAs<DokEncoded>(encoded,
                                                FormatKind::DOK);
        feat.entries = dok.table.size();
        feat.producedRows = nnz_rows;
        break;
      }
      case FormatKind::LIL: {
        const auto &lil = encodedAs<LilEncoded>(encoded,
                                                FormatKind::LIL);
        feat.nonEmptyGroups = nnz_rows;
        feat.longestGroup = lil.height() - 1; // minus the sentinel row
        feat.entries = encoded.nnz();
        feat.producedRows = nnz_rows;
        break;
      }
      case FormatKind::ELL: {
        const auto &ell = encodedAs<EllEncoded>(encoded,
                                                FormatKind::ELL);
        feat.entries = encoded.nnz();
        feat.groupHeaders = ell.width();
        feat.producedRows = p;
        break;
      }
      case FormatKind::SELL: {
        const auto &sell = encodedAs<SellEncoded>(encoded,
                                                  FormatKind::SELL);
        feat.entries = encoded.nnz();
        feat.groupHeaders = sell.slices.size();
        feat.producedRows = p;
        break;
      }
      case FormatKind::SELLCS: {
        const auto &scs = encodedAs<SellCsEncoded>(encoded,
                                                   FormatKind::SELLCS);
        feat.entries = encoded.nnz();
        feat.groupHeaders = scs.slices.size();
        feat.producedRows = p;
        break;
      }
      case FormatKind::DIA: {
        const auto &dia = encodedAs<DiaEncoded>(encoded,
                                                FormatKind::DIA);
        feat.entries = encoded.nnz();
        feat.groupHeaders = dia.diagonals.size();
        feat.producedRows = nnz_rows;
        break;
      }
      case FormatKind::JDS: {
        const auto &jds = encodedAs<JdsEncoded>(encoded,
                                                FormatKind::JDS);
        feat.entries = jds.values.size();
        feat.groupHeaders = jds.jdPtr().size() - 1; // jagged width
        feat.nonEmptyGroups = nnz_rows;
        feat.producedRows = nnz_rows;
        break;
      }
      case FormatKind::ELLCOO: {
        const auto &hybrid = encodedAs<EllCooEncoded>(
            encoded, FormatKind::ELLCOO);
        feat.entries = encoded.nnz();
        feat.overflowEntries = hybrid.overflowValues.size();
        feat.producedRows = p;
        break;
      }
      case FormatKind::BITMAP: {
        const auto &bitmap = encodedAs<BitmapEncoded>(
            encoded, FormatKind::BITMAP);
        feat.entries = bitmap.values.size();
        feat.maskWords = bitmap.mask.size();
        feat.producedRows = nnz_rows;
        break;
      }
    }
    return feat;
}

} // namespace copernicus
