#include "formats/jds_format.hh"

#include <algorithm>
#include <numeric>

namespace copernicus {

std::unique_ptr<EncodedTile>
JdsCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    auto encoded = std::make_unique<JdsEncoded>(p, tile.nnz());

    // Sort rows by descending non-zero count; stable keeps ties in
    // original order so the permutation is deterministic.
    std::vector<Index> row_nnz(p);
    for (Index r = 0; r < p; ++r)
        row_nnz[r] = tile.rowNnz(r);
    encoded->perm.resize(p);
    std::iota(encoded->perm.begin(), encoded->perm.end(), Index(0));
    std::stable_sort(encoded->perm.begin(), encoded->perm.end(),
                     [&](Index a, Index b) {
                         return row_nnz[a] > row_nnz[b];
                     });

    // Left-compacted column lists per row, in sorted order.
    std::vector<std::vector<std::pair<Index, Value>>> compact(p);
    for (Index k = 0; k < p; ++k) {
        const Index r = encoded->perm[k];
        for (Index c = 0; c < p; ++c) {
            const Value v = tile(r, c);
            if (v != Value(0))
                compact[k].push_back({c, v});
        }
    }

    const Index width = p == 0 ? 0 : row_nnz[encoded->perm[0]];
    encoded->jdPtr.push_back(0);
    for (Index j = 0; j < width; ++j) {
        for (Index k = 0; k < p && compact[k].size() > j; ++k) {
            encoded->colInx.push_back(compact[k][j].first);
            encoded->values.push_back(compact[k][j].second);
        }
        encoded->jdPtr.push_back(
            static_cast<Index>(encoded->values.size()));
    }
    return encoded;
}

Tile
JdsCodec::decode(const EncodedTile &encoded) const
{
    const auto &jds = encodedAs<JdsEncoded>(encoded, FormatKind::JDS);
    const Index p = jds.tileSize();
    Tile tile(p);
    const Index width = static_cast<Index>(jds.jdPtr.size()) - 1;
    for (Index j = 0; j < width; ++j) {
        const Index begin = jds.jdPtr[j];
        const Index end = jds.jdPtr[j + 1];
        // Diagonal j covers the first (end - begin) sorted rows.
        for (Index i = begin; i < end; ++i) {
            const Index row = jds.perm[i - begin];
            tile(row, jds.colInx[i]) = jds.values[i];
        }
    }
    return tile;
}

} // namespace copernicus
