#include "formats/jds_format.hh"

#include <algorithm>
#include <numeric>

namespace copernicus {

std::unique_ptr<EncodedTile>
JdsCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    auto encoded = std::make_unique<JdsEncoded>(p, feat.nnz);

    // Sort rows by descending non-zero count; stable keeps ties in
    // original order so the permutation is deterministic.
    const std::vector<Index> &row_nnz = feat.rowNnz;
    encoded->perm.resize(p);
    std::iota(encoded->perm.begin(), encoded->perm.end(), Index(0));
    std::stable_sort(encoded->perm.begin(), encoded->perm.end(),
                     [&](Index a, Index b) {
                         return row_nnz[a] > row_nnz[b];
                     });

    // Jagged-diagonal-major emission straight off the nonzero stream:
    // entry j of permuted row k is nz[rowStart[perm[k]] + j], already
    // column-sorted.
    const Index width = p == 0 ? 0 : row_nnz[encoded->perm[0]];
    encoded->colInx.reserve(nz.size());
    encoded->values.reserve(nz.size());
    encoded->jdPtr.reserve(static_cast<std::size_t>(width) + 1);
    encoded->jdPtr.push_back(0);
    for (Index j = 0; j < width; ++j) {
        for (Index k = 0; k < p && row_nnz[encoded->perm[k]] > j; ++k) {
            const TileNonzero &e =
                nz[feat.rowStart[encoded->perm[k]] + j];
            encoded->colInx.push_back(e.col);
            encoded->values.push_back(e.value);
        }
        encoded->jdPtr.push_back(
            static_cast<Index>(encoded->values.size()));
    }
    return encoded;
}

Tile
JdsCodec::decode(const EncodedTile &encoded) const
{
    const auto &jds = encodedAs<JdsEncoded>(encoded, FormatKind::JDS);
    const Index p = jds.tileSize();
    Tile tile(p);
    const Index width = static_cast<Index>(jds.jdPtr.size()) - 1;
    for (Index j = 0; j < width; ++j) {
        const Index begin = jds.jdPtr[j];
        const Index end = jds.jdPtr[j + 1];
        // Diagonal j covers the first (end - begin) sorted rows.
        for (Index i = begin; i < end; ++i) {
            const Index row = jds.perm[i - begin];
            tile.cell(row, jds.colInx[i]) = jds.values[i];
        }
    }
    return tile;
}

} // namespace copernicus
