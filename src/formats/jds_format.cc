#include "formats/jds_format.hh"

#include <algorithm>

#include "common/arena.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
JdsCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    auto encoded = std::make_unique<JdsEncoded>(p, feat.nnz);

    Arena &arena = encodeArena();
    const ArenaScope scope(arena);

    // One allocation covers every index stream; jagged width (the
    // longest row) is known up front from the tile stats.
    const Index width = feat.maxRowNnz;
    encoded->meta.resize(std::size_t(feat.nnz) + p + width + 1);
    Index *cols = encoded->colInx().data();
    Index *perm = encoded->perm().data();
    Index *jd = encoded->jdPtr().data();

    // Descending counting sort over the row lengths — stable (ties
    // keep original order), allocation-free, and the exact permutation
    // std::stable_sort produced before. Keys never exceed the longest
    // row, so the count table stops there rather than at p.
    const std::vector<Index> &row_nnz = feat.rowNnz;
    Index *start = arena.alloc<Index>(std::size_t(width) + 2);
    std::fill(start, start + width + 2, Index(0));
    for (Index r = 0; r < p; ++r)
        ++start[row_nnz[r] + 1];
    Index running = 0;
    for (Index len = width;; --len) {
        const Index count = start[len + 1];
        start[len + 1] = running;
        running += count;
        if (len == 0)
            break;
    }
    for (Index r = 0; r < p; ++r)
        perm[start[row_nnz[r] + 1]++] = r;
    // The scatter bumped each key's cursor past its run, so
    // start[len + 1] now counts the rows with length >= len.

    // Jagged diagonal j holds one entry for every row longer than j,
    // and those rows are exactly sorted rows 0..count-1 in order, so
    // the pointers come straight from the length histogram.
    jd[0] = 0;
    Index acc = 0;
    for (Index j = 0; j < width; ++j) {
        acc += start[j + 2]; // rows with length >= j + 1
        jd[j + 1] = acc;
    }

    // With the pointers known up front, the diagonal-major emission
    // collapses to one flat pass over the canonical nonzero view:
    // entry j of sorted row k lands at jdPtr[j] + k.
    encoded->values.resize(nz.size());
    Value *values = encoded->values.data();
    const TileNonzero *entries = nz.data();
    for (Index k = 0; k < p; ++k) {
        const Index row = perm[k];
        const Index len = row_nnz[row];
        const TileNonzero *run = entries + feat.rowStart[row];
        for (Index j = 0; j < len; ++j) {
            const Index at = jd[j] + k;
            values[at] = run[j].value;
            cols[at] = run[j].col;
        }
    }
    return encoded;
}

Tile
JdsCodec::decode(const EncodedTile &encoded) const
{
    const auto &jds = encodedAs<JdsEncoded>(encoded, FormatKind::JDS);
    const Index p = jds.tileSize();
    Tile tile(p);
    const std::span<const Index> jd = jds.jdPtr();
    const std::span<const Index> perm = jds.perm();
    const std::span<const Index> cols = jds.colInx();
    const Index width = static_cast<Index>(jd.size()) - 1;
    for (Index j = 0; j < width; ++j) {
        const Index begin = jd[j];
        const Index end = jd[j + 1];
        // Diagonal j covers the first (end - begin) sorted rows.
        for (Index i = begin; i < end; ++i) {
            const Index row = perm[i - begin];
            tile.cell(row, cols[i]) = jds.values[i];
        }
    }
    return tile;
}

} // namespace copernicus
