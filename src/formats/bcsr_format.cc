#include "formats/bcsr_format.hh"

#include <algorithm>

#include "common/arena.hh"
#include "common/status.hh"

namespace copernicus {

BcsrCodec::BcsrCodec(Index blockSize) : block(blockSize)
{
    fatalIf(blockSize == 0, "BCSR block size must be positive");
}

std::unique_ptr<EncodedTile>
BcsrCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    fatalIf(p % block != 0,
            "BCSR block size must divide the partition size");
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    auto encoded = std::make_unique<BcsrEncoded>(p, feat.nnz, block);

    Arena &arena = encodeArena();
    const ArenaScope scope(arena);

    // One reusable scatter plane spans a whole block-row: block column
    // bc owns plane[bc * b*b ..), zeroed lazily on first touch so the
    // (common) untouched blocks cost nothing.
    const Index grid = p / block;
    const std::size_t blockArea = static_cast<std::size_t>(block) * block;
    Value *plane = arena.alloc<Value>(grid * blockArea);
    char *touched = arena.alloc<char>(grid);
    std::fill(touched, touched + grid, char(0));
    ArenaVec<Index> touchedCols(arena, grid);

    const Index maxBlocks =
        std::min(feat.nnz, static_cast<Index>(grid) * grid);
    encoded->offsets.reserve(grid);
    encoded->colInx.reserve(maxBlocks);
    encoded->values.reserve(maxBlocks);

    const TileNonzero *entries = nz.data();
    Index running = 0;
    for (Index br = 0; br < grid; ++br) {
        touchedCols.clear();
        const Index rowBase = br * block;
        for (Index r = rowBase; r < rowBase + block; ++r) {
            const Index rowEnd = feat.rowStart[r + 1];
            for (Index i = feat.rowStart[r]; i < rowEnd; ++i) {
                const TileNonzero &e = entries[i];
                const Index bc = e.col / block;
                Value *blk = plane + bc * blockArea;
                if (!touched[bc]) {
                    touched[bc] = 1;
                    touchedCols.push_back(bc);
                    std::fill(blk, blk + blockArea, Value(0));
                }
                blk[static_cast<std::size_t>(r - rowBase) * block +
                    (e.col - bc * block)] = e.value;
            }
        }
        // Emit the touched blocks in ascending order — exactly the
        // blocks a dense block scan would keep.
        std::sort(touchedCols.begin(), touchedCols.end());
        for (const Index bc : touchedCols) {
            const Value *blk = plane + bc * blockArea;
            encoded->colInx.push_back(bc * block);
            encoded->values.emplace_back(blk, blk + blockArea);
            touched[bc] = 0;
            ++running;
        }
        encoded->offsets.push_back(running);
    }
    return encoded;
}

Tile
BcsrCodec::decode(const EncodedTile &encoded) const
{
    const auto &bcsr = encodedAs<BcsrEncoded>(encoded, FormatKind::BCSR);
    const Index p = bcsr.tileSize();
    const Index b = bcsr.blockSize();
    const Index grid = p / b;
    Tile tile(p);
    for (Index br = 0; br < grid; ++br) {
        for (Index i = bcsr.blockRowStart(br); i < bcsr.blockRowEnd(br);
             ++i) {
            const Index col0 = bcsr.colInx[i];
            const auto &flat = bcsr.values[i];
            // Listing 2: drows[j / b][col0 + j mod b] = values[i][j].
            for (Index j = 0; j < b * b; ++j)
                tile.cell(br * b + j / b, col0 + j % b) = flat[j];
        }
    }
    return tile;
}

} // namespace copernicus
