#include "formats/bcsr_format.hh"

#include "common/status.hh"

namespace copernicus {

BcsrCodec::BcsrCodec(Index blockSize) : block(blockSize)
{
    fatalIf(blockSize == 0, "BCSR block size must be positive");
}

std::unique_ptr<EncodedTile>
BcsrCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    fatalIf(p % block != 0,
            "BCSR block size must divide the partition size");
    auto encoded = std::make_unique<BcsrEncoded>(p, tile.nnz(), block);

    const Index grid = p / block;
    Index running = 0;
    for (Index br = 0; br < grid; ++br) {
        for (Index bc = 0; bc < grid; ++bc) {
            // Gather the block and check whether it is non-zero.
            std::vector<Value> flat(static_cast<std::size_t>(block) *
                                    block, Value(0));
            bool non_zero = false;
            for (Index r = 0; r < block; ++r) {
                for (Index c = 0; c < block; ++c) {
                    const Value v = tile(br * block + r, bc * block + c);
                    flat[static_cast<std::size_t>(r) * block + c] = v;
                    non_zero |= v != Value(0);
                }
            }
            if (non_zero) {
                encoded->colInx.push_back(bc * block);
                encoded->values.push_back(std::move(flat));
                ++running;
            }
        }
        encoded->offsets.push_back(running);
    }
    return encoded;
}

Tile
BcsrCodec::decode(const EncodedTile &encoded) const
{
    const auto &bcsr = encodedAs<BcsrEncoded>(encoded, FormatKind::BCSR);
    const Index p = bcsr.tileSize();
    const Index b = bcsr.blockSize();
    const Index grid = p / b;
    Tile tile(p);
    for (Index br = 0; br < grid; ++br) {
        for (Index i = bcsr.blockRowStart(br); i < bcsr.blockRowEnd(br);
             ++i) {
            const Index col0 = bcsr.colInx[i];
            const auto &flat = bcsr.values[i];
            // Listing 2: drows[j / b][col0 + j mod b] = values[i][j].
            for (Index j = 0; j < b * b; ++j)
                tile(br * b + j / b, col0 + j % b) = flat[j];
        }
    }
    return tile;
}

} // namespace copernicus
