#include "formats/bcsr_format.hh"

#include <algorithm>

#include "common/status.hh"

namespace copernicus {

BcsrCodec::BcsrCodec(Index blockSize) : block(blockSize)
{
    fatalIf(blockSize == 0, "BCSR block size must be positive");
}

std::unique_ptr<EncodedTile>
BcsrCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    fatalIf(p % block != 0,
            "BCSR block size must divide the partition size");
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    auto encoded = std::make_unique<BcsrEncoded>(p, feat.nnz, block);

    // Per block-row, scatter the row's nonzeros into their block
    // columns, then emit the touched blocks in ascending order —
    // exactly the blocks a dense block scan would keep.
    const Index grid = p / block;
    std::vector<std::vector<Value>> flats(grid);
    std::vector<char> touched(grid, 0);
    std::vector<Index> touchedCols;
    touchedCols.reserve(grid);
    Index running = 0;
    for (Index br = 0; br < grid; ++br) {
        touchedCols.clear();
        for (Index r = br * block; r < (br + 1) * block; ++r) {
            for (Index i = feat.rowStart[r]; i < feat.rowStart[r + 1];
                 ++i) {
                const TileNonzero &e = nz[i];
                const Index bc = e.col / block;
                if (!touched[bc]) {
                    touched[bc] = 1;
                    touchedCols.push_back(bc);
                    flats[bc].assign(
                        static_cast<std::size_t>(block) * block,
                        Value(0));
                }
                flats[bc][static_cast<std::size_t>(r - br * block) *
                              block +
                          (e.col - bc * block)] = e.value;
            }
        }
        std::sort(touchedCols.begin(), touchedCols.end());
        for (const Index bc : touchedCols) {
            encoded->colInx.push_back(bc * block);
            encoded->values.push_back(std::move(flats[bc]));
            touched[bc] = 0;
            ++running;
        }
        encoded->offsets.push_back(running);
    }
    return encoded;
}

Tile
BcsrCodec::decode(const EncodedTile &encoded) const
{
    const auto &bcsr = encodedAs<BcsrEncoded>(encoded, FormatKind::BCSR);
    const Index p = bcsr.tileSize();
    const Index b = bcsr.blockSize();
    const Index grid = p / b;
    Tile tile(p);
    for (Index br = 0; br < grid; ++br) {
        for (Index i = bcsr.blockRowStart(br); i < bcsr.blockRowEnd(br);
             ++i) {
            const Index col0 = bcsr.colInx[i];
            const auto &flat = bcsr.values[i];
            // Listing 2: drows[j / b][col0 + j mod b] = values[i][j].
            for (Index j = 0; j < b * b; ++j)
                tile.cell(br * b + j / b, col0 + j % b) = flat[j];
        }
    }
    return tile;
}

} // namespace copernicus
