/**
 * @file
 * Encoded-tile grammar validator.
 *
 * Every format's encoding obeys structural invariants the decoders and
 * cycle walkers silently rely on: CSR/CSC offsets are monotone
 * cumulative counts, COO tuples are sorted and deduplicated, ELL rows
 * are left-pushed with clean padding, BCSR blocks are aligned,
 * DIA offsets stay in range, JDS/SELL-C-sigma permutations are real
 * permutations. A violated invariant does not crash the pipeline — it
 * silently corrupts results downstream (the MatRaptor/SMASH failure
 * mode). validateEncodedTile() checks all of them on a real encoded
 * tile and reports each violation with a stable, format-qualified
 * invariant id ("csr.offsets.monotone") that copernicus_lint and the
 * mutation tests key on.
 *
 * The EncodeCache's verified-hit path and debug-mode runPipeline call
 * the validator when grammarValidationEnabled() — a process-wide
 * toggle (COPERNICUS_VALIDATE=1 or setGrammarValidationEnabled) that
 * defaults off so the hot sweep paths pay nothing.
 */

#ifndef COPERNICUS_FORMATS_VALIDATE_HH
#define COPERNICUS_FORMATS_VALIDATE_HH

#include <string>
#include <vector>

#include "formats/encoded_tile.hh"

namespace copernicus {

/** One violated encoding invariant. */
struct GrammarViolation
{
    /** Format the offending tile is encoded in. */
    FormatKind format = FormatKind::Dense;

    /** Stable invariant id, e.g. "coo.order" or "ell.padding". */
    std::string invariant;

    /** Human-readable specifics (indices, observed values). */
    std::string detail;

    /** "[csr] csr.offsets.monotone: ..." */
    std::string toString() const;
};

/** All violations found in one encoded tile. */
struct GrammarReport
{
    std::vector<GrammarViolation> violations;

    bool ok() const { return violations.empty(); }

    /** One line per violation. */
    std::string toString() const;
};

/**
 * Check @p encoded against its format's grammar.
 *
 * Pure structural validation: only the encoded arrays are consulted,
 * never a decoded tile, so the cache can run it on tiles whose source
 * is unavailable.
 */
GrammarReport validateEncodedTile(const EncodedTile &encoded);

/**
 * Whether hot paths (EncodeCache verified hits, runPipeline) should
 * validate. Defaults to the COPERNICUS_VALIDATE environment toggle
 * (unset/0 = off); setGrammarValidationEnabled overrides it.
 */
bool grammarValidationEnabled();

/** Process-wide override of grammarValidationEnabled(). */
void setGrammarValidationEnabled(bool enabled);

} // namespace copernicus

#endif // COPERNICUS_FORMATS_VALIDATE_HH
