/**
 * @file
 * SELL-C-sigma codec (Section 2: "a variant of JDS that only sorts
 * rows within a window of sigma").
 *
 * Rows are sorted by descending non-zero count inside each
 * sigma-row window (the permutation is kept so decode can undo it),
 * then sliced ELL is applied with slice height C. Sorting packs rows
 * of similar length into the same slice, which trims SELL's padding
 * without JDS's global permutation cost.
 */

#ifndef COPERNICUS_FORMATS_SELLCS_FORMAT_HH
#define COPERNICUS_FORMATS_SELLCS_FORMAT_HH

#include "formats/codec.hh"
#include "formats/sell_format.hh"

namespace copernicus {

/** SELL-C-sigma-encoded tile. */
class SellCsEncoded : public EncodedTile
{
  public:
    /** Column-index value marking a padding slot. */
    static constexpr Index padMarker = ~Index(0);

    SellCsEncoded(Index tileSize, Index nnz, Index sliceHeight,
                  Index window)
        : EncodedTile(tileSize, nnz), c(sliceHeight), sigma(window)
    {}

    FormatKind kind() const override { return FormatKind::SELLCS; }

    std::vector<Bytes>
    streams() const override
    {
        Bytes value_bytes = 0;
        Bytes index_bytes = 0;
        for (const auto &slice : slices) {
            value_bytes += Bytes(slice.values.size()) * valueBytes;
            index_bytes += Bytes(slice.colInx.size()) * indexBytes;
        }
        // Width header per slice plus the permutation array.
        index_bytes += Bytes(slices.size() + perm.size()) * indexBytes;
        return {value_bytes, index_bytes};
    }

    std::vector<TypedStream>
    typedStreams() const override
    {
        TypedStream values{StreamClass::Value, "values", {}};
        TypedStream colInx{StreamClass::Index, "colInx", {}};
        TypedStream widths{StreamClass::Offset, "widths", {}};
        for (const auto &slice : slices) {
            appendScalarBytes(values.bytes, slice.values.data(),
                              slice.values.size());
            appendScalarBytes(colInx.bytes, slice.colInx.data(),
                              slice.colInx.size());
            appendScalarBytes(widths.bytes, &slice.width, 1);
        }
        std::vector<TypedStream> out;
        out.push_back(std::move(values));
        out.push_back(std::move(colInx));
        out.push_back(std::move(widths));
        out.push_back(scalarStream(StreamClass::Index, "perm", perm));
        return out;
    }

    /** Slice height C. */
    Index sliceHeight() const { return c; }

    /** Sorting-window height sigma. */
    Index window() const { return sigma; }

    /** perm[k] = original row stored at sorted position k. */
    std::vector<Index> perm;

    /** ELL slices over the permuted rows (reuses SELL's slice type). */
    std::vector<SellSlice> slices;

  private:
    Index c;
    Index sigma;
};

/** Codec for SELL-C-sigma. */
class SellCsCodec : public FormatCodec
{
  public:
    /**
     * @param sliceHeight Slice height C; must divide the tile size.
     * @param window Sorting window sigma; must be a multiple of
     *        sliceHeight and divide the tile size.
     */
    explicit SellCsCodec(Index sliceHeight = 4, Index window = 8);

    FormatKind kind() const override { return FormatKind::SELLCS; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;

    Index sliceHeight() const { return c; }
    Index window() const { return sigma; }

  private:
    Index c;
    Index sigma;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_SELLCS_FORMAT_HH
