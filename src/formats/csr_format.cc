#include "formats/csr_format.hh"

#include "trace/profile.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
CsrCodec::encode(const Tile &tile) const
{
    const ScopedTimer timer("encode.CSR");
    const Index p = tile.size();
    auto encoded = std::make_unique<CsrEncoded>(p, tile.nnz());
    encoded->offsets.reserve(p);
    Index running = 0;
    for (Index r = 0; r < p; ++r) {
        for (Index c = 0; c < p; ++c) {
            const Value v = tile(r, c);
            if (v != Value(0)) {
                encoded->colInx.push_back(c);
                encoded->values.push_back(v);
                ++running;
            }
        }
        encoded->offsets.push_back(running);
    }
    return encoded;
}

Tile
CsrCodec::decode(const EncodedTile &encoded) const
{
    const auto &csr = encodedAs<CsrEncoded>(encoded, FormatKind::CSR);
    const Index p = csr.tileSize();
    Tile tile(p);
    for (Index r = 0; r < p; ++r)
        for (Index i = csr.rowStart(r); i < csr.rowEnd(r); ++i)
            tile(r, csr.colInx[i]) = csr.values[i];
    return tile;
}

} // namespace copernicus
