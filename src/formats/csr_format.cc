#include "formats/csr_format.hh"

#include "trace/profile.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
CsrCodec::encode(const Tile &tile) const
{
    const ScopedTimer timer("encode.CSR");
    const Index p = tile.size();
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    auto encoded = std::make_unique<CsrEncoded>(p, feat.nnz);
    encoded->colInx.reserve(nz.size());
    encoded->values.reserve(nz.size());
    for (const TileNonzero &e : nz) {
        encoded->colInx.push_back(e.col);
        encoded->values.push_back(e.value);
    }
    encoded->offsets.reserve(p);
    for (Index r = 0; r < p; ++r)
        encoded->offsets.push_back(feat.rowStart[r + 1]);
    return encoded;
}

Tile
CsrCodec::decode(const EncodedTile &encoded) const
{
    const auto &csr = encodedAs<CsrEncoded>(encoded, FormatKind::CSR);
    const Index p = csr.tileSize();
    Tile tile(p);
    for (Index r = 0; r < p; ++r)
        for (Index i = csr.rowStart(r); i < csr.rowEnd(r); ++i)
            tile.cell(r, csr.colInx[i]) = csr.values[i];
    return tile;
}

} // namespace copernicus
