/**
 * @file
 * ELL+COO hybrid codec (Section 2's ELL+COO variant).
 *
 * The first `width` non-zeros of each row go into a fixed-width ELL
 * structure; anything beyond spills into a COO tuple list. This caps the
 * padding cost of pathologically long rows that plain ELL would have to
 * widen for.
 */

#ifndef COPERNICUS_FORMATS_ELLCOO_FORMAT_HH
#define COPERNICUS_FORMATS_ELLCOO_FORMAT_HH

#include "formats/codec.hh"

namespace copernicus {

/** ELL+COO-encoded tile. */
class EllCooEncoded : public EncodedTile
{
  public:
    /** Column-index value marking a padding slot. */
    static constexpr Index padMarker = ~Index(0);

    EllCooEncoded(Index tileSize, Index nnz, Index width)
        : EncodedTile(tileSize, nnz), w(width),
          values(static_cast<std::size_t>(tileSize) * width, Value(0)),
          colInx(static_cast<std::size_t>(tileSize) * width, padMarker)
    {}

    FormatKind kind() const override { return FormatKind::ELLCOO; }

    std::vector<Bytes>
    streams() const override
    {
        return {Bytes(values.size()) * valueBytes +
                    Bytes(colInx.size()) * indexBytes,
                Bytes(overflowValues.size()) *
                    (valueBytes + 2 * indexBytes)};
    }

    std::vector<TypedStream>
    typedStreams() const override
    {
        return {scalarStream(StreamClass::Value, "values", values),
                scalarStream(StreamClass::Index, "colInx", colInx),
                scalarStream(StreamClass::Value, "overflowValues",
                             overflowValues),
                scalarStream(StreamClass::Index, "overflowRows",
                             overflowRows),
                scalarStream(StreamClass::Index, "overflowCols",
                             overflowCols)};
    }

    /** Fixed ELL-part width. */
    Index width() const { return w; }

    Value &
    valueAt(Index row, Index slot)
    {
        return values[static_cast<std::size_t>(row) * w + slot];
    }

    Index &
    colAt(Index row, Index slot)
    {
        return colInx[static_cast<std::size_t>(row) * w + slot];
    }

    Value
    valueAt(Index row, Index slot) const
    {
        return values[static_cast<std::size_t>(row) * w + slot];
    }

    Index
    colAt(Index row, Index slot) const
    {
        return colInx[static_cast<std::size_t>(row) * w + slot];
    }

  private:
    Index w;

  public:
    /** ELL part. */
    std::vector<Value> values;
    std::vector<Index> colInx;

    /** COO overflow part. */
    std::vector<Index> overflowRows;
    std::vector<Index> overflowCols;
    std::vector<Value> overflowValues;
};

/** Codec for ELL+COO with configurable ELL width (default 2). */
class EllCooCodec : public FormatCodec
{
  public:
    /** @param width ELL-part width (clamped to the tile size). */
    explicit EllCooCodec(Index width = 2);

    FormatKind kind() const override { return FormatKind::ELLCOO; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;

    Index width() const { return w; }

  private:
    Index w;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_ELLCOO_FORMAT_HH
