#include "formats/csc_format.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
CscCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    const auto &nz = tile.nonzeros();
    const TileStats &feat = tile.features();
    auto encoded = std::make_unique<CscEncoded>(p, feat.nnz);
    // Counting scatter turns the row-major nonzero stream column-major:
    // within one column the stream visits rows in ascending order, so
    // each column's run comes out row-sorted, matching a column scan.
    std::vector<Index> pos(p);
    encoded->offsets.reserve(p);
    Index running = 0;
    for (Index c = 0; c < p; ++c) {
        pos[c] = running;
        running += feat.colNnz[c];
        encoded->offsets.push_back(running);
    }
    encoded->rowInx.resize(nz.size());
    encoded->values.resize(nz.size());
    for (const TileNonzero &e : nz) {
        const Index at = pos[e.col]++;
        encoded->rowInx[at] = e.row;
        encoded->values[at] = e.value;
    }
    return encoded;
}

Tile
CscCodec::decode(const EncodedTile &encoded) const
{
    const auto &csc = encodedAs<CscEncoded>(encoded, FormatKind::CSC);
    const Index p = csc.tileSize();
    Tile tile(p);
    for (Index c = 0; c < p; ++c)
        for (Index i = csc.colStart(c); i < csc.colEnd(c); ++i)
            tile.cell(csc.rowInx[i], c) = csc.values[i];
    return tile;
}

} // namespace copernicus
