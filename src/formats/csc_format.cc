#include "formats/csc_format.hh"

namespace copernicus {

std::unique_ptr<EncodedTile>
CscCodec::encode(const Tile &tile) const
{
    const Index p = tile.size();
    auto encoded = std::make_unique<CscEncoded>(p, tile.nnz());
    encoded->offsets.reserve(p);
    Index running = 0;
    for (Index c = 0; c < p; ++c) {
        for (Index r = 0; r < p; ++r) {
            const Value v = tile(r, c);
            if (v != Value(0)) {
                encoded->rowInx.push_back(r);
                encoded->values.push_back(v);
                ++running;
            }
        }
        encoded->offsets.push_back(running);
    }
    return encoded;
}

Tile
CscCodec::decode(const EncodedTile &encoded) const
{
    const auto &csc = encodedAs<CscEncoded>(encoded, FormatKind::CSC);
    const Index p = csc.tileSize();
    Tile tile(p);
    for (Index c = 0; c < p; ++c)
        for (Index i = csc.colStart(c); i < csc.colEnd(c); ++i)
            tile(csc.rowInx[i], c) = csc.values[i];
    return tile;
}

} // namespace copernicus
