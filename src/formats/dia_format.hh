/**
 * @file
 * DIA codec (Section 2, Figure 1h; decompression Listing 7).
 *
 * Each non-zero diagonal is stored as a fixed-length row of
 * diags[NUM_DIAGONALS][MAX_DIAGONAL_LEN]: one header element holding the
 * diagonal number followed by p value slots (shorter diagonals are
 * padded), exactly the buffer shape Listing 7 declares. The header and
 * padding are why DIA's bandwidth utilization is slightly below one even
 * for a pure diagonal matrix, approaching one as the partition grows.
 */

#ifndef COPERNICUS_FORMATS_DIA_FORMAT_HH
#define COPERNICUS_FORMATS_DIA_FORMAT_HH

#include <cstdint>

#include "formats/codec.hh"

namespace copernicus {

/** One stored diagonal: header number plus p padded value slots. */
struct DiaDiagonal
{
    /** Diagonal number: col - row (negative below the main diagonal). */
    std::int32_t number = 0;

    /** p value slots; slot index per Listing 7's DiaInxForRow. */
    std::vector<Value> values;
};

/** DIA-encoded tile. */
class DiaEncoded : public EncodedTile
{
  public:
    DiaEncoded(Index tileSize, Index nnz) : EncodedTile(tileSize, nnz) {}

    FormatKind kind() const override { return FormatKind::DIA; }

    std::vector<Bytes>
    streams() const override
    {
        // Each diagonal row is p+1 words (header + padded values).
        return {Bytes(diagonals.size()) * (p + 1) * valueBytes};
    }

    /** Header numbers and padded value slots as planar streams. */
    std::vector<TypedStream>
    typedStreams() const override
    {
        TypedStream values{StreamClass::Value, "values", {}};
        TypedStream headers{StreamClass::Offset, "headers", {}};
        for (const DiaDiagonal &d : diagonals) {
            appendScalarBytes(headers.bytes, &d.number, 1);
            appendScalarBytes(values.bytes, d.values.data(),
                              d.values.size());
        }
        std::vector<TypedStream> out;
        out.push_back(std::move(values));
        out.push_back(std::move(headers));
        return out;
    }

    /**
     * Value-slot index of @p row on diagonal @p d (Listing 7's
     * DiaInxForRow): position along the diagonal from its start.
     */
    static Index
    slotForRow(Index row, std::int32_t d)
    {
        return d < 0 ? static_cast<Index>(static_cast<std::int32_t>(row) +
                                          d)
                     : row;
    }

    /** True iff @p row intersects diagonal @p d in a p x p tile. */
    bool
    rowOnDiagonal(Index row, std::int32_t d) const
    {
        const auto r = static_cast<std::int32_t>(row);
        const auto size = static_cast<std::int32_t>(p);
        return d <= size - 1 - r && d >= -r;
    }

    /** Stored non-zero diagonals, ordered by diagonal number. */
    std::vector<DiaDiagonal> diagonals;
};

/** Codec for DIA. */
class DiaCodec : public FormatCodec
{
  public:
    FormatKind kind() const override { return FormatKind::DIA; }
    std::unique_ptr<EncodedTile> encode(const Tile &tile) const override;
    Tile decode(const EncodedTile &encoded) const override;
};

} // namespace copernicus

#endif // COPERNICUS_FORMATS_DIA_FORMAT_HH
