/**
 * @file
 * Declarative schedule IR for the decompressor loop nests.
 *
 * Each format declares its decode loop nest as data: an ordered list of
 * schedule segments (header reads, pipelined loops with a depth and an
 * initiation interval, serial re-scans, rate-bound merge regions),
 * with symbolic trip counts resolved against a TileFeatures bundle
 * extracted from a real encoded tile. The dynamic cycle walker
 * (hls/decompressor), the static schedule analyzer
 * (analysis/schedule_check) and bench_listing_schedules all consume
 * this one description, so the scheduling rules of Listings 1-7 exist
 * in exactly one place instead of as per-format arithmetic.
 *
 * The IR deliberately stays below the HLS layer: specs are pure data
 * plus feature extraction over encoded tiles, so the registry can
 * expose them; turning a spec into cycles needs an HlsConfig and lives
 * in hls/schedule_ir.
 */

#ifndef COPERNICUS_FORMATS_SCHEDULE_SPEC_HH
#define COPERNICUS_FORMATS_SCHEDULE_SPEC_HH

#include <vector>

#include "common/types.hh"
#include "formats/encoded_tile.hh"
#include "matrix/tile.hh"

namespace copernicus {

/**
 * Symbolic trip count / multiplicity, resolved per encoded tile by
 * extractScheduleFeatures().
 */
enum class ScheduleFeature
{
    One,             ///< constant 1 (headers, single fills)
    TileSize,        ///< partition edge length p
    Log2TileSize,    ///< comparator/adder tree depth over p lanes
    Entries,         ///< primary-loop trip count (entries, blocks, ...)
    EntriesAtLeastOne, ///< max(Entries, 1): a scan runs even when empty
    OverflowEntries, ///< COO overflow list of the ELL+COO hybrid
    NonEmptyGroups,  ///< rows / block-rows with at least one entry
    GroupHeaders,    ///< per-group headers: slices, jagged/stored diagonals
    LongestGroup,    ///< longest column list (LIL's feeder bound)
    MaskWords,       ///< packed occupancy words (Bitmap)
};

/** Printable feature name. */
std::string_view scheduleFeatureName(ScheduleFeature feature);

/** Cycles-per-unit scale factors, resolved against HlsConfig. */
enum class CycleKnob
{
    UnitCycle,       ///< 1 cycle
    TwoCycles,       ///< 2 cycles (LIL's produce II: compare + select)
    BramReadLatency, ///< registered BRAM read
    LoopDepth,       ///< pipelined decode-loop depth
    HashedLoopDepth, ///< loop depth + hash probe (DOK)
    HashCycles,      ///< DOK's probe II
    DiagonalScan,    ///< ceil(GroupHeaders / bramPorts): DIA's row scan
};

/** Printable knob name. */
std::string_view cycleKnobName(CycleKnob knob);

/** Structural kind of one schedule segment. */
enum class SegmentKind
{
    /** trips x scale cycles of serialized accesses (headers, fills). */
    Fixed,

    /** Pipelined loop: depth + ii * (trips - 1); zero trips are free. */
    Pipelined,

    /**
     * Serial outer loop whose body is a pipelined inner loop that
     * drains completely each outer trip (CSC's per-row re-scan).
     */
    Serial,

    /**
     * Two concurrent streams; the region ends when the slower drains:
     * max(trips x rate, tripsB x rateB). LIL's merge (producer vs
     * longest feeder) and Bitmap's mask/value race.
     */
    RateMax,
};

/** One segment of a decode schedule. */
struct SegmentSpec
{
    SegmentKind kind = SegmentKind::Fixed;

    /** Short name for diagnostics ("entry loop", "row turnaround"). */
    const char *name = "";

    /**
     * Fixed: access count. Pipelined: trip count. Serial: outer trip
     * count. RateMax: stream-A trip count.
     */
    ScheduleFeature trips = ScheduleFeature::One;

    /**
     * Fixed: cycles per access. Pipelined: pipeline depth. Serial:
     * inner-loop depth. RateMax: stream-A cycles per item.
     */
    CycleKnob depth = CycleKnob::UnitCycle;

    /** Pipelined/Serial: initiation interval. */
    CycleKnob ii = CycleKnob::UnitCycle;

    /** Serial: inner trip count. RateMax: stream-B trip count. */
    ScheduleFeature innerTrips = ScheduleFeature::One;

    /** RateMax: stream-B cycles per item. */
    CycleKnob rateB = CycleKnob::UnitCycle;

    /**
     * Declared unroll factor of the loop body: 1 = rolled, 0 = fully
     * unrolled over parallel BRAM banks (BCSR's block copy, ELL's
     * width-wide sweep). Consumed by the static analyzer.
     */
    Index unroll = 1;

    /**
     * BRAM accesses per initiation interval on the busiest single
     * bank. More than HlsConfig::bramPorts is an over-subscription
     * hazard the analyzer flags.
     */
    Index bankAccessesPerII = 1;
};

/** Claims about the scheduled inner loop, checked against hlsc. */
struct ScheduleClaims
{
    /** Pipeline depth the model charges for the inner loop. */
    CycleKnob depth = CycleKnob::LoopDepth;

    /** Initiation interval the model charges. */
    CycleKnob ii = CycleKnob::UnitCycle;

    /**
     * Whether the claimed depth must equal the hlsc-derived depth
     * exactly (false where the model prices the fill separately, as
     * for LIL's comparator tree or DOK's probe).
     */
    bool checkDepth = true;

    /**
     * Expected depth of the balanced reduction tree inside the body,
     * as a function of p: 0 = no tree, 1 = log2Ceil(p) comparator
     * levels (LIL). The analyzer flags a longer critical chain as an
     * unbalanced tree.
     */
    bool balancedTreeOverLanes = false;
};

/** The declarative decode schedule of one format. */
struct ScheduleSpec
{
    FormatKind format = FormatKind::Dense;

    /** Paper listing this nest reproduces ("Listing 1"), or "". */
    const char *listing = "";

    /**
     * The whole nest collapses to zero cycles when this feature is
     * zero (CSR skips empty tiles; ELL cannot). One = never collapses.
     */
    ScheduleFeature guard = ScheduleFeature::One;

    /** The loop nest, in program order. */
    std::vector<SegmentSpec> segments;

    /** Inner-loop claims validated against the hlsc-derived schedule. */
    ScheduleClaims claims;

    /** True when hlsc/decoder_bodies models this format's inner loop. */
    bool hasInnerBody = false;
};

/**
 * Trip counts of one encoded tile, resolved per format by
 * extractScheduleFeatures(). All counts are data-dependent: they come
 * from walking the real encoded arrays, never from densities.
 */
struct TileFeatures
{
    Index tileSize = 0;
    Cycles entries = 0;
    Cycles overflowEntries = 0;
    Cycles nonEmptyGroups = 0;
    Cycles groupHeaders = 0;
    Cycles longestGroup = 0;
    Cycles maskWords = 0;

    /** Rows handed to the dot engine (Eq. 1's nnz_rows term). */
    Index producedRows = 0;

    /** Resolve a symbolic feature against this tile. */
    Cycles value(ScheduleFeature feature) const;
};

/**
 * The canonical schedule of @p kind. Every FormatKind has one; Dense's
 * is the empty nest (no decompression stage).
 */
const ScheduleSpec &scheduleSpec(FormatKind kind);

/**
 * Walk @p encoded's real arrays and resolve every feature its format's
 * spec can reference.
 *
 * @param encoded The encoded tile (any format).
 * @param decoded The reconstructed dense tile; supplies the non-zero
 *        row counts the paper's Eq. 1 uses.
 */
TileFeatures extractScheduleFeatures(const EncodedTile &encoded,
                                     const Tile &decoded);

} // namespace copernicus

#endif // COPERNICUS_FORMATS_SCHEDULE_SPEC_HH
