/**
 * @file
 * HLS loop-schedule arithmetic.
 *
 * These helpers encode the two scheduling rules every cycle walker in
 * decompressor.cc uses: a loop under `#pragma HLS pipeline` with
 * initiation interval II completes `depth + II*(trips-1)` cycles after
 * it starts, and a loop under `#pragma HLS unroll` whose iterations hit
 * distinct BRAM banks collapses to a single iteration's depth.
 */

#ifndef COPERNICUS_HLS_SCHEDULE_HH
#define COPERNICUS_HLS_SCHEDULE_HH

#include "common/types.hh"

namespace copernicus {

/**
 * Cycles for a pipelined loop.
 *
 * @param trips Trip count; zero trips cost nothing.
 * @param depth Pipeline depth of one iteration.
 * @param ii Initiation interval (cycles between iteration starts).
 */
constexpr Cycles
pipelinedLoop(Cycles trips, Cycles depth, Cycles ii = 1)
{
    return trips == 0 ? 0 : depth + ii * (trips - 1);
}

/**
 * Cycles for a fully unrolled loop over partitioned BRAM banks: all
 * iterations issue together, so the loop costs one iteration's depth.
 */
constexpr Cycles
unrolledLoop(Cycles trips, Cycles depth)
{
    return trips == 0 ? 0 : depth;
}

} // namespace copernicus

#endif // COPERNICUS_HLS_SCHEDULE_HH
