/**
 * @file
 * HlsConfig: parameters of the modelled HLS platform (Section 4.1).
 *
 * The paper's platform is a Vivado-HLS design on a Zynq xc7z020 at
 * 250 MHz fed by DDR3 through AXI-stream interfaces. Copernicus models
 * that platform with the standard HLS scheduling rules (pipelined loops
 * run depth + II*(trips-1) cycles; unrolled loops collapse to one
 * iteration over parallel BRAM banks); the constants below are the
 * model's knobs and the ablation benches sweep them.
 */

#ifndef COPERNICUS_HLS_HLS_CONFIG_HH
#define COPERNICUS_HLS_HLS_CONFIG_HH

#include "common/math.hh"
#include "common/types.hh"
#include "hls/dram.hh"

namespace copernicus {

/** Platform parameters; defaults model the paper's setup. */
struct HlsConfig
{
    /** FPGA clock, MHz (paper: 250). */
    double clockMhz = 250.0;

    /** Bits transferred per cycle by one AXI-stream lane (64-bit AXIS). */
    Index axiLaneBits = 64;

    /**
     * Parallel AXI streamlines. The paper streams offsets and indices
     * on two lines in parallel; the longest defines memory latency.
     */
    Index streamlines = 2;

    /** Fixed DDR3 burst/handshake setup cost per partition transfer. */
    Cycles burstSetupCycles = 8;

    /**
     * When true, memory latency comes from the first-order DDR3
     * timing model (dram below) instead of the flat burst cost; the
     * streams of a partition then share one channel.
     */
    bool useDramModel = false;

    /** DDR3 parameters used when useDramModel is set. */
    DramConfig dram;

    /**
     * Charge the transfer of the SpMV vector operand's p-element
     * segment with every partition. The paper's metrics exclude it
     * (COO's utilization is exactly 1/3, which only holds for the
     * compressed-partition bytes), so this defaults off; enabling it
     * models a platform without an on-chip vector cache. The extra
     * bytes affect memory latency only, never bandwidth utilization,
     * matching the paper's metric definitions.
     */
    bool streamVectorOperand = false;

    /**
     * Second-stage stream compression (compress/second_stage.hh):
     * when true, every encoded stream is byte-compressed (per-class
     * codec selection with STORE fallback) before the DDR transfer
     * model sees it, so transfer latency and total bytes reflect the
     * post-compression sizes. Useful bytes are unchanged — the metric
     * still charges what the kernel consumes — so enabling this can
     * only raise bandwidth utilization. Off by default: the paper's
     * numbers are first-stage only.
     */
    bool secondStageCompression = false;

    /** BRAM read latency in cycles (block RAM is registered). */
    Cycles bramReadLatency = 2;

    /** BRAM ports per bank (true dual port on 7-series). */
    Index bramPorts = 2;

    /** Pipelined-loop depth: address calc + BRAM read + write-back. */
    Cycles loopDepth = 4;

    /** Extra cycles per DOK hash probe. */
    Cycles hashCycles = 2;

    /** Floating multiplier latency, cycles. */
    Cycles multLatency = 1;

    /** Latency per adder-tree stage, cycles. */
    Cycles adderStageLatency = 1;

    /** Result write-back latency, cycles. */
    Cycles writebackLatency = 1;

    /** Bytes per cycle across one lane. */
    Bytes
    laneBytesPerCycle() const
    {
        return Bytes(axiLaneBits) / 8;
    }

    /**
     * Latency of one dot product through the width-p engine: multiplier
     * array, balanced adder tree of depth log2(p), write-back. This is
     * the T_dot of Eq. 1.
     */
    Cycles
    dotLatency(Index p) const
    {
        return multLatency + Cycles(log2Ceil(p)) * adderStageLatency +
               writebackLatency;
    }

    /** Seconds per cycle. */
    double
    secondsPerCycle() const
    {
        return 1.0 / (clockMhz * 1e6);
    }
};

} // namespace copernicus

#endif // COPERNICUS_HLS_HLS_CONFIG_HH
