/**
 * @file
 * DDR3 timing model.
 *
 * The paper's platform streams from a DDR3 part; the default AXI model
 * charges a flat burst-setup cost per partition, which is accurate for
 * long sequential bursts. This model refines that with first-order
 * DDR3 timing — row activations (tRCD), CAS latency (tCL), precharge
 * (tRP) and the double-data-rate transfer itself — so the ablation
 * bench can show when the flat model is (and is not) a safe
 * simplification.
 */

#ifndef COPERNICUS_HLS_DRAM_HH
#define COPERNICUS_HLS_DRAM_HH

#include "common/types.hh"

namespace copernicus {

/** First-order DDR3 channel parameters (defaults ~ DDR3-1600 CL11). */
struct DramConfig
{
    /** Memory bus clock, MHz (DDR3-1600 I/O clock = 800). */
    double busClockMhz = 800.0;

    /** Channel width in bytes (64-bit). */
    Bytes busBytes = 8;

    /** Activate-to-read delay, memory cycles. */
    Cycles tRcd = 11;

    /** CAS (read) latency, memory cycles. */
    Cycles tCl = 11;

    /** Precharge latency, memory cycles. */
    Cycles tRp = 11;

    /** Row-buffer (page) size, bytes. */
    Bytes rowBytes = 8192;

    /** Bytes moved per memory cycle (double data rate). */
    Bytes
    bytesPerCycle() const
    {
        return busBytes * 2;
    }
};

/**
 * FPGA cycles to stream @p bytes sequentially from DDR3.
 *
 * The transfer opens ceil(bytes/rowBytes) rows; the first pays
 * tRCD + tCL, subsequent rows add tRP + tRCD (precharge + activate,
 * with CAS pipelined behind the data), and the data itself moves at
 * the double data rate. Memory cycles convert to FPGA cycles by the
 * clock ratio.
 *
 * @param bytes Bytes to move; 0 costs nothing.
 * @param dram Channel parameters.
 * @param fpgaClockMhz The consuming fabric's clock.
 */
Cycles dramServiceCycles(Bytes bytes, const DramConfig &dram,
                         double fpgaClockMhz);

} // namespace copernicus

#endif // COPERNICUS_HLS_DRAM_HH
