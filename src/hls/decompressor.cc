#include "hls/decompressor.hh"

#include "formats/registry.hh"
#include "formats/schedule_spec.hh"
#include "hls/schedule_ir.hh"

namespace copernicus {

DecompressResult
simulateDecompression(const EncodedTile &encoded, const HlsConfig &config)
{
    DecompressResult result{0, 0,
                            defaultCodec(encoded.kind()).decode(encoded)};

    // Every per-format formula of Listings 1-7 now lives in the
    // declarative schedule IR; here we only resolve the format's spec
    // against this tile's real trip counts and advance it.
    const ScheduleSpec &spec = scheduleSpec(encoded.kind());
    const TileFeatures features =
        extractScheduleFeatures(encoded, result.decoded);
    result.decompressCycles = walkScheduleCycles(spec, config, features);
    result.rowsProduced = features.producedRows;
    return result;
}

double
sigmaOverhead(const DecompressResult &result, Index p,
              const HlsConfig &config)
{
    const double t_dot = static_cast<double>(config.dotLatency(p));
    const double numerator =
        static_cast<double>(result.decompressCycles) +
        static_cast<double>(result.rowsProduced) * t_dot;
    return numerator / (static_cast<double>(p) * t_dot);
}

Cycles
computeCycles(const DecompressResult &result, const HlsConfig &config)
{
    const Index p = result.decoded.size();
    return result.decompressCycles +
           Cycles(result.rowsProduced) * config.dotLatency(p);
}

} // namespace copernicus
